package entangle

// One benchmark per table and figure of the paper's evaluation (§6).
// Each benchmark runs the same verification the corresponding figure
// measures; `go test -bench=. -benchmem` regenerates the full series,
// and cmd/entangle-bench prints them as the paper's tables.

import (
	"fmt"
	"testing"

	"entangle/internal/bench"
	"entangle/internal/models"
)

func runWorkload(b *testing.B, w bench.Workload, parallel, layers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(w, parallel, layers)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Ops), "graph-ops")
		}
	}
}

func findWorkload(b *testing.B, name string) bench.Workload {
	b.Helper()
	for _, w := range bench.Fig3Workloads() {
		if w.Name == name {
			return w
		}
	}
	b.Fatalf("no workload %q", name)
	return bench.Workload{}
}

// Figure 3: end-to-end verification time per model (parallelism 2).

func BenchmarkFig3_ByteDanceFwd(b *testing.B) { runWorkload(b, findWorkload(b, "ByteDance-Fwd"), 2, 1) }
func BenchmarkFig3_ByteDanceBwd(b *testing.B) { runWorkload(b, findWorkload(b, "ByteDance-Bwd"), 2, 1) }
func BenchmarkFig3_GPT(b *testing.B)          { runWorkload(b, findWorkload(b, "GPT"), 2, 1) }
func BenchmarkFig3_Qwen2(b *testing.B)        { runWorkload(b, findWorkload(b, "Qwen2"), 2, 1) }
func BenchmarkFig3_Llama3(b *testing.B)       { runWorkload(b, findWorkload(b, "Llama-3"), 2, 1) }
func BenchmarkFig3_Regression(b *testing.B)   { runWorkload(b, findWorkload(b, "Regression"), 2, 1) }

// Figure 4a: GPT (TP+SP+VP) scalability over parallelism × layers.

func BenchmarkFig4_GPT(b *testing.B) {
	gpt := bench.Workload{Name: "GPT", Build: func(p, l int) (*models.Built, error) {
		return models.GPT(models.Options{TP: p, SP: true, VP: true, Cfg: models.Config{Layers: l}})
	}}
	for _, p := range []int{2, 4, 6, 8} {
		for _, l := range []int{1, 2, 3} {
			b.Run(fmt.Sprintf("par%d/layers%d", p, l), func(b *testing.B) {
				runWorkload(b, gpt, p, l)
			})
		}
	}
}

// Figure 4b: Llama-3 (TP) scalability; degree 6 is structurally
// impossible (heads=8), as the paper notes.

func BenchmarkFig4_Llama(b *testing.B) {
	llama := bench.Workload{Name: "Llama-3", Build: func(p, l int) (*models.Built, error) {
		return models.Llama(models.Options{TP: p, Cfg: models.Config{Layers: l}})
	}, ViaHLO: true}
	for _, p := range []int{2, 4, 8} {
		for _, l := range []int{1, 2, 3} {
			b.Run(fmt.Sprintf("par%d/layers%d", p, l), func(b *testing.B) {
				runWorkload(b, llama, p, l)
			})
		}
	}
}

// Figure 5: lemma statistics (the figure is a count report; the
// benchmark measures producing it, dominated by the model checks).

func BenchmarkFig5_LemmaStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 6: the lemma-application heatmap across models and degrees.

func BenchmarkFig6_Heatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 3: the nine-bug detection suite.

func BenchmarkTable3_Bugs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, outcomes, err := bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outcomes {
			if !o.Detected {
				b.Fatalf("bug %d undetected", o.Case.ID)
			}
		}
	}
}

// Wavefront scheduler: sequential walk vs a 4-worker pool on the
// models with wide anti-chains (attention heads, MoE experts). The
// `workers1` variants are the baseline; `workers4` exercises
// internal/core/scheduler.go.

func runWorkloadWorkers(b *testing.B, w bench.Workload, parallel, layers, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunWorkers(w, parallel, layers, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWavefront_GPT(b *testing.B) {
	w := findWorkload(b, "GPT")
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			runWorkloadWorkers(b, w, 4, 3, workers)
		})
	}
}

func BenchmarkWavefront_MoE(b *testing.B) {
	w := findWorkload(b, "ByteDance-Fwd")
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			runWorkloadWorkers(b, w, 4, 3, workers)
		})
	}
}

// Ablation: the §4.3.1 frontier-restricted exploration against
// whole-graph folding.

func BenchmarkAblation_Frontier(b *testing.B) {
	w := findWorkload(b, "GPT")
	runWorkload(b, w, 2, 1)
}

func BenchmarkAblation_WholeGraph(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Ablation(); err != nil {
			b.Fatal(err)
		}
	}
}
