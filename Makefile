GO ?= go

.PHONY: build test bench verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The full gate: gofmt, vet, build, tests, and the race detector over
# the concurrent packages. See scripts/verify.sh.
verify:
	sh scripts/verify.sh

fmt:
	gofmt -w .
