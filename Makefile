GO ?= go

.PHONY: build test bench verify lint mc fuzz fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The full gate: gofmt, vet, build, tests, and the race detector over
# the concurrent packages. See scripts/verify.sh.
verify:
	sh scripts/verify.sh

# Static analysis only: entangle-lint over the lemma registry, the
# engine source, and generated capture graphs. See scripts/lint.sh.
lint:
	sh scripts/lint.sh

# Exhaustive model check of the concurrency core at the ci scope, plus
# the known-bug regression gate. See cmd/entangle-mc.
mc:
	$(GO) run ./cmd/entangle-mc -scope ci
	$(GO) run ./cmd/entangle-mc -model known-bug -expect-violation

# Short fuzz pass: replay the committed regression corpus (all nine
# paper bug classes), then run one bounded randomized campaign. Exits
# non-zero on any replay failure or unsound case. See cmd/entangle-fuzz.
fuzz:
	$(GO) run ./cmd/entangle-fuzz -corpus internal/fuzz/testdata/corpus -n 25

fmt:
	gofmt -w .
