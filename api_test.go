package entangle

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// buildFigure1 constructs the paper's running example through the
// public API.
func buildFigure1() (*Graph, *Graph, *Relation, error) {
	bs := NewBuilder("Gs", nil)
	A := bs.Input("A", ShapeOf(4, 8))
	B := bs.Input("B", ShapeOf(8, 6))
	E := bs.Input("E", ShapeOf(4, 6))
	C := bs.MatMul("matmul", A, B)
	F := bs.Sub("matsub", C, E)
	bs.Output(F)
	gs, err := bs.Build()
	if err != nil {
		return nil, nil, nil, err
	}

	bd := NewBuilder("Gd", nil)
	A1 := bd.Input("A1", ShapeOf(4, 4))
	A2 := bd.Input("A2", ShapeOf(4, 4))
	B1 := bd.Input("B1", ShapeOf(4, 6))
	B2 := bd.Input("B2", ShapeOf(4, 6))
	E0 := bd.Input("E0", ShapeOf(2, 6))
	E1 := bd.Input("E1", ShapeOf(2, 6))
	C1 := bd.MatMul("r0/matmul", A1, B1)
	C2 := bd.MatMul("r1/matmul", A2, B2)
	D := bd.ReduceScatter("rs", 0, C1, C2)
	F1 := bd.Sub("r0/matsub", D[0], E0)
	F2 := bd.Sub("r1/matsub", D[1], E1)
	bd.Output(F1, F2)
	gd, err := bd.Build()
	if err != nil {
		return nil, nil, nil, err
	}

	ri := NewRelation()
	leaf := func(name string) *Term {
		t, _ := gd.TensorByName(name)
		return GdLeaf(t)
	}
	aT, _ := gs.TensorByName("A")
	bT, _ := gs.TensorByName("B")
	eT, _ := gs.TensorByName("E")
	ri.Add(aT.ID, Concat1(1, leaf("A1"), leaf("A2")))
	ri.Add(bT.ID, Concat1(0, leaf("B1"), leaf("B2")))
	ri.Add(eT.ID, Concat1(0, leaf("E0"), leaf("E1")))
	return gs, gd, ri, nil
}

func TestPublicAPIFigure1(t *testing.T) {
	gs, gd, ri, err := buildFigure1()
	if err != nil {
		t.Fatal(err)
	}
	report, err := NewChecker(CheckerOptions{}).Check(gs, gd, ri)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := gs.TensorByName("matsub.out")
	maps := report.OutputRelation.Get(f.ID)
	if len(maps) == 0 {
		t.Fatal("no output mapping")
	}
	if got := maps[0].String(); got != "concat(r0/matsub.out, r1/matsub.out, dim=0)" {
		t.Fatalf("unexpected mapping %q", got)
	}
}

func TestPublicAPIErrorTypes(t *testing.T) {
	gs, gd, ri, err := buildFigure1()
	if err != nil {
		t.Fatal(err)
	}
	// Break the relation: swap the concat dim of A.
	aT, _ := gs.TensorByName("A")
	bad := NewRelation()
	a1, _ := gd.TensorByName("A1")
	a2, _ := gd.TensorByName("A2")
	bad.Add(aT.ID, Concat1(0, GdLeaf(a1), GdLeaf(a2)))
	for _, id := range ri.Tensors() {
		if id != aT.ID {
			for _, m := range ri.Get(id) {
				bad.Add(id, m)
			}
		}
	}
	_, err = NewChecker(CheckerOptions{}).Check(gs, gd, bad)
	var re *RefinementError
	if !errors.As(err, &re) {
		t.Fatalf("want RefinementError, got %v", err)
	}
}

func TestPublicAPIJSONAndHLO(t *testing.T) {
	gs, _, _, err := buildFigure1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, gs); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.OperatorCount() != gs.OperatorCount() {
		t.Fatal("json round trip lost nodes")
	}
	buf.Reset()
	if err := PrintHLO(&buf, gs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HloModule Gs") {
		t.Fatal("missing module header")
	}
	g3, err := ParseHLO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g3.OperatorCount() != gs.OperatorCount() {
		t.Fatal("hlo round trip lost nodes")
	}
}

func TestPublicAPISymbolics(t *testing.T) {
	ctx := NewSymContext()
	S := Sym("S")
	ctx.AssumeGE(S, SymConst(2))
	b := NewBuilder("g", ctx)
	x := b.Input("x", Shape{S, SymConst(4)})
	y := b.Unary("act", "gelu", x)
	b.Output(y)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultLemmasExposed(t *testing.T) {
	reg := DefaultLemmas()
	if reg.Len() < 40 {
		t.Fatalf("lemma library too small: %d", reg.Len())
	}
}

func ExampleChecker_Check() {
	gs, gd, ri, err := buildFigure1()
	if err != nil {
		panic(err)
	}
	report, err := NewChecker(CheckerOptions{}).Check(gs, gd, ri)
	if err != nil {
		panic(err)
	}
	f, _ := gs.TensorByName("matsub.out")
	fmt.Println("F =", report.OutputRelation.Get(f.ID)[0])
	// Output: F = concat(r0/matsub.out, r1/matsub.out, dim=0)
}
