#!/bin/sh
# Static-analysis gate: run entangle-lint over the built-in lemma
# registry, the engine's own source (nondeterminism hazards), and a
# freshly generated pair of capture graphs. Exits non-zero on any
# error-severity finding. `make lint` runs this alone; scripts/verify.sh
# runs it as its last stage.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "-- registry + source lint"
go run ./cmd/entangle-lint \
    internal/egraph internal/core internal/lemmas \
    internal/graph internal/relation internal/lint \
    internal/fingerprint internal/vcache internal/server \
    internal/mc internal/mc/models internal/faultinject \
    internal/bench internal/cluster internal/cluster/sim \
    internal/fuzz

echo "-- graph IR lint (generated gpt tp=2 capture)"
go run ./cmd/entangle-graphgen -model gpt -tp 2 -o "$tmp/model" >/dev/null
go run ./cmd/entangle -lint "$tmp"/model-seq.json "$tmp"/model-dist.json
