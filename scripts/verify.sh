#!/bin/sh
# Full verification gate: formatting, vet, build, the complete test
# suite, and the race detector over the concurrent packages (the
# wavefront scheduler in core, the e-graph engine it drives, and the
# synchronized relation store). CI and `make verify` both run this.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (core, egraph, relation, lemmas, faultinject, vcache, server, cluster, bench, fuzz, mc) =="
# -timeout on core: the robustness suite's worst regression mode is a
# deadlocked worker pool, which must fail the gate instead of hanging it.
# ENTANGLE_CHECK_INVARIANTS makes every e-graph Rebuild finish with the
# full structural audit, so the race section doubles as the
# invariant-checked test mode (memo/class agreement, parent
# registration, count bookkeeping — see egraph.CheckInvariants).
ENTANGLE_CHECK_INVARIANTS=1 go test -race -timeout 120s ./internal/core/...
ENTANGLE_CHECK_INVARIANTS=1 go test -race ./internal/egraph/... ./internal/relation/... ./internal/lemmas/... ./internal/faultinject/...
go test -race ./internal/fingerprint/... ./internal/vcache/... ./internal/server/... ./internal/cluster/...
# bench drives the checker through its concurrent harnesses — including
# the planned-vs-unplanned differential at workers 1/4 that pins the
# plan/execute refactor byte-identical; mc's own large-scope exploration
# is skipped here (-short) and covered by the dedicated mc CI job.
go test -race -timeout 300s ./internal/bench/...
# fuzz composes random strategies and checks them with Workers>1; the
# race run doubles as a worker-count-independence stress.
go test -race -timeout 300s ./internal/fuzz/...
go test -race -short ./internal/mc/...

echo "== entangle-mc (exhaustive model check, ci scope) =="
# Every protocol model must check clean at the ci scope, and the
# planted known-bug model must still be caught — a regression test for
# the checker's teeth, not just for the protocols.
go run ./cmd/entangle-mc -scope ci
go run ./cmd/entangle-mc -model known-bug -expect-violation >/dev/null
go run ./cmd/entangle-mc -model known-bug-cluster -expect-violation >/dev/null

echo "== entangle-lint =="
sh scripts/lint.sh

echo "verify: OK"
