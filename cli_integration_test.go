package entangle_test

// End-to-end CLI integration: build the three binaries once and drive
// the artifact workflow of the paper's appendix B — generate graphs,
// verify, detect a bug, check an expectation — through real process
// boundaries and file formats.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"entangle"
)

func buildTool(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, wantExit int, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	exit := 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	if exit != wantExit {
		t.Fatalf("%s %v: exit %d want %d\n%s", bin, args, exit, wantExit, out)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	gen := buildTool(t, dir, "./cmd/entangle-graphgen")
	check := buildTool(t, dir, "./cmd/entangle")

	// 1. Generate a correct GPT pair and verify it.
	prefix := filepath.Join(dir, "gpt")
	run(t, gen, 0, "-model", "gpt", "-tp", "2", "-o", prefix)
	out := run(t, check, 0,
		"-gs", prefix+"-seq.json", "-gd", prefix+"-dist.json", "-rel", prefix+"-relation.json")
	if !strings.Contains(out, "refinement verified") {
		t.Fatalf("verify output:\n%s", out)
	}

	// 2. Inject bug 4 and confirm detection + localization via exit 1.
	bug := filepath.Join(dir, "moebug")
	run(t, gen, 0, "-model", "seedmoe", "-tp", "2", "-bug", "4", "-o", bug)
	out = run(t, check, 1,
		"-gs", bug+"-seq.json", "-gd", bug+"-dist.json", "-rel", bug+"-relation.json")
	if !strings.Contains(out, "REFINEMENT FAILED") || !strings.Contains(out, "expert0/fc1") {
		t.Fatalf("bug output:\n%s", out)
	}

	// 3. HLO format round trip through the CLI.
	llx := filepath.Join(dir, "llama")
	run(t, gen, 0, "-model", "llama", "-tp", "2", "-format", "hlo", "-o", llx)
	out = run(t, check, 0, "-format", "hlo",
		"-gs", llx+"-seq.hlo", "-gd", llx+"-dist.hlo", "-rel", llx+"-relation.json")
	if !strings.Contains(out, "refinement verified") {
		t.Fatalf("hlo verify output:\n%s", out)
	}

	// 4. §4.4 expectation: holds with the right concat, violated with
	// the wrong dim.
	good := filepath.Join(dir, "expect-good.json")
	os.WriteFile(good, []byte(`{"fs": "lm_head.out", "fd": "concat(r0/lm_head.out, r1/lm_head.out, dim=1)"}`), 0o644)
	out = run(t, check, 0,
		"-gs", prefix+"-seq.json", "-gd", prefix+"-dist.json", "-rel", prefix+"-relation.json",
		"-expect", good)
	if !strings.Contains(out, "user expectation verified") {
		t.Fatalf("expectation output:\n%s", out)
	}
	bad := filepath.Join(dir, "expect-bad.json")
	os.WriteFile(bad, []byte(`{"fs": "lm_head.out", "fd": "concat(r0/lm_head.out, r1/lm_head.out, dim=0)"}`), 0o644)
	out = run(t, check, 1,
		"-gs", prefix+"-seq.json", "-gd", prefix+"-dist.json", "-rel", prefix+"-relation.json",
		"-expect", bad)
	if !strings.Contains(out, "EXPECTATION VIOLATED") {
		t.Fatalf("violated expectation output:\n%s", out)
	}

	// 5. Usage errors exit 2.
	run(t, check, 2)

	// 6. -keep-going on the buggy model still exits 1 and reports the
	// failing operator plus its skipped downstream cone.
	out = run(t, check, 1, "-keep-going",
		"-gs", bug+"-seq.json", "-gd", bug+"-dist.json", "-rel", bug+"-relation.json")
	if !strings.Contains(out, "REFINEMENT FAILED") || !strings.Contains(out, "expert0/fc1") {
		t.Fatalf("keep-going bug output:\n%s", out)
	}
	if !strings.Contains(out, "skipped") {
		t.Fatalf("keep-going output must list the skipped cone:\n%s", out)
	}

	// 7. An immediately-expired -timeout cancels the run: exit 3, with
	// the cancellation named rather than a refinement verdict.
	out = run(t, check, 3, "-timeout", "1ns",
		"-gs", prefix+"-seq.json", "-gd", prefix+"-dist.json", "-rel", prefix+"-relation.json")
	if !strings.Contains(out, "cancelled") {
		t.Fatalf("timeout output:\n%s", out)
	}

	// 8. -budget-escalations and -op-timeout are accepted on a healthy
	// run and leave the verdict untouched.
	out = run(t, check, 0, "-budget-escalations", "2", "-op-timeout", "1m",
		"-gs", prefix+"-seq.json", "-gd", prefix+"-dist.json", "-rel", prefix+"-relation.json")
	if !strings.Contains(out, "refinement verified") {
		t.Fatalf("flags on healthy run:\n%s", out)
	}

	// 9. -cache: the second (warm) run replays every verdict from the
	// cold run's store yet prints a byte-identical report — the only
	// divergence allowed is the wall-clock token, masked here. A third
	// run at a different worker count must agree too.
	cacheDir := filepath.Join(dir, "vcache")
	cacheArgs := []string{"-cache", cacheDir, "-v",
		"-gs", prefix + "-seq.json", "-gd", prefix + "-dist.json", "-rel", prefix + "-relation.json"}
	cold := run(t, check, 0, cacheArgs...)
	warm := run(t, check, 0, cacheArgs...)
	warm8 := run(t, check, 0, append([]string{"-workers", "8"}, cacheArgs...)...)
	if !strings.Contains(cold, "refinement verified") {
		t.Fatalf("cold cache run:\n%s", cold)
	}
	clock := regexp.MustCompile(`checked in [^)]*\)`)
	mask := func(s string) string { return clock.ReplaceAllString(s, "checked in X)") }
	if mask(warm) != mask(cold) {
		t.Fatalf("warm cache report differs from cold:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	if mask(warm8) != mask(cold) {
		t.Fatalf("warm 8-worker report differs from cold:\n--- cold ---\n%s--- warm ---\n%s", cold, warm8)
	}
}

// TestCLIDiff drives the -diff mode through the file formats: write an
// old/new graph pair where the edit swaps one add's operands (a
// refinement-preserving change whose cone fingerprint still moves),
// diff them against a shared G_d and relation sidecar, and check that
// only the edit's downstream cone was re-checked. A second diff of the
// graph against itself must replay everything; a semantically broken
// edit must exit 1 and name the newly failing operator.
func TestCLIDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	check := buildTool(t, dir, "./cmd/entangle")

	buildGd := func() *entangle.Graph {
		bd := entangle.NewBuilder("Gd", nil)
		half := entangle.ShapeOf(2, 6)
		X0, X1 := bd.Input("X0", half), bd.Input("X1", half)
		Y0, Y1 := bd.Input("Y0", half), bd.Input("Y1", half)
		V0, V1 := bd.Input("V0", half), bd.Input("V1", half)
		Z0 := bd.Unary("r0/act", "gelu", bd.Add("r0/adder", X0, Y0))
		Z1 := bd.Unary("r1/act", "gelu", bd.Add("r1/adder", X1, Y1))
		U0 := bd.Unary("r0/side", "gelu", V0)
		U1 := bd.Unary("r1/side", "gelu", V1)
		bd.Output(Z0, Z1, U0, U1)
		return bd.MustBuild()
	}
	buildGs := func(swap bool, fn string) *entangle.Graph {
		bs := entangle.NewBuilder("Gs", nil)
		X := bs.Input("X", entangle.ShapeOf(4, 6))
		Y := bs.Input("Y", entangle.ShapeOf(4, 6))
		V := bs.Input("V", entangle.ShapeOf(4, 6))
		a, b := X, Y
		if swap {
			a, b = Y, X
		}
		Z := bs.Unary("act", fn, bs.Add("adder", a, b))
		U := bs.Unary("side", "gelu", V)
		bs.Output(Z, U)
		return bs.MustBuild()
	}
	writeGraph := func(name string, g *entangle.Graph) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := entangle.WriteGraph(f, g); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	gdPath := writeGraph("gd.json", buildGd())
	oldPath := writeGraph("old.json", buildGs(false, "gelu"))
	newPath := writeGraph("new.json", buildGs(true, "gelu"))
	brokenPath := writeGraph("broken.json", buildGs(false, "relu"))
	relPath := filepath.Join(dir, "relation.json")
	os.WriteFile(relPath, []byte(`{
		"X": ["concat(X0, X1, dim=0)"],
		"Y": ["concat(Y0, Y1, dim=0)"],
		"V": ["concat(V0, V1, dim=0)"]}`), 0o644)
	cacheDir := filepath.Join(dir, "vcache")

	// 1. The swapped edit: the untouched side branch replays, the
	// adder and its consumer re-check, and the run exits 0.
	out := run(t, check, 0, "-diff", "-gd", gdPath, "-rel", relPath, "-cache", cacheDir, oldPath, newPath)
	if !strings.Contains(out, "3 ops — 1 unchanged (1 replayed), 2 re-checked") {
		t.Fatalf("diff output:\n%s", out)
	}
	if !strings.Contains(out, "adder: check (cone changed) -> refined") {
		t.Fatalf("diff output misses the edited operator:\n%s", out)
	}

	// 2. Diffing a graph against itself on the now-warm cache replays
	// every verdict.
	out = run(t, check, 0, "-diff", "-gd", gdPath, "-rel", relPath, "-cache", cacheDir, oldPath, oldPath)
	if !strings.Contains(out, "3 ops — 3 unchanged (3 replayed), 0 re-checked") {
		t.Fatalf("self-diff output:\n%s", out)
	}

	// 3. A semantic break exits 1 and classifies the operator as newly
	// failing.
	out = run(t, check, 1, "-diff", "-gd", gdPath, "-rel", relPath, "-cache", cacheDir, oldPath, brokenPath)
	if !strings.Contains(out, "newly failing:") || !strings.Contains(out, "REFINEMENT FAILED") {
		t.Fatalf("broken diff output:\n%s", out)
	}

	// 4. Usage errors exit 2.
	run(t, check, 2, "-diff", oldPath)
}

// TestCLIDaemon drives cmd/entangled end to end: start it with an
// on-disk cache, submit the same graphgen-produced model twice, watch
// /v1/stats report warm hits, then SIGTERM and expect a graceful
// drain with exit status 0.
func TestCLIDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	gen := buildTool(t, dir, "./cmd/entangle-graphgen")
	daemon := buildTool(t, dir, "./cmd/entangled")

	prefix := filepath.Join(dir, "gpt")
	run(t, gen, 0, "-model", "gpt", "-tp", "2", "-o", prefix)
	readFile := func(path string) json.RawMessage {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	body, err := json.Marshal(map[string]json.RawMessage{
		"gs":  readFile(prefix + "-seq.json"),
		"gd":  readFile(prefix + "-dist.json"),
		"rel": readFile(prefix + "-relation.json"),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reserve a port, release it, and hand it to the daemon.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	var stderr bytes.Buffer
	cmd := exec.Command(daemon, "-addr", addr, "-cache", filepath.Join(dir, "vcache"))
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	base := "http://" + addr

	// Wait for liveness.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy; stderr:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	check := func() map[string]any {
		resp, err := http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var cr map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || cr["verdict"] != "refined" {
			t.Fatalf("check: status %d body %v", resp.StatusCode, cr)
		}
		return cr
	}
	cold := check()
	warm := check()
	if fmt.Sprint(warm["output_relation"]) != fmt.Sprint(cold["output_relation"]) {
		t.Fatalf("warm relation differs:\n  cold: %v\n  warm: %v", cold["output_relation"], warm["output_relation"])
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Requests int64 `json:"requests"`
		Refined  int64 `json:"refined"`
		Cache    struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 2 || stats.Refined != 2 || stats.Cache.Hits == 0 {
		t.Fatalf("stats after warm submission: %+v", stats)
	}

	// Graceful drain on SIGTERM: exit 0, drain announced on stderr.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v; stderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Fatalf("daemon stderr missing drain notice:\n%s", stderr.String())
	}
}
