package numeric

import (
	"math"
	"testing"

	"entangle/internal/expr"
)

// Coverage for kernels the original suite exercised only indirectly
// (through graph-level differentials): reduce variants, the collective
// eval semantics in applyOp, RoPE on hand-computed values, and the MoE
// routing composite on concrete shapes. The fuzzer's numeric oracle
// leans on all of these, so each gets a direct ground-truth check.

func TestReduceSumVariants(t *testing.T) {
	a := FromData([]int{2, 3}, []float64{1, 2, 3, 4, 5, 6})

	// Reduce along dim 0: the reduced dim stays, with extent 1.
	d0, err := ReduceSum(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d0.Shape[0] != 1 || d0.Shape[1] != 3 {
		t.Fatalf("reduce dim0 shape %v, want [1 3]", d0.Shape)
	}
	want0 := []float64{5, 7, 9}
	for i, v := range d0.Data {
		if v != want0[i] {
			t.Fatalf("reduce dim0 = %v, want %v", d0.Data, want0)
		}
	}

	// Reduce along dim 1, addressed both directly and as -1.
	d1, err := ReduceSum(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Shape[0] != 2 || d1.Shape[1] != 1 {
		t.Fatalf("reduce dim1 shape %v, want [2 1]", d1.Shape)
	}
	want1 := []float64{6, 15}
	for i, v := range d1.Data {
		if v != want1[i] {
			t.Fatalf("reduce dim1 = %v, want %v", d1.Data, want1)
		}
	}
	dNeg, err := ReduceSum(a, -1)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(d1, dNeg) != 0 {
		t.Fatal("ReduceSum(-1) differs from ReduceSum(1)")
	}

	if _, err := ReduceSum(a, 2); err == nil {
		t.Fatal("out-of-range reduce dim must fail")
	}
}

func TestReduceSumSplitIdentities(t *testing.T) {
	r := rng()
	a := Rand(r, 4, 6)

	// Splitting the reduced dim turns the reduction partial: the full
	// reduction is the SUM of per-chunk reductions (the layout the
	// composer records as Partial).
	full0, _ := ReduceSum(a, 0)
	top, _ := Slice(a, 0, 0, 2)
	bot, _ := Slice(a, 0, 2, 4)
	rt, _ := ReduceSum(top, 0)
	rb, _ := ReduceSum(bot, 0)
	sum, _ := SumN(rt, rb)
	if MaxAbsDiff(full0, sum) > 1e-12 {
		t.Fatal("reduce over a split dim is not the sum of chunk reductions")
	}

	// Splitting an untouched dim commutes with the reduction: the
	// result stays sharded on that dim (concat of chunk reductions).
	full1, _ := ReduceSum(a, 1)
	r1, _ := ReduceSum(top, 1)
	r2, _ := ReduceSum(bot, 1)
	cat, _ := Concat(0, r1, r2)
	if MaxAbsDiff(full1, cat) > 1e-12 {
		t.Fatal("reduce along an unsplit dim is not shard-local")
	}
}

// TestCollectiveEval pins the collective semantics the graph evaluator
// gives the multi-output ops: allreduce broadcasts the sum, allgather
// broadcasts the concat, reducescatter hands each rank its slice of
// the sum. These are exactly the reconstruction rules the fuzz oracle
// inverts, so they get direct coverage here.
func TestCollectiveEval(t *testing.T) {
	a := FromData([]int{2, 2}, []float64{1, 2, 3, 4})
	b := FromData([]int{2, 2}, []float64{10, 20, 30, 40})

	ar, err := applyOp(expr.OpAllReduce, "", nil, []*Dense{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(ar) != 2 {
		t.Fatalf("allreduce outputs %d, want 2", len(ar))
	}
	wantSum, _ := SumN(a, b)
	for i, o := range ar {
		if MaxAbsDiff(o, wantSum) != 0 {
			t.Fatalf("allreduce rank %d differs from the sum", i)
		}
	}

	ag, err := applyOp(expr.OpAllGather, "", []int{0}, []*Dense{a, b})
	if err != nil {
		t.Fatal(err)
	}
	wantCat, _ := Concat(0, a, b)
	for i, o := range ag {
		if MaxAbsDiff(o, wantCat) != 0 {
			t.Fatalf("allgather rank %d differs from the concat", i)
		}
	}

	rs, err := applyOp(expr.OpReduceScatter, "", []int{0}, []*Dense{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range rs {
		want, _ := Slice(wantSum, 0, i, i+1)
		if MaxAbsDiff(o, want) != 0 {
			t.Fatalf("reducescatter rank %d is not its slice of the sum", i)
		}
	}
	// reducescatter + allgather over the scatter dim reassembles the
	// allreduce — the equivalence the ZeRO-style strategies rely on.
	back, err := applyOp(expr.OpAllGather, "", []int{0}, rs)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(back[0], wantSum) != 0 {
		t.Fatal("reducescatter∘allgather does not reassemble the allreduce")
	}

	// A scatter extent that does not divide by the rank count is a
	// typed error, not a silent truncation.
	c := FromData([]int{3, 2}, []float64{1, 2, 3, 4, 5, 6})
	d := FromData([]int{3, 2}, []float64{6, 5, 4, 3, 2, 1})
	if _, err := applyOp(expr.OpReduceScatter, "", []int{0}, []*Dense{c, d}); err == nil {
		t.Fatal("indivisible reducescatter must fail")
	}
}

// TestRoPEConcrete checks the adjacent-pair rotation on hand-computed
// values rather than through a locality identity: one pair rotated by
// 90° (cos=0, sin=1) and one left alone (cos=1, sin=0).
func TestRoPEConcrete(t *testing.T) {
	x := FromData([]int{1, 4}, []float64{1, 2, 3, 4})
	cos := FromData([]int{1, 4}, []float64{0, 0, 1, 1})
	sin := FromData([]int{1, 4}, []float64{1, 1, 0, 0})
	got, err := RoPE(x, cos, sin)
	if err != nil {
		t.Fatal(err)
	}
	// Pair (1,2) under cos=0,sin=1: (1·0 − 2·1, 1·1 + 2·0) = (−2, 1).
	// Pair (3,4) under cos=1,sin=0 is the identity.
	want := []float64{-2, 1, 3, 4}
	for i, v := range got.Data {
		if math.Abs(v-want[i]) > 1e-15 {
			t.Fatalf("rope = %v, want %v", got.Data, want)
		}
	}

	odd := FromData([]int{1, 3}, []float64{1, 2, 3})
	if _, err := RoPE(odd, odd, odd); err == nil {
		t.Fatal("odd hidden extent must fail")
	}
}

// TestRouterConcrete pins the MoE routing composite on a concrete
// shape: Router is softmax(x·w) along the expert dim, so rows are
// probability distributions, and equal logits route uniformly.
func TestRouterConcrete(t *testing.T) {
	x := FromData([]int{2, 2}, []float64{1, 1, 2, 0})
	w := FromData([]int{2, 3}, []float64{1, 1, 1, 1, 1, 1})
	probs, err := Router(x, w)
	if err != nil {
		t.Fatal(err)
	}
	if probs.Shape[0] != 2 || probs.Shape[1] != 3 {
		t.Fatalf("router shape %v, want [2 3]", probs.Shape)
	}
	// All-ones weights give equal logits per row: uniform 1/3.
	for i, v := range probs.Data {
		if math.Abs(v-1.0/3.0) > 1e-12 {
			t.Fatalf("router probs[%d] = %v, want uniform 1/3", i, v)
		}
	}

	r := rng()
	xr, wr := Rand(r, 3, 4), Rand(r, 4, 5)
	pr, err := Router(xr, wr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		row := 0.0
		for j := 0; j < 5; j++ {
			row += pr.Data[i*5+j]
		}
		if math.Abs(row-1) > 1e-12 {
			t.Fatalf("router row %d sums to %v, want 1", i, row)
		}
	}
}

// TestAuxLossConcrete checks the load-balancing loss value by hand:
// E · mean over tokens of Σ_j p_j² — minimized (value 1) by uniform
// routing, E for a fully collapsed router.
func TestAuxLossConcrete(t *testing.T) {
	uniform := FromData([]int{2, 4}, []float64{
		0.25, 0.25, 0.25, 0.25,
		0.25, 0.25, 0.25, 0.25,
	})
	a, err := AuxLoss(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Data) != 1 || math.Abs(a.Data[0]-1) > 1e-12 {
		t.Fatalf("uniform auxloss = %v, want 1", a.Data)
	}

	collapsed := FromData([]int{2, 4}, []float64{
		1, 0, 0, 0,
		1, 0, 0, 0,
	})
	c, err := AuxLoss(collapsed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Data[0]-4) > 1e-12 {
		t.Fatalf("collapsed auxloss = %v, want 4 (=E)", c.Data)
	}

	if _, err := AuxLoss(FromData([]int{3}, []float64{1, 0, 0})); err == nil {
		t.Fatal("rank-1 auxloss input must fail")
	}
}

// TestMoERoutingComposite runs the full routing pipeline — router,
// auxloss, token split — on concrete shapes, mirroring the seq-split
// strategy the composer emits for the seedmoe family: per-chunk
// auxlosses, scaled by 1/R, summed.
func TestMoERoutingComposite(t *testing.T) {
	r := rng()
	x, w := Rand(r, 6, 4), Rand(r, 4, 8)
	probs, err := Router(x, w)
	if err != nil {
		t.Fatal(err)
	}
	full, err := AuxLoss(probs)
	if err != nil {
		t.Fatal(err)
	}

	x1, _ := Slice(x, 0, 0, 3)
	x2, _ := Slice(x, 0, 3, 6)
	p1, _ := Router(x1, w)
	p2, _ := Router(x2, w)
	a1, _ := AuxLoss(p1)
	a2, _ := AuxLoss(p2)
	sum, _ := SumN(a1, a2)
	scaled, _ := ScaleRat(sum, 1, 2)
	if MaxAbsDiff(full, scaled) > 1e-12 {
		t.Fatal("seq-split routing composite does not match the full pipeline")
	}

	// Dropping the 1/R rescale (paper bug 2, the auxloss-scale defect)
	// must be numerically observable.
	if MaxAbsDiff(full, sum) < 1e-9 {
		t.Fatal("unscaled partial sum should differ from the full auxloss")
	}
}

func TestEmbeddingShardMasking(t *testing.T) {
	table := FromData([]int{2, 2}, []float64{
		1, 2,
		3, 4,
	})
	ids := FromData([]int{3}, []float64{1, 2, 3})

	// Shard covering vocab rows [2,4): ids 2 and 3 hit rows 0 and 1 of
	// the shard; id 1 is out of shard and must contribute zeros.
	e, err := EmbeddingShard(table, ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1, 2, 3, 4}
	for i, v := range e.Data {
		if v != want[i] {
			t.Fatalf("embedding shard = %v, want %v", e.Data, want)
		}
	}
}
