package numeric

import (
	"fmt"
	"math"
)

// Kernels: one concrete implementation per operator. These definitions
// are the numeric ground truth the lemma library must agree with.

const normEps = 1e-6

// MatMul multiplies [.., m, k] × [k, n] or [.., m, k] × [.., k, n]
// (leading dims must match when both are batched).
func MatMul(a, b *Dense) (*Dense, error) {
	if a.Rank() < 2 || b.Rank() < 2 {
		return nil, fmt.Errorf("numeric: matmul ranks %d,%d", a.Rank(), b.Rank())
	}
	if a.Rank() == 2 && b.Rank() == 2 {
		m, k := a.Shape[0], a.Shape[1]
		k2, n := b.Shape[0], b.Shape[1]
		if k != k2 {
			return nil, fmt.Errorf("numeric: matmul inner %d vs %d", k, k2)
		}
		out := NewDense(m, n)
		for i := 0; i < m; i++ {
			for l := 0; l < k; l++ {
				av := a.Data[i*k+l]
				if av == 0 {
					continue
				}
				for j := 0; j < n; j++ {
					out.Data[i*n+j] += av * b.Data[l*n+j]
				}
			}
		}
		return out, nil
	}
	// Batched: flatten leading dims of a; b rank 2 broadcasts, or
	// matching batch.
	if b.Rank() == 2 {
		lead := 1
		for _, d := range a.Shape[:a.Rank()-2] {
			lead *= d
		}
		m, k := a.Shape[a.Rank()-2], a.Shape[a.Rank()-1]
		if k != b.Shape[0] {
			return nil, fmt.Errorf("numeric: matmul inner %d vs %d", k, b.Shape[0])
		}
		n := b.Shape[1]
		outShape := append(append([]int(nil), a.Shape[:a.Rank()-2]...), m, n)
		out := NewDense(outShape...)
		for bi := 0; bi < lead; bi++ {
			sub := FromData([]int{m, k}, a.Data[bi*m*k:(bi+1)*m*k])
			r, err := MatMul(sub, b)
			if err != nil {
				return nil, err
			}
			copy(out.Data[bi*m*n:(bi+1)*m*n], r.Data)
		}
		return out, nil
	}
	if a.Rank() != b.Rank() {
		return nil, fmt.Errorf("numeric: batched matmul rank mismatch %d vs %d", a.Rank(), b.Rank())
	}
	lead := 1
	for i := 0; i < a.Rank()-2; i++ {
		if a.Shape[i] != b.Shape[i] {
			return nil, fmt.Errorf("numeric: batch dims differ")
		}
		lead *= a.Shape[i]
	}
	m, k := a.Shape[a.Rank()-2], a.Shape[a.Rank()-1]
	k2, n := b.Shape[b.Rank()-2], b.Shape[b.Rank()-1]
	if k != k2 {
		return nil, fmt.Errorf("numeric: matmul inner %d vs %d", k, k2)
	}
	outShape := append(append([]int(nil), a.Shape[:a.Rank()-2]...), m, n)
	out := NewDense(outShape...)
	for bi := 0; bi < lead; bi++ {
		sa := FromData([]int{m, k}, a.Data[bi*m*k:(bi+1)*m*k])
		sb := FromData([]int{k, n}, b.Data[bi*k*n:(bi+1)*k*n])
		r, err := MatMul(sa, sb)
		if err != nil {
			return nil, err
		}
		copy(out.Data[bi*m*n:(bi+1)*m*n], r.Data)
	}
	return out, nil
}

// zipSameShape applies f elementwise; same-rank operands may
// broadcast along dimensions where one side has extent 1 (the PyTorch
// subset the models need, e.g. gating [S,1] ⊙ [S,H]).
func zipSameShape(name string, a, b *Dense, f func(x, y float64) float64) (*Dense, error) {
	if SameShape(a, b) {
		out := NewDense(a.Shape...)
		for i := range a.Data {
			out.Data[i] = f(a.Data[i], b.Data[i])
		}
		return out, nil
	}
	if len(a.Shape) != len(b.Shape) {
		return nil, fmt.Errorf("numeric: %s shape %v vs %v", name, a.Shape, b.Shape)
	}
	outShape := make([]int, len(a.Shape))
	for i := range a.Shape {
		switch {
		case a.Shape[i] == b.Shape[i]:
			outShape[i] = a.Shape[i]
		case a.Shape[i] == 1:
			outShape[i] = b.Shape[i]
		case b.Shape[i] == 1:
			outShape[i] = a.Shape[i]
		default:
			return nil, fmt.Errorf("numeric: %s shape %v vs %v", name, a.Shape, b.Shape)
		}
	}
	out := NewDense(outShape...)
	as, bs, os := a.strides(), b.strides(), out.strides()
	idx := make([]int, len(outShape))
	for flat := 0; flat < len(out.Data); flat++ {
		rem := flat
		for i, st := range os {
			idx[i] = rem / st
			rem %= st
		}
		ao, bo := 0, 0
		for i := range idx {
			ai, bi := idx[i], idx[i]
			if a.Shape[i] == 1 {
				ai = 0
			}
			if b.Shape[i] == 1 {
				bi = 0
			}
			ao += ai * as[i]
			bo += bi * bs[i]
		}
		out.Data[flat] = f(a.Data[ao], b.Data[bo])
	}
	return out, nil
}

// Add, Sub, Mul, Div are strict same-shape elementwise ops.
func Add(a, b *Dense) (*Dense, error) {
	return zipSameShape("add", a, b, func(x, y float64) float64 { return x + y })
}
func Sub(a, b *Dense) (*Dense, error) {
	return zipSameShape("sub", a, b, func(x, y float64) float64 { return x - y })
}
func Mul(a, b *Dense) (*Dense, error) {
	return zipSameShape("mul", a, b, func(x, y float64) float64 { return x * y })
}
func Div(a, b *Dense) (*Dense, error) {
	return zipSameShape("div", a, b, func(x, y float64) float64 { return x / y })
}

// SumN sums any number of same-shaped tensors.
func SumN(ts ...*Dense) (*Dense, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("numeric: empty sum")
	}
	out := ts[0].Clone()
	for _, t := range ts[1:] {
		if !SameShape(out, t) {
			return nil, fmt.Errorf("numeric: sum shape %v vs %v", out.Shape, t.Shape)
		}
		for i := range out.Data {
			out.Data[i] += t.Data[i]
		}
	}
	return out, nil
}

// ScaleRat multiplies by the rational num/den.
func ScaleRat(a *Dense, num, den int64) (*Dense, error) {
	if den == 0 {
		return nil, fmt.Errorf("numeric: scale by %d/0", num)
	}
	f := float64(num) / float64(den)
	out := NewDense(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * f
	}
	return out, nil
}

// Unary applies a named elementwise function.
func Unary(name string, a *Dense) (*Dense, error) {
	var f func(float64) float64
	switch name {
	case "gelu":
		f = func(x float64) float64 {
			return 0.5 * x * (1 + math.Tanh(math.Sqrt(2/math.Pi)*(x+0.044715*x*x*x)))
		}
	case "silu":
		f = func(x float64) float64 { return x / (1 + math.Exp(-x)) }
	case "relu":
		f = func(x float64) float64 { return math.Max(0, x) }
	case "exp":
		f = math.Exp
	case "tanh":
		f = math.Tanh
	case "sqrt":
		f = math.Sqrt
	case "neg":
		f = func(x float64) float64 { return -x }
	case "dsilu":
		f = func(x float64) float64 {
			sig := 1 / (1 + math.Exp(-x))
			return sig + x*sig*(1-sig)
		}
	case "dgelu":
		f = func(x float64) float64 {
			const c = 0.7978845608028654 // sqrt(2/pi)
			t := math.Tanh(c * (x + 0.044715*x*x*x))
			dt := (1 - t*t) * c * (1 + 3*0.044715*x*x)
			return 0.5*(1+t) + 0.5*x*dt
		}
	case "drelu":
		f = func(x float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		}
	case "dtanh":
		f = func(x float64) float64 {
			t := math.Tanh(x)
			return 1 - t*t
		}
	case "square":
		f = func(x float64) float64 { return x * x }
	default:
		return nil, fmt.Errorf("numeric: unknown unary %q", name)
	}
	out := NewDense(a.Shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i])
	}
	return out, nil
}

// Concat concatenates along dim.
func Concat(dim int, ts ...*Dense) (*Dense, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("numeric: empty concat")
	}
	r := ts[0].Rank()
	if dim < 0 {
		dim += r
	}
	if dim < 0 || dim >= r {
		return nil, fmt.Errorf("numeric: concat dim %d rank %d", dim, r)
	}
	outShape := append([]int(nil), ts[0].Shape...)
	total := 0
	for _, t := range ts {
		if t.Rank() != r {
			return nil, fmt.Errorf("numeric: concat rank mismatch")
		}
		for i := range t.Shape {
			if i != dim && t.Shape[i] != ts[0].Shape[i] {
				return nil, fmt.Errorf("numeric: concat dim %d mismatch", i)
			}
		}
		total += t.Shape[dim]
	}
	outShape[dim] = total
	out := NewDense(outShape...)
	// iterate blocks: outer = prod(shape[:dim]), inner = prod(shape[dim+1:])
	outer := 1
	for _, d := range outShape[:dim] {
		outer *= d
	}
	inner := 1
	for _, d := range outShape[dim+1:] {
		inner *= d
	}
	outRow := total * inner
	for o := 0; o < outer; o++ {
		off := 0
		for _, t := range ts {
			rows := t.Shape[dim] * inner
			copy(out.Data[o*outRow+off:o*outRow+off+rows], t.Data[o*rows:(o+1)*rows])
			off += rows
		}
	}
	return out, nil
}

// Slice takes [begin, end) along dim.
func Slice(a *Dense, dim, begin, end int) (*Dense, error) {
	r := a.Rank()
	if dim < 0 {
		dim += r
	}
	if dim < 0 || dim >= r || begin < 0 || end < begin || end > a.Shape[dim] {
		return nil, fmt.Errorf("numeric: slice [%d:%d @%d] of %v", begin, end, dim, a.Shape)
	}
	outShape := append([]int(nil), a.Shape...)
	outShape[dim] = end - begin
	out := NewDense(outShape...)
	outer := 1
	for _, d := range a.Shape[:dim] {
		outer *= d
	}
	inner := 1
	for _, d := range a.Shape[dim+1:] {
		inner *= d
	}
	inRow := a.Shape[dim] * inner
	outRow := (end - begin) * inner
	for o := 0; o < outer; o++ {
		copy(out.Data[o*outRow:(o+1)*outRow],
			a.Data[o*inRow+begin*inner:o*inRow+end*inner])
	}
	return out, nil
}

// Pad zero-pads along dim.
func Pad(a *Dense, dim, before, after int) (*Dense, error) {
	r := a.Rank()
	if dim < 0 {
		dim += r
	}
	if dim < 0 || dim >= r || before < 0 || after < 0 {
		return nil, fmt.Errorf("numeric: pad (%d,%d @%d) of %v", before, after, dim, a.Shape)
	}
	outShape := append([]int(nil), a.Shape...)
	outShape[dim] += before + after
	out := NewDense(outShape...)
	outer := 1
	for _, d := range a.Shape[:dim] {
		outer *= d
	}
	inner := 1
	for _, d := range a.Shape[dim+1:] {
		inner *= d
	}
	inRow := a.Shape[dim] * inner
	outRow := outShape[dim] * inner
	for o := 0; o < outer; o++ {
		copy(out.Data[o*outRow+before*inner:o*outRow+before*inner+inRow],
			a.Data[o*inRow:(o+1)*inRow])
	}
	return out, nil
}

// Transpose swaps two dims.
func Transpose(a *Dense, d0, d1 int) (*Dense, error) {
	r := a.Rank()
	if d0 < 0 {
		d0 += r
	}
	if d1 < 0 {
		d1 += r
	}
	if d0 < 0 || d0 >= r || d1 < 0 || d1 >= r {
		return nil, fmt.Errorf("numeric: transpose dims %d,%d of rank %d", d0, d1, r)
	}
	if d0 == d1 {
		return a.Clone(), nil
	}
	outShape := append([]int(nil), a.Shape...)
	outShape[d0], outShape[d1] = outShape[d1], outShape[d0]
	out := NewDense(outShape...)
	inStr := a.strides()
	idx := make([]int, r)
	for flat := 0; flat < len(out.Data); flat++ {
		// decode flat into out idx
		rem := flat
		for i, st := range out.strides() {
			idx[i] = rem / st
			rem %= st
		}
		idx[d0], idx[d1] = idx[d1], idx[d0]
		src := 0
		for i := range idx {
			src += idx[i] * inStr[i]
		}
		out.Data[flat] = a.Data[src]
		idx[d0], idx[d1] = idx[d1], idx[d0]
	}
	return out, nil
}

// Reshape reinterprets the data with a new shape.
func Reshape(a *Dense, shape []int) (*Dense, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(a.Data) {
		return nil, fmt.Errorf("numeric: reshape %v to %v", a.Shape, shape)
	}
	return FromData(append([]int(nil), shape...), append([]float64(nil), a.Data...)), nil
}

// ReduceSum sums along dim, keeping it with extent 1.
func ReduceSum(a *Dense, dim int) (*Dense, error) {
	r := a.Rank()
	if dim < 0 {
		dim += r
	}
	if dim < 0 || dim >= r {
		return nil, fmt.Errorf("numeric: reducesum dim %d rank %d", dim, r)
	}
	outShape := append([]int(nil), a.Shape...)
	outShape[dim] = 1
	out := NewDense(outShape...)
	outer := 1
	for _, d := range a.Shape[:dim] {
		outer *= d
	}
	inner := 1
	for _, d := range a.Shape[dim+1:] {
		inner *= d
	}
	for o := 0; o < outer; o++ {
		for k := 0; k < a.Shape[dim]; k++ {
			for i := 0; i < inner; i++ {
				out.Data[o*inner+i] += a.Data[o*a.Shape[dim]*inner+k*inner+i]
			}
		}
	}
	return out, nil
}

// Softmax normalizes along dim.
func Softmax(a *Dense, dim int) (*Dense, error) {
	r := a.Rank()
	if dim < 0 {
		dim += r
	}
	if dim < 0 || dim >= r {
		return nil, fmt.Errorf("numeric: softmax dim %d rank %d", dim, r)
	}
	out := a.Clone()
	outer := 1
	for _, d := range a.Shape[:dim] {
		outer *= d
	}
	inner := 1
	for _, d := range a.Shape[dim+1:] {
		inner *= d
	}
	n := a.Shape[dim]
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			maxv := math.Inf(-1)
			for k := 0; k < n; k++ {
				v := out.Data[o*n*inner+k*inner+i]
				if v > maxv {
					maxv = v
				}
			}
			sum := 0.0
			for k := 0; k < n; k++ {
				e := math.Exp(out.Data[o*n*inner+k*inner+i] - maxv)
				out.Data[o*n*inner+k*inner+i] = e
				sum += e
			}
			for k := 0; k < n; k++ {
				out.Data[o*n*inner+k*inner+i] /= sum
			}
		}
	}
	return out, nil
}

// LayerNorm normalizes the last dim: (x-μ)/σ · w + b.
func LayerNorm(x, w, b *Dense) (*Dense, error) {
	h := x.Shape[x.Rank()-1]
	if w.Numel() != h || b.Numel() != h {
		return nil, fmt.Errorf("numeric: layernorm weight %v bias %v for hidden %d", w.Shape, b.Shape, h)
	}
	out := x.Clone()
	rows := x.Numel() / h
	for r := 0; r < rows; r++ {
		seg := out.Data[r*h : (r+1)*h]
		mean := 0.0
		for _, v := range seg {
			mean += v
		}
		mean /= float64(h)
		varv := 0.0
		for _, v := range seg {
			varv += (v - mean) * (v - mean)
		}
		varv /= float64(h)
		inv := 1 / math.Sqrt(varv+normEps)
		for i := range seg {
			seg[i] = (seg[i]-mean)*inv*w.Data[i] + b.Data[i]
		}
	}
	return out, nil
}

// RMSNorm normalizes the last dim: x/rms(x) · w.
func RMSNorm(x, w *Dense) (*Dense, error) {
	h := x.Shape[x.Rank()-1]
	if w.Numel() != h {
		return nil, fmt.Errorf("numeric: rmsnorm weight %v for hidden %d", w.Shape, h)
	}
	out := x.Clone()
	rows := x.Numel() / h
	for r := 0; r < rows; r++ {
		seg := out.Data[r*h : (r+1)*h]
		ms := 0.0
		for _, v := range seg {
			ms += v * v
		}
		ms /= float64(h)
		inv := 1 / math.Sqrt(ms+normEps)
		for i := range seg {
			seg[i] = seg[i] * inv * w.Data[i]
		}
	}
	return out, nil
}

// Embedding looks up rows of table by the integer values in ids.
func Embedding(table, ids *Dense) (*Dense, error) {
	if table.Rank() != 2 {
		return nil, fmt.Errorf("numeric: embedding table rank %d", table.Rank())
	}
	v, h := table.Shape[0], table.Shape[1]
	outShape := append(append([]int(nil), ids.Shape...), h)
	out := NewDense(outShape...)
	for i, idf := range ids.Data {
		id := int(idf)
		if id < 0 || id >= v {
			return nil, fmt.Errorf("numeric: embedding id %d out of [0,%d)", id, v)
		}
		copy(out.Data[i*h:(i+1)*h], table.Data[id*h:(id+1)*h])
	}
	return out, nil
}

// EmbeddingShard looks ids up in a vocabulary shard starting at
// offset; out-of-shard ids contribute zeros.
func EmbeddingShard(table, ids *Dense, offset int) (*Dense, error) {
	if table.Rank() != 2 {
		return nil, fmt.Errorf("numeric: embedding_shard table rank %d", table.Rank())
	}
	rows, h := table.Shape[0], table.Shape[1]
	outShape := append(append([]int(nil), ids.Shape...), h)
	out := NewDense(outShape...)
	for i, idf := range ids.Data {
		id := int(idf) - offset
		if id < 0 || id >= rows {
			continue // masked to zero
		}
		copy(out.Data[i*h:(i+1)*h], table.Data[id*h:(id+1)*h])
	}
	return out, nil
}

// RoPE applies rotary position embedding in the adjacent-pair
// (GPT-NeoX interleaved) convention: x, cos, sin all [S, H] with even
// H; each pair (x[2i], x[2i+1]) is rotated by the matching cos/sin
// entries. This convention is both sequence-local (split S with
// matching cos/sin row slices) and hidden-chunk-local (split H on even
// boundaries with matching column slices) — the two localities the
// SP and TP RoPE lemmas encode.
func RoPE(x, cos, sin *Dense) (*Dense, error) {
	if x.Rank() != 2 || !SameShape(x, cos) || !SameShape(x, sin) {
		return nil, fmt.Errorf("numeric: rope shapes %v %v %v", x.Shape, cos.Shape, sin.Shape)
	}
	s, h := x.Shape[0], x.Shape[1]
	if h%2 != 0 {
		return nil, fmt.Errorf("numeric: rope hidden %d must be even", h)
	}
	out := NewDense(s, h)
	for i := 0; i < s; i++ {
		for j := 0; j < h; j += 2 {
			a, b := x.Data[i*h+j], x.Data[i*h+j+1]
			out.Data[i*h+j] = a*cos.Data[i*h+j] - b*sin.Data[i*h+j]
			out.Data[i*h+j+1] = a*sin.Data[i*h+j+1] + b*cos.Data[i*h+j+1]
		}
	}
	return out, nil
}

// Attention is non-causal multi-head scaled dot-product attention:
// q is [Sq, heads·dh]; k and v share [Skv, heads·dh] (Skv may differ
// from Sq — context parallelism attends query blocks against the full
// sequence).
func Attention(q, k, v *Dense, heads int) (*Dense, error) {
	if q.Rank() != 2 || k.Rank() != 2 || !SameShape(k, v) || q.Shape[1] != k.Shape[1] {
		return nil, fmt.Errorf("numeric: attention shapes %v %v %v", q.Shape, k.Shape, v.Shape)
	}
	sq, hd := q.Shape[0], q.Shape[1]
	skv := k.Shape[0]
	if heads <= 0 || hd%heads != 0 {
		return nil, fmt.Errorf("numeric: attention hidden %d heads %d", hd, heads)
	}
	dh := hd / heads
	out := NewDense(sq, hd)
	scale := 1 / math.Sqrt(float64(dh))
	for h := 0; h < heads; h++ {
		off := h * dh
		// scores[i][j] = q_i · k_j * scale
		for i := 0; i < sq; i++ {
			scores := make([]float64, skv)
			maxv := math.Inf(-1)
			for j := 0; j < skv; j++ {
				dot := 0.0
				for d := 0; d < dh; d++ {
					dot += q.Data[i*hd+off+d] * k.Data[j*hd+off+d]
				}
				scores[j] = dot * scale
				if scores[j] > maxv {
					maxv = scores[j]
				}
			}
			sum := 0.0
			for j := range scores {
				scores[j] = math.Exp(scores[j] - maxv)
				sum += scores[j]
			}
			for j := range scores {
				scores[j] /= sum
			}
			for d := 0; d < dh; d++ {
				acc := 0.0
				for j := 0; j < skv; j++ {
					acc += scores[j] * v.Data[j*hd+off+d]
				}
				out.Data[i*hd+off+d] = acc
			}
		}
	}
	return out, nil
}

// MSELoss is the mean over all elements of (pred-target)².
func MSELoss(pred, target *Dense) (*Dense, error) {
	se, err := SquaredError(pred, target)
	if err != nil {
		return nil, err
	}
	se.Data[0] /= float64(pred.Numel())
	return se, nil
}

// SquaredError is the sum over all elements of (pred-target)².
func SquaredError(pred, target *Dense) (*Dense, error) {
	if !SameShape(pred, target) {
		return nil, fmt.Errorf("numeric: sqerr shapes %v vs %v", pred.Shape, target.Shape)
	}
	out := NewDense(1)
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		out.Data[0] += d * d
	}
	return out, nil
}

// Router computes softmax(x·w) over the expert dim (last).
func Router(x, w *Dense) (*Dense, error) {
	logits, err := MatMul(x, w)
	if err != nil {
		return nil, err
	}
	return Softmax(logits, logits.Rank()-1)
}

// AuxLoss is the mean over tokens of E·Σ_e p[s,e]² — a per-token
// load-balance penalty, additive over token shards (the property the
// auxloss-token-split lemma encodes).
func AuxLoss(probs *Dense) (*Dense, error) {
	if probs.Rank() != 2 {
		return nil, fmt.Errorf("numeric: auxloss rank %d", probs.Rank())
	}
	s, e := probs.Shape[0], probs.Shape[1]
	out := NewDense(1)
	for i := 0; i < s; i++ {
		tok := 0.0
		for j := 0; j < e; j++ {
			p := probs.Data[i*e+j]
			tok += p * p
		}
		out.Data[0] += float64(e) * tok
	}
	out.Data[0] /= float64(s)
	return out, nil
}

// FusedAddRMSNorm is rmsnorm(add(x, residual), w).
func FusedAddRMSNorm(x, res, w *Dense) (*Dense, error) {
	s, err := Add(x, res)
	if err != nil {
		return nil, err
	}
	return RMSNorm(s, w)
}

// FusedSiluMul is silu(gate) ⊙ up.
func FusedSiluMul(gate, up *Dense) (*Dense, error) {
	s, err := Unary("silu", gate)
	if err != nil {
		return nil, err
	}
	return Mul(s, up)
}
