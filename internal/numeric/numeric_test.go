package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestMatMul2D(t *testing.T) {
	a := FromData([]int{2, 3}, []float64{1, 2, 3, 4, 5, 6})
	b := FromData([]int{3, 2}, []float64{7, 8, 9, 10, 11, 12})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if math.Abs(c.Data[i]-v) > 1e-12 {
			t.Fatalf("matmul[%d] = %g want %g", i, c.Data[i], v)
		}
	}
	if _, err := MatMul(a, a); err == nil {
		t.Fatal("inner mismatch must fail")
	}
}

func TestMatMulBatched(t *testing.T) {
	r := rng()
	a := Rand(r, 2, 3, 4)
	b := Rand(r, 4, 5)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shape[0] != 2 || c.Shape[1] != 3 || c.Shape[2] != 5 {
		t.Fatalf("batched shape %v", c.Shape)
	}
	// slice 0 equals plain matmul of slice 0
	a0 := FromData([]int{3, 4}, a.Data[:12])
	c0, _ := MatMul(a0, b)
	if MaxAbsDiff(FromData([]int{3, 5}, c.Data[:15]), c0) > 1e-12 {
		t.Fatal("batched result wrong")
	}
}

func TestConcatSliceRoundTrip(t *testing.T) {
	r := rng()
	for dim := 0; dim < 2; dim++ {
		x := Rand(r, 4, 6)
		lo, hi := 1, 3
		s1, err := Slice(x, dim, 0, lo)
		if err != nil {
			t.Fatal(err)
		}
		s2, _ := Slice(x, dim, lo, hi)
		s3, _ := Slice(x, dim, hi, x.Shape[dim])
		back, err := Concat(dim, s1, s2, s3)
		if err != nil {
			t.Fatal(err)
		}
		if MaxAbsDiff(x, back) != 0 {
			t.Fatalf("round trip failed on dim %d", dim)
		}
	}
}

func TestPadSlice(t *testing.T) {
	r := rng()
	x := Rand(r, 3, 4)
	p, err := Pad(x, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shape[0] != 6 {
		t.Fatalf("pad shape %v", p.Shape)
	}
	if p.Data[0] != 0 || p.Data[4] != 0 {
		t.Fatal("padding must be zero")
	}
	back, _ := Slice(p, 0, 2, 5)
	if MaxAbsDiff(x, back) != 0 {
		t.Fatal("pad-slice inverse failed")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng()
	x := Rand(r, 3, 4, 5)
	y, err := Transpose(x, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shape[0] != 5 || y.Shape[2] != 3 {
		t.Fatalf("transpose shape %v", y.Shape)
	}
	z, _ := Transpose(y, 0, 2)
	if MaxAbsDiff(x, z) != 0 {
		t.Fatal("double transpose must be identity")
	}
	if y.At(1, 2, 0) != x.At(0, 2, 1) {
		t.Fatal("transpose element mapping wrong")
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := FromData([]int{2, 3}, []float64{1, 2, 3, 0, 0, 0})
	s, err := Softmax(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		sum := s.Data[r*3] + s.Data[r*3+1] + s.Data[r*3+2]
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", r, sum)
		}
	}
	if math.Abs(s.Data[3]-1.0/3) > 1e-12 {
		t.Fatal("uniform row should be 1/3")
	}
}

func TestNormsRowLocal(t *testing.T) {
	// Row locality is what the concat lemmas rely on: norm of the
	// concatenation equals concatenation of norms.
	r := rng()
	x1, x2 := Rand(r, 2, 8), Rand(r, 3, 8)
	w, b := Rand(r, 8), Rand(r, 8)
	full, _ := Concat(0, x1, x2)

	lnFull, err := LayerNorm(full, w, b)
	if err != nil {
		t.Fatal(err)
	}
	ln1, _ := LayerNorm(x1, w, b)
	ln2, _ := LayerNorm(x2, w, b)
	lnCat, _ := Concat(0, ln1, ln2)
	if MaxAbsDiff(lnFull, lnCat) > 1e-12 {
		t.Fatal("layernorm is not row-local")
	}

	rmsFull, _ := RMSNorm(full, w)
	rms1, _ := RMSNorm(x1, w)
	rms2, _ := RMSNorm(x2, w)
	rmsCat, _ := Concat(0, rms1, rms2)
	if MaxAbsDiff(rmsFull, rmsCat) > 1e-12 {
		t.Fatal("rmsnorm is not row-local")
	}
}

func TestEmbeddingAndShards(t *testing.T) {
	r := rng()
	table := Rand(r, 10, 4)
	ids := FromData([]int{3}, []float64{0, 7, 3})
	e, err := Embedding(table, ids)
	if err != nil {
		t.Fatal(err)
	}
	if e.Shape[0] != 3 || e.Shape[1] != 4 {
		t.Fatalf("embedding shape %v", e.Shape)
	}
	// vocab-parallel identity: emb(table, ids) = Σ shard lookups
	t1, _ := Slice(table, 0, 0, 5)
	t2, _ := Slice(table, 0, 5, 10)
	e1, _ := EmbeddingShard(t1, ids, 0)
	e2, _ := EmbeddingShard(t2, ids, 5)
	sum, _ := Add(e1, e2)
	if MaxAbsDiff(e, sum) != 0 {
		t.Fatal("vocab-parallel embedding identity failed")
	}
	bad := FromData([]int{1}, []float64{99})
	if _, err := Embedding(table, bad); err == nil {
		t.Fatal("out-of-range id must fail")
	}
}

func TestRoPESeqLocal(t *testing.T) {
	r := rng()
	x := Rand(r, 4, 8)
	cos := Rand(r, 4, 8)
	sin := Rand(r, 4, 8)
	full, err := RoPE(x, cos, sin)
	if err != nil {
		t.Fatal(err)
	}
	x1, _ := Slice(x, 0, 0, 2)
	x2, _ := Slice(x, 0, 2, 4)
	c1, _ := Slice(cos, 0, 0, 2)
	c2, _ := Slice(cos, 0, 2, 4)
	s1, _ := Slice(sin, 0, 0, 2)
	s2, _ := Slice(sin, 0, 2, 4)
	r1, _ := RoPE(x1, c1, s1)
	r2, _ := RoPE(x2, c2, s2)
	cat, _ := Concat(0, r1, r2)
	if MaxAbsDiff(full, cat) > 1e-12 {
		t.Fatal("rope is not sequence-local with matching cos/sin slices")
	}
	// wrong offsets really change the value (bug 1 is observable)
	r2bad, _ := RoPE(x2, c1, s1)
	catBad, _ := Concat(0, r1, r2bad)
	if MaxAbsDiff(full, catBad) < 1e-9 {
		t.Fatal("wrong cos/sin offsets should change the output")
	}
}

func TestRoPEHiddenLocal(t *testing.T) {
	// Adjacent-pair convention: even hidden splits commute with RoPE.
	r := rng()
	x, cos, sin := Rand(r, 4, 8), Rand(r, 4, 8), Rand(r, 4, 8)
	full, err := RoPE(x, cos, sin)
	if err != nil {
		t.Fatal(err)
	}
	split := func(d *Dense) (*Dense, *Dense) {
		a, _ := Slice(d, 1, 0, 4)
		b, _ := Slice(d, 1, 4, 8)
		return a, b
	}
	x1, x2 := split(x)
	c1, c2 := split(cos)
	s1, s2 := split(sin)
	r1, _ := RoPE(x1, c1, s1)
	r2, _ := RoPE(x2, c2, s2)
	cat, _ := Concat(1, r1, r2)
	if MaxAbsDiff(full, cat) > 1e-12 {
		t.Fatal("rope is not hidden-chunk-local under adjacent-pair rotation")
	}
}

func TestBroadcastMul(t *testing.T) {
	r := rng()
	gate := Rand(r, 3, 1)
	x := Rand(r, 3, 4)
	out, err := Mul(gate, x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape[0] != 3 || out.Shape[1] != 4 {
		t.Fatalf("broadcast shape %v", out.Shape)
	}
	if math.Abs(out.At(1, 2)-gate.At(1, 0)*x.At(1, 2)) > 1e-12 {
		t.Fatal("broadcast value wrong")
	}
	bad := Rand(r, 2, 4)
	if _, err := Mul(bad, x); err == nil {
		t.Fatal("incompatible broadcast must fail")
	}
}

func TestAttentionHeadLocal(t *testing.T) {
	r := rng()
	q, k, v := Rand(r, 4, 8), Rand(r, 4, 8), Rand(r, 4, 8)
	full, err := Attention(q, k, v, 4)
	if err != nil {
		t.Fatal(err)
	}
	split := func(x *Dense) (*Dense, *Dense) {
		a, _ := Slice(x, 1, 0, 4)
		b, _ := Slice(x, 1, 4, 8)
		return a, b
	}
	q1, q2 := split(q)
	k1, k2 := split(k)
	v1, v2 := split(v)
	a1, _ := Attention(q1, k1, v1, 2)
	a2, _ := Attention(q2, k2, v2, 2)
	cat, _ := Concat(1, a1, a2)
	if MaxAbsDiff(full, cat) > 1e-12 {
		t.Fatal("attention is not head-local")
	}
}

func TestLossIdentities(t *testing.T) {
	r := rng()
	p1, p2 := Rand(r, 2, 3), Rand(r, 2, 3)
	t1, t2 := Rand(r, 2, 3), Rand(r, 2, 3)
	pFull, _ := Concat(0, p1, p2)
	tFull, _ := Concat(0, t1, t2)
	mseFull, _ := MSELoss(pFull, tFull)
	m1, _ := MSELoss(p1, t1)
	m2, _ := MSELoss(p2, t2)
	sum, _ := Add(m1, m2)
	scaled, _ := ScaleRat(sum, 1, 2)
	if MaxAbsDiff(mseFull, scaled) > 1e-12 {
		t.Fatal("mse-batch-split identity failed")
	}
	seFull, _ := SquaredError(pFull, tFull)
	s1, _ := SquaredError(p1, t1)
	s2, _ := SquaredError(p2, t2)
	seSum, _ := Add(s1, s2)
	if MaxAbsDiff(seFull, seSum) > 1e-10 {
		t.Fatal("sqerr additivity failed")
	}
}

func TestAuxLossTokenSplitIdentity(t *testing.T) {
	r := rng()
	p1, p2 := Rand(r, 3, 4), Rand(r, 3, 4)
	full, _ := Concat(0, p1, p2)
	aFull, err := AuxLoss(full)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := AuxLoss(p1)
	a2, _ := AuxLoss(p2)
	sum, _ := Add(a1, a2)
	scaled, _ := ScaleRat(sum, 1, 2)
	if MaxAbsDiff(aFull, scaled) > 1e-12 {
		t.Fatal("auxloss token-split identity failed")
	}
}

func TestFusedKernels(t *testing.T) {
	r := rng()
	x, res, w := Rand(r, 3, 8), Rand(r, 3, 8), Rand(r, 8)
	fused, err := FusedAddRMSNorm(x, res, w)
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := Add(x, res)
	unfused, _ := RMSNorm(sum, w)
	if MaxAbsDiff(fused, unfused) != 0 {
		t.Fatal("fused add-rmsnorm mismatch")
	}
	g, u := Rand(r, 3, 8), Rand(r, 3, 8)
	fsm, _ := FusedSiluMul(g, u)
	sg, _ := Unary("silu", g)
	mu, _ := Mul(sg, u)
	if MaxAbsDiff(fsm, mu) != 0 {
		t.Fatal("fused silu-mul mismatch")
	}
}

// Property: block matmul identity — the soundness of the row-parallel
// lemma, validated numerically on random shapes.
func TestQuickBlockMatMul(t *testing.T) {
	r := rng()
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m, k1, k2, n := 1+rr.Intn(4), 1+rr.Intn(4), 1+rr.Intn(4), 1+rr.Intn(4)
		x1, x2 := Rand(rr, m, k1), Rand(rr, m, k2)
		w1, w2 := Rand(rr, k1, n), Rand(rr, k2, n)
		xf, _ := Concat(1, x1, x2)
		wf, _ := Concat(0, w1, w2)
		full, _ := MatMul(xf, wf)
		p1, _ := MatMul(x1, w1)
		p2, _ := MatMul(x2, w2)
		sum, _ := Add(p1, p2)
		return AllClose(full, sum, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

// Property: column-parallel matmul identity.
func TestQuickColMatMul(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m, k, n1, n2 := 1+rr.Intn(4), 1+rr.Intn(4), 1+rr.Intn(4), 1+rr.Intn(4)
		x := Rand(rr, m, k)
		w1, w2 := Rand(rr, k, n1), Rand(rr, k, n2)
		wf, _ := Concat(1, w1, w2)
		full, _ := MatMul(x, wf)
		c1, _ := MatMul(x, w1)
		c2, _ := MatMul(x, w2)
		cat, _ := Concat(1, c1, c2)
		return AllClose(full, cat, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalGraphFigure1(t *testing.T) {
	// Evaluate both Figure-1 graphs and check the relation manually:
	// F = concat(F1, F2, 0).
	bs := graph.NewBuilder("Gs", nil)
	A := bs.Input("A", shape.Of(4, 8))
	B := bs.Input("B", shape.Of(8, 6))
	E := bs.Input("E", shape.Of(4, 6))
	C := bs.MatMul("matmul", A, B)
	F := bs.Sub("matsub", C, E)
	bs.Output(F)
	gs := bs.MustBuild()

	bd := graph.NewBuilder("Gd", nil)
	A1 := bd.Input("A1", shape.Of(4, 4))
	A2 := bd.Input("A2", shape.Of(4, 4))
	B1 := bd.Input("B1", shape.Of(4, 6))
	B2 := bd.Input("B2", shape.Of(4, 6))
	E0 := bd.Input("E0", shape.Of(2, 6))
	E1 := bd.Input("E1", shape.Of(2, 6))
	C1 := bd.MatMul("r0/matmul", A1, B1)
	C2 := bd.MatMul("r1/matmul", A2, B2)
	D := bd.ReduceScatter("rs", 0, C1, C2)
	F1 := bd.Sub("r0/matsub", D[0], E0)
	F2 := bd.Sub("r1/matsub", D[1], E1)
	bd.Output(F1, F2)
	gd := bd.MustBuild()

	r := rng()
	a := Rand(r, 4, 8)
	b := Rand(r, 8, 6)
	e := Rand(r, 4, 6)
	sv, err := EvalGraph(gs, map[string]*Dense{"A": a, "B": b, "E": e}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := Slice(a, 1, 0, 4)
	a2, _ := Slice(a, 1, 4, 8)
	b1, _ := Slice(b, 0, 0, 4)
	b2, _ := Slice(b, 0, 4, 8)
	e0, _ := Slice(e, 0, 0, 2)
	e1, _ := Slice(e, 0, 2, 4)
	dv, err := EvalGraph(gd, map[string]*Dense{
		"A1": a1, "A2": a2, "B1": b1, "B2": b2, "E0": e0, "E1": e1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fT, _ := gs.TensorByName("matsub.out")
	f1T, _ := gd.TensorByName("r0/matsub.out")
	f2T, _ := gd.TensorByName("r1/matsub.out")
	rebuilt, _ := Concat(0, dv[f1T.ID], dv[f2T.ID])
	if !AllClose(sv[fT.ID], rebuilt, 1e-10) {
		t.Fatalf("distributed result differs: max diff %g", MaxAbsDiff(sv[fT.ID], rebuilt))
	}
}

func TestEvalTerm(t *testing.T) {
	r := rng()
	x1, x2 := Rand(r, 2, 3), Rand(r, 2, 3)
	lookup := func(tid int) (*Dense, error) {
		switch tid {
		case 1:
			return x1, nil
		case 2:
			return x2, nil
		}
		return nil, errMissing
	}
	term := expr.ConcatI(0, expr.Tensor(1, "x1"), expr.Tensor(2, "x2"))
	got, err := EvalTerm(term, nil, lookup)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Concat(0, x1, x2)
	if MaxAbsDiff(got, want) != 0 {
		t.Fatal("term eval mismatch")
	}
	sumT := expr.Sum(expr.Tensor(1, ""), expr.Tensor(2, ""))
	got, _ = EvalTerm(sumT, nil, lookup)
	want, _ = Add(x1, x2)
	if MaxAbsDiff(got, want) != 0 {
		t.Fatal("sum term eval mismatch")
	}
	scaleT := expr.Scale(expr.Tensor(1, ""), 1, 2)
	got, _ = EvalTerm(scaleT, Env{}, lookup)
	want, _ = ScaleRat(x1, 1, 2)
	if MaxAbsDiff(got, want) != 0 {
		t.Fatal("scale term eval mismatch")
	}
}

var errMissing = fmtErr("missing tensor")

type fmtErr string

func (e fmtErr) Error() string { return string(e) }

func TestEnvSymbolic(t *testing.T) {
	ctx := sym.NewContext()
	S := sym.Var("S")
	b := graph.NewBuilder("g", ctx)
	x := b.Input("x", shape.Shape{S, sym.Const(2)})
	y := b.Unary("act", "relu", x)
	b.Output(y)
	g := b.MustBuild()
	r := rng()
	in := Rand(r, 3, 2)
	vals, err := EvalGraph(g, map[string]*Dense{"x": in}, Env{"S": 3})
	if err != nil {
		t.Fatal(err)
	}
	yT, _ := g.TensorByName("act.out")
	if vals[yT.ID].Shape[0] != 3 {
		t.Fatal("symbolic eval failed")
	}
	if _, err := EvalGraph(g, map[string]*Dense{"x": in}, Env{"S": 5}); err == nil {
		t.Fatal("wrong env binding must fail shape check")
	}
}
