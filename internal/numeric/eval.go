package numeric

import (
	"fmt"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/sym"
)

// Env binds the symbolic scalars of a graph to concrete integers for
// numeric evaluation.
type Env map[sym.Symbol]int64

func (e Env) eval(x sym.Expr) (int, error) {
	v, err := x.Eval(e)
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

// applyOp dispatches one operator application to its kernel. ints are
// the already-resolved integer attributes. It returns one output per
// declared output (collectives return several).
func applyOp(op expr.Op, str string, ints []int, in []*Dense) ([]*Dense, error) {
	one := func(t *Dense, err error) ([]*Dense, error) {
		if err != nil {
			return nil, err
		}
		return []*Dense{t}, nil
	}
	switch op {
	case expr.OpMatMul:
		return one(MatMul(in[0], in[1]))
	case expr.OpAdd:
		return one(Add(in[0], in[1]))
	case expr.OpSub:
		return one(Sub(in[0], in[1]))
	case expr.OpMul:
		return one(Mul(in[0], in[1]))
	case expr.OpDiv:
		return one(Div(in[0], in[1]))
	case expr.OpSum:
		return one(SumN(in...))
	case expr.OpScale:
		return one(ScaleRat(in[0], int64(ints[0]), int64(ints[1])))
	case expr.OpUnary:
		return one(Unary(str, in[0]))
	case expr.OpIdentity:
		return one(in[0].Clone(), nil)
	case expr.OpConcat:
		return one(Concat(ints[0], in...))
	case expr.OpSlice:
		return one(Slice(in[0], ints[0], ints[1], ints[2]))
	case expr.OpPad:
		return one(Pad(in[0], ints[0], ints[1], ints[2]))
	case expr.OpTranspose:
		return one(Transpose(in[0], ints[0], ints[1]))
	case expr.OpReshape:
		return one(Reshape(in[0], ints))
	case expr.OpReduceSum:
		return one(ReduceSum(in[0], ints[0]))
	case expr.OpSoftmax:
		return one(Softmax(in[0], ints[0]))
	case expr.OpLayerNorm:
		return one(LayerNorm(in[0], in[1], in[2]))
	case expr.OpRMSNorm:
		return one(RMSNorm(in[0], in[1]))
	case expr.OpEmbedding:
		return one(Embedding(in[0], in[1]))
	case expr.OpEmbeddingShard:
		return one(EmbeddingShard(in[0], in[1], ints[0]))
	case expr.OpRoPE:
		return one(RoPE(in[0], in[1], in[2]))
	case expr.OpAttention:
		return one(Attention(in[0], in[1], in[2], ints[0]))
	case expr.OpMSELoss:
		return one(MSELoss(in[0], in[1]))
	case expr.OpSquaredError:
		return one(SquaredError(in[0], in[1]))
	case expr.OpRouter:
		return one(Router(in[0], in[1]))
	case expr.OpAuxLoss:
		return one(AuxLoss(in[0]))
	case expr.OpFusedAddRMSNorm:
		return one(FusedAddRMSNorm(in[0], in[1], in[2]))
	case expr.OpFusedSiluMul:
		return one(FusedSiluMul(in[0], in[1]))
	case expr.OpAllReduce:
		s, err := SumN(in...)
		if err != nil {
			return nil, err
		}
		out := make([]*Dense, len(in))
		for i := range in {
			out[i] = s.Clone()
		}
		return out, nil
	case expr.OpReduceScatter:
		s, err := SumN(in...)
		if err != nil {
			return nil, err
		}
		d := ints[0]
		if s.Shape[d]%len(in) != 0 {
			return nil, fmt.Errorf("numeric: reducescatter extent %d ranks %d", s.Shape[d], len(in))
		}
		chunk := s.Shape[d] / len(in)
		out := make([]*Dense, len(in))
		for i := range in {
			sl, err := Slice(s, d, i*chunk, (i+1)*chunk)
			if err != nil {
				return nil, err
			}
			out[i] = sl
		}
		return out, nil
	case expr.OpAllGather:
		cat, err := Concat(ints[0], in...)
		if err != nil {
			return nil, err
		}
		out := make([]*Dense, len(in))
		for i := range in {
			out[i] = cat.Clone()
		}
		return out, nil
	}
	return nil, fmt.Errorf("numeric: no kernel for %q", op)
}

// EvalGraph runs a computation graph on concrete inputs (keyed by
// input tensor name) and returns every tensor's value.
func EvalGraph(g *graph.Graph, inputs map[string]*Dense, env Env) (map[graph.TensorID]*Dense, error) {
	vals := make(map[graph.TensorID]*Dense, len(g.Tensors))
	for _, in := range g.Inputs {
		t := g.Tensor(in)
		v, ok := inputs[t.Name]
		if !ok {
			return nil, fmt.Errorf("numeric: missing input %q", t.Name)
		}
		want, err := t.Shape.Concrete(env)
		if err != nil {
			return nil, fmt.Errorf("numeric: input %q: %v", t.Name, err)
		}
		if len(want) != v.Rank() {
			return nil, fmt.Errorf("numeric: input %q rank %d, declared %d", t.Name, v.Rank(), len(want))
		}
		for i := range want {
			if want[i] != v.Shape[i] {
				return nil, fmt.Errorf("numeric: input %q shape %v, declared %v", t.Name, v.Shape, want)
			}
		}
		vals[in] = v
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, n := range order {
		in := make([]*Dense, len(n.Inputs))
		for i, id := range n.Inputs {
			v, ok := vals[id]
			if !ok {
				return nil, fmt.Errorf("numeric: node %q input %d unavailable", n.Label, id)
			}
			in[i] = v
		}
		ints := make([]int, len(n.Ints))
		for i, e := range n.Ints {
			v, err := env.eval(e)
			if err != nil {
				return nil, fmt.Errorf("numeric: node %q attr %d: %v", n.Label, i, err)
			}
			ints[i] = v
		}
		outs, err := applyOp(n.Op, n.Str, ints, in)
		if err != nil {
			return nil, fmt.Errorf("numeric: node %q: %v", n.Label, err)
		}
		if len(outs) != len(n.Outputs) {
			return nil, fmt.Errorf("numeric: node %q produced %d outputs, declared %d", n.Label, len(outs), len(n.Outputs))
		}
		for i, id := range n.Outputs {
			vals[id] = outs[i]
		}
	}
	return vals, nil
}

// EvalTerm evaluates a relation expression; leaves are resolved by the
// lookup callback (typically G_d tensor values keyed by the offset
// leaf-ID convention).
func EvalTerm(t *expr.Term, env Env, lookup func(tid int) (*Dense, error)) (*Dense, error) {
	if t.IsLeaf() {
		return lookup(t.TID)
	}
	in := make([]*Dense, len(t.Args))
	for i, a := range t.Args {
		v, err := EvalTerm(a, env, lookup)
		if err != nil {
			return nil, err
		}
		in[i] = v
	}
	ints := make([]int, len(t.Ints))
	for i, e := range t.Ints {
		v, err := env.eval(e)
		if err != nil {
			return nil, err
		}
		ints[i] = v
	}
	outs, err := applyOp(t.Op, t.Str, ints, in)
	if err != nil {
		return nil, fmt.Errorf("numeric: term %s: %v", t, err)
	}
	if len(outs) != 1 {
		return nil, fmt.Errorf("numeric: term %s has %d outputs", t, len(outs))
	}
	return outs[0], nil
}
