// Package numeric implements a dense float64 tensor engine with one
// kernel per operator in the expression language, plus interpreters
// for computation graphs and relation expressions. It plays the role
// of the paper's lemma-validation machinery (§5): differential tests
// run G_s and G_d on concrete inputs and check that the relations
// ENTANGLE emits really reconstruct G_s's outputs.
package numeric

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a dense row-major float64 tensor.
type Dense struct {
	Shape []int
	Data  []float64
}

// NewDense allocates a zero tensor.
func NewDense(shape ...int) *Dense {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("numeric: negative dim %d", d))
		}
		n *= d
	}
	return &Dense{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromData wraps existing data (length must match the shape product).
func FromData(shape []int, data []float64) *Dense {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("numeric: data length %d != shape product %d", len(data), n))
	}
	return &Dense{Shape: append([]int(nil), shape...), Data: data}
}

// Rand fills a new tensor with uniform values in [-1, 1).
func Rand(rng *rand.Rand, shape ...int) *Dense {
	t := NewDense(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float64()*2 - 1
	}
	return t
}

// RandInts fills a new tensor with integer values in [0, hi).
func RandInts(rng *rand.Rand, hi int, shape ...int) *Dense {
	t := NewDense(shape...)
	for i := range t.Data {
		t.Data[i] = float64(rng.Intn(hi))
	}
	return t
}

// Numel returns the element count.
func (t *Dense) Numel() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Dense) Rank() int { return len(t.Shape) }

// Clone deep-copies the tensor.
func (t *Dense) Clone() *Dense {
	c := NewDense(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// strides returns row-major strides.
func (t *Dense) strides() []int {
	s := make([]int, len(t.Shape))
	acc := 1
	for i := len(t.Shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= t.Shape[i]
	}
	return s
}

// At reads by multi-index.
func (t *Dense) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set writes by multi-index.
func (t *Dense) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Dense) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("numeric: index rank %d != tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, s := range t.strides() {
		if idx[i] < 0 || idx[i] >= t.Shape[i] {
			panic(fmt.Sprintf("numeric: index %v out of range for %v", idx, t.Shape))
		}
		off += idx[i] * s
	}
	return off
}

// SameShape reports shape equality.
func SameShape(a, b *Dense) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// AllClose reports element-wise closeness within tol.
func AllClose(a, b *Dense, tol float64) bool {
	if !SameShape(a, b) || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		scale := math.Max(math.Abs(a.Data[i]), math.Abs(b.Data[i]))
		if d > tol*(1+scale) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute elementwise difference.
func MaxAbsDiff(a, b *Dense) float64 {
	if !SameShape(a, b) {
		return math.Inf(1)
	}
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

func (t *Dense) String() string {
	return fmt.Sprintf("Dense%v(%d elems)", t.Shape, len(t.Data))
}
