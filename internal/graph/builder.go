package graph

import (
	"fmt"

	"entangle/internal/expr"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// Builder constructs graphs fluently with shape inference at every
// step. It is this repository's stand-in for TorchDynamo/torch.fx
// graph capture: model code "runs" against the builder and the DAG is
// recorded. Errors are deferred: the first error poisons the builder
// and is returned by Build, so model code can chain calls without
// per-call error handling.
type Builder struct {
	g    *Graph
	err  error
	auto int // for auto-generated names
}

// NewBuilder returns a builder for a graph with the given name.
func NewBuilder(name string, ctx *sym.Context) *Builder {
	return &Builder{g: New(name, ctx)}
}

// Ctx returns the symbolic context of the graph under construction.
func (b *Builder) Ctx() *sym.Context { return b.g.Ctx }

// Err returns the first recorded error.
func (b *Builder) Err() error { return b.err }

// Fail records an external error, poisoning the builder; Build will
// return it. Strategy helpers use it to defer their own failures.
func (b *Builder) Fail(err error) {
	if b.err == nil && err != nil {
		b.err = err
	}
}

func (b *Builder) fail(format string, args ...any) TensorID {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return 0
}

// Input declares a graph input tensor.
func (b *Builder) Input(name string, sh shape.Shape) TensorID {
	if b.err != nil {
		return 0
	}
	id, err := b.g.addTensor(name, sh, NoProducer, 0)
	if err != nil {
		return b.fail("%v", err)
	}
	b.g.Inputs = append(b.g.Inputs, id)
	return id
}

// Output marks a tensor as a graph output.
func (b *Builder) Output(ids ...TensorID) {
	if b.err != nil {
		return
	}
	b.g.Outputs = append(b.g.Outputs, ids...)
}

// Op appends a single-output operator node and returns its output
// tensor. label may be empty; outName may be empty for an
// auto-generated name.
func (b *Builder) Op(op expr.Op, label, outName string, str string, ints []sym.Expr, inputs ...TensorID) TensorID {
	outs := b.MultiOp(op, label, []string{outName}, str, ints, inputs...)
	if b.err != nil {
		return 0
	}
	return outs[0]
}

// MultiOp appends an operator node with len(outNames) outputs.
func (b *Builder) MultiOp(op expr.Op, label string, outNames []string, str string, ints []sym.Expr, inputs ...TensorID) []TensorID {
	if b.err != nil {
		return nil
	}
	inShapes := make([]shape.Shape, len(inputs))
	for i, in := range inputs {
		if int(in) < 0 || int(in) >= len(b.g.Tensors) {
			b.fail("graph %s: op %s input %d missing", b.g.Name, op, in)
			return nil
		}
		inShapes[i] = b.g.Tensor(in).Shape
	}
	outShapes, err := shape.Infer(op, str, ints, inShapes, b.g.Ctx)
	if err != nil {
		b.fail("graph %s: %s (%s): %v", b.g.Name, op, label, err)
		return nil
	}
	if len(outShapes) != len(outNames) {
		b.fail("graph %s: %s (%s): %d outputs inferred, %d names given", b.g.Name, op, label, len(outShapes), len(outNames))
		return nil
	}
	nid := NodeID(len(b.g.Nodes))
	if label == "" {
		label = fmt.Sprintf("%s_%d", op, nid)
	}
	n := &Node{ID: nid, Op: op, Str: str, Ints: ints, Inputs: inputs, Label: label}
	for i, name := range outNames {
		if name == "" {
			name = fmt.Sprintf("%s_out%d", label, b.auto)
			b.auto++
		}
		tid, err := b.g.addTensor(name, outShapes[i], nid, i)
		if err != nil {
			b.fail("%v", err)
			return nil
		}
		n.Outputs = append(n.Outputs, tid)
	}
	b.g.Nodes = append(b.g.Nodes, n)
	// Return a copy: callers routinely overwrite entries of the
	// returned slice (x[r] = nextOp(...)), which must not reach the
	// node's own output list.
	out := make([]TensorID, len(n.Outputs))
	copy(out, n.Outputs)
	return out
}

// Convenience wrappers for common operators. Each takes a label used
// in bug-localization output; the output tensor name is derived from it.

func (b *Builder) MatMul(label string, a, c TensorID) TensorID {
	return b.Op(expr.OpMatMul, label, label+".out", "", nil, a, c)
}

func (b *Builder) Add(label string, a, c TensorID) TensorID {
	return b.Op(expr.OpAdd, label, label+".out", "", nil, a, c)
}

func (b *Builder) Sub(label string, a, c TensorID) TensorID {
	return b.Op(expr.OpSub, label, label+".out", "", nil, a, c)
}

func (b *Builder) Mul(label string, a, c TensorID) TensorID {
	return b.Op(expr.OpMul, label, label+".out", "", nil, a, c)
}

func (b *Builder) Div(label string, a, c TensorID) TensorID {
	return b.Op(expr.OpDiv, label, label+".out", "", nil, a, c)
}

func (b *Builder) Scale(label string, a TensorID, num, den int64) TensorID {
	return b.Op(expr.OpScale, label, label+".out", "", []sym.Expr{sym.Const(num), sym.Const(den)}, a)
}

func (b *Builder) Unary(label, fn string, a TensorID) TensorID {
	return b.Op(expr.OpUnary, label, label+".out", fn, nil, a)
}

func (b *Builder) Concat(label string, dim sym.Expr, args ...TensorID) TensorID {
	return b.Op(expr.OpConcat, label, label+".out", "", []sym.Expr{dim}, args...)
}

func (b *Builder) Slice(label string, a TensorID, dim, begin, end sym.Expr) TensorID {
	return b.Op(expr.OpSlice, label, label+".out", "", []sym.Expr{dim, begin, end}, a)
}

func (b *Builder) SliceI(label string, a TensorID, dim, begin, end int64) TensorID {
	return b.Slice(label, a, sym.Const(dim), sym.Const(begin), sym.Const(end))
}

func (b *Builder) Transpose(label string, a TensorID, d0, d1 int64) TensorID {
	return b.Op(expr.OpTranspose, label, label+".out", "", []sym.Expr{sym.Const(d0), sym.Const(d1)}, a)
}

func (b *Builder) Reshape(label string, a TensorID, sh shape.Shape) TensorID {
	return b.Op(expr.OpReshape, label, label+".out", "", sh, a)
}

func (b *Builder) Pad(label string, a TensorID, dim, before, after sym.Expr) TensorID {
	return b.Op(expr.OpPad, label, label+".out", "", []sym.Expr{dim, before, after}, a)
}

func (b *Builder) Softmax(label string, a TensorID, dim int64) TensorID {
	return b.Op(expr.OpSoftmax, label, label+".out", "", []sym.Expr{sym.Const(dim)}, a)
}

func (b *Builder) ReduceSum(label string, a TensorID, dim int64) TensorID {
	return b.Op(expr.OpReduceSum, label, label+".out", "", []sym.Expr{sym.Const(dim)}, a)
}

func (b *Builder) LayerNorm(label string, x, w, bias TensorID) TensorID {
	return b.Op(expr.OpLayerNorm, label, label+".out", "", nil, x, w, bias)
}

func (b *Builder) RMSNorm(label string, x, w TensorID) TensorID {
	return b.Op(expr.OpRMSNorm, label, label+".out", "", nil, x, w)
}

func (b *Builder) Embedding(label string, table, ids TensorID) TensorID {
	return b.Op(expr.OpEmbedding, label, label+".out", "", nil, table, ids)
}

func (b *Builder) EmbeddingShard(label string, table, ids TensorID, offset sym.Expr) TensorID {
	return b.Op(expr.OpEmbeddingShard, label, label+".out", "", []sym.Expr{offset}, table, ids)
}

func (b *Builder) RoPE(label string, x, cos, sin TensorID) TensorID {
	return b.Op(expr.OpRoPE, label, label+".out", "", nil, x, cos, sin)
}

func (b *Builder) Attention(label string, q, k, v TensorID, heads int64) TensorID {
	return b.Op(expr.OpAttention, label, label+".out", "", []sym.Expr{sym.Const(heads)}, q, k, v)
}

func (b *Builder) MSELoss(label string, pred, target TensorID) TensorID {
	return b.Op(expr.OpMSELoss, label, label+".out", "", nil, pred, target)
}

func (b *Builder) SquaredError(label string, pred, target TensorID) TensorID {
	return b.Op(expr.OpSquaredError, label, label+".out", "", nil, pred, target)
}

func (b *Builder) Router(label string, x, w TensorID) TensorID {
	return b.Op(expr.OpRouter, label, label+".out", "", nil, x, w)
}

func (b *Builder) AuxLoss(label string, probs TensorID) TensorID {
	return b.Op(expr.OpAuxLoss, label, label+".out", "", nil, probs)
}

func (b *Builder) Identity(label string, a TensorID) TensorID {
	return b.Op(expr.OpIdentity, label, label+".out", "", nil, a)
}

func (b *Builder) AllReduce(label string, shards ...TensorID) []TensorID {
	names := make([]string, len(shards))
	for i := range names {
		names[i] = fmt.Sprintf("%s.out%d", label, i)
	}
	return b.MultiOp(expr.OpAllReduce, label, names, "", nil, shards...)
}

func (b *Builder) ReduceScatter(label string, dim int64, shards ...TensorID) []TensorID {
	names := make([]string, len(shards))
	for i := range names {
		names[i] = fmt.Sprintf("%s.out%d", label, i)
	}
	return b.MultiOp(expr.OpReduceScatter, label, names, "", []sym.Expr{sym.Const(dim)}, shards...)
}

func (b *Builder) AllGather(label string, dim int64, shards ...TensorID) []TensorID {
	names := make([]string, len(shards))
	for i := range names {
		names[i] = fmt.Sprintf("%s.out%d", label, i)
	}
	return b.MultiOp(expr.OpAllGather, label, names, "", []sym.Expr{sym.Const(dim)}, shards...)
}

// Build validates and returns the constructed graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build that panics on error; for tests and examples.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Graph exposes the partially built graph (used by strategies that
// need to inspect shapes mid-construction).
func (b *Builder) Graph() *Graph { return b.g }
