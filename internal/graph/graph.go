// Package graph defines the computation-graph IR that ENTANGLE checks:
// a DAG whose vertices are operators (computation or communication
// kernels) and whose edges are tensors (§3.2). Both the sequential
// specification G_s and distributed implementation G_d are values of
// this type; they arrive either from the fluent Builder (our stand-in
// for TorchDynamo capture), the JSON codec, or the HLO front end.
package graph

import (
	"fmt"

	"entangle/internal/expr"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// TensorID identifies a tensor (edge) within one graph.
type TensorID int

// NodeID identifies an operator (vertex) within one graph.
type NodeID int

// NoProducer marks graph-input tensors.
const NoProducer NodeID = -1

// Tensor is an edge of the computation graph.
type Tensor struct {
	ID       TensorID
	Name     string // unique within the graph
	Shape    shape.Shape
	Producer NodeID // NoProducer for graph inputs
	OutIndex int    // which output of Producer
}

// Node is an operator application.
type Node struct {
	ID      NodeID
	Op      expr.Op
	Str     string     // e.g. activation name for OpUnary
	Ints    []sym.Expr // operator attributes
	Inputs  []TensorID
	Outputs []TensorID
	// Label is a human-readable position, e.g. "layer0/attn/qkv_matmul";
	// RefinementError reports it for bug localization (§6.2).
	Label string
}

// Graph is a computation graph with distinguished inputs and outputs.
type Graph struct {
	Name    string
	Nodes   []*Node
	Tensors []*Tensor
	Inputs  []TensorID
	Outputs []TensorID

	// Ctx carries assumptions about the symbolic scalars appearing in
	// shapes and attributes (§5, "Handling Symbolic Scalars").
	Ctx *sym.Context

	byName map[string]TensorID
}

// New returns an empty graph with the given name and symbolic context
// (nil means an empty context).
func New(name string, ctx *sym.Context) *Graph {
	if ctx == nil {
		ctx = sym.NewContext()
	}
	return &Graph{Name: name, Ctx: ctx, byName: map[string]TensorID{}}
}

// Tensor returns the tensor with the given ID.
func (g *Graph) Tensor(id TensorID) *Tensor {
	if int(id) < 0 || int(id) >= len(g.Tensors) {
		panic(fmt.Sprintf("graph %s: tensor id %d out of range", g.Name, id))
	}
	return g.Tensors[id]
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(g.Nodes) {
		panic(fmt.Sprintf("graph %s: node id %d out of range", g.Name, id))
	}
	return g.Nodes[id]
}

// TensorByName looks a tensor up by its unique name.
func (g *Graph) TensorByName(name string) (*Tensor, bool) {
	id, ok := g.byName[name]
	if !ok {
		return nil, false
	}
	return g.Tensors[id], true
}

// addTensor appends a tensor, enforcing name uniqueness.
func (g *Graph) addTensor(name string, sh shape.Shape, prod NodeID, outIdx int) (TensorID, error) {
	if name == "" {
		name = fmt.Sprintf("t%d", len(g.Tensors))
	}
	if _, dup := g.byName[name]; dup {
		return 0, fmt.Errorf("graph %s: duplicate tensor name %q", g.Name, name)
	}
	id := TensorID(len(g.Tensors))
	g.Tensors = append(g.Tensors, &Tensor{ID: id, Name: name, Shape: sh, Producer: prod, OutIndex: outIdx})
	g.byName[name] = id
	return id, nil
}

// IsInput reports whether id is a graph input.
func (g *Graph) IsInput(id TensorID) bool { return g.Tensor(id).Producer == NoProducer }

// IsOutput reports whether id is a graph output.
func (g *Graph) IsOutput(id TensorID) bool {
	for _, o := range g.Outputs {
		if o == id {
			return true
		}
	}
	return false
}

// Consumers returns the nodes that read tensor id.
func (g *Graph) Consumers(id TensorID) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in == id {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// TopoSort returns the nodes in a topological order; it fails if the
// graph has a cycle or dangling tensor references.
func (g *Graph) TopoSort() ([]*Node, error) {
	indeg := make([]int, len(g.Nodes))
	ready := make(map[TensorID]bool, len(g.Tensors))
	for _, t := range g.Tensors {
		if t.Producer == NoProducer {
			ready[t.ID] = true
		}
	}
	consumers := make(map[TensorID][]NodeID)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if int(in) < 0 || int(in) >= len(g.Tensors) {
				return nil, fmt.Errorf("graph %s: node %s references missing tensor %d", g.Name, n.Label, in)
			}
			if !ready[in] {
				indeg[n.ID]++
			}
			consumers[in] = append(consumers[in], n.ID)
		}
	}
	var queue []NodeID
	for _, n := range g.Nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n.ID)
		}
	}
	var order []*Node
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n := g.Nodes[id]
		order = append(order, n)
		for _, out := range n.Outputs {
			for _, c := range consumers[out] {
				indeg[c]--
				if indeg[c] == 0 {
					queue = append(queue, c)
				}
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("graph %s: cycle detected (%d of %d nodes ordered)", g.Name, len(order), len(g.Nodes))
	}
	return order, nil
}

// Validate checks structural invariants: tensor/node ID consistency,
// producer links, acyclicity, and re-derivable output shapes.
func (g *Graph) Validate() error {
	for i, t := range g.Tensors {
		if int(t.ID) != i {
			return fmt.Errorf("graph %s: tensor %q has inconsistent id", g.Name, t.Name)
		}
		if t.Producer != NoProducer {
			n := g.Node(t.Producer)
			if t.OutIndex >= len(n.Outputs) || n.Outputs[t.OutIndex] != t.ID {
				return fmt.Errorf("graph %s: tensor %q producer link broken", g.Name, t.Name)
			}
		}
	}
	for i, n := range g.Nodes {
		if int(n.ID) != i {
			return fmt.Errorf("graph %s: node %q has inconsistent id", g.Name, n.Label)
		}
		inShapes := make([]shape.Shape, len(n.Inputs))
		for j, in := range n.Inputs {
			inShapes[j] = g.Tensor(in).Shape
		}
		outs, err := shape.Infer(n.Op, n.Str, n.Ints, inShapes, g.Ctx)
		if err != nil {
			return fmt.Errorf("graph %s: node %q: %v", g.Name, n.Label, err)
		}
		if len(outs) != len(n.Outputs) {
			return fmt.Errorf("graph %s: node %q: %d inferred outputs, %d declared", g.Name, n.Label, len(outs), len(n.Outputs))
		}
		for j, out := range n.Outputs {
			if !g.Tensor(out).Shape.Equal(outs[j], g.Ctx) {
				return fmt.Errorf("graph %s: node %q output %d shape %s, inferred %s",
					g.Name, n.Label, j, g.Tensor(out).Shape, outs[j])
			}
		}
	}
	for _, o := range g.Outputs {
		g.Tensor(o) // bounds check
	}
	_, err := g.TopoSort()
	return err
}

// OutputExpr returns the expression defining output outIdx of node n in
// terms of n's input tensors as leaves. Collective kernels are
// expanded into their clean-operator semantics so relation expressions
// never contain opaque communication ops:
//
//	allreduce:      out_i = sum(in_0 … in_{R-1})
//	reducescatter:  out_i = slice(sum(in…), dim, i·c, (i+1)·c)
//	allgather:      out_i = concat(in…, dim)
func (g *Graph) OutputExpr(n *Node, outIdx int) (*expr.Term, error) {
	leaves := make([]*expr.Term, len(n.Inputs))
	for i, in := range n.Inputs {
		t := g.Tensor(in)
		leaves[i] = expr.Tensor(int(t.ID), t.Name)
	}
	switch n.Op {
	case expr.OpAllReduce:
		return expr.Sum(leaves...), nil
	case expr.OpAllGather:
		return expr.Concat(n.Ints[0], leaves...), nil
	case expr.OpReduceScatter:
		sumT := expr.Sum(leaves...)
		d := n.Ints[0]
		dv, ok := d.IsConst()
		if !ok {
			return nil, fmt.Errorf("graph %s: reducescatter with symbolic dim", g.Name)
		}
		inShape := g.Tensor(n.Inputs[0]).Shape
		di := int(dv)
		if di < 0 {
			di += len(inShape)
		}
		chunk, ok := inShape[di].DivConst(int64(len(n.Inputs)))
		if !ok {
			return nil, fmt.Errorf("graph %s: reducescatter extent %s not divisible", g.Name, inShape[di])
		}
		begin := chunk.MulConst(int64(outIdx))
		end := chunk.MulConst(int64(outIdx + 1))
		return expr.Slice(sumT, sym.Const(int64(di)), begin, end), nil
	default:
		if outIdx != 0 {
			return nil, fmt.Errorf("graph %s: %s has a single output", g.Name, n.Op)
		}
		return expr.New(n.Op, n.Ints, n.Str, leaves...), nil
	}
}

// OperatorCount returns the number of operator nodes (the paper reports
// |G_s|+|G_d| alongside Figure 3).
func (g *Graph) OperatorCount() int { return len(g.Nodes) }

// Clone returns a deep copy of the graph (shapes and attribute
// expressions are immutable and shared; the symbolic context is
// copied). The expectation checker (§4.4) appends nodes to clones so
// callers' graphs stay untouched.
func (g *Graph) Clone() *Graph {
	n := New(g.Name, g.Ctx.Clone())
	n.Tensors = make([]*Tensor, len(g.Tensors))
	for i, t := range g.Tensors {
		ct := *t
		n.Tensors[i] = &ct
		n.byName[t.Name] = t.ID
	}
	n.Nodes = make([]*Node, len(g.Nodes))
	for i, nd := range g.Nodes {
		cn := *nd
		cn.Inputs = append([]TensorID(nil), nd.Inputs...)
		cn.Outputs = append([]TensorID(nil), nd.Outputs...)
		n.Nodes[i] = &cn
	}
	n.Inputs = append([]TensorID(nil), g.Inputs...)
	n.Outputs = append([]TensorID(nil), g.Outputs...)
	return n
}

// Append adds a node computing op over existing tensors, inferring the
// output shape; it returns the new output tensor's ID. Used to splice
// user-expectation expressions (§4.4) into a graph.
func (g *Graph) Append(op expr.Op, label, outName, str string, ints []sym.Expr, inputs ...TensorID) (TensorID, error) {
	inShapes := make([]shape.Shape, len(inputs))
	for i, in := range inputs {
		inShapes[i] = g.Tensor(in).Shape
	}
	outs, err := shape.Infer(op, str, ints, inShapes, g.Ctx)
	if err != nil {
		return 0, err
	}
	if len(outs) != 1 {
		return 0, fmt.Errorf("graph %s: Append requires single-output op, %s has %d", g.Name, op, len(outs))
	}
	nid := NodeID(len(g.Nodes))
	tid, err := g.addTensor(outName, outs[0], nid, 0)
	if err != nil {
		return 0, err
	}
	g.Nodes = append(g.Nodes, &Node{ID: nid, Op: op, Str: str, Ints: ints, Inputs: inputs, Outputs: []TensorID{tid}, Label: label})
	return tid, nil
}

// RegisterTensorName records a name→ID mapping for a tensor appended
// outside the Builder (autodiff's backward-graph inputs).
func RegisterTensorName(g *Graph, name string, id TensorID) {
	if g.byName == nil {
		g.byName = map[string]TensorID{}
	}
	g.byName[name] = id
}
