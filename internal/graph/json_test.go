package graph

import (
	"strings"
	"testing"
)

// TestJSONErrorMessages pins the error-path behaviour of the
// interchange decoder: every malformed capture must come back as a
// descriptive error naming the offending element — never a panic, and
// never a silently-wrong graph.
func TestJSONErrorMessages(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring the error must contain
	}{
		{
			name: "malformed json",
			src:  `{"name":"g","inputs":[`,
			want: "unexpected end",
		},
		{
			name: "unparsable shape dim",
			src:  `{"name":"g","inputs":[{"name":"a","shape":["@@"]}],"nodes":[],"outputs":[]}`,
			want: `input "a"`,
		},
		{
			name: "unknown op",
			src: `{"name":"g","inputs":[{"name":"a","shape":["4"]}],
				"nodes":[{"op":"frobnicate","label":"n","inputs":["a"],"outputs":["o"]}],
				"outputs":["o"]}`,
			want: "frobnicate",
		},
		{
			name: "dangling node input",
			src: `{"name":"g","inputs":[],
				"nodes":[{"op":"add","label":"n","inputs":["zz","zz"],"outputs":["o"]}],
				"outputs":[]}`,
			want: `input "zz" undefined`,
		},
		{
			name: "dangling graph output",
			src:  `{"name":"g","inputs":[],"nodes":[],"outputs":["nope"]}`,
			want: `output "nope" undefined`,
		},
		{
			name: "bad attribute expression",
			src: `{"name":"g","inputs":[{"name":"a","shape":["4","4"]}],
				"nodes":[{"op":"transpose","label":"t","ints":["??"],"inputs":["a"],"outputs":["o"]}],
				"outputs":["o"]}`,
			want: `node "t" attr`,
		},
		{
			name: "bad assumption",
			src:  `{"name":"g","inputs":[],"nodes":[],"outputs":[],"assumptions":[{"lhs":"!!","rhs":"0"}]}`,
			want: "assumption lhs",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := &Graph{}
			err := g.UnmarshalJSON([]byte(tc.src))
			if err == nil {
				t.Fatal("decode must fail")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestJSONWrongArity covers the remaining decoder path: a known op
// applied to the wrong number of inputs must be rejected by shape
// inference with the node named in the error.
func TestJSONWrongArity(t *testing.T) {
	src := `{"name":"g","inputs":[{"name":"a","shape":["4"]}],
		"nodes":[{"op":"add","label":"lonely","inputs":["a"],"outputs":["o"]}],
		"outputs":["o"]}`
	g := &Graph{}
	err := g.UnmarshalJSON([]byte(src))
	if err == nil {
		t.Fatal("decode must fail")
	}
	if !strings.Contains(err.Error(), "add") {
		t.Fatalf("error %q does not mention the op", err)
	}
}
