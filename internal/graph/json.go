package graph

import (
	"encoding/json"
	"fmt"
	"io"

	"entangle/internal/expr"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// The JSON format is the capture-interchange format: external
// frontends (like the paper's TorchDynamo and XLA capture utilities)
// emit it, and cmd/entangle consumes it. Symbolic scalars are encoded
// in their textual linear form ("2*S+1").

type jsonTensor struct {
	Name  string   `json:"name"`
	Shape []string `json:"shape"`
}

type jsonNode struct {
	Op      string   `json:"op"`
	Str     string   `json:"str,omitempty"`
	Ints    []string `json:"ints,omitempty"`
	Inputs  []string `json:"inputs"`
	Outputs []string `json:"outputs"`
	Label   string   `json:"label,omitempty"`
}

type jsonGraph struct {
	Name        string       `json:"name"`
	Inputs      []jsonTensor `json:"inputs"`
	Nodes       []jsonNode   `json:"nodes"`
	Outputs     []string     `json:"outputs"`
	Assumptions []jsonIneq   `json:"assumptions,omitempty"`
}

type jsonIneq struct {
	// GE means Lhs ≥ Rhs.
	Lhs string `json:"lhs"`
	Rhs string `json:"rhs"`
}

func encodeShape(s shape.Shape) []string {
	out := make([]string, len(s))
	for i, d := range s {
		out[i] = d.String()
	}
	return out
}

func decodeShape(ss []string) (shape.Shape, error) {
	out := make(shape.Shape, len(ss))
	for i, s := range ss {
		e, err := sym.Parse(s)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// MarshalJSON encodes the graph in the interchange format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name}
	for _, in := range g.Inputs {
		t := g.Tensor(in)
		jg.Inputs = append(jg.Inputs, jsonTensor{Name: t.Name, Shape: encodeShape(t.Shape)})
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, n := range order {
		jn := jsonNode{Op: string(n.Op), Str: n.Str, Label: n.Label}
		for _, e := range n.Ints {
			jn.Ints = append(jn.Ints, e.String())
		}
		for _, in := range n.Inputs {
			jn.Inputs = append(jn.Inputs, g.Tensor(in).Name)
		}
		for _, out := range n.Outputs {
			jn.Outputs = append(jn.Outputs, g.Tensor(out).Name)
		}
		jg.Nodes = append(jg.Nodes, jn)
	}
	for _, o := range g.Outputs {
		jg.Outputs = append(jg.Outputs, g.Tensor(o).Name)
	}
	for _, a := range g.Ctx.Assumptions() {
		jg.Assumptions = append(jg.Assumptions, jsonIneq{Lhs: a.String(), Rhs: "0"})
	}
	return json.MarshalIndent(jg, "", "  ")
}

// UnmarshalJSON decodes a graph from the interchange format and
// validates it.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	ctx := sym.NewContext()
	for _, a := range jg.Assumptions {
		lhs, err := sym.Parse(a.Lhs)
		if err != nil {
			return fmt.Errorf("graph json: assumption lhs: %v", err)
		}
		rhs, err := sym.Parse(a.Rhs)
		if err != nil {
			return fmt.Errorf("graph json: assumption rhs: %v", err)
		}
		ctx.AssumeGE(lhs, rhs)
	}
	b := NewBuilder(jg.Name, ctx)
	names := map[string]TensorID{}
	for _, in := range jg.Inputs {
		sh, err := decodeShape(in.Shape)
		if err != nil {
			return fmt.Errorf("graph json: input %q: %v", in.Name, err)
		}
		names[in.Name] = b.Input(in.Name, sh)
	}
	for _, jn := range jg.Nodes {
		var ints []sym.Expr
		for _, s := range jn.Ints {
			e, err := sym.Parse(s)
			if err != nil {
				return fmt.Errorf("graph json: node %q attr: %v", jn.Label, err)
			}
			ints = append(ints, e)
		}
		inputs := make([]TensorID, len(jn.Inputs))
		for i, name := range jn.Inputs {
			id, ok := names[name]
			if !ok {
				return fmt.Errorf("graph json: node %q input %q undefined", jn.Label, name)
			}
			inputs[i] = id
		}
		outs := b.MultiOp(expr.Op(jn.Op), jn.Label, jn.Outputs, jn.Str, ints, inputs...)
		if b.Err() != nil {
			return b.Err()
		}
		for i, name := range jn.Outputs {
			names[name] = outs[i]
		}
	}
	for _, name := range jg.Outputs {
		id, ok := names[name]
		if !ok {
			return fmt.Errorf("graph json: output %q undefined", name)
		}
		b.Output(id)
	}
	built, err := b.Build()
	if err != nil {
		return err
	}
	*g = *built
	return nil
}

// Write encodes the graph to w.
func (g *Graph) Write(w io.Writer) error {
	data, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Read decodes a graph from r.
func Read(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	g := &Graph{}
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return g, nil
}
