package graph

import (
	"bytes"
	"strings"
	"testing"

	"entangle/internal/expr"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// figure1Sequential builds G_s of the paper's Figure 1:
// C = matmul(A, B); F = matsub(C, E)  (we spell matsub as sub).
func figure1Sequential(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("Gs", nil)
	A := b.Input("A", shape.Of(4, 8))
	B := b.Input("B", shape.Of(8, 6))
	E := b.Input("E", shape.Of(4, 6))
	C := b.MatMul("matmul", A, B)
	F := b.Sub("matsub", C, E)
	b.Output(F)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("figure1Sequential: %v", err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := figure1Sequential(t)
	if got := g.OperatorCount(); got != 2 {
		t.Fatalf("operator count %d want 2", got)
	}
	if len(g.Inputs) != 3 || len(g.Outputs) != 1 {
		t.Fatalf("io counts %d/%d", len(g.Inputs), len(g.Outputs))
	}
	f, ok := g.TensorByName("matsub.out")
	if !ok {
		t.Fatal("output tensor not found by name")
	}
	if !g.IsOutput(f.ID) {
		t.Fatal("matsub.out should be an output")
	}
	if !g.IsInput(g.Inputs[0]) {
		t.Fatal("input misclassified")
	}
}

func TestBuilderDeferredError(t *testing.T) {
	b := NewBuilder("bad", nil)
	A := b.Input("A", shape.Of(4, 8))
	B := b.Input("B", shape.Of(9, 6)) // inner dim mismatch
	C := b.MatMul("mm", A, B)
	_ = b.Sub("s", C, C) // chained after failure: must not panic
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "matmul") {
		t.Fatalf("expected matmul shape error, got %v", err)
	}
}

func TestDuplicateTensorName(t *testing.T) {
	b := NewBuilder("dup", nil)
	b.Input("A", shape.Of(1))
	b.Input("A", shape.Of(1))
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate names must fail")
	}
}

func TestTopoSort(t *testing.T) {
	g := figure1Sequential(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0].Label != "matmul" || order[1].Label != "matsub" {
		t.Fatalf("bad order: %v, %v", order[0].Label, order[1].Label)
	}
}

func TestConsumers(t *testing.T) {
	g := figure1Sequential(t)
	c, _ := g.TensorByName("matmul.out")
	cons := g.Consumers(c.ID)
	if len(cons) != 1 || cons[0].Label != "matsub" {
		t.Fatalf("consumers of C: %v", cons)
	}
}

func TestValidate(t *testing.T) {
	g := figure1Sequential(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// corrupt a shape and revalidate
	f, _ := g.TensorByName("matsub.out")
	g.Tensors[f.ID].Shape = shape.Of(9, 9)
	if err := g.Validate(); err == nil {
		t.Fatal("corrupted shape must fail validation")
	}
}

func TestCollectiveBuilderAndExpr(t *testing.T) {
	b := NewBuilder("Gd", nil)
	x0 := b.Input("x0", shape.Of(4, 8))
	x1 := b.Input("x1", shape.Of(4, 8))
	ar := b.AllReduce("ar", x0, x1)
	rs := b.ReduceScatter("rs", 0, x0, x1)
	ag := b.AllGather("ag", 1, x0, x1)
	b.Output(ar...)
	b.Output(rs...)
	b.Output(ag...)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	arNode := g.Node(g.Tensor(ar[0]).Producer)
	e, err := g.OutputExpr(arNode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "sum(x0, x1)" {
		t.Fatalf("allreduce expr %q", e)
	}

	rsNode := g.Node(g.Tensor(rs[1]).Producer)
	e, err = g.OutputExpr(rsNode, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "sum(x0, x1)[2:4 @0]" {
		t.Fatalf("reducescatter expr %q", e)
	}
	if !e.Clean() {
		t.Fatal("reducescatter expansion must be clean")
	}

	agNode := g.Node(g.Tensor(ag[0]).Producer)
	e, err = g.OutputExpr(agNode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "concat(x0, x1, dim=1)" {
		t.Fatalf("allgather expr %q", e)
	}
}

func TestOutputExprOrdinary(t *testing.T) {
	g := figure1Sequential(t)
	mm := g.Nodes[0]
	e, err := g.OutputExpr(mm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "matmul(A, B)" {
		t.Fatalf("expr %q", e)
	}
	if _, err := g.OutputExpr(mm, 1); err == nil {
		t.Fatal("out-of-range output index must fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := figure1Sequential(t)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name != g.Name || g2.OperatorCount() != g.OperatorCount() {
		t.Fatalf("round trip lost structure: %s/%d", g2.Name, g2.OperatorCount())
	}
	if len(g2.Inputs) != 3 || len(g2.Outputs) != 1 {
		t.Fatalf("round trip io %d/%d", len(g2.Inputs), len(g2.Outputs))
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONSymbolicRoundTrip(t *testing.T) {
	ctx := sym.NewContext()
	S := sym.Var("S")
	ctx.AssumeGE(S, sym.Const(2))
	b := NewBuilder("symg", ctx)
	x := b.Input("x", shape.Shape{S, sym.Const(8)})
	y := b.Unary("act", "gelu", x)
	b.Output(y)
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := g2.Tensor(g2.Inputs[0])
	if in.Shape[0].String() != "S" {
		t.Fatalf("symbolic dim lost: %s", in.Shape[0])
	}
	if !g2.Ctx.ProveGE(S, sym.Const(2)) {
		t.Fatal("assumptions lost in round trip")
	}
}

func TestJSONErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"name":"g","inputs":[{"name":"a","shape":["@@"]}]}`,
		`{"name":"g","inputs":[],"nodes":[{"op":"add","inputs":["zz","zz"],"outputs":["o"]}],"outputs":[]}`,
		`{"name":"g","inputs":[],"nodes":[],"outputs":["nope"]}`,
	}
	for i, s := range bad {
		g := &Graph{}
		if err := g.UnmarshalJSON([]byte(s)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	// Construct a cyclic graph by hand (builders cannot produce one).
	g := New("cyc", nil)
	id0, _ := g.addTensor("a", shape.Of(1), NodeID(0), 0)
	id1, _ := g.addTensor("b", shape.Of(1), NodeID(1), 0)
	g.Nodes = append(g.Nodes,
		&Node{ID: 0, Op: expr.OpIdentity, Inputs: []TensorID{id1}, Outputs: []TensorID{id0}, Label: "n0"},
		&Node{ID: 1, Op: expr.OpIdentity, Inputs: []TensorID{id0}, Outputs: []TensorID{id1}, Label: "n1"},
	)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle must be detected")
	}
}

func TestClone(t *testing.T) {
	g := figure1Sequential(t)
	c := g.Clone()
	if c.OperatorCount() != g.OperatorCount() || len(c.Tensors) != len(g.Tensors) {
		t.Fatal("clone lost structure")
	}
	// Mutating the clone must not affect the original.
	c.Outputs = nil
	c.Nodes[0].Inputs[0] = 99
	if len(g.Outputs) == 0 || g.Nodes[0].Inputs[0] == 99 {
		t.Fatal("clone aliases original")
	}
	if _, ok := c.TensorByName("matmul.out"); !ok {
		t.Fatal("clone lost name index")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppend(t *testing.T) {
	g := figure1Sequential(t)
	f, _ := g.TensorByName("matsub.out")
	id, err := g.Append(expr.OpIdentity, "extra", "extra.out", "", nil, f.ID)
	if err != nil {
		t.Fatal(err)
	}
	if g.Tensor(id).Name != "extra.out" {
		t.Fatal("appended tensor wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Appending a shape-invalid node fails.
	a, _ := g.TensorByName("A")
	b, _ := g.TensorByName("B")
	if _, err := g.Append(expr.OpAdd, "bad", "bad.out", "", nil, a.ID, b.ID); err == nil {
		t.Fatal("shape-invalid append must fail")
	}
	// Duplicate output name fails.
	if _, err := g.Append(expr.OpIdentity, "dup", "extra.out", "", nil, f.ID); err == nil {
		t.Fatal("duplicate name append must fail")
	}
}
