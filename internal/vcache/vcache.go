// Package vcache is ENTANGLE's content-addressed verdict cache: a
// sharded in-memory LRU in front of an optional on-disk store, keyed
// by the fingerprints of internal/fingerprint. The checker consults it
// before saturating an operator and replays the stored result on a
// hit, so re-verifying an unchanged (or mostly unchanged) model pair
// skips the e-graph work entirely.
//
// Only schedule-independent verdicts are ever stored: Refined (with
// the clean output mappings the saturation extracted) and Disproved
// (with the failing output's index). Inconclusive verdicts depend on
// budgets and wall clocks, EngineFault on transient runtime state, and
// Skipped on sibling failures — none are facts about the graph, so
// none are cacheable. Enforcing that here (not just at the call site)
// keeps a future caller from accidentally poisoning the store.
//
// The disk layer is defensive by construction: entries are written to
// a temp file (O_EXCL) and atomically renamed into place, carry a
// versioned header with the full key fingerprint and a payload
// checksum, and ANY defect on read — short file, bad magic, key
// mismatch, checksum mismatch, undecodable payload — is classified as
// a miss (with a Corrupt counter bump), never as a wrong verdict. A
// concurrent rewrite of the same key is harmless: both writers rename
// a fully-formed file for the same content address.
package vcache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"entangle/internal/egraph"
	"entangle/internal/fingerprint"
)

// Verdict is the cached verdict kind. Only the two reuse-safe points
// of the verdict lattice appear here.
type Verdict string

const (
	VerdictRefined   Verdict = "refined"
	VerdictDisproved Verdict = "disproved"
)

// Mapping carries one output tensor's extracted clean expressions in
// the canonical term encoding of internal/fingerprint: Main is the
// general extraction, Restricted the additional G_d-output-restricted
// extraction recorded for G_s output tensors. Order is preserved —
// replay re-adds terms in the stored order so the relation's
// deterministic tie-breaking (insertion order) matches a live run.
type Mapping struct {
	Main       []string `json:"main"`
	Restricted []string `json:"restricted,omitempty"`
}

// Entry is one cached verdict.
type Entry struct {
	Verdict     Verdict      `json:"verdict"`
	Escalations int          `json:"escalations"`
	Stats       egraph.Stats `json:"stats"`
	// Outputs has one Mapping per operator output (Refined only).
	Outputs []Mapping `json:"outputs,omitempty"`
	// FailOutput is the index of the output whose mapping could not be
	// derived (Disproved only).
	FailOutput int `json:"fail_output,omitempty"`
}

// Stats are the cache's monotone counters. All fields are read with
// atomic loads; Snapshot returns a plain copy.
type Stats struct {
	Hits        atomic.Int64 // total hits (memory + disk)
	MemHits     atomic.Int64
	DiskHits    atomic.Int64
	Misses      atomic.Int64 // includes corrupt entries
	Corrupt     atomic.Int64 // disk entries rejected by validation
	Evictions   atomic.Int64 // in-memory LRU evictions
	Stores      atomic.Int64
	StoreErrors atomic.Int64 // failed disk writes (entry stays in memory)
}

// StatsSnapshot is a point-in-time copy of Stats, JSON-encodable.
type StatsSnapshot struct {
	Hits        int64 `json:"hits"`
	MemHits     int64 `json:"mem_hits"`
	DiskHits    int64 `json:"disk_hits"`
	Misses      int64 `json:"misses"`
	Corrupt     int64 `json:"corrupt"`
	Evictions   int64 `json:"evictions"`
	Stores      int64 `json:"stores"`
	StoreErrors int64 `json:"store_errors"`
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Hits:        s.Hits.Load(),
		MemHits:     s.MemHits.Load(),
		DiskHits:    s.DiskHits.Load(),
		Misses:      s.Misses.Load(),
		Corrupt:     s.Corrupt.Load(),
		Evictions:   s.Evictions.Load(),
		Stores:      s.Stores.Load(),
		StoreErrors: s.StoreErrors.Load(),
	}
}

// Config sizes a cache.
type Config struct {
	// Dir is the on-disk store root; empty keeps the cache
	// memory-only.
	Dir string
	// MaxEntries bounds the in-memory entry count across all shards
	// (0 = DefaultMaxEntries). Disk entries are never evicted.
	MaxEntries int
	// Shards is the lock-striping factor (0 = DefaultShards).
	Shards int
}

const (
	DefaultMaxEntries = 4096
	DefaultShards     = 16

	// magic is the versioned on-disk header tag; bump it when the
	// entry payload schema changes incompatibly.
	magic = "EVCACHE1"
)

type shard struct {
	mu      sync.Mutex
	entries map[fingerprint.Hash]*list.Element
	lru     *list.List // front = most recent; values are *lruItem
	max     int
}

type lruItem struct {
	key   fingerprint.Hash
	entry *Entry
}

// Cache is the verdict cache. Safe for concurrent use.
type Cache struct {
	dir    string
	shards []*shard
	stats  Stats
}

// Open builds a cache. With a non-empty Dir the directory is created
// eagerly so configuration errors surface at startup, not mid-check.
func Open(cfg Config) (*Cache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	perShard := (cfg.MaxEntries + cfg.Shards - 1) / cfg.Shards
	c := &Cache{dir: cfg.Dir, shards: make([]*shard, cfg.Shards)}
	for i := range c.shards {
		c.shards[i] = &shard{entries: map[fingerprint.Hash]*list.Element{}, lru: list.New(), max: perShard}
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, "v1"), 0o755); err != nil {
			return nil, fmt.Errorf("vcache: %v", err)
		}
	}
	return c, nil
}

// Stats exposes the counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// Dir returns the on-disk root ("" for memory-only).
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) shard(key fingerprint.Hash) *shard {
	return c.shards[int(key[0])%len(c.shards)]
}

// Get returns the entry for key, or nil on a miss. The returned entry
// is shared and must not be mutated.
func (c *Cache) Get(key fingerprint.Hash) *Entry {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*lruItem).entry
		s.mu.Unlock()
		c.stats.Hits.Add(1)
		c.stats.MemHits.Add(1)
		return e
	}
	s.mu.Unlock()

	if c.dir == "" {
		c.stats.Misses.Add(1)
		return nil
	}
	e, err := c.readDisk(key)
	if err != nil {
		if !os.IsNotExist(err) {
			c.stats.Corrupt.Add(1)
		}
		c.stats.Misses.Add(1)
		return nil
	}
	c.insertMem(key, e)
	c.stats.Hits.Add(1)
	c.stats.DiskHits.Add(1)
	return e
}

// Put stores a verdict under key. Non-cacheable entries (anything but
// Refined/Disproved) are rejected outright.
func (c *Cache) Put(key fingerprint.Hash, e *Entry) error {
	if e == nil {
		return fmt.Errorf("vcache: refusing to store nil entry")
	}
	if e.Verdict != VerdictRefined && e.Verdict != VerdictDisproved {
		return fmt.Errorf("vcache: refusing to store non-cacheable verdict %q", e.Verdict)
	}
	c.insertMem(key, e)
	c.stats.Stores.Add(1)
	if c.dir == "" {
		return nil
	}
	if err := c.writeDisk(key, e); err != nil {
		c.stats.StoreErrors.Add(1)
		return err
	}
	return nil
}

func (c *Cache) insertMem(key fingerprint.Hash, e *Entry) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*lruItem).entry = e
		s.lru.MoveToFront(el)
		return
	}
	s.entries[key] = s.lru.PushFront(&lruItem{key: key, entry: e})
	for s.lru.Len() > s.max {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*lruItem).key)
		c.stats.Evictions.Add(1)
	}
}

// path places an entry file under a 2-hex-char fan-out directory.
func (c *Cache) path(key fingerprint.Hash) string {
	hx := key.Hex()
	return filepath.Join(c.dir, "v1", hx[:2], hx)
}

// EncodeEntry serializes an entry into its exact on-disk byte format:
// the versioned header (magic tag, key fingerprint, payload checksum,
// one per line) followed by the JSON payload. Exported as a pure
// function so the store's write path, its tests, and the internal/mc
// verdict-cache model all produce byte-identical files — the model
// checker damages and decodes the same bytes the production store
// writes.
func EncodeEntry(key fingerprint.Hash, e *Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("vcache: encoding entry: %v", err)
	}
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s\n%s\n%s\n", magic, key.Hex(), hex.EncodeToString(sum[:]))
	buf.Write(payload)
	return buf.Bytes(), nil
}

// DecodeEntry parses and validates on-disk entry bytes for key. It is
// the single defensive gate on the read path: ANY defect — truncation,
// bad magic, key mismatch, checksum mismatch, undecodable payload, a
// non-cacheable verdict — returns an error, never a wrong entry. The
// store, the chaos tests, and the internal/mc model all call this
// exact function, so "a decode error is always a miss" is one piece of
// code checked three ways.
func DecodeEntry(key fingerprint.Hash, data []byte) (*Entry, error) {
	rest := data
	next := func() (string, bool) {
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			return "", false
		}
		line := string(rest[:i])
		rest = rest[i+1:]
		return line, true
	}
	tag, ok := next()
	if !ok || tag != magic {
		return nil, fmt.Errorf("vcache: bad magic")
	}
	keyHex, ok := next()
	if !ok || keyHex != key.Hex() {
		return nil, fmt.Errorf("vcache: key mismatch")
	}
	sumHex, ok := next()
	if !ok {
		return nil, fmt.Errorf("vcache: truncated header")
	}
	sum := sha256.Sum256(rest)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, fmt.Errorf("vcache: checksum mismatch")
	}
	var e Entry
	if err := json.Unmarshal(rest, &e); err != nil {
		return nil, fmt.Errorf("vcache: undecodable payload: %v", err)
	}
	if e.Verdict != VerdictRefined && e.Verdict != VerdictDisproved {
		return nil, fmt.Errorf("vcache: non-cacheable verdict %q", e.Verdict)
	}
	return &e, nil
}

// writeDisk serializes the entry with its versioned header and renames
// it into place atomically; a torn write can only ever leave a temp
// file behind, never a half-written entry under its final name.
func (c *Cache) writeDisk(key fingerprint.Hash, e *Entry) error {
	data, err := EncodeEntry(key, e)
	if err != nil {
		return err
	}

	final := c.path(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// readDisk loads and validates an entry file. Every validation failure
// returns a non-IsNotExist error, which Get counts as corrupt.
func (c *Cache) readDisk(key fingerprint.Hash) (*Entry, error) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, err
	}
	e, err := DecodeEntry(key, data)
	if err != nil {
		return nil, fmt.Errorf("%v in %s", err, c.path(key))
	}
	return e, nil
}
