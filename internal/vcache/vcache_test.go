package vcache

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"entangle/internal/egraph"
	"entangle/internal/fingerprint"
)

func key(i int) fingerprint.Hash {
	return sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
}

func entry(i int) *Entry {
	return &Entry{
		Verdict: VerdictRefined,
		Stats:   egraph.Stats{Iterations: i, Saturated: true, Runs: 1},
		Outputs: []Mapping{{Main: []string{fmt.Sprintf("(concat||1|d0;d%d)", i)}}},
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Get(key(1)) != nil {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}
	got := c.Get(key(1))
	if got == nil || got.Stats.Iterations != 1 {
		t.Fatalf("got %+v", got)
	}
	s := c.Stats().Snapshot()
	if s.Hits != 1 || s.MemHits != 1 || s.Misses != 1 || s.Stores != 1 {
		t.Fatalf("counters: %+v", s)
	}
}

func TestDiskRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := entry(7)
	want.Verdict = VerdictDisproved
	want.FailOutput = 2
	if err := c.Put(key(7), want); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory must serve the entry from
	// disk (cold memory), then from memory.
	c2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := c2.Get(key(7))
	if got == nil || got.Verdict != VerdictDisproved || got.FailOutput != 2 || got.Stats.Iterations != 7 {
		t.Fatalf("disk entry: %+v", got)
	}
	if s := c2.Stats().Snapshot(); s.DiskHits != 1 {
		t.Fatalf("expected a disk hit: %+v", s)
	}
	c2.Get(key(7))
	if s := c2.Stats().Snapshot(); s.MemHits != 1 {
		t.Fatalf("expected a memory hit after promotion: %+v", s)
	}
}

func TestNonCacheableVerdictRejected(t *testing.T) {
	c, _ := Open(Config{})
	if err := c.Put(key(1), &Entry{Verdict: "inconclusive"}); err == nil {
		t.Fatal("inconclusive verdict stored")
	}
	if err := c.Put(key(1), nil); err == nil {
		t.Fatal("nil entry stored")
	}
	if c.Get(key(1)) != nil {
		t.Fatal("rejected entry is visible")
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard, capacity 2: inserting 3 distinct keys evicts the
	// least recently used.
	c, err := Open(Config{MaxEntries: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c.Put(key(i), entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Get(key(0)) // key 1 becomes LRU
	if err := c.Put(key(2), entry(2)); err != nil {
		t.Fatal(err)
	}
	if c.Get(key(1)) != nil {
		t.Fatal("LRU entry survived eviction")
	}
	if c.Get(key(0)) == nil || c.Get(key(2)) == nil {
		t.Fatal("recently used entries evicted")
	}
	if s := c.Stats().Snapshot(); s.Evictions != 1 {
		t.Fatalf("evictions: %+v", s)
	}
}

// entryFile returns the single cache file under dir (failing unless
// exactly one exists).
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files = append(files, path)
		}
		return err
	})
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files: %v (err %v)", files, err)
	}
	return files[0]
}

func TestCorruptEntriesAreMisses(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip":   func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b },
		"bad-magic":  func(b []byte) []byte { b[0] = 'X'; return b },
		"empty":      func(b []byte) []byte { return nil },
		"no-newline": func(b []byte) []byte { return []byte("EVCACHE1 garbage with no header lines") },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put(key(1), entry(1)); err != nil {
				t.Fatal(err)
			}
			path := entryFile(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			// A fresh cache (cold memory) must classify the damaged
			// file as a miss, never return it.
			c2, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got := c2.Get(key(1)); got != nil {
				t.Fatalf("corrupt entry served: %+v", got)
			}
			s := c2.Stats().Snapshot()
			if s.Corrupt != 1 || s.Misses != 1 || s.Hits != 0 {
				t.Fatalf("counters after corruption: %+v", s)
			}
		})
	}
}

func TestKeyMismatchIsCorrupt(t *testing.T) {
	// A valid entry file stored under the wrong name (fingerprint
	// mismatch) must not be served.
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}
	src := entryFile(t, dir)
	dst := c.path(key(2))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(src)
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Get(key(2)); got != nil {
		t.Fatalf("mis-keyed entry served: %+v", got)
	}
	if s := c2.Stats().Snapshot(); s.Corrupt != 1 {
		t.Fatalf("counters: %+v", s)
	}
}

// N goroutines hammer one cache with mixed reads, writes, evictions,
// and disk traffic; run under -race in CI.
func TestConcurrentHammer(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir, MaxEntries: 32, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := key((g*7 + i) % 64) // overlap across goroutines
				if e := c.Get(k); e != nil {
					if e.Verdict != VerdictRefined {
						t.Errorf("unexpected verdict %q", e.Verdict)
						return
					}
					continue
				}
				if err := c.Put(k, entry(i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats().Snapshot()
	if s.Hits == 0 || s.Stores == 0 {
		t.Fatalf("hammer produced no traffic: %+v", s)
	}
	if s.Corrupt != 0 || s.StoreErrors != 0 {
		t.Fatalf("hammer corrupted the store: %+v", s)
	}
	// Every key must be retrievable afterwards via disk.
	c2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if c2.Get(key(i)) == nil {
			t.Fatalf("key %d lost after hammer", i)
		}
	}
}

// Concurrent rewriters of the SAME key must never produce a torn file:
// whatever the interleaving, readers see a fully-formed entry.
func TestConcurrentRewriteSameKey(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := c.Put(key(0), entry(g*1000+i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				// A cold cache forces the disk read path.
				c2, err := Open(Config{Dir: dir})
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if e := c2.Get(key(0)); e == nil || e.Verdict != VerdictRefined {
					t.Errorf("torn or missing entry: %+v (stats %+v)", e, c2.Stats().Snapshot())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats().Snapshot(); s.StoreErrors != 0 {
		t.Fatalf("store errors: %+v", s)
	}
}
