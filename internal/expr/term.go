package expr

import (
	"fmt"
	"strings"

	"entangle/internal/sym"
)

// Term is an immutable expression tree node. Leaves (Op == OpTensor)
// carry the referenced tensor's numeric ID and name; interior nodes
// carry the operator, its integer/symbolic attributes (Ints), an
// optional string attribute (Str, e.g. the activation name of OpUnary),
// and argument subterms.
type Term struct {
	Op   Op
	Str  string
	Ints []sym.Expr
	Args []*Term

	// TID and Name identify the referenced tensor for OpTensor leaves.
	TID  int
	Name string
}

// Tensor builds a leaf term referencing tensor id with a display name.
func Tensor(id int, name string) *Term {
	return &Term{Op: OpTensor, TID: id, Name: name}
}

// New builds an interior term. It panics on arity violations, which are
// programming errors in lemma or builder code.
func New(op Op, ints []sym.Expr, str string, args ...*Term) *Term {
	if a, ok := Arity(op); ok {
		if a >= 0 && len(args) != a {
			panic(fmt.Sprintf("expr: %s expects %d args, got %d", op, a, len(args)))
		}
		if a == -1 && len(args) == 0 {
			panic(fmt.Sprintf("expr: variadic %s needs ≥1 arg", op))
		}
	}
	for i, a := range args {
		if a == nil {
			panic(fmt.Sprintf("expr: %s arg %d is nil", op, i))
		}
	}
	return &Term{Op: op, Str: str, Ints: ints, Args: args}
}

// Convenience constructors for the common operators.

func MatMul(a, b *Term) *Term { return New(OpMatMul, nil, "", a, b) }
func Add(a, b *Term) *Term    { return New(OpAdd, nil, "", a, b) }
func Sub(a, b *Term) *Term    { return New(OpSub, nil, "", a, b) }
func Mul(a, b *Term) *Term    { return New(OpMul, nil, "", a, b) }
func Div(a, b *Term) *Term    { return New(OpDiv, nil, "", a, b) }

// Sum builds a variadic elementwise sum; a single argument collapses to
// that argument.
func Sum(args ...*Term) *Term {
	if len(args) == 1 {
		return args[0]
	}
	return New(OpSum, nil, "", args...)
}

// Concat concatenates args along dim; a single argument collapses.
func Concat(dim sym.Expr, args ...*Term) *Term {
	if len(args) == 1 {
		return args[0]
	}
	return New(OpConcat, []sym.Expr{dim}, "", args...)
}

// ConcatI is Concat with a constant dimension.
func ConcatI(dim int64, args ...*Term) *Term { return Concat(sym.Const(dim), args...) }

func Slice(a *Term, dim, begin, end sym.Expr) *Term {
	return New(OpSlice, []sym.Expr{dim, begin, end}, "", a)
}

// SliceI is Slice with constant attributes.
func SliceI(a *Term, dim, begin, end int64) *Term {
	return Slice(a, sym.Const(dim), sym.Const(begin), sym.Const(end))
}

func Transpose(a *Term, d0, d1 sym.Expr) *Term {
	return New(OpTranspose, []sym.Expr{d0, d1}, "", a)
}

func Reshape(a *Term, shape []sym.Expr) *Term { return New(OpReshape, shape, "", a) }

func Pad(a *Term, dim, before, after sym.Expr) *Term {
	return New(OpPad, []sym.Expr{dim, before, after}, "", a)
}

// Scale multiplies a by the rational constant num/den.
func Scale(a *Term, num, den int64) *Term {
	return New(OpScale, []sym.Expr{sym.Const(num), sym.Const(den)}, "", a)
}

func Unary(name string, a *Term) *Term { return New(OpUnary, nil, name, a) }

func ReduceSum(a *Term, dim sym.Expr) *Term { return New(OpReduceSum, []sym.Expr{dim}, "", a) }
func Softmax(a *Term, dim sym.Expr) *Term   { return New(OpSoftmax, []sym.Expr{dim}, "", a) }

func LayerNorm(x, w, b *Term) *Term { return New(OpLayerNorm, nil, "", x, w, b) }
func RMSNorm(x, w *Term) *Term      { return New(OpRMSNorm, nil, "", x, w) }
func RoPE(x, cos, sin *Term) *Term  { return New(OpRoPE, nil, "", x, cos, sin) }

// IsLeaf reports whether t references a tensor.
func (t *Term) IsLeaf() bool { return t.Op == OpTensor }

// Clean reports whether every operator in t is permitted in a clean
// expression (§3.2).
func (t *Term) Clean() bool {
	if !CleanOp(t.Op) {
		return false
	}
	for _, a := range t.Args {
		if !a.Clean() {
			return false
		}
	}
	return true
}

// Leaves appends the distinct tensor IDs referenced by t to out and
// returns the result (order of first occurrence).
func (t *Term) Leaves() []int {
	var out []int
	seen := map[int]bool{}
	var walk func(*Term)
	walk = func(n *Term) {
		if n.IsLeaf() {
			if !seen[n.TID] {
				seen[n.TID] = true
				out = append(out, n.TID)
			}
			return
		}
		for _, a := range n.Args {
			walk(a)
		}
	}
	walk(t)
	return out
}

// Size counts the operator applications in t (leaves count 0). The
// paper's "simplest version" pruning picks the expression with the
// smallest number of nested expressions; Size is that measure.
func (t *Term) Size() int {
	if t.IsLeaf() {
		return 0
	}
	n := 1
	for _, a := range t.Args {
		n += a.Size()
	}
	return n
}

// Key returns a canonical structural key: equal keys iff equal terms.
func (t *Term) Key() string {
	var b strings.Builder
	t.writeKey(&b)
	return b.String()
}

func (t *Term) writeKey(b *strings.Builder) {
	if t.IsLeaf() {
		fmt.Fprintf(b, "t%d", t.TID)
		return
	}
	b.WriteString(string(t.Op))
	if t.Str != "" {
		b.WriteByte('.')
		b.WriteString(t.Str)
	}
	b.WriteByte('[')
	for i, e := range t.Ints {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.Key())
	}
	b.WriteByte(']')
	b.WriteByte('(')
	for i, a := range t.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		a.writeKey(b)
	}
	b.WriteByte(')')
}

// Equal reports structural equality.
func (t *Term) Equal(o *Term) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil {
		return false
	}
	return t.Key() == o.Key()
}

// String renders the term in the paper's notation, e.g.
// "concat(F1, F2, dim=0)" or "sum(C1, C2)".
func (t *Term) String() string {
	if t.IsLeaf() {
		if t.Name != "" {
			return t.Name
		}
		return fmt.Sprintf("t%d", t.TID)
	}
	var parts []string
	for _, a := range t.Args {
		parts = append(parts, a.String())
	}
	switch t.Op {
	case OpConcat:
		parts = append(parts, "dim="+t.Ints[0].String())
	case OpSlice:
		return fmt.Sprintf("%s[%s:%s @%s]", parts[0], t.Ints[1], t.Ints[2], t.Ints[0])
	case OpTranspose:
		parts = append(parts, t.Ints[0].String(), t.Ints[1].String())
	case OpReshape:
		var dims []string
		for _, d := range t.Ints {
			dims = append(dims, d.String())
		}
		parts = append(parts, "shape=["+strings.Join(dims, ",")+"]")
	case OpPad:
		parts = append(parts, fmt.Sprintf("dim=%s,pad=(%s,%s)", t.Ints[0], t.Ints[1], t.Ints[2]))
	case OpScale:
		return fmt.Sprintf("scale(%s, %s/%s)", parts[0], t.Ints[0], t.Ints[1])
	case OpUnary:
		return fmt.Sprintf("%s(%s)", t.Str, parts[0])
	case OpReduceSum, OpSoftmax:
		parts = append(parts, "dim="+t.Ints[0].String())
	case OpEmbeddingShard:
		parts = append(parts, "offset="+t.Ints[0].String())
	}
	return fmt.Sprintf("%s(%s)", t.Op, strings.Join(parts, ", "))
}

// Subst replaces every leaf whose tensor ID is id with repl, returning
// a new term (t is unchanged). If no leaf matches, t itself is returned.
func (t *Term) Subst(id int, repl *Term) *Term {
	if t.IsLeaf() {
		if t.TID == id {
			return repl
		}
		return t
	}
	changed := false
	args := make([]*Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = a.Subst(id, repl)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return t
	}
	return &Term{Op: t.Op, Str: t.Str, Ints: t.Ints, Args: args}
}

// Map applies f bottom-up, rebuilding interior nodes whose children
// changed; f receives each (already-rebuilt) node and returns its
// replacement.
func (t *Term) Map(f func(*Term) *Term) *Term {
	if t.IsLeaf() {
		return f(t)
	}
	changed := false
	args := make([]*Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = a.Map(f)
		if args[i] != a {
			changed = true
		}
	}
	n := t
	if changed {
		n = &Term{Op: t.Op, Str: t.Str, Ints: t.Ints, Args: args}
	}
	return f(n)
}
