package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"entangle/internal/sym"
)

func leaf(id int, name string) *Term { return Tensor(id, name) }

func TestCleanClassification(t *testing.T) {
	a, b := leaf(1, "A"), leaf(2, "B")
	cases := []struct {
		term *Term
		want bool
	}{
		{ConcatI(0, a, b), true},
		{SliceI(a, 0, 0, 4), true},
		{Sum(a, b), true},
		{Add(a, b), true},
		{Transpose(a, sym.Const(0), sym.Const(1)), true},
		{Reshape(a, []sym.Expr{sym.Const(4), sym.Const(2)}), true},
		{Pad(a, sym.Const(0), sym.Const(0), sym.Const(2)), true},
		{New(OpIdentity, nil, "", a), true},
		{MatMul(a, b), false},
		{Div(a, b), false},
		{Scale(a, 1, 2), false},
		{Mul(a, b), false},
		{Unary("gelu", a), false},
		{ConcatI(0, a, MatMul(a, b)), false}, // unclean subterm
		{Sum(SliceI(a, 0, 0, 2), SliceI(b, 0, 0, 2)), true},
	}
	for i, c := range cases {
		if got := c.term.Clean(); got != c.want {
			t.Errorf("case %d (%s): Clean()=%v want %v", i, c.term, got, c.want)
		}
	}
}

func TestArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("matmul with 1 arg must panic")
		}
	}()
	New(OpMatMul, nil, "", leaf(1, "A"))
}

func TestVariadicNeedsArg(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sum with 0 args must panic")
		}
	}()
	New(OpSum, nil, "")
}

func TestSingletonCollapse(t *testing.T) {
	a := leaf(1, "A")
	if Sum(a) != a {
		t.Fatal("Sum of one term should collapse")
	}
	if Concat(sym.Const(0), a) != a {
		t.Fatal("Concat of one term should collapse")
	}
}

func TestKeyDistinguishesAttrs(t *testing.T) {
	a := leaf(1, "A")
	s1 := SliceI(a, 0, 0, 4)
	s2 := SliceI(a, 0, 0, 5)
	s3 := SliceI(a, 1, 0, 4)
	if s1.Key() == s2.Key() || s1.Key() == s3.Key() {
		t.Fatal("slice keys must encode attributes")
	}
	u1, u2 := Unary("gelu", a), Unary("silu", a)
	if u1.Key() == u2.Key() {
		t.Fatal("unary keys must encode the function name")
	}
}

func TestKeyEqualAgree(t *testing.T) {
	a, b := leaf(1, "A"), leaf(2, "B")
	x := Sum(MatMul(a, b), MatMul(b, a))
	y := Sum(MatMul(a, b), MatMul(b, a))
	if !x.Equal(y) || x.Key() != y.Key() {
		t.Fatal("structurally equal terms must agree on Key")
	}
	z := Sum(MatMul(a, b), MatMul(a, b))
	if x.Equal(z) {
		t.Fatal("different terms must not be Equal")
	}
}

func TestLeaves(t *testing.T) {
	a, b, c := leaf(1, "A"), leaf(2, "B"), leaf(3, "C")
	e := Sum(MatMul(a, b), MatMul(a, c))
	got := e.Leaves()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("leaves %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("leaves %v want %v", got, want)
		}
	}
}

func TestSize(t *testing.T) {
	a, b := leaf(1, "A"), leaf(2, "B")
	if a.Size() != 0 {
		t.Fatal("leaf size 0")
	}
	if MatMul(a, b).Size() != 1 {
		t.Fatal("matmul size 1")
	}
	if Sum(MatMul(a, b), MatMul(b, a)).Size() != 3 {
		t.Fatal("sum of matmuls size 3")
	}
}

func TestSubst(t *testing.T) {
	a, b := leaf(1, "A"), leaf(2, "B")
	e := MatMul(a, b)
	r := e.Subst(1, ConcatI(1, leaf(11, "A1"), leaf(12, "A2")))
	want := "matmul(concat(A1, A2, dim=1), B)"
	if r.String() != want {
		t.Fatalf("subst got %q want %q", r, want)
	}
	// original unchanged
	if e.String() != "matmul(A, B)" {
		t.Fatalf("original mutated: %s", e)
	}
	// no-op subst returns the same pointer
	if e.Subst(99, a) != e {
		t.Fatal("no-op subst should return the receiver")
	}
}

func TestStringForms(t *testing.T) {
	a, b := leaf(1, "A"), leaf(2, "B")
	cases := map[string]*Term{
		"sum(A, B)":                       Sum(a, b),
		"concat(A, B, dim=0)":             ConcatI(0, a, b),
		"A[0:4 @1]":                       SliceI(a, 1, 0, 4),
		"gelu(A)":                         Unary("gelu", a),
		"scale(A, 1/2)":                   Scale(a, 1, 2),
		"transpose(A, 0, 1)":              Transpose(a, sym.Const(0), sym.Const(1)),
		"softmax(A, dim=1)":               Softmax(a, sym.Const(1)),
		"reducesum(A, dim=0)":             ReduceSum(a, sym.Const(0)),
		"pad(A, dim=0,pad=(0,3))":         Pad(a, sym.Const(0), sym.Const(0), sym.Const(3)),
		"reshape(A, shape=[2,3])":         Reshape(a, []sym.Expr{sym.Const(2), sym.Const(3)}),
		"rope(A, B, B)":                   RoPE(a, b, b),
		"embedding_shard(A, B, offset=0)": New(OpEmbeddingShard, []sym.Expr{sym.Const(0)}, "", a, b),
	}
	for want, term := range cases {
		if got := term.String(); got != want {
			t.Errorf("String() = %q want %q", got, want)
		}
	}
}

func TestMapRebuild(t *testing.T) {
	a, b := leaf(1, "A"), leaf(2, "B")
	e := Sum(MatMul(a, b), a)
	// rename leaf 1 to X via Map
	r := e.Map(func(n *Term) *Term {
		if n.IsLeaf() && n.TID == 1 {
			return Tensor(1, "X")
		}
		return n
	})
	if !strings.Contains(r.String(), "X") || strings.Contains(e.String(), "X") {
		t.Fatalf("map rebuild wrong: %s / %s", r, e)
	}
}

// Property: Key is injective w.r.t. random nested clean expressions.
func TestQuickKeyInjective(t *testing.T) {
	build := func(seed []byte) *Term {
		t := leaf(int(seed[0]%4), "")
		for _, s := range seed[1:] {
			switch s % 4 {
			case 0:
				t = ConcatI(int64(s%3), t, leaf(int(s%4), ""))
			case 1:
				t = SliceI(t, int64(s%2), int64(s%5), int64(s%5+3))
			case 2:
				t = Sum(t, leaf(int(s%4), ""))
			case 3:
				t = Transpose(t, sym.Const(int64(s%2)), sym.Const(int64(s%2+1)))
			}
		}
		return t
	}
	f := func(x, y []byte) bool {
		if len(x) == 0 || len(y) == 0 || len(x) > 8 || len(y) > 8 {
			return true
		}
		a, b := build(x), build(y)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveClassification(t *testing.T) {
	if !Collective(OpAllReduce) || !Collective(OpReduceScatter) || !Collective(OpAllGather) {
		t.Fatal("collectives misclassified")
	}
	if Collective(OpMatMul) {
		t.Fatal("matmul is not a collective")
	}
}

func TestElementwiseAndCommutative(t *testing.T) {
	if !Elementwise(OpAdd) || !Elementwise(OpUnary) || Elementwise(OpMatMul) || Elementwise(OpConcat) {
		t.Fatal("elementwise classification wrong")
	}
	if !Commutative(OpAdd) || !Commutative(OpMul) || Commutative(OpSub) || Commutative(OpDiv) {
		t.Fatal("commutative classification wrong")
	}
}
