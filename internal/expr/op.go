// Package expr defines the symbolic tensor-expression language used by
// ENTANGLE. Expressions are trees of operator applications over tensor
// leaves; they are what relations map tensors to (§3.2 of the paper),
// what lemmas rewrite (§4.2), and what the e-graph stores as ENodes.
package expr

// Op identifies an operator in the expression language. The vocabulary
// mirrors the subset of PyTorch's ATen IR exercised by the paper's
// models, plus the collective-communication kernels used by
// distribution strategies.
type Op string

// Tensor-manipulation and compute operators.
const (
	// OpTensor is a leaf: a reference to a named tensor in some
	// computation graph.
	OpTensor Op = "tensor"

	// Clean rearrangement operators (§3.2, clean expressions part i).
	OpConcat    Op = "concat"    // Ints[0] = dim; variadic args
	OpSlice     Op = "slice"     // Ints[0]=dim, Ints[1]=begin, Ints[2]=end (half-open)
	OpTranspose Op = "transpose" // Ints[0], Ints[1] = swapped dims
	OpReshape   Op = "reshape"   // Ints = target shape
	OpPad       Op = "pad"       // Ints[0]=dim, Ints[1]=before, Ints[2]=after (zero fill)
	OpIdentity  Op = "identity"  // single arg

	// Clean reduction operators (§3.2, clean expressions part ii).
	OpSum Op = "sum" // variadic elementwise sum (the effect of all-reduce)

	// Elementwise arithmetic (Add is also accepted as clean: it is the
	// binary form of OpSum).
	OpAdd   Op = "add"
	OpSub   Op = "sub"
	OpMul   Op = "mul"
	OpDiv   Op = "div"
	OpScale Op = "scale" // multiply by rational constant Ints[0]/Ints[1]
	OpUnary Op = "unary" // Str = activation name: gelu, silu, relu, exp, sqrt, neg

	// Linear algebra and NN kernels.
	OpMatMul    Op = "matmul"
	OpReduceSum Op = "reducesum" // Ints[0]=dim; keeps dim with size 1
	OpSoftmax   Op = "softmax"   // Ints[0]=dim
	OpLayerNorm Op = "layernorm" // args: x, weight, bias; normalizes last dim
	OpRMSNorm   Op = "rmsnorm"   // args: x, weight; normalizes last dim
	OpEmbedding Op = "embedding" // args: table, ids
	// OpEmbeddingShard is a vocabulary-parallel embedding lookup over a
	// shard of the table: out-of-range ids contribute zeros.
	// args: tableShard, ids; Ints[0]=vocab offset of shard.
	OpEmbeddingShard Op = "embedding_shard"
	OpRoPE           Op = "rope"      // args: x, cos, sin (rotary embedding)
	OpAttention      Op = "attention" // fused SDPA; args q, k, v; Ints[0]=#heads
	OpMSELoss        Op = "mse"       // args: pred, target → [1] tensor (mean)
	OpSquaredError   Op = "sqerr"     // args: pred, target → [1] tensor (sum of squares)
	OpRouter         Op = "router"    // MoE router probabilities; args x, weight
	OpAuxLoss        Op = "auxloss"   // MoE load-balance loss; arg: router probs

	// Fused kernels found in serving frameworks (vLLM) and HLO graphs;
	// the v/h lemma families relate them to their unfused forms.
	OpFusedAddRMSNorm Op = "fused_add_rmsnorm" // args: x, residual, weight
	OpFusedSiluMul    Op = "fused_silu_mul"    // args: gate, up → silu(gate)⊙up
)

// Collective-communication kernels. These appear only as graph nodes in
// distributed implementations; when folded into the e-graph their
// semantics are expanded into clean operators (see graph.NodeOutputExpr),
// so they never appear inside relation expressions.
const (
	OpAllReduce     Op = "allreduce"     // R in, R out: every output = sum(inputs)
	OpReduceScatter Op = "reducescatter" // Ints[0]=dim; output i = slice_i(sum(inputs))
	OpAllGather     Op = "allgather"     // Ints[0]=dim; every output = concat(inputs)
)

// cleanOps is the set of operators permitted inside clean expressions
// (§3.2): element rearrangement plus tensor-combining reductions.
var cleanOps = map[Op]bool{
	OpTensor:    true,
	OpConcat:    true,
	OpSlice:     true,
	OpTranspose: true,
	OpReshape:   true,
	OpPad:       true,
	OpIdentity:  true,
	OpSum:       true,
	OpAdd:       true,
}

// CleanOp reports whether op may appear in a clean expression.
func CleanOp(op Op) bool { return cleanOps[op] }

// Commutative reports whether the operator's arguments may be permuted.
func Commutative(op Op) bool {
	switch op {
	case OpAdd, OpMul, OpSum:
		return true
	}
	return false
}

// Elementwise reports whether the operator applies independently per
// element (same-shaped inputs and output), which licenses distribution
// over concat along any dimension.
func Elementwise(op Op) bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpScale, OpUnary, OpIdentity, OpSum:
		return true
	}
	return false
}

// opArity records fixed arities; -1 means variadic (≥1).
var opArity = map[Op]int{
	OpTensor: 0, OpConcat: -1, OpSlice: 1, OpTranspose: 1, OpReshape: 1,
	OpPad: 1, OpIdentity: 1, OpSum: -1, OpAdd: 2, OpSub: 2, OpMul: 2,
	OpDiv: 2, OpScale: 1, OpUnary: 1, OpMatMul: 2, OpReduceSum: 1,
	OpSoftmax: 1, OpLayerNorm: 3, OpRMSNorm: 2, OpEmbedding: 2,
	OpEmbeddingShard: 2, OpRoPE: 3, OpAttention: 3, OpMSELoss: 2,
	OpSquaredError: 2, OpRouter: 2, OpAuxLoss: 1,
	OpFusedAddRMSNorm: 3, OpFusedSiluMul: 2,
	OpAllReduce: -1, OpReduceScatter: -1, OpAllGather: -1,
}

// Arity returns the operator's argument count (-1 when variadic) and
// whether the operator is known.
func Arity(op Op) (int, bool) {
	a, ok := opArity[op]
	return a, ok
}

// Collective reports whether op is a multi-output communication kernel.
func Collective(op Op) bool {
	switch op {
	case OpAllReduce, OpReduceScatter, OpAllGather:
		return true
	}
	return false
}
