// Package lemmas is ENTANGLE's rewrite-rule library (§4.2.1, §5): the
// Go analogue of the ~4,100 lines of Rust lemma definitions the paper
// ships for PyTorch's ATen operators, plus the vLLM- and HLO-specific
// lemmas its evaluation adds (Figure 6's c/v/h families). Every lemma
// carries the metadata the paper reports: a kind, a complexity (the
// number of operators appearing in the lemma, Figure 5a) and a
// definition size in lines of code (Figure 5b's CDF).
package lemmas

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"entangle/internal/egraph"
)

// Kind classifies a lemma the way Figure 6's x-axis does.
type Kind byte

const (
	// KindClean lemmas concern operators that can appear in clean
	// expressions (slice, concat, transpose, …) — marked "c".
	KindClean Kind = 'c'
	// KindGeneral lemmas concern ATen compute operators — unmarked in
	// the paper's heatmap; we print them as "g".
	KindGeneral Kind = 'g'
	// KindVLLM lemmas concern fused operators from serving frameworks
	// — marked "v".
	KindVLLM Kind = 'v'
	// KindHLO lemmas concern HLO operators — marked "h".
	KindHLO Kind = 'h'
)

// Lemma is one rewrite lemma, possibly realized by several e-graph
// rules (forward and reverse directions, conditioned branches).
type Lemma struct {
	ID         int
	Name       string
	Kind       Kind
	Complexity int // operators appearing on both sides (Figure 5a)
	LOC        int // lines of definition code (Figure 5b)
	Rules      []*egraph.Rule
}

// Registry holds an ordered lemma collection. It is safe to share one
// registry across concurrent Check calls and scheduler workers: after
// construction the lemma set is read-only, and the rules cache below
// is guarded.
type Registry struct {
	lemmas []*Lemma
	byName map[string]*Lemma
	byRule map[string]*Lemma // rule name → owning lemma

	// rulesMu guards rulesCache, the flattened rule slice Rules()
	// hands out. Saturation runs once per operator per frontier
	// iteration; materializing the slice every call was measurable
	// allocation churn, so it is built once and invalidated on
	// Register. The same lock guards fpCache (Fingerprint).
	rulesMu    sync.Mutex
	rulesCache []*egraph.Rule
	fpCache    string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*Lemma{}, byRule: map[string]*Lemma{}}
}

// Register appends a lemma, assigning its ID. Lemma names and rule
// names must be unique across the registry: a duplicate of either is
// rejected with an error before any state changes, so a failed
// Register leaves the registry exactly as it was (no byName/byRule
// entry is overwritten and no ID is consumed).
func (r *Registry) Register(l *Lemma) (*Lemma, error) {
	if _, dup := r.byName[l.Name]; dup {
		return nil, fmt.Errorf("lemmas: duplicate lemma %q", l.Name)
	}
	seen := map[string]bool{}
	for _, rule := range l.Rules {
		if _, dup := r.byRule[rule.Name]; dup || seen[rule.Name] {
			return nil, fmt.Errorf("lemmas: lemma %q: duplicate rule %q", l.Name, rule.Name)
		}
		seen[rule.Name] = true
	}
	l.ID = len(r.lemmas)
	r.lemmas = append(r.lemmas, l)
	r.byName[l.Name] = l
	for _, rule := range l.Rules {
		r.byRule[rule.Name] = l
	}
	r.rulesMu.Lock()
	r.rulesCache = nil // invalidate the flattened-rule cache
	r.fpCache = ""     // and the registry fingerprint
	r.rulesMu.Unlock()
	return l, nil
}

// MustRegister is Register that panics on a duplicate name; the
// built-in library uses it because its names are fixed at compile
// time.
func (r *Registry) MustRegister(l *Lemma) *Lemma {
	reg, err := r.Register(l)
	if err != nil {
		panic(err)
	}
	return reg
}

// All returns the lemmas in ID order.
func (r *Registry) All() []*Lemma { return r.lemmas }

// Len returns the number of registered lemmas.
func (r *Registry) Len() int { return len(r.lemmas) }

// ByName looks a lemma up.
func (r *Registry) ByName(name string) (*Lemma, bool) {
	l, ok := r.byName[name]
	return l, ok
}

// Rules returns every e-graph rule across all lemmas, in lemma order.
// The returned slice is cached and shared — callers must not mutate
// it. Registering a new lemma invalidates the cache.
func (r *Registry) Rules() []*egraph.Rule {
	r.rulesMu.Lock()
	defer r.rulesMu.Unlock()
	if r.rulesCache == nil {
		out := make([]*egraph.Rule, 0, len(r.lemmas)*2)
		for _, l := range r.lemmas {
			out = append(out, l.Rules...)
		}
		r.rulesCache = out
	}
	return r.rulesCache
}

// Fingerprint returns a stable SHA-256 hex digest identifying the
// registry's lemma set for content-addressed verdict caching: any
// lemma added, removed, renamed, re-kinded, or re-ordered — and any
// rule added, removed, or renamed within a lemma — changes the digest.
// Rule *semantics* are identified by rule name: a lemma library that
// redefines what an existing rule name rewrites must bump the name
// (the library's convention is to suffix variants, e.g. "-rev", "-2"),
// otherwise stale cached verdicts could be replayed. The digest is
// cached and invalidated by Register, like Rules().
func (r *Registry) Fingerprint() string {
	r.rulesMu.Lock()
	defer r.rulesMu.Unlock()
	if r.fpCache == "" {
		var b strings.Builder
		b.WriteString("lemmas/1")
		for _, l := range r.lemmas {
			fmt.Fprintf(&b, "|%s:%c:%d[", l.Name, l.Kind, l.Complexity)
			for i, rule := range l.Rules {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(rule.Name)
			}
			b.WriteByte(']')
		}
		sum := sha256.Sum256([]byte(b.String()))
		r.fpCache = hex.EncodeToString(sum[:])
	}
	return r.fpCache
}

// LemmaCounts folds per-rule application counts (from egraph.Stats)
// into per-lemma counts keyed by lemma ID — the quantity the paper's
// Figure 6 heatmap plots.
func (r *Registry) LemmaCounts(apps map[string]int) map[int]int {
	out := map[int]int{}
	for ruleName, n := range apps {
		if l, ok := r.byRule[ruleName]; ok {
			out[l.ID] += n
		}
	}
	return out
}

// UsedLemmas returns the distinct lemmas with non-zero applications,
// in ID order (Figure 5a's per-model lemma counts).
func (r *Registry) UsedLemmas(apps map[string]int) []*Lemma {
	counts := r.LemmaCounts(apps)
	var ids []int
	for id, n := range counts {
		if n > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	out := make([]*Lemma, len(ids))
	for i, id := range ids {
		out[i] = r.lemmas[id]
	}
	return out
}

// Default builds the full lemma library. The registration order fixes
// lemma IDs: clean/structural first, then general compute, then vLLM
// fused, then HLO — mirroring the c…v…h layout of Figure 6's x-axis.
func Default() *Registry {
	r := NewRegistry()
	registerClean(r)
	registerCompute(r)
	registerVLLM(r)
	registerHLO(r)
	return r
}
