package lemmas

import (
	"fmt"

	"entangle/internal/egraph"
	"entangle/internal/expr"
	"entangle/internal/sym"
)

// registerCompute registers lemmas about ATen compute operators: how
// matmul, elementwise ops, softmax, normalization layers, embeddings,
// attention, and losses distribute over sharded operands. These are
// the lemmas that let ENTANGLE push the clean shard structure of a
// distributed implementation through each sequential operator.
func registerCompute(r *Registry) {
	registerMatMul(r)
	registerElementwise(r)
	registerScale(r)
	registerSoftmaxNorms(r)
	registerReduceSum(r)
	registerEmbedding(r)
	registerRoPE(r)
	registerRoPEHidden(r)
	registerAttention(r)
	registerMoE(r)
	registerLosses(r)
}

func registerMatMul(r *Registry) {
	// Column-parallel: matmul(x, concat(w_i, last)) =
	// concat(matmul(x, w_i), last). Megatron's ColumnParallelLinear.
	r.MustRegister(&Lemma{
		Name: "matmul-col-parallel", Kind: KindGeneral, Complexity: 4, LOC: 30,
		Rules: []*egraph.Rule{{
			Name: "matmul-col-parallel",
			LHS: egraph.POp(expr.OpMatMul, nil, egraph.PVar("x"),
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "ws")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				d, ok := dimConst(m.Subst.AttrOf("d"))
				if !ok {
					return nil
				}
				ws := m.Subst.KidsOf("ws")
				wRank, got := g.RankOf(ws[0])
				if !got || d != wRank-1 {
					return nil
				}
				xc := m.Subst.ClassOf("x")
				xRank, got := g.RankOf(xc)
				if !got {
					return nil
				}
				outDim := sym.Const(int64(xRank - 1))
				if wRank > 2 {
					outDim = sym.Const(int64(max(xRank, wRank) - 1))
				}
				c := mapKids(g, expr.OpConcat, []sym.Expr{outDim}, "", ws,
					func(_ int, w egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpMatMul, nil, "", []egraph.ClassID{xc, w})
					})
				return m.With(c)
			},
		}},
	})

	// Row-parallel (the block matmul lemma of §4.1's running example):
	// matmul(concat(x_i, last), concat(w_i, 0)) = sum(matmul(x_i, w_i))
	// when the per-block inner extents agree.
	r.MustRegister(&Lemma{
		Name: "matmul-row-parallel", Kind: KindGeneral, Complexity: 5, LOC: 40,
		Rules: []*egraph.Rule{{
			Name: "matmul-row-parallel",
			LHS: egraph.POp(expr.OpMatMul, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("dx")}, "xs"),
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(0)}, "ws")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				xs, ws := m.Subst.KidsOf("xs"), m.Subst.KidsOf("ws")
				if len(xs) != len(ws) {
					return nil
				}
				dx, ok := dimConst(m.Subst.AttrOf("dx"))
				if !ok {
					return nil
				}
				xRank, got := g.RankOf(xs[0])
				if !got || dx != xRank-1 {
					return nil
				}
				xExts, _, ok := kidExtents(g, xs, dx)
				if !ok {
					return nil
				}
				wExts, wRank, ok := kidExtents(g, ws, 0)
				if !ok || wRank != 2 || !pairwiseAligned(g.Ctx, xExts, wExts) {
					return nil
				}
				c := mapKids(g, expr.OpSum, nil, "", xs,
					func(i int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpMatMul, nil, "", []egraph.ClassID{x, ws[i]})
					})
				return m.With(c)
			},
		}},
	})

	// Batch/row split of the left operand: matmul(concat(x_i, d), w) =
	// concat(matmul(x_i, w), d) for d below the contraction dim.
	// Sequence parallelism's workhorse.
	r.MustRegister(&Lemma{
		Name: "matmul-row-split-lhs", Kind: KindGeneral, Complexity: 4, LOC: 28,
		Rules: []*egraph.Rule{{
			Name: "matmul-row-split-lhs",
			LHS: egraph.POp(expr.OpMatMul, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs"),
				egraph.PVar("w")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				d, ok := dimConst(m.Subst.AttrOf("d"))
				if !ok {
					return nil
				}
				xs := m.Subst.KidsOf("xs")
				xRank, got := g.RankOf(xs[0])
				if !got || d >= xRank-1 {
					return nil
				}
				wc := m.Subst.ClassOf("w")
				wRank, got := g.RankOf(wc)
				if !got || wRank != 2 {
					return nil
				}
				c := mapKids(g, expr.OpConcat, []sym.Expr{sym.Const(int64(d))}, "", xs,
					func(_ int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpMatMul, nil, "", []egraph.ClassID{x, wc})
					})
				return m.With(c)
			},
		}},
	})

	// Bilinearity over sums, both operands.
	r.MustRegister(&Lemma{
		Name: "matmul-sum-lhs", Kind: KindGeneral, Complexity: 3, LOC: 14,
		Rules: []*egraph.Rule{{
			Name: "matmul-sum-lhs",
			LHS: egraph.POp(expr.OpMatMul, nil,
				egraph.POpN(expr.OpSum, nil, "xs"), egraph.PVar("w")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				wc := m.Subst.ClassOf("w")
				c := mapKids(g, expr.OpSum, nil, "", m.Subst.KidsOf("xs"),
					func(_ int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpMatMul, nil, "", []egraph.ClassID{x, wc})
					})
				return m.With(c)
			},
		}},
	})
	r.MustRegister(&Lemma{
		Name: "matmul-sum-rhs", Kind: KindGeneral, Complexity: 3, LOC: 14,
		Rules: []*egraph.Rule{{
			Name: "matmul-sum-rhs",
			LHS: egraph.POp(expr.OpMatMul, nil,
				egraph.PVar("x"), egraph.POpN(expr.OpSum, nil, "ws")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				xc := m.Subst.ClassOf("x")
				c := mapKids(g, expr.OpSum, nil, "", m.Subst.KidsOf("ws"),
					func(_ int, w egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpMatMul, nil, "", []egraph.ClassID{xc, w})
					})
				return m.With(c)
			},
		}},
	})

	// Scaling factors float out of matmul.
	r.MustRegister(&Lemma{
		Name: "matmul-scale-lhs", Kind: KindGeneral, Complexity: 3, LOC: 12,
		Rules: []*egraph.Rule{{
			Name: "matmul-scale-lhs",
			LHS: egraph.POp(expr.OpMatMul, nil,
				egraph.POp(expr.OpScale, []egraph.AttrPat{egraph.AVar("n"), egraph.AVar("dn")}, egraph.PVar("x")),
				egraph.PVar("w")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				mm := addAll(g, expr.OpMatMul, nil, "",
					[]egraph.ClassID{m.Subst.ClassOf("x"), m.Subst.ClassOf("w")})
				c := addAll(g, expr.OpScale,
					[]sym.Expr{m.Subst.AttrOf("n"), m.Subst.AttrOf("dn")}, "",
					[]egraph.ClassID{mm})
				return m.With(c)
			},
		}},
	})
}

// elementwiseConcat builds the shared shape of the per-op lemma
// "f(concat(xs,d), concat(ys,d)) = concat(f(x_i,y_i), d)" for binary
// elementwise operators, conditioned on pairwise chunk alignment.
func elementwiseConcat(op expr.Op) *egraph.Rule {
	return &egraph.Rule{
		Name: fmt.Sprintf("%s-concat-distribute", op),
		LHS: egraph.POp(op, nil,
			egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs"),
			egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "ys")),
		Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
			xs, ys := m.Subst.KidsOf("xs"), m.Subst.KidsOf("ys")
			if len(xs) != len(ys) {
				return nil
			}
			d, ok := dimConst(m.Subst.AttrOf("d"))
			if !ok {
				return nil
			}
			xe, _, ok := kidExtents(g, xs, d)
			if !ok {
				return nil
			}
			ye, _, ok := kidExtents(g, ys, d)
			if !ok || !pairwiseAligned(g.Ctx, xe, ye) {
				return nil
			}
			c := mapKids(g, expr.OpConcat, []sym.Expr{sym.Const(int64(d))}, "", xs,
				func(i int, x egraph.ClassID) egraph.ClassID {
					return addAll(g, op, nil, "", []egraph.ClassID{x, ys[i]})
				})
			return m.With(c)
		},
	}
}

func registerElementwise(r *Registry) {
	for _, op := range []expr.Op{expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv} {
		r.MustRegister(&Lemma{
			Name:       fmt.Sprintf("%s-concat-distribute", op),
			Kind:       KindGeneral,
			Complexity: 4, LOC: 30,
			Rules: []*egraph.Rule{elementwiseConcat(op)},
		})
	}

	// Broadcast forms: f(y, concat(xs, d)) = concat(f(y, x_i), d) when
	// y has extent 1 along d (so every chunk sees the same broadcast
	// operand) — e.g. a [1,H] norm weight against sequence shards, or
	// a scalar loss seed against anything. Registered per operator and
	// operand side.
	for _, op := range []expr.Op{expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv} {
		op := op
		mkRule := func(name string, concatLeft bool) *egraph.Rule {
			var lhs *egraph.Pattern
			if concatLeft {
				lhs = egraph.POp(op, nil,
					egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs"),
					egraph.PVar("y"))
			} else {
				lhs = egraph.POp(op, nil,
					egraph.PVar("y"),
					egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs"))
			}
			return &egraph.Rule{
				Name: name,
				LHS:  lhs,
				Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
					d, ok := dimConst(m.Subst.AttrOf("d"))
					if !ok {
						return nil
					}
					yc := m.Subst.ClassOf("y")
					ys, got := g.ShapeOf(yc)
					if !got || d >= len(ys) || !g.Ctx.ProveEQ(ys[d], sym.Const(1)) {
						return nil
					}
					c := mapKids(g, expr.OpConcat, []sym.Expr{sym.Const(int64(d))}, "",
						m.Subst.KidsOf("xs"),
						func(_ int, x egraph.ClassID) egraph.ClassID {
							if concatLeft {
								return addAll(g, op, nil, "", []egraph.ClassID{x, yc})
							}
							return addAll(g, op, nil, "", []egraph.ClassID{yc, x})
						})
					return m.With(c)
				},
			}
		}
		r.MustRegister(&Lemma{
			Name:       fmt.Sprintf("%s-broadcast-concat", op),
			Kind:       KindGeneral,
			Complexity: 4, LOC: 34,
			Rules: []*egraph.Rule{
				mkRule(fmt.Sprintf("%s-broadcast-concat/lhs", op), true),
				mkRule(fmt.Sprintf("%s-broadcast-concat/rhs", op), false),
			},
		})
	}

	// Unary elementwise functions distribute over concat on any dim.
	r.MustRegister(&Lemma{
		Name: "unary-concat-distribute", Kind: KindGeneral, Complexity: 3, LOC: 16,
		Rules: []*egraph.Rule{{
			Name: "unary-concat-distribute",
			LHS: egraph.POp(expr.OpUnary, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				fn := m.Node.Str
				d := m.Subst.AttrOf("d")
				c := mapKids(g, expr.OpConcat, []sym.Expr{d}, "", m.Subst.KidsOf("xs"),
					func(_ int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpUnary, nil, fn, []egraph.ClassID{x})
					})
				return m.With(c)
			},
		}},
	})
}

func registerScale(r *Registry) {
	r.MustRegister(&Lemma{
		Name: "scale-concat-distribute", Kind: KindGeneral, Complexity: 3, LOC: 16,
		Rules: []*egraph.Rule{{
			Name: "scale-concat-distribute",
			LHS: egraph.POp(expr.OpScale, []egraph.AttrPat{egraph.AVar("n"), egraph.AVar("dn")},
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				n, dn, d := m.Subst.AttrOf("n"), m.Subst.AttrOf("dn"), m.Subst.AttrOf("d")
				c := mapKids(g, expr.OpConcat, []sym.Expr{d}, "", m.Subst.KidsOf("xs"),
					func(_ int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpScale, []sym.Expr{n, dn}, "", []egraph.ClassID{x})
					})
				return m.With(c)
			},
		}},
	})

	// Pull a common scaling factor out of a sum:
	// sum(scale(x_i, n, d)) = scale(sum(x_i), n, d). This direction is
	// contractive; the push-in direction would mint ever-finer
	// fractions through classes that contain sums of themselves.
	r.MustRegister(&Lemma{
		Name: "sum-of-equal-scales", Kind: KindGeneral, Complexity: 3, LOC: 30,
		Rules: []*egraph.Rule{{
			Name: "sum-of-equal-scales", Stateful: true,
			LHS: egraph.POpN(expr.OpSum, nil, "xs"),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				kids := m.Subst.KidsOf("xs")
				var n, dn sym.Expr
				inner := make([]egraph.ClassID, len(kids))
				for i, k := range kids {
					found := false
					for _, nd := range g.Class(k).Nodes() {
						if nd.Op != expr.OpScale {
							continue
						}
						if i == 0 {
							n, dn = nd.Ints[0], nd.Ints[1]
						} else if !nd.Ints[0].Equal(n) || !nd.Ints[1].Equal(dn) {
							continue
						}
						inner[i] = nd.Kids[0]
						found = true
						break
					}
					if !found {
						return nil
					}
				}
				sumC := addAll(g, expr.OpSum, nil, "", inner)
				c := addAll(g, expr.OpScale, []sym.Expr{n, dn}, "", []egraph.ClassID{sumC})
				return m.With(c)
			},
		}},
	})

	// Scaling commutes with reshape: reshape(scale(x,n,d), s) =
	// scale(reshape(x,s), n, d). Backward graphs reshape scaled loss
	// seeds, so this lemma lets the factor float out.
	r.MustRegister(&Lemma{
		Name: "scale-reshape-commute", Kind: KindGeneral, Complexity: 3, LOC: 16,
		Rules: []*egraph.Rule{{
			Name: "scale-reshape-commute",
			LHS: egraph.POp(expr.OpReshape, nil,
				egraph.POp(expr.OpScale, []egraph.AttrPat{egraph.AVar("n"), egraph.AVar("dn")},
					egraph.PVar("x"))),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				rs := addAll(g, expr.OpReshape, m.Node.Ints, "",
					[]egraph.ClassID{m.Subst.ClassOf("x")})
				c := addAll(g, expr.OpScale,
					[]sym.Expr{m.Subst.AttrOf("n"), m.Subst.AttrOf("dn")}, "",
					[]egraph.ClassID{rs})
				return m.With(c)
			},
		}},
	})

	// A scale on either multiplicand floats out of the product:
	// mul(scale(a,n,d), b) = scale(mul(a,b), n, d).
	mulScale := func(name string, scaleLeft bool) *egraph.Rule {
		var lhs *egraph.Pattern
		sc := egraph.POp(expr.OpScale,
			[]egraph.AttrPat{egraph.AVar("n"), egraph.AVar("dn")}, egraph.PVar("a"))
		if scaleLeft {
			lhs = egraph.POp(expr.OpMul, nil, sc, egraph.PVar("b"))
		} else {
			lhs = egraph.POp(expr.OpMul, nil, egraph.PVar("b"), sc)
		}
		return &egraph.Rule{
			Name: name,
			LHS:  lhs,
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				a, b := m.Subst.ClassOf("a"), m.Subst.ClassOf("b")
				var mm egraph.ClassID
				if scaleLeft {
					mm = addAll(g, expr.OpMul, nil, "", []egraph.ClassID{a, b})
				} else {
					mm = addAll(g, expr.OpMul, nil, "", []egraph.ClassID{b, a})
				}
				c := addAll(g, expr.OpScale,
					[]sym.Expr{m.Subst.AttrOf("n"), m.Subst.AttrOf("dn")}, "",
					[]egraph.ClassID{mm})
				return m.With(c)
			},
		}
	}
	r.MustRegister(&Lemma{
		Name: "mul-scale-assoc", Kind: KindGeneral, Complexity: 3, LOC: 26,
		Rules: []*egraph.Rule{
			mulScale("mul-scale-assoc/lhs", true),
			mulScale("mul-scale-assoc/rhs", false),
		},
	})

	// scale(scale(x, a, b), c, d) = scale(x, ac, bd); scale(x, k, k) = x.
	r.MustRegister(&Lemma{
		Name: "scale-compose", Kind: KindGeneral, Complexity: 3, LOC: 26,
		Rules: []*egraph.Rule{{
			Name: "scale-compose",
			LHS: egraph.POp(expr.OpScale, []egraph.AttrPat{egraph.AVar("n2"), egraph.AVar("d2")},
				egraph.POp(expr.OpScale, []egraph.AttrPat{egraph.AVar("n1"), egraph.AVar("d1")},
					egraph.PVar("x"))),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				n1, _ := m.Subst.AttrOf("n1").IsConst()
				d1, _ := m.Subst.AttrOf("d1").IsConst()
				n2, _ := m.Subst.AttrOf("n2").IsConst()
				d2, _ := m.Subst.AttrOf("d2").IsConst()
				if n1 == 0 || d1 == 0 || n2 == 0 || d2 == 0 {
					return nil
				}
				n, d := n1*n2, d1*d2
				if n == d {
					return m.With(m.Subst.ClassOf("x"))
				}
				if g := gcd(n, d); g > 1 {
					n, d = n/g, d/g
				}
				c := addAll(g, expr.OpScale, []sym.Expr{sym.Const(n), sym.Const(d)}, "",
					[]egraph.ClassID{m.Subst.ClassOf("x")})
				return m.With(c)
			},
		}, {
			Name: "scale-one",
			LHS: egraph.POp(expr.OpScale, []egraph.AttrPat{egraph.AVar("n"), egraph.AVar("d")},
				egraph.PVar("x")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				if !m.Subst.AttrOf("n").Equal(m.Subst.AttrOf("d")) {
					return nil
				}
				return m.With(m.Subst.ClassOf("x"))
			},
		}},
	})
}

func registerSoftmaxNorms(r *Registry) {
	// softmax over dim ds distributes over concat on a different dim.
	r.MustRegister(&Lemma{
		Name: "softmax-concat-commutative", Kind: KindGeneral, Complexity: 4, LOC: 26,
		Rules: []*egraph.Rule{{
			Name: "softmax-concat-commutative",
			LHS: egraph.POp(expr.OpSoftmax, []egraph.AttrPat{egraph.AVar("ds")},
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("dc")}, "xs")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				ds, dc := m.Subst.AttrOf("ds"), m.Subst.AttrOf("dc")
				if !g.Ctx.ProveNE(ds, dc) {
					return nil
				}
				c := mapKids(g, expr.OpConcat, []sym.Expr{dc}, "", m.Subst.KidsOf("xs"),
					func(_ int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpSoftmax, []sym.Expr{ds}, "", []egraph.ClassID{x})
					})
				return m.With(c)
			},
		}},
	})

	// layernorm normalizes the last dim: it distributes over concat on
	// any earlier dim, sharing weight and bias.
	r.MustRegister(&Lemma{
		Name: "layernorm-concat-commutative", Kind: KindGeneral, Complexity: 4, LOC: 30,
		Rules: []*egraph.Rule{{
			Name: "layernorm-concat-commutative",
			LHS: egraph.POp(expr.OpLayerNorm, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs"),
				egraph.PVar("w"), egraph.PVar("b")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				d, ok := dimConst(m.Subst.AttrOf("d"))
				if !ok {
					return nil
				}
				xs := m.Subst.KidsOf("xs")
				rank, got := g.RankOf(xs[0])
				if !got || d == rank-1 {
					return nil
				}
				wc, bc := m.Subst.ClassOf("w"), m.Subst.ClassOf("b")
				c := mapKids(g, expr.OpConcat, []sym.Expr{sym.Const(int64(d))}, "", xs,
					func(_ int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpLayerNorm, nil, "", []egraph.ClassID{x, wc, bc})
					})
				return m.With(c)
			},
		}},
	})

	// The paper's worked example (§6.5): RMSNorm(concat(X1,X2,0), W) =
	// concat(RMSNorm(X1,W), RMSNorm(X2,W), 0) — complexity 5.
	r.MustRegister(&Lemma{
		Name: "rmsnorm-concat-commutative", Kind: KindGeneral, Complexity: 5, LOC: 28,
		Rules: []*egraph.Rule{{
			Name: "rmsnorm-concat-commutative",
			LHS: egraph.POp(expr.OpRMSNorm, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs"),
				egraph.PVar("w")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				d, ok := dimConst(m.Subst.AttrOf("d"))
				if !ok {
					return nil
				}
				xs := m.Subst.KidsOf("xs")
				rank, got := g.RankOf(xs[0])
				if !got || d == rank-1 {
					return nil
				}
				wc := m.Subst.ClassOf("w")
				c := mapKids(g, expr.OpConcat, []sym.Expr{sym.Const(int64(d))}, "", xs,
					func(_ int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpRMSNorm, nil, "", []egraph.ClassID{x, wc})
					})
				return m.With(c)
			},
		}},
	})
}

func registerReduceSum(r *Registry) {
	// reducesum over the concat dim sums the per-chunk reductions.
	r.MustRegister(&Lemma{
		Name: "reducesum-concat-same-dim", Kind: KindGeneral, Complexity: 4, LOC: 22,
		Rules: []*egraph.Rule{{
			Name: "reducesum-concat-same-dim",
			LHS: egraph.POp(expr.OpReduceSum, []egraph.AttrPat{egraph.AVar("dr")},
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("dc")}, "xs")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				dr, dc := m.Subst.AttrOf("dr"), m.Subst.AttrOf("dc")
				if !g.Ctx.ProveEQ(dr, dc) {
					return nil
				}
				c := mapKids(g, expr.OpSum, nil, "", m.Subst.KidsOf("xs"),
					func(_ int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpReduceSum, []sym.Expr{dr}, "", []egraph.ClassID{x})
					})
				return m.With(c)
			},
		}},
	})

	// reducesum over another dim keeps the concat structure.
	r.MustRegister(&Lemma{
		Name: "reducesum-concat-other-dim", Kind: KindGeneral, Complexity: 4, LOC: 22,
		Rules: []*egraph.Rule{{
			Name: "reducesum-concat-other-dim",
			LHS: egraph.POp(expr.OpReduceSum, []egraph.AttrPat{egraph.AVar("dr")},
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("dc")}, "xs")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				dr, dc := m.Subst.AttrOf("dr"), m.Subst.AttrOf("dc")
				if !g.Ctx.ProveNE(dr, dc) {
					return nil
				}
				c := mapKids(g, expr.OpConcat, []sym.Expr{dc}, "", m.Subst.KidsOf("xs"),
					func(_ int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpReduceSum, []sym.Expr{dr}, "", []egraph.ClassID{x})
					})
				return m.With(c)
			},
		}},
	})
}

func registerEmbedding(r *Registry) {
	// Vocabulary parallelism: a lookup in a row-partitioned table is
	// the sum of masked per-shard lookups (out-of-shard ids yield 0).
	r.MustRegister(&Lemma{
		Name: "embedding-vocab-parallel", Kind: KindGeneral, Complexity: 4, LOC: 30,
		Rules: []*egraph.Rule{{
			Name: "embedding-vocab-parallel",
			LHS: egraph.POp(expr.OpEmbedding, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(0)}, "ws"),
				egraph.PVar("ids")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				ws := m.Subst.KidsOf("ws")
				exts, rank, ok := kidExtents(g, ws, 0)
				if !ok || rank != 2 {
					return nil
				}
				offs := prefixOffsets(exts)
				idsC := m.Subst.ClassOf("ids")
				c := mapKids(g, expr.OpSum, nil, "", ws,
					func(i int, w egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpEmbeddingShard, []sym.Expr{offs[i]}, "",
							[]egraph.ClassID{w, idsC})
					})
				return m.With(c)
			},
		}},
	})

	// Hidden-dim parallelism: a column-partitioned table concatenates
	// per-shard lookups along the output's last dim.
	r.MustRegister(&Lemma{
		Name: "embedding-hidden-parallel", Kind: KindGeneral, Complexity: 4, LOC: 26,
		Rules: []*egraph.Rule{{
			Name: "embedding-hidden-parallel",
			LHS: egraph.POp(expr.OpEmbedding, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(1)}, "ws"),
				egraph.PVar("ids")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				idsC := m.Subst.ClassOf("ids")
				idsRank, got := g.RankOf(idsC)
				if !got {
					return nil
				}
				outDim := sym.Const(int64(idsRank)) // ids-rank + 1 dims, last
				c := mapKids(g, expr.OpConcat, []sym.Expr{outDim}, "", m.Subst.KidsOf("ws"),
					func(_ int, w egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpEmbedding, nil, "", []egraph.ClassID{w, idsC})
					})
				return m.With(c)
			},
		}},
	})

	// Sequence split of the ids: lookups are per-token independent.
	r.MustRegister(&Lemma{
		Name: "embedding-seq-split", Kind: KindGeneral, Complexity: 4, LOC: 18,
		Rules: []*egraph.Rule{{
			Name: "embedding-seq-split",
			LHS: egraph.POp(expr.OpEmbedding, nil,
				egraph.PVar("w"),
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "ids")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				wc := m.Subst.ClassOf("w")
				d := m.Subst.AttrOf("d")
				c := mapKids(g, expr.OpConcat, []sym.Expr{d}, "", m.Subst.KidsOf("ids"),
					func(_ int, ids egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpEmbedding, nil, "", []egraph.ClassID{wc, ids})
					})
				return m.With(c)
			},
		}},
	})
}

func registerRoPE(r *Registry) {
	// Sequence parallelism for rotary embeddings: each sequence shard
	// must use the matching slice of the precomputed cos/sin tables —
	// the lemma whose violation is §6.2's bug 1.
	r.MustRegister(&Lemma{
		Name: "rope-seq-split", Kind: KindGeneral, Complexity: 6, LOC: 38,
		Rules: []*egraph.Rule{{
			Name: "rope-seq-split",
			LHS: egraph.POp(expr.OpRoPE, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(0)}, "xs"),
				egraph.PVar("cos"), egraph.PVar("sin")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				xs := m.Subst.KidsOf("xs")
				exts, _, ok := kidExtents(g, xs, 0)
				if !ok {
					return nil
				}
				offs := prefixOffsets(exts)
				cosC, sinC := m.Subst.ClassOf("cos"), m.Subst.ClassOf("sin")
				zero := sym.Const(0)
				c := mapKids(g, expr.OpConcat, []sym.Expr{zero}, "", xs,
					func(i int, x egraph.ClassID) egraph.ClassID {
						cosI := addAll(g, expr.OpSlice, []sym.Expr{zero, offs[i], offs[i+1]}, "", []egraph.ClassID{cosC})
						sinI := addAll(g, expr.OpSlice, []sym.Expr{zero, offs[i], offs[i+1]}, "", []egraph.ClassID{sinC})
						return addAll(g, expr.OpRoPE, nil, "", []egraph.ClassID{x, cosI, sinI})
					})
				return m.With(c)
			},
		}},
	})
}

func registerRoPEHidden(r *Registry) {
	// Tensor parallelism for rotary embeddings: under the
	// adjacent-pair convention, splitting the hidden dim on even
	// boundaries commutes with rotation when cos/sin are split the
	// same way.
	r.MustRegister(&Lemma{
		Name: "rope-hidden-split", Kind: KindGeneral, Complexity: 6, LOC: 34,
		Rules: []*egraph.Rule{{
			Name: "rope-hidden-split",
			LHS: egraph.POp(expr.OpRoPE, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(1)}, "xs"),
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(1)}, "cs"),
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(1)}, "ss")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				xs, cs, ss := m.Subst.KidsOf("xs"), m.Subst.KidsOf("cs"), m.Subst.KidsOf("ss")
				if len(xs) != len(cs) || len(xs) != len(ss) {
					return nil
				}
				xe, _, ok := kidExtents(g, xs, 1)
				if !ok {
					return nil
				}
				for _, e := range xe {
					v, isC := e.IsConst()
					if !isC || v%2 != 0 {
						return nil // chunks must respect rotation pairs
					}
				}
				ce, _, ok := kidExtents(g, cs, 1)
				if !ok || !pairwiseAligned(g.Ctx, xe, ce) {
					return nil
				}
				se, _, ok := kidExtents(g, ss, 1)
				if !ok || !pairwiseAligned(g.Ctx, xe, se) {
					return nil
				}
				c := mapKids(g, expr.OpConcat, []sym.Expr{sym.Const(1)}, "", xs,
					func(i int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpRoPE, nil, "", []egraph.ClassID{x, cs[i], ss[i]})
					})
				return m.With(c)
			},
		}},
	})
}

func registerAttention(r *Registry) {
	// Head parallelism: attention over hidden-concatenated head groups
	// equals the concatenation of per-group attention with
	// proportionally fewer heads. The FlashAttention-style fused
	// kernel assumption (§3.3) makes this a single lemma.
	r.MustRegister(&Lemma{
		Name: "attention-head-parallel", Kind: KindGeneral, Complexity: 8, LOC: 44,
		Rules: []*egraph.Rule{{
			Name: "attention-head-parallel",
			LHS: egraph.POp(expr.OpAttention, []egraph.AttrPat{egraph.AVar("h")},
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "qs"),
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "ks"),
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "vs")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				qs, ks, vs := m.Subst.KidsOf("qs"), m.Subst.KidsOf("ks"), m.Subst.KidsOf("vs")
				if len(qs) != len(ks) || len(qs) != len(vs) {
					return nil
				}
				d, ok := dimConst(m.Subst.AttrOf("d"))
				if !ok {
					return nil
				}
				rank, got := g.RankOf(qs[0])
				if !got || d != rank-1 {
					return nil
				}
				h, isC := m.Subst.AttrOf("h").IsConst()
				if !isC || h%int64(len(qs)) != 0 {
					return nil
				}
				qe, _, ok := kidExtents(g, qs, d)
				if !ok || !allEqual(g.Ctx, qe) {
					return nil
				}
				ke, _, ok := kidExtents(g, ks, d)
				if !ok || !pairwiseAligned(g.Ctx, qe, ke) {
					return nil
				}
				ve, _, ok := kidExtents(g, vs, d)
				if !ok || !pairwiseAligned(g.Ctx, qe, ve) {
					return nil
				}
				hSub := sym.Const(h / int64(len(qs)))
				c := mapKids(g, expr.OpConcat, []sym.Expr{sym.Const(int64(d))}, "", qs,
					func(i int, q egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpAttention, []sym.Expr{hSub}, "",
							[]egraph.ClassID{q, ks[i], vs[i]})
					})
				return m.With(c)
			},
		}},
	})

	// Attention is per-row independent in q: a sequence split of q
	// (with full k, v) concatenates. Used by sequence parallelism.
	r.MustRegister(&Lemma{
		Name: "attention-query-seq-split", Kind: KindGeneral, Complexity: 5, LOC: 26,
		Rules: []*egraph.Rule{{
			Name: "attention-query-seq-split",
			LHS: egraph.POp(expr.OpAttention, []egraph.AttrPat{egraph.AVar("h")},
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(0)}, "qs"),
				egraph.PVar("k"), egraph.PVar("v")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				h := m.Subst.AttrOf("h")
				kc, vc := m.Subst.ClassOf("k"), m.Subst.ClassOf("v")
				c := mapKids(g, expr.OpConcat, []sym.Expr{sym.Const(0)}, "", m.Subst.KidsOf("qs"),
					func(_ int, q egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpAttention, []sym.Expr{h}, "", []egraph.ClassID{q, kc, vc})
					})
				return m.With(c)
			},
		}},
	})
}

func registerMoE(r *Registry) {
	// Router probabilities are per-token: sequence splits commute.
	r.MustRegister(&Lemma{
		Name: "router-seq-split", Kind: KindGeneral, Complexity: 4, LOC: 18,
		Rules: []*egraph.Rule{{
			Name: "router-seq-split",
			LHS: egraph.POp(expr.OpRouter, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(0)}, "xs"),
				egraph.PVar("w")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				wc := m.Subst.ClassOf("w")
				c := mapKids(g, expr.OpConcat, []sym.Expr{sym.Const(0)}, "", m.Subst.KidsOf("xs"),
					func(_ int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpRouter, nil, "", []egraph.ClassID{x, wc})
					})
				return m.With(c)
			},
		}},
	})

	// The auxiliary load-balancing loss over a token split is the mean
	// of per-shard losses: scale(sum(auxloss_i), 1, k) for k equal
	// shards. Omitting the 1/k scaling is §6.2's bug 2 shape.
	r.MustRegister(&Lemma{
		Name: "auxloss-token-split", Kind: KindGeneral, Complexity: 4, LOC: 26,
		Rules: []*egraph.Rule{{
			Name: "auxloss-token-split",
			LHS: egraph.POp(expr.OpAuxLoss, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(0)}, "ps")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				ps := m.Subst.KidsOf("ps")
				exts, _, ok := kidExtents(g, ps, 0)
				if !ok || !allEqual(g.Ctx, exts) {
					return nil
				}
				sumC := mapKids(g, expr.OpSum, nil, "", ps,
					func(_ int, p egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpAuxLoss, nil, "", []egraph.ClassID{p})
					})
				c := addAll(g, expr.OpScale,
					[]sym.Expr{sym.Const(1), sym.Const(int64(len(ps)))}, "",
					[]egraph.ClassID{sumC})
				return m.With(c)
			},
		}},
	})
}

func registerLosses(r *Registry) {
	// Sum-of-squares error is additive over aligned batch splits.
	r.MustRegister(&Lemma{
		Name: "sqerr-batch-split", Kind: KindGeneral, Complexity: 4, LOC: 30,
		Rules: []*egraph.Rule{{
			Name: "sqerr-batch-split",
			LHS: egraph.POp(expr.OpSquaredError, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(0)}, "xs"),
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(0)}, "ts")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				xs, ts := m.Subst.KidsOf("xs"), m.Subst.KidsOf("ts")
				if len(xs) != len(ts) {
					return nil
				}
				xe, _, ok := kidExtents(g, xs, 0)
				if !ok {
					return nil
				}
				te, _, ok := kidExtents(g, ts, 0)
				if !ok || !pairwiseAligned(g.Ctx, xe, te) {
					return nil
				}
				c := mapKids(g, expr.OpSum, nil, "", xs,
					func(i int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpSquaredError, nil, "", []egraph.ClassID{x, ts[i]})
					})
				return m.With(c)
			},
		}},
	})

	// MSE is the sum of squares scaled by 1/numel (when the element
	// count is concrete); lets mean-based and sum-based loss spellings
	// meet in one class.
	r.MustRegister(&Lemma{
		Name: "mse-as-scaled-sqerr", Kind: KindGeneral, Complexity: 3, LOC: 24,
		Rules: []*egraph.Rule{{
			Name: "mse-as-scaled-sqerr",
			LHS:  egraph.POp(expr.OpMSELoss, nil, egraph.PVar("x"), egraph.PVar("t")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				xc := m.Subst.ClassOf("x")
				s, got := g.ShapeOf(xc)
				if !got {
					return nil
				}
				numel := int64(1)
				for _, d := range s {
					v, isC := d.IsConst()
					if !isC {
						return nil
					}
					numel *= v
				}
				if numel == 0 {
					return nil
				}
				se := addAll(g, expr.OpSquaredError, nil, "",
					[]egraph.ClassID{xc, m.Subst.ClassOf("t")})
				c := addAll(g, expr.OpScale, []sym.Expr{sym.Const(1), sym.Const(numel)}, "",
					[]egraph.ClassID{se})
				return m.With(c)
			},
		}},
	})

	// Mean-squared error over k equal batch shards is the scaled sum
	// of per-shard means — gradient accumulation's loss-scaling lemma
	// (§6.2's bug 6 omits the 1/k).
	r.MustRegister(&Lemma{
		Name: "mse-batch-split", Kind: KindGeneral, Complexity: 5, LOC: 36,
		Rules: []*egraph.Rule{{
			Name: "mse-batch-split",
			LHS: egraph.POp(expr.OpMSELoss, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(0)}, "xs"),
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(0)}, "ts")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				xs, ts := m.Subst.KidsOf("xs"), m.Subst.KidsOf("ts")
				if len(xs) != len(ts) {
					return nil
				}
				xe, _, ok := kidExtents(g, xs, 0)
				if !ok || !allEqual(g.Ctx, xe) {
					return nil
				}
				te, _, ok := kidExtents(g, ts, 0)
				if !ok || !pairwiseAligned(g.Ctx, xe, te) {
					return nil
				}
				sumC := mapKids(g, expr.OpSum, nil, "", xs,
					func(i int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpMSELoss, nil, "", []egraph.ClassID{x, ts[i]})
					})
				c := addAll(g, expr.OpScale,
					[]sym.Expr{sym.Const(1), sym.Const(int64(len(xs)))}, "",
					[]egraph.ClassID{sumC})
				return m.With(c)
			},
		}},
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
