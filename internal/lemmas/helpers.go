package lemmas

import (
	"entangle/internal/egraph"
	"entangle/internal/expr"
	"entangle/internal/sym"
)

// maxNaryWidth caps the arity that flattening lemmas may create. The
// evaluation's largest parallelism degree is 8; classes that contain a
// sum/concat of themselves would otherwise flatten without bound.
const maxNaryWidth = 12

// Shared helpers for dynamic lemmas. All of them fail soft: when the
// shape analysis cannot derive what a side condition needs, the lemma
// simply does not fire (costing completeness, never soundness — §4.3.1
// makes the same trade).

// dimConst extracts a constant, non-negative dimension index.
func dimConst(e sym.Expr) (int, bool) {
	v, ok := e.IsConst()
	if !ok || v < 0 {
		return 0, false
	}
	return int(v), true
}

// kidExtents returns each class's extent along dimension d, plus the
// common rank. All kids must have derivable shapes of the same rank
// with d in range.
func kidExtents(g *egraph.EGraph, kids []egraph.ClassID, d int) (exts []sym.Expr, rank int, ok bool) {
	for i, k := range kids {
		s, got := g.ShapeOf(k)
		if !got || d >= len(s) {
			return nil, 0, false
		}
		if i == 0 {
			rank = len(s)
		} else if len(s) != rank {
			return nil, 0, false
		}
		exts = append(exts, s[d])
	}
	return exts, rank, true
}

// prefixOffsets returns the running start offsets of chunks with the
// given extents: [0, e0, e0+e1, …, Σe].
func prefixOffsets(exts []sym.Expr) []sym.Expr {
	out := make([]sym.Expr, len(exts)+1)
	out[0] = sym.Const(0)
	for i, e := range exts {
		out[i+1] = out[i].Add(e)
	}
	return out
}

// pairwiseAligned reports whether two chunk lists have provably equal
// extents position by position.
func pairwiseAligned(ctx *sym.Context, a, b []sym.Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ctx.ProveEQ(a[i], b[i]) {
			return false
		}
	}
	return true
}

// allEqual reports whether every extent is provably equal to the first.
func allEqual(ctx *sym.Context, exts []sym.Expr) bool {
	for _, e := range exts[1:] {
		if !ctx.ProveEQ(exts[0], e) {
			return false
		}
	}
	return true
}

// allSameClass reports whether every class is the same one.
func allSameClass(g *egraph.EGraph, kids []egraph.ClassID) bool {
	for _, k := range kids[1:] {
		if g.Find(k) != g.Find(kids[0]) {
			return false
		}
	}
	return true
}

// addAll inserts an n-ary node over concrete kid classes. It goes
// through InstantiateOp rather than an RTerm template: lemmas call it
// on every application, and the template tree was pure allocation
// overhead for an already-concrete node.
func addAll(g *egraph.EGraph, op expr.Op, ints []sym.Expr, str string, kids []egraph.ClassID) egraph.ClassID {
	c, _ := g.InstantiateOp(op, ints, str, kids)
	return c
}

// mapKids applies f to each kid class and inserts op over the results.
func mapKids(g *egraph.EGraph, op expr.Op, ints []sym.Expr, str string,
	kids []egraph.ClassID, f func(i int, k egraph.ClassID) egraph.ClassID) egraph.ClassID {
	mapped := make([]egraph.ClassID, len(kids))
	for i, k := range kids {
		mapped[i] = f(i, k)
	}
	if len(mapped) == 1 {
		return mapped[0]
	}
	return addAll(g, op, ints, str, mapped)
}
