package lemmas

import (
	"fmt"
	"math/rand"
	"testing"

	"entangle/internal/egraph"
	"entangle/internal/expr"
	"entangle/internal/numeric"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// Lemma-soundness fuzzing: build random well-shaped expressions,
// saturate with the full lemma library, extract a (clean or arbitrary)
// representative of the root class, and check numerically that it
// computes the same value as the original expression. This is the
// paper's lemma validation (§5) done end-to-end: any unsound rewrite
// in any lemma composition fails this test.

type fuzzEnv struct {
	rng    *rand.Rand
	shapes map[int]shape.Shape
	vals   map[int]*numeric.Dense
	next   int
}

func (f *fuzzEnv) leaf(dims ...int) *expr.Term {
	id := f.next
	f.next++
	sh := make(shape.Shape, len(dims))
	for i, d := range dims {
		sh[i] = sym.Const(int64(d))
	}
	f.shapes[id] = sh
	f.vals[id] = numeric.Rand(f.rng, dims...)
	return expr.Tensor(id, fmt.Sprintf("t%d", id))
}

// gen builds a random expression with the given concrete shape,
// recursing up to depth.
func (f *fuzzEnv) gen(dims []int, depth int) *expr.Term {
	if depth == 0 || f.rng.Intn(4) == 0 {
		return f.leaf(dims...)
	}
	switch f.rng.Intn(8) {
	case 0: // concat along a random dim
		d := f.rng.Intn(len(dims))
		if dims[d] < 2 {
			return f.leaf(dims...)
		}
		cut := 1 + f.rng.Intn(dims[d]-1)
		left := append([]int{}, dims...)
		right := append([]int{}, dims...)
		left[d], right[d] = cut, dims[d]-cut
		return expr.ConcatI(int64(d), f.gen(left, depth-1), f.gen(right, depth-1))
	case 1: // slice of something larger
		d := f.rng.Intn(len(dims))
		extra := 1 + f.rng.Intn(3)
		big := append([]int{}, dims...)
		big[d] += extra
		begin := f.rng.Intn(extra + 1)
		return expr.SliceI(f.gen(big, depth-1), int64(d), int64(begin), int64(begin+dims[d]))
	case 2: // sum of 2-3 same-shaped
		n := 2 + f.rng.Intn(2)
		args := make([]*expr.Term, n)
		for i := range args {
			args[i] = f.gen(dims, depth-1)
		}
		return expr.Sum(args...)
	case 3: // elementwise binary
		ops := []func(a, b *expr.Term) *expr.Term{expr.Add, expr.Sub, expr.Mul}
		return ops[f.rng.Intn(len(ops))](f.gen(dims, depth-1), f.gen(dims, depth-1))
	case 4: // matmul (rank-2 only)
		if len(dims) != 2 {
			return f.leaf(dims...)
		}
		k := 1 + f.rng.Intn(4)
		return expr.MatMul(f.gen([]int{dims[0], k}, depth-1), f.gen([]int{k, dims[1]}, depth-1))
	case 5: // unary
		names := []string{"gelu", "silu", "relu", "tanh"}
		return expr.Unary(names[f.rng.Intn(len(names))], f.gen(dims, depth-1))
	case 6: // scale
		num := int64(1 + f.rng.Intn(3))
		den := int64(1 + f.rng.Intn(3))
		return expr.Scale(f.gen(dims, depth-1), num, den)
	case 7: // transpose (round trip keeps the shape contract simple)
		if len(dims) != 2 {
			return f.leaf(dims...)
		}
		z, o := sym.Const(0), sym.Const(1)
		inner := f.gen([]int{dims[1], dims[0]}, depth-1)
		return expr.Transpose(inner, z, o)
	}
	return f.leaf(dims...)
}

func (f *fuzzEnv) eval(t *expr.Term) (*numeric.Dense, error) {
	return numeric.EvalTerm(t, nil, func(tid int) (*numeric.Dense, error) {
		v, ok := f.vals[tid]
		if !ok {
			return nil, fmt.Errorf("missing leaf %d", tid)
		}
		return v, nil
	})
}

func TestFuzzLemmaSoundness(t *testing.T) {
	reg := Default()
	rules := reg.Rules()
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		f := &fuzzEnv{
			rng:    rand.New(rand.NewSource(int64(1000 + trial))),
			shapes: map[int]shape.Shape{},
			vals:   map[int]*numeric.Dense{},
		}
		dims := []int{1 + f.rng.Intn(4), 1 + f.rng.Intn(4)}
		root := f.gen(dims, 3)
		want, err := f.eval(root)
		if err != nil {
			t.Fatalf("trial %d: eval original: %v", trial, err)
		}

		g := egraph.New(nil)
		g.SetLeafShapeFn(func(tid int) (shape.Shape, bool) {
			s, ok := f.shapes[tid]
			return s, ok
		})
		cls := g.AddTerm(root)
		g.Saturate(rules, egraph.SaturateOpts{MaxIters: 10, MaxNodes: 20_000})

		// Any clean representative over the leaves must agree with the
		// original expression's value.
		if rep, ok := g.ExtractClean(cls, func(int) bool { return true }); ok {
			got, err := f.eval(rep)
			if err != nil {
				t.Fatalf("trial %d: eval extracted %s: %v", trial, rep, err)
			}
			if !numeric.AllClose(want, got, 1e-9) {
				t.Fatalf("trial %d: UNSOUND REWRITE\noriginal: %s\nextracted: %s\nmax diff %g",
					trial, root, rep, numeric.MaxAbsDiff(want, got))
			}
		}

		// Stronger: every distinct clean representative agrees too.
		for _, rep := range g.ExtractAllClean(cls, func(int) bool { return true }, 8) {
			got, err := f.eval(rep)
			if err != nil {
				t.Fatalf("trial %d: eval %s: %v", trial, rep, err)
			}
			if !numeric.AllClose(want, got, 1e-9) {
				t.Fatalf("trial %d: UNSOUND REWRITE\noriginal: %s\nvariant: %s\nmax diff %g",
					trial, root, rep, numeric.MaxAbsDiff(want, got))
			}
		}
	}
}

// TestFuzzSlicedConcatEquivalences directs the fuzzer at the lemmas
// with the trickiest index arithmetic: random tilings of a tensor,
// random slices over them, saturated and cross-checked.
func TestFuzzSlicedConcatEquivalences(t *testing.T) {
	reg := Default()
	rules := reg.Rules()
	for trial := 0; trial < 120; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		rows := 2 + rng.Intn(6)
		cols := 1 + rng.Intn(4)
		f := &fuzzEnv{rng: rng, shapes: map[int]shape.Shape{}, vals: map[int]*numeric.Dense{}}
		base := f.leaf(rows, cols)

		// random tiling of dim 0
		var pieces []*expr.Term
		at := 0
		for at < rows {
			step := 1 + rng.Intn(rows-at)
			pieces = append(pieces, expr.SliceI(base, 0, int64(at), int64(at+step)))
			at += step
		}
		tiled := expr.ConcatI(0, pieces...)
		lo := rng.Intn(rows)
		hi := lo + 1 + rng.Intn(rows-lo)
		probe := expr.SliceI(tiled, 0, int64(lo), int64(hi))

		want, err := f.eval(probe)
		if err != nil {
			t.Fatal(err)
		}
		g := egraph.New(nil)
		g.SetLeafShapeFn(func(tid int) (shape.Shape, bool) {
			s, ok := f.shapes[tid]
			return s, ok
		})
		cls := g.AddTerm(probe)
		g.Saturate(rules, egraph.SaturateOpts{MaxIters: 12, MaxNodes: 20_000})
		for _, rep := range g.ExtractAllClean(cls, func(int) bool { return true }, 8) {
			got, err := f.eval(rep)
			if err != nil {
				t.Fatalf("trial %d: eval %s: %v", trial, rep, err)
			}
			if !numeric.AllClose(want, got, 1e-12) {
				t.Fatalf("trial %d: UNSOUND index arithmetic\nprobe: %s\nvariant: %s",
					trial, probe, rep)
			}
		}
		// The minimal representative should collapse to a single slice
		// of the base tensor (or the base itself).
		if rep, ok := g.ExtractClean(cls, func(tid int) bool { return tid == base.TID }); ok {
			got, _ := f.eval(rep)
			if !numeric.AllClose(want, got, 1e-12) {
				t.Fatalf("trial %d: collapsed slice wrong: %s", trial, rep)
			}
		}
	}
}
