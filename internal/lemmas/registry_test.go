package lemmas

import (
	"strings"
	"testing"

	"entangle/internal/egraph"
	"entangle/internal/expr"
)

func idRule(name string) *egraph.Rule {
	return egraph.Simple(name,
		egraph.POp(expr.OpIdentity, nil, egraph.PVar("x")),
		egraph.RVar("x"))
}

func TestRegisterRejectsDuplicateLemmaName(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(&Lemma{Name: "dup", Rules: []*egraph.Rule{idRule("r1")}}); err != nil {
		t.Fatal(err)
	}
	_, err := r.Register(&Lemma{Name: "dup", Rules: []*egraph.Rule{idRule("r2")}})
	if err == nil || !strings.Contains(err.Error(), `duplicate lemma "dup"`) {
		t.Fatalf("want duplicate-lemma error, got %v", err)
	}
	// The failed Register must leave the registry untouched: one
	// lemma, and r2 not claimed by the rule index.
	if r.Len() != 1 {
		t.Fatalf("Len() = %d after rejected Register, want 1", r.Len())
	}
	if _, err := r.Register(&Lemma{Name: "other", Rules: []*egraph.Rule{idRule("r2")}}); err != nil {
		t.Fatalf("r2 should still be registrable after the rejection: %v", err)
	}
}

func TestRegisterRejectsDuplicateRuleName(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(&Lemma{Name: "first", Rules: []*egraph.Rule{idRule("shared")}}); err != nil {
		t.Fatal(err)
	}
	// Across lemmas.
	if _, err := r.Register(&Lemma{Name: "second", Rules: []*egraph.Rule{idRule("shared")}}); err == nil {
		t.Fatal("want error for rule name duplicated across lemmas")
	}
	if _, ok := r.ByName("second"); ok {
		t.Fatal("rejected lemma must not be registered")
	}
	// Within one lemma.
	_, err := r.Register(&Lemma{Name: "third", Rules: []*egraph.Rule{idRule("twice"), idRule("twice")}})
	if err == nil {
		t.Fatal("want error for rule name duplicated within one lemma")
	}
	if len(r.Rules()) != 1 {
		t.Fatalf("Rules() has %d entries, want 1 (rejections must not leak rules)", len(r.Rules()))
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&Lemma{Name: "dup", Rules: []*egraph.Rule{idRule("r1")}})
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister must panic on a duplicate lemma name")
		}
	}()
	r.MustRegister(&Lemma{Name: "dup", Rules: []*egraph.Rule{idRule("r2")}})
}

func TestRegisterInvalidatesRulesCache(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&Lemma{Name: "a", Rules: []*egraph.Rule{idRule("ra")}})
	if n := len(r.Rules()); n != 1 {
		t.Fatalf("Rules() = %d, want 1", n)
	}
	r.MustRegister(&Lemma{Name: "b", Rules: []*egraph.Rule{idRule("rb")}})
	if n := len(r.Rules()); n != 2 {
		t.Fatalf("Rules() = %d after second Register, want 2 (cache must invalidate)", n)
	}
}
