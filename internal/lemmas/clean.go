package lemmas

import (
	"sort"

	"entangle/internal/egraph"
	"entangle/internal/expr"
	"entangle/internal/sym"
)

// registerClean registers the structural lemmas over clean operators
// (Figure 6's "c"-marked lemmas): slice, concat, transpose, reshape,
// pad, sum, identity. These dominate application counts in the paper's
// heatmap because every distribution strategy manipulates shards.
func registerClean(r *Registry) {
	registerIdentity(r)
	registerSumBasics(r)
	registerSumOfConcats(r)
	registerConcatFlatten(r)
	registerConcatOfSlices(r)
	registerSliceJoin(r)
	registerSliceOfConcat(r)
	registerSliceCompose(r)
	registerSliceFull(r)
	registerSliceOfSum(r)
	registerSliceOfPad(r)
	registerTranspose(r)
	registerReshape(r)
}

func registerIdentity(r *Registry) {
	r.MustRegister(&Lemma{
		Name: "identity-elim", Kind: KindClean, Complexity: 1, LOC: 4,
		Rules: []*egraph.Rule{egraph.Simple("identity-elim",
			egraph.POp(expr.OpIdentity, nil, egraph.PVar("x")),
			egraph.RVar("x"))},
	})
}

func registerSumBasics(r *Registry) {
	// add(x,y) and sum(x,y) denote the same value; normalizing them
	// into one class lets every sum lemma cover both spellings.
	r.MustRegister(&Lemma{
		Name: "add-is-sum", Kind: KindClean, Complexity: 2, LOC: 6,
		Rules: []*egraph.Rule{egraph.Simple("add-is-sum",
			egraph.POp(expr.OpAdd, nil, egraph.PVar("x"), egraph.PVar("y")),
			egraph.ROp(expr.OpSum, nil, "", egraph.RVar("x"), egraph.RVar("y")))},
	})

	// sum is commutative: union with the class-sorted spelling.
	r.MustRegister(&Lemma{
		Name: "sum-commutative", Kind: KindClean, Complexity: 2, LOC: 16,
		Rules: []*egraph.Rule{{
			Name: "sum-commutative", Stateful: true,
			LHS: egraph.POpN(expr.OpSum, nil, "xs"),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				kids := m.Subst.KidsOf("xs")
				sorted := make([]egraph.ClassID, len(kids))
				copy(sorted, kids)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				for i := range kids {
					if sorted[i] != kids[i] {
						return m.With(addAll(g, expr.OpSum, nil, "", sorted))
					}
				}
				return nil
			},
		}},
	})

	// sum(… sum(ys) …) flattens one level. Width-capped: a class can
	// contain a sum of itself (x = sum(x/2, x/2) after other lemmas),
	// and uncapped flattening would then grow sums without bound.
	r.MustRegister(&Lemma{
		Name: "sum-flatten", Kind: KindClean, Complexity: 2, LOC: 22,
		Rules: []*egraph.Rule{{
			Name: "sum-flatten", Stateful: true,
			LHS: egraph.POpN(expr.OpSum, nil, "xs"),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				kids := m.Subst.KidsOf("xs")
				for i, k := range kids {
					for _, n := range g.Class(k).Nodes() {
						if n.Op != expr.OpSum || len(kids)+len(n.Kids)-1 > maxNaryWidth {
							continue
						}
						flat := make([]egraph.ClassID, 0, len(kids)+len(n.Kids)-1)
						flat = append(flat, kids[:i]...)
						flat = append(flat, n.Kids...)
						flat = append(flat, kids[i+1:]...)
						return m.With(addAll(g, expr.OpSum, nil, "", flat))
					}
				}
				return nil
			},
		}},
	})

	// sum of n identical tensors is a scaling by n: the shape of the
	// replicated-computation bugs (§6.2 bugs 2 and 6) — the buggy
	// implementation maps only to scale(x, n, 1), which is not clean.
	r.MustRegister(&Lemma{
		Name: "sum-identical-scale", Kind: KindClean, Complexity: 2, LOC: 14,
		Rules: []*egraph.Rule{{
			Name: "sum-identical-scale",
			LHS:  egraph.POpN(expr.OpSum, nil, "xs"),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				kids := m.Subst.KidsOf("xs")
				if len(kids) < 2 || !allSameClass(g, kids) {
					return nil
				}
				c, _ := g.Instantiate(egraph.ROp(expr.OpScale,
					[]sym.Expr{sym.Const(int64(len(kids))), sym.Const(1)}, "",
					egraph.RClass(kids[0])), nil, false)
				return m.With(c)
			},
		}},
	})
}

func registerSumOfConcats(r *Registry) {
	// sum(concat(x00,x01,d), concat(x10,x11,d), …) =
	// concat(sum(x00,x10,…), sum(x01,x11,…), d) when the chunk extents
	// align pairwise. This is how per-rank partial shards combine.
	r.MustRegister(&Lemma{
		Name: "sum-of-concats", Kind: KindClean, Complexity: 4, LOC: 38,
		Rules: []*egraph.Rule{{
			Name: "sum-of-concats", Stateful: true,
			LHS: egraph.POpN(expr.OpSum, nil, "xs"),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				kids := m.Subst.KidsOf("xs")
				var dim sym.Expr
				var chunks [][]egraph.ClassID
				for _, k := range kids {
					found := false
					for _, n := range g.Class(k).Nodes() {
						if n.Op != expr.OpConcat {
							continue
						}
						if chunks == nil {
							dim = n.Ints[0]
						} else if !n.Ints[0].Equal(dim) || len(n.Kids) != len(chunks[0]) {
							continue
						}
						chunks = append(chunks, n.Kids)
						found = true
						break
					}
					if !found {
						return nil
					}
				}
				d, ok := dimConst(dim)
				if !ok {
					return nil
				}
				ext0, _, ok := kidExtents(g, chunks[0], d)
				if !ok {
					return nil
				}
				for _, row := range chunks[1:] {
					exts, _, ok := kidExtents(g, row, d)
					if !ok || !pairwiseAligned(g.Ctx, ext0, exts) {
						return nil
					}
				}
				cols := make([]egraph.ClassID, len(chunks[0]))
				for j := range cols {
					col := make([]egraph.ClassID, len(chunks))
					for i := range chunks {
						col[i] = chunks[i][j]
					}
					cols[j] = addAll(g, expr.OpSum, nil, "", col)
				}
				return m.With(addAll(g, expr.OpConcat, []sym.Expr{dim}, "", cols))
			},
		}},
	})
}

func registerConcatFlatten(r *Registry) {
	// concat(…, concat(ys, d), …, d) flattens one level (same dim).
	r.MustRegister(&Lemma{
		Name: "concat-flatten", Kind: KindClean, Complexity: 2, LOC: 24,
		Rules: []*egraph.Rule{{
			Name: "concat-flatten", Stateful: true,
			LHS: egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs"),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				d := m.Subst.AttrOf("d")
				kids := m.Subst.KidsOf("xs")
				for i, k := range kids {
					for _, n := range g.Class(k).Nodes() {
						if n.Op != expr.OpConcat || !n.Ints[0].Equal(d) ||
							len(kids)+len(n.Kids)-1 > maxNaryWidth {
							continue
						}
						flat := make([]egraph.ClassID, 0, len(kids)+len(n.Kids)-1)
						flat = append(flat, kids[:i]...)
						flat = append(flat, n.Kids...)
						flat = append(flat, kids[i+1:]...)
						return m.With(addAll(g, expr.OpConcat, []sym.Expr{d}, "", flat))
					}
				}
				return nil
			},
		}},
	})
}

func registerConcatOfSlices(r *Registry) {
	// concat(x[b0:e0 @d], x[e0:e1 @d], …, d) collapses to a single
	// slice of x — and to x itself when the tiles cover it exactly.
	r.MustRegister(&Lemma{
		Name: "concat-of-slices", Kind: KindClean, Complexity: 3, LOC: 44,
		Rules: []*egraph.Rule{{
			Name: "concat-of-slices", Stateful: true,
			LHS: egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs"),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				d := m.Subst.AttrOf("d")
				kids := m.Subst.KidsOf("xs")
				var base egraph.ClassID
				var begin, end sym.Expr
				for i, k := range kids {
					matched := false
					for _, n := range g.Class(k).Nodes() {
						if n.Op != expr.OpSlice || !n.Ints[0].Equal(d) {
							continue
						}
						if i == 0 {
							base, begin, end = g.Find(n.Kids[0]), n.Ints[1], n.Ints[2]
							matched = true
							break
						}
						if g.Find(n.Kids[0]) == base && g.Ctx.ProveEQ(n.Ints[1], end) {
							end = n.Ints[2]
							matched = true
							break
						}
					}
					if !matched {
						return nil
					}
				}
				di, ok := dimConst(d)
				if !ok {
					return nil
				}
				pairs := m.With(addAll(g, expr.OpSlice, []sym.Expr{d, begin, end}, "", []egraph.ClassID{base}))
				if s, got := g.ShapeOf(base); got && di < len(s) &&
					g.Ctx.ProveEQ(begin, sym.Const(0)) && g.Ctx.ProveEQ(end, s[di]) {
					pairs = append(pairs, egraph.UnionPair{A: m.Class, B: base})
				}
				return pairs
			},
		}},
	})
}

func registerSliceJoin(r *Registry) {
	// The generative tiling lemma, in the paper's constrained form
	// (§4.3.2): when slice ENodes of x tile a target span exactly, the
	// concatenation of the tiles equals the target — where a target is
	// either x itself (span = full extent) or another slice ENode of x
	// that already exists. Restricting targets to existing ENodes
	// keeps the interval lattice linear in the number of real slices
	// instead of quadratic in all spans.
	r.MustRegister(&Lemma{
		Name: "slice-tiling", Kind: KindClean, Complexity: 3, LOC: 58,
		Rules: []*egraph.Rule{{
			Name: "slice-tiling", Stateful: true,
			LHS: egraph.PVar("x"),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				// This rule visits every class each iteration; the fast
				// path — a class with no constant-span slice parents —
				// must not allocate, so the map is built lazily.
				var byDim map[int][]tileSlice
				xc := g.Find(m.Class)
				g.EachParent(xc, func(n *egraph.ENode, owner egraph.ClassID) bool {
					if n.Op != expr.OpSlice || len(n.Kids) != 1 || g.Find(n.Kids[0]) != xc {
						return true
					}
					d, ok := dimConst(n.Ints[0])
					if !ok {
						return true
					}
					b, okB := n.Ints[1].IsConst()
					e, okE := n.Ints[2].IsConst()
					if !okB || !okE {
						return true
					}
					if byDim == nil {
						byDim = map[int][]tileSlice{}
					}
					byDim[d] = append(byDim[d], tileSlice{begin: b, end: e, class: owner})
					return true
				})
				if byDim == nil {
					return nil
				}
				// Iterate dimensions in sorted order: ranging the map
				// directly would let Go's randomized iteration order
				// pick which addAll runs first, minting different
				// class IDs across runs.
				dims := make([]int, 0, len(byDim))
				for d := range byDim {
					dims = append(dims, d)
				}
				sort.Ints(dims)
				var out []egraph.UnionPair
				for _, d := range dims {
					slices := byDim[d]
					sortTileSlices(slices)
					// Targets: the base tensor's full extent, plus every
					// existing slice span.
					type target struct {
						begin, end int64
						class      egraph.ClassID
					}
					var targets []target
					if s, got := g.ShapeOf(xc); got && d < len(s) {
						if ext, isC := s[d].IsConst(); isC {
							targets = append(targets, target{0, ext, xc})
						}
					}
					for _, t := range slices {
						targets = append(targets, target{t.begin, t.end, t.class})
					}
					for _, t := range targets {
						path := tilePath(slices, t.begin, t.end, t.class, g)
						if len(path) < 2 {
							continue
						}
						joined := addAll(g, expr.OpConcat,
							[]sym.Expr{sym.Const(int64(d))}, "", path)
						out = append(out, egraph.UnionPair{A: joined, B: t.class})
					}
				}
				return out
			},
		}},
	})
}

// tileSlice is one slice ENode of a base class: its constant span and
// the class holding it.
type tileSlice struct {
	begin, end int64
	class      egraph.ClassID
}

// sortTileSlices orders slices by (begin, end) ascending. A hand-rolled
// insertion sort: the lists are short and sort.Slice's reflection-based
// swapper was a measurable share of saturation allocations.
func sortTileSlices(s []tileSlice) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0; j-- {
			if s[j].begin > s[j-1].begin ||
				(s[j].begin == s[j-1].begin && s[j].end >= s[j-1].end) {
				break
			}
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// tilePath finds slice classes that tile [b, e) exactly, by greedy
// chaining with backtracking over ties; the target's own class is
// excluded so a span never "tiles" itself. The chain is accumulated in
// a single slice trimmed on backtrack rather than rebuilt per level.
func tilePath(slices []tileSlice, b, e int64, exclude egraph.ClassID, g *egraph.EGraph) []egraph.ClassID {
	var path []egraph.ClassID
	var dfs func(cur int64, depth int) bool
	dfs = func(cur int64, depth int) bool {
		if cur == e {
			return true
		}
		if cur > e || depth > 64 {
			return false
		}
		for _, s := range slices {
			if s.begin != cur || s.end > e {
				continue
			}
			if s.begin == b && s.end == e && g.Find(s.class) == g.Find(exclude) {
				continue // the target itself
			}
			path = append(path, s.class)
			if dfs(s.end, depth+1) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	if !dfs(b, 0) {
		return nil
	}
	return path
}

func registerSliceOfConcat(r *Registry) {
	// The paper's Listing 4 conditioned lemma: slicing a concatenation
	// commutes — trivially on a different dimension, and by locating
	// the covered chunks on the same dimension.
	r.MustRegister(&Lemma{
		Name: "slice-concat-commutative", Kind: KindClean, Complexity: 4, LOC: 60,
		Rules: []*egraph.Rule{{
			Name: "slice-concat-commutative",
			LHS: egraph.POp(expr.OpSlice,
				[]egraph.AttrPat{egraph.AVar("d2"), egraph.AVar("b"), egraph.AVar("e")},
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d1")}, "xs")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				d1 := m.Subst.AttrOf("d1")
				d2 := m.Subst.AttrOf("d2")
				b := m.Subst.AttrOf("b")
				e := m.Subst.AttrOf("e")
				kids := m.Subst.KidsOf("xs")
				if g.Ctx.ProveNE(d1, d2) {
					c := mapKids(g, expr.OpConcat, []sym.Expr{d1}, "", kids,
						func(_ int, k egraph.ClassID) egraph.ClassID {
							return addAll(g, expr.OpSlice, []sym.Expr{d2, b, e}, "", []egraph.ClassID{k})
						})
					return m.With(c)
				}
				if !g.Ctx.ProveEQ(d1, d2) {
					return nil
				}
				di, ok := dimConst(d1)
				if !ok {
					return nil
				}
				exts, _, ok := kidExtents(g, kids, di)
				if !ok {
					return nil
				}
				offs := prefixOffsets(exts)
				// Single-chunk containment: off[i] ≤ b ∧ e ≤ off[i+1].
				for i := range kids {
					if g.Ctx.ProveLE(offs[i], b) && g.Ctx.ProveLE(e, offs[i+1]) {
						if g.Ctx.ProveEQ(b, offs[i]) && g.Ctx.ProveEQ(e, offs[i+1]) {
							return m.With(kids[i])
						}
						c := addAll(g, expr.OpSlice,
							[]sym.Expr{d1, b.Sub(offs[i]), e.Sub(offs[i])}, "",
							[]egraph.ClassID{kids[i]})
						return m.With(c)
					}
				}
				// Exact multi-chunk span: b = off[i], e = off[j].
				for i := 0; i < len(kids); i++ {
					if !g.Ctx.ProveEQ(b, offs[i]) {
						continue
					}
					for j := i + 2; j <= len(kids); j++ {
						if g.Ctx.ProveEQ(e, offs[j]) {
							return m.With(addAll(g, expr.OpConcat, []sym.Expr{d1}, "", kids[i:j]))
						}
					}
				}
				return nil
			},
		}},
	})
}

func registerSliceCompose(r *Registry) {
	// x[b1:e1 @d][b2:e2 @d] = x[b1+b2 : b1+e2 @d].
	r.MustRegister(&Lemma{
		Name: "slice-compose", Kind: KindClean, Complexity: 3, LOC: 18,
		Rules: []*egraph.Rule{{
			Name: "slice-compose",
			LHS: egraph.POp(expr.OpSlice,
				[]egraph.AttrPat{egraph.AVar("d2"), egraph.AVar("b2"), egraph.AVar("e2")},
				egraph.POp(expr.OpSlice,
					[]egraph.AttrPat{egraph.AVar("d1"), egraph.AVar("b1"), egraph.AVar("e1")},
					egraph.PVar("x"))),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				d1, d2 := m.Subst.AttrOf("d1"), m.Subst.AttrOf("d2")
				if !g.Ctx.ProveEQ(d1, d2) {
					return nil
				}
				b1 := m.Subst.AttrOf("b1")
				b2, e2 := m.Subst.AttrOf("b2"), m.Subst.AttrOf("e2")
				c := addAll(g, expr.OpSlice, []sym.Expr{d1, b1.Add(b2), b1.Add(e2)}, "",
					[]egraph.ClassID{m.Subst.ClassOf("x")})
				return m.With(c)
			},
		}},
	})
}

func registerSliceFull(r *Registry) {
	// x[0:extent @d] = x.
	r.MustRegister(&Lemma{
		Name: "slice-full", Kind: KindClean, Complexity: 1, LOC: 20,
		Rules: []*egraph.Rule{{
			Name: "slice-full",
			LHS:  egraph.POp(expr.OpSlice, []egraph.AttrPat{egraph.AVar("d"), egraph.AVar("b"), egraph.AVar("e")}, egraph.PVar("x")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				if !g.Ctx.ProveEQ(m.Subst.AttrOf("b"), sym.Const(0)) {
					return nil
				}
				di, ok := dimConst(m.Subst.AttrOf("d"))
				if !ok {
					return nil
				}
				xc := m.Subst.ClassOf("x")
				s, got := g.ShapeOf(xc)
				if !got || di >= len(s) || !g.Ctx.ProveEQ(m.Subst.AttrOf("e"), s[di]) {
					return nil
				}
				return m.With(xc)
			},
		}},
	})
}

func registerSliceOfSum(r *Registry) {
	// slice(sum(xs), d, b, e) = sum(slice(x_i, d, b, e)).
	r.MustRegister(&Lemma{
		Name: "slice-of-sum", Kind: KindClean, Complexity: 3, LOC: 18,
		Rules: []*egraph.Rule{{
			Name: "slice-of-sum",
			LHS: egraph.POp(expr.OpSlice,
				[]egraph.AttrPat{egraph.AVar("d"), egraph.AVar("b"), egraph.AVar("e")},
				egraph.POpN(expr.OpSum, nil, "xs")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				d, b, e := m.Subst.AttrOf("d"), m.Subst.AttrOf("b"), m.Subst.AttrOf("e")
				c := mapKids(g, expr.OpSum, nil, "", m.Subst.KidsOf("xs"),
					func(_ int, k egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpSlice, []sym.Expr{d, b, e}, "", []egraph.ClassID{k})
					})
				return m.With(c)
			},
		}},
	})
}

func registerSliceOfPad(r *Registry) {
	// Slicing back into the un-padded region inverts zero padding:
	// pad(x, d, bf, af)[b:e @d] = x[b-bf : e-bf @d] when bf ≤ b ∧
	// e ≤ bf+extent(x, d); equal to x when the range is exact. The
	// lemma behind §6.2's bug 3 (mismatched padding and slicing).
	r.MustRegister(&Lemma{
		Name: "pad-slice-inverse", Kind: KindClean, Complexity: 3, LOC: 34,
		Rules: []*egraph.Rule{{
			Name: "pad-slice-inverse",
			LHS: egraph.POp(expr.OpSlice,
				[]egraph.AttrPat{egraph.AVar("ds"), egraph.AVar("b"), egraph.AVar("e")},
				egraph.POp(expr.OpPad,
					[]egraph.AttrPat{egraph.AVar("dp"), egraph.AVar("bf"), egraph.AVar("af")},
					egraph.PVar("x"))),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				ds, dp := m.Subst.AttrOf("ds"), m.Subst.AttrOf("dp")
				if !g.Ctx.ProveEQ(ds, dp) {
					return nil
				}
				di, ok := dimConst(dp)
				if !ok {
					return nil
				}
				b, e, bf := m.Subst.AttrOf("b"), m.Subst.AttrOf("e"), m.Subst.AttrOf("bf")
				xc := m.Subst.ClassOf("x")
				s, got := g.ShapeOf(xc)
				if !got || di >= len(s) {
					return nil
				}
				hi := bf.Add(s[di])
				if !g.Ctx.ProveLE(bf, b) || !g.Ctx.ProveLE(e, hi) {
					return nil
				}
				if g.Ctx.ProveEQ(b, bf) && g.Ctx.ProveEQ(e, hi) {
					return m.With(xc)
				}
				c := addAll(g, expr.OpSlice, []sym.Expr{ds, b.Sub(bf), e.Sub(bf)}, "",
					[]egraph.ClassID{xc})
				return m.With(c)
			},
		}},
	})
}

func registerTranspose(r *Registry) {
	r.MustRegister(&Lemma{
		Name: "transpose-involution", Kind: KindClean, Complexity: 2, LOC: 12,
		Rules: []*egraph.Rule{
			egraph.Simple("transpose-involution",
				egraph.POp(expr.OpTranspose, []egraph.AttrPat{egraph.AVar("a"), egraph.AVar("b")},
					egraph.POp(expr.OpTranspose, []egraph.AttrPat{egraph.AVar("a"), egraph.AVar("b")},
						egraph.PVar("x"))),
				egraph.RVar("x")),
		},
	})

	r.MustRegister(&Lemma{
		Name: "transpose-dim-symmetry", Kind: KindClean, Complexity: 2, LOC: 12,
		Rules: []*egraph.Rule{{
			Name: "transpose-dim-symmetry",
			LHS:  egraph.POp(expr.OpTranspose, []egraph.AttrPat{egraph.AVar("a"), egraph.AVar("b")}, egraph.PVar("x")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				a, b := m.Subst.AttrOf("a"), m.Subst.AttrOf("b")
				if a.Equal(b) {
					return m.With(m.Subst.ClassOf("x"))
				}
				c := addAll(g, expr.OpTranspose, []sym.Expr{b, a}, "",
					[]egraph.ClassID{m.Subst.ClassOf("x")})
				return m.With(c)
			},
		}},
	})

	// transpose(concat(xs, d), a, b) = concat(transpose(x_i, a, b), σ(d))
	// where σ swaps a and b.
	r.MustRegister(&Lemma{
		Name: "transpose-concat-commutative", Kind: KindClean, Complexity: 4, LOC: 28,
		Rules: []*egraph.Rule{{
			Name: "transpose-concat-commutative",
			LHS: egraph.POp(expr.OpTranspose, []egraph.AttrPat{egraph.AVar("a"), egraph.AVar("b")},
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				a, b, d := m.Subst.AttrOf("a"), m.Subst.AttrOf("b"), m.Subst.AttrOf("d")
				dOut := d
				switch {
				case d.Equal(a):
					dOut = b
				case d.Equal(b):
					dOut = a
				}
				c := mapKids(g, expr.OpConcat, []sym.Expr{dOut}, "", m.Subst.KidsOf("xs"),
					func(_ int, k egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpTranspose, []sym.Expr{a, b}, "", []egraph.ClassID{k})
					})
				return m.With(c)
			},
		}},
	})

	// transpose(slice(x, d, b, e), p, q) = slice(transpose(x, p, q), σ(d), b, e).
	r.MustRegister(&Lemma{
		Name: "transpose-slice-commutative", Kind: KindClean, Complexity: 4, LOC: 26,
		Rules: []*egraph.Rule{{
			Name: "transpose-slice-commutative",
			LHS: egraph.POp(expr.OpTranspose, []egraph.AttrPat{egraph.AVar("p"), egraph.AVar("q")},
				egraph.POp(expr.OpSlice, []egraph.AttrPat{egraph.AVar("d"), egraph.AVar("b"), egraph.AVar("e")},
					egraph.PVar("x"))),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				p, q, d := m.Subst.AttrOf("p"), m.Subst.AttrOf("q"), m.Subst.AttrOf("d")
				dOut := d
				switch {
				case d.Equal(p):
					dOut = q
				case d.Equal(q):
					dOut = p
				}
				tr := addAll(g, expr.OpTranspose, []sym.Expr{p, q}, "",
					[]egraph.ClassID{m.Subst.ClassOf("x")})
				c := addAll(g, expr.OpSlice,
					[]sym.Expr{dOut, m.Subst.AttrOf("b"), m.Subst.AttrOf("e")}, "",
					[]egraph.ClassID{tr})
				return m.With(c)
			},
		}},
	})
}

func registerReshape(r *Registry) {
	// reshape(reshape(x, s1), s2) = reshape(x, s2); the constrained
	// form of the x = reshape(reshape(x)) lemma the paper discusses.
	r.MustRegister(&Lemma{
		Name: "reshape-compose", Kind: KindClean, Complexity: 3, LOC: 16,
		Rules: []*egraph.Rule{{
			Name: "reshape-compose",
			LHS: egraph.POp(expr.OpReshape, nil,
				egraph.POp(expr.OpReshape, nil, egraph.PVar("x"))),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				c := addAll(g, expr.OpReshape, m.Node.Ints, "",
					[]egraph.ClassID{m.Subst.ClassOf("x")})
				return m.With(c)
			},
		}},
	})

	// reshape(x, shape(x)) = x.
	r.MustRegister(&Lemma{
		Name: "reshape-self", Kind: KindClean, Complexity: 1, LOC: 20,
		Rules: []*egraph.Rule{{
			Name: "reshape-self",
			LHS:  egraph.POp(expr.OpReshape, nil, egraph.PVar("x")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				xc := m.Subst.ClassOf("x")
				s, got := g.ShapeOf(xc)
				if !got || len(s) != len(m.Node.Ints) {
					return nil
				}
				for i := range s {
					if !g.Ctx.ProveEQ(s[i], m.Node.Ints[i]) {
						return nil
					}
				}
				return m.With(xc)
			},
		}},
	})
}
