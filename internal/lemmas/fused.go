package lemmas

import (
	"entangle/internal/egraph"
	"entangle/internal/expr"
	"entangle/internal/sym"
)

// registerVLLM registers lemmas for fused kernels used by serving
// frameworks (Figure 6's "v"-marked lemmas). The paper adds these when
// verifying Qwen2 under vLLM, whose kernels fuse residual-add with
// RMSNorm and SiLU with the gated multiply.
func registerVLLM(r *Registry) {
	// fused_add_rmsnorm(x, res, w) = rmsnorm(add(x, res), w): relate
	// the fused kernel to its unfused semantics, both directions.
	r.MustRegister(&Lemma{
		Name: "fused-add-rmsnorm-unfuse", Kind: KindVLLM, Complexity: 3, LOC: 14,
		Rules: []*egraph.Rule{
			egraph.Simple("fused-add-rmsnorm-unfuse",
				egraph.POp(expr.OpFusedAddRMSNorm, nil,
					egraph.PVar("x"), egraph.PVar("r"), egraph.PVar("w")),
				egraph.ROp(expr.OpRMSNorm, nil, "",
					egraph.ROp(expr.OpAdd, nil, "", egraph.RVar("x"), egraph.RVar("r")),
					egraph.RVar("w"))),
			egraph.Simple("fused-add-rmsnorm-fuse",
				egraph.POp(expr.OpRMSNorm, nil,
					egraph.POp(expr.OpAdd, nil, egraph.PVar("x"), egraph.PVar("r")),
					egraph.PVar("w")),
				egraph.ROp(expr.OpFusedAddRMSNorm, nil, "",
					egraph.RVar("x"), egraph.RVar("r"), egraph.RVar("w"))),
		},
	})

	// fused_silu_mul(gate, up) = mul(silu(gate), up), both directions.
	r.MustRegister(&Lemma{
		Name: "fused-silu-mul-unfuse", Kind: KindVLLM, Complexity: 3, LOC: 14,
		Rules: []*egraph.Rule{
			egraph.Simple("fused-silu-mul-unfuse",
				egraph.POp(expr.OpFusedSiluMul, nil, egraph.PVar("g"), egraph.PVar("u")),
				egraph.ROp(expr.OpMul, nil, "",
					egraph.ROp(expr.OpUnary, nil, "silu", egraph.RVar("g")),
					egraph.RVar("u"))),
			egraph.Simple("fused-silu-mul-fuse",
				egraph.POp(expr.OpMul, nil,
					&egraph.Pattern{Op: expr.OpUnary, Str: "silu", Kids: []*egraph.Pattern{egraph.PVar("g")}},
					egraph.PVar("u")),
				egraph.ROp(expr.OpFusedSiluMul, nil, "", egraph.RVar("g"), egraph.RVar("u"))),
		},
	})

	// Direct shard distribution for the fused kernels: derivable from
	// the unfused lemmas but registered directly, as the paper does,
	// to keep saturation short on serving graphs.
	r.MustRegister(&Lemma{
		Name: "fused-add-rmsnorm-concat", Kind: KindVLLM, Complexity: 5, LOC: 36,
		Rules: []*egraph.Rule{{
			Name: "fused-add-rmsnorm-concat",
			LHS: egraph.POp(expr.OpFusedAddRMSNorm, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "xs"),
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "rs"),
				egraph.PVar("w")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				xs, rs := m.Subst.KidsOf("xs"), m.Subst.KidsOf("rs")
				if len(xs) != len(rs) {
					return nil
				}
				d, ok := dimConst(m.Subst.AttrOf("d"))
				if !ok {
					return nil
				}
				rank, got := g.RankOf(xs[0])
				if !got || d == rank-1 {
					return nil
				}
				xe, _, ok := kidExtents(g, xs, d)
				if !ok {
					return nil
				}
				re, _, ok := kidExtents(g, rs, d)
				if !ok || !pairwiseAligned(g.Ctx, xe, re) {
					return nil
				}
				wc := m.Subst.ClassOf("w")
				c := mapKids(g, expr.OpConcat, []sym.Expr{sym.Const(int64(d))}, "", xs,
					func(i int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpFusedAddRMSNorm, nil, "",
							[]egraph.ClassID{x, rs[i], wc})
					})
				return m.With(c)
			},
		}},
	})

	r.MustRegister(&Lemma{
		Name: "fused-silu-mul-concat", Kind: KindVLLM, Complexity: 4, LOC: 30,
		Rules: []*egraph.Rule{{
			Name: "fused-silu-mul-concat",
			LHS: egraph.POp(expr.OpFusedSiluMul, nil,
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "gs"),
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("d")}, "us")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				gs, us := m.Subst.KidsOf("gs"), m.Subst.KidsOf("us")
				if len(gs) != len(us) {
					return nil
				}
				d, ok := dimConst(m.Subst.AttrOf("d"))
				if !ok {
					return nil
				}
				ge, _, ok := kidExtents(g, gs, d)
				if !ok {
					return nil
				}
				ue, _, ok := kidExtents(g, us, d)
				if !ok || !pairwiseAligned(g.Ctx, ge, ue) {
					return nil
				}
				c := mapKids(g, expr.OpConcat, []sym.Expr{sym.Const(int64(d))}, "", gs,
					func(i int, gc egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpFusedSiluMul, nil, "",
							[]egraph.ClassID{gc, us[i]})
					})
				return m.With(c)
			},
		}},
	})
}

// registerHLO registers lemmas for HLO-flavoured operator spellings
// (Figure 6's "h"-marked lemmas). The HLO front end maps most HLO ops
// onto the shared vocabulary — which is why, as the paper observes,
// HLO models "reuse many of the popular lemmas" — but a few HLO idioms
// need their own rules.
func registerHLO(r *Registry) {
	// HLO's dot with a transposed rhs: matmul(x, transpose(w, 0, 1)) =
	// transpose(matmul(w, transpose(x, 0, 1)), 0, 1) for rank-2
	// operands (AᐧBᵀ = (BᐧAᵀ)ᵀ).
	r.MustRegister(&Lemma{
		Name: "hlo-dot-transpose", Kind: KindHLO, Complexity: 5, LOC: 30,
		Rules: []*egraph.Rule{{
			Name: "hlo-dot-transpose",
			LHS: egraph.POp(expr.OpMatMul, nil,
				egraph.PVar("x"),
				egraph.POp(expr.OpTranspose, []egraph.AttrPat{egraph.AInt(0), egraph.AInt(1)}, egraph.PVar("w"))),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				xc, wc := m.Subst.ClassOf("x"), m.Subst.ClassOf("w")
				if rk, ok := g.RankOf(xc); !ok || rk != 2 {
					return nil
				}
				if rk, ok := g.RankOf(wc); !ok || rk != 2 {
					return nil
				}
				z, o := sym.Const(0), sym.Const(1)
				xt := addAll(g, expr.OpTranspose, []sym.Expr{z, o}, "", []egraph.ClassID{xc})
				mm := addAll(g, expr.OpMatMul, nil, "", []egraph.ClassID{wc, xt})
				c := addAll(g, expr.OpTranspose, []sym.Expr{z, o}, "", []egraph.ClassID{mm})
				return m.With(c)
			},
		}},
	})

	// HLO spells row-splits of a transposed weight as transposed
	// column-splits: transpose(concat(ws, 0), 0, 1) =
	// concat(transpose(w_i, 0, 1), 1).
	r.MustRegister(&Lemma{
		Name: "hlo-transpose-row-concat", Kind: KindHLO, Complexity: 4, LOC: 20,
		Rules: []*egraph.Rule{{
			Name: "hlo-transpose-row-concat",
			LHS: egraph.POp(expr.OpTranspose, []egraph.AttrPat{egraph.AInt(0), egraph.AInt(1)},
				egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AInt(0)}, "ws")),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				z, o := sym.Const(0), sym.Const(1)
				c := mapKids(g, expr.OpConcat, []sym.Expr{o}, "", m.Subst.KidsOf("ws"),
					func(_ int, w egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpTranspose, []sym.Expr{z, o}, "", []egraph.ClassID{w})
					})
				return m.With(c)
			},
		}},
	})

	// HLO reduce over the token dim of a concat (used by collective
	// epilogues emitted by XLA): reduce(concat(xs, d), d) spelled as a
	// reducesum is covered by the general lemmas; the h-variant here
	// covers the scaled mean-reduce HLO emits for loss epilogues:
	// scale(reducesum(concat(xs, d), d), 1, k) over k equal chunks =
	// scale(sum(reducesum(x_i, d)), 1, k).
	r.MustRegister(&Lemma{
		Name: "hlo-mean-reduce-split", Kind: KindHLO, Complexity: 6, LOC: 28,
		Rules: []*egraph.Rule{{
			Name: "hlo-mean-reduce-split",
			LHS: egraph.POp(expr.OpScale, []egraph.AttrPat{egraph.AVar("n"), egraph.AVar("dn")},
				egraph.POp(expr.OpReduceSum, []egraph.AttrPat{egraph.AVar("dr")},
					egraph.POpN(expr.OpConcat, []egraph.AttrPat{egraph.AVar("dc")}, "xs"))),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
				dr, dc := m.Subst.AttrOf("dr"), m.Subst.AttrOf("dc")
				if !g.Ctx.ProveEQ(dr, dc) {
					return nil
				}
				n, dn := m.Subst.AttrOf("n"), m.Subst.AttrOf("dn")
				sumC := mapKids(g, expr.OpSum, nil, "", m.Subst.KidsOf("xs"),
					func(_ int, x egraph.ClassID) egraph.ClassID {
						return addAll(g, expr.OpReduceSum, []sym.Expr{dr}, "", []egraph.ClassID{x})
					})
				c := addAll(g, expr.OpScale, []sym.Expr{n, dn}, "", []egraph.ClassID{sumC})
				return m.With(c)
			},
		}},
	})
}
