package lemmas

import (
	"sync"
	"testing"

	"entangle/internal/egraph"
	"entangle/internal/expr"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// testGraph builds an e-graph with leaf shapes: tensor IDs map to
// shapes via the provided table.
func testGraph(shapes map[int]shape.Shape) *egraph.EGraph {
	g := egraph.New(nil)
	g.SetLeafShapeFn(func(tid int) (shape.Shape, bool) {
		s, ok := shapes[tid]
		return s, ok
	})
	return g
}

func saturate(g *egraph.EGraph, r *Registry) egraph.Stats {
	return g.Saturate(r.Rules(), egraph.SaturateOpts{})
}

func leafE(id int, name string) *expr.Term { return expr.Tensor(id, name) }

func TestRegistrySanity(t *testing.T) {
	r := Default()
	if r.Len() < 40 {
		t.Fatalf("expected a substantial lemma library, got %d", r.Len())
	}
	kinds := map[Kind]int{}
	for i, l := range r.All() {
		if l.ID != i {
			t.Fatalf("lemma %q has ID %d at position %d", l.Name, l.ID, i)
		}
		if l.Complexity <= 0 || l.LOC <= 0 {
			t.Fatalf("lemma %q missing metadata", l.Name)
		}
		if len(l.Rules) == 0 {
			t.Fatalf("lemma %q has no rules", l.Name)
		}
		kinds[l.Kind]++
	}
	for _, k := range []Kind{KindClean, KindGeneral, KindVLLM, KindHLO} {
		if kinds[k] == 0 {
			t.Fatalf("no lemmas of kind %c", k)
		}
	}
	if _, ok := r.ByName("matmul-row-parallel"); !ok {
		t.Fatal("lookup by name failed")
	}
}

func TestLemmaCountsFold(t *testing.T) {
	r := Default()
	l, _ := r.ByName("fused-add-rmsnorm-unfuse")
	apps := map[string]int{
		"fused-add-rmsnorm-unfuse": 2,
		"fused-add-rmsnorm-fuse":   3,
		"not-a-rule":               7,
	}
	counts := r.LemmaCounts(apps)
	if counts[l.ID] != 5 {
		t.Fatalf("rule variants should fold into one lemma: %v", counts)
	}
	used := r.UsedLemmas(apps)
	if len(used) != 1 || used[0].ID != l.ID {
		t.Fatalf("used lemmas %v", used)
	}
}

// equalClasses asserts two expressions landed in one class after
// saturation.
func wantEqual(t *testing.T, g *egraph.EGraph, a, b *expr.Term, msg string) {
	t.Helper()
	ca := g.AddTerm(a)
	cb := g.AddTerm(b)
	if g.Find(ca) != g.Find(cb) {
		t.Fatalf("%s: %s and %s are not equal after saturation", msg, a, b)
	}
}

func wantNotEqual(t *testing.T, g *egraph.EGraph, a, b *expr.Term, msg string) {
	t.Helper()
	ca := g.AddTerm(a)
	cb := g.AddTerm(b)
	if g.Find(ca) == g.Find(cb) {
		t.Fatalf("%s: %s and %s must stay distinct", msg, a, b)
	}
}

func TestMatMulColParallel(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(4, 8), // X
		2: shape.Of(8, 3), // W1
		3: shape.Of(8, 5), // W2
	})
	x, w1, w2 := leafE(1, "X"), leafE(2, "W1"), leafE(3, "W2")
	lhs := expr.MatMul(x, expr.ConcatI(1, w1, w2))
	g.AddTerm(lhs)
	saturate(g, r)
	wantEqual(t, g, lhs, expr.ConcatI(1, expr.MatMul(x, w1), expr.MatMul(x, w2)), "mm-col")
}

func TestMatMulRowParallel(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(4, 8), 2: shape.Of(4, 8), // X1, X2
		3: shape.Of(8, 5), 4: shape.Of(8, 5), // W1, W2
	})
	x1, x2, w1, w2 := leafE(1, "X1"), leafE(2, "X2"), leafE(3, "W1"), leafE(4, "W2")
	lhs := expr.MatMul(expr.ConcatI(1, x1, x2), expr.ConcatI(0, w1, w2))
	g.AddTerm(lhs)
	saturate(g, r)
	wantEqual(t, g, lhs, expr.Sum(expr.MatMul(x1, w1), expr.MatMul(x2, w2)), "mm-row")
}

func TestMatMulRowParallelRejectsMisalignment(t *testing.T) {
	// Bug-4 flavour: inner extents 8+8 vs 10+6 — the blocks do not
	// align, so the lemma must not fire.
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(4, 8), 2: shape.Of(4, 8),
		3: shape.Of(10, 5), 4: shape.Of(6, 5),
	})
	x1, x2, w1, w2 := leafE(1, "X1"), leafE(2, "X2"), leafE(3, "W1"), leafE(4, "W2")
	lhs := expr.MatMul(expr.ConcatI(1, x1, x2), expr.ConcatI(0, w1, w2))
	g.AddTerm(lhs)
	saturate(g, r)
	wantNotEqual(t, g, lhs, expr.Sum(expr.MatMul(x1, w1), expr.MatMul(x2, w2)), "mm-row misaligned")
}

func TestMatMulSeqSplitLHS(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(2, 8), 2: shape.Of(2, 8), // X1, X2 seq shards
		3: shape.Of(8, 5), // W
	})
	x1, x2, w := leafE(1, "X1"), leafE(2, "X2"), leafE(3, "W")
	lhs := expr.MatMul(expr.ConcatI(0, x1, x2), w)
	g.AddTerm(lhs)
	saturate(g, r)
	wantEqual(t, g, lhs, expr.ConcatI(0, expr.MatMul(x1, w), expr.MatMul(x2, w)), "mm-seq")
}

func TestElementwiseConcatAligned(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(2, 4), 2: shape.Of(3, 4),
		3: shape.Of(2, 4), 4: shape.Of(3, 4),
	})
	a1, a2, b1, b2 := leafE(1, "A1"), leafE(2, "A2"), leafE(3, "B1"), leafE(4, "B2")
	lhs := expr.Mul(expr.ConcatI(0, a1, a2), expr.ConcatI(0, b1, b2))
	g.AddTerm(lhs)
	saturate(g, r)
	wantEqual(t, g, lhs, expr.ConcatI(0, expr.Mul(a1, b1), expr.Mul(a2, b2)), "mul-concat")
}

func TestElementwiseConcatMisaligned(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(2, 4), 2: shape.Of(3, 4),
		3: shape.Of(3, 4), 4: shape.Of(2, 4), // swapped chunk sizes
	})
	a1, a2, b1, b2 := leafE(1, "A1"), leafE(2, "A2"), leafE(3, "B1"), leafE(4, "B2")
	lhs := expr.Mul(expr.ConcatI(0, a1, a2), expr.ConcatI(0, b1, b2))
	g.AddTerm(lhs)
	saturate(g, r)
	wantNotEqual(t, g, lhs, expr.ConcatI(0, expr.Mul(a1, b1), expr.Mul(a2, b2)), "mul-concat misaligned")
}

func TestSoftmaxConcat(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{1: shape.Of(2, 4), 2: shape.Of(3, 4)})
	x1, x2 := leafE(1, "X1"), leafE(2, "X2")
	good := expr.Softmax(expr.ConcatI(0, x1, x2), sym.Const(1))
	bad := expr.Softmax(expr.ConcatI(0, x1, x2), sym.Const(0))
	g.AddTerm(good)
	g.AddTerm(bad)
	saturate(g, r)
	wantEqual(t, g, good,
		expr.ConcatI(0, expr.Softmax(x1, sym.Const(1)), expr.Softmax(x2, sym.Const(1))), "softmax-concat")
	wantNotEqual(t, g, bad,
		expr.ConcatI(0, expr.Softmax(x1, sym.Const(0)), expr.Softmax(x2, sym.Const(0))), "softmax same-dim")
}

func TestRMSNormConcat(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(2, 8), 2: shape.Of(2, 8), 3: shape.Of(8),
	})
	x1, x2, w := leafE(1, "X1"), leafE(2, "X2"), leafE(3, "W")
	lhs := expr.RMSNorm(expr.ConcatI(0, x1, x2), w)
	g.AddTerm(lhs)
	saturate(g, r)
	wantEqual(t, g, lhs, expr.ConcatI(0, expr.RMSNorm(x1, w), expr.RMSNorm(x2, w)), "rmsnorm-concat")
}

func TestRMSNormHiddenSplitRejected(t *testing.T) {
	// Normalizing over the last dim: splitting that dim is NOT valid.
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(2, 4), 2: shape.Of(2, 4), 3: shape.Of(8),
	})
	x1, x2, w := leafE(1, "X1"), leafE(2, "X2"), leafE(3, "W")
	lhs := expr.RMSNorm(expr.ConcatI(1, x1, x2), w)
	g.AddTerm(lhs)
	saturate(g, r)
	w1 := expr.SliceI(w, 0, 0, 4)
	w2 := expr.SliceI(w, 0, 4, 8)
	wantNotEqual(t, g, lhs, expr.ConcatI(1, expr.RMSNorm(x1, w1), expr.RMSNorm(x2, w2)), "rmsnorm hidden split")
}

func TestSliceTilingRoundTrip(t *testing.T) {
	// concat(x[0:2], x[2:5]) collapses to x; and when the two slices
	// exist, slice-join derives x = concat of them generatively.
	r := Default()
	g := testGraph(map[int]shape.Shape{1: shape.Of(5, 3)})
	x := leafE(1, "X")
	s1 := expr.SliceI(x, 0, 0, 2)
	s2 := expr.SliceI(x, 0, 2, 5)
	g.AddTerm(s1)
	g.AddTerm(s2)
	saturate(g, r)
	wantEqual(t, g, expr.ConcatI(0, s1, s2), x, "slice tiling")
}

func TestSliceTilingPartialNotFull(t *testing.T) {
	// Partial covers only collapse onto slice ENodes that already
	// exist — the constrained-lemma discipline of §4.3.2 ("we require
	// that the target expression … already appear as ENodes").
	r := Default()
	g := testGraph(map[int]shape.Shape{1: shape.Of(5, 3)})
	x := leafE(1, "X")
	s1 := expr.SliceI(x, 0, 0, 2)
	s2 := expr.SliceI(x, 0, 2, 4) // stops short of 5
	wide := expr.SliceI(x, 0, 0, 4)
	g.AddTerm(s1)
	g.AddTerm(s2)
	g.AddTerm(wide) // the target exists → the lemma may fire
	saturate(g, r)
	wantEqual(t, g, expr.ConcatI(0, s1, s2), wide, "partial join onto existing target")
	wantNotEqual(t, g, expr.ConcatI(0, s1, s2), x, "partial must not equal x")
}

func TestSliceTilingNoInventedSpans(t *testing.T) {
	// Without an existing [0:4) slice node, the constrained lemma must
	// NOT invent one.
	r := Default()
	g := testGraph(map[int]shape.Shape{1: shape.Of(5, 3)})
	x := leafE(1, "X")
	g.AddTerm(expr.SliceI(x, 0, 0, 2))
	g.AddTerm(expr.SliceI(x, 0, 2, 4))
	saturate(g, r)
	if _, ok := g.LookupTerm(expr.SliceI(x, 0, 0, 4)); ok {
		t.Fatal("constrained tiling must not mint absent slice spans")
	}
}

func TestSliceOfConcatSameDim(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{1: shape.Of(2, 3), 2: shape.Of(4, 3)})
	x1, x2 := leafE(1, "X1"), leafE(2, "X2")
	cc := expr.ConcatI(0, x1, x2)
	// exactly the second chunk
	lhs := expr.SliceI(cc, 0, 2, 6)
	g.AddTerm(lhs)
	// inside the second chunk
	lhs2 := expr.SliceI(cc, 0, 3, 5)
	g.AddTerm(lhs2)
	saturate(g, r)
	wantEqual(t, g, lhs, x2, "slice=chunk")
	wantEqual(t, g, lhs2, expr.SliceI(x2, 0, 1, 3), "slice inside chunk")
}

func TestPadSliceInverse(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{1: shape.Of(5, 3)})
	x := leafE(1, "X")
	padded := expr.Pad(x, sym.Const(0), sym.Const(2), sym.Const(1)) // [2+5+1, 3]
	exact := expr.SliceI(padded, 0, 2, 7)
	inner := expr.SliceI(padded, 0, 3, 6)
	wrong := expr.SliceI(padded, 0, 1, 6) // includes padding
	g.AddTerm(exact)
	g.AddTerm(inner)
	g.AddTerm(wrong)
	saturate(g, r)
	wantEqual(t, g, exact, x, "pad-slice exact")
	wantEqual(t, g, inner, expr.SliceI(x, 0, 1, 4), "pad-slice inner")
	wantNotEqual(t, g, wrong, expr.SliceI(x, 0, 0, 4), "pad-slice overlapping padding")
}

func TestSumIdenticalScaleAndCancel(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{1: shape.Of(4)})
	x := leafE(1, "X")
	// sum of two scaled-by-half replicas is x again
	half := expr.Scale(x, 1, 2)
	lhs := expr.Sum(half, half)
	g.AddTerm(lhs)
	saturate(g, r)
	wantEqual(t, g, lhs, x, "sum of halves cancels")
	// sum of two raw replicas is scale(x,2,1), NOT x
	raw := expr.Sum(x, x)
	g2 := testGraph(map[int]shape.Shape{1: shape.Of(4)})
	g2.AddTerm(raw)
	saturate(g2, r)
	wantEqual(t, g2, raw, expr.Scale(x, 2, 1), "sum of replicas is scaled")
	wantNotEqual(t, g2, raw, x, "unscaled replica sum must differ from x")
}

func TestSumOfConcats(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(2, 3), 2: shape.Of(4, 3),
		3: shape.Of(2, 3), 4: shape.Of(4, 3),
	})
	a1, a2, b1, b2 := leafE(1, "A1"), leafE(2, "A2"), leafE(3, "B1"), leafE(4, "B2")
	lhs := expr.Sum(expr.ConcatI(0, a1, a2), expr.ConcatI(0, b1, b2))
	g.AddTerm(lhs)
	saturate(g, r)
	wantEqual(t, g, lhs, expr.ConcatI(0, expr.Sum(a1, b1), expr.Sum(a2, b2)), "sum-of-concats")
}

func TestEmbeddingLemmas(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(10, 8), 2: shape.Of(10, 8), // vocab shards
		3: shape.Of(4), // ids
	})
	w1, w2, ids := leafE(1, "W1"), leafE(2, "W2"), leafE(3, "ids")
	vp := expr.New(expr.OpEmbedding, nil, "", expr.ConcatI(0, w1, w2), ids)
	g.AddTerm(vp)
	saturate(g, r)
	want := expr.Sum(
		expr.New(expr.OpEmbeddingShard, []sym.Expr{sym.Const(0)}, "", w1, ids),
		expr.New(expr.OpEmbeddingShard, []sym.Expr{sym.Const(10)}, "", w2, ids))
	wantEqual(t, g, vp, want, "embedding vocab-parallel")
}

func TestRoPESeqSplit(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(2, 8), 2: shape.Of(2, 8), // x shards
		3: shape.Of(4, 8), 4: shape.Of(4, 8), // cos, sin (full)
	})
	x1, x2, cos, sin := leafE(1, "X1"), leafE(2, "X2"), leafE(3, "cos"), leafE(4, "sin")
	lhs := expr.RoPE(expr.ConcatI(0, x1, x2), cos, sin)
	g.AddTerm(lhs)
	saturate(g, r)
	want := expr.ConcatI(0,
		expr.RoPE(x1, expr.SliceI(cos, 0, 0, 2), expr.SliceI(sin, 0, 0, 2)),
		expr.RoPE(x2, expr.SliceI(cos, 0, 2, 4), expr.SliceI(sin, 0, 2, 4)))
	wantEqual(t, g, lhs, want, "rope seq split")
	// Wrong offsets (bug 1): slices [0:2] for the second shard.
	wrong := expr.ConcatI(0,
		expr.RoPE(x1, expr.SliceI(cos, 0, 0, 2), expr.SliceI(sin, 0, 0, 2)),
		expr.RoPE(x2, expr.SliceI(cos, 0, 0, 2), expr.SliceI(sin, 0, 0, 2)))
	wantNotEqual(t, g, lhs, wrong, "rope wrong offsets")
}

func TestAttentionHeadParallel(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(4, 8), 2: shape.Of(4, 8), // q shards
		3: shape.Of(4, 8), 4: shape.Of(4, 8), // k shards
		5: shape.Of(4, 8), 6: shape.Of(4, 8), // v shards
	})
	q1, q2 := leafE(1, "Q1"), leafE(2, "Q2")
	k1, k2 := leafE(3, "K1"), leafE(4, "K2")
	v1, v2 := leafE(5, "V1"), leafE(6, "V2")
	h4 := []sym.Expr{sym.Const(4)}
	h2 := []sym.Expr{sym.Const(2)}
	lhs := expr.New(expr.OpAttention, h4, "",
		expr.ConcatI(1, q1, q2), expr.ConcatI(1, k1, k2), expr.ConcatI(1, v1, v2))
	g.AddTerm(lhs)
	saturate(g, r)
	want := expr.ConcatI(1,
		expr.New(expr.OpAttention, h2, "", q1, k1, v1),
		expr.New(expr.OpAttention, h2, "", q2, k2, v2))
	wantEqual(t, g, lhs, want, "attention head parallel")
}

func TestFusedLemmas(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(4, 8), 2: shape.Of(4, 8), 3: shape.Of(8),
	})
	x, res, w := leafE(1, "X"), leafE(2, "R"), leafE(3, "W")
	fused := expr.New(expr.OpFusedAddRMSNorm, nil, "", x, res, w)
	g.AddTerm(fused)
	saturate(g, r)
	wantEqual(t, g, fused, expr.RMSNorm(expr.Add(x, res), w), "fused add-rmsnorm")

	g2 := testGraph(map[int]shape.Shape{1: shape.Of(4, 8), 2: shape.Of(4, 8)})
	gate, up := leafE(1, "G"), leafE(2, "U")
	fsm := expr.New(expr.OpFusedSiluMul, nil, "", gate, up)
	g2.AddTerm(fsm)
	saturate(g2, r)
	wantEqual(t, g2, fsm, expr.Mul(expr.Unary("silu", gate), up), "fused silu-mul")
}

func TestMSELemmas(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(2, 3), 2: shape.Of(2, 3),
		3: shape.Of(2, 3), 4: shape.Of(2, 3),
	})
	x1, x2, t1, t2 := leafE(1, "X1"), leafE(2, "X2"), leafE(3, "T1"), leafE(4, "T2")
	full := expr.New(expr.OpMSELoss, nil, "", expr.ConcatI(0, x1, x2), expr.ConcatI(0, t1, t2))
	g.AddTerm(full)
	saturate(g, r)
	scaled := expr.Scale(expr.Sum(
		expr.New(expr.OpMSELoss, nil, "", x1, t1),
		expr.New(expr.OpMSELoss, nil, "", x2, t2)), 1, 2)
	wantEqual(t, g, full, scaled, "mse batch split")
	// unscaled accumulation is NOT the full loss
	unscaled := expr.Sum(
		expr.New(expr.OpMSELoss, nil, "", x1, t1),
		expr.New(expr.OpMSELoss, nil, "", x2, t2))
	wantNotEqual(t, g, full, unscaled, "unscaled grad accumulation")
}

func TestHLODotTranspose(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{1: shape.Of(4, 8), 2: shape.Of(5, 8)})
	x, w := leafE(1, "X"), leafE(2, "W")
	z, o := sym.Const(0), sym.Const(1)
	lhs := expr.MatMul(x, expr.Transpose(w, z, o))
	g.AddTerm(lhs)
	saturate(g, r)
	want := expr.Transpose(expr.MatMul(w, expr.Transpose(x, z, o)), z, o)
	wantEqual(t, g, lhs, want, "hlo dot transpose")
}

func TestAuxLossTokenSplit(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{1: shape.Of(2, 4), 2: shape.Of(2, 4)})
	p1, p2 := leafE(1, "P1"), leafE(2, "P2")
	lhs := expr.New(expr.OpAuxLoss, nil, "", expr.ConcatI(0, p1, p2))
	g.AddTerm(lhs)
	saturate(g, r)
	want := expr.Scale(expr.Sum(
		expr.New(expr.OpAuxLoss, nil, "", p1),
		expr.New(expr.OpAuxLoss, nil, "", p2)), 1, 2)
	wantEqual(t, g, lhs, want, "auxloss token split")
}

func TestLayerNormConcat(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(2, 8), 2: shape.Of(2, 8), 3: shape.Of(8), 4: shape.Of(8),
	})
	x1, x2, w, b := leafE(1, "X1"), leafE(2, "X2"), leafE(3, "W"), leafE(4, "B")
	lhs := expr.LayerNorm(expr.ConcatI(0, x1, x2), w, b)
	g.AddTerm(lhs)
	saturate(g, r)
	wantEqual(t, g, lhs, expr.ConcatI(0, expr.LayerNorm(x1, w, b), expr.LayerNorm(x2, w, b)), "layernorm concat")
}

func TestTransposeLemmas(t *testing.T) {
	r := Default()
	g := testGraph(map[int]shape.Shape{1: shape.Of(2, 3), 2: shape.Of(4, 3)})
	x1, x2 := leafE(1, "X1"), leafE(2, "X2")
	z, o := sym.Const(0), sym.Const(1)
	lhs := expr.Transpose(expr.ConcatI(0, x1, x2), z, o)
	g.AddTerm(lhs)
	dbl := expr.Transpose(expr.Transpose(x1, z, o), z, o)
	g.AddTerm(dbl)
	saturate(g, r)
	wantEqual(t, g, lhs, expr.ConcatI(1, expr.Transpose(x1, z, o), expr.Transpose(x2, z, o)), "transpose concat")
	wantEqual(t, g, dbl, x1, "transpose involution")
}

func TestThreeWayParallelism(t *testing.T) {
	// The n-ary machinery must handle degree 3, not just 2.
	r := Default()
	g := testGraph(map[int]shape.Shape{
		1: shape.Of(4, 8), 2: shape.Of(4, 8), 3: shape.Of(4, 8),
		4: shape.Of(8, 5), 5: shape.Of(8, 5), 6: shape.Of(8, 5),
	})
	xs := []*expr.Term{leafE(1, "X1"), leafE(2, "X2"), leafE(3, "X3")}
	ws := []*expr.Term{leafE(4, "W1"), leafE(5, "W2"), leafE(6, "W3")}
	lhs := expr.MatMul(expr.ConcatI(1, xs...), expr.ConcatI(0, ws...))
	g.AddTerm(lhs)
	saturate(g, r)
	want := expr.Sum(expr.MatMul(xs[0], ws[0]), expr.MatMul(xs[1], ws[1]), expr.MatMul(xs[2], ws[2]))
	wantEqual(t, g, lhs, want, "3-way row parallel")
}

// TestRulesCached checks the flattened-rule cache: repeated calls
// share one slice, concurrent calls are race-free, and Register
// invalidates.
func TestRulesCached(t *testing.T) {
	r := Default()
	first := r.Rules()
	if len(first) == 0 {
		t.Fatal("no rules")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := r.Rules()
			if &rs[0] != &first[0] || len(rs) != len(first) {
				t.Error("Rules() did not return the cached slice")
			}
		}()
	}
	wg.Wait()

	r.MustRegister(&Lemma{Name: "test/extra", Kind: KindGeneral, Complexity: 1, LOC: 1,
		Rules: []*egraph.Rule{{Name: "test/extra/rule", LHS: egraph.PVar("x"),
			Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair { return nil }}}})
	after := r.Rules()
	if len(after) != len(first)+1 {
		t.Fatalf("Register did not invalidate the cache: %d vs %d rules", len(after), len(first))
	}
}
