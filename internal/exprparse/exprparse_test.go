package exprparse

import (
	"fmt"
	"strings"
	"testing"

	"entangle/internal/expr"
)

func testLeaf(name string) (*expr.Term, error) {
	if strings.HasPrefix(name, "bad") {
		return nil, fmt.Errorf("no tensor %q", name)
	}
	return expr.Tensor(int(name[len(name)-1]), name), nil
}

func TestParseForms(t *testing.T) {
	cases := map[string]string{
		"A1":                            "A1",
		"concat(A1, A2, dim=1)":         "concat(A1, A2, dim=1)",
		"concat(A1,A2,A3, dim=0)":       "concat(A1, A2, A3, dim=0)",
		"sum(P1, P2)":                   "sum(P1, P2)",
		"slice(X1, 0, 4, 8)":            "X1[4:8 @0]",
		"transpose(X1, 0, 1)":           "transpose(X1, 0, 1)",
		"pad(X1, 0, 0, 2)":              "pad(X1, dim=0,pad=(0,2))",
		"identity(X1)":                  "identity(X1)",
		"concat(sum(P1,P2), Q3, dim=0)": "concat(sum(P1, P2), Q3, dim=0)",
		"slice(X1, 0, 2*S, 3*S)":        "X1[2*S:3*S @0]",
	}
	for src, want := range cases {
		got, err := Parse(src, testLeaf)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got.String() != want {
			t.Errorf("Parse(%q) = %q want %q", src, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"matmul(A1, B2)",  // not clean
		"concat(A1, A2)",  // missing dim
		"slice(X1, 0, 4)", // missing end
		"sum()",
		"concat(A1, A2, dim=1) trailing",
		"concat(A1, A2, dim=1",
		"bad9",
		"sum(bad1)",
	} {
		if _, err := Parse(src, testLeaf); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParsedExpressionsAreClean(t *testing.T) {
	for _, src := range []string{
		"concat(A1, A2, dim=1)", "sum(P1, P2)", "slice(X1, 0, 0, 4)",
	} {
		got, err := Parse(src, testLeaf)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Clean() {
			t.Errorf("%q parsed to unclean expression", src)
		}
	}
}
