// Package exprparse parses textual clean expressions — the form users
// write input relations in (and the paper prints them in):
//
//	concat(A1, A2, dim=1)
//	sum(P0, P1)
//	slice(X, 0, 4, 8)        // dim, begin, end
//	transpose(X, 0, 1)
//	pad(X, 0, 0, 2)          // dim, before, after
//	identity(X)
//	A1                        // bare tensor reference
//
// Tensor names are resolved through a caller-supplied lookup, so the
// same grammar serves both G_s- and G_d-space expressions. Symbolic
// attribute values ("S", "2*Sh") are accepted wherever integers are.
package exprparse

import (
	"fmt"
	"strings"

	"entangle/internal/expr"
	"entangle/internal/sym"
)

// LeafFn resolves a tensor name to an expression leaf.
type LeafFn func(name string) (*expr.Term, error)

// Parse parses one clean expression.
func Parse(src string, leaf LeafFn) (*expr.Term, error) {
	p := &parser{src: src, leaf: leaf}
	t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("exprparse: trailing input at %d in %q", p.pos, src)
	}
	return t, nil
}

type parser struct {
	src  string
	pos  int
	leaf LeafFn
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// ident reads a name: letters, digits, and the punctuation tensor
// names use (/ . _ -).
func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' || c == ')' || c == ',' || c == ' ' || c == '\t' || c == '=' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) parseExpr() (*expr.Term, error) {
	p.skipSpace()
	name := p.ident()
	if name == "" {
		return nil, fmt.Errorf("exprparse: expected expression at %d in %q", p.pos, p.src)
	}
	p.skipSpace()
	if p.peek() != '(' {
		return p.leaf(name)
	}
	p.pos++ // consume '('
	args, attrs, err := p.parseArgs()
	if err != nil {
		return nil, err
	}
	return build(name, args, attrs)
}

// parseArgs reads a comma-separated list of sub-expressions and
// attribute tokens (bare integers/symbols or dim=N) until ')'.
func (p *parser) parseArgs() (args []*expr.Term, attrs []sym.Expr, err error) {
	for {
		p.skipSpace()
		if p.peek() == ')' {
			p.pos++
			return args, attrs, nil
		}
		if p.peek() == 0 {
			return nil, nil, fmt.Errorf("exprparse: unterminated call in %q", p.src)
		}
		start := p.pos
		tok := p.ident()
		p.skipSpace()
		switch {
		case strings.HasPrefix(tok, "dim") && p.peek() == '=':
			p.pos++ // '='
			p.skipSpace()
			v := p.ident()
			e, err := sym.Parse(v)
			if err != nil {
				return nil, nil, err
			}
			attrs = append(attrs, e)
		case p.peek() == '(':
			// nested call: rewind and parse as expression
			p.pos = start
			sub, err := p.parseExpr()
			if err != nil {
				return nil, nil, err
			}
			args = append(args, sub)
		default:
			// bare token: attribute if it parses as a symbolic scalar
			// starting with a digit or sign; otherwise a tensor leaf.
			if tok == "" {
				return nil, nil, fmt.Errorf("exprparse: empty argument in %q", p.src)
			}
			if isScalarToken(tok) {
				e, err := sym.Parse(tok)
				if err != nil {
					return nil, nil, err
				}
				attrs = append(attrs, e)
			} else {
				leaf, err := p.leaf(tok)
				if err != nil {
					return nil, nil, err
				}
				args = append(args, leaf)
			}
		}
		p.skipSpace()
		if p.peek() == ',' {
			p.pos++
		}
	}
}

func isScalarToken(tok string) bool {
	c := tok[0]
	return c == '-' || c == '+' || (c >= '0' && c <= '9')
}

func build(name string, args []*expr.Term, attrs []sym.Expr) (*expr.Term, error) {
	switch name {
	case "concat":
		if len(attrs) != 1 || len(args) < 1 {
			return nil, fmt.Errorf("exprparse: concat needs args and dim=N")
		}
		return expr.Concat(attrs[0], args...), nil
	case "sum":
		if len(args) < 1 || len(attrs) != 0 {
			return nil, fmt.Errorf("exprparse: sum takes tensor args only")
		}
		return expr.Sum(args...), nil
	case "slice":
		if len(args) != 1 || len(attrs) != 3 {
			return nil, fmt.Errorf("exprparse: slice needs (x, dim, begin, end)")
		}
		return expr.Slice(args[0], attrs[0], attrs[1], attrs[2]), nil
	case "transpose":
		if len(args) != 1 || len(attrs) != 2 {
			return nil, fmt.Errorf("exprparse: transpose needs (x, d0, d1)")
		}
		return expr.Transpose(args[0], attrs[0], attrs[1]), nil
	case "pad":
		if len(args) != 1 || len(attrs) != 3 {
			return nil, fmt.Errorf("exprparse: pad needs (x, dim, before, after)")
		}
		return expr.Pad(args[0], attrs[0], attrs[1], attrs[2]), nil
	case "identity":
		if len(args) != 1 || len(attrs) != 0 {
			return nil, fmt.Errorf("exprparse: identity needs one arg")
		}
		return expr.New(expr.OpIdentity, nil, "", args[0]), nil
	}
	return nil, fmt.Errorf("exprparse: %q is not a clean operator (clean: concat, sum, slice, transpose, pad, identity)", name)
}
