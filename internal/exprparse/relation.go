package exprparse

import (
	"fmt"
	"strings"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/relation"
)

// ParseRelation builds a clean input relation from its interchange
// form: a map from G_s tensor names to textual clean expressions over
// G_d tensor names. This is the format of the CLI's -rel sidecar file
// and of the daemon's /v1/check "rel" field, so both front ends share
// one parser (and one set of error messages).
func ParseRelation(raw map[string][]string, gs, gd *graph.Graph) (*relation.Relation, error) {
	ri := relation.New()
	for gsName, exprs := range raw {
		t, ok := gs.TensorByName(gsName)
		if !ok {
			return nil, fmt.Errorf("G_s has no tensor %q", gsName)
		}
		for _, src := range exprs {
			term, err := Parse(strings.TrimSpace(src), GdLeafFn(gd))
			if err != nil {
				return nil, fmt.Errorf("relation for %q: %v", gsName, err)
			}
			ri.Add(t.ID, term)
		}
	}
	return ri, nil
}

// GdLeafFn resolves tensor names against gd, producing G_d-space
// leaves — the LeafFn for parsing relation and expectation right-hand
// sides.
func GdLeafFn(gd *graph.Graph) LeafFn {
	return func(name string) (*expr.Term, error) {
		t, ok := gd.TensorByName(name)
		if !ok {
			return nil, fmt.Errorf("G_d has no tensor %q", name)
		}
		return relation.GdLeaf(t), nil
	}
}

// GsLeafFn resolves tensor names against gs, producing G_s-space
// leaves — the LeafFn for parsing expectation left-hand sides.
func GsLeafFn(gs *graph.Graph) LeafFn {
	return func(name string) (*expr.Term, error) {
		t, ok := gs.TensorByName(name)
		if !ok {
			return nil, fmt.Errorf("G_s has no tensor %q", name)
		}
		return relation.GsLeaf(t), nil
	}
}
