package models

import (
	"errors"
	"math/rand"
	"testing"

	"entangle/internal/core"
	"entangle/internal/graph"
	"entangle/internal/numeric"
	"entangle/internal/relation"
)

// verify runs the refinement check.
func verify(t *testing.T, b *Built) *core.Report {
	t.Helper()
	report, err := core.NewChecker(core.Options{}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatalf("%s: refinement failed: %v", b.Name, err)
	}
	if !report.OutputRelation.Complete(b.Gs.Outputs) {
		t.Fatalf("%s: output relation incomplete", b.Name)
	}
	return report
}

// diffTest runs both graphs on random inputs, applies the verified
// output relation, and checks bit-level agreement (within float tol).
func diffTest(t *testing.T, b *Built, report *core.Report, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gsIn := map[string]*numeric.Dense{}
	for _, in := range b.Gs.Inputs {
		tt := b.Gs.Tensor(in)
		dims, err := tt.Shape.Concrete(nil)
		if err != nil {
			t.Fatalf("symbolic input %q needs env", tt.Name)
		}
		if tt.Name == "ids" {
			// integer ids within vocabulary
			vocabT, ok := b.Gs.TensorByName("emb_w")
			hi := 8
			if ok {
				v, _ := vocabT.Shape[0].IsConst()
				hi = int(v)
			}
			gsIn[tt.Name] = numeric.RandInts(rng, hi, dims...)
			continue
		}
		gsIn[tt.Name] = numeric.Rand(rng, dims...)
	}
	gsVals, err := numeric.EvalGraph(b.Gs, gsIn, nil)
	if err != nil {
		t.Fatalf("%s: eval G_s: %v", b.Name, err)
	}
	gdIn, err := b.Env.SplitInputs(gsIn)
	if err != nil {
		t.Fatalf("%s: split inputs: %v", b.Name, err)
	}
	gdVals, err := numeric.EvalGraph(b.Gd, gdIn, nil)
	if err != nil {
		t.Fatalf("%s: eval G_d: %v", b.Name, err)
	}
	lookup := func(tid int) (*numeric.Dense, error) {
		if !relation.IsGd(tid) {
			return nil, errors.New("relation references G_s tensor")
		}
		v, ok := gdVals[relation.GdTensorID(tid)]
		if !ok {
			return nil, errors.New("missing G_d value")
		}
		return v, nil
	}
	for _, o := range b.Gs.Outputs {
		maps := report.OutputRelation.Get(o)
		if len(maps) == 0 {
			t.Fatalf("%s: no mapping for output %q", b.Name, b.Gs.Tensor(o).Name)
		}
		for _, m := range maps {
			got, err := numeric.EvalTerm(m, nil, lookup)
			if err != nil {
				t.Fatalf("%s: eval relation %s: %v", b.Name, m, err)
			}
			if !numeric.AllClose(gsVals[o], got, 1e-9) {
				t.Fatalf("%s: relation %s does not reconstruct %q (max diff %g)",
					b.Name, m, b.Gs.Tensor(o).Name, numeric.MaxAbsDiff(gsVals[o], got))
			}
		}
	}
}

func TestGPTTPRefines(t *testing.T) {
	b, err := GPT(Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 1)
}

func TestGPTTPSPRefines(t *testing.T) {
	b, err := GPT(Options{TP: 2, SP: true})
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 2)
}

func TestGPTTPSPVPRefines(t *testing.T) {
	b, err := GPT(Options{TP: 2, SP: true, VP: true})
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 3)
}

func TestGPTDegree4(t *testing.T) {
	b, err := GPT(Options{TP: 4, SP: true, VP: true})
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 4)
}

func TestGPTTwoLayers(t *testing.T) {
	b, err := GPT(Options{TP: 2, SP: true, Cfg: Config{Layers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, b)
}

func TestGPTBug7Detected(t *testing.T) {
	b, err := GPT(Options{TP: 2, Bug: Bug7MissingAllReduce})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.NewChecker(core.Options{}).Check(b.Gs, b.Gd, b.Ri)
	var re *core.RefinementError
	if !errors.As(err, &re) {
		t.Fatalf("bug 7 must be detected, got %v", err)
	}
	t.Logf("bug 7 localized to %q", re.Op.Label)
	// As in the paper, the error surfaces at the operator consuming
	// the uncombined partials: res2 itself still maps cleanly as
	// sum(res1_r, P_0, P_1), so the first unmappable operator is its
	// consumer — the final layernorm in this one-layer model.
	if re.Op.Label != "final_ln" {
		t.Fatalf("unexpected localization %q", re.Op.Label)
	}
}

func TestGPTBug7DetectedTwoLayers(t *testing.T) {
	// With a second layer the consumer is the next layer's layernorm.
	b, err := GPT(Options{TP: 2, Bug: Bug7MissingAllReduce, Cfg: Config{Layers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.NewChecker(core.Options{}).Check(b.Gs, b.Gd, b.Ri)
	var re *core.RefinementError
	if !errors.As(err, &re) {
		t.Fatalf("bug 7 must be detected, got %v", err)
	}
	if re.Op.Label != "L1/ln1" {
		t.Fatalf("localized to %q, want L1/ln1", re.Op.Label)
	}
}

func TestGPTBug7NumericDivergence(t *testing.T) {
	// Sanity: the injected bug must actually change the numbers.
	good, err := GPT(Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := GPT(Options{TP: 2, Bug: Bug7MissingAllReduce})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	gsIn := map[string]*numeric.Dense{}
	for _, in := range good.Gs.Inputs {
		tt := good.Gs.Tensor(in)
		dims, _ := tt.Shape.Concrete(nil)
		if tt.Name == "ids" {
			gsIn[tt.Name] = numeric.RandInts(rng, 8, dims...)
		} else {
			gsIn[tt.Name] = numeric.Rand(rng, dims...)
		}
	}
	run := func(b *Built) *numeric.Dense {
		in, err := b.Env.SplitInputs(gsIn)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := numeric.EvalGraph(b.Gd, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		return vals[b.Gd.Outputs[0]]
	}
	if numeric.AllClose(run(good), run(bad), 1e-9) {
		t.Fatal("bug 7 injection did not change the computation")
	}
}

func TestGPTOperatorCounts(t *testing.T) {
	b, err := GPT(Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.OperatorTotal() < 20 {
		t.Fatalf("implausibly small graphs: %d ops", b.OperatorTotal())
	}
	if err := b.Gs.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Gd.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = graph.NoProducer
}
