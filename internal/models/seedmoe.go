package models

import (
	"fmt"

	"entangle/internal/graph"
	"entangle/internal/shape"
	"entangle/internal/strategy"
	"entangle/internal/sym"
)

// SeedMoEConfig sizes the stand-in for ByteDance's proprietary MoE
// model (the paper's internal workload, whose graphs are not
// published): rotary attention with TP+SP plus a mixture-of-experts
// block with expert parallelism and an auxiliary load-balancing loss.
func SeedMoEConfig() Config {
	return Config{Seq: 8, Hidden: 16, Heads: 4, FFN: 32, Experts: 2, Layers: 1}
}

// padGatherExtra is the defensive padding each rank applies before the
// all-gather in the SeedMoE attention block (the bug-3 site).
const padGatherExtra = 2

// SeedMoE builds the ByteDance-internal workload stand-in: one
// transformer layer with RoPE attention (TP+SP) and a gated
// mixture-of-experts MLP (EP), emitting the model output and the
// auxiliary loss. Bugs 1–4 of §6.2 inject here.
func SeedMoE(opt Options) (*Built, error) {
	opt, err := opt.validated("seedmoe")
	if err != nil {
		return nil, err
	}
	c := opt.Cfg
	if c.Seq == 0 {
		c = SeedMoEConfig()
		if opt.Cfg.Layers > 0 {
			c.Layers = opt.Cfg.Layers
		}
	}
	if c.Experts%opt.TP != 0 {
		return nil, fmt.Errorf("models: seedmoe: experts=%d not divisible by parallelism %d", c.Experts, opt.TP)
	}
	gs, err := seedMoESequential(c)
	if err != nil {
		return nil, err
	}
	env := strategy.NewEnv(gs, "seedmoe-dist", opt.TP)
	if err := seedMoEDistributed(env, c, opt); err != nil {
		return nil, err
	}
	gd, err := env.Build()
	if err != nil {
		return nil, err
	}
	return &Built{Name: "SeedMoE", Gs: gs, Gd: gd, Ri: env.Ri, Env: env}, nil
}

func seedMoESequential(c Config) (*graph.Graph, error) {
	b := graph.NewBuilder("seedmoe-seq", nil)
	S, H, F, E := int64(c.Seq), int64(c.Hidden), int64(c.FFN), int64(c.Experts)
	x := b.Input("x", shape.Of(S, H))
	cos := b.Input("rope_cos", shape.Of(S, H))
	sin := b.Input("rope_sin", shape.Of(S, H))

	var out graph.TensorID = x
	for l := 0; l < c.Layers; l++ {
		p := func(s string) string { return fmt.Sprintf("L%d/%s", l, s) }
		rms1 := b.Input(p("rms1_w"), shape.Of(H))
		qw := b.Input(p("q_w"), shape.Of(H, H))
		kw := b.Input(p("k_w"), shape.Of(H, H))
		vw := b.Input(p("v_w"), shape.Of(H, H))
		ow := b.Input(p("o_w"), shape.Of(H, H))
		rms2 := b.Input(p("rms2_w"), shape.Of(H))
		routerW := b.Input(p("router_w"), shape.Of(H, E))

		xr := b.RoPE(p("rope"), out, cos, sin)
		a := b.RMSNorm(p("rms1"), xr, rms1)
		q := b.MatMul(p("q"), a, qw)
		k := b.MatMul(p("k"), a, kw)
		v := b.MatMul(p("v"), a, vw)
		attn := b.Attention(p("attn"), q, k, v, int64(c.Heads))
		proj := b.MatMul(p("o"), attn, ow)
		res := b.Add(p("res1"), xr, proj)

		m := b.RMSNorm(p("rms2"), res, rms2)
		probs := b.Router(p("router"), m, routerW)
		aux := b.AuxLoss(p("auxloss"), probs)
		b.Output(aux)

		weighted := make([]graph.TensorID, c.Experts)
		for e := 0; e < c.Experts; e++ {
			ep := func(s string) string { return fmt.Sprintf("%s/expert%d/%s", p("moe"), e, s) }
			w1 := b.Input(ep("w1"), shape.Of(H, F))
			w2 := b.Input(ep("w2"), shape.Of(F, H))
			h := b.MatMul(ep("fc1"), m, w1)
			act := b.Unary(ep("silu"), "silu", h)
			o := b.MatMul(ep("fc2"), act, w2)
			gate := b.Slice(ep("gate"), probs, sym.Const(1), sym.Const(int64(e)), sym.Const(int64(e+1)))
			weighted[e] = b.Mul(ep("weighted"), gate, o)
		}
		moe := b.Op("sum", p("moe/combine"), p("moe/combine")+".out", "", nil, weighted...)
		out = b.Add(p("res2"), res, moe)
	}
	b.Output(out)
	return b.Build()
}

func seedMoEDistributed(e *strategy.Env, c Config, opt Options) error {
	R := e.R
	b := e.B
	S := int64(c.Seq)
	Sh := S / int64(R)
	localExperts := c.Experts / R

	xs := e.Shard("x", 0)
	cos := e.Shared("rope_cos")
	sin := e.Shared("rope_sin")

	out := xs
	for l := 0; l < c.Layers; l++ {
		p := func(s string) string { return fmt.Sprintf("L%d/%s", l, s) }
		rms1 := e.Shared(p("rms1_w"))
		rms2 := e.Shared(p("rms2_w"))
		routerW := e.Shared(p("router_w"))

		// RoPE on sequence shards: each rank slices its rows of the
		// precomputed tables. Bug 1 forgets the per-rank offset.
		xr := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			begin := int64(r) * Sh
			if opt.Bug == Bug1RoPEOffset {
				begin = 0
			}
			cosR := b.Slice(fmt.Sprintf("r%d/%s/cos_slice", r, p("rope")), cos,
				sym.Const(0), sym.Const(begin), sym.Const(begin+Sh))
			sinR := b.Slice(fmt.Sprintf("r%d/%s/sin_slice", r, p("rope")), sin,
				sym.Const(0), sym.Const(begin), sym.Const(begin+Sh))
			xr[r] = b.RoPE(fmt.Sprintf("r%d/%s", r, p("rope")), out[r], cosR, sinR)
		}

		a := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			a[r] = b.RMSNorm(fmt.Sprintf("r%d/%s", r, p("rms1")), xr[r], rms1)
		}

		// Gather the sequence for attention. The production kernel
		// pads each shard before the all-gather and drops the padding
		// after (the bug-3 site: mismatched offsets keep padding and
		// drop data).
		gathered := make([]graph.TensorID, R)
		{
			padded := make([]graph.TensorID, R)
			for r := 0; r < R; r++ {
				padded[r] = b.Pad(fmt.Sprintf("r%d/%s/pad", r, p("gather")), a[r],
					sym.Const(0), sym.Const(0), sym.Const(padGatherExtra))
			}
			gg := b.AllGather(p("gather/allgather"), 0, padded...)
			stride := Sh + padGatherExtra
			for r := 0; r < R; r++ {
				pieces := make([]graph.TensorID, R)
				for i := 0; i < R; i++ {
					begin := int64(i) * stride
					if opt.Bug == Bug3PadSlice {
						begin = int64(i) * Sh // forgot the pad stride
					}
					pieces[i] = b.Slice(fmt.Sprintf("r%d/%s/unpad%d", r, p("gather"), i), gg[r],
						sym.Const(0), sym.Const(begin), sym.Const(begin+Sh))
				}
				gathered[r] = b.Concat(fmt.Sprintf("r%d/%s/rebuild", r, p("gather")), sym.Const(0), pieces...)
			}
		}

		q := e.ColumnParallelLinear(p("q"), gathered, p("q_w"))
		k := e.ColumnParallelLinear(p("k"), gathered, p("k_w"))
		v := e.ColumnParallelLinear(p("v"), gathered, p("v_w"))
		attn := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			attn[r] = b.Attention(fmt.Sprintf("r%d/%s", r, p("attn")),
				q[r], k[r], v[r], int64(c.Heads/R))
		}
		proj := e.RowParallelLinear(p("o"), attn, p("o_w"), strategy.ReduceScatterSeq)
		res := make([]graph.TensorID, R)
		m := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			res[r] = b.Add(fmt.Sprintf("r%d/%s", r, p("res1")), xr[r], proj[r])
			m[r] = b.RMSNorm(fmt.Sprintf("r%d/%s", r, p("rms2")), res[r], rms2)
		}

		// Router + auxiliary loss per sequence shard. With TP the loss
		// must be scaled by 1/R before the all-reduce; bug 2 omits it.
		probs := make([]graph.TensorID, R)
		auxParts := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			probs[r] = b.Router(fmt.Sprintf("r%d/%s", r, p("router")), m[r], routerW)
			aux := b.AuxLoss(fmt.Sprintf("r%d/%s", r, p("auxloss")), probs[r])
			if opt.Bug != Bug2AuxLossScale {
				aux = b.Scale(fmt.Sprintf("r%d/%s/scale", r, p("auxloss")), aux, 1, int64(R))
			}
			auxParts[r] = aux
		}
		auxOut := b.AllReduce(p("auxloss/allreduce"), auxParts...)
		b.Output(auxOut[0])

		// Expert parallelism: gather tokens and router probabilities,
		// each rank runs its local experts on the full sequence, and a
		// reduce-scatter returns to sequence shards. Bug 4 instead
		// shards the expert weights (as if still under TP) and skips
		// the gather — the off-diagonal blocks are never computed.
		moe := make([]graph.TensorID, R)
		if opt.Bug == Bug4ShardedExperts {
			for eIdx := 0; eIdx < c.Experts; eIdx++ {
				ep := func(s string) string { return fmt.Sprintf("%s/expert%d/%s", p("moe"), eIdx, s) }
				w1 := e.ShardNamed(ep("w1"), ep("w1"), 1)
				w2 := e.ShardNamed(ep("w2"), ep("w2"), 0)
				for r := 0; r < R; r++ {
					h := b.MatMul(fmt.Sprintf("r%d/%s", r, ep("fc1")), m[r], w1[r])
					act := b.Unary(fmt.Sprintf("r%d/%s", r, ep("silu")), "silu", h)
					o := b.MatMul(fmt.Sprintf("r%d/%s", r, ep("fc2")), act, w2[r])
					gate := b.Slice(fmt.Sprintf("r%d/%s", r, ep("gate")), probs[r],
						sym.Const(1), sym.Const(int64(eIdx)), sym.Const(int64(eIdx+1)))
					w := b.Mul(fmt.Sprintf("r%d/%s", r, ep("weighted")), gate, o)
					if eIdx == 0 {
						moe[r] = w
					} else {
						moe[r] = b.Add(fmt.Sprintf("r%d/%s/acc%d", r, p("moe"), eIdx), moe[r], w)
					}
				}
			}
		} else {
			mg := b.AllGather(p("moe/gather_m"), 0, m...)
			pg := b.AllGather(p("moe/gather_probs"), 0, probs...)
			partials := make([]graph.TensorID, R)
			for r := 0; r < R; r++ {
				var acc graph.TensorID
				for le := 0; le < localExperts; le++ {
					eIdx := r*localExperts + le
					ep := func(s string) string { return fmt.Sprintf("%s/expert%d/%s", p("moe"), eIdx, s) }
					w1 := e.Shared(ep("w1"))
					w2 := e.Shared(ep("w2"))
					h := b.MatMul(fmt.Sprintf("r%d/%s", r, ep("fc1")), mg[r], w1)
					act := b.Unary(fmt.Sprintf("r%d/%s", r, ep("silu")), "silu", h)
					o := b.MatMul(fmt.Sprintf("r%d/%s", r, ep("fc2")), act, w2)
					gate := b.Slice(fmt.Sprintf("r%d/%s", r, ep("gate")), pg[r],
						sym.Const(1), sym.Const(int64(eIdx)), sym.Const(int64(eIdx+1)))
					w := b.Mul(fmt.Sprintf("r%d/%s", r, ep("weighted")), gate, o)
					if le == 0 {
						acc = w
					} else {
						acc = b.Add(fmt.Sprintf("r%d/%s/acc%d", r, p("moe"), le), acc, w)
					}
				}
				partials[r] = acc
			}
			moe = b.ReduceScatter(p("moe/reducescatter"), 0, partials...)
		}

		for r := 0; r < R; r++ {
			out[r] = b.Add(fmt.Sprintf("r%d/%s", r, p("res2")), res[r], moe[r])
		}
	}
	b.Output(out...)
	return b.Err()
}
