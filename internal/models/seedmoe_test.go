package models

import (
	"errors"
	"strings"
	"testing"

	"entangle/internal/core"
)

func TestSeedMoERefines(t *testing.T) {
	b, err := SeedMoE(Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 21)
}

func mustFailAt(t *testing.T, b *Built, wantLabelSub string) *core.RefinementError {
	t.Helper()
	_, err := core.NewChecker(core.Options{}).Check(b.Gs, b.Gd, b.Ri)
	var re *core.RefinementError
	if !errors.As(err, &re) {
		t.Fatalf("%s: expected RefinementError, got %v", b.Name, err)
	}
	if wantLabelSub != "" && !strings.Contains(re.Op.Label, wantLabelSub) {
		t.Fatalf("%s: localized to %q, want label containing %q", b.Name, re.Op.Label, wantLabelSub)
	}
	t.Logf("%s localized to %q", b.Name, re.Op.Label)
	return re
}

func TestSeedMoEBug1RoPEOffset(t *testing.T) {
	b, err := SeedMoE(Options{TP: 2, Bug: Bug1RoPEOffset})
	if err != nil {
		t.Fatal(err)
	}
	mustFailAt(t, b, "rope")
}

func TestSeedMoEBug2AuxLossScale(t *testing.T) {
	b, err := SeedMoE(Options{TP: 2, Bug: Bug2AuxLossScale})
	if err != nil {
		t.Fatal(err)
	}
	mustFailAt(t, b, "auxloss")
}

func TestSeedMoEBug3PadSlice(t *testing.T) {
	b, err := SeedMoE(Options{TP: 2, Bug: Bug3PadSlice})
	if err != nil {
		t.Fatal(err)
	}
	mustFailAt(t, b, "")
}

func TestSeedMoEBug4ShardedExperts(t *testing.T) {
	b, err := SeedMoE(Options{TP: 2, Bug: Bug4ShardedExperts})
	if err != nil {
		t.Fatal(err)
	}
	re := mustFailAt(t, b, "moe")
	if !strings.Contains(re.Op.Label, "fc1") {
		t.Fatalf("paper localizes bug 4 to the first expert matmul, got %q", re.Op.Label)
	}
}
