package models

import (
	"testing"

	"entangle/internal/core"
)

func TestMultiTowerVerifies(t *testing.T) {
	for _, tc := range []struct{ towers, tp int }{{1, 2}, {4, 2}, {8, 4}} {
		b, err := MultiTower(tc.towers, tc.tp)
		if err != nil {
			t.Fatalf("towers=%d tp=%d: %v", tc.towers, tc.tp, err)
		}
		rep, err := core.NewChecker(core.Options{}).Check(b.Gs, b.Gd, b.Ri)
		if err != nil {
			t.Fatalf("towers=%d tp=%d: %v", tc.towers, tc.tp, err)
		}
		if rep.OpsProcessed != b.Gs.OperatorCount() {
			t.Fatalf("towers=%d tp=%d: processed %d of %d ops",
				tc.towers, tc.tp, rep.OpsProcessed, b.Gs.OperatorCount())
		}
		for _, o := range b.Gs.Outputs {
			if len(rep.OutputRelation.Get(o)) == 0 {
				t.Fatalf("towers=%d tp=%d: output unmapped", tc.towers, tc.tp)
			}
		}
	}
}

func TestMultiTowerRejectsBadConfig(t *testing.T) {
	if _, err := MultiTower(0, 2); err == nil {
		t.Fatal("towers=0 must be rejected")
	}
	if _, err := MultiTower(4, 3); err == nil {
		t.Fatal("tp=3 must be rejected: widths not divisible")
	}
}
