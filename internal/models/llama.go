package models

import (
	"fmt"

	"entangle/internal/graph"
	"entangle/internal/shape"
	"entangle/internal/strategy"
)

// LlamaConfig sizes the Llama-3 workload. Heads = 8 is deliberately
// not divisible by 6: Figure 4 notes "there is no data for parallelism
// size 6, because some component cannot be evenly partitioned by 6",
// and this config reproduces that gap.
func LlamaConfig() Config {
	return Config{Seq: 16, Hidden: 32, Heads: 8, FFN: 64, Vocab: 32, Layers: 1}
}

// Llama builds the Llama-3 workload (Transformers-NeuronX in Table 2):
// RMSNorm, rotary attention, SwiGLU MLP, distributed with tensor
// parallelism. The HLO front end (internal/hlo) round-trips these
// graphs to exercise the paper's XLA capture path.
func Llama(opt Options) (*Built, error) {
	opt, err := opt.validated("llama")
	if err != nil {
		return nil, err
	}
	c := opt.Cfg
	if c.Seq == 0 {
		c = LlamaConfig()
		if opt.Cfg.Layers > 0 {
			c.Layers = opt.Cfg.Layers
		}
	}
	if c.Heads%opt.TP != 0 {
		return nil, fmt.Errorf("models: llama: heads=%d not divisible by parallelism %d", c.Heads, opt.TP)
	}
	gs, err := llamaSequential(c, false)
	if err != nil {
		return nil, err
	}
	env := strategy.NewEnv(gs, "llama-dist", opt.TP)
	if err := llamaDistributed(env, c, opt, false); err != nil {
		return nil, err
	}
	gd, err := env.Build()
	if err != nil {
		return nil, err
	}
	return &Built{Name: "Llama-3", Gs: gs, Gd: gd, Ri: env.Ri, Env: env}, nil
}

// Qwen2 builds the vLLM Qwen2 workload: the same architecture family
// as Llama but spelled with vLLM's fused kernels (fused_add_rmsnorm,
// fused_silu_mul), exercising the v-lemma family of Figure 6.
func Qwen2(opt Options) (*Built, error) {
	opt, err := opt.validated("qwen2")
	if err != nil {
		return nil, err
	}
	c := opt.Cfg
	if c.Seq == 0 {
		c = LlamaConfig()
		if opt.Cfg.Layers > 0 {
			c.Layers = opt.Cfg.Layers
		}
	}
	gs, err := llamaSequential(c, true)
	if err != nil {
		return nil, err
	}
	env := strategy.NewEnv(gs, "qwen2-dist", opt.TP)
	if err := llamaDistributed(env, c, opt, true); err != nil {
		return nil, err
	}
	gd, err := env.Build()
	if err != nil {
		return nil, err
	}
	return &Built{Name: "Qwen2", Gs: gs, Gd: gd, Ri: env.Ri, Env: env}, nil
}

// llamaSequential builds the sequential Llama/Qwen2 graph; fused
// selects the vLLM kernel spelling (§3.3's assumption 1 requires the
// same spelling in both graphs, so the flag applies to G_s and G_d
// alike).
func llamaSequential(c Config, fused bool) (*graph.Graph, error) {
	name := "llama-seq"
	if fused {
		name = "qwen2-seq"
	}
	b := graph.NewBuilder(name, nil)
	S, H, F, V := int64(c.Seq), int64(c.Hidden), int64(c.FFN), int64(c.Vocab)
	ids := b.Input("ids", shape.Of(S))
	emb := b.Input("emb_w", shape.Of(V, H))
	cos := b.Input("rope_cos", shape.Of(S, H))
	sin := b.Input("rope_sin", shape.Of(S, H))
	x := b.Embedding("embed", emb, ids)
	for l := 0; l < c.Layers; l++ {
		p := func(s string) string { return fmt.Sprintf("L%d/%s", l, s) }
		rms1 := b.Input(p("rms1_w"), shape.Of(H))
		qw := b.Input(p("q_w"), shape.Of(H, H))
		kw := b.Input(p("k_w"), shape.Of(H, H))
		vw := b.Input(p("v_w"), shape.Of(H, H))
		ow := b.Input(p("o_w"), shape.Of(H, H))
		rms2 := b.Input(p("rms2_w"), shape.Of(H))
		gatew := b.Input(p("gate_w"), shape.Of(H, F))
		upw := b.Input(p("up_w"), shape.Of(H, F))
		downw := b.Input(p("down_w"), shape.Of(F, H))

		a := b.RMSNorm(p("rms1"), x, rms1)
		q := b.MatMul(p("q"), a, qw)
		k := b.MatMul(p("k"), a, kw)
		v := b.MatMul(p("v"), a, vw)
		qr := b.RoPE(p("rope_q"), q, cos, sin)
		kr := b.RoPE(p("rope_k"), k, cos, sin)
		attn := b.Attention(p("attn"), qr, kr, v, int64(c.Heads))
		proj := b.MatMul(p("o"), attn, ow)
		res1 := b.Add(p("res1"), x, proj)

		var m graph.TensorID
		if fused {
			m = b.Op("fused_add_rmsnorm", p("rms2"), p("rms2")+".out", "", nil, proj, x, rms2)
		} else {
			m = b.RMSNorm(p("rms2"), res1, rms2)
		}
		gate := b.MatMul(p("gate"), m, gatew)
		up := b.MatMul(p("up"), m, upw)
		var h graph.TensorID
		if fused {
			h = b.Op("fused_silu_mul", p("swiglu"), p("swiglu")+".out", "", nil, gate, up)
		} else {
			act := b.Unary(p("silu"), "silu", gate)
			h = b.Mul(p("swiglu"), act, up)
		}
		down := b.MatMul(p("down"), h, downw)
		x = b.Add(p("res2"), res1, down)
	}
	frms := b.Input("final_rms_w", shape.Of(H))
	lm := b.Input("lm_w", shape.Of(H, V))
	f := b.RMSNorm("final_rms", x, frms)
	logits := b.MatMul("lm_head", f, lm)
	b.Output(logits)
	return b.Build()
}

func llamaDistributed(e *strategy.Env, c Config, opt Options, fused bool) error {
	R := e.R
	b := e.B
	ids := e.Replicate("ids")
	emb := e.Shared("emb_w")
	cosShards := e.Shard("rope_cos", 1)
	sinShards := e.Shard("rope_sin", 1)

	x := make([]graph.TensorID, R)
	for r := 0; r < R; r++ {
		x[r] = b.Embedding(fmt.Sprintf("r%d/embed", r), emb, ids[r])
	}

	for l := 0; l < c.Layers; l++ {
		p := func(s string) string { return fmt.Sprintf("L%d/%s", l, s) }
		rms1 := e.Shared(p("rms1_w"))
		rms2 := e.Shared(p("rms2_w"))

		a := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			a[r] = b.RMSNorm(fmt.Sprintf("r%d/%s", r, p("rms1")), x[r], rms1)
		}
		q := e.ColumnParallelLinear(p("q"), a, p("q_w"))
		k := e.ColumnParallelLinear(p("k"), a, p("k_w"))
		v := e.ColumnParallelLinear(p("v"), a, p("v_w"))
		qr := make([]graph.TensorID, R)
		kr := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			qr[r] = b.RoPE(fmt.Sprintf("r%d/%s", r, p("rope_q")), q[r], cosShards[r], sinShards[r])
			kr[r] = b.RoPE(fmt.Sprintf("r%d/%s", r, p("rope_k")), k[r], cosShards[r], sinShards[r])
		}
		attn := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			attn[r] = b.Attention(fmt.Sprintf("r%d/%s", r, p("attn")),
				qr[r], kr[r], v[r], int64(c.Heads/R))
		}
		proj := e.RowParallelLinear(p("o"), attn, p("o_w"), strategy.ReduceAllReduce)
		res1 := make([]graph.TensorID, R)
		m := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			res1[r] = b.Add(fmt.Sprintf("r%d/%s", r, p("res1")), x[r], proj[r])
			if fused {
				m[r] = b.Op("fused_add_rmsnorm", fmt.Sprintf("r%d/%s", r, p("rms2")),
					fmt.Sprintf("r%d/%s.out", r, p("rms2")), "", nil, proj[r], x[r], rms2)
			} else {
				m[r] = b.RMSNorm(fmt.Sprintf("r%d/%s", r, p("rms2")), res1[r], rms2)
			}
		}
		gate := e.ColumnParallelLinear(p("gate"), m, p("gate_w"))
		up := e.ColumnParallelLinear(p("up"), m, p("up_w"))
		h := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			if fused {
				h[r] = b.Op("fused_silu_mul", fmt.Sprintf("r%d/%s", r, p("swiglu")),
					fmt.Sprintf("r%d/%s.out", r, p("swiglu")), "", nil, gate[r], up[r])
			} else {
				act := b.Unary(fmt.Sprintf("r%d/%s", r, p("silu")), "silu", gate[r])
				h[r] = b.Mul(fmt.Sprintf("r%d/%s", r, p("swiglu")), act, up[r])
			}
		}
		down := e.RowParallelLinear(p("down"), h, p("down_w"), strategy.ReduceAllReduce)
		for r := 0; r < R; r++ {
			x[r] = b.Add(fmt.Sprintf("r%d/%s", r, p("res2")), res1[r], down[r])
		}
	}

	frms := e.Shared("final_rms_w")
	f := make([]graph.TensorID, R)
	for r := 0; r < R; r++ {
		f[r] = b.RMSNorm(fmt.Sprintf("r%d/final_rms", r), x[r], frms)
	}
	logits := e.ColumnParallelLinear("lm_head", f, "lm_w")
	b.Output(logits...)
	return b.Err()
}
