package models

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"entangle/internal/core"
	"entangle/internal/graph"
	"entangle/internal/numeric"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/strategy"
	"entangle/internal/sym"
)

// End-to-end checker fuzzing: generate random sequential chains
// (linear layers, activations, norms, residuals), distribute them with
// randomly chosen strategies per layer (column-parallel, row-parallel
// with all-reduce or reduce-scatter, sequence-sharded elementwise),
// verify refinement, and numerically validate every emitted mapping —
// outputs AND intermediates. Any unsound lemma, checker bug, or
// strategy-relation mismatch fails here.

type fuzzModel struct {
	gs  *graph.Graph
	env *strategy.Env
}

// buildFuzzModel creates a random depth-layer chain over [S, H]
// activations and its distributed twin with degree R.
func buildFuzzModel(rng *rand.Rand, depth, R int) (*fuzzModel, error) {
	const S, H = 8, 16
	bs := graph.NewBuilder("fuzz-seq", nil)
	x := bs.Input("x", shape.Of(S, H))

	type layer struct {
		kind int // 0 unary, 1 col+row linear pair, 2 rmsnorm, 3 residual-unary
	}
	layers := make([]layer, depth)
	for i := range layers {
		layers[i] = layer{kind: rng.Intn(4)}
	}

	cur := x
	for i, l := range layers {
		p := func(s string) string { return fmt.Sprintf("L%d/%s", i, s) }
		switch l.kind {
		case 0:
			names := []string{"gelu", "silu", "relu", "tanh"}
			cur = bs.Unary(p("act"), names[rng.Intn(len(names))], cur)
		case 1:
			w1 := bs.Input(p("w1"), shape.Of(H, 2*H))
			w2 := bs.Input(p("w2"), shape.Of(2*H, H))
			h := bs.MatMul(p("fc1"), cur, w1)
			a := bs.Unary(p("mid"), "gelu", h)
			cur = bs.MatMul(p("fc2"), a, w2)
		case 2:
			w := bs.Input(p("norm_w"), shape.Of(H))
			cur = bs.RMSNorm(p("norm"), cur, w)
		case 3:
			u := bs.Unary(p("res_act"), "silu", cur)
			cur = bs.Add(p("res"), cur, u)
		}
	}
	bs.Output(cur)
	gs, err := bs.Build()
	if err != nil {
		return nil, err
	}

	// Distributed twin: sequence-sharded activations throughout; the
	// linear pair is col-parallel then row-parallel with a randomly
	// chosen reduction style.
	env := strategy.NewEnv(gs, "fuzz-dist", R)
	b := env.B
	xs := env.Shard("x", 0)
	curD := xs
	seqSharded := true
	for i, l := range layers {
		p := func(s string) string { return fmt.Sprintf("L%d/%s", i, s) }
		switch l.kind {
		case 0:
			name := gs.Nodes[0].Str // placeholder; resolved below
			_ = name
			// find the unary name from the sequential graph by label
			fn := unaryName(gs, p("act"))
			for r := 0; r < R; r++ {
				curD[r] = b.Unary(fmt.Sprintf("r%d/%s", r, p("act")), fn, curD[r])
			}
		case 1:
			in := curD
			if seqSharded {
				in = env.AllGatherSeq(p("gather"), curD)
			}
			h := env.ColumnParallelLinear(p("fc1"), in, p("w1"))
			a := make([]graph.TensorID, R)
			for r := 0; r < R; r++ {
				a[r] = b.Unary(fmt.Sprintf("r%d/%s", r, p("mid")), "gelu", h[r])
			}
			mode := strategy.ReduceScatterSeq
			seqSharded = true
			if rng.Intn(2) == 0 {
				mode = strategy.ReduceAllReduce
				seqSharded = false
				// re-scatter to keep the chain sequence-sharded
			}
			out := env.RowParallelLinear(p("fc2"), a, p("w2"), mode)
			if !seqSharded {
				chunk := int64(8 / R)
				for r := 0; r < R; r++ {
					out[r] = b.Slice(fmt.Sprintf("r%d/%s", r, p("scatter")), out[r],
						sym.Const(0), sym.Const(int64(r)*chunk), sym.Const(int64(r+1)*chunk))
				}
				seqSharded = true
			}
			curD = out
		case 2:
			w := env.Shared(p("norm_w"))
			for r := 0; r < R; r++ {
				curD[r] = b.RMSNorm(fmt.Sprintf("r%d/%s", r, p("norm")), curD[r], w)
			}
		case 3:
			for r := 0; r < R; r++ {
				u := b.Unary(fmt.Sprintf("r%d/%s", r, p("res_act")), "silu", curD[r])
				curD[r] = b.Add(fmt.Sprintf("r%d/%s", r, p("res")), curD[r], u)
			}
		}
	}
	b.Output(curD...)
	if _, err := env.Build(); err != nil {
		return nil, err
	}
	return &fuzzModel{gs: gs, env: env}, nil
}

func unaryName(g *graph.Graph, label string) string {
	for _, n := range g.Nodes {
		if n.Label == label {
			return n.Str
		}
	}
	return "gelu"
}

func TestFuzzCheckerEndToEnd(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		depth := 1 + rng.Intn(4)
		fm, err := buildFuzzModel(rng, depth, 2)
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		gd := fm.env.B.Graph()
		report, err := core.NewChecker(core.Options{}).Check(fm.gs, gd, fm.env.Ri)
		if err != nil {
			t.Fatalf("trial %d (depth %d): refinement failed: %v", trial, depth, err)
		}

		// Numeric validation of EVERY mapping, intermediates included.
		gsIn := map[string]*numeric.Dense{}
		for _, in := range fm.gs.Inputs {
			tt := fm.gs.Tensor(in)
			dims, _ := tt.Shape.Concrete(nil)
			gsIn[tt.Name] = numeric.Rand(rng, dims...)
		}
		gsVals, err := numeric.EvalGraph(fm.gs, gsIn, nil)
		if err != nil {
			t.Fatalf("trial %d: eval G_s: %v", trial, err)
		}
		gdIn, err := fm.env.SplitInputs(gsIn)
		if err != nil {
			t.Fatalf("trial %d: split: %v", trial, err)
		}
		gdVals, err := numeric.EvalGraph(gd, gdIn, nil)
		if err != nil {
			t.Fatalf("trial %d: eval G_d: %v", trial, err)
		}
		lookup := func(tid int) (*numeric.Dense, error) {
			if !relation.IsGd(tid) {
				return nil, errors.New("G_s leaf in mapping")
			}
			v, ok := gdVals[relation.GdTensorID(tid)]
			if !ok {
				return nil, errors.New("missing value")
			}
			return v, nil
		}
		for _, id := range report.FullRelation.Tensors() {
			for _, m := range report.FullRelation.Get(id) {
				got, err := numeric.EvalTerm(m, nil, lookup)
				if err != nil {
					t.Fatalf("trial %d: eval mapping %s = %s: %v",
						trial, fm.gs.Tensor(id).Name, m, err)
				}
				if !numeric.AllClose(gsVals[id], got, 1e-9) {
					t.Fatalf("trial %d: UNSOUND mapping %s = %s (max diff %g)",
						trial, fm.gs.Tensor(id).Name, m,
						numeric.MaxAbsDiff(gsVals[id], got))
				}
			}
		}
	}
}

func TestFuzzCheckerDegree4(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		fm, err := buildFuzzModel(rng, 1+rng.Intn(3), 4)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gd := fm.env.B.Graph()
		if _, err := core.NewChecker(core.Options{}).Check(fm.gs, gd, fm.env.Ri); err != nil {
			t.Fatalf("trial %d: degree-4 refinement failed: %v", trial, err)
		}
	}
}
