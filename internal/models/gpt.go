package models

import (
	"fmt"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/shape"
	"entangle/internal/strategy"
	"entangle/internal/sym"
)

// GPTConfig is the default GPT sizing used by the evaluation: head
// count and widths divisible by every parallelism degree in Figure 4's
// sweep {2, 4, 6, 8}.
func GPTConfig() Config {
	return Config{Seq: 24, Hidden: 48, Heads: 24, FFN: 96, Vocab: 48, Layers: 1}
}

// GPT builds the Megatron-LM GPT workload (Table 2): embedding, N
// transformer layers (layernorm, multi-head attention, gelu MLP), a
// final layernorm and the vocabulary projection. Distribution
// strategies: TP, optional SP, optional VP; Bug7MissingAllReduce
// injects the Megatron misconfiguration into layer 0's MLP.
func GPT(opt Options) (*Built, error) {
	opt, err := opt.validated("gpt")
	if err != nil {
		return nil, err
	}
	c := opt.Cfg
	if c.Seq == 0 {
		c = GPTConfig()
		c.Layers = opt.Cfg.Layers
		if c.Layers == 0 {
			c.Layers = 1
		}
	}
	gs, err := gptSequential(c)
	if err != nil {
		return nil, err
	}
	env := strategy.NewEnv(gs, "gpt-dist", opt.TP)
	if err := gptDistributed(env, c, opt); err != nil {
		return nil, err
	}
	gd, err := env.Build()
	if err != nil {
		return nil, err
	}
	return &Built{Name: "GPT", Gs: gs, Gd: gd, Ri: env.Ri, Env: env}, nil
}

func gptSequential(c Config) (*graph.Graph, error) {
	b := graph.NewBuilder("gpt-seq", nil)
	S, H, F, V := int64(c.Seq), int64(c.Hidden), int64(c.FFN), int64(c.Vocab)
	ids := b.Input("ids", shape.Of(S))
	emb := b.Input("emb_w", shape.Of(V, H))
	x := b.Embedding("embed", emb, ids)
	for l := 0; l < c.Layers; l++ {
		p := func(s string) string { return fmt.Sprintf("L%d/%s", l, s) }
		ln1w := b.Input(p("ln1_w"), shape.Of(H))
		ln1b := b.Input(p("ln1_b"), shape.Of(H))
		qw := b.Input(p("q_w"), shape.Of(H, H))
		kw := b.Input(p("k_w"), shape.Of(H, H))
		vw := b.Input(p("v_w"), shape.Of(H, H))
		ow := b.Input(p("o_w"), shape.Of(H, H))
		ln2w := b.Input(p("ln2_w"), shape.Of(H))
		ln2b := b.Input(p("ln2_b"), shape.Of(H))
		fc1 := b.Input(p("fc1_w"), shape.Of(H, F))
		fc2 := b.Input(p("fc2_w"), shape.Of(F, H))

		a := b.LayerNorm(p("ln1"), x, ln1w, ln1b)
		q := b.MatMul(p("q"), a, qw)
		k := b.MatMul(p("k"), a, kw)
		v := b.MatMul(p("v"), a, vw)
		attn := b.Attention(p("attn"), q, k, v, int64(c.Heads))
		proj := b.MatMul(p("o"), attn, ow)
		res1 := b.Add(p("res1"), x, proj)
		m := b.LayerNorm(p("ln2"), res1, ln2w, ln2b)
		h := b.MatMul(p("fc1"), m, fc1)
		g := b.Unary(p("gelu"), "gelu", h)
		pj := b.MatMul(p("fc2"), g, fc2)
		x = b.Add(p("res2"), res1, pj)
	}
	fw := b.Input("final_ln_w", shape.Of(H))
	fb := b.Input("final_ln_b", shape.Of(H))
	lm := b.Input("lm_w", shape.Of(H, V))
	f := b.LayerNorm("final_ln", x, fw, fb)
	logits := b.MatMul("lm_head", f, lm)
	b.Output(logits)
	return b.Build()
}

func gptDistributed(e *strategy.Env, c Config, opt Options) error {
	R := e.R
	b := e.B
	S, H := int64(c.Seq), int64(c.Hidden)
	Sh := S / int64(R)
	Vh := int64(c.Vocab) / int64(R)

	ids := e.Replicate("ids")

	// Embedding: VP shards the table rows; otherwise it is shared and
	// each rank performs the full lookup.
	var x []graph.TensorID
	if opt.VP {
		shards := e.Shard("emb_w", 0)
		partials := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			partials[r] = b.EmbeddingShard(fmt.Sprintf("r%d/embed", r),
				shards[r], ids[r], sym.Const(int64(r)*Vh))
		}
		if opt.SP {
			x = b.ReduceScatter("embed/reducescatter", 0, partials...)
		} else {
			x = b.AllReduce("embed/allreduce", partials...)
		}
	} else {
		emb := e.Shared("emb_w")
		x = make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			full := b.Embedding(fmt.Sprintf("r%d/embed", r), emb, ids[r])
			if opt.SP {
				x[r] = b.Slice(fmt.Sprintf("r%d/embed_scatter", r), full,
					sym.Const(0), sym.Const(int64(r)*Sh), sym.Const(int64(r+1)*Sh))
			} else {
				x[r] = full
			}
		}
	}

	for l := 0; l < c.Layers; l++ {
		p := func(s string) string { return fmt.Sprintf("L%d/%s", l, s) }
		ln1w := e.Shared(p("ln1_w"))
		ln1b := e.Shared(p("ln1_b"))
		ln2w := e.Shared(p("ln2_w"))
		ln2b := e.Shared(p("ln2_b"))

		// Attention block.
		a := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			a[r] = b.LayerNorm(fmt.Sprintf("r%d/%s", r, p("ln1")), x[r], ln1w, ln1b)
		}
		if opt.SP {
			a = e.AllGatherSeq(p("ln1/allgather"), a)
		}
		q := e.ColumnParallelLinear(p("q"), a, p("q_w"))
		k := e.ColumnParallelLinear(p("k"), a, p("k_w"))
		v := e.ColumnParallelLinear(p("v"), a, p("v_w"))
		attn := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			attn[r] = b.Attention(fmt.Sprintf("r%d/%s", r, p("attn")),
				q[r], k[r], v[r], int64(c.Heads/R))
		}
		mode := strategy.ReduceAllReduce
		if opt.SP {
			mode = strategy.ReduceScatterSeq
		}
		proj := e.RowParallelLinear(p("o"), attn, p("o_w"), mode)
		res1 := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			res1[r] = b.Add(fmt.Sprintf("r%d/%s", r, p("res1")), x[r], proj[r])
		}

		// MLP block.
		m := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			m[r] = b.LayerNorm(fmt.Sprintf("r%d/%s", r, p("ln2")), res1[r], ln2w, ln2b)
		}
		if opt.SP {
			m = e.AllGatherSeq(p("ln2/allgather"), m)
		}
		h := e.ColumnParallelLinear(p("fc1"), m, p("fc1_w"))
		g := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			g[r] = b.Unary(fmt.Sprintf("r%d/%s", r, p("gelu")), "gelu", h[r])
		}
		mlpMode := mode
		if opt.Bug == Bug7MissingAllReduce && l == 0 {
			// The Megatron misconfiguration: gradients/partials from
			// the row-parallel linear are never combined.
			mlpMode = strategy.ReduceNone
		}
		pj := e.RowParallelLinear(p("fc2"), g, p("fc2_w"), mlpMode)
		for r := 0; r < R; r++ {
			x[r] = b.Add(fmt.Sprintf("r%d/%s", r, p("res2")), res1[r], pj[r])
		}
	}

	fw := e.Shared("final_ln_w")
	fb := e.Shared("final_ln_b")
	f := make([]graph.TensorID, R)
	for r := 0; r < R; r++ {
		f[r] = b.LayerNorm(fmt.Sprintf("r%d/final_ln", r), x[r], fw, fb)
	}
	if opt.SP {
		f = e.AllGatherSeq("final_ln/allgather", f)
	}
	logits := e.ColumnParallelLinear("lm_head", f, "lm_w")
	b.Output(logits...)
	_ = H
	_ = expr.OpTensor
	return b.Err()
}
