package models

import (
	"errors"
	"testing"

	"entangle/internal/core"
)

func TestDataParallelSynced(t *testing.T) {
	b, err := DataParallel(2, true)
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 41)
	// DDP-synced grads also meet the §4.4 expectation.
	err = core.NewChecker(core.Options{}).CheckExpectation(b.Gs, b.Gd, b.Ri,
		core.Expectation{Fs: b.ExpectFs, Fd: b.ExpectFd})
	if err != nil {
		t.Fatalf("synced DP expectation should hold: %v", err)
	}
}

func TestDataParallelUnsyncedViolatesExpectation(t *testing.T) {
	b, err := DataParallel(2, false)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, b) // plain refinement still holds
	err = core.NewChecker(core.Options{}).CheckExpectation(b.Gs, b.Gd, b.Ri,
		core.Expectation{Fs: b.ExpectFs, Fd: b.ExpectFd})
	var ee *core.ExpectationError
	if !errors.As(err, &ee) {
		t.Fatalf("unsynced DP must violate the expectation, got %v", err)
	}
}

func TestDataParallelFourReplicas(t *testing.T) {
	b, err := DataParallel(4, true)
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 42)
}

func TestPipelineRefines(t *testing.T) {
	b, err := Pipeline(2, false)
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 43)
}

func TestPipelineFourMicrobatches(t *testing.T) {
	b, err := Pipeline(4, false)
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 44)
}

func TestPipelineBuggyScalingDetected(t *testing.T) {
	b, err := Pipeline(2, true)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.NewChecker(core.Options{}).Check(b.Gs, b.Gd, b.Ri)
	var re *core.RefinementError
	if !errors.As(err, &re) {
		t.Fatalf("unscaled pipeline losses must fail refinement, got %v", err)
	}
	if re.Op.Label != "stage1/loss" {
		t.Fatalf("localized to %q, want stage1/loss", re.Op.Label)
	}
}

func TestContextParallelRefines(t *testing.T) {
	b, err := ContextParallel(2)
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 45)
}

func TestContextParallelFourRanks(t *testing.T) {
	b, err := ContextParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 46)
}
