package models

import (
	"fmt"

	"entangle/internal/autodiff"
	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/strategy"
)

// SeedMoEBwd builds the forward+backward ByteDance workload (the
// paper checks "both the forward and the backward pass" for the
// internal model, §6.1). The forward pass is a gated MoE MLP with a
// squared-error training loss; the backward graphs are produced
// mechanically by internal/autodiff — applied to the sequential graph
// for G_s and to the hand-distributed EP implementation for G_d, the
// way torch.autograd differentiates through collectives. Gradients of
// the expert weights and the input become additional graph outputs.
func SeedMoEBwd(opt Options) (*Built, error) {
	opt, err := opt.validated("seedmoe-bwd")
	if err != nil {
		return nil, err
	}
	c := opt.Cfg
	if c.Seq == 0 {
		c = SeedMoEConfig()
	}
	if c.Experts%opt.TP != 0 {
		return nil, fmt.Errorf("models: seedmoe-bwd: experts=%d not divisible by %d", c.Experts, opt.TP)
	}

	// Sequential forward: x → gated experts → sum → squared error.
	bs := graph.NewBuilder("seedmoe-bwd-seq", nil)
	S, H, F := int64(c.Seq), int64(c.Hidden), int64(c.FFN)
	x := bs.Input("x", shape.Of(S, H))
	target := bs.Input("target", shape.Of(S, H))
	var w1s, w2s, gates []graph.TensorID
	weighted := make([]graph.TensorID, c.Experts)
	for e := 0; e < c.Experts; e++ {
		p := func(s string) string { return fmt.Sprintf("expert%d/%s", e, s) }
		w1 := bs.Input(p("w1"), shape.Of(H, F))
		w2 := bs.Input(p("w2"), shape.Of(F, H))
		gate := bs.Input(p("gate"), shape.Of(S, 1))
		w1s, w2s, gates = append(w1s, w1), append(w2s, w2), append(gates, gate)
		h := bs.MatMul(p("fc1"), x, w1)
		act := bs.Unary(p("silu"), "silu", h)
		o := bs.MatMul(p("fc2"), act, w2)
		weighted[e] = bs.Mul(p("weighted"), gate, o)
	}
	moe := bs.Op("sum", "combine", "combine.out", "", nil, weighted...)
	loss := bs.SquaredError("loss", moe, target)
	bs.Output(loss)
	gsFwd, err := bs.Build()
	if err != nil {
		return nil, err
	}
	wrt := append(append([]graph.TensorID{}, w1s...), w2s...)
	wrt = append(wrt, x)
	gs, gsGrads, err := autodiff.Gradient(gsFwd, loss, wrt)
	if err != nil {
		return nil, err
	}
	_ = gsGrads

	// Distributed forward (EP over opt.TP ranks), then autodiff.
	env := strategy.NewEnv(gs, "seedmoe-bwd-dist", opt.TP)
	R := opt.TP
	localExperts := c.Experts / R
	b := env.B
	xs := env.Shard("x", 0)
	ts := env.Shard("target", 0)
	xg := b.AllGather("gather_x", 0, xs...)
	partials := make([]graph.TensorID, R)
	var gdW1, gdW2 []graph.TensorID
	for r := 0; r < R; r++ {
		var acc graph.TensorID
		for le := 0; le < localExperts; le++ {
			e := r*localExperts + le
			p := func(s string) string { return fmt.Sprintf("expert%d/%s", e, s) }
			w1 := env.Shared(p("w1"))
			w2 := env.Shared(p("w2"))
			gdW1, gdW2 = append(gdW1, w1), append(gdW2, w2)
			gate := env.Shared(p("gate"))
			h := b.MatMul(fmt.Sprintf("r%d/%s", r, p("fc1")), xg[r], w1)
			act := b.Unary(fmt.Sprintf("r%d/%s", r, p("silu")), "silu", h)
			o := b.MatMul(fmt.Sprintf("r%d/%s", r, p("fc2")), act, w2)
			wt := b.Mul(fmt.Sprintf("r%d/%s", r, p("weighted")), gate, o)
			if le == 0 {
				acc = wt
			} else {
				acc = b.Add(fmt.Sprintf("r%d/acc%d", r, le), acc, wt)
			}
		}
		partials[r] = acc
	}
	moeShards := b.ReduceScatter("moe/reducescatter", 0, partials...)
	lossParts := make([]graph.TensorID, R)
	for r := 0; r < R; r++ {
		lossParts[r] = b.SquaredError(fmt.Sprintf("r%d/loss", r), moeShards[r], ts[r])
	}
	lossAll := b.AllReduce("loss/allreduce", lossParts...)
	b.Output(lossAll[0])
	gdFwd, err := env.Build()
	if err != nil {
		return nil, err
	}
	gdWrt := append(append([]graph.TensorID{}, gdW1...), gdW2...)
	for r := 0; r < R; r++ {
		t, _ := gdFwd.TensorByName(fmt.Sprintf("r%d/x", r))
		gdWrt = append(gdWrt, t.ID)
	}
	gd, gdGrads, err := autodiff.Gradient(gdFwd, gdFwd.Outputs[0], gdWrt)
	if err != nil {
		return nil, err
	}
	_ = gdGrads

	// The backward seed of G_s maps to the backward seed of G_d.
	seedGs, _ := gs.TensorByName("loss.out.grad")
	seedGd, ok := gd.TensorByName("loss/allreduce.out0.grad")
	if !ok || seedGs == nil {
		return nil, fmt.Errorf("models: seedmoe-bwd: missing backward seeds")
	}
	env.Ri.Add(seedGs.ID, relation.GdLeaf(seedGd))
	env.Derivs[seedGd.Name] = strategy.Derivation{GsInput: seedGs.Name, Kind: strategy.DeriveReplicate}

	// The G_s gradient of a sequence-sharded input concatenates the
	// per-rank shard gradients: that mapping is what the checker must
	// discover, so R_i only relates the forward inputs and the seed.
	return &Built{Name: "SeedMoE-Bwd", Gs: gs, Gd: gd, Ri: env.Ri, Env: env}, nil
}

// GradSyncModule names the module whose weight gradient needs a
// synchronizing all-reduce — the three "missing all-reduce in the
// optimizer" bugs of §6.2 differ only in which module they hit.
type GradSyncModule string

const (
	// ModuleLayerNorm is bug 5: a layernorm weight not registered with
	// the SP-group optimizer (ByteDance).
	ModuleLayerNorm GradSyncModule = "layernorm_w"
	// ModuleMoERouter is bug 8: the MoE router weight under TP+SP
	// (Megatron-LM #599).
	ModuleMoERouter GradSyncModule = "router_w"
	// ModuleTELayerNorm is bug 9: TransformerEngine's LayerNorm/RMSNorm
	// rewrite dropping the SP gradient all-reduce (TE #1528).
	ModuleTELayerNorm GradSyncModule = "te_layernorm_w"
)

// GradSync builds the optimizer gradient-synchronization workload used
// by bugs 5, 8 and 9: a shared elementwise weight (the role a
// layernorm or router weight plays) applied to sequence-sharded
// activations, replicated across ranks as distributed optimizers store
// it. Each rank's backward pass computes only its shard's partial
// weight gradient; a correct optimizer sums them before stepping.
// With synced=false that synchronization is omitted.
//
// Refinement alone holds either way — the partial gradients still sum
// cleanly — which is exactly why the paper checks these three bugs
// against user expectations (§4.4): the user expects each rank's
// gradient output to already equal the full gradient. The returned
// Built carries that expectation in ExpectFs/ExpectFd.
func GradSync(module GradSyncModule, tp int, synced bool) (*Built, error) {
	if tp <= 0 {
		tp = 2
	}
	c := Config{Seq: 8, Hidden: 4}
	S, H := int64(c.Seq), int64(c.Hidden)
	if int(S)%tp != 0 {
		return nil, fmt.Errorf("models: gradsync: seq %d not divisible by %d", S, tp)
	}

	bs := graph.NewBuilder("gradsync-seq", nil)
	x := bs.Input("x", shape.Of(S, H))
	w := bs.Input(string(module), shape.Of(1, H))
	target := bs.Input("target", shape.Of(S, H))
	y := bs.Mul("apply_weight", w, x)
	loss := bs.SquaredError("loss", y, target)
	bs.Output(loss)
	gsFwd, err := bs.Build()
	if err != nil {
		return nil, err
	}
	gs, gsGrads, err := autodiff.Gradient(gsFwd, loss, []graph.TensorID{w})
	if err != nil {
		return nil, err
	}

	env := strategy.NewEnv(gs, "gradsync-dist", tp)
	b := env.B
	xs := env.Shard("x", 0)
	ts := env.Shard("target", 0)
	ws := env.Replicate(string(module))
	lossParts := make([]graph.TensorID, tp)
	for r := 0; r < tp; r++ {
		yr := b.Mul(fmt.Sprintf("r%d/apply_weight", r), ws[r], xs[r])
		lossParts[r] = b.SquaredError(fmt.Sprintf("r%d/loss", r), yr, ts[r])
	}
	lossAll := b.AllReduce("loss/allreduce", lossParts...)
	b.Output(lossAll[0])
	gdFwd, err := env.Build()
	if err != nil {
		return nil, err
	}
	gd, gdGrads, err := autodiff.Gradient(gdFwd, gdFwd.Outputs[0], ws)
	if err != nil {
		return nil, err
	}

	// The optimizer's gradient step: with synchronization, the summed
	// gradient replaces each rank's raw partial in the outputs.
	gradOuts := make([]graph.TensorID, tp)
	for r := 0; r < tp; r++ {
		gradOuts[r] = gdGrads[ws[r]]
	}
	// Gradient() appended the raw per-rank grads as outputs; keep only
	// the loss, then re-append the optimizer-visible gradients.
	gd.Outputs = gd.Outputs[:1]
	if synced {
		total, err := gd.Append(expr.OpSum, "optimizer/grad_sync",
			"optimizer/grad_sync.out", "", nil, gradOuts...)
		if err != nil {
			return nil, err
		}
		gd.Outputs = append(gd.Outputs, total)
		gradOuts = []graph.TensorID{total}
	} else {
		gd.Outputs = append(gd.Outputs, gradOuts...)
	}
	if err := gd.Validate(); err != nil {
		return nil, err
	}

	seedGs, _ := gs.TensorByName("loss.out.grad")
	seedGd, _ := gd.TensorByName("loss/allreduce.out0.grad")
	env.Ri.Add(seedGs.ID, relation.GdLeaf(seedGd))
	env.Derivs[seedGd.Name] = strategy.Derivation{GsInput: seedGs.Name, Kind: strategy.DeriveReplicate}

	// User expectation: the sequential weight gradient equals rank 0's
	// optimizer-visible gradient output, with no extra combination.
	built := &Built{Name: "GradSync/" + string(module), Gs: gs, Gd: gd, Ri: env.Ri, Env: env}
	built.ExpectFs = relation.GsLeaf(gs.Tensor(gsGrads[w]))
	built.ExpectFd = relation.GdLeaf(gd.Tensor(gradOuts[0]))
	return built, nil
}
