package models

import (
	"fmt"

	"entangle/internal/autodiff"
	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/strategy"
	"entangle/internal/sym"
)

// The paper's §6.1 notes that data parallelism and pipeline
// parallelism could not be evaluated "because of limitations of the
// graph capturing tool" (TorchDynamo's contiguous buffers and
// intermediate leaf tensors). Our capture substrate has no such
// limitation, so this file implements all three remaining §2.1
// strategies — DP, PP, and CP — as checkable workloads.

// DataParallel builds the data-parallelism workload: R replicas each
// train on a batch shard with a replicated weight; the loss is the
// batch mean and the weight gradients are all-reduced (DDP). The
// forward+backward graphs come from internal/autodiff on both sides.
// With synced=false the gradient all-reduce is omitted; as with the
// optimizer bugs, plain refinement still holds and the defect is
// caught by the ExpectFs/ExpectFd user expectation.
func DataParallel(replicas int, synced bool) (*Built, error) {
	if replicas <= 0 {
		replicas = 2
	}
	c := Config{Seq: 8, Hidden: 4, FFN: 2}
	if c.Seq%replicas != 0 {
		return nil, fmt.Errorf("models: dp: batch %d not divisible by %d replicas", c.Seq, replicas)
	}

	// Sequential: full-batch training step.
	bs := graph.NewBuilder("dp-seq", nil)
	B, D, O := int64(c.Seq), int64(c.Hidden), int64(c.FFN)
	x := bs.Input("x", shape.Of(B, D))
	w := bs.Input("w", shape.Of(D, O))
	target := bs.Input("target", shape.Of(B, O))
	pred := bs.MatMul("linear", x, w)
	// Sum-reduction loss: with a mean loss, the 1/R factor would sit
	// at different positions in the two backward graphs, violating the
	// paper's same-operation-order assumption (§3.3) and producing the
	// documented false-alarm class. Summed losses keep both backward
	// graphs aligned — the choice frameworks make for the same reason.
	loss := bs.SquaredError("loss", pred, target)
	bs.Output(loss)
	gsFwd, err := bs.Build()
	if err != nil {
		return nil, err
	}
	gs, gsGrads, err := autodiff.Gradient(gsFwd, loss, []graph.TensorID{w})
	if err != nil {
		return nil, err
	}

	// Distributed: per-replica shards, replicated weight, scaled
	// per-replica losses all-reduced into the batch mean.
	env := strategy.NewEnv(gs, "dp-dist", replicas)
	b := env.B
	xs := env.Shard("x", 0)
	ts := env.Shard("target", 0)
	ws := env.Replicate("w")
	lossParts := make([]graph.TensorID, replicas)
	for r := 0; r < replicas; r++ {
		p := b.MatMul(fmt.Sprintf("r%d/linear", r), xs[r], ws[r])
		lossParts[r] = b.SquaredError(fmt.Sprintf("r%d/loss", r), p, ts[r])
	}
	lossAll := b.AllReduce("loss/allreduce", lossParts...)
	b.Output(lossAll[0])
	gdFwd, err := env.Build()
	if err != nil {
		return nil, err
	}
	gd, gdGrads, err := autodiff.Gradient(gdFwd, gdFwd.Outputs[0], ws)
	if err != nil {
		return nil, err
	}

	gradOuts := make([]graph.TensorID, replicas)
	for r := 0; r < replicas; r++ {
		gradOuts[r] = gdGrads[ws[r]]
	}
	gd.Outputs = gd.Outputs[:1]
	if synced {
		total, err := gd.Append(expr.OpSum, "ddp/grad_allreduce",
			"ddp/grad_allreduce.out", "", nil, gradOuts...)
		if err != nil {
			return nil, err
		}
		gd.Outputs = append(gd.Outputs, total)
		gradOuts = []graph.TensorID{total}
	} else {
		gd.Outputs = append(gd.Outputs, gradOuts...)
	}
	if err := gd.Validate(); err != nil {
		return nil, err
	}

	seedGs, _ := gs.TensorByName("loss.out.grad")
	seedGd, _ := gd.TensorByName("loss/allreduce.out0.grad")
	env.Ri.Add(seedGs.ID, relation.GdLeaf(seedGd))
	env.Derivs[seedGd.Name] = strategy.Derivation{GsInput: seedGs.Name, Kind: strategy.DeriveReplicate}

	built := &Built{Name: "DataParallel", Gs: gs, Gd: gd, Ri: env.Ri, Env: env}
	built.ExpectFs = relation.GsLeaf(gs.Tensor(gsGrads[w]))
	built.ExpectFd = relation.GdLeaf(gd.Tensor(gradOuts[0]))
	return built, nil
}

// Pipeline builds the pipeline-parallelism workload: a two-stage MLP
// whose layers live on different pipeline stages, with the batch split
// into microbatches whose losses are accumulated (1F1B's numerical
// effect). Stage boundaries are ordinary tensors in the captured
// graph, so the checker sees the whole pipeline at once.
func Pipeline(microbatches int, buggyScaling bool) (*Built, error) {
	if microbatches <= 0 {
		microbatches = 2
	}
	c := Config{Seq: 8, Hidden: 4, FFN: 6}
	if c.Seq%microbatches != 0 {
		return nil, fmt.Errorf("models: pp: batch %d not divisible by %d microbatches", c.Seq, microbatches)
	}
	B, D, F := int64(c.Seq), int64(c.Hidden), int64(c.FFN)

	bs := graph.NewBuilder("pp-seq", nil)
	x := bs.Input("x", shape.Of(B, D))
	w1 := bs.Input("stage0/w", shape.Of(D, F))
	w2 := bs.Input("stage1/w", shape.Of(F, D))
	target := bs.Input("target", shape.Of(B, D))
	h := bs.MatMul("stage0/fc", x, w1)
	a := bs.Unary("stage0/act", "gelu", h)
	y := bs.MatMul("stage1/fc", a, w2)
	loss := bs.MSELoss("stage1/loss", y, target)
	bs.Output(loss)
	gs, err := bs.Build()
	if err != nil {
		return nil, err
	}

	env := strategy.NewEnv(gs, "pp-dist", microbatches)
	b := env.B
	xs := env.Shard("x", 0)
	ts := env.Shard("target", 0)
	w1d := env.Shared("stage0/w")
	w2d := env.Shared("stage1/w")
	losses := make([]graph.TensorID, microbatches)
	for m := 0; m < microbatches; m++ {
		// Stage 0 on pipeline rank 0, stage 1 on rank 1; the
		// activation crossing is the stage boundary tensor.
		hm := b.MatMul(fmt.Sprintf("mb%d/stage0/fc", m), xs[m], w1d)
		am := b.Unary(fmt.Sprintf("mb%d/stage0/act", m), "gelu", hm)
		ym := b.MatMul(fmt.Sprintf("mb%d/stage1/fc", m), am, w2d)
		lm := b.MSELoss(fmt.Sprintf("mb%d/stage1/loss", m), ym, ts[m])
		if !buggyScaling {
			lm = b.Scale(fmt.Sprintf("mb%d/stage1/loss_scale", m), lm, 1, int64(microbatches))
		}
		losses[m] = lm
	}
	total := b.Op("sum", "accumulate", "accumulate.out", "", nil, losses...)
	b.Output(total)
	gd, err := env.Build()
	if err != nil {
		return nil, err
	}
	return &Built{Name: "Pipeline", Gs: gs, Gd: gd, Ri: env.Ri, Env: env}, nil
}

// ContextParallel builds the context-parallelism workload (blockwise /
// ring attention's numerical contract): queries are sequence-sharded
// per rank while keys and values stay whole, so each rank attends its
// context block against the full sequence.
func ContextParallel(ranks int) (*Built, error) {
	if ranks <= 0 {
		ranks = 2
	}
	c := Config{Seq: 8, Hidden: 16, Heads: 4}
	if c.Seq%ranks != 0 {
		return nil, fmt.Errorf("models: cp: seq %d not divisible by %d", c.Seq, ranks)
	}
	S, H := int64(c.Seq), int64(c.Hidden)

	bs := graph.NewBuilder("cp-seq", nil)
	x := bs.Input("x", shape.Of(S, H))
	qw := bs.Input("q_w", shape.Of(H, H))
	kw := bs.Input("k_w", shape.Of(H, H))
	vw := bs.Input("v_w", shape.Of(H, H))
	q := bs.MatMul("q", x, qw)
	k := bs.MatMul("k", x, kw)
	v := bs.MatMul("v", x, vw)
	attn := bs.Attention("attn", q, k, v, int64(c.Heads))
	bs.Output(attn)
	gs, err := bs.Build()
	if err != nil {
		return nil, err
	}

	env := strategy.NewEnv(gs, "cp-dist", ranks)
	b := env.B
	xs := env.Shard("x", 0)
	qwD := env.Shared("q_w")
	kwD := env.Shared("k_w")
	vwD := env.Shared("v_w")
	// Each rank projects its context block; k/v are gathered to the
	// full sequence (the ring exchange's fixed point).
	qLocal := make([]graph.TensorID, ranks)
	kLocal := make([]graph.TensorID, ranks)
	vLocal := make([]graph.TensorID, ranks)
	for r := 0; r < ranks; r++ {
		qLocal[r] = b.MatMul(fmt.Sprintf("r%d/q", r), xs[r], qwD)
		kLocal[r] = b.MatMul(fmt.Sprintf("r%d/k", r), xs[r], kwD)
		vLocal[r] = b.MatMul(fmt.Sprintf("r%d/v", r), xs[r], vwD)
	}
	kFull := b.AllGather("k/allgather", 0, kLocal...)
	vFull := b.AllGather("v/allgather", 0, vLocal...)
	outs := make([]graph.TensorID, ranks)
	for r := 0; r < ranks; r++ {
		outs[r] = b.Attention(fmt.Sprintf("r%d/attn", r), qLocal[r], kFull[r], vFull[r], int64(c.Heads))
	}
	b.Output(outs...)
	gd, err := env.Build()
	if err != nil {
		return nil, err
	}
	_ = sym.Const
	return &Built{Name: "ContextParallel", Gs: gs, Gd: gd, Ri: env.Ri, Env: env}, nil
}
