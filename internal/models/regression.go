package models

import (
	"fmt"

	"entangle/internal/graph"
	"entangle/internal/shape"
	"entangle/internal/strategy"
)

// RegressionConfig sizes the HuggingFace-transformers regression test
// case (Table 2): a linear model trained with MSE loss.
func RegressionConfig() Config {
	return Config{Seq: 8, Hidden: 4, FFN: 2, Layers: 1}
}

// Regression builds the gradient-accumulation workload of §6.2's
// bug 6. The sequential model computes the MSE loss over the full
// batch; the "distributed" implementation splits the batch into
// GradAccum microbatches and accumulates per-microbatch losses —
// which must each be scaled by 1/k. Bug6GradAccumScale omits the
// scaling, reproducing huggingface/transformers#14638.
//
// Gradient accumulation runs on one device, so the implementation
// graph has a single rank whose inputs are microbatch shards; the
// strategy machinery treats microbatches exactly like ranks (the paper
// makes the same identification: "This approach is similar to the
// distribution strategies considered above").
func Regression(opt Options) (*Built, error) {
	k := opt.GradAccum
	if k <= 0 {
		k = 2
	}
	c := opt.Cfg
	if c.Seq == 0 {
		c = RegressionConfig()
	}
	if c.Seq%k != 0 {
		return nil, fmt.Errorf("models: regression: batch %d not divisible by %d microbatches", c.Seq, k)
	}

	gs, err := regressionSequential(c)
	if err != nil {
		return nil, err
	}
	env := strategy.NewEnv(gs, "regression-accum", k)
	if err := regressionAccumulated(env, c, opt); err != nil {
		return nil, err
	}
	gd, err := env.Build()
	if err != nil {
		return nil, err
	}
	return &Built{Name: "Regression", Gs: gs, Gd: gd, Ri: env.Ri, Env: env}, nil
}

func regressionSequential(c Config) (*graph.Graph, error) {
	b := graph.NewBuilder("regression-seq", nil)
	B, D, O := int64(c.Seq), int64(c.Hidden), int64(c.FFN)
	x := b.Input("x", shape.Of(B, D))
	w := b.Input("w", shape.Of(D, O))
	target := b.Input("target", shape.Of(B, O))
	pred := b.MatMul("linear", x, w)
	loss := b.MSELoss("mse", pred, target)
	b.Output(loss)
	return b.Build()
}

func regressionAccumulated(e *strategy.Env, c Config, opt Options) error {
	k := e.R
	b := e.B
	xs := e.Shard("x", 0)
	ts := e.Shard("target", 0)
	w := e.Shared("w")
	losses := make([]graph.TensorID, k)
	for i := 0; i < k; i++ {
		pred := b.MatMul(fmt.Sprintf("mb%d/linear", i), xs[i], w)
		l := b.MSELoss(fmt.Sprintf("mb%d/mse", i), pred, ts[i])
		if opt.Bug != Bug6GradAccumScale {
			l = b.Scale(fmt.Sprintf("mb%d/mse_scale", i), l, 1, int64(k))
		}
		losses[i] = l
	}
	total := b.Op("sum", "accumulate", "accumulate.out", "", nil, losses...)
	b.Output(total)
	return b.Err()
}
