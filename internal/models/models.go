// Package models builds the evaluation workloads of the paper's
// Table 2 as pairs of computation graphs: a sequential specification
// G_s and a hand-distributed implementation G_d with its clean input
// relation R_i. The distributed builders are written the way
// Megatron-LM / vLLM / NeuronX engineers write parallel modules —
// using the layer library in internal/strategy — and accept bug
// injections reproducing the nine defects of §6.2 / Table 3.
package models

import (
	"fmt"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/relation"
	"entangle/internal/strategy"
)

// Config sizes a model. Extents are kept small: the checker is static,
// so verification cost depends on graph structure, not tensor sizes,
// and small extents keep the differential tests fast.
type Config struct {
	Seq     int // sequence length
	Hidden  int // model width
	Heads   int // attention heads
	FFN     int // MLP intermediate width
	Vocab   int // vocabulary size
	Experts int // MoE experts
	Layers  int // transformer layers
}

// Bug selects one of the §6.2 defects to inject into the distributed
// implementation.
type Bug int

const (
	BugNone Bug = iota
	// Bug1RoPEOffset: wrong cos/sin slice offsets under SP (ByteDance).
	Bug1RoPEOffset
	// Bug2AuxLossScale: auxiliary loss not divided by the TP size.
	Bug2AuxLossScale
	// Bug3PadSlice: mismatched padding and slicing around all-gather.
	Bug3PadSlice
	// Bug4ShardedExperts: expert weights sharded instead of replicated
	// under SP.
	Bug4ShardedExperts
	// Bug6GradAccumScale: microbatch losses accumulated without the
	// 1/k scaling (HuggingFace transformers).
	Bug6GradAccumScale
	// Bug7MissingAllReduce: row-parallel linear missing its all-reduce
	// (Megatron-LM misconfiguration).
	Bug7MissingAllReduce
)

func (b Bug) String() string {
	switch b {
	case BugNone:
		return "none"
	case Bug1RoPEOffset:
		return "bug1-rope-offset"
	case Bug2AuxLossScale:
		return "bug2-auxloss-scale"
	case Bug3PadSlice:
		return "bug3-pad-slice"
	case Bug4ShardedExperts:
		return "bug4-sharded-experts"
	case Bug6GradAccumScale:
		return "bug6-grad-accum-scale"
	case Bug7MissingAllReduce:
		return "bug7-missing-allreduce"
	}
	return fmt.Sprintf("bug(%d)", int(b))
}

// Options select a model instantiation.
type Options struct {
	Cfg Config
	// TP is the tensor-parallel degree (also the SP/EP group size).
	TP int
	// SP enables sequence parallelism on top of TP.
	SP bool
	// VP enables vocabulary parallelism for the embedding.
	VP bool
	// GradAccum is the microbatch count for gradient accumulation
	// (regression model only).
	GradAccum int
	// Bug injects a defect into the distributed implementation.
	Bug Bug
}

// Built is a ready-to-verify model pair.
type Built struct {
	Name string
	Gs   *graph.Graph
	Gd   *graph.Graph
	Ri   *relation.Relation
	// Env retains the strategy environment for numeric input
	// splitting in differential tests.
	Env *strategy.Env
	// ExpectFs/ExpectFd, when non-nil, carry a §4.4 user expectation
	// to check with core.CheckExpectation (the GradSync workloads).
	ExpectFs *expr.Term
	ExpectFd *expr.Term
}

// OperatorTotal returns |G_s| + |G_d|, the quantity annotated on the
// paper's Figure 3.
func (b *Built) OperatorTotal() int {
	return b.Gs.OperatorCount() + b.Gd.OperatorCount()
}

func (o Options) validated(name string) (Options, error) {
	if o.TP <= 0 {
		o.TP = 2
	}
	c := &o.Cfg
	if c.Layers <= 0 {
		c.Layers = 1
	}
	div := func(what string, v int) error {
		if v%o.TP != 0 {
			return fmt.Errorf("models: %s: %s=%d not divisible by parallelism %d", name, what, v, o.TP)
		}
		return nil
	}
	if c.Hidden > 0 {
		if err := div("hidden", c.Hidden); err != nil {
			return o, err
		}
	}
	if c.Heads > 0 {
		if err := div("heads", c.Heads); err != nil {
			return o, err
		}
	}
	if c.FFN > 0 {
		if err := div("ffn", c.FFN); err != nil {
			return o, err
		}
	}
	if c.Vocab > 0 {
		if err := div("vocab", c.Vocab); err != nil {
			return o, err
		}
	}
	if o.SP && c.Seq > 0 {
		if err := div("seq", c.Seq); err != nil {
			return o, err
		}
	}
	if c.Experts > 0 {
		if err := div("experts", c.Experts); err != nil {
			return o, err
		}
	}
	return o, nil
}
