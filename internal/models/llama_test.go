package models

import (
	"testing"
)

func TestLlamaTP2Refines(t *testing.T) {
	b, err := Llama(Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 11)
}

func TestLlamaTP4Refines(t *testing.T) {
	b, err := Llama(Options{TP: 4})
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 12)
}

func TestLlamaTP6Rejected(t *testing.T) {
	// Figure 4: "there is no data for parallelism size 6, because some
	// component cannot be evenly partitioned by 6."
	if _, err := Llama(Options{TP: 6}); err == nil {
		t.Fatal("llama at degree 6 must be rejected (heads=8)")
	}
}

func TestQwen2TP2Refines(t *testing.T) {
	b, err := Qwen2(Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 13)
}

func TestQwen2UsesFusedOps(t *testing.T) {
	b, err := Qwen2(Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, n := range b.Gs.Nodes {
		if n.Op == "fused_add_rmsnorm" || n.Op == "fused_silu_mul" {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("qwen2 sequential graph should use fused kernels, found %d", found)
	}
}
