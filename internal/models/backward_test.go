package models

import (
	"errors"
	"testing"

	"entangle/internal/core"
)

func TestRegressionRefines(t *testing.T) {
	b, err := Regression(Options{GradAccum: 2})
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 31)
}

func TestRegressionFourMicrobatches(t *testing.T) {
	b, err := Regression(Options{GradAccum: 4})
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 32)
}

func TestRegressionBug6Detected(t *testing.T) {
	b, err := Regression(Options{GradAccum: 2, Bug: Bug6GradAccumScale})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.NewChecker(core.Options{}).Check(b.Gs, b.Gd, b.Ri)
	var re *core.RefinementError
	if !errors.As(err, &re) {
		t.Fatalf("bug 6 must be detected, got %v", err)
	}
	if re.Op.Label != "mse" {
		t.Fatalf("bug 6 localized to %q, want mse (the unscaled accumulated loss)", re.Op.Label)
	}
}

func TestSeedMoEBwdRefines(t *testing.T) {
	b, err := SeedMoEBwd(Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	report := verify(t, b)
	diffTest(t, b, report, 33)
}

func TestGradSyncSyncedMeetsExpectation(t *testing.T) {
	for _, mod := range []GradSyncModule{ModuleLayerNorm, ModuleMoERouter, ModuleTELayerNorm} {
		b, err := GradSync(mod, 2, true)
		if err != nil {
			t.Fatal(err)
		}
		// Plain refinement holds.
		verify(t, b)
		// And the §4.4 expectation holds too.
		err = core.NewChecker(core.Options{}).CheckExpectation(b.Gs, b.Gd, b.Ri,
			core.Expectation{Fs: b.ExpectFs, Fd: b.ExpectFd})
		if err != nil {
			t.Fatalf("%s synced: expectation should hold: %v", mod, err)
		}
	}
}

func TestGradSyncUnsyncedViolatesExpectation(t *testing.T) {
	// Bugs 5, 8, 9: plain refinement still holds (partial gradients
	// sum cleanly), but the user expectation is violated.
	for _, mod := range []GradSyncModule{ModuleLayerNorm, ModuleMoERouter, ModuleTELayerNorm} {
		b, err := GradSync(mod, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		verify(t, b)
		err = core.NewChecker(core.Options{}).CheckExpectation(b.Gs, b.Gd, b.Ri,
			core.Expectation{Fs: b.ExpectFs, Fd: b.ExpectFd})
		var ee *core.ExpectationError
		if !errors.As(err, &ee) {
			t.Fatalf("%s unsynced: expectation must be violated, got %v", mod, err)
		}
	}
}
