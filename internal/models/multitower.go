package models

import (
	"fmt"

	"entangle/internal/graph"
	"entangle/internal/shape"
	"entangle/internal/strategy"
	"entangle/internal/sym"
)

// MultiTower builds an ensemble workload: `towers` independent
// normalized MLP towers read one shared input and their outputs are
// concatenated — the shape of multi-task heads, mixture ensembles and
// wide recommender towers. Unlike the transformer stacks (whose G_s is
// a chain of layers), the towers form a wide anti-chain in G_s, which
// makes this the stress model for the wavefront scheduler: with W
// workers, up to W towers verify concurrently.
//
// The distributed implementation runs every tower tensor-parallel over
// tp ranks (Megatron MLP: column-parallel fc1, row-parallel fc2 with
// an all-reduce) and concatenates on rank 0.
func MultiTower(towers, tp int) (*Built, error) {
	if towers < 1 {
		return nil, fmt.Errorf("models: multitower: towers=%d < 1", towers)
	}
	const (
		S = 8  // sequence length
		H = 16 // hidden width
		F = 32 // tower FFN width
	)
	if tp < 1 || F%tp != 0 || H%tp != 0 {
		return nil, fmt.Errorf("models: multitower: widths (%d, %d) not divisible by tp=%d", H, F, tp)
	}

	b := graph.NewBuilder("multitower-seq", nil)
	x := b.Input("x", shape.Of(S, H))
	outs := make([]graph.TensorID, towers)
	for t := 0; t < towers; t++ {
		p := func(s string) string { return fmt.Sprintf("T%d/%s", t, s) }
		lnw := b.Input(p("ln_w"), shape.Of(H))
		lnb := b.Input(p("ln_b"), shape.Of(H))
		fc1 := b.Input(p("fc1_w"), shape.Of(H, F))
		fc2 := b.Input(p("fc2_w"), shape.Of(F, H))
		a := b.LayerNorm(p("ln"), x, lnw, lnb)
		h := b.MatMul(p("fc1"), a, fc1)
		g := b.Unary(p("gelu"), "gelu", h)
		outs[t] = b.MatMul(p("fc2"), g, fc2)
	}
	combined := b.Concat("combine", sym.Const(0), outs...)
	b.Output(combined)
	gs, err := b.Build()
	if err != nil {
		return nil, err
	}

	env := strategy.NewEnv(gs, "multitower-dist", tp)
	db := env.B
	R := env.R
	xd := env.Replicate("x")
	distOuts := make([][]graph.TensorID, towers)
	for t := 0; t < towers; t++ {
		p := func(s string) string { return fmt.Sprintf("T%d/%s", t, s) }
		lnw := env.Shared(p("ln_w"))
		lnb := env.Shared(p("ln_b"))
		a := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			a[r] = db.LayerNorm(fmt.Sprintf("r%d/%s", r, p("ln")), xd[r], lnw, lnb)
		}
		h := env.ColumnParallelLinear(p("fc1"), a, p("fc1_w"))
		g := make([]graph.TensorID, R)
		for r := 0; r < R; r++ {
			g[r] = db.Unary(fmt.Sprintf("r%d/%s", r, p("gelu")), "gelu", h[r])
		}
		distOuts[t] = env.RowParallelLinear(p("fc2"), g, p("fc2_w"), strategy.ReduceAllReduce)
	}
	// After the all-reduce every rank holds each tower's full output;
	// rank 0 concatenates them, mirroring the sequential combine.
	rank0 := make([]graph.TensorID, towers)
	for t := 0; t < towers; t++ {
		rank0[t] = distOuts[t][0]
	}
	combinedD := db.Concat("r0/combine", sym.Const(0), rank0...)
	db.Output(combinedD)
	gd, err := env.Build()
	if err != nil {
		return nil, err
	}
	return &Built{Name: "MultiTower", Gs: gs, Gd: gd, Ri: env.Ri, Env: env}, nil
}
