// Package hlo implements a text front end for an HLO-flavoured IR —
// the role of the paper's 377-line XLA-to-intermediate-format
// translator used for the Transformers-NeuronX Llama-3 workload (§5).
// The printer emits computation graphs in HLO-module syntax; the
// parser reads them back into graph.Graph, mapping HLO operator names
// (dot, concatenate, slice, broadcast-free subset) onto the shared
// operator vocabulary so, as the paper observes, HLO models "reuse
// many of the popular lemmas".
package hlo

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// opToHLO maps internal operators to HLO-ish mnemonics.
var opToHLO = map[expr.Op]string{
	expr.OpMatMul:          "dot",
	expr.OpAdd:             "add",
	expr.OpSub:             "subtract",
	expr.OpMul:             "multiply",
	expr.OpDiv:             "divide",
	expr.OpSum:             "add-many",
	expr.OpScale:           "scale",
	expr.OpUnary:           "map",
	expr.OpIdentity:        "copy",
	expr.OpConcat:          "concatenate",
	expr.OpSlice:           "slice",
	expr.OpPad:             "pad",
	expr.OpTranspose:       "transpose",
	expr.OpReshape:         "reshape",
	expr.OpReduceSum:       "reduce-add",
	expr.OpSoftmax:         "softmax",
	expr.OpLayerNorm:       "layer-norm",
	expr.OpRMSNorm:         "rms-norm",
	expr.OpEmbedding:       "gather-rows",
	expr.OpEmbeddingShard:  "gather-rows-shard",
	expr.OpRoPE:            "rotary",
	expr.OpAttention:       "sdpa",
	expr.OpMSELoss:         "mse",
	expr.OpSquaredError:    "squared-error",
	expr.OpRouter:          "router",
	expr.OpAuxLoss:         "aux-loss",
	expr.OpFusedAddRMSNorm: "fused-add-rms-norm",
	expr.OpFusedSiluMul:    "fused-silu-mul",
	expr.OpAllReduce:       "all-reduce",
	expr.OpReduceScatter:   "reduce-scatter",
	expr.OpAllGather:       "all-gather",
}

var hloToOp = func() map[string]expr.Op {
	m := make(map[string]expr.Op, len(opToHLO))
	for k, v := range opToHLO {
		m[v] = k
	}
	return m
}()

// Print writes g as an HLO-flavoured module:
//
//	HloModule gpt-seq
//	%ids = f32[8] parameter(0)
//	%embed.out = f32[8,16] gather-rows(%emb_w, %ids)
//	%t = f32[4,4] slice(%x), ints={0,0,4}
//	ROOT %tuple = (…) tuple(%logits)
func Print(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "HloModule %s\n", g.Name)
	for _, a := range g.Ctx.Assumptions() {
		fmt.Fprintf(bw, "// assume %s >= 0\n", a)
	}
	for i, in := range g.Inputs {
		t := g.Tensor(in)
		fmt.Fprintf(bw, "%%%s = f32%s parameter(%d)\n", t.Name, shapeText(t.Shape), i)
	}
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	for _, n := range order {
		mn, ok := opToHLO[n.Op]
		if !ok {
			return fmt.Errorf("hlo: no mnemonic for %q", n.Op)
		}
		args := make([]string, len(n.Inputs))
		for i, in := range n.Inputs {
			args[i] = "%" + g.Tensor(in).Name
		}
		for oi, out := range n.Outputs {
			t := g.Tensor(out)
			fmt.Fprintf(bw, "%%%s = f32%s %s(%s)", t.Name, shapeText(t.Shape), mn, strings.Join(args, ", "))
			var attrs []string
			if len(n.Ints) > 0 {
				var ints []string
				for _, e := range n.Ints {
					ints = append(ints, e.String())
				}
				attrs = append(attrs, "ints={"+strings.Join(ints, ",")+"}")
			}
			if n.Str != "" {
				attrs = append(attrs, fmt.Sprintf("fn=%q", n.Str))
			}
			if len(n.Outputs) > 1 {
				attrs = append(attrs, fmt.Sprintf("out=%d", oi))
			}
			if n.Label != "" && oi == 0 {
				attrs = append(attrs, fmt.Sprintf("label=%q", n.Label))
			}
			if len(attrs) > 0 {
				fmt.Fprintf(bw, ", %s", strings.Join(attrs, ", "))
			}
			fmt.Fprintln(bw)
		}
	}
	roots := make([]string, len(g.Outputs))
	for i, o := range g.Outputs {
		roots[i] = "%" + g.Tensor(o).Name
	}
	fmt.Fprintf(bw, "ROOT %%result = tuple(%s)\n", strings.Join(roots, ", "))
	return bw.Flush()
}

func shapeText(s shape.Shape) string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = d.String()
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// parsedLine is one instruction before graph assembly.
type parsedLine struct {
	name  string
	shape shape.Shape
	mn    string
	args  []string
	ints  []sym.Expr
	fn    string
	out   int
	label string
	param int // ≥0 for parameters
}

// Parse reads an HLO-flavoured module back into a graph.
func Parse(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var name string
	ctx := sym.NewContext()
	var lines []parsedLine
	var roots []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "HloModule "):
			name = strings.TrimSpace(strings.TrimPrefix(line, "HloModule "))
		case strings.HasPrefix(line, "// assume "):
			txt := strings.TrimSuffix(strings.TrimPrefix(line, "// assume "), " >= 0")
			e, err := sym.Parse(txt)
			if err != nil {
				return nil, fmt.Errorf("hlo:%d: %v", lineNo, err)
			}
			ctx.AssumeGE(e, sym.Const(0))
		case strings.HasPrefix(line, "//"):
			continue
		case strings.HasPrefix(line, "ROOT "):
			open := strings.Index(line, "tuple(")
			if open < 0 || !strings.HasSuffix(line, ")") {
				return nil, fmt.Errorf("hlo:%d: malformed ROOT", lineNo)
			}
			inner := line[open+len("tuple(") : len(line)-1]
			for _, p := range strings.Split(inner, ",") {
				p = strings.TrimSpace(p)
				roots = append(roots, strings.TrimPrefix(p, "%"))
			}
		case strings.HasPrefix(line, "%"):
			pl, err := parseInstruction(line)
			if err != nil {
				return nil, fmt.Errorf("hlo:%d: %v", lineNo, err)
			}
			lines = append(lines, pl)
		default:
			return nil, fmt.Errorf("hlo:%d: unrecognized line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return assemble(name, ctx, lines, roots)
}

func parseInstruction(line string) (parsedLine, error) {
	var pl parsedLine
	pl.param = -1
	pl.out = -1
	eq := strings.Index(line, " = ")
	if eq < 0 {
		return pl, fmt.Errorf("missing '='")
	}
	pl.name = strings.TrimPrefix(line[:eq], "%")
	rest := line[eq+3:]
	if !strings.HasPrefix(rest, "f32[") {
		return pl, fmt.Errorf("missing shape")
	}
	close := strings.Index(rest, "]")
	if close < 0 {
		return pl, fmt.Errorf("unterminated shape")
	}
	shapeTxt := rest[len("f32["):close]
	if shapeTxt != "" {
		for _, d := range strings.Split(shapeTxt, ",") {
			e, err := sym.Parse(strings.TrimSpace(d))
			if err != nil {
				return pl, err
			}
			pl.shape = append(pl.shape, e)
		}
	}
	rest = strings.TrimSpace(rest[close+1:])
	open := strings.Index(rest, "(")
	if open < 0 {
		return pl, fmt.Errorf("missing operand list")
	}
	pl.mn = strings.TrimSpace(rest[:open])
	depth := 0
	closeIdx := -1
	for i := open; i < len(rest); i++ {
		switch rest[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				closeIdx = i
			}
		}
		if closeIdx >= 0 {
			break
		}
	}
	if closeIdx < 0 {
		return pl, fmt.Errorf("unterminated operand list")
	}
	operands := strings.TrimSpace(rest[open+1 : closeIdx])
	if pl.mn == "parameter" {
		var idx int
		if _, err := fmt.Sscanf(operands, "%d", &idx); err != nil {
			return pl, fmt.Errorf("bad parameter index %q", operands)
		}
		pl.param = idx
		return pl, nil
	}
	if operands != "" {
		for _, a := range strings.Split(operands, ",") {
			a = strings.TrimSpace(a)
			if !strings.HasPrefix(a, "%") {
				return pl, fmt.Errorf("operand %q not a reference", a)
			}
			pl.args = append(pl.args, strings.TrimPrefix(a, "%"))
		}
	}
	attrs := strings.TrimSpace(rest[closeIdx+1:])
	attrs = strings.TrimPrefix(attrs, ",")
	for _, kv := range splitAttrs(attrs) {
		switch {
		case strings.HasPrefix(kv, "ints={"):
			inner := strings.TrimSuffix(strings.TrimPrefix(kv, "ints={"), "}")
			if inner != "" {
				for _, t := range strings.Split(inner, ",") {
					e, err := sym.Parse(strings.TrimSpace(t))
					if err != nil {
						return pl, err
					}
					pl.ints = append(pl.ints, e)
				}
			}
		case strings.HasPrefix(kv, "fn="):
			pl.fn = strings.Trim(strings.TrimPrefix(kv, "fn="), `"`)
		case strings.HasPrefix(kv, "out="):
			if _, err := fmt.Sscanf(strings.TrimPrefix(kv, "out="), "%d", &pl.out); err != nil {
				return pl, err
			}
		case strings.HasPrefix(kv, "label="):
			pl.label = strings.Trim(strings.TrimPrefix(kv, "label="), `"`)
		case kv == "":
		default:
			return pl, fmt.Errorf("unknown attribute %q", kv)
		}
	}
	return pl, nil
}

// splitAttrs splits "ints={1,2}, fn=\"x\"" on commas outside braces
// and quotes.
func splitAttrs(s string) []string {
	var out []string
	depth := 0
	quoted := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			depth--
		case '"':
			quoted = !quoted
		case ',':
			if depth == 0 && !quoted {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

func assemble(name string, ctx *sym.Context, lines []parsedLine, roots []string) (*graph.Graph, error) {
	b := graph.NewBuilder(name, ctx)
	ids := map[string]graph.TensorID{}

	// Parameters first, in declared order.
	var params []parsedLine
	for _, pl := range lines {
		if pl.param >= 0 {
			params = append(params, pl)
		}
	}
	sort.SliceStable(params, func(i, j int) bool { return params[i].param < params[j].param })
	for _, pl := range params {
		ids[pl.name] = b.Input(pl.name, pl.shape)
	}

	// Multi-output instructions appear once per output with out=N;
	// group consecutive lines with the same mnemonic and args.
	for i := 0; i < len(lines); i++ {
		pl := lines[i]
		if pl.param >= 0 {
			continue
		}
		op, ok := hloToOp[pl.mn]
		if !ok {
			return nil, fmt.Errorf("hlo: unknown mnemonic %q", pl.mn)
		}
		group := []parsedLine{pl}
		if pl.out >= 0 {
			for i+1 < len(lines) && lines[i+1].out >= 0 &&
				lines[i+1].mn == pl.mn && sameArgs(lines[i+1].args, pl.args) {
				i++
				group = append(group, lines[i])
			}
		}
		inputs := make([]graph.TensorID, len(pl.args))
		for j, a := range pl.args {
			id, ok := ids[a]
			if !ok {
				return nil, fmt.Errorf("hlo: %%%s references undefined %%%s", pl.name, a)
			}
			inputs[j] = id
		}
		outNames := make([]string, len(group))
		for j, g := range group {
			outNames[j] = g.name
		}
		outs := b.MultiOp(op, pl.label, outNames, pl.fn, pl.ints, inputs...)
		if b.Err() != nil {
			return nil, b.Err()
		}
		for j, g := range group {
			ids[g.name] = outs[j]
		}
	}
	for _, root := range roots {
		id, ok := ids[root]
		if !ok {
			return nil, fmt.Errorf("hlo: ROOT references undefined %%%s", root)
		}
		b.Output(id)
	}
	return b.Build()
}

func sameArgs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
