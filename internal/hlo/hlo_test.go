package hlo

import (
	"bytes"
	"strings"
	"testing"

	"entangle/internal/core"
	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/models"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

func roundTrip(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := Print(&buf, g); err != nil {
		t.Fatalf("print: %v", err)
	}
	g2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("parse: %v\nmodule:\n%s", err, buf.String())
	}
	if g2.OperatorCount() != g.OperatorCount() {
		t.Fatalf("round trip node count %d want %d", g2.OperatorCount(), g.OperatorCount())
	}
	if len(g2.Inputs) != len(g.Inputs) || len(g2.Outputs) != len(g.Outputs) {
		t.Fatalf("round trip io mismatch")
	}
	return g2
}

func TestRoundTripSimple(t *testing.T) {
	b := graph.NewBuilder("m", nil)
	x := b.Input("x", shape.Of(4, 8))
	w := b.Input("w", shape.Of(8, 2))
	y := b.MatMul("mm", x, w)
	z := b.Unary("act", "gelu", y)
	b.Output(z)
	g := b.MustBuild()
	g2 := roundTrip(t, g)
	n := g2.Nodes[1]
	if n.Str != "gelu" {
		t.Fatalf("fn attribute lost: %q", n.Str)
	}
	if n.Label != "act" {
		t.Fatalf("label lost: %q", n.Label)
	}
}

func TestRoundTripCollectives(t *testing.T) {
	b := graph.NewBuilder("m", nil)
	x0 := b.Input("x0", shape.Of(4, 8))
	x1 := b.Input("x1", shape.Of(4, 8))
	rs := b.ReduceScatter("rs", 0, x0, x1)
	ag := b.AllGather("ag", 0, rs...)
	b.Output(ag...)
	g := b.MustBuild()
	g2 := roundTrip(t, g)
	if g2.Nodes[0].Op != "reducescatter" || len(g2.Nodes[0].Outputs) != 2 {
		t.Fatalf("multi-output instruction lost: %+v", g2.Nodes[0])
	}
}

func TestRoundTripSymbolic(t *testing.T) {
	ctx := sym.NewContext()
	S := sym.Var("S")
	ctx.AssumeGE(S, sym.Const(2))
	b := graph.NewBuilder("m", ctx)
	x := b.Input("x", shape.Shape{S, sym.Const(8)})
	y := b.Unary("act", "relu", x)
	b.Output(y)
	g := b.MustBuild()
	g2 := roundTrip(t, g)
	if !g2.Ctx.ProveGE(S, sym.Const(2)) {
		t.Fatal("assumptions lost")
	}
}

func TestLlamaThroughHLO(t *testing.T) {
	// The paper's NeuronX path: capture Llama-3 via the HLO format,
	// then verify refinement on the parsed graphs.
	b, err := models.Llama(models.Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	gs2 := roundTrip(t, b.Gs)
	gd2 := roundTrip(t, b.Gd)
	// Tensor IDs are preserved by reconstruction order (inputs first,
	// topological nodes after) only if the original graph was built
	// the same way; rebuild the input relation by name to be safe.
	ri := rebuildRelationByName(t, b, gs2, gd2)
	report, err := core.NewChecker(core.Options{}).Check(gs2, gd2, ri)
	if err != nil {
		t.Fatalf("llama via HLO: %v", err)
	}
	if !report.OutputRelation.Complete(gs2.Outputs) {
		t.Fatal("incomplete output relation")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"HloModule m\n%x = f32[2] bogus-op(%y)\nROOT %r = tuple(%x)\n",
		"HloModule m\n%x f32[2] parameter(0)\n",
		"HloModule m\n%x = f32[2] parameter(0)\nROOT %r = tuple(%nope)\n",
		"HloModule m\n%x = f32[2 parameter(0)\n",
		"garbage\n",
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

// rebuildRelationByName re-keys b.Ri against re-parsed graphs:
// tensor IDs shift in the round trip (the parser declares all
// parameters first), so both the relation keys and the leaf
// references are re-resolved by tensor name.
func rebuildRelationByName(t *testing.T, b *models.Built, gs2, gd2 *graph.Graph) *relation.Relation {
	t.Helper()
	ri2 := relation.New()
	for _, id := range b.Ri.Tensors() {
		oldT := b.Gs.Tensor(id)
		newT, ok := gs2.TensorByName(oldT.Name)
		if !ok {
			t.Fatalf("re-parsed G_s lost tensor %q", oldT.Name)
		}
		for _, m := range b.Ri.Get(id) {
			m2 := m.Map(func(l *expr.Term) *expr.Term {
				if !l.IsLeaf() {
					return l
				}
				gdT, ok := gd2.TensorByName(l.Name)
				if !ok {
					t.Fatalf("re-parsed G_d lost tensor %q", l.Name)
				}
				return relation.GdLeaf(gdT)
			})
			ri2.Add(newT.ID, m2)
		}
	}
	return ri2
}
