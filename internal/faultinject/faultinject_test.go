package faultinject

import (
	"fmt"
	"testing"

	"entangle/internal/graph"
)

func testNode(label string) *graph.Node { return &graph.Node{Label: label} }

// TestDecideDeterministic: the decision is a pure function of
// (seed, rates, label) — repeated calls and fresh injectors agree.
func TestDecideDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, PanicRate: 0.2, SlowRate: 0.2, StarveRate: 0.2}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 200; i++ {
		label := fmt.Sprintf("L%d/op%d", i%8, i)
		if got, want := a.Decide(label), b.Decide(label); got != want {
			t.Fatalf("label %q: %v vs %v across injectors", label, got, want)
		}
		if got, want := a.Decide(label), a.Decide(label); got != want {
			t.Fatalf("label %q: %v vs %v across calls", label, got, want)
		}
	}
}

// TestDecideSeedSensitivity: different seeds give different fault
// sets (overwhelmingly likely over 200 labels at these rates).
func TestDecideSeedSensitivity(t *testing.T) {
	a := New(Config{Seed: 1, PanicRate: 0.3})
	b := New(Config{Seed: 2, PanicRate: 0.3})
	differ := false
	for i := 0; i < 200 && !differ; i++ {
		label := fmt.Sprintf("op%d", i)
		differ = a.Decide(label) != b.Decide(label)
	}
	if !differ {
		t.Fatal("seeds 1 and 2 made identical decisions on 200 labels")
	}
}

// TestRateCarving: rates carve the unit interval — observed fault
// frequencies over many labels land near the configured rates, and
// zero rates inject nothing.
func TestRateCarving(t *testing.T) {
	in := New(Config{Seed: 7, PanicRate: 0.25, SlowRate: 0.25, StarveRate: 0.25})
	counts := map[Fault]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[in.Decide(fmt.Sprintf("op%d", i))]++
	}
	for _, f := range []Fault{Panic, Slow, Starve, None} {
		frac := float64(counts[f]) / n
		if frac < 0.20 || frac > 0.30 {
			t.Fatalf("%v frequency %.3f, want ≈0.25 (counts %v)", f, frac, counts)
		}
	}

	quiet := New(Config{Seed: 7})
	for i := 0; i < 500; i++ {
		if f := quiet.Decide(fmt.Sprintf("op%d", i)); f != None {
			t.Fatalf("zero-rate injector decided %v", f)
		}
	}
}

// TestPreOpStarveBudget: a starved operator gets the starved budget,
// an untouched one keeps the caller's, and Injected records the hit.
func TestPreOpStarveBudget(t *testing.T) {
	in := New(Config{Seed: 3, StarveRate: 1.0, StarveMaxIters: 2, StarveMaxNodes: 16})
	node := testNode("victim")
	o := in.PreOp(node)
	if o == nil || o.MaxIters != 2 || o.MaxNodes != 16 {
		t.Fatalf("starved override wrong: %+v", o)
	}
	if got := in.Injected()[Starve]; got != 1 {
		t.Fatalf("Injected[Starve] = %d, want 1", got)
	}

	none := New(Config{Seed: 3})
	if o := none.PreOp(node); o != nil {
		t.Fatalf("no-fault PreOp must return nil, got %+v", o)
	}
}

// TestPreOpPanics: a Panic decision panics with a message naming the
// operator.
func TestPreOpPanics(t *testing.T) {
	in := New(Config{Seed: 9, PanicRate: 1.0})
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("PreOp did not panic")
		}
		if s, ok := rec.(string); !ok || s == "" {
			t.Fatalf("panic value %v, want descriptive string", rec)
		}
	}()
	in.PreOp(testNode("boom"))
}
