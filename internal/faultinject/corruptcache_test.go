package faultinject

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"entangle/internal/fingerprint"
	"entangle/internal/vcache"
)

func diskCache(t *testing.T, dir string) *vcache.Cache {
	t.Helper()
	c, err := vcache.Open(vcache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testEntry(i int) (fingerprint.Hash, *vcache.Entry) {
	key := fingerprint.Hash(sha256.Sum256([]byte(fmt.Sprintf("corrupt-key-%d", i))))
	return key, &vcache.Entry{
		Verdict: vcache.VerdictRefined,
		Outputs: []vcache.Mapping{{Main: []string{fmt.Sprintf("t%d", i)}}},
	}
}

// TestCorruptCacheModeEveryModeIsAMiss is the edge-case sweep the
// seeded CorruptCache cannot guarantee per file: every fault mode —
// including truncation to zero bytes (Empty), a header-only file, and
// a flipped checksum byte over an intact payload — must read back
// through a real cache round trip as a miss counted corrupt, never as
// a wrong verdict.
func TestCorruptCacheModeEveryModeIsAMiss(t *testing.T) {
	for _, mode := range CacheFaults() {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			c := diskCache(t, dir)
			key, e := testEntry(0)
			if err := c.Put(key, e); err != nil {
				t.Fatal(err)
			}

			n, err := CorruptCacheMode(dir, mode)
			if err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Fatalf("damaged %d files, want 1", n)
			}

			// A fresh cache over the same directory has no memory copy:
			// the Get must go to disk and classify the file as corrupt.
			reopened := diskCache(t, dir)
			if got := reopened.Get(key); got != nil {
				t.Fatalf("mode %s returned a verdict from a damaged file: %+v", mode, got)
			}
			s := reopened.Stats().Snapshot()
			if s.Misses != 1 || s.Corrupt != 1 {
				t.Fatalf("mode %s: misses=%d corrupt=%d, want 1/1", mode, s.Misses, s.Corrupt)
			}

			// The store must recover by rewriting: a fresh Put replaces
			// the damaged file and the next read hits again.
			if err := reopened.Put(key, e); err != nil {
				t.Fatal(err)
			}
			third := diskCache(t, dir)
			got := third.Get(key)
			if got == nil || got.Verdict != e.Verdict {
				t.Fatalf("mode %s: cache did not recover after re-Put", mode)
			}
		})
	}
}

// TestCorruptCacheModeShapes pins the on-disk shape each edge mode
// leaves behind, so the modes keep damaging what their names claim.
func TestCorruptCacheModeShapes(t *testing.T) {
	writeOne := func(t *testing.T) (string, string, []byte) {
		dir := t.TempDir()
		c := diskCache(t, dir)
		key, e := testEntry(1)
		if err := c.Put(key, e); err != nil {
			t.Fatal(err)
		}
		hx := key.Hex()
		path := filepath.Join(dir, "v1", hx[:2], hx)
		clean, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return dir, path, clean
	}

	t.Run("empty-truncates-to-zero-bytes", func(t *testing.T) {
		dir, path, _ := writeOne(t)
		if _, err := CorruptCacheMode(dir, Empty); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 0 {
			t.Fatalf("Empty left %d bytes", len(data))
		}
	})

	t.Run("header-only-keeps-exactly-the-header", func(t *testing.T) {
		dir, path, clean := writeOne(t)
		if _, err := CorruptCacheMode(dir, HeaderOnly); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := bytes.Count(data, []byte("\n")); got != 3 {
			t.Fatalf("header-only file has %d newlines, want 3", got)
		}
		if !bytes.HasPrefix(clean, data) || len(data) == len(clean) {
			t.Fatal("header-only is not a strict prefix of the clean file")
		}
	})

	t.Run("flip-checksum-leaves-payload-intact", func(t *testing.T) {
		dir, path, clean := writeOne(t)
		if _, err := CorruptCacheMode(dir, FlipChecksum); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != len(clean) {
			t.Fatalf("flip-checksum changed the length: %d vs %d", len(data), len(clean))
		}
		diffs := 0
		for i := range data {
			if data[i] != clean[i] {
				diffs++
			}
		}
		if diffs != 1 {
			t.Fatalf("flip-checksum changed %d bytes, want exactly 1", diffs)
		}
		// The changed byte must sit inside the checksum line (after the
		// second newline, before the third).
		second := bytes.Index(clean, []byte("\n"))
		second += 1 + bytes.Index(clean[second+1:], []byte("\n"))
		third := second + 1 + bytes.Index(clean[second+2:], []byte("\n"))
		for i := range data {
			if data[i] != clean[i] && (i <= second || i > third) {
				t.Fatalf("flipped byte at %d is outside the checksum line (%d, %d]", i, second, third)
			}
		}
	})
}

// TestDamagePureAndTotal: Damage never mutates its input and is total
// over degenerate inputs — zero-length data and data with no newlines
// must not panic for any mode.
func TestDamagePureAndTotal(t *testing.T) {
	orig := []byte("EVCACHE1\nkey\nsum\n{}")
	for _, mode := range CacheFaults() {
		snapshot := append([]byte(nil), orig...)
		_ = Damage(orig, mode)
		if !bytes.Equal(orig, snapshot) {
			t.Fatalf("mode %s mutated its input", mode)
		}
		_ = Damage(nil, mode)
		_ = Damage([]byte{}, mode)
		_ = Damage([]byte("no newlines here"), mode)
	}
}
