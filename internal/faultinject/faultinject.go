// Package faultinject is a deterministic, seed-driven fault injector
// for the checking pipeline's chaos tests and the `entangle-bench
// -exp chaos` experiment. Faults are keyed purely by operator label —
// a splitmix64-style hash of (seed, label) decides, independently of
// worker count, scheduling order, or wall clock, whether an operator's
// check panics, stalls, or runs budget-starved. That schedule
// independence is what lets the chaos harness demand byte-identical
// KeepGoing failure reports from Workers=1 and Workers=8 runs under
// the same seed.
//
// The injector attaches to the checker through core.Options.PreOp,
// which runs on the worker goroutine about to check the operator —
// exactly where a buggy lemma would fault:
//
//	inj := faultinject.New(faultinject.Config{Seed: 7, PanicRate: 0.1})
//	opts := core.Options{PreOp: inj.PreOp, KeepGoing: true}
package faultinject

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"entangle/internal/egraph"
	"entangle/internal/graph"
)

// Fault is the decision for one operator.
type Fault int

const (
	// None: the operator runs untouched.
	None Fault = iota
	// Panic: the worker panics before the check starts (the checker
	// must recover it into an EngineFault verdict).
	Panic
	// Slow: the worker sleeps for Config.SlowFor before checking (the
	// checker's OpTimeout turns this into an Inconclusive(Timeout)
	// verdict when the sleep exceeds it).
	Slow
	// Starve: the operator runs with the starved saturation budget
	// (Config.StarveMaxIters/StarveMaxNodes), exercising budget
	// escalation and the Inconclusive(BudgetExhausted) verdict.
	Starve
)

func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Slow:
		return "slow"
	case Starve:
		return "starve"
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// Config parameterizes an Injector. Rates are per-operator
// probabilities in [0, 1], carved out of the unit interval in order
// panic, slow, starve: an operator's hash point u ∈ [0,1) injects a
// panic when u < PanicRate, a stall when u < PanicRate+SlowRate, and
// so on. Zero rates inject nothing.
type Config struct {
	// Seed drives the per-operator hash. Two injectors with the same
	// seed and rates make identical decisions for every label.
	Seed uint64
	// PanicRate is the fraction of operators whose check panics.
	PanicRate float64
	// SlowRate is the fraction of operators stalled for SlowFor.
	SlowRate float64
	// SlowFor is the stall duration (default 50ms).
	SlowFor time.Duration
	// StarveRate is the fraction of operators run budget-starved.
	StarveRate float64
	// StarveMaxIters / StarveMaxNodes are the starved saturation
	// budget (defaults 1 iteration, 8 nodes — small enough that any
	// real operator hits the limit).
	StarveMaxIters int
	StarveMaxNodes int
}

func (c Config) withDefaults() Config {
	if c.SlowFor == 0 {
		c.SlowFor = 50 * time.Millisecond
	}
	if c.StarveMaxIters == 0 {
		c.StarveMaxIters = 1
	}
	if c.StarveMaxNodes == 0 {
		c.StarveMaxNodes = 8
	}
	return c
}

// Injector makes deterministic per-operator fault decisions and
// records what it injected.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	injected map[string]Fault // label → decision, for reporting
}

// New builds an injector for the given config.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg.withDefaults(), injected: map[string]Fault{}}
}

// Decide returns the fault for an operator label. Pure: it depends
// only on (Seed, rates, label).
func (in *Injector) Decide(label string) Fault {
	u := unit(in.cfg.Seed, label)
	switch {
	case u < in.cfg.PanicRate:
		return Panic
	case u < in.cfg.PanicRate+in.cfg.SlowRate:
		return Slow
	case u < in.cfg.PanicRate+in.cfg.SlowRate+in.cfg.StarveRate:
		return Starve
	}
	return None
}

// PreOp is the core.Options.PreOp hook: it executes the decided fault
// for v on the calling worker goroutine. Panic faults panic with a
// recognizable value; Slow faults sleep; Starve faults return the
// starved saturation budget; None returns nil (keep the configured
// budget).
func (in *Injector) PreOp(v *graph.Node) *egraph.SaturateOpts {
	f := in.Decide(v.Label)
	in.mu.Lock()
	if f != None {
		in.injected[v.Label] = f
	}
	in.mu.Unlock()
	switch f {
	case Panic:
		panic(fmt.Sprintf("faultinject: injected panic in lemma for operator %q (seed %d)", v.Label, in.cfg.Seed))
	case Slow:
		time.Sleep(in.cfg.SlowFor)
	case Starve:
		return &egraph.SaturateOpts{MaxIters: in.cfg.StarveMaxIters, MaxNodes: in.cfg.StarveMaxNodes}
	}
	return nil
}

// Injected reports how many faults of each kind fired so far. Safe for
// concurrent use with PreOp.
func (in *Injector) Injected() map[Fault]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := map[Fault]int{}
	for _, f := range in.injected {
		out[f]++
	}
	return out
}

// CacheFault is one way an on-disk verdict-cache entry can be damaged.
// The modes mirror the failure envelope vcache's reader must absorb: a
// torn write (Truncate), media rot (BitFlip, FlipChecksum), a foreign
// or wrong-version file (BadMagic), a lost payload (HeaderOnly), and a
// zero-length file (Empty).
type CacheFault int

const (
	// Truncate cuts the file in half (torn write).
	Truncate CacheFault = iota
	// BitFlip flips one bit in the payload (checksum must catch it).
	BitFlip
	// BadMagic clobbers the version tag.
	BadMagic
	// Empty leaves a zero-length file.
	Empty
	// HeaderOnly keeps the three header lines but drops the whole
	// payload (a write that persisted only its first block).
	HeaderOnly
	// FlipChecksum flips one byte inside the stored checksum line
	// itself, so the payload is intact but its recorded digest lies.
	FlipChecksum
	numCacheFaults
)

func (f CacheFault) String() string {
	switch f {
	case Truncate:
		return "truncate"
	case BitFlip:
		return "bit-flip"
	case BadMagic:
		return "bad-magic"
	case Empty:
		return "empty"
	case HeaderOnly:
		return "header-only"
	case FlipChecksum:
		return "flip-checksum"
	}
	return fmt.Sprintf("CacheFault(%d)", int(f))
}

// CacheFaults enumerates every damage mode, for tests and models that
// want exhaustive coverage of the reader's failure envelope.
func CacheFaults() []CacheFault {
	out := make([]CacheFault, 0, int(numCacheFaults))
	for f := CacheFault(0); f < numCacheFaults; f++ {
		out = append(out, f)
	}
	return out
}

// Damage returns a damaged copy of an encoded verdict-cache entry
// under the given fault mode. Pure: it never touches the filesystem
// and never mutates data. CorruptCache, the edge-case tests, and the
// internal/mc verdict-cache model all damage bytes through this one
// function, so the byte patterns the store must survive are defined in
// exactly one place.
func Damage(data []byte, mode CacheFault) []byte {
	out := append([]byte(nil), data...)
	switch mode {
	case Truncate:
		out = out[:len(out)/2]
	case BitFlip:
		if len(out) > 0 {
			out[len(out)-1] ^= 0x01
		}
	case BadMagic:
		if len(out) > 0 {
			out[0] = 'X'
		}
	case Empty:
		out = out[:0]
	case HeaderOnly:
		// Keep through the third newline (magic, key, checksum lines).
		seen := 0
		for i, b := range out {
			if b == '\n' {
				if seen++; seen == 3 {
					out = out[:i+1]
					break
				}
			}
		}
	case FlipChecksum:
		// The checksum is the third header line; flip its first byte
		// (hex digit), leaving the payload untouched.
		seen := 0
		for i, b := range out {
			if b == '\n' {
				if seen++; seen == 2 {
					if i+1 < len(out) {
						out[i+1] ^= 0x01
					}
					break
				}
			}
		}
	}
	return out
}

// CorruptCache damages every verdict-cache entry file under dir, each
// with a fault mode chosen deterministically from (seed, file name) —
// the same hash discipline as operator faults, so a chaos run is
// reproducible byte for byte. It returns how many files it damaged.
// The cache contract under this attack is total miss, never a wrong
// verdict: vcache classifies every damaged file as corrupt.
func CorruptCache(dir string, seed uint64) (int, error) {
	return corruptCache(dir, func(name string) CacheFault {
		return CacheFault(uint64(unit(seed, name)*float64(numCacheFaults))) % numCacheFaults
	})
}

// CorruptCacheMode damages every verdict-cache entry file under dir
// with one fixed fault mode — the targeted variant CorruptCache's
// seeded sampling cannot guarantee for any single file.
func CorruptCacheMode(dir string, mode CacheFault) (int, error) {
	return corruptCache(dir, func(string) CacheFault { return mode })
}

func corruptCache(dir string, pick func(name string) CacheFault) (int, error) {
	damaged := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		damaged++
		return os.WriteFile(path, Damage(data, pick(filepath.Base(path))), info.Mode())
	})
	return damaged, err
}

// NetFault is one way a peer-to-peer message can be damaged in flight
// — the network fault family behind the cluster simulator
// (internal/cluster/sim). Crash/restart and partition/heal are
// topology events scripted by the simulator itself, not per-message
// faults, so they do not appear here.
type NetFault int

const (
	// NetNone: the message is delivered intact.
	NetNone NetFault = iota
	// NetDrop: the message vanishes; the sender sees a connection
	// error (and its retry policy decides what happens next).
	NetDrop
	// NetDelay: the reply arrives after the sender's per-attempt
	// deadline; the sender sees a timeout. The simulator models this
	// as an immediate deadline error rather than a real sleep, so
	// chaos tests stay fast and deterministic.
	NetDelay
	// NetCorrupt: the payload is damaged in flight (a Damage mode
	// chosen from the same hash); the receiver's DecodeEntry must
	// classify it as a miss, never a wrong verdict.
	NetCorrupt
)

func (f NetFault) String() string {
	switch f {
	case NetNone:
		return "none"
	case NetDrop:
		return "drop"
	case NetDelay:
		return "delay"
	case NetCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("NetFault(%d)", int(f))
}

// NetConfig parameterizes a NetInjector. Rates are per-message
// probabilities carved out of the unit interval in order drop, delay,
// corrupt — the same discipline as operator faults.
type NetConfig struct {
	// Seed drives the per-message hash.
	Seed uint64
	// DropRate is the fraction of messages that vanish.
	DropRate float64
	// DelayRate is the fraction of messages that miss the sender's
	// per-attempt deadline.
	DelayRate float64
	// CorruptRate is the fraction of messages whose payload is damaged
	// in flight.
	CorruptRate float64
}

// NetInjector makes deterministic per-message fault decisions. A
// message is identified by a label the transport builds from
// (src, dst, verb, key, attempt), so decisions are schedule-independent
// — the same message gets the same fate however worker goroutines
// interleave — while a retry (different attempt number) re-rolls.
type NetInjector struct {
	cfg NetConfig

	mu       sync.Mutex
	injected map[NetFault]int
}

// NewNet builds a network fault injector.
func NewNet(cfg NetConfig) *NetInjector {
	return &NetInjector{cfg: cfg, injected: map[NetFault]int{}}
}

// Decide returns the fault for one message label. Pure: it depends
// only on (Seed, rates, label).
func (in *NetInjector) Decide(label string) NetFault {
	u := unit(in.cfg.Seed, label)
	var f NetFault
	switch {
	case u < in.cfg.DropRate:
		f = NetDrop
	case u < in.cfg.DropRate+in.cfg.DelayRate:
		f = NetDelay
	case u < in.cfg.DropRate+in.cfg.DelayRate+in.cfg.CorruptRate:
		f = NetCorrupt
	default:
		return NetNone
	}
	in.mu.Lock()
	in.injected[f]++
	in.mu.Unlock()
	return f
}

// DamageMode picks the Damage mode for a NetCorrupt message,
// deterministically from the same (seed, label) hash family.
func (in *NetInjector) DamageMode(label string) CacheFault {
	return CacheFault(uint64(unit(in.cfg.Seed^0xc0a7, label)*float64(numCacheFaults))) % numCacheFaults
}

// Injected reports how many faults of each kind fired so far.
func (in *NetInjector) Injected() map[NetFault]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := map[NetFault]int{}
	for f, n := range in.injected {
		out[f] = n
	}
	return out
}

// unit hashes (seed, label) to a uniform point in [0, 1) with an
// FNV-1a pass over the label followed by a splitmix64 finalizer.
func unit(seed uint64, label string) float64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	// splitmix64 finalizer for avalanche.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
