// Package server is the HTTP front end of the entangled checker
// daemon: a long-lived process that keeps one warm verdict cache (and
// one materialized lemma registry) across many refinement checks, so a
// CI fleet or an interactive capture loop pays the saturation cost of
// each operator exactly once.
//
// Endpoints:
//
//	POST /v1/check    — graph pair + input relation in, Report out
//	POST /v1/recheck  — base G_s + edited candidates in, per-candidate
//	                    incremental delta out (only each edit's
//	                    downstream cone is re-saturated)
//	GET  /v1/healthz  — liveness ("ok")
//	GET  /v1/stats    — daemon counters + verdict-cache counters
//
// Checks run under a bounded admission gate (Config.MaxConcurrent, see
// gate.go) and a per-request deadline threaded through context, so one
// pathological graph can neither monopolize the process nor hang a
// drain. Graceful shutdown is explicit: Server.Drain flips the gate so
// no new check is admitted (even on connections already open) and
// waits for admitted checks to finish; cmd/entangled calls it on
// SIGTERM alongside http.Server.Shutdown. The gate's admission/drain
// protocol is exhaustively model-checked in internal/mc/models.
package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"entangle/internal/core"
	"entangle/internal/egraph"
	"entangle/internal/exprparse"
	"entangle/internal/fingerprint"
	"entangle/internal/graph"
	"entangle/internal/hlo"
	"entangle/internal/relation"
	"entangle/internal/vcache"
)

// Config parameterizes a daemon.
type Config struct {
	// Options is the base checker configuration shared by every
	// request; Options.Cache (when non-nil) is the warm verdict cache.
	// A request's keep_going field overrides Options.KeepGoing for
	// that request only.
	Options core.Options
	// MaxConcurrent bounds simultaneous checks (0 = GOMAXPROCS).
	// Requests beyond the bound queue on the semaphore until a slot
	// frees or their context expires.
	MaxConcurrent int
	// DefaultTimeout bounds each check when the request carries no
	// timeout of its own (0 = none).
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds every request body via http.MaxBytesReader
	// (0 = DefaultMaxBodyBytes). Oversized requests get 413 instead of
	// buffering without bound.
	MaxBodyBytes int64
	// Local is this node's own verdict shard, served raw to fleet
	// peers on /v1/peer/verdict. It is deliberately distinct from
	// Options.Cache: in a fleet, Options.Cache is the cluster-routing
	// store, and peer traffic must hit the local shard directly or a
	// fetch could recurse back into the fleet. Nil disables the peer
	// endpoints (404).
	Local *vcache.Cache
	// ClusterInfo, when non-nil, is rendered into /v1/stats under
	// "cluster" (the daemon wires the fleet cache's counters here).
	ClusterInfo func() any
}

// DefaultMaxBodyBytes bounds request bodies when Config.MaxBodyBytes
// is zero: large enough for captured production graphs, small enough
// that a malicious or confused client cannot buffer the daemon into
// the ground.
const DefaultMaxBodyBytes = 64 << 20

// Server handles the daemon's HTTP API. Safe for concurrent use.
type Server struct {
	cfg   Config
	cache core.VerdictStore
	mux   *http.ServeMux
	gate  *Gate
	start time.Time

	requests atomic.Int64 // /v1/check requests accepted
	refined  atomic.Int64 // checks that verified refinement
	failed   atomic.Int64 // checks that disproved or degraded
	errored  atomic.Int64 // malformed requests, cancellations, faults
	inflight atomic.Int64 // checks currently running or queued
	peerGets atomic.Int64 // /v1/peer/verdict fetches served (hit or miss)
	peerPuts atomic.Int64 // /v1/peer/verdict offers accepted
}

// New builds a server.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{
		cfg:   cfg,
		cache: cfg.Options.Cache,
		mux:   http.NewServeMux(),
		gate:  NewGate(cfg.MaxConcurrent),
		start: time.Now(),
	}
	s.mux.HandleFunc("/v1/check", s.handleCheck)
	s.mux.HandleFunc("/v1/recheck", s.handleRecheck)
	s.mux.HandleFunc("/v1/peer/verdict", s.handlePeerVerdict)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain begins graceful shutdown: no new check is admitted from this
// point on (queued requests are bounced with 503 "draining"), and the
// call blocks until every already-admitted check completes or ctx
// expires. Idempotent; safe to run alongside http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error { return s.gate.Drain(ctx) }

// CheckRequest is the /v1/check body. Graphs arrive in the JSON
// interchange format (or, with format "hlo", as HLO-flavoured text in
// a JSON string); the relation uses the same name→expressions map as
// the CLI's -rel sidecar.
type CheckRequest struct {
	Format    string              `json:"format,omitempty"` // "json" (default) or "hlo"
	Gs        json.RawMessage     `json:"gs"`
	Gd        json.RawMessage     `json:"gd"`
	Rel       map[string][]string `json:"rel"`
	Timeout   string              `json:"timeout,omitempty"` // Go duration, e.g. "30s"
	KeepGoing bool                `json:"keep_going,omitempty"`
	Verbose   bool                `json:"verbose,omitempty"` // include the full relation
}

// CheckResponse is the /v1/check reply. Verdict is "refined",
// "failed", or "cancelled"; Error carries the failure text verbatim
// (the same rendering the CLI prints).
type CheckResponse struct {
	Verdict string `json:"verdict"`
	Error   string `json:"error,omitempty"`
	// Failures lists every failing operator's deterministic
	// description (keep_going mode).
	Failures []string `json:"failures,omitempty"`
	// OutputRelation maps each G_s output name to its clean
	// expressions over G_d outputs.
	OutputRelation map[string][]string `json:"output_relation,omitempty"`
	// FullRelation is the intermediate-tensor relation rendering
	// (verbose requests only).
	FullRelation string          `json:"full_relation,omitempty"`
	OpsProcessed int             `json:"ops_processed"`
	DurationMS   int64           `json:"duration_ms"`
	Stats        egraph.Stats    `json:"stats"`
	LiveStats    egraph.Stats    `json:"live_stats"`
	Cache        core.CacheStats `json:"cache"`
}

// StatsResponse is the /v1/stats reply.
type StatsResponse struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Requests      int64                 `json:"requests"`
	Refined       int64                 `json:"refined"`
	Failed        int64                 `json:"failed"`
	Errors        int64                 `json:"errors"`
	InFlight      int64                 `json:"in_flight"`
	MaxConcurrent int                   `json:"max_concurrent"`
	Draining      bool                  `json:"draining"`
	PeerGets      int64                 `json:"peer_gets,omitempty"`
	PeerPuts      int64                 `json:"peer_puts,omitempty"`
	Cache         *vcache.StatsSnapshot `json:"cache,omitempty"`
	// Cluster is the fleet cache's counter block (Config.ClusterInfo);
	// absent on single-node daemons.
	Cluster any `json:"cluster,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Refined:       s.refined.Load(),
		Failed:        s.failed.Load(),
		Errors:        s.errored.Load(),
		InFlight:      s.inflight.Load(),
		MaxConcurrent: s.cfg.MaxConcurrent,
		Draining:      s.gate.Snapshot().Draining,
	}
	if s.cache != nil {
		snap := s.cache.Stats().Snapshot()
		resp.Cache = &snap
	}
	if s.cfg.Local != nil {
		resp.PeerGets = s.peerGets.Load()
		resp.PeerPuts = s.peerPuts.Load()
	}
	if s.cfg.ClusterInfo != nil {
		resp.Cluster = s.cfg.ClusterInfo()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePeerVerdict serves the fleet's peer-to-peer verdict exchange:
// GET fetches this node's entry for a key, PUT accepts a forwarded
// verdict. Both sides speak the vcache on-disk byte format (EncodeEntry
// /DecodeEntry), so the same defensive gates that protect the disk
// store protect the wire: a corrupt offer is rejected with 400 and
// never stored, and a reply that fails the fetcher's decode is treated
// as a miss. The handler serves Config.Local — the node's own shard —
// directly, never Options.Cache, so peer traffic cannot recurse back
// into fleet routing.
func (s *Server) handlePeerVerdict(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Local == nil {
		http.Error(w, "not a fleet node", http.StatusNotFound)
		return
	}
	if s.gate.Snapshot().Draining {
		// Peers treat 503 like any transport failure: retry elsewhere in
		// time or degrade to a local cold check. Refusing early keeps a
		// drain from waiting on peer chatter.
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	raw, err := hex.DecodeString(r.URL.Query().Get("key"))
	var key fingerprint.Hash
	if err != nil || len(raw) != len(key) {
		http.Error(w, "key must be 64 hex characters", http.StatusBadRequest)
		return
	}
	copy(key[:], raw)

	switch r.Method {
	case http.MethodGet:
		s.peerGets.Add(1)
		e := s.cfg.Local.Get(key)
		if e == nil {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		data, err := vcache.EncodeEntry(key, e)
		if err != nil {
			http.Error(w, fmt.Sprintf("encoding entry: %v", err), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)

	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, fmt.Sprintf("entry exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, fmt.Sprintf("reading entry: %v", err), http.StatusBadRequest)
			return
		}
		e, err := vcache.DecodeEntry(key, body)
		if err != nil {
			// The decode gate is the correctness boundary: an offer that
			// fails validation is refused, so a confused or corrupting
			// peer can never plant a wrong verdict in this shard.
			http.Error(w, fmt.Sprintf("rejecting entry: %v", err), http.StatusBadRequest)
			return
		}
		if err := s.cfg.Local.Put(key, e); err != nil {
			http.Error(w, fmt.Sprintf("storing entry: %v", err), http.StatusInternalServerError)
			return
		}
		s.peerPuts.Add(1)
		w.WriteHeader(http.StatusNoContent)

	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// decodeBody decodes a JSON request body under the configured byte
// bound. Oversized bodies are answered 413 and malformed ones 400; in
// both cases the request is counted as errored and false is returned.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.errored.Add(1)
			writeJSON(w, http.StatusRequestEntityTooLarge, CheckResponse{
				Verdict: "failed",
				Error:   fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			})
			return false
		}
		s.badRequest(w, "decoding request: %v", err)
		return false
	}
	return true
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	var req CheckRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	gs, err := decodeGraph(req.Gs, req.Format)
	if err != nil {
		s.badRequest(w, "loading G_s: %v", err)
		return
	}
	gd, err := decodeGraph(req.Gd, req.Format)
	if err != nil {
		s.badRequest(w, "loading G_d: %v", err)
		return
	}
	ri, err := exprparse.ParseRelation(req.Rel, gs, gd)
	if err != nil {
		s.badRequest(w, "loading relation: %v", err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.Timeout != "" {
		timeout, err = time.ParseDuration(req.Timeout)
		if err != nil || timeout <= 0 {
			s.badRequest(w, "bad timeout %q", req.Timeout)
			return
		}
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// The gate bounds concurrent saturations and refuses admission once
	// a drain has begun; a request whose deadline expires while queued
	// reports the cancellation instead of running late.
	if err := s.gate.Acquire(ctx); err != nil {
		s.errored.Add(1)
		msg := fmt.Sprintf("queued past deadline: %v", err)
		if errors.Is(err, ErrDraining) {
			msg = err.Error()
		}
		writeJSON(w, http.StatusServiceUnavailable,
			CheckResponse{Verdict: "cancelled", Error: msg})
		return
	}
	defer s.gate.Release()

	opts := s.cfg.Options
	opts.KeepGoing = opts.KeepGoing || req.KeepGoing
	report, err := core.NewChecker(opts).CheckContext(ctx, gs, gd, ri)
	switch {
	case err == nil:
		s.refined.Add(1)
		resp := CheckResponse{
			Verdict:      "refined",
			OpsProcessed: report.OpsProcessed,
			DurationMS:   report.Duration.Milliseconds(),
			Stats:        report.Stats,
			LiveStats:    report.LiveStats,
			Cache:        report.Cache,
		}
		resp.OutputRelation = renderOutputs(report, gs)
		if req.Verbose {
			resp.FullRelation = report.FullRelation.Render(gs)
		}
		writeJSON(w, http.StatusOK, resp)

	case ctx.Err() != nil:
		s.errored.Add(1)
		writeJSON(w, http.StatusServiceUnavailable,
			CheckResponse{Verdict: "cancelled", Error: err.Error()})

	default:
		resp := CheckResponse{Verdict: "failed", Error: err.Error()}
		var re *core.RefinementError
		var ie *core.InconclusiveError
		if !errors.As(err, &re) && !errors.As(err, &ie) {
			// Malformed graphs or an engine fault, not an analysis
			// verdict.
			s.errored.Add(1)
			s.badRequest(w, "%v", err)
			return
		}
		s.failed.Add(1)
		if report != nil {
			resp.OpsProcessed = report.OpsProcessed
			resp.DurationMS = report.Duration.Milliseconds()
			resp.Stats = report.Stats
			resp.LiveStats = report.LiveStats
			resp.Cache = report.Cache
			for _, v := range report.Failures {
				resp.Failures = append(resp.Failures, v.Describe())
			}
		}
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	}
}

// RecheckRequest is the /v1/recheck body: one base (already-verified)
// sequential graph plus edited candidate variants, all sharing the
// same G_d and relation sidecar (parsed against each graph by input
// name). Each candidate is re-verified incrementally against the base:
// operators whose upstream cone is unchanged replay their verdicts
// from the daemon's warm cache, only each edit's downstream cone is
// re-saturated.
type RecheckRequest struct {
	Format     string              `json:"format,omitempty"` // "json" (default) or "hlo"
	Base       json.RawMessage     `json:"base"`
	Candidates []json.RawMessage   `json:"candidates"`
	Gd         json.RawMessage     `json:"gd"`
	Rel        map[string][]string `json:"rel"`
	Timeout    string              `json:"timeout,omitempty"` // per-check Go duration
}

// RecheckCandidate is one candidate's delta in the /v1/recheck reply.
// Verdict is "refined", "failed", or "cancelled" (a drain begun
// mid-batch cancels the remaining candidates; completed ones keep
// their results).
type RecheckCandidate struct {
	Verdict      string          `json:"verdict"`
	Error        string          `json:"error,omitempty"`
	Failures     []string        `json:"failures,omitempty"`
	UnchangedOps int             `json:"unchanged_ops"`
	ReplayedOps  int             `json:"replayed_ops"`
	RecheckedOps int             `json:"rechecked_ops"`
	Changed      []core.DeltaOp  `json:"changed,omitempty"`
	NewlyFailing []core.DeltaOp  `json:"newly_failing,omitempty"`
	DurationMS   int64           `json:"duration_ms"`
	Cache        core.CacheStats `json:"cache"`
}

// RecheckResponse is the /v1/recheck reply. Status mirrors handleCheck
// per batch: 503 when the base check or any candidate was cancelled,
// 422 when any candidate failed refinement, 200 when every candidate
// refined.
type RecheckResponse struct {
	BaseVerdict string             `json:"base_verdict"`
	Candidates  []RecheckCandidate `json:"candidates"`
	Error       string             `json:"error,omitempty"`
}

func (s *Server) handleRecheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	var req RecheckRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Candidates) == 0 {
		s.badRequest(w, "recheck needs at least one candidate graph")
		return
	}
	base, err := decodeGraph(req.Base, req.Format)
	if err != nil {
		s.badRequest(w, "loading base G_s: %v", err)
		return
	}
	gd, err := decodeGraph(req.Gd, req.Format)
	if err != nil {
		s.badRequest(w, "loading G_d: %v", err)
		return
	}
	baseRi, err := exprparse.ParseRelation(req.Rel, base, gd)
	if err != nil {
		s.badRequest(w, "loading relation against base: %v", err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.Timeout != "" {
		timeout, err = time.ParseDuration(req.Timeout)
		if err != nil || timeout <= 0 {
			s.badRequest(w, "bad timeout %q", req.Timeout)
			return
		}
	}
	// Per-check context: the request context caps the whole batch, the
	// timeout caps each admitted check individually.
	checkCtx := func() (context.Context, context.CancelFunc) {
		if timeout > 0 {
			return context.WithTimeout(r.Context(), timeout)
		}
		return context.WithCancel(r.Context())
	}

	// Warm the cache with the base graph's verdicts under one gate slot
	// (replays when the daemon has seen it before). Base refinement
	// failures are delta context — candidates then classify their own
	// failures as pre-existing — not batch errors.
	resp := RecheckResponse{BaseVerdict: "refined"}
	warm := s.cfg.Options
	warm.KeepGoing = true
	baseErr := func() error {
		ctx, cancel := checkCtx()
		defer cancel()
		if err := s.gate.Acquire(ctx); err != nil {
			return err
		}
		defer s.gate.Release()
		_, err := core.NewChecker(warm).CheckContext(ctx, base, gd, baseRi)
		if err != nil {
			var re *core.RefinementError
			var ie *core.InconclusiveError
			if errors.As(err, &re) || errors.As(err, &ie) {
				resp.BaseVerdict = "failed"
				return nil
			}
		}
		return err
	}()
	if baseErr != nil {
		s.errored.Add(1)
		if r.Context().Err() != nil || errors.Is(baseErr, ErrDraining) || errors.Is(baseErr, context.DeadlineExceeded) {
			resp.BaseVerdict = "cancelled"
			resp.Error = baseErr.Error()
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
		s.badRequest(w, "checking base G_s: %v", baseErr)
		return
	}

	// Each candidate takes its own gate slot, so a drain begun
	// mid-batch bounces the remaining candidates ("draining") while the
	// finished ones keep their deltas.
	anyFailed, anyCancelled := false, false
	for _, raw := range req.Candidates {
		resp.Candidates = append(resp.Candidates, s.recheckOne(r.Context(), checkCtx, req.Format, raw, base, baseRi, gd, req.Rel))
		c := &resp.Candidates[len(resp.Candidates)-1]
		switch c.Verdict {
		case "refined":
			s.refined.Add(1)
		case "failed":
			s.failed.Add(1)
			anyFailed = true
		default:
			s.errored.Add(1)
			anyCancelled = true
		}
	}
	switch {
	case anyCancelled:
		writeJSON(w, http.StatusServiceUnavailable, resp)
	case anyFailed:
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// recheckOne incrementally re-verifies a single candidate against the
// warmed base under its own gate slot.
func (s *Server) recheckOne(reqCtx context.Context, checkCtx func() (context.Context, context.CancelFunc),
	format string, raw json.RawMessage, base *graph.Graph, baseRi *relation.Relation,
	gd *graph.Graph, rel map[string][]string) RecheckCandidate {
	cand, err := decodeGraph(raw, format)
	if err != nil {
		return RecheckCandidate{Verdict: "failed", Error: fmt.Sprintf("loading candidate: %v", err)}
	}
	ri, err := exprparse.ParseRelation(rel, cand, gd)
	if err != nil {
		return RecheckCandidate{Verdict: "failed", Error: fmt.Sprintf("loading relation against candidate: %v", err)}
	}
	ctx, cancel := checkCtx()
	defer cancel()
	if err := s.gate.Acquire(ctx); err != nil {
		msg := fmt.Sprintf("queued past deadline: %v", err)
		if errors.Is(err, ErrDraining) {
			msg = err.Error()
		}
		return RecheckCandidate{Verdict: "cancelled", Error: msg}
	}
	defer s.gate.Release()

	delta, err := core.NewChecker(s.cfg.Options).DiffCheckContext(ctx, base, cand, gd, baseRi, ri)
	if delta == nil {
		if ctx.Err() != nil {
			return RecheckCandidate{Verdict: "cancelled", Error: err.Error()}
		}
		return RecheckCandidate{Verdict: "failed", Error: err.Error()}
	}
	c := RecheckCandidate{
		Verdict:      "refined",
		UnchangedOps: delta.UnchangedOps,
		ReplayedOps:  delta.ReplayedOps,
		RecheckedOps: delta.RecheckedOps,
		Changed:      delta.Changed,
		NewlyFailing: delta.NewlyFailing,
		DurationMS:   delta.Report.Duration.Milliseconds(),
		Cache:        delta.Report.Cache,
	}
	if err != nil {
		c.Verdict = "failed"
		c.Error = err.Error()
		for _, v := range delta.Report.Failures {
			c.Failures = append(c.Failures, v.Describe())
		}
	}
	return c
}

func (s *Server) badRequest(w http.ResponseWriter, format string, args ...any) {
	s.errored.Add(1)
	writeJSON(w, http.StatusBadRequest,
		CheckResponse{Verdict: "failed", Error: fmt.Sprintf(format, args...)})
}

func decodeGraph(raw json.RawMessage, format string) (*graph.Graph, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing graph")
	}
	switch format {
	case "", "json":
		return graph.Read(bytes.NewReader(raw))
	case "hlo":
		var text string
		if err := json.Unmarshal(raw, &text); err != nil {
			return nil, fmt.Errorf("hlo graphs must be JSON strings: %v", err)
		}
		return hlo.Parse(bytes.NewReader([]byte(text)))
	}
	return nil, fmt.Errorf("unknown format %q", format)
}

// renderOutputs maps each G_s output name to its clean expressions, in
// the relation's deterministic order.
func renderOutputs(report *core.Report, gs *graph.Graph) map[string][]string {
	out := make(map[string][]string, len(gs.Outputs))
	for _, o := range gs.Outputs {
		var exprs []string
		for _, t := range report.OutputRelation.Get(o) {
			exprs = append(exprs, t.String())
		}
		out[gs.Tensor(o).Name] = exprs
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
