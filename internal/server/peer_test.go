package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"entangle/internal/core"
	"entangle/internal/fingerprint"
	"entangle/internal/models"
	"entangle/internal/vcache"
)

// newPeerServer builds a daemon with a local verdict shard wired to the
// peer endpoints (a fleet node's configuration).
func newPeerServer(t *testing.T) (*Server, *httptest.Server, *vcache.Cache) {
	t.Helper()
	vc, err := vcache.Open(vcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Options: core.Options{Cache: vc}, Local: vc})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, vc
}

func peerURL(ts *httptest.Server, key fingerprint.Hash) string {
	return ts.URL + "/v1/peer/verdict?key=" + key.Hex()
}

func doPeer(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestPeerVerdictRoundTrip drives the fleet exchange end to end over
// real HTTP: a miss is an authoritative 404, an offered entry is
// validated and stored, and a subsequent fetch returns bytes that
// decode to the same entry.
func TestPeerVerdictRoundTrip(t *testing.T) {
	_, ts, vc := newPeerServer(t)
	key := fingerprint.Hash{1, 2, 3}
	e := &vcache.Entry{Verdict: vcache.VerdictRefined, Outputs: []vcache.Mapping{{Main: []string{"I0"}}}}
	data, err := vcache.EncodeEntry(key, e)
	if err != nil {
		t.Fatal(err)
	}

	if resp := doPeer(t, http.MethodGet, peerURL(ts, key), nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("miss: status %d", resp.StatusCode)
	}
	if resp := doPeer(t, http.MethodPut, peerURL(ts, key), data); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("offer: status %d", resp.StatusCode)
	}
	if got := vc.Get(key); got == nil || got.Verdict != vcache.VerdictRefined {
		t.Fatalf("offer did not land in the local shard: %+v", got)
	}

	resp := doPeer(t, http.MethodGet, peerURL(ts, key), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch: status %d", resp.StatusCode)
	}
	wire, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	back, err := vcache.DecodeEntry(key, wire)
	if err != nil {
		t.Fatalf("fetched bytes fail the decode gate: %v", err)
	}
	if back.Verdict != e.Verdict || len(back.Outputs) != 1 || back.Outputs[0].Main[0] != "I0" {
		t.Fatalf("round trip mangled the entry: %+v", back)
	}

	stats := getStats(t, ts)
	if stats.PeerGets != 2 || stats.PeerPuts != 1 {
		t.Fatalf("peer counters: gets %d puts %d", stats.PeerGets, stats.PeerPuts)
	}
}

// TestPeerVerdictRejectsCorrupt flips one payload byte: the offer must
// be refused with 400 and must not reach the shard — the decode gate is
// what keeps a corrupting peer from planting wrong verdicts.
func TestPeerVerdictRejectsCorrupt(t *testing.T) {
	_, ts, vc := newPeerServer(t)
	key := fingerprint.Hash{9}
	data, err := vcache.EncodeEntry(key, &vcache.Entry{Verdict: vcache.VerdictRefined})
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff

	if resp := doPeer(t, http.MethodPut, peerURL(ts, key), data); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt offer: status %d", resp.StatusCode)
	}
	if vc.Get(key) != nil {
		t.Fatal("corrupt offer was stored")
	}
}

func TestPeerVerdictRequestValidation(t *testing.T) {
	_, ts, _ := newPeerServer(t)
	key := fingerprint.Hash{4}

	if resp := doPeer(t, http.MethodGet, ts.URL+"/v1/peer/verdict?key=zz", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: status %d", resp.StatusCode)
	}
	if resp := doPeer(t, http.MethodDelete, peerURL(ts, key), nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("bad method: status %d", resp.StatusCode)
	}

	// A daemon without a local shard is not a fleet node: 404.
	single, _ := newTestServer(t)
	if resp := doPeer(t, http.MethodGet, peerURL(single, key), nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("single-node peer fetch: status %d", resp.StatusCode)
	}
}

// TestPeerVerdictDraining verifies a draining node refuses peer traffic
// outright (503) so shutdown never waits on fleet chatter.
func TestPeerVerdictDraining(t *testing.T) {
	srv, ts, _ := newPeerServer(t)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp := doPeer(t, http.MethodGet, peerURL(ts, fingerprint.Hash{7}), nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining peer fetch: status %d", resp.StatusCode)
	}
}

// TestBodyLimit enforces Config.MaxBodyBytes on every write endpoint:
// oversized bodies get 413, and legitimate requests under the bound
// still work.
func TestBodyLimit(t *testing.T) {
	b, err := models.Regression(models.Options{GradAccum: 2})
	if err != nil {
		t.Fatal(err)
	}
	body := requestBody(t, b, func(m *map[string]any) {
		(*m)["pad"] = strings.Repeat("x", 8192) // push past the bound regardless of graph size
	})

	vc, err := vcache.Open(vcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{
		Options:      core.Options{Cache: vc},
		Local:        vc,
		MaxBodyBytes: 4096, // far below any real graph body
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	status, resp := post(t, ts, body)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /v1/check: status %d resp %+v", status, resp)
	}
	if !strings.Contains(resp.Error, "exceeds") {
		t.Fatalf("413 carried no limit text: %q", resp.Error)
	}

	rb, err := json.Marshal(map[string]any{"base": json.RawMessage("{}"), "candidates": []json.RawMessage{[]byte(`{}`)}, "pad": strings.Repeat("x", 8192)})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := http.Post(ts.URL+"/v1/recheck", "application/json", bytes.NewReader(rb))
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /v1/recheck: status %d", rr.StatusCode)
	}

	key := fingerprint.Hash{5}
	big := make([]byte, 8192)
	if resp := doPeer(t, http.MethodPut, peerURL(ts, key), big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized peer offer: status %d", resp.StatusCode)
	}

	// Small requests still pass the bound (the error, if any, is about
	// content, not size).
	small, err := vcache.EncodeEntry(key, &vcache.Entry{Verdict: vcache.VerdictRefined})
	if err != nil {
		t.Fatal(err)
	}
	if resp := doPeer(t, http.MethodPut, peerURL(ts, key), small); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("in-bound peer offer: status %d", resp.StatusCode)
	}
	if stats := getStats(t, ts); stats.Errors == 0 {
		t.Fatalf("oversized bodies not counted as errors: %+v", stats)
	}
}
