package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"entangle/internal/core"
	"entangle/internal/graph"
	"entangle/internal/shape"
	"entangle/internal/vcache"
)

// The recheck fixture mirrors internal/core's diff tests: an add
// feeding an activation plus an independent branch, two-rank split on
// dim 0. Swapping the add's operands preserves refinement but moves
// the cone fingerprint; changing the activation breaks refinement.
func recheckGd(t *testing.T) *graph.Graph {
	t.Helper()
	bd := graph.NewBuilder("Gd", nil)
	half := shape.Of(2, 6)
	X0, X1 := bd.Input("X0", half), bd.Input("X1", half)
	Y0, Y1 := bd.Input("Y0", half), bd.Input("Y1", half)
	V0, V1 := bd.Input("V0", half), bd.Input("V1", half)
	Z0 := bd.Unary("r0/act", "gelu", bd.Add("r0/adder", X0, Y0))
	Z1 := bd.Unary("r1/act", "gelu", bd.Add("r1/adder", X1, Y1))
	U0 := bd.Unary("r0/side", "gelu", V0)
	U1 := bd.Unary("r1/side", "gelu", V1)
	bd.Output(Z0, Z1, U0, U1)
	return bd.MustBuild()
}

func recheckGs(t *testing.T, swap bool, fn string) *graph.Graph {
	t.Helper()
	bs := graph.NewBuilder("Gs", nil)
	X := bs.Input("X", shape.Of(4, 6))
	Y := bs.Input("Y", shape.Of(4, 6))
	V := bs.Input("V", shape.Of(4, 6))
	a, b := X, Y
	if swap {
		a, b = Y, X
	}
	Z := bs.Unary("act", fn, bs.Add("adder", a, b))
	U := bs.Unary("side", "gelu", V)
	bs.Output(Z, U)
	return bs.MustBuild()
}

func graphJSON(t *testing.T, g *graph.Graph) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postRecheck(t *testing.T, ts *httptest.Server, body any) (int, RecheckResponse) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/recheck", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr RecheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, rr
}

var recheckRel = map[string][]string{
	"X": {"concat(X0, X1, dim=0)"},
	"Y": {"concat(Y0, Y1, dim=0)"},
	"V": {"concat(V0, V1, dim=0)"},
}

// TestRecheckBatch submits a base graph with two candidates — the
// operand-swap edit and an identical copy — and checks the
// per-candidate deltas: the edit re-saturates only its downstream
// cone, the copy replays everything.
func TestRecheckBatch(t *testing.T) {
	ts, _ := newTestServer(t)
	gd := graphJSON(t, recheckGd(t))
	base := graphJSON(t, recheckGs(t, false, "gelu"))

	status, rr := postRecheck(t, ts, map[string]any{
		"base":       base,
		"candidates": []json.RawMessage{graphJSON(t, recheckGs(t, true, "gelu")), base},
		"gd":         gd,
		"rel":        recheckRel,
	})
	if status != http.StatusOK || rr.BaseVerdict != "refined" {
		t.Fatalf("status %d, response %+v", status, rr)
	}
	if len(rr.Candidates) != 2 {
		t.Fatalf("candidates %+v", rr.Candidates)
	}
	edit := rr.Candidates[0]
	if edit.Verdict != "refined" || edit.UnchangedOps != 1 || edit.ReplayedOps != 1 || edit.RecheckedOps != 2 {
		t.Fatalf("edited candidate %+v", edit)
	}
	if len(edit.Changed) != 2 || len(edit.NewlyFailing) != 0 {
		t.Fatalf("edited candidate delta %+v", edit)
	}
	same := rr.Candidates[1]
	if same.Verdict != "refined" || same.UnchangedOps != 3 || same.ReplayedOps != 3 || same.RecheckedOps != 0 {
		t.Fatalf("identical candidate %+v", same)
	}
}

// TestRecheckNewlyFailing: a semantically broken candidate turns the
// batch 422, with the edited operator classified newly failing while
// its untouched siblings still replay.
func TestRecheckNewlyFailing(t *testing.T) {
	ts, _ := newTestServer(t)
	status, rr := postRecheck(t, ts, map[string]any{
		"base":       graphJSON(t, recheckGs(t, false, "gelu")),
		"candidates": []json.RawMessage{graphJSON(t, recheckGs(t, false, "relu"))},
		"gd":         graphJSON(t, recheckGd(t)),
		"rel":        recheckRel,
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, response %+v", status, rr)
	}
	c := rr.Candidates[0]
	if c.Verdict != "failed" || len(c.NewlyFailing) != 1 || c.NewlyFailing[0].Label != "act" {
		t.Fatalf("broken candidate %+v", c)
	}
	if c.ReplayedOps != 2 || c.RecheckedOps != 1 {
		t.Fatalf("broken candidate counts %+v", c)
	}
	if len(c.Failures) == 0 {
		t.Fatalf("broken candidate lists no failures: %+v", c)
	}
}

// TestRecheckBadRequests: malformed bodies are 400s, not checks.
func TestRecheckBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	gd := graphJSON(t, recheckGd(t))
	base := graphJSON(t, recheckGs(t, false, "gelu"))
	for name, body := range map[string]map[string]any{
		"no candidates": {"base": base, "gd": gd, "rel": recheckRel},
		"no base":       {"candidates": []json.RawMessage{base}, "gd": gd, "rel": recheckRel},
		"bad timeout":   {"base": base, "candidates": []json.RawMessage{base}, "gd": gd, "rel": recheckRel, "timeout": "yes"},
	} {
		if status, _ := postRecheck(t, ts, body); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
}

// TestRecheckDraining: once a drain has begun, a recheck batch is
// bounced at the gate with 503, matching /v1/check's admission
// semantics.
func TestRecheckDraining(t *testing.T) {
	vc, err := vcache.Open(vcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Options: core.Options{Cache: vc}})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	base := graphJSON(t, recheckGs(t, false, "gelu"))
	status, rr := postRecheck(t, ts, map[string]any{
		"base":       base,
		"candidates": []json.RawMessage{base},
		"gd":         graphJSON(t, recheckGd(t)),
		"rel":        recheckRel,
	})
	if status != http.StatusServiceUnavailable || rr.BaseVerdict != "cancelled" {
		t.Fatalf("status %d, response %+v", status, rr)
	}
}
