package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"entangle/internal/core"
	"entangle/internal/expr"
	"entangle/internal/models"
	"entangle/internal/vcache"
)

// renderRel prints a relation term in the grammar exprparse reads —
// the same translation cmd/entangle-graphgen performs for the CLI's
// sidecar files.
func renderRel(t *expr.Term) string {
	if t.IsLeaf() {
		return t.Name
	}
	switch t.Op {
	case expr.OpConcat:
		var b strings.Builder
		b.WriteString("concat(")
		for _, a := range t.Args {
			b.WriteString(renderRel(a) + ", ")
		}
		return b.String() + "dim=" + t.Ints[0].String() + ")"
	case expr.OpSum:
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = renderRel(a)
		}
		return "sum(" + strings.Join(parts, ", ") + ")"
	case expr.OpSlice:
		return fmt.Sprintf("slice(%s, %s, %s, %s)",
			renderRel(t.Args[0]), t.Ints[0], t.Ints[1], t.Ints[2])
	}
	return t.String()
}

// requestBody builds a /v1/check body from a built model.
func requestBody(t *testing.T, b *models.Built, mutate func(*map[string]any)) []byte {
	t.Helper()
	var gs, gd bytes.Buffer
	if err := b.Gs.Write(&gs); err != nil {
		t.Fatal(err)
	}
	if err := b.Gd.Write(&gd); err != nil {
		t.Fatal(err)
	}
	rel := map[string][]string{}
	for _, id := range b.Ri.Tensors() {
		name := b.Gs.Tensor(id).Name
		for _, m := range b.Ri.Get(id) {
			rel[name] = append(rel[name], renderRel(m))
		}
	}
	body := map[string]any{
		"gs":  json.RawMessage(gs.Bytes()),
		"gd":  json.RawMessage(gd.Bytes()),
		"rel": rel,
	}
	if mutate != nil {
		mutate(&body)
	}
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func post(t *testing.T, ts *httptest.Server, body []byte) (int, CheckResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, cr
}

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func newTestServer(t *testing.T) (*httptest.Server, *vcache.Cache) {
	t.Helper()
	vc, err := vcache.Open(vcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Options: core.Options{Cache: vc}}))
	t.Cleanup(ts.Close)
	return ts, vc
}

// TestCheckWarmCache drives the daemon's reason to exist: the second
// check of the same model hits the shared cache and performs zero live
// saturation work, and /v1/stats shows the hits.
func TestCheckWarmCache(t *testing.T) {
	b, err := models.GPT(models.Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t)
	body := requestBody(t, b, nil)

	status, cold := post(t, ts, body)
	if status != http.StatusOK || cold.Verdict != "refined" {
		t.Fatalf("cold: status %d resp %+v", status, cold)
	}
	if cold.OpsProcessed == 0 || len(cold.OutputRelation) == 0 {
		t.Fatalf("cold response incomplete: %+v", cold)
	}
	if cold.Cache.Stores == 0 {
		t.Fatalf("cold run stored nothing: %+v", cold.Cache)
	}

	status, warm := post(t, ts, body)
	if status != http.StatusOK || warm.Verdict != "refined" {
		t.Fatalf("warm: status %d resp %+v", status, warm)
	}
	if warm.Cache.Hits == 0 || warm.Cache.Misses != 0 {
		t.Fatalf("warm run missed the shared cache: %+v", warm.Cache)
	}
	if warm.LiveStats.Iterations != 0 {
		t.Fatalf("warm run re-saturated: %+v", warm.LiveStats)
	}
	if got, want := fmt.Sprint(warm.OutputRelation), fmt.Sprint(cold.OutputRelation); got != want {
		t.Fatalf("warm relation differs:\n  cold: %s\n  warm: %s", want, got)
	}

	stats := getStats(t, ts)
	if stats.Requests != 2 || stats.Refined != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Cache == nil || stats.Cache.Hits == 0 {
		t.Fatalf("stats must surface non-zero cache hits: %+v", stats)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(buf.String()) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, buf.String())
	}
}

// TestCheckFailure posts a buggy model: the daemon must localize the
// failure (422, the failing operator named) rather than crash, and
// keep_going must list every failure.
func TestCheckFailure(t *testing.T) {
	b, err := models.GPT(models.Options{TP: 2, Bug: models.Bug7MissingAllReduce})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t)

	status, resp := post(t, ts, requestBody(t, b, nil))
	if status != http.StatusUnprocessableEntity || resp.Verdict != "failed" {
		t.Fatalf("status %d resp %+v", status, resp)
	}
	if !strings.Contains(resp.Error, "refinement failed") {
		t.Fatalf("error not localized: %q", resp.Error)
	}

	status, resp = post(t, ts, requestBody(t, b, func(m *map[string]any) {
		(*m)["keep_going"] = true
	}))
	if status != http.StatusUnprocessableEntity || len(resp.Failures) == 0 {
		t.Fatalf("keep_going: status %d resp %+v", status, resp)
	}

	if stats := getStats(t, ts); stats.Failed != 2 {
		t.Fatalf("stats after failures: %+v", stats)
	}
}

func TestBadRequests(t *testing.T) {
	b, err := models.Regression(models.Options{GradAccum: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t)

	cases := map[string][]byte{
		"not json":     []byte("{"),
		"missing gd":   requestBody(t, b, func(m *map[string]any) { delete(*m, "gd") }),
		"bad timeout":  requestBody(t, b, func(m *map[string]any) { (*m)["timeout"] = "soon" }),
		"unknown name": requestBody(t, b, func(m *map[string]any) { (*m)["rel"] = map[string][]string{"nope": {"x"}} }),
		"bad format":   requestBody(t, b, func(m *map[string]any) { (*m)["format"] = "protobuf" }),
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			status, resp := post(t, ts, body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d resp %+v", status, resp)
			}
			if resp.Error == "" {
				t.Fatal("bad request carried no error text")
			}
		})
	}

	// Wrong methods.
	resp, err := http.Get(ts.URL + "/v1/check")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/check: %d", resp.StatusCode)
	}
}

// TestRequestTimeout threads the per-request deadline through the
// check: an immediately-expiring timeout yields a cancellation, not a
// verdict.
func TestRequestTimeout(t *testing.T) {
	b, err := models.GPT(models.Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t)
	status, resp := post(t, ts, requestBody(t, b, func(m *map[string]any) {
		(*m)["timeout"] = "1ns"
	}))
	if status != http.StatusServiceUnavailable || resp.Verdict != "cancelled" {
		t.Fatalf("status %d resp %+v", status, resp)
	}
}

// TestConcurrentRequests hammers one daemon with a mixed model fleet —
// run under -race in CI. All requests share one cache; repeats of the
// same model must come back warm and identical.
func TestConcurrentRequests(t *testing.T) {
	builds := []func() (*models.Built, error){
		func() (*models.Built, error) { return models.GPT(models.Options{TP: 2}) },
		func() (*models.Built, error) { return models.Llama(models.Options{TP: 2}) },
		func() (*models.Built, error) { return models.Regression(models.Options{GradAccum: 2}) },
	}
	bodies := make([][]byte, len(builds))
	for i, build := range builds {
		b, err := build()
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = requestBody(t, b, nil)
	}
	ts, _ := newTestServer(t)

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan string, rounds*len(bodies))
	for round := 0; round < rounds; round++ {
		for i := range bodies {
			wg.Add(1)
			go func(body []byte) {
				defer wg.Done()
				status, resp := post(t, ts, body)
				if status != http.StatusOK || resp.Verdict != "refined" {
					errs <- fmt.Sprintf("status %d resp %+v", status, resp)
				}
			}(bodies[i])
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	stats := getStats(t, ts)
	if stats.Requests != rounds*int64(len(bodies)) || stats.Refined != stats.Requests {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Cache == nil || stats.Cache.Hits == 0 {
		t.Fatalf("repeated models never hit the shared cache: %+v", stats)
	}
	if stats.InFlight != 0 {
		t.Fatalf("in-flight leak: %+v", stats)
	}
}
