package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"entangle/internal/cluster"
	"entangle/internal/core"
	"entangle/internal/egraph"
	"entangle/internal/fingerprint"
	"entangle/internal/graph"
	"entangle/internal/vcache"
)

// TestDrainMidRecheckBatch drains the gate while a recheck batch is
// mid-flight: the candidate being checked when the drain latch flips
// holds an admitted gate slot, so it must run to completion and keep
// its delta; the batch's remaining candidates must bounce cleanly as
// "cancelled"/draining, never hang or half-run.
func TestDrainMidRecheckBatch(t *testing.T) {
	vc, err := vcache.Open(vcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// The drain begins deterministically inside candidate 1's check: the
	// edited candidate re-saturates "act" (its cone moved), which is the
	// second time the hook sees that label — the first was the base
	// warm-up check.
	var srv *Server
	var actChecks atomic.Int32
	srv = New(Config{Options: core.Options{
		Cache: vc,
		PreOp: func(v *graph.Node) *egraph.SaturateOpts {
			if v.Label == "act" && actChecks.Add(1) == 2 {
				srv.gate.StartDrain()
			}
			return nil
		},
	}})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	base := graphJSON(t, recheckGs(t, false, "gelu"))
	status, rr := postRecheck(t, ts, map[string]any{
		"base":       base,
		"candidates": []json.RawMessage{graphJSON(t, recheckGs(t, true, "gelu")), base},
		"gd":         graphJSON(t, recheckGd(t)),
		"rel":        recheckRel,
	})
	if status != http.StatusServiceUnavailable || rr.BaseVerdict != "refined" {
		t.Fatalf("status %d, response %+v", status, rr)
	}
	if len(rr.Candidates) != 2 {
		t.Fatalf("candidates %+v", rr.Candidates)
	}
	// The in-flight candidate finished its full delta despite the drain.
	inflight := rr.Candidates[0]
	if inflight.Verdict != "refined" || inflight.RecheckedOps != 2 || inflight.ReplayedOps != 1 {
		t.Fatalf("in-flight candidate did not run to completion: %+v", inflight)
	}
	// The next candidate was refused at the gate, not abandoned mid-check.
	bounced := rr.Candidates[1]
	if bounced.Verdict != "cancelled" || !strings.Contains(bounced.Error, "draining") {
		t.Fatalf("post-drain candidate not cleanly bounced: %+v", bounced)
	}
	// With the batch gone, the drain itself must complete.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain after batch: %v", err)
	}
}

// blockingTransport wedges every peer forward until its context is
// cancelled, simulating an unresponsive owner at the moment the daemon
// is told to shut down. Fetches answer authoritative misses so the
// check reaches its Put-side forwards.
type blockingTransport struct {
	started chan struct{}
	once    sync.Once
}

func (b *blockingTransport) Fetch(ctx context.Context, peer cluster.Member, key fingerprint.Hash) ([]byte, error) {
	return nil, cluster.ErrNotFound
}

func (b *blockingTransport) Offer(ctx context.Context, peer cluster.Member, key fingerprint.Hash, data []byte) error {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return ctx.Err()
}

// TestDrainAbortsInFlightPeerForward runs the daemon's SIGTERM sequence
// — close the fleet cache, then drain the gate — while a check is
// wedged inside a peer forward to an unresponsive owner. Close must
// abort the in-flight forward, the check must still complete with its
// correct verdict (the forward degrades; the verdict is already safe
// locally), and the drain must finish instead of waiting out the peer.
func TestDrainAbortsInFlightPeerForward(t *testing.T) {
	vc, err := vcache.Open(vcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// Enough peers that the fixture's (deterministic) fingerprints are
	// overwhelmingly likely to include peer-owned keys; the guard below
	// fails loudly if a key-derivation change ever breaks that.
	members := []cluster.Member{{ID: "a", URL: "mem://a"}}
	for _, id := range []string{"b", "c", "d", "e", "f", "g", "h", "i"} {
		members = append(members, cluster.Member{ID: id, URL: "mem://" + id})
	}
	ms, err := cluster.NewMembership("a", members)
	if err != nil {
		t.Fatal(err)
	}
	bt := &blockingTransport{started: make(chan struct{})}
	fleet, err := cluster.NewCache(cluster.CacheConfig{
		Membership: ms,
		Local:      vc,
		Client:     cluster.NewClient(cluster.ClientConfig{Transport: bt}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Options: core.Options{Cache: fleet}, Local: vc})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	body, err := json.Marshal(CheckRequest{
		Gs:  graphJSON(t, recheckGs(t, false, "gelu")),
		Gd:  graphJSON(t, recheckGd(t)),
		Rel: recheckRel,
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		resp   CheckResponse
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var cr CheckResponse
		err = json.NewDecoder(resp.Body).Decode(&cr)
		done <- result{status: resp.StatusCode, resp: cr, err: err}
	}()

	select {
	case <-bt.started:
		// A forward is wedged in flight; now shut down underneath it.
	case r := <-done:
		t.Fatalf("check finished without forwarding (all fixture keys self-owned? response %+v, err %v); widen the member list", r.resp, r.err)
	case <-time.After(30 * time.Second):
		t.Fatal("check neither forwarded nor finished")
	}

	fleet.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain stuck behind a wedged peer forward: %v", err)
	}

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.status != http.StatusOK || r.resp.Verdict != "refined" {
		t.Fatalf("wedged-forward check did not complete correctly: status %d, %+v", r.status, r.resp)
	}
	if st := fleet.ClusterStats(); st.ForwardFailures == 0 {
		t.Fatalf("no forward failure recorded — the aborted forward vanished: %+v", st)
	}
}
