package server

import (
	"context"
	"errors"
	"sync"
)

// ErrDraining is returned by Gate.Acquire once a drain has begun: the
// daemon is shutting down and admits no new work.
var ErrDraining = errors.New("server: draining, not admitting new work")

// GateCore is the pure admission/drain state machine of the daemon:
// a bounded count of in-flight checks plus a one-way drain latch.
// It has no locks and no channels — Gate wraps it for the production
// HTTP path, and the internal/mc daemon model drives copies of it
// directly, so the exhaustively checked protocol ("drain admits no new
// work, completes all admitted work") is the shipped decision logic.
type GateCore struct {
	// Cap bounds concurrent admissions.
	Cap int
	// InFlight counts admitted, not-yet-completed checks.
	InFlight int
	// Draining is set (irrevocably) when shutdown begins.
	Draining bool
	// Drained is set once Draining held with InFlight == 0.
	Drained bool
}

// CanAdmit reports whether a new check may start: never while
// draining, never beyond capacity.
func (g *GateCore) CanAdmit() bool {
	return !g.Draining && g.InFlight < g.Cap
}

// Admit records one admission. Callers must have checked CanAdmit
// under the same critical section; Admit returns false (and changes
// nothing) if the admission would be illegal, which the model checker
// turns into an invariant violation rather than a silent overshoot.
func (g *GateCore) Admit() bool {
	if !g.CanAdmit() {
		return false
	}
	g.InFlight++
	return true
}

// Complete records one admitted check finishing and advances the drain
// latch when this was the last one.
func (g *GateCore) Complete() {
	g.InFlight--
	g.advance()
}

// StartDrain sets the drain latch. Idempotent.
func (g *GateCore) StartDrain() {
	g.Draining = true
	g.advance()
}

// advance marks the drain complete once nothing is in flight.
func (g *GateCore) advance() {
	if g.Draining && g.InFlight == 0 {
		g.Drained = true
	}
}

// Gate is the concurrency shell around GateCore: a context-aware
// bounded semaphore with a drain latch. Acquire blocks while the gate
// is at capacity, fails fast with ErrDraining once a drain has begun
// (including requests already queued when it begins), and respects the
// caller's context while queued. Drain waits for every admitted check
// to finish.
type Gate struct {
	mu      sync.Mutex
	core    GateCore
	changed chan struct{} // closed and replaced on every transition
}

// NewGate builds a gate admitting at most cap concurrent holders.
func NewGate(cap int) *Gate {
	return &Gate{core: GateCore{Cap: cap}, changed: make(chan struct{})}
}

// bump wakes every waiter. Caller holds g.mu.
func (g *Gate) bump() {
	close(g.changed)
	g.changed = make(chan struct{})
}

// Acquire admits the caller or reports why it cannot: ErrDraining once
// shutdown has begun, or ctx.Err() if the context expires while queued
// at capacity.
func (g *Gate) Acquire(ctx context.Context) error {
	for {
		g.mu.Lock()
		if g.core.Draining {
			g.mu.Unlock()
			return ErrDraining
		}
		if g.core.Admit() {
			g.mu.Unlock()
			return nil
		}
		ch := g.changed
		g.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Release completes one admitted check.
func (g *Gate) Release() {
	g.mu.Lock()
	g.core.Complete()
	g.bump()
	g.mu.Unlock()
}

// StartDrain flips the gate into drain mode without waiting: queued
// and future Acquires fail with ErrDraining immediately. Idempotent.
func (g *Gate) StartDrain() {
	g.mu.Lock()
	g.core.StartDrain()
	g.bump()
	g.mu.Unlock()
}

// Drain starts the drain (if not already started) and blocks until
// every admitted check has completed or ctx expires.
func (g *Gate) Drain(ctx context.Context) error {
	g.StartDrain()
	for {
		g.mu.Lock()
		if g.core.Drained {
			g.mu.Unlock()
			return nil
		}
		ch := g.changed
		g.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Snapshot copies the core state for stats reporting.
func (g *Gate) Snapshot() GateCore {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.core
}
