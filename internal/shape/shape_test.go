package shape

import (
	"testing"

	"entangle/internal/expr"
	"entangle/internal/sym"
)

func ctx() *sym.Context { return sym.NewContext() }

func infer1(t *testing.T, op expr.Op, ints []sym.Expr, in ...Shape) Shape {
	t.Helper()
	out, err := Infer(op, "", ints, in, ctx())
	if err != nil {
		t.Fatalf("Infer(%s): %v", op, err)
	}
	if len(out) != 1 {
		t.Fatalf("Infer(%s): %d outputs", op, len(out))
	}
	return out[0]
}

func wantShape(t *testing.T, got Shape, want Shape) {
	t.Helper()
	if !got.Equal(want, ctx()) {
		t.Fatalf("shape %s want %s", got, want)
	}
}

func TestMatMul(t *testing.T) {
	out := infer1(t, expr.OpMatMul, nil, Of(4, 8), Of(8, 16))
	wantShape(t, out, Of(4, 16))
	// batched with broadcast
	out = infer1(t, expr.OpMatMul, nil, Of(2, 4, 8), Of(8, 16))
	wantShape(t, out, Of(2, 4, 16))
	// provably-mismatched inner dims rejected
	if _, err := Infer(expr.OpMatMul, "", nil, []Shape{Of(4, 8), Of(9, 16)}, ctx()); err == nil {
		t.Fatal("matmul 8 vs 9 must fail")
	}
}

func TestMatMulSymbolicInner(t *testing.T) {
	c := sym.NewContext()
	h := sym.Var("H")
	// Unknown equality is accepted; provable inequality rejected.
	in := []Shape{{sym.Const(4), h}, {h.AddConst(0), sym.Const(3)}}
	if _, err := Infer(expr.OpMatMul, "", nil, in, c); err != nil {
		t.Fatalf("symbolic equal inner dims should pass: %v", err)
	}
	c2 := sym.NewContext()
	c2.AssumePositive("H")
	bad := []Shape{{sym.Const(4), h}, {h.AddConst(1), sym.Const(3)}}
	if _, err := Infer(expr.OpMatMul, "", nil, bad, c2); err == nil {
		t.Fatal("H vs H+1 must fail when H+1≠H provable")
	}
}

func TestConcat(t *testing.T) {
	out := infer1(t, expr.OpConcat, []sym.Expr{sym.Const(0)}, Of(2, 8), Of(3, 8))
	wantShape(t, out, Of(5, 8))
	out = infer1(t, expr.OpConcat, []sym.Expr{sym.Const(1)}, Of(2, 8), Of(2, 8), Of(2, 8))
	wantShape(t, out, Of(2, 24))
	// negative dim
	out = infer1(t, expr.OpConcat, []sym.Expr{sym.Const(-1)}, Of(2, 8), Of(2, 8))
	wantShape(t, out, Of(2, 16))
	if _, err := Infer(expr.OpConcat, "", []sym.Expr{sym.Const(0)}, []Shape{Of(2, 8), Of(3, 9)}, ctx()); err == nil {
		t.Fatal("concat with mismatched non-concat dims must fail")
	}
}

func TestSlice(t *testing.T) {
	out := infer1(t, expr.OpSlice, []sym.Expr{sym.Const(1), sym.Const(2), sym.Const(6)}, Of(4, 8))
	wantShape(t, out, Of(4, 4))
	if _, err := Infer(expr.OpSlice, "", []sym.Expr{sym.Const(0), sym.Const(3), sym.Const(2)}, []Shape{Of(4, 8)}, ctx()); err == nil {
		t.Fatal("begin>end must fail")
	}
	if _, err := Infer(expr.OpSlice, "", []sym.Expr{sym.Const(0), sym.Const(0), sym.Const(9)}, []Shape{Of(4, 8)}, ctx()); err == nil {
		t.Fatal("end beyond extent must fail")
	}
}

func TestSliceSymbolic(t *testing.T) {
	c := sym.NewContext()
	s := sym.Var("S")
	c.AssumeGE(s, sym.Const(2))
	half, _ := s.MulConst(1).DivConst(1)
	_ = half
	shard := sym.Var("Sh")
	c.AssumeEQ(s, shard.MulConst(2))
	c.AssumePositive("Sh")
	out, err := Infer(expr.OpSlice, "", []sym.Expr{sym.Const(0), sym.Const(0), shard}, []Shape{{s, sym.Const(8)}}, c)
	if err != nil {
		t.Fatalf("symbolic slice: %v", err)
	}
	if !out[0][0].Equal(shard) {
		t.Fatalf("slice extent %s want Sh", out[0][0])
	}
}

func TestTransposePadReshapeReduce(t *testing.T) {
	out := infer1(t, expr.OpTranspose, []sym.Expr{sym.Const(0), sym.Const(1)}, Of(2, 8))
	wantShape(t, out, Of(8, 2))
	out = infer1(t, expr.OpPad, []sym.Expr{sym.Const(1), sym.Const(1), sym.Const(3)}, Of(2, 8))
	wantShape(t, out, Of(2, 12))
	out = infer1(t, expr.OpReshape, []sym.Expr{sym.Const(4), sym.Const(4)}, Of(2, 8))
	wantShape(t, out, Of(4, 4))
	if _, err := Infer(expr.OpReshape, "", []sym.Expr{sym.Const(5), sym.Const(5)}, []Shape{Of(2, 8)}, ctx()); err == nil {
		t.Fatal("reshape changing element count must fail")
	}
	out = infer1(t, expr.OpReduceSum, []sym.Expr{sym.Const(0)}, Of(4, 8))
	wantShape(t, out, Of(1, 8))
}

func TestElementwiseMismatch(t *testing.T) {
	if _, err := Infer(expr.OpAdd, "", nil, []Shape{Of(2, 8), Of(2, 9)}, ctx()); err == nil {
		t.Fatal("add with mismatched shapes must fail")
	}
	out := infer1(t, expr.OpSum, nil, Of(2, 8), Of(2, 8), Of(2, 8))
	wantShape(t, out, Of(2, 8))
}

func TestNNOps(t *testing.T) {
	out := infer1(t, expr.OpLayerNorm, nil, Of(4, 8), Of(8), Of(8))
	wantShape(t, out, Of(4, 8))
	out = infer1(t, expr.OpRMSNorm, nil, Of(4, 8), Of(8))
	wantShape(t, out, Of(4, 8))
	out = infer1(t, expr.OpEmbedding, nil, Of(100, 16), Of(4))
	wantShape(t, out, Of(4, 16))
	out = infer1(t, expr.OpSoftmax, []sym.Expr{sym.Const(1)}, Of(4, 8))
	wantShape(t, out, Of(4, 8))
	out = infer1(t, expr.OpMSELoss, nil, Of(4, 8), Of(4, 8))
	wantShape(t, out, Of(1))
	out = infer1(t, expr.OpRouter, nil, Of(4, 8), Of(8, 2))
	wantShape(t, out, Of(4, 2))
	out = infer1(t, expr.OpAuxLoss, nil, Of(4, 2))
	wantShape(t, out, Of(1))
	out = infer1(t, expr.OpAttention, nil, Of(4, 16), Of(4, 16), Of(4, 16))
	wantShape(t, out, Of(4, 16))
	out = infer1(t, expr.OpRoPE, nil, Of(4, 16), Of(4, 16), Of(4, 16))
	wantShape(t, out, Of(4, 16))
}

func TestCollectives(t *testing.T) {
	outs, err := Infer(expr.OpAllReduce, "", nil, []Shape{Of(4, 8), Of(4, 8)}, ctx())
	if err != nil || len(outs) != 2 {
		t.Fatalf("allreduce: %v %d", err, len(outs))
	}
	wantShape(t, outs[0], Of(4, 8))

	outs, err = Infer(expr.OpReduceScatter, "", []sym.Expr{sym.Const(0)}, []Shape{Of(4, 8), Of(4, 8)}, ctx())
	if err != nil {
		t.Fatalf("reducescatter: %v", err)
	}
	wantShape(t, outs[0], Of(2, 8))
	wantShape(t, outs[1], Of(2, 8))

	if _, err := Infer(expr.OpReduceScatter, "", []sym.Expr{sym.Const(0)}, []Shape{Of(5, 8), Of(5, 8)}, ctx()); err == nil {
		t.Fatal("reducescatter of 5 over 2 ranks must fail")
	}

	outs, err = Infer(expr.OpAllGather, "", []sym.Expr{sym.Const(1)}, []Shape{Of(4, 8), Of(4, 8)}, ctx())
	if err != nil {
		t.Fatalf("allgather: %v", err)
	}
	wantShape(t, outs[0], Of(4, 16))
}

func TestUnknownOp(t *testing.T) {
	if _, err := Infer(expr.Op("bogus"), "", nil, []Shape{Of(1)}, ctx()); err == nil {
		t.Fatal("unknown op must fail")
	}
}

func TestConcrete(t *testing.T) {
	s := Shape{sym.Var("S"), sym.Const(8)}
	dims, err := s.Concrete(map[sym.Symbol]int64{"S": 4})
	if err != nil || dims[0] != 4 || dims[1] != 8 {
		t.Fatalf("concrete: %v %v", dims, err)
	}
	if _, err := s.Concrete(nil); err == nil {
		t.Fatal("unbound symbol must fail")
	}
	neg := Shape{sym.Const(-1)}
	if _, err := neg.Concrete(nil); err == nil {
		t.Fatal("negative extent must fail")
	}
}
