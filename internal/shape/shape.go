// Package shape implements symbolic shape inference for every operator
// in the expression language. The refinement checker and the graph
// builder use it to validate graphs (the paper validates lemmas "e.g.,
// by checking correct shapes and types", §5) and lemma side conditions.
package shape

import (
	"fmt"

	"entangle/internal/expr"
	"entangle/internal/sym"
)

// Shape is a tensor shape: one symbolic extent per dimension.
type Shape []sym.Expr

// Of builds a shape from constant extents.
func Of(dims ...int64) Shape {
	s := make(Shape, len(dims))
	for i, d := range dims {
		s[i] = sym.Const(d)
	}
	return s
}

// Clone returns an independent copy.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes are provably equal under ctx.
func (s Shape) Equal(o Shape, ctx *sym.Context) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if !ctx.ProveEQ(s[i], o[i]) {
			return false
		}
	}
	return true
}

// String renders e.g. "[4,S,H]".
func (s Shape) String() string {
	out := "["
	for i, d := range s {
		if i > 0 {
			out += ","
		}
		out += d.String()
	}
	return out + "]"
}

// Concrete evaluates every extent; it fails if any symbol is unbound.
func (s Shape) Concrete(env map[sym.Symbol]int64) ([]int, error) {
	out := make([]int, len(s))
	for i, d := range s {
		v, err := d.Eval(env)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("shape: negative extent %d in dim %d", v, i)
		}
		out[i] = int(v)
	}
	return out, nil
}

// Infer computes the output shapes of an operator application.
// For single-output operators the result has length 1; collectives
// produce one shape per output (== len(inputs)).
func Infer(op expr.Op, str string, ints []sym.Expr, in []Shape, ctx *sym.Context) ([]Shape, error) {
	one := func(s Shape, err error) ([]Shape, error) {
		if err != nil {
			return nil, err
		}
		return []Shape{s}, nil
	}
	switch op {
	case expr.OpIdentity, expr.OpScale, expr.OpUnary, expr.OpSoftmax, expr.OpRoPE:
		if err := needArgs(op, in, 1, 3); err != nil {
			return nil, err
		}
		return one(in[0].Clone(), nil)
	case expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv:
		if len(in) != 2 {
			return nil, arityErr(op, in)
		}
		return one(broadcastBinary(op, in[0], in[1], ctx))
	case expr.OpSum:
		if len(in) == 0 {
			return nil, arityErr(op, in)
		}
		for _, s := range in[1:] {
			if !in[0].Equal(s, ctx) {
				return nil, fmt.Errorf("shape: sum operands differ: %s vs %s", in[0], s)
			}
		}
		return one(in[0].Clone(), nil)
	case expr.OpConcat:
		return one(inferConcat(ints, in, ctx))
	case expr.OpSlice:
		return one(inferSlice(ints, in, ctx))
	case expr.OpTranspose:
		return one(inferTranspose(ints, in, ctx))
	case expr.OpReshape:
		return one(inferReshape(ints, in, ctx))
	case expr.OpPad:
		return one(inferPad(ints, in, ctx))
	case expr.OpMatMul:
		return one(inferMatMul(in, ctx))
	case expr.OpReduceSum:
		return one(inferReduceSum(ints, in, ctx))
	case expr.OpLayerNorm:
		if len(in) != 3 {
			return nil, arityErr(op, in)
		}
		return one(in[0].Clone(), nil)
	case expr.OpRMSNorm:
		if len(in) != 2 {
			return nil, arityErr(op, in)
		}
		return one(in[0].Clone(), nil)
	case expr.OpFusedAddRMSNorm:
		if len(in) != 3 {
			return nil, arityErr(op, in)
		}
		if !in[0].Equal(in[1], ctx) {
			return nil, fmt.Errorf("shape: fused_add_rmsnorm x/residual differ: %s vs %s", in[0], in[1])
		}
		return one(in[0].Clone(), nil)
	case expr.OpFusedSiluMul:
		if len(in) != 2 {
			return nil, arityErr(op, in)
		}
		if !in[0].Equal(in[1], ctx) {
			return nil, fmt.Errorf("shape: fused_silu_mul operands differ: %s vs %s", in[0], in[1])
		}
		return one(in[0].Clone(), nil)
	case expr.OpEmbedding, expr.OpEmbeddingShard:
		return one(inferEmbedding(op, in))
	case expr.OpAttention:
		if len(in) != 3 {
			return nil, arityErr(op, in)
		}
		if !in[1].Equal(in[2], ctx) {
			return nil, fmt.Errorf("shape: attention k/v differ: %s vs %s", in[1], in[2])
		}
		if len(in[0]) != len(in[1]) || !ctx.ProveEQ(in[0][len(in[0])-1], in[1][len(in[1])-1]) {
			if ctx.ProveNE(in[0][len(in[0])-1], in[1][len(in[1])-1]) {
				return nil, fmt.Errorf("shape: attention q/k hidden dims differ: %s vs %s", in[0], in[1])
			}
		}
		return one(in[0].Clone(), nil)
	case expr.OpMSELoss, expr.OpSquaredError:
		if len(in) != 2 {
			return nil, arityErr(op, in)
		}
		if !in[0].Equal(in[1], ctx) {
			return nil, fmt.Errorf("shape: %s operands differ: %s vs %s", op, in[0], in[1])
		}
		return one(Of(1), nil)
	case expr.OpAuxLoss:
		if len(in) != 1 {
			return nil, arityErr(op, in)
		}
		return one(Of(1), nil)
	case expr.OpRouter:
		return one(inferMatMul(in, ctx)) // x[·,h] × w[h,e] → [·,e]
	case expr.OpAllReduce:
		return inferAllReduce(in, ctx)
	case expr.OpReduceScatter:
		return inferReduceScatter(ints, in, ctx)
	case expr.OpAllGather:
		return inferAllGather(ints, in, ctx)
	}
	return nil, fmt.Errorf("shape: unknown operator %q", op)
}

// broadcastBinary resolves the output shape of a binary elementwise
// op: dimensions must be provably equal, or one side provably 1
// (PyTorch-style broadcasting restricted to equal ranks).
func broadcastBinary(op expr.Op, a, b Shape, ctx *sym.Context) (Shape, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("shape: %s rank %d vs %d", op, len(a), len(b))
	}
	out := make(Shape, len(a))
	for i := range a {
		switch {
		case ctx.ProveEQ(a[i], b[i]):
			out[i] = a[i]
		case ctx.ProveEQ(a[i], sym.Const(1)):
			out[i] = b[i]
		case ctx.ProveEQ(b[i], sym.Const(1)):
			out[i] = a[i]
		default:
			return nil, fmt.Errorf("shape: %s operands differ at dim %d: %s vs %s", op, i, a, b)
		}
	}
	return out, nil
}

func arityErr(op expr.Op, in []Shape) error {
	return fmt.Errorf("shape: %s got %d inputs", op, len(in))
}

func needArgs(op expr.Op, in []Shape, lo, hi int) error {
	if len(in) < lo || len(in) > hi {
		return arityErr(op, in)
	}
	return nil
}

func dimIndex(d sym.Expr, rank int) (int, error) {
	v, ok := d.IsConst()
	if !ok {
		return 0, fmt.Errorf("shape: symbolic dimension index %s unsupported", d)
	}
	if v < 0 {
		v += int64(rank)
	}
	if v < 0 || int(v) >= rank {
		return 0, fmt.Errorf("shape: dim %d out of range for rank %d", v, rank)
	}
	return int(v), nil
}

func inferConcat(ints []sym.Expr, in []Shape, ctx *sym.Context) (Shape, error) {
	if len(ints) != 1 || len(in) == 0 {
		return nil, fmt.Errorf("shape: concat needs dim attr and ≥1 input")
	}
	d, err := dimIndex(ints[0], len(in[0]))
	if err != nil {
		return nil, err
	}
	out := in[0].Clone()
	total := in[0][d]
	for _, s := range in[1:] {
		if len(s) != len(in[0]) {
			return nil, fmt.Errorf("shape: concat rank mismatch %s vs %s", in[0], s)
		}
		for i := range s {
			if i == d {
				continue
			}
			if !ctx.ProveEQ(s[i], in[0][i]) {
				return nil, fmt.Errorf("shape: concat dim %d mismatch %s vs %s", i, in[0], s)
			}
		}
		total = total.Add(s[d])
	}
	out[d] = total
	return out, nil
}

func inferSlice(ints []sym.Expr, in []Shape, ctx *sym.Context) (Shape, error) {
	if len(ints) != 3 || len(in) != 1 {
		return nil, fmt.Errorf("shape: slice needs (dim,begin,end) and 1 input")
	}
	d, err := dimIndex(ints[0], len(in[0]))
	if err != nil {
		return nil, err
	}
	begin, end := ints[1], ints[2]
	if ctx.ProveGT(sym.Const(0), begin) {
		return nil, fmt.Errorf("shape: slice begin %s < 0", begin)
	}
	if ctx.ProveGT(begin, end) {
		return nil, fmt.Errorf("shape: slice begin %s > end %s", begin, end)
	}
	if ctx.ProveGT(end, in[0][d]) {
		return nil, fmt.Errorf("shape: slice end %s exceeds extent %s", end, in[0][d])
	}
	out := in[0].Clone()
	out[d] = end.Sub(begin)
	return out, nil
}

func inferTranspose(ints []sym.Expr, in []Shape, _ *sym.Context) (Shape, error) {
	if len(ints) != 2 || len(in) != 1 {
		return nil, fmt.Errorf("shape: transpose needs (d0,d1) and 1 input")
	}
	d0, err := dimIndex(ints[0], len(in[0]))
	if err != nil {
		return nil, err
	}
	d1, err := dimIndex(ints[1], len(in[0]))
	if err != nil {
		return nil, err
	}
	out := in[0].Clone()
	out[d0], out[d1] = out[d1], out[d0]
	return out, nil
}

func inferReshape(ints []sym.Expr, in []Shape, _ *sym.Context) (Shape, error) {
	if len(in) != 1 || len(ints) == 0 {
		return nil, fmt.Errorf("shape: reshape needs target shape and 1 input")
	}
	// Element-count preservation is only checkable when both shapes are
	// fully concrete (symbolic products are non-linear).
	inProd, outProd := int64(1), int64(1)
	allConst := true
	for _, d := range in[0] {
		if v, ok := d.IsConst(); ok {
			inProd *= v
		} else {
			allConst = false
		}
	}
	for _, d := range ints {
		if v, ok := d.IsConst(); ok {
			outProd *= v
		} else {
			allConst = false
		}
	}
	if allConst && inProd != outProd {
		return nil, fmt.Errorf("shape: reshape %s → %v changes element count", in[0], Shape(ints))
	}
	return Shape(ints).Clone(), nil
}

func inferPad(ints []sym.Expr, in []Shape, _ *sym.Context) (Shape, error) {
	if len(ints) != 3 || len(in) != 1 {
		return nil, fmt.Errorf("shape: pad needs (dim,before,after) and 1 input")
	}
	d, err := dimIndex(ints[0], len(in[0]))
	if err != nil {
		return nil, err
	}
	out := in[0].Clone()
	out[d] = out[d].Add(ints[1]).Add(ints[2])
	return out, nil
}

func inferMatMul(in []Shape, ctx *sym.Context) (Shape, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("shape: matmul needs 2 inputs")
	}
	a, b := in[0], in[1]
	if len(a) < 2 || len(b) < 2 {
		return nil, fmt.Errorf("shape: matmul ranks %d,%d < 2", len(a), len(b))
	}
	k1, k2 := a[len(a)-1], b[len(b)-2]
	if !ctx.ProveEQ(k1, k2) {
		// Only reject when provably unequal; otherwise accept (the
		// symbolic context may simply lack the needed facts).
		if ctx.ProveNE(k1, k2) {
			return nil, fmt.Errorf("shape: matmul inner dims %s ≠ %s", k1, k2)
		}
	}
	// Batched: broadcast leading dims from the higher-rank side.
	lead := a[:len(a)-2]
	if len(b) > len(a) {
		lead = b[:len(b)-2]
	}
	out := make(Shape, 0, len(lead)+2)
	out = append(out, lead.Clone()...)
	out = append(out, a[len(a)-2], b[len(b)-1])
	return out, nil
}

func inferReduceSum(ints []sym.Expr, in []Shape, _ *sym.Context) (Shape, error) {
	if len(ints) != 1 || len(in) != 1 {
		return nil, fmt.Errorf("shape: reducesum needs dim and 1 input")
	}
	d, err := dimIndex(ints[0], len(in[0]))
	if err != nil {
		return nil, err
	}
	out := in[0].Clone()
	out[d] = sym.Const(1)
	return out, nil
}

func inferEmbedding(op expr.Op, in []Shape) (Shape, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("shape: %s needs (table, ids)", op)
	}
	table, ids := in[0], in[1]
	if len(table) != 2 {
		return nil, fmt.Errorf("shape: %s table must be rank 2, got %s", op, table)
	}
	out := ids.Clone()
	out = append(out, table[1])
	return out, nil
}

func inferAllReduce(in []Shape, ctx *sym.Context) ([]Shape, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("shape: allreduce needs ≥1 input")
	}
	for _, s := range in[1:] {
		if !in[0].Equal(s, ctx) {
			return nil, fmt.Errorf("shape: allreduce shards differ: %s vs %s", in[0], s)
		}
	}
	out := make([]Shape, len(in))
	for i := range in {
		out[i] = in[0].Clone()
	}
	return out, nil
}

func inferReduceScatter(ints []sym.Expr, in []Shape, ctx *sym.Context) ([]Shape, error) {
	if len(ints) != 1 || len(in) == 0 {
		return nil, fmt.Errorf("shape: reducescatter needs dim and ≥1 input")
	}
	d, err := dimIndex(ints[0], len(in[0]))
	if err != nil {
		return nil, err
	}
	for _, s := range in[1:] {
		if !in[0].Equal(s, ctx) {
			return nil, fmt.Errorf("shape: reducescatter shards differ")
		}
	}
	chunk, ok := in[0][d].DivConst(int64(len(in)))
	if !ok {
		return nil, fmt.Errorf("shape: reducescatter extent %s not divisible by %d ranks", in[0][d], len(in))
	}
	out := make([]Shape, len(in))
	for i := range in {
		s := in[0].Clone()
		s[d] = chunk
		out[i] = s
	}
	return out, nil
}

func inferAllGather(ints []sym.Expr, in []Shape, ctx *sym.Context) ([]Shape, error) {
	if len(ints) != 1 || len(in) == 0 {
		return nil, fmt.Errorf("shape: allgather needs dim and ≥1 input")
	}
	d, err := dimIndex(ints[0], len(in[0]))
	if err != nil {
		return nil, err
	}
	total := in[0][d]
	for _, s := range in[1:] {
		if len(s) != len(in[0]) {
			return nil, fmt.Errorf("shape: allgather rank mismatch")
		}
		for i := range s {
			if i != d && !ctx.ProveEQ(s[i], in[0][i]) {
				return nil, fmt.Errorf("shape: allgather dim %d mismatch", i)
			}
		}
		total = total.Add(s[d])
	}
	out := make([]Shape, len(in))
	for i := range in {
		s := in[0].Clone()
		s[d] = total
		out[i] = s
	}
	return out, nil
}
