package cluster

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"entangle/internal/fingerprint"
	"entangle/internal/vcache"
)

// RetryPolicy bounds how hard the client tries to reach a peer before
// degrading. Every remote interaction is governed by one: per-attempt
// timeouts keep a slow link from stalling a worker, bounded attempts
// keep a dead peer from consuming unbounded wall clock, and capped
// exponential backoff with deterministic seeded jitter spaces the
// attempts without synchronizing retry storms across workers.
type RetryPolicy struct {
	// Attempts is the total number of tries (0 = DefaultAttempts).
	Attempts int
	// AttemptTimeout bounds each individual try
	// (0 = DefaultAttemptTimeout).
	AttemptTimeout time.Duration
	// BackoffBase is the delay before the second attempt; it doubles
	// per attempt (0 = DefaultBackoffBase).
	BackoffBase time.Duration
	// BackoffCap caps the grown delay (0 = DefaultBackoffCap).
	BackoffCap time.Duration
	// JitterSeed drives the deterministic jitter hash. Two clients
	// with the same seed back off identically for the same (peer, key,
	// attempt) — reproducible under test, decorrelated across distinct
	// keys in production.
	JitterSeed uint64
}

const (
	DefaultAttempts       = 3
	DefaultAttemptTimeout = 2 * time.Second
	DefaultBackoffBase    = 50 * time.Millisecond
	DefaultBackoffCap     = 2 * time.Second
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultAttempts
	}
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = DefaultAttemptTimeout
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = DefaultBackoffBase
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = DefaultBackoffCap
	}
	return p
}

// backoff returns the pause before attempt (1-based: the pause taken
// after attempt failures), with the exponential growth capped and the
// result jittered into [half, full] by a pure hash of (seed, label,
// attempt) — no shared rand state, no lock, schedule-independent.
func (p RetryPolicy) backoff(label string, attempt int) time.Duration {
	d := p.BackoffBase << (attempt - 1)
	if d > p.BackoffCap || d <= 0 {
		d = p.BackoffCap
	}
	// Jitter in [0.5, 1.0): splitmix64 over (seed, label, attempt).
	h := p.JitterSeed
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	u := float64(mix64(h^uint64(attempt))>>11) / float64(1<<53)
	return time.Duration(float64(d) * (0.5 + 0.5*u))
}

// ClientStats counts the client's peer traffic. All fields are
// monotone; Snapshot returns a plain copy.
type ClientStats struct {
	FetchHits      int64 `json:"fetch_hits"`      // fetches that returned a valid entry
	FetchMisses    int64 `json:"fetch_misses"`    // authoritative peer misses (ErrNotFound)
	FetchFailures  int64 `json:"fetch_failures"`  // fetches abandoned after retries/breaker
	FetchCorrupt   int64 `json:"fetch_corrupt"`   // replies rejected by DecodeEntry
	Offers         int64 `json:"offers"`          // successful verdict forwards
	OfferFailures  int64 `json:"offer_failures"`  // forwards abandoned after retries/breaker
	Retries        int64 `json:"retries"`         // extra attempts beyond the first
	BreakerSkips   int64 `json:"breaker_skips"`   // calls skipped by an open breaker
	BreakerReopens int64 `json:"breaker_reopens"` // failed half-open probes
}

// Client is the hardened peer caller: Transport plus retry policy,
// backoff, and per-peer circuit breakers. Safe for concurrent use.
type Client struct {
	transport Transport
	policy    RetryPolicy
	breaker   BreakerConfig
	clock     Clock

	mu       sync.Mutex
	breakers map[string]*breaker

	stats struct {
		sync.Mutex
		ClientStats
	}
}

// ClientConfig assembles a Client.
type ClientConfig struct {
	Transport Transport
	Policy    RetryPolicy
	Breaker   BreakerConfig
	// Clock is the time seam (nil = RealClock).
	Clock Clock
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	return &Client{
		transport: cfg.Transport,
		policy:    cfg.Policy.withDefaults(),
		breaker:   cfg.Breaker,
		clock:     cfg.Clock,
		breakers:  map[string]*breaker{},
	}
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	c.stats.Lock()
	defer c.stats.Unlock()
	return c.stats.ClientStats
}

func (c *Client) count(f func(*ClientStats)) {
	c.stats.Lock()
	f(&c.stats.ClientStats)
	c.stats.Unlock()
}

// peerBreaker returns (creating on first use) the peer's breaker.
func (c *Client) peerBreaker(peer Member) *breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.breakers[peer.ID]
	if !ok {
		b = newBreaker(c.breaker, c.clock)
		c.breakers[peer.ID] = b
	}
	return b
}

// BreakerOpen reports whether the peer's breaker is currently open
// (stats/debugging).
func (c *Client) BreakerOpen(peer Member) bool {
	return c.peerBreaker(peer).Open()
}

// errBreakerOpen distinguishes breaker skips from transport failures.
var errBreakerOpen = errors.New("cluster: breaker open")

// call runs op against peer under the retry policy: per-attempt
// timeout, capped jittered backoff between attempts, breaker
// accounting around the whole exchange. ErrNotFound is returned
// immediately (an answer, not a failure). A context already cancelled
// or expiring mid-backoff aborts without burning remaining attempts.
func (c *Client) call(ctx context.Context, peer Member, label string, op func(context.Context) error) error {
	br := c.peerBreaker(peer)
	if !br.Allow() {
		c.count(func(s *ClientStats) { s.BreakerSkips++ })
		return errBreakerOpen
	}
	var err error
	for attempt := 1; ; attempt++ {
		attemptCtx, cancel := context.WithTimeout(ctx, c.policy.AttemptTimeout)
		err = op(attemptCtx)
		cancel()
		if err == nil || errors.Is(err, ErrNotFound) {
			br.Success()
			return err
		}
		if ctx.Err() != nil || attempt >= c.policy.Attempts {
			break
		}
		c.count(func(s *ClientStats) { s.Retries++ })
		if serr := c.clock.Sleep(ctx, c.policy.backoff(label+"#"+strconv.Itoa(attempt), attempt)); serr != nil {
			break
		}
	}
	if br.Failure() {
		c.count(func(s *ClientStats) { s.BreakerReopens++ })
	}
	return err
}

// Fetch retrieves and validates the peer's entry for key. The reply is
// decoded with vcache.DecodeEntry — the exact defensive gate the disk
// store uses — so a corrupt or truncated reply is an error (counted as
// FetchCorrupt), never a wrong verdict. ErrNotFound is an authoritative
// miss. Any other error means the caller should degrade to its local
// path.
func (c *Client) Fetch(ctx context.Context, peer Member, key fingerprint.Hash) (*vcache.Entry, error) {
	var data []byte
	err := c.call(ctx, peer, "fetch/"+peer.ID+"/"+key.Hex(), func(ctx context.Context) error {
		var err error
		data, err = c.transport.Fetch(ctx, peer, key)
		return err
	})
	switch {
	case errors.Is(err, ErrNotFound):
		c.count(func(s *ClientStats) { s.FetchMisses++ })
		return nil, ErrNotFound
	case err != nil:
		c.count(func(s *ClientStats) { s.FetchFailures++ })
		return nil, err
	}
	e, err := vcache.DecodeEntry(key, data)
	if err != nil {
		// The peer answered, but with bytes that fail validation:
		// treat as a degradation-worthy failure (the local cold check
		// takes over), and surface it in the counters — a persistently
		// corrupt peer is worth alerting on.
		c.count(func(s *ClientStats) { s.FetchCorrupt++; s.FetchFailures++ })
		return nil, fmt.Errorf("cluster: peer %s returned corrupt entry: %v", peer.ID, err)
	}
	c.count(func(s *ClientStats) { s.FetchHits++ })
	return e, nil
}

// Offer forwards an entry to the key's owner. Failures are counted and
// returned but are never fatal to the forwarding node: its local store
// already holds the verdict.
func (c *Client) Offer(ctx context.Context, peer Member, key fingerprint.Hash, e *vcache.Entry) error {
	data, err := vcache.EncodeEntry(key, e)
	if err != nil {
		c.count(func(s *ClientStats) { s.OfferFailures++ })
		return err
	}
	err = c.call(ctx, peer, "offer/"+peer.ID+"/"+key.Hex(), func(ctx context.Context) error {
		return c.transport.Offer(ctx, peer, key, data)
	})
	if err != nil {
		c.count(func(s *ClientStats) { s.OfferFailures++ })
		return err
	}
	c.count(func(s *ClientStats) { s.Offers++ })
	return nil
}
