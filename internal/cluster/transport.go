package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"entangle/internal/fingerprint"
)

// ErrNotFound is the transport's authoritative miss: the peer was
// reached and answered that it has no entry for the key. It is NOT a
// failure — the client neither retries it nor counts it against the
// peer's circuit breaker.
var ErrNotFound = errors.New("cluster: peer has no entry for key")

// Transport moves encoded verdict-cache entries between peers. Both
// methods carry the exact EVCACHE1 byte format vcache writes to disk —
// versioned header, key fingerprint, payload checksum — so the wire
// inherits the store's defensive decoding: the receiver validates with
// vcache.DecodeEntry and any damage in flight is a miss, never a wrong
// verdict.
//
// Implementations: HTTPTransport (production, over the daemon's
// /v1/peer/verdict endpoints) and sim.Transport (deterministic
// in-memory fleet with fault injection). Errors other than ErrNotFound
// are transport failures and subject to the client's retry policy.
type Transport interface {
	// Fetch returns the peer's encoded entry for key, or ErrNotFound.
	Fetch(ctx context.Context, peer Member, key fingerprint.Hash) ([]byte, error)
	// Offer hands the peer an encoded entry for key to store in its
	// shard. Offers are idempotent: entries are content-addressed, so
	// re-delivering one is harmless.
	Offer(ctx context.Context, peer Member, key fingerprint.Hash, data []byte) error
}

// maxWireEntry bounds how many bytes Fetch will read from a peer: a
// defensive cap against a misbehaving peer streaming garbage, mirroring
// the server side's MaxBytesReader on the offer path.
const maxWireEntry = 16 << 20

// HTTPTransport reaches peers over the daemon's /v1/peer/verdict
// endpoints. Safe for concurrent use.
type HTTPTransport struct {
	// Client is the underlying HTTP client; nil selects
	// http.DefaultClient. Per-attempt deadlines arrive via ctx (the
	// cluster client applies its AttemptTimeout), so the http.Client
	// needs no Timeout of its own.
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func peerURL(peer Member, key fingerprint.Hash) string {
	return fmt.Sprintf("%s/v1/peer/verdict?key=%s", peer.URL, url.QueryEscape(key.Hex()))
}

// Fetch GETs the peer's entry. 404 is ErrNotFound; any other non-200
// status, connection error, or timeout is a transport failure.
func (t *HTTPTransport) Fetch(ctx context.Context, peer Member, key fingerprint.Hash) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL(peer, key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxWireEntry))
		if err != nil {
			return nil, err
		}
		return data, nil
	case http.StatusNotFound:
		return nil, ErrNotFound
	}
	return nil, fmt.Errorf("cluster: peer %s: fetch status %s", peer.ID, resp.Status)
}

// Offer PUTs an encoded entry into the peer's shard.
func (t *HTTPTransport) Offer(ctx context.Context, peer Member, key fingerprint.Hash, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peerURL(peer, key), bytesReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s: offer status %s", peer.ID, resp.Status)
	}
	return nil
}

// bytesReader avoids importing bytes just for one constructor while
// keeping the request body replayable (NewRequest special-cases it so
// retried HTTP/1.1 requests re-send the body).
func bytesReader(data []byte) io.Reader { return &replayableReader{data: data} }

type replayableReader struct {
	data []byte
	off  int
}

func (r *replayableReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// Clock is the time seam for everything in this package that waits:
// backoff sleeps and breaker cooldowns route through it, so production
// uses the real clock while tests and the simulator substitute an
// instant one — keeping chaos runs fast and the package inside the
// determinism lint's contract (no direct wall-clock reads on decision
// paths).
type Clock interface {
	// Now returns the current time (breaker cooldown bookkeeping).
	Now() time.Time
	// Sleep waits for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock is the production Clock.
type RealClock struct{}

// Now returns the wall-clock time.
func (RealClock) Now() time.Time {
	//lint:ignore determinism the breaker cooldown is wall-clock by design; tests inject a fake Clock
	return time.Now()
}

// Sleep waits for d, or returns early with ctx.Err().
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
