package cluster

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-peer circuit breaker.
type BreakerConfig struct {
	// FailThreshold is how many consecutive failures open the breaker
	// (0 = DefaultFailThreshold).
	FailThreshold int
	// Cooldown is how long an open breaker refuses traffic before
	// allowing one half-open probe (0 = DefaultCooldown).
	Cooldown time.Duration
}

const (
	DefaultFailThreshold = 3
	DefaultCooldown      = 5 * time.Second
)

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	return c
}

// breaker is one peer's circuit breaker: closed (traffic flows) →
// open after FailThreshold consecutive failures (traffic skipped, the
// caller degrades to its local path without paying a timeout) →
// half-open after Cooldown (exactly one probe allowed) → closed again
// on probe success, open on probe failure. Hammering a dead peer costs
// a timeout per attempt per worker; the breaker caps that at one
// timeout per cooldown window for the whole node.
type breaker struct {
	cfg   BreakerConfig
	clock Clock

	mu        sync.Mutex
	failures  int       // consecutive failures while closed
	openUntil time.Time // zero when closed
	probing   bool      // a half-open probe is in flight
}

func newBreaker(cfg BreakerConfig, clock Clock) *breaker {
	return &breaker{cfg: cfg.withDefaults(), clock: clock}
}

// Allow reports whether a call to the peer may proceed. While open it
// returns false until the cooldown expires; the first Allow after that
// claims the single half-open probe slot.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if b.clock.Now().Before(b.openUntil) {
		return false
	}
	// Cooldown over: admit exactly one probe; everyone else keeps
	// degrading until the probe reports.
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// Success records a successful call, closing the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	b.failures, b.openUntil, b.probing = 0, time.Time{}, false
	b.mu.Unlock()
}

// Failure records a failed call, reporting whether this failure was a
// half-open probe that re-opened the breaker. While closed it counts
// toward the threshold.
func (b *breaker) Failure() (reopened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		b.probing = false
		b.openUntil = b.clock.Now().Add(b.cfg.Cooldown)
		return true
	}
	if !b.openUntil.IsZero() {
		return false // already open; late failures from in-flight calls don't extend it
	}
	b.failures++
	if b.failures >= b.cfg.FailThreshold {
		b.openUntil = b.clock.Now().Add(b.cfg.Cooldown)
		b.failures = 0
	}
	return false
}

// Open reports whether the breaker is currently refusing traffic
// (stats only; racy by nature).
func (b *breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && b.clock.Now().Before(b.openUntil)
}
