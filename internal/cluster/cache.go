package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"entangle/internal/fingerprint"
	"entangle/internal/vcache"
)

// CacheStats counts the cluster cache's routing decisions, layered on
// top of the local vcache counters and the client's transport
// counters.
type CacheStats struct {
	// LocalHits served a Get from the local shard (self-owned keys and
	// lazily warmed copies) without touching the network.
	LocalHits int64 `json:"local_hits"`
	// PeerHits served a Get by fetching the entry from its owner.
	PeerHits int64 `json:"peer_hits"`
	// PeerMisses are authoritative owner misses: the owner answered
	// "not found", so this node computes the verdict (and forwards it).
	PeerMisses int64 `json:"peer_misses"`
	// Degraded are Gets that fell back to a local cold check because
	// the owner was unreachable, slow past the retry budget, behind an
	// open breaker, or returned corrupt bytes. A degraded Get costs
	// wall clock, never correctness.
	Degraded int64 `json:"degraded"`
	// Forwards and ForwardFailures count Put-side verdict forwarding
	// to owners.
	Forwards        int64 `json:"forwards"`
	ForwardFailures int64 `json:"forward_failures"`
	// Warmed counts peer-fetched entries inserted into the local store
	// (the lazy warm-up path).
	Warmed int64 `json:"warmed"`
}

// CacheConfig assembles a cluster cache.
type CacheConfig struct {
	// Membership is the static fleet (must include self).
	Membership *Membership
	// Local is this node's shard: the vcache holding self-owned keys,
	// this node's own computed verdicts, and lazily warmed copies.
	Local *vcache.Cache
	// Client is the hardened peer caller.
	Client *Client
	// CallTimeout bounds one whole Get/Put peer exchange including
	// retries and backoff (0 = DefaultCallTimeout). VerdictStore's Get
	// carries no context — the checker calls it from worker
	// goroutines — so the bound lives here.
	CallTimeout time.Duration
}

// DefaultCallTimeout bounds one whole peer exchange (all attempts).
const DefaultCallTimeout = 10 * time.Second

// Cache is the fleet-routing verdict store: a core.VerdictStore whose
// Get/Put consult the key's rendezvous owner across the cluster, with
// every failure mode degrading to the local store. It never returns a
// wrong or stale verdict: entries are content-addressed (one canonical
// entry per key, produced by a deterministic checker), peer replies
// are validated by vcache.DecodeEntry, and anything doubtful is a
// miss. Safe for concurrent use.
type Cache struct {
	ms      *Membership
	local   *vcache.Cache
	client  *Client
	timeout time.Duration

	// base is the lifecycle context for peer calls; Close cancels it,
	// failing in-flight and future calls fast (they degrade locally).
	base   context.Context
	cancel context.CancelFunc

	localHits, peerHits, peerMisses, degraded atomic.Int64
	forwards, forwardFailures, warmed         atomic.Int64
}

// NewCache builds the fleet cache.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.Membership == nil || cfg.Local == nil || cfg.Client == nil {
		return nil, fmt.Errorf("cluster: cache needs membership, local store, and client")
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = DefaultCallTimeout
	}
	base, cancel := context.WithCancel(context.Background())
	return &Cache{
		ms:      cfg.Membership,
		local:   cfg.Local,
		client:  cfg.Client,
		timeout: cfg.CallTimeout,
		base:    base,
		cancel:  cancel,
	}, nil
}

// Close stops peer traffic: in-flight calls abort and every later
// Get/Put serves purely locally. Safe to call more than once.
func (c *Cache) Close() { c.cancel() }

// Membership exposes the fleet view (stats, tests).
func (c *Cache) Membership() *Membership { return c.ms }

// Local exposes the local shard (the daemon's peer endpoints serve it
// directly — peer traffic must never recurse through the router).
func (c *Cache) Local() *vcache.Cache { return c.local }

// Stats returns the LOCAL store's counters, satisfying
// core.VerdictStore: the checker's per-run cache section keys off
// them. Fleet-level counters live in ClusterStats.
func (c *Cache) Stats() *vcache.Stats { return c.local.Stats() }

// ClusterStats snapshots the routing counters.
func (c *Cache) ClusterStats() CacheStats {
	return CacheStats{
		LocalHits:       c.localHits.Load(),
		PeerHits:        c.peerHits.Load(),
		PeerMisses:      c.peerMisses.Load(),
		Degraded:        c.degraded.Load(),
		Forwards:        c.forwards.Load(),
		ForwardFailures: c.forwardFailures.Load(),
		Warmed:          c.warmed.Load(),
	}
}

// ClientStats snapshots the transport-level counters.
func (c *Cache) ClientStats() ClientStats { return c.client.Stats() }

// Get implements core.VerdictStore. Routing:
//
//  1. Local store first — self-owned keys, own computed verdicts, and
//     previously warmed copies all answer without network traffic.
//  2. If the key's owner is a peer, fetch from it under the retry
//     policy. A valid reply is stored locally (lazy warm-up) and
//     returned; an authoritative miss returns nil (the checker
//     computes the verdict, and Put forwards it to the owner); any
//     failure — timeout, refusal, open breaker, corrupt bytes —
//     degrades to nil, i.e. a local cold check.
//
// Both outcomes of step 2 are correct by the vcache contract: nil only
// ever means "compute it yourself", which is always sound.
func (c *Cache) Get(key fingerprint.Hash) *vcache.Entry {
	if e := c.local.Get(key); e != nil {
		c.localHits.Add(1)
		return e
	}
	owner := c.ms.Owner(key)
	if owner.ID == c.ms.Self().ID {
		return nil // we are the authority and we just missed
	}
	if c.base.Err() != nil {
		return nil // closed: purely local from here on
	}
	ctx, cancel := context.WithTimeout(c.base, c.timeout)
	defer cancel()
	e, err := c.client.Fetch(ctx, owner, key)
	switch {
	case err == nil:
		c.peerHits.Add(1)
		// Lazy warm-up: keep the fetched entry locally so repeated
		// checks of this key stop paying the network round trip. A
		// local store error leaves the entry usable for this call.
		if c.local.Put(key, e) == nil {
			c.warmed.Add(1)
		}
		return e
	case errors.Is(err, ErrNotFound):
		c.peerMisses.Add(1)
		return nil
	default:
		c.degraded.Add(1)
		return nil
	}
}

// Put implements core.VerdictStore: the verdict lands in the local
// store unconditionally (a node never loses its own work — this is
// also the degradation floor when the owner is unreachable), then is
// forwarded to the key's owner so the fleet converges on one
// authoritative shard per fingerprint. Peers that crashed and rejoined
// are re-warmed by exactly these forwards (plus fetch-side warm-up);
// there is no separate transfer protocol to get wrong.
func (c *Cache) Put(key fingerprint.Hash, e *vcache.Entry) error {
	if err := c.local.Put(key, e); err != nil {
		return err
	}
	owner := c.ms.Owner(key)
	if owner.ID == c.ms.Self().ID || c.base.Err() != nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(c.base, c.timeout)
	defer cancel()
	if err := c.client.Offer(ctx, owner, key, e); err != nil {
		// Counted, not fatal: the verdict is safe locally, and the
		// owner converges later via re-forwarded or re-fetched copies.
		c.forwardFailures.Add(1)
		return nil
	}
	c.forwards.Add(1)
	return nil
}
