package cluster

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"entangle/internal/fingerprint"
	"entangle/internal/vcache"
)

func testKey(i int) fingerprint.Hash {
	return fingerprint.Hash(sha256.Sum256([]byte(fmt.Sprintf("cluster-test-key-%d", i))))
}

func testMembers(n int) []Member {
	var ms []Member
	for i := 0; i < n; i++ {
		ms = append(ms, Member{ID: fmt.Sprintf("n%d", i), URL: fmt.Sprintf("http://node-%d", i)})
	}
	return ms
}

func TestParsePeers(t *testing.T) {
	ms, err := ParsePeers("a=http://h1:1, b=http://h2:2/,c=http://h3:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{{"a", "http://h1:1"}, {"b", "http://h2:2"}, {"c", "http://h3:3"}}
	if len(ms) != len(want) {
		t.Fatalf("got %d members, want %d", len(ms), len(want))
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("member %d = %+v, want %+v", i, ms[i], want[i])
		}
	}
	for _, bad := range []string{"", "a", "=http://x", "a=", "a=x,a"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q): expected error", bad)
		}
	}
}

func TestMembershipValidation(t *testing.T) {
	if _, err := NewMembership("a", nil); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewMembership("z", testMembers(3)); err == nil {
		t.Error("self outside member list accepted")
	}
	dup := []Member{{ID: "a"}, {ID: "a"}}
	if _, err := NewMembership("a", dup); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

// TestOwnerProperties pins the rendezvous function's load-bearing
// properties: exactly one owner per key, agreement regardless of
// member-list order, stability of unrelated keys when a member is
// removed, and a roughly balanced shard split.
func TestOwnerProperties(t *testing.T) {
	members := testMembers(5)
	const keys = 2000

	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		key := testKey(i)
		owner := Owner(members, key)
		counts[owner.ID]++

		// Agreement: any permutation elects the same owner.
		rev := append([]Member(nil), members...)
		for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
			rev[a], rev[b] = rev[b], rev[a]
		}
		if got := Owner(rev, key); got.ID != owner.ID {
			t.Fatalf("key %d: owner depends on member order: %s vs %s", i, owner.ID, got.ID)
		}

		// Minimal disruption: removing a non-owner member never moves
		// this key.
		for cut := range members {
			if members[cut].ID == owner.ID {
				continue
			}
			rest := append(append([]Member(nil), members[:cut]...), members[cut+1:]...)
			if got := Owner(rest, key); got.ID != owner.ID {
				t.Fatalf("key %d moved from %s to %s when non-owner %s left",
					i, owner.ID, got.ID, members[cut].ID)
			}
		}
	}
	for _, m := range members {
		n := counts[m.ID]
		if n < keys/len(members)/2 || n > keys*2/len(members) {
			t.Errorf("member %s owns %d of %d keys: badly unbalanced", m.ID, n, keys)
		}
	}
}

func TestBackoffDeterministicCappedJittered(t *testing.T) {
	p := RetryPolicy{BackoffBase: 100 * time.Millisecond, BackoffCap: 1 * time.Second, JitterSeed: 7}.withDefaults()
	for attempt := 1; attempt <= 12; attempt++ {
		d1 := p.backoff("fetch/n1/abc", attempt)
		d2 := p.backoff("fetch/n1/abc", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		if d1 > p.BackoffCap {
			t.Fatalf("attempt %d: backoff %v exceeds cap %v", attempt, d1, p.BackoffCap)
		}
		uncapped := p.BackoffBase << (attempt - 1)
		limit := uncapped
		if limit > p.BackoffCap || limit <= 0 {
			limit = p.BackoffCap
		}
		if d1 < limit/2 {
			t.Fatalf("attempt %d: backoff %v below jitter floor %v", attempt, d1, limit/2)
		}
	}
	if p.backoff("fetch/n1/abc#1", 1) == p.backoff("fetch/n2/abc#1", 1) {
		t.Error("distinct labels produced identical jitter (suspicious)")
	}
}

// fakeClock advances instantly: Sleep never blocks, Now moves only
// when the test says so.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerLifecycle(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	b := newBreaker(BreakerConfig{FailThreshold: 3, Cooldown: time.Minute}, clock)

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("failure %d: breaker opened early", i)
		}
		b.Failure()
	}
	if b.Allow() {
		t.Fatal("breaker still closed after threshold failures")
	}
	clock.advance(30 * time.Second)
	if b.Allow() {
		t.Fatal("breaker admitted traffic mid-cooldown")
	}
	clock.advance(31 * time.Second)
	if !b.Allow() {
		t.Fatal("no half-open probe after cooldown")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	if reopened := b.Failure(); !reopened {
		t.Fatal("failed probe did not report reopening")
	}
	if b.Allow() {
		t.Fatal("breaker closed after failed probe")
	}
	clock.advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if !b.Allow() || !b.Allow() {
		t.Fatal("breaker not fully closed after successful probe")
	}
}

// scriptTransport fails a configurable number of times per call site
// before succeeding, and records attempts.
type scriptTransport struct {
	mu        sync.Mutex
	failFirst int
	attempts  int
	entry     []byte
	notFound  bool
}

func (s *scriptTransport) Fetch(ctx context.Context, peer Member, key fingerprint.Hash) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts++
	if s.attempts <= s.failFirst {
		return nil, errors.New("connection refused")
	}
	if s.notFound {
		return nil, ErrNotFound
	}
	return s.entry, nil
}

func (s *scriptTransport) Offer(ctx context.Context, peer Member, key fingerprint.Hash, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts++
	if s.attempts <= s.failFirst {
		return errors.New("connection refused")
	}
	return nil
}

func newTestClient(tr Transport) *Client {
	return NewClient(ClientConfig{
		Transport: tr,
		Policy:    RetryPolicy{Attempts: 3, AttemptTimeout: time.Second, BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond},
		Breaker:   BreakerConfig{FailThreshold: 3, Cooldown: time.Minute},
		Clock:     &fakeClock{now: time.Unix(0, 0)},
	})
}

func mustEntry(t *testing.T, key fingerprint.Hash) (*vcache.Entry, []byte) {
	t.Helper()
	e := &vcache.Entry{Verdict: vcache.VerdictRefined, Outputs: []vcache.Mapping{{Main: []string{"I0"}}}}
	data, err := vcache.EncodeEntry(key, e)
	if err != nil {
		t.Fatal(err)
	}
	return e, data
}

func TestClientRetriesThenSucceeds(t *testing.T) {
	key := testKey(1)
	_, data := mustEntry(t, key)
	tr := &scriptTransport{failFirst: 2, entry: data}
	c := newTestClient(tr)
	e, err := c.Fetch(context.Background(), Member{ID: "p"}, key)
	if err != nil || e == nil {
		t.Fatalf("fetch failed after retries: %v", err)
	}
	if tr.attempts != 3 {
		t.Fatalf("got %d attempts, want 3", tr.attempts)
	}
	st := c.Stats()
	if st.Retries != 2 || st.FetchHits != 1 {
		t.Fatalf("stats = %+v, want 2 retries / 1 hit", st)
	}
}

func TestClientBoundedRetriesAndBreaker(t *testing.T) {
	key := testKey(2)
	tr := &scriptTransport{failFirst: 1 << 30}
	c := newTestClient(tr)
	peer := Member{ID: "p"}
	for call := 0; call < 3; call++ {
		if _, err := c.Fetch(context.Background(), peer, key); err == nil {
			t.Fatal("fetch succeeded against always-failing transport")
		}
	}
	if tr.attempts != 9 {
		t.Fatalf("3 calls made %d attempts, want 9 (3 each)", tr.attempts)
	}
	// Threshold (3 failed exchanges) reached: breaker open, further
	// calls are skipped without touching the transport.
	if !c.BreakerOpen(peer) {
		t.Fatal("breaker not open after consecutive failures")
	}
	if _, err := c.Fetch(context.Background(), peer, key); !errors.Is(err, errBreakerOpen) {
		t.Fatalf("expected breaker skip, got %v", err)
	}
	if tr.attempts != 9 {
		t.Fatalf("breaker-skipped call still reached the transport (%d attempts)", tr.attempts)
	}
	if st := c.Stats(); st.BreakerSkips != 1 {
		t.Fatalf("stats = %+v, want 1 breaker skip", st)
	}
}

func TestClientNotFoundIsNotRetriedOrCounted(t *testing.T) {
	tr := &scriptTransport{notFound: true}
	c := newTestClient(tr)
	if _, err := c.Fetch(context.Background(), Member{ID: "p"}, testKey(3)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if tr.attempts != 1 {
		t.Fatalf("authoritative miss was retried: %d attempts", tr.attempts)
	}
	if c.BreakerOpen(Member{ID: "p"}) {
		t.Fatal("miss counted against the breaker")
	}
	if st := c.Stats(); st.FetchMisses != 1 || st.FetchFailures != 0 {
		t.Fatalf("stats = %+v, want 1 miss, 0 failures", st)
	}
}

func TestClientRejectsCorruptReply(t *testing.T) {
	key := testKey(4)
	_, data := mustEntry(t, key)
	data[len(data)-1] ^= 1 // flip a payload bit: checksum must catch it
	tr := &scriptTransport{entry: data}
	c := newTestClient(tr)
	if _, err := c.Fetch(context.Background(), Member{ID: "p"}, key); err == nil {
		t.Fatal("corrupt reply accepted")
	}
	if st := c.Stats(); st.FetchCorrupt != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt fetch", st)
	}
}

// routerFixture builds a 3-node membership with an in-memory transport
// backed by per-peer vcaches, from node n0's point of view.
type routerFixture struct {
	cache  *Cache
	stores map[string]*vcache.Cache // peer ID → that peer's local store
	down   map[string]bool
	mu     sync.Mutex
}

func (f *routerFixture) Fetch(ctx context.Context, peer Member, key fingerprint.Hash) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[peer.ID] {
		return nil, errors.New("connection refused")
	}
	e := f.stores[peer.ID].Get(key)
	if e == nil {
		return nil, ErrNotFound
	}
	return vcache.EncodeEntry(key, e)
}

func (f *routerFixture) Offer(ctx context.Context, peer Member, key fingerprint.Hash, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[peer.ID] {
		return errors.New("connection refused")
	}
	e, err := vcache.DecodeEntry(key, data)
	if err != nil {
		return err
	}
	return f.stores[peer.ID].Put(key, e)
}

func newRouterFixture(t *testing.T) *routerFixture {
	t.Helper()
	members := testMembers(3)
	f := &routerFixture{stores: map[string]*vcache.Cache{}, down: map[string]bool{}}
	for _, m := range members {
		vc, err := vcache.Open(vcache.Config{})
		if err != nil {
			t.Fatal(err)
		}
		f.stores[m.ID] = vc
	}
	ms, err := NewMembership("n0", members)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewCache(CacheConfig{
		Membership: ms,
		Local:      f.stores["n0"],
		Client: NewClient(ClientConfig{
			Transport: f,
			Policy:    RetryPolicy{Attempts: 2, AttemptTimeout: time.Second, BackoffBase: time.Millisecond},
			Clock:     &fakeClock{now: time.Unix(0, 0)},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.cache = cache
	return f
}

// keyOwnedBy scans for a key owned by the wanted member.
func keyOwnedBy(t *testing.T, ms *Membership, id string) fingerprint.Hash {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if key := testKey(i); ms.Owner(key).ID == id {
			return key
		}
	}
	t.Fatalf("no key owned by %s in 10000 tries", id)
	return fingerprint.Hash{}
}

func TestCacheRoutesPutToOwnerAndGetFromOwner(t *testing.T) {
	f := newRouterFixture(t)
	key := keyOwnedBy(t, f.cache.Membership(), "n1")
	e, _ := mustEntry(t, key)

	// Put on n0: lands locally AND at owner n1.
	if err := f.cache.Put(key, e); err != nil {
		t.Fatal(err)
	}
	if f.stores["n1"].Get(key) == nil {
		t.Fatal("verdict not forwarded to owner n1")
	}
	if f.stores["n0"].Get(key) == nil {
		t.Fatal("verdict not kept locally")
	}
	if st := f.cache.ClusterStats(); st.Forwards != 1 {
		t.Fatalf("stats = %+v, want 1 forward", st)
	}

	// A different node's verdict appears only at the owner; n0's Get
	// must fetch it and warm the local store.
	key2 := keyOwnedBy(t, f.cache.Membership(), "n2")
	e2, _ := mustEntry(t, key2)
	if err := f.stores["n2"].Put(key2, e2); err != nil {
		t.Fatal(err)
	}
	if got := f.cache.Get(key2); got == nil {
		t.Fatal("Get did not fetch from owner")
	}
	if f.stores["n0"].Get(key2) == nil {
		t.Fatal("fetched entry not warmed into the local store")
	}
	st := f.cache.ClusterStats()
	if st.PeerHits != 1 || st.Warmed != 1 {
		t.Fatalf("stats = %+v, want 1 peer hit + 1 warmed", st)
	}
	// Second Get is a pure local hit.
	if f.cache.Get(key2) == nil {
		t.Fatal("warmed entry missing")
	}
	if st := f.cache.ClusterStats(); st.LocalHits != 1 {
		t.Fatalf("stats = %+v, want 1 local hit", st)
	}
}

func TestCacheDegradesWhenOwnerDown(t *testing.T) {
	f := newRouterFixture(t)
	key := keyOwnedBy(t, f.cache.Membership(), "n1")
	f.mu.Lock()
	f.down["n1"] = true
	f.mu.Unlock()

	// Get degrades to a miss (the checker then computes locally).
	if got := f.cache.Get(key); got != nil {
		t.Fatal("Get returned an entry from a down owner")
	}
	if st := f.cache.ClusterStats(); st.Degraded != 1 {
		t.Fatalf("stats = %+v, want 1 degraded get", st)
	}

	// Put still lands locally; the forward failure is counted, not
	// fatal.
	e, _ := mustEntry(t, key)
	if err := f.cache.Put(key, e); err != nil {
		t.Fatal(err)
	}
	if f.stores["n0"].Get(key) == nil {
		t.Fatal("verdict lost when owner down")
	}
	if st := f.cache.ClusterStats(); st.ForwardFailures != 1 {
		t.Fatalf("stats = %+v, want 1 forward failure", st)
	}

	// Owner rejoins: the next Put re-warms it (lazy warm-up, no
	// transfer protocol).
	f.mu.Lock()
	f.down["n1"] = false
	f.mu.Unlock()
	if err := f.cache.Put(key, e); err != nil {
		t.Fatal(err)
	}
	if f.stores["n1"].Get(key) == nil {
		t.Fatal("rejoined owner not re-warmed by forward")
	}
}

func TestCacheClosedServesLocally(t *testing.T) {
	f := newRouterFixture(t)
	key := keyOwnedBy(t, f.cache.Membership(), "n1")
	e, _ := mustEntry(t, key)
	if err := f.stores["n1"].Put(key, e); err != nil {
		t.Fatal(err)
	}
	f.cache.Close()
	if got := f.cache.Get(key); got != nil {
		t.Fatal("closed cache still fetched from peer")
	}
	if err := f.cache.Put(key, e); err != nil {
		t.Fatal(err)
	}
	if f.stores["n0"].Get(key) == nil {
		t.Fatal("closed cache dropped local put")
	}
}
