// Package cluster scales the entangled daemon into a sharded
// multi-node checker fleet. The design center is robustness: every
// remote interaction has a per-attempt timeout, a bounded retry policy
// with capped exponential backoff and deterministic seeded jitter, and
// a degradation path that can cost wall clock but never a wrong or
// lost verdict.
//
// Sharding is content-addressed: each verdict fingerprint has exactly
// one owner, chosen by rendezvous (highest-random-weight) hashing over
// a static member list. Ownership is a pure function of (member IDs,
// key) — no coordinator, no handoff protocol, and every node computes
// the same owner from the same list (the internal/mc ownership model
// proves exactly-one-owner exhaustively, and proves how it breaks if a
// node recomputes ownership over its own liveness view instead).
//
// A node checking an operator consults its cluster Cache like a plain
// verdict cache:
//
//   - Get: local shard first (self-owned keys and lazily warmed
//     copies), then a fetch from the key's owner. An unreachable owner,
//     a timeout, or a corrupt reply all degrade to a miss — the checker
//     falls back to a local cold check, exactly as if the cache were
//     cold. Fetched entries are validated with vcache.DecodeEntry (the
//     same "decode error is a miss" gate as the disk store) and stored
//     locally, so a re-fetched key is warm next time.
//   - Put: stored locally always (a node never loses its own work),
//     then forwarded to the key's owner so the fleet converges on one
//     authoritative shard per fingerprint. Forwarding failures are
//     counted, never fatal; a re-joined owner is lazily re-warmed by
//     the next forwards and fetches that reach it.
//
// A per-peer circuit breaker stops hammering dead nodes: after
// consecutive failures the peer is skipped outright (degrading straight
// to local checks) until a cooldown expires, then a single probe
// decides whether to close the breaker again.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"entangle/internal/fingerprint"
)

// Member is one fleet node: a stable ID (the rendezvous-hash identity)
// and the base URL its peers reach it at.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Membership is the fleet's static member list plus this node's
// identity. The list is sorted by ID at construction so ownership and
// iteration order are independent of flag order.
type Membership struct {
	self    Member
	members []Member
}

// NewMembership builds a membership from the static member list.
// members must include self (by ID) and IDs must be unique.
func NewMembership(selfID string, members []Member) (*Membership, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	sorted := append([]Member(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	var self *Member
	for i, m := range sorted {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: member %d has an empty ID", i)
		}
		if i > 0 && sorted[i-1].ID == m.ID {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", m.ID)
		}
		if m.ID == selfID {
			self = &sorted[i]
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: self ID %q is not in the member list", selfID)
	}
	return &Membership{self: *self, members: sorted}, nil
}

// ParsePeers parses the -peers flag format: a comma-separated list of
// id=url entries, e.g. "a=http://10.0.0.1:8372,b=http://10.0.0.2:8372".
func ParsePeers(spec string) ([]Member, error) {
	var members []Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=url)", part)
		}
		members = append(members, Member{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: no peers in %q", spec)
	}
	return members, nil
}

// Self returns this node's member record.
func (ms *Membership) Self() Member { return ms.self }

// Members returns the full member list, sorted by ID. Callers must not
// mutate it.
func (ms *Membership) Members() []Member { return ms.members }

// Peers returns every member except self, sorted by ID.
func (ms *Membership) Peers() []Member {
	out := make([]Member, 0, len(ms.members)-1)
	for _, m := range ms.members {
		if m.ID != ms.self.ID {
			out = append(out, m)
		}
	}
	return out
}

// Owner returns the key's owning member under rendezvous hashing over
// the full static list. It MUST be called with the same list on every
// node — computing ownership over a node-local liveness view is the
// split-brain bug the mc known-bug-cluster model demonstrates.
func (ms *Membership) Owner(key fingerprint.Hash) Member { return Owner(ms.members, key) }

// Owns reports whether this node owns the key.
func (ms *Membership) Owns(key fingerprint.Hash) bool { return ms.Owner(key).ID == ms.self.ID }

// Owner is the shipped ownership function: the member with the highest
// rendezvous score for the key, ties broken by smaller ID. Pure — a
// deterministic function of (member IDs, key) only — which is what
// makes it coordinator-free: every node evaluates it independently and
// agrees. The internal/mc ownership model drives this exact function.
func Owner(members []Member, key fingerprint.Hash) Member {
	if len(members) == 0 {
		return Member{}
	}
	best := members[0]
	bestScore := rendezvousScore(members[0].ID, key)
	for _, m := range members[1:] {
		s := rendezvousScore(m.ID, key)
		if s > bestScore || (s == bestScore && m.ID < best.ID) {
			best, bestScore = m, s
		}
	}
	return best
}

// rendezvousScore hashes (member ID, key) to a 64-bit weight: FNV-1a
// over the ID then the key bytes, finished with a splitmix64 avalanche
// — the same hash family as internal/faultinject's seeded decisions.
func rendezvousScore(id string, key fingerprint.Hash) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
