// Package sim is a deterministic in-process cluster simulator: N fleet
// nodes wired over in-memory transports, with seed-driven fault
// injection (message drop, delay, in-flight corruption via
// internal/faultinject's network fault family) and scripted topology
// events (node crash/restart, partition/heal). It exists to let chaos
// tests and `entangle-bench -exp fleet` drive the real production
// stack — cluster.Cache, cluster.Client, the rendezvous router, the
// vcache byte format — through hostile conditions without sockets,
// goroutine sleeps, or wall-clock dependence:
//
//   - The transport is synchronous: a "delayed" message is an immediate
//     deadline error, a "dropped" one an immediate connection error, so
//     a chaos run completes in milliseconds and injects identically on
//     every machine.
//
//   - Every fault decision is a pure hash of (seed, message label), and
//     backoff sleeps run on an instant clock that advances virtual time
//     instead of sleeping, so a single-worker run is reproducible
//     byte for byte.
//
//   - Crash keeps the node's disk directory and discards everything
//     else, exactly the durability contract of a real SIGKILL; restart
//     reopens the same directory, so "no committed verdict lost across
//     crash/restart" is testable directly.
package sim

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"entangle/internal/cluster"
	"entangle/internal/faultinject"
	"entangle/internal/fingerprint"
	"entangle/internal/vcache"
)

// Config parameterizes a simulated fleet.
type Config struct {
	// Nodes is the fleet size (IDs "n0".."n<N-1>").
	Nodes int
	// Dir is the root directory; node i's verdict shard persists at
	// Dir/n<i> across Crash/Restart.
	Dir string
	// Net is the per-message fault configuration (zero rates = fault
	// free).
	Net faultinject.NetConfig
	// Policy and Breaker tune every node's peer client (zero values =
	// production defaults; backoff runs on the instant clock either
	// way).
	Policy  cluster.RetryPolicy
	Breaker cluster.BreakerConfig
	// CallTimeout bounds each node's whole Get/Put peer exchange
	// (0 = cluster.DefaultCallTimeout; virtual — the simulator never
	// sleeps).
	CallTimeout time.Duration
}

// Cluster is a simulated fleet. All methods are safe for concurrent
// use; topology events (Crash/Restart/Partition/Heal) are typically
// scripted from the test goroutine between checks.
type Cluster struct {
	cfg     Config
	net     *faultinject.NetInjector
	members []cluster.Member
	clock   *instantClock

	mu    sync.Mutex
	nodes []*Node
	down  map[string]bool
	part  map[string]int // node ID → partition group (all 0 when healed)
	seq   map[string]uint64
}

// Node is one simulated fleet member: a real vcache shard on disk plus
// the real cluster cache routing through the simulated transport.
type Node struct {
	// ID is the node's member ID ("n0", "n1", ...).
	ID string

	c     *Cluster
	local *vcache.Cache
	cache *cluster.Cache
}

// New builds and starts a fleet of cfg.Nodes nodes.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("sim: fleet needs at least one node")
	}
	c := &Cluster{
		cfg:   cfg,
		net:   faultinject.NewNet(cfg.Net),
		clock: newInstantClock(),
		down:  map[string]bool{},
		part:  map[string]int{},
		seq:   map[string]uint64{},
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.members = append(c.members, cluster.Member{
			ID:  "n" + strconv.Itoa(i),
			URL: "mem://n" + strconv.Itoa(i),
		})
	}
	c.nodes = make([]*Node, cfg.Nodes)
	for i := range c.nodes {
		n, err := c.boot(i)
		if err != nil {
			return nil, err
		}
		c.nodes[i] = n
	}
	return c, nil
}

// boot opens (or reopens) node i's shard and builds its fleet cache.
func (c *Cluster) boot(i int) (*Node, error) {
	id := c.members[i].ID
	local, err := vcache.Open(vcache.Config{Dir: filepath.Join(c.cfg.Dir, id)})
	if err != nil {
		return nil, fmt.Errorf("sim: opening shard for %s: %w", id, err)
	}
	ms, err := cluster.NewMembership(id, c.members)
	if err != nil {
		return nil, err
	}
	client := cluster.NewClient(cluster.ClientConfig{
		Transport: &transport{c: c, src: id},
		Policy:    c.cfg.Policy,
		Breaker:   c.cfg.Breaker,
		Clock:     c.clock,
	})
	cache, err := cluster.NewCache(cluster.CacheConfig{
		Membership:  ms,
		Local:       local,
		Client:      client,
		CallTimeout: c.cfg.CallTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &Node{ID: id, c: c, local: local, cache: cache}, nil
}

// Members returns the static fleet view.
func (c *Cluster) Members() []cluster.Member {
	return append([]cluster.Member(nil), c.members...)
}

// Node returns node i. After a Restart the same *Node keeps working —
// its store is swapped in place — so callers may hold on to it across
// topology events.
func (c *Cluster) Node(i int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i]
}

// Injected reports the network faults fired so far.
func (c *Cluster) Injected() map[faultinject.NetFault]int { return c.net.Injected() }

// Crash takes node i down: its fleet cache stops peer traffic, peers'
// messages to it fail, and its in-memory state is discarded. The disk
// directory survives — that is the whole point.
func (c *Cluster) Crash(i int) {
	c.mu.Lock()
	n := c.nodes[i]
	c.down[n.ID] = true
	c.mu.Unlock()
	n.crash()
}

// Restart brings a crashed node back: the shard directory is reopened
// (committed verdicts reappear; the memory tier starts cold) and a
// fresh fleet cache is swapped into the same *Node. Peers re-warm it
// lazily through forwards and fetches — there is no transfer protocol.
func (c *Cluster) Restart(i int) error {
	fresh, err := c.boot(i)
	if err != nil {
		return err
	}
	c.mu.Lock()
	n := c.nodes[i]
	c.mu.Unlock()
	n.adopt(fresh)
	c.mu.Lock()
	delete(c.down, n.ID)
	c.mu.Unlock()
	return nil
}

// Partition splits the fleet into groups: messages within a group flow,
// messages across groups fail. Nodes not named fall into an implicit
// extra group together. Overwrites any previous partition.
func (c *Cluster) Partition(groups ...[]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.part = map[string]int{}
	for g, ids := range groups {
		for _, i := range ids {
			c.part[c.members[i].ID] = g + 1
		}
	}
}

// Heal removes the partition.
func (c *Cluster) Heal() {
	c.mu.Lock()
	c.part = map[string]int{}
	c.mu.Unlock()
}

// reachable decides whether a message from src to dst can be delivered
// at all, and hands back the destination node when it can.
func (c *Cluster) reachable(src, dst string) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down[dst] {
		return nil, fmt.Errorf("sim: node %s is down", dst)
	}
	if c.part[src] != c.part[dst] {
		return nil, fmt.Errorf("sim: %s and %s are partitioned", src, dst)
	}
	for _, n := range c.nodes {
		if n.ID == dst {
			return n, nil
		}
	}
	return nil, fmt.Errorf("sim: unknown node %s", dst)
}

// label builds the fault-decision key for one message: verb, endpoints,
// content key, and a per-message sequence number so a retry of the same
// logical message re-rolls its fate.
func (c *Cluster) label(verb, src, dst string, key fingerprint.Hash) string {
	base := verb + "/" + src + ">" + dst + "/" + key.Hex()
	c.mu.Lock()
	c.seq[base]++
	n := c.seq[base]
	c.mu.Unlock()
	return base + "#" + strconv.FormatUint(n, 10)
}

// Store returns the node's fleet-routing verdict store (a
// core.VerdictStore — plug it into core.Options.Cache). Stable across
// Restart.
func (n *Node) Store() *cluster.Cache {
	n.c.mu.Lock()
	defer n.c.mu.Unlock()
	return n.cache
}

// Local returns the node's raw shard (assertions on what is committed).
func (n *Node) Local() *vcache.Cache {
	n.c.mu.Lock()
	defer n.c.mu.Unlock()
	return n.local
}

func (n *Node) crash() {
	n.c.mu.Lock()
	cache := n.cache
	n.c.mu.Unlock()
	cache.Close()
}

func (n *Node) adopt(fresh *Node) {
	n.c.mu.Lock()
	n.local, n.cache = fresh.local, fresh.cache
	n.c.mu.Unlock()
}

// transport is one node's view of the simulated network. It mirrors the
// daemon's /v1/peer/verdict semantics — fetch serves the destination's
// raw shard, offer runs the destination's decode gate — with the fault
// injector deciding each message's fate first.
type transport struct {
	c   *Cluster
	src string
}

var _ cluster.Transport = (*transport)(nil)

func (t *transport) Fetch(ctx context.Context, peer cluster.Member, key fingerprint.Hash) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	label := t.c.label("fetch", t.src, peer.ID, key)
	dst, err := t.c.reachable(t.src, peer.ID)
	if err != nil {
		return nil, err
	}
	fault := t.c.net.Decide(label)
	switch fault {
	case faultinject.NetDrop:
		return nil, fmt.Errorf("sim: injected drop (%s)", label)
	case faultinject.NetDelay:
		// Modeled as an immediate per-attempt deadline miss.
		return nil, context.DeadlineExceeded
	}
	e := dst.Local().Get(key)
	if e == nil {
		return nil, cluster.ErrNotFound
	}
	data, err := vcache.EncodeEntry(key, e)
	if err != nil {
		return nil, err
	}
	if fault == faultinject.NetCorrupt {
		// The reply is damaged in flight; the fetcher's decode gate must
		// turn this into a degradation, never a wrong verdict.
		data = faultinject.Damage(data, t.c.net.DamageMode(label))
	}
	return data, nil
}

func (t *transport) Offer(ctx context.Context, peer cluster.Member, key fingerprint.Hash, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	label := t.c.label("offer", t.src, peer.ID, key)
	dst, err := t.c.reachable(t.src, peer.ID)
	if err != nil {
		return err
	}
	switch t.c.net.Decide(label) {
	case faultinject.NetDrop:
		return fmt.Errorf("sim: injected drop (%s)", label)
	case faultinject.NetDelay:
		return context.DeadlineExceeded
	case faultinject.NetCorrupt:
		data = faultinject.Damage(data, t.c.net.DamageMode(label))
	}
	// The receiving node's decode gate: a damaged offer is refused (the
	// sender counts a forward failure), exactly like the daemon's 400.
	e, err := vcache.DecodeEntry(key, data)
	if err != nil {
		return fmt.Errorf("sim: %s rejected offer: %v", peer.ID, err)
	}
	return dst.Local().Put(key, e)
}

// instantClock advances virtual time instead of sleeping, so retry
// backoff and breaker cooldowns behave realistically (monotone,
// ordered) while a chaos run finishes in real milliseconds.
type instantClock struct {
	base time.Time
	ns   atomic.Int64
}

func newInstantClock() *instantClock {
	// An arbitrary fixed epoch: virtual time must be deterministic, so
	// it cannot start at wall clock.
	return &instantClock{base: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *instantClock) Now() time.Time {
	return c.base.Add(time.Duration(c.ns.Load()))
}

func (c *instantClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d > 0 {
		c.ns.Add(int64(d))
	}
	return nil
}
