package sim

import (
	"testing"

	"entangle/internal/cluster"
	"entangle/internal/faultinject"
	"entangle/internal/fingerprint"
	"entangle/internal/vcache"
)

func newFleet(t *testing.T, nodes int, net faultinject.NetConfig) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: nodes, Dir: t.TempDir(), Net: net})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func key(i int) fingerprint.Hash {
	var h fingerprint.Hash
	h[0], h[1], h[2], h[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
	return h
}

func entry(i int) *vcache.Entry {
	return &vcache.Entry{
		Verdict: vcache.VerdictRefined,
		Outputs: []vcache.Mapping{{Main: []string{"I" + string(rune('0'+i%10))}}},
	}
}

// ownerIndex finds which node owns a key under rendezvous hashing.
func ownerIndex(c *Cluster, k fingerprint.Hash) int {
	owner := cluster.Owner(c.Members(), k)
	for i, m := range c.Members() {
		if m.ID == owner.ID {
			return i
		}
	}
	panic("owner not in member list")
}

// pickKey searches for a key owned by `owner` but checked from a
// different node, so tests can force cross-node traffic.
func pickKey(t *testing.T, c *Cluster, owner int) fingerprint.Hash {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if k := key(i); ownerIndex(c, k) == owner {
			return k
		}
	}
	t.Fatal("no key found for owner")
	return fingerprint.Hash{}
}

// TestForwardAndFetch drives the fault-free fleet flow: a non-owner's
// Put lands locally and forwards to the owner; a third node's Get
// fetches from the owner and warms its own shard.
func TestForwardAndFetch(t *testing.T) {
	c := newFleet(t, 3, faultinject.NetConfig{})
	k := pickKey(t, c, 1)
	writer, owner, reader := c.Node(0), c.Node(1), c.Node(2)

	if err := writer.Store().Put(k, entry(7)); err != nil {
		t.Fatal(err)
	}
	if writer.Local().Get(k) == nil {
		t.Fatal("writer's own shard missing the verdict")
	}
	if owner.Local().Get(k) == nil {
		t.Fatal("forward did not land in the owner's shard")
	}
	if got := reader.Store().Get(k); got == nil || got.Verdict != vcache.VerdictRefined {
		t.Fatalf("reader fetch: %+v", got)
	}
	if reader.Local().Get(k) == nil {
		t.Fatal("fetch did not warm the reader's shard")
	}
	rs := reader.Store().ClusterStats()
	if rs.PeerHits != 1 || rs.Warmed != 1 {
		t.Fatalf("reader stats: %+v", rs)
	}
	ws := writer.Store().ClusterStats()
	if ws.Forwards != 1 || ws.ForwardFailures != 0 {
		t.Fatalf("writer stats: %+v", ws)
	}
}

// TestCrashRestartDurability is the no-lost-verdict contract: a verdict
// forwarded to the owner survives the owner's crash (disk persists),
// peers degrade — never error — while it is down, and after restart
// the committed verdict is immediately servable again.
func TestCrashRestartDurability(t *testing.T) {
	c := newFleet(t, 3, faultinject.NetConfig{})
	k := pickKey(t, c, 1)
	writer, reader := c.Node(0), c.Node(2)

	if err := writer.Store().Put(k, entry(3)); err != nil {
		t.Fatal(err)
	}
	c.Crash(1)

	// While the owner is down the reader degrades to a miss (a local
	// cold check in a real run), never a wrong verdict or an error.
	if got := reader.Store().Get(k); got != nil {
		t.Fatalf("fetch from crashed owner returned %+v", got)
	}
	if rs := reader.Store().ClusterStats(); rs.Degraded != 1 {
		t.Fatalf("reader did not count degradation: %+v", rs)
	}
	// New work keeps landing locally even though forwarding fails.
	k2 := pickKey(t, c, 1)
	if k2 == k {
		k2 = key(20000) // distinct fallback; ownership does not matter here
	}
	if err := writer.Store().Put(k2, entry(4)); err != nil {
		t.Fatal(err)
	}
	if writer.Local().Get(k2) == nil {
		t.Fatal("degraded Put lost the local copy")
	}

	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	owner := c.Node(1)
	if owner.Local().Get(k) == nil {
		t.Fatal("committed verdict lost across crash/restart")
	}
	if got := reader.Store().Get(k); got == nil {
		t.Fatal("restarted owner not serving committed verdicts")
	}
}

// TestRejoinWarmUp verifies a restarted owner is re-warmed lazily by
// later forwards: verdicts computed while it was down reach it once
// writers touch those keys again.
func TestRejoinWarmUp(t *testing.T) {
	c := newFleet(t, 3, faultinject.NetConfig{})
	k := pickKey(t, c, 1)
	writer := c.Node(0)

	c.Crash(1)
	if err := writer.Store().Put(k, entry(5)); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	if c.Node(1).Local().Get(k) != nil {
		t.Fatal("owner knew a verdict committed while it was down (no transfer protocol exists)")
	}
	// The next Put of the same key re-forwards and warms the owner.
	if err := writer.Store().Put(k, entry(5)); err != nil {
		t.Fatal(err)
	}
	if c.Node(1).Local().Get(k) == nil {
		t.Fatal("re-forwarded verdict did not warm the rejoined owner")
	}
}

// TestPartitionHeal verifies cross-partition traffic fails (degrading
// the caller) and resumes after heal.
func TestPartitionHeal(t *testing.T) {
	c := newFleet(t, 3, faultinject.NetConfig{})
	k := pickKey(t, c, 1)
	writer, reader := c.Node(0), c.Node(2)

	if err := writer.Store().Put(k, entry(1)); err != nil {
		t.Fatal(err)
	}
	c.Partition([]int{0, 1}, []int{2})
	if got := reader.Store().Get(k); got != nil {
		t.Fatalf("fetch across partition returned %+v", got)
	}
	c.Heal()
	if got := reader.Store().Get(k); got == nil {
		t.Fatal("fetch after heal still failing")
	}
}

// TestChaosNeverWrongVerdict hammers a lossy, corrupting network: every
// Get must return either the exact committed entry or nil — degraded is
// fine, wrong is not.
func TestChaosNeverWrongVerdict(t *testing.T) {
	c := newFleet(t, 3, faultinject.NetConfig{
		Seed:        42,
		DropRate:    0.2,
		DelayRate:   0.2,
		CorruptRate: 0.2,
	})
	const keys = 200
	for i := 0; i < keys; i++ {
		if err := c.Node(i%3).Store().Put(key(i), entry(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	returned, degraded := 0, 0
	for i := 0; i < keys; i++ {
		reader := c.Node((i + 1) % 3)
		got := reader.Store().Get(key(i))
		if got == nil {
			degraded++
			continue
		}
		returned++
		want := entry(i)
		if got.Verdict != want.Verdict || len(got.Outputs) != 1 || got.Outputs[0].Main[0] != want.Outputs[0].Main[0] {
			t.Fatalf("key %d: wrong verdict under chaos: got %+v want %+v", i, got, want)
		}
	}
	if returned == 0 {
		t.Fatal("chaos killed every fetch; rates too hot for a meaningful test")
	}
	inj := c.Injected()
	if inj[faultinject.NetDrop] == 0 || inj[faultinject.NetDelay] == 0 || inj[faultinject.NetCorrupt] == 0 {
		t.Fatalf("chaos injected nothing: %v (degraded %d)", inj, degraded)
	}
}

// TestDeterministicInjection runs the identical single-threaded script
// on two fleets with the same seed: the injected-fault census must
// match exactly.
func TestDeterministicInjection(t *testing.T) {
	run := func() (map[faultinject.NetFault]int, []bool) {
		c := newFleet(t, 3, faultinject.NetConfig{
			Seed:        99,
			DropRate:    0.25,
			DelayRate:   0.25,
			CorruptRate: 0.25,
		})
		var hits []bool
		for i := 0; i < 100; i++ {
			if err := c.Node(i%3).Store().Put(key(i), entry(i)); err != nil {
				t.Fatal(err)
			}
			hits = append(hits, c.Node((i+1)%3).Store().Get(key(i)) != nil)
		}
		return c.Injected(), hits
	}
	injA, hitsA := run()
	injB, hitsB := run()
	for _, f := range []faultinject.NetFault{faultinject.NetDrop, faultinject.NetDelay, faultinject.NetCorrupt} {
		if injA[f] != injB[f] {
			t.Fatalf("fault %v: %d vs %d", f, injA[f], injB[f])
		}
	}
	for i := range hitsA {
		if hitsA[i] != hitsB[i] {
			t.Fatalf("hit/miss sequence diverged at %d", i)
		}
	}
}
