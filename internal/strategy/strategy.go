// Package strategy implements the distribution strategies of §2.1 as a
// library of parallel layers — the role Megatron-LM's parallel modules
// play for the paper's evaluation. A strategy.Env wraps construction of
// the distributed graph G_d: it creates per-rank input shards or
// replicas, records the clean input relation R_i as it goes, and
// remembers how to derive concrete per-rank inputs from sequential
// inputs so differential tests can run both graphs on the same data.
package strategy

import (
	"fmt"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/numeric"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// DeriveKind says how a G_d input is produced from a G_s input.
type DeriveKind int

const (
	// DeriveReplicate copies the sequential tensor.
	DeriveReplicate DeriveKind = iota
	// DeriveShard takes shard Index of Count along Dim.
	DeriveShard
)

// Derivation records how one distributed input tensor is derived from
// a sequential input. The numeric splitter uses it.
type Derivation struct {
	GsInput string
	Kind    DeriveKind
	Dim     int
	Index   int
	Count   int
}

// Env accumulates a distributed implementation under construction.
type Env struct {
	Gs *graph.Graph
	B  *graph.Builder
	R  int // parallelism degree (TP=SP group size)
	Ri *relation.Relation

	Derivs map[string]Derivation // G_d input name → derivation

	// full tracks G_d tensors known to hold a complete (replicated or
	// gathered) value, so AllGatherSeq can reject gather-after-gather
	// compositions: gathering an already-full tensor type-checks (the
	// concat just grows the sequence dim) but is essentially always an
	// SP composition mistake, and randomized composers hit it.
	full map[graph.TensorID]bool
}

// NewEnv starts building a distributed implementation of gs with
// parallelism degree r. Degree 1 is legal and degenerates to the
// identity parallelization: Shard maps each input to a bare leaf and
// the collective helpers emit no collectives.
func NewEnv(gs *graph.Graph, name string, r int) *Env {
	e := &Env{
		Gs:     gs,
		B:      graph.NewBuilder(name, gs.Ctx.Clone()),
		R:      r,
		Ri:     relation.New(),
		Derivs: map[string]Derivation{},
		full:   map[graph.TensorID]bool{},
	}
	if r < 1 {
		e.failBuilder(fmt.Errorf("strategy: parallelism degree %d < 1", r))
	}
	return e
}

// MarkFull records that a G_d tensor holds a complete value (a full
// copy of some sequential tensor, not a shard or partial sum), for the
// gather-after-gather validation. Builders that construct collectives
// outside the Env helpers can use it to keep the layout tracking honest.
func (e *Env) MarkFull(ids ...graph.TensorID) {
	for _, id := range ids {
		e.full[id] = true
	}
}

// KnownFull reports whether id was marked as holding a complete value.
func (e *Env) KnownFull(id graph.TensorID) bool { return e.full[id] }

// gsInput resolves a sequential input tensor by name.
func (e *Env) gsInput(name string) (*graph.Tensor, error) {
	t, ok := e.Gs.TensorByName(name)
	if !ok {
		return nil, fmt.Errorf("strategy: G_s has no tensor %q", name)
	}
	if t.Producer != graph.NoProducer {
		return nil, fmt.Errorf("strategy: G_s tensor %q is not an input", name)
	}
	return t, nil
}

// rankName prefixes a name with its rank, Megatron log style.
func rankName(r int, name string) string { return fmt.Sprintf("r%d/%s", r, name) }

// Replicate declares one distributed input per rank, each a full copy
// of the sequential input; R_i gets one mapping per replica.
func (e *Env) Replicate(gsName string) []graph.TensorID {
	t, err := e.gsInput(gsName)
	if err != nil {
		e.failBuilder(err)
		return make([]graph.TensorID, e.R)
	}
	out := make([]graph.TensorID, e.R)
	for r := 0; r < e.R; r++ {
		name := rankName(r, gsName)
		out[r] = e.B.Input(name, t.Shape.Clone())
		e.Derivs[name] = Derivation{GsInput: gsName, Kind: DeriveReplicate}
		if e.B.Err() == nil {
			gd, _ := e.B.Graph().TensorByName(name)
			e.Ri.Add(t.ID, relation.GdLeaf(gd))
		}
		e.full[out[r]] = true
	}
	return out
}

// Shared declares a single distributed input shared by all ranks (the
// usual representation for replicated weights captured once).
func (e *Env) Shared(gsName string) graph.TensorID {
	t, err := e.gsInput(gsName)
	if err != nil {
		e.failBuilder(err)
		return 0
	}
	id := e.B.Input(gsName, t.Shape.Clone())
	e.Derivs[gsName] = Derivation{GsInput: gsName, Kind: DeriveReplicate}
	if e.B.Err() == nil {
		gd, _ := e.B.Graph().TensorByName(gsName)
		e.Ri.Add(t.ID, relation.GdLeaf(gd))
	}
	e.full[id] = true
	return id
}

// Shard declares R distributed inputs, each an equal shard of the
// sequential input along dim; R_i gets the concat mapping.
func (e *Env) Shard(gsName string, dim int) []graph.TensorID {
	return e.ShardNamed(gsName, gsName, dim)
}

// ShardNamed is Shard with a custom per-rank base name.
func (e *Env) ShardNamed(gsName, baseName string, dim int) []graph.TensorID {
	t, err := e.gsInput(gsName)
	if err != nil {
		e.failBuilder(err)
		return make([]graph.TensorID, e.R)
	}
	if dim < 0 || dim >= len(t.Shape) {
		e.failBuilder(fmt.Errorf("strategy: shard dim %d out of range for %q", dim, gsName))
		return make([]graph.TensorID, e.R)
	}
	chunk, ok := t.Shape[dim].DivConst(int64(e.R))
	if !ok {
		e.failBuilder(fmt.Errorf("strategy: %q extent %s not divisible by %d", gsName, t.Shape[dim], e.R))
		return make([]graph.TensorID, e.R)
	}
	out := make([]graph.TensorID, e.R)
	leaves := make([]*expr.Term, e.R)
	for r := 0; r < e.R; r++ {
		sh := t.Shape.Clone()
		sh[dim] = chunk
		name := rankName(r, baseName)
		out[r] = e.B.Input(name, sh)
		e.Derivs[name] = Derivation{GsInput: gsName, Kind: DeriveShard, Dim: dim, Index: r, Count: e.R}
		if e.B.Err() == nil {
			gd, _ := e.B.Graph().TensorByName(name)
			leaves[r] = relation.GdLeaf(gd)
		}
	}
	if e.B.Err() == nil {
		// A degree-1 "shard" is the whole tensor: map it as a bare
		// leaf, not a one-piece concat. The concat form is equivalent
		// but not clean-simplest, and identity parallelizations should
		// produce identity relations.
		if e.R == 1 {
			e.Ri.Add(t.ID, leaves[0])
			e.full[out[0]] = true
		} else {
			e.Ri.Add(t.ID, expr.Concat(sym.Const(int64(dim)), leaves...))
		}
	}
	return out
}

func (e *Env) failBuilder(err error) { e.B.Fail(err) }

// GatherError is the typed rejection for gather-after-gather: an
// AllGatherSeq applied to a tensor already known to hold a full value.
// The resulting graph would type-check — concat just grows the
// sequence dim — but the composition is a strategy bug, so Build
// returns this error (retrievable with errors.As).
type GatherError struct {
	// Label is the gather's label.
	Label string
	// Tensor names the already-full input tensor.
	Tensor string
}

func (e *GatherError) Error() string {
	return fmt.Sprintf("strategy: %s: gather-after-gather: input %q already holds a full value", e.Label, e.Tensor)
}

// ReduceMode selects how a row-parallel linear combines partials.
type ReduceMode int

const (
	// ReduceAllReduce combines partial products with all-reduce (TP).
	ReduceAllReduce ReduceMode = iota
	// ReduceScatterSeq reduce-scatters over the sequence dim (SP).
	ReduceScatterSeq
	// ReduceNone omits the combine — the §6.2 bug-7 injection.
	ReduceNone
)

// ColumnParallelLinear multiplies each rank's activation with a column
// shard of the weight named wGsName: y_r = x_r · W_r, W split on its
// last dim. Outputs stay hidden-sharded.
func (e *Env) ColumnParallelLinear(label string, xs []graph.TensorID, wGsName string) []graph.TensorID {
	ws := e.Shard(wGsName, 1)
	out := make([]graph.TensorID, e.R)
	for r := 0; r < e.R; r++ {
		out[r] = e.B.MatMul(rankName(r, label), xs[r], ws[r])
	}
	return out
}

// RowParallelLinear multiplies each rank's hidden-sharded activation
// with a row shard of the weight, then combines the partial products
// according to mode.
func (e *Env) RowParallelLinear(label string, xs []graph.TensorID, wGsName string, mode ReduceMode) []graph.TensorID {
	ws := e.Shard(wGsName, 0)
	partials := make([]graph.TensorID, e.R)
	for r := 0; r < e.R; r++ {
		partials[r] = e.B.MatMul(rankName(r, label), xs[r], ws[r])
	}
	if e.R == 1 {
		// Degree-1: the single "partial" is the full product; every
		// reduce mode is the identity, so emit no collective.
		e.full[partials[0]] = true
		return partials
	}
	switch mode {
	case ReduceAllReduce:
		out := e.B.AllReduce(label+"/allreduce", partials...)
		e.MarkFull(out...)
		return out
	case ReduceScatterSeq:
		return e.B.ReduceScatter(label+"/reducescatter", 0, partials...)
	case ReduceNone:
		return partials
	}
	e.failBuilder(fmt.Errorf("strategy: unknown reduce mode %d", mode))
	return partials
}

// AllGatherSeq gathers sequence shards into full-sequence replicas on
// every rank (Megatron SP's g operator before column-parallel linears).
// At degree 1 it is the identity and emits no collective. Gathering a
// tensor already known to hold a full value (a replica, a previous
// gather, an all-reduce output) poisons the builder with *GatherError.
func (e *Env) AllGatherSeq(label string, xs []graph.TensorID) []graph.TensorID {
	for _, x := range xs {
		if e.full[x] {
			e.failBuilder(&GatherError{Label: label, Tensor: e.B.Graph().Tensor(x).Name})
			out := make([]graph.TensorID, len(xs))
			copy(out, xs)
			return out
		}
	}
	if e.R == 1 && len(xs) == 1 {
		e.full[xs[0]] = true
		out := []graph.TensorID{xs[0]}
		return out
	}
	out := e.B.AllGather(label, 0, xs...)
	e.MarkFull(out...)
	return out
}

// SplitInputs derives concrete per-rank inputs from sequential inputs
// using the recorded derivations. gsVals is keyed by G_s input name.
func (e *Env) SplitInputs(gsVals map[string]*numeric.Dense) (map[string]*numeric.Dense, error) {
	out := make(map[string]*numeric.Dense, len(e.Derivs))
	for name, d := range e.Derivs {
		src, ok := gsVals[d.GsInput]
		if !ok {
			return nil, fmt.Errorf("strategy: no sequential value for %q", d.GsInput)
		}
		switch d.Kind {
		case DeriveReplicate:
			out[name] = src.Clone()
		case DeriveShard:
			ext := src.Shape[d.Dim]
			if ext%d.Count != 0 {
				return nil, fmt.Errorf("strategy: extent %d not divisible by %d for %q", ext, d.Count, name)
			}
			chunk := ext / d.Count
			s, err := numeric.Slice(src, d.Dim, d.Index*chunk, (d.Index+1)*chunk)
			if err != nil {
				return nil, err
			}
			out[name] = s
		default:
			return nil, fmt.Errorf("strategy: unknown derivation for %q", name)
		}
	}
	return out, nil
}

// Build finalizes the distributed graph.
func (e *Env) Build() (*graph.Graph, error) { return e.B.Build() }

// Shapes re-exposes shape.Of for model builders' convenience.
func Shapes(dims ...int64) shape.Shape { return shape.Of(dims...) }
