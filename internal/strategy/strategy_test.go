package strategy

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/numeric"
	"entangle/internal/shape"
)

func seqLinear(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("gs", nil)
	x := b.Input("x", shape.Of(4, 8))
	w := b.Input("w", shape.Of(8, 6))
	y := b.MatMul("linear", x, w)
	b.Output(y)
	return b.MustBuild()
}

func TestShardBuildsInputsAndRelation(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 2)
	ids := e.Shard("w", 1)
	if len(ids) != 2 {
		t.Fatalf("want 2 shards")
	}
	g := e.B.Graph()
	w0, ok := g.TensorByName("r0/w")
	if !ok {
		t.Fatal("missing shard input")
	}
	if v, _ := w0.Shape[1].IsConst(); v != 3 {
		t.Fatalf("shard extent %v", w0.Shape)
	}
	wT, _ := gs.TensorByName("w")
	maps := e.Ri.Get(wT.ID)
	if len(maps) != 1 || !strings.Contains(maps[0].String(), "concat(r0/w, r1/w, dim=1)") {
		t.Fatalf("relation %v", maps)
	}
}

func TestShardIndivisibleFails(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 3) // 8 not divisible by 3
	e.Shard("w", 0)
	if _, err := e.Build(); err == nil {
		t.Fatal("indivisible shard must fail")
	}
}

func TestShardUnknownInputFails(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 2)
	e.Shard("nope", 0)
	if _, err := e.Build(); err == nil {
		t.Fatal("unknown input must fail")
	}
}

func TestShardNonInputFails(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 2)
	e.Shard("linear.out", 0)
	if _, err := e.Build(); err == nil {
		t.Fatal("non-input tensor must fail")
	}
}

func TestReplicateRelationHasOneMappingPerRank(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 3)
	b := graph.NewBuilder("gs3", nil)
	_ = b
	// x: [4,8] not shardable by 3 but replication is fine.
	e.Replicate("x")
	xT, _ := gs.TensorByName("x")
	if len(e.Ri.Get(xT.ID)) != 3 {
		t.Fatalf("want 3 replica mappings, got %d", len(e.Ri.Get(xT.ID)))
	}
}

func TestColumnRowParallelComposition(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 2)
	xs := e.Replicate("x")
	cols := e.ColumnParallelLinear("linear", xs, "w")
	e.B.Output(cols...)
	gd, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	if gd.OperatorCount() != 2 {
		t.Fatalf("want 2 matmuls, got %d", gd.OperatorCount())
	}
}

func TestSplitInputsNumeric(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 2)
	e.Shard("x", 0)
	e.Replicate("w")
	rng := rand.New(rand.NewSource(3))
	full := map[string]*numeric.Dense{
		"x": numeric.Rand(rng, 4, 8),
		"w": numeric.Rand(rng, 8, 6),
	}
	split, err := e.SplitInputs(full)
	if err != nil {
		t.Fatal(err)
	}
	if split["r0/x"].Shape[0] != 2 || split["r1/x"].Shape[0] != 2 {
		t.Fatal("shard shapes wrong")
	}
	// r1/x must equal rows 2..4 of x
	want, _ := numeric.Slice(full["x"], 0, 2, 4)
	if numeric.MaxAbsDiff(split["r1/x"], want) != 0 {
		t.Fatal("shard content wrong")
	}
	if numeric.MaxAbsDiff(split["r0/w"], full["w"]) != 0 {
		t.Fatal("replica content wrong")
	}
	if _, err := e.SplitInputs(map[string]*numeric.Dense{}); err == nil {
		t.Fatal("missing sequential value must fail")
	}
}

func TestRowParallelModes(t *testing.T) {
	// Build a two-rank row-parallel linear under each reduce mode and
	// check the node structure.
	for _, mode := range []ReduceMode{ReduceAllReduce, ReduceScatterSeq, ReduceNone} {
		gs := seqLinear(t)
		e := NewEnv(gs, "gd", 2)
		xs := e.Shard("x", 1)
		outs := e.RowParallelLinear("linear", xs, "w", mode)
		e.B.Output(outs...)
		gd, err := e.Build()
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		var hasAR, hasRS bool
		for _, n := range gd.Nodes {
			switch string(n.Op) {
			case "allreduce":
				hasAR = true
			case "reducescatter":
				hasRS = true
			}
		}
		switch mode {
		case ReduceAllReduce:
			if !hasAR {
				t.Fatal("allreduce missing")
			}
		case ReduceScatterSeq:
			if !hasRS {
				t.Fatal("reducescatter missing")
			}
		case ReduceNone:
			if hasAR || hasRS {
				t.Fatal("ReduceNone must omit collectives")
			}
		}
	}
}

// Degree-1 parallelizations must be identities: bare-leaf input
// mappings (no one-piece concats) and no collectives, and the checker
// must refine the result like any other strategy.
func TestDegree1ShardIsIdentity(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 1)
	xs := e.Shard("x", 0)
	ws := e.Shard("w", 1)
	y := e.B.MatMul("r0/linear", xs[0], ws[0])
	e.B.Output(y)
	gd, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x", "w"} {
		tt, _ := gs.TensorByName(name)
		maps := e.Ri.Get(tt.ID)
		if len(maps) != 1 {
			t.Fatalf("%s: want 1 mapping, got %v", name, maps)
		}
		if strings.Contains(maps[0].String(), "concat") {
			t.Fatalf("%s: degree-1 shard mapped as concat: %s", name, maps[0])
		}
	}
	if gd.OperatorCount() != 1 {
		t.Fatalf("degree-1 G_d should have exactly the matmul, got %d ops", gd.OperatorCount())
	}
}

func TestDegree1CollectivesAreIdentity(t *testing.T) {
	b := graph.NewBuilder("gs", nil)
	x := b.Input("x", shape.Of(4, 8))
	w1 := b.Input("w1", shape.Of(8, 8))
	w2 := b.Input("w2", shape.Of(8, 8))
	h := b.MatMul("fc1", x, w1)
	b.Output(b.MatMul("fc2", h, w2))
	gs := b.MustBuild()

	for _, mode := range []ReduceMode{ReduceAllReduce, ReduceScatterSeq} {
		e := NewEnv(gs, "gd", 1)
		xs := e.Shard("x", 0)
		hs := e.ColumnParallelLinear("fc1", xs, "w1")
		gathered := e.AllGatherSeq("gather", hs)
		if len(gathered) != 1 || gathered[0] != hs[0] {
			t.Fatalf("degree-1 gather is not the identity: %v vs %v", gathered, hs)
		}
		out := e.RowParallelLinear("fc2", gathered, "w2", mode)
		e.B.Output(out...)
		gd, err := e.Build()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for _, n := range gd.Nodes {
			if expr.Collective(n.Op) {
				t.Fatalf("mode %v: degree-1 build emitted collective %s (%s)", mode, n.Op, n.Label)
			}
		}
	}
}

func TestDegree0Rejected(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 0)
	if _, err := e.Build(); err == nil {
		t.Fatal("degree 0 accepted")
	}
}

func TestGatherAfterGatherTypedError(t *testing.T) {
	b := graph.NewBuilder("gs", nil)
	x := b.Input("x", shape.Of(4, 8))
	b.Output(b.Unary("act", "gelu", x))
	gs := b.MustBuild()

	e := NewEnv(gs, "gd", 2)
	xs := e.Shard("x", 0)
	g1 := e.AllGatherSeq("gather1", xs)
	e.AllGatherSeq("gather2", g1)
	_, err := e.Build()
	if err == nil {
		t.Fatal("gather-after-gather accepted")
	}
	var ge *GatherError
	if !errors.As(err, &ge) {
		t.Fatalf("want *GatherError, got %T: %v", err, err)
	}
	if ge.Label != "gather2" {
		t.Fatalf("wrong gather blamed: %+v", ge)
	}
}

func TestGatherOfReplicaTypedError(t *testing.T) {
	b := graph.NewBuilder("gs", nil)
	x := b.Input("x", shape.Of(4, 8))
	b.Output(b.Unary("act", "gelu", x))
	gs := b.MustBuild()

	e := NewEnv(gs, "gd", 2)
	xs := e.Replicate("x")
	e.AllGatherSeq("gather", xs)
	var ge *GatherError
	if _, err := e.Build(); !errors.As(err, &ge) {
		t.Fatalf("want *GatherError, got %v", err)
	}
}
