package strategy

import (
	"math/rand"
	"strings"
	"testing"

	"entangle/internal/graph"
	"entangle/internal/numeric"
	"entangle/internal/shape"
)

func seqLinear(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("gs", nil)
	x := b.Input("x", shape.Of(4, 8))
	w := b.Input("w", shape.Of(8, 6))
	y := b.MatMul("linear", x, w)
	b.Output(y)
	return b.MustBuild()
}

func TestShardBuildsInputsAndRelation(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 2)
	ids := e.Shard("w", 1)
	if len(ids) != 2 {
		t.Fatalf("want 2 shards")
	}
	g := e.B.Graph()
	w0, ok := g.TensorByName("r0/w")
	if !ok {
		t.Fatal("missing shard input")
	}
	if v, _ := w0.Shape[1].IsConst(); v != 3 {
		t.Fatalf("shard extent %v", w0.Shape)
	}
	wT, _ := gs.TensorByName("w")
	maps := e.Ri.Get(wT.ID)
	if len(maps) != 1 || !strings.Contains(maps[0].String(), "concat(r0/w, r1/w, dim=1)") {
		t.Fatalf("relation %v", maps)
	}
}

func TestShardIndivisibleFails(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 3) // 8 not divisible by 3
	e.Shard("w", 0)
	if _, err := e.Build(); err == nil {
		t.Fatal("indivisible shard must fail")
	}
}

func TestShardUnknownInputFails(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 2)
	e.Shard("nope", 0)
	if _, err := e.Build(); err == nil {
		t.Fatal("unknown input must fail")
	}
}

func TestShardNonInputFails(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 2)
	e.Shard("linear.out", 0)
	if _, err := e.Build(); err == nil {
		t.Fatal("non-input tensor must fail")
	}
}

func TestReplicateRelationHasOneMappingPerRank(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 3)
	b := graph.NewBuilder("gs3", nil)
	_ = b
	// x: [4,8] not shardable by 3 but replication is fine.
	e.Replicate("x")
	xT, _ := gs.TensorByName("x")
	if len(e.Ri.Get(xT.ID)) != 3 {
		t.Fatalf("want 3 replica mappings, got %d", len(e.Ri.Get(xT.ID)))
	}
}

func TestColumnRowParallelComposition(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 2)
	xs := e.Replicate("x")
	cols := e.ColumnParallelLinear("linear", xs, "w")
	e.B.Output(cols...)
	gd, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	if gd.OperatorCount() != 2 {
		t.Fatalf("want 2 matmuls, got %d", gd.OperatorCount())
	}
}

func TestSplitInputsNumeric(t *testing.T) {
	gs := seqLinear(t)
	e := NewEnv(gs, "gd", 2)
	e.Shard("x", 0)
	e.Replicate("w")
	rng := rand.New(rand.NewSource(3))
	full := map[string]*numeric.Dense{
		"x": numeric.Rand(rng, 4, 8),
		"w": numeric.Rand(rng, 8, 6),
	}
	split, err := e.SplitInputs(full)
	if err != nil {
		t.Fatal(err)
	}
	if split["r0/x"].Shape[0] != 2 || split["r1/x"].Shape[0] != 2 {
		t.Fatal("shard shapes wrong")
	}
	// r1/x must equal rows 2..4 of x
	want, _ := numeric.Slice(full["x"], 0, 2, 4)
	if numeric.MaxAbsDiff(split["r1/x"], want) != 0 {
		t.Fatal("shard content wrong")
	}
	if numeric.MaxAbsDiff(split["r0/w"], full["w"]) != 0 {
		t.Fatal("replica content wrong")
	}
	if _, err := e.SplitInputs(map[string]*numeric.Dense{}); err == nil {
		t.Fatal("missing sequential value must fail")
	}
}

func TestRowParallelModes(t *testing.T) {
	// Build a two-rank row-parallel linear under each reduce mode and
	// check the node structure.
	for _, mode := range []ReduceMode{ReduceAllReduce, ReduceScatterSeq, ReduceNone} {
		gs := seqLinear(t)
		e := NewEnv(gs, "gd", 2)
		xs := e.Shard("x", 1)
		outs := e.RowParallelLinear("linear", xs, "w", mode)
		e.B.Output(outs...)
		gd, err := e.Build()
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		var hasAR, hasRS bool
		for _, n := range gd.Nodes {
			switch string(n.Op) {
			case "allreduce":
				hasAR = true
			case "reducescatter":
				hasRS = true
			}
		}
		switch mode {
		case ReduceAllReduce:
			if !hasAR {
				t.Fatal("allreduce missing")
			}
		case ReduceScatterSeq:
			if !hasRS {
				t.Fatal("reducescatter missing")
			}
		case ReduceNone:
			if hasAR || hasRS {
				t.Fatal("ReduceNone must omit collectives")
			}
		}
	}
}
