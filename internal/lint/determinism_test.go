package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDeterminismCorpus runs the determinism check over the corpus in
// testdata/src/det/internal/core — a path whose suffix puts it under
// the determinism contract — and pins the exact findings.
func TestDeterminismCorpus(t *testing.T) {
	ds, err := Source("testdata/src/det/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	findDiag(t, ds, CheckDeterminism, "wallClock")
	findDiag(t, ds, CheckDeterminism, "elapsed")
	findDiag(t, ds, CheckDeterminism, "draw")
	findDiag(t, ds, CheckDeterminism, "wrongPragma")
	noDiag(t, ds, CheckDeterminism, "annotated")
	noDiag(t, ds, CheckDeterminism, "formatted")
	for _, d := range ds {
		if d.Severity != SevError {
			t.Errorf("determinism findings must be errors, got %s", d)
		}
	}
	checkGolden(t, "determinism-golden.txt", ds)
}

// TestDeterminismScope: the same hazardous file outside the scoped
// package suffixes must produce no findings — the contract binds
// internal/core, internal/egraph, and internal/mc, not the world.
func TestDeterminismScope(t *testing.T) {
	src, err := os.ReadFile("testdata/src/det/internal/core/clock.go")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "internal", "telemetry")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "clock.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := Source(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Check == CheckDeterminism {
			t.Errorf("determinism check fired outside its package scope: %s", d)
		}
	}

	// And the suffix match must hold for absolute paths too, across
	// every package carrying the contract — internal/fingerprint joined
	// when the diff planner started deriving dirty sets from its cone
	// hashes, so a wall-clock read there would silently break plans.
	for _, pkg := range determinismDirs {
		abs := filepath.Join(t.TempDir(), "work", filepath.FromSlash(pkg))
		if err := os.MkdirAll(abs, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(abs, "clock.go"), src, 0o644); err != nil {
			t.Fatal(err)
		}
		ds, err = Source(abs)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, d := range ds {
			found = found || d.Check == CheckDeterminism
		}
		if !found {
			t.Errorf("determinism check did not fire in an absolute %s path", pkg)
		}
	}
}
