package lint

import (
	"fmt"
	"sort"

	"entangle/internal/egraph"
	"entangle/internal/lemmas"
)

// Layer 1: rule/lemma lint. The lemma library is the trusted base of
// every refinement proof, and most of it is hand-written pattern code
// — exactly the kind of library "Searching Entangled Program Spaces"
// observes is fragile without its own tooling. These checks run over
// the declarative parts of every rule: the LHS pattern always, and
// the RHS template when the rule was built with egraph.Simple or
// egraph.Constrained (dynamic rules keep RHS nil and are skipped by
// the template checks).
const (
	// CheckLemmaDuplicateName fires when two lemmas share a name.
	CheckLemmaDuplicateName = "lemma-duplicate-name"
	// CheckRuleDuplicateName fires when two rules share a name, across
	// all lemmas.
	CheckRuleDuplicateName = "rule-duplicate-name"
	// CheckRuleUnboundRHSVar fires when a declarative RHS template
	// references a class variable the LHS never binds — instantiation
	// would panic at rewrite time.
	CheckRuleUnboundRHSVar = "rule-unbound-rhs-var"
	// CheckRuleSelfLoop fires when a declarative rule's RHS rebuilds
	// its LHS verbatim: the union is always a no-op and the rule is
	// dead weight in every saturation iteration.
	CheckRuleSelfLoop = "rule-self-loop"
	// CheckRuleShadowed fires when a declarative rule is subsumed by
	// an earlier declarative rule with a more general LHS and a
	// coinciding RHS — every union the later rule could add, the
	// earlier one already adds.
	CheckRuleShadowed = "rule-shadowed"
	// CheckLemmaComplexityDrift fires when a lemma's declared
	// Complexity (operators appearing in the lemma, the paper's
	// Figure 5a metric) disagrees with the operator count in its own
	// patterns. Only computable for lemmas whose rules all carry
	// declarative RHS templates.
	CheckLemmaComplexityDrift = "lemma-complexity-drift"
)

// Lemmas lints a lemma collection (normally Registry.All()). The
// slice form, rather than a *Registry, lets tests lint deliberately
// broken collections a registry would refuse to hold.
func Lemmas(ls []*lemmas.Lemma) []Diagnostic {
	var out []Diagnostic
	out = append(out, checkDuplicateNames(ls)...)
	var all []*egraph.Rule
	owners := map[*egraph.Rule]*lemmas.Lemma{}
	for _, l := range ls {
		for _, r := range l.Rules {
			all = append(all, r)
			owners[r] = l
		}
	}
	for _, r := range all {
		out = append(out, checkRuleTemplates(r)...)
	}
	out = append(out, checkShadowing(all)...)
	for _, l := range ls {
		out = append(out, checkComplexity(l)...)
	}
	return out
}

func checkDuplicateNames(ls []*lemmas.Lemma) []Diagnostic {
	var out []Diagnostic
	lemmaSeen := map[string]bool{}
	ruleSeen := map[string]string{} // rule name → owning lemma name
	for _, l := range ls {
		if lemmaSeen[l.Name] {
			out = append(out, Diagnostic{
				Check: CheckLemmaDuplicateName, Severity: SevError, Subject: l.Name,
				Message: "lemma name registered more than once; the later registration would silently shadow the earlier in any name lookup",
			})
		}
		lemmaSeen[l.Name] = true
		for _, r := range l.Rules {
			if prev, dup := ruleSeen[r.Name]; dup {
				out = append(out, Diagnostic{
					Check: CheckRuleDuplicateName, Severity: SevError, Subject: r.Name,
					Message: fmt.Sprintf("rule name already used by lemma %q; per-rule application stats and lemma attribution would merge the two", prev),
				})
				continue
			}
			ruleSeen[r.Name] = l.Name
		}
	}
	return out
}

// checkRuleTemplates runs the per-rule declarative checks: unbound
// RHS variables and trivial self-loops.
func checkRuleTemplates(r *egraph.Rule) []Diagnostic {
	var out []Diagnostic
	if r.LHS == nil {
		out = append(out, Diagnostic{
			Check: CheckRuleUnboundRHSVar, Severity: SevError, Subject: r.Name,
			Message: "rule has no LHS pattern",
		})
		return out
	}
	if r.RHS == nil {
		return nil // dynamic rule: nothing declarative to check
	}
	bound := map[string]bool{}
	collectBoundVars(r.LHS, bound)
	var unbound []string
	collectRHSVars(r.RHS, func(v string) {
		if !bound[v] {
			unbound = append(unbound, v)
		}
	})
	sort.Strings(unbound)
	for i, v := range unbound {
		if i > 0 && unbound[i-1] == v {
			continue
		}
		out = append(out, Diagnostic{
			Check: CheckRuleUnboundRHSVar, Severity: SevError, Subject: r.Name,
			Message: fmt.Sprintf("RHS template references ?%s, which the LHS never binds; Instantiate would panic on the first match", v),
		})
	}
	if patternEqualsRTerm(r.LHS, r.RHS) {
		out = append(out, Diagnostic{
			Check: CheckRuleSelfLoop, Severity: SevError, Subject: r.Name,
			Message: "RHS rebuilds the LHS verbatim; the rule can only union a class with itself",
		})
	}
	return out
}

// checkShadowing flags declarative rules fully covered by an earlier
// declarative rule: the earlier LHS subsumes the later one, and under
// that subsumption the two RHS templates build the same term. Such a
// rule never contributes a union the earlier rule hasn't already
// made.
func checkShadowing(rules []*egraph.Rule) []Diagnostic {
	var out []Diagnostic
	for i, general := range rules {
		if general.RHS == nil || general.LHS == nil {
			continue
		}
		for _, specific := range rules[i+1:] {
			if specific.RHS == nil || specific.LHS == nil || specific.Name == general.Name {
				continue
			}
			bind := newBinding()
			if !subsumes(general.LHS, specific.LHS, bind) {
				continue
			}
			if !rhsCoincides(general.RHS, specific.RHS, bind) {
				continue
			}
			out = append(out, Diagnostic{
				Check: CheckRuleShadowed, Severity: SevWarning, Subject: specific.Name,
				Message: fmt.Sprintf("shadowed by earlier rule %q, whose more general LHS %s already produces the same RHS on every match", general.Name, general.LHS),
			})
		}
	}
	return out
}

// checkComplexity recomputes a lemma's Complexity from its patterns —
// the count of operator applications on both sides of the rewrite,
// maximized over the lemma's rules (forward and reverse directions of
// one equation give the same count). Lemmas with any dynamic rule are
// skipped: their RHS operator count is not statically visible.
func checkComplexity(l *lemmas.Lemma) []Diagnostic {
	computed := 0
	for _, r := range l.Rules {
		if r.RHS == nil || r.LHS == nil {
			return nil
		}
		if n := patternOpCount(r.LHS) + rtermOpCount(r.RHS); n > computed {
			computed = n
		}
	}
	if len(l.Rules) == 0 || computed == l.Complexity {
		return nil
	}
	return []Diagnostic{{
		Check: CheckLemmaComplexityDrift, Severity: SevWarning, Subject: l.Name,
		Message: fmt.Sprintf("declared Complexity %d, but the rule patterns contain %d operator applications", l.Complexity, computed),
	}}
}

// collectBoundVars gathers every class variable a pattern binds
// (bare-class vars only: RHS templates cannot reference attribute or
// variadic-kids bindings, which are only reachable through Apply
// closures).
func collectBoundVars(p *egraph.Pattern, into map[string]bool) {
	if p == nil {
		return
	}
	if p.Var != "" {
		into[p.Var] = true
		return
	}
	for _, k := range p.Kids {
		collectBoundVars(k, into)
	}
}

func collectRHSVars(t *egraph.RTerm, f func(string)) {
	if t == nil {
		return
	}
	if t.VarName != "" {
		f(t.VarName)
		return
	}
	for _, k := range t.Kids {
		collectRHSVars(k, f)
	}
}

// patternOpCount counts operator applications in a pattern (variables
// count zero; a variadic-kids node counts one, its width is dynamic).
func patternOpCount(p *egraph.Pattern) int {
	if p == nil || p.Var != "" {
		return 0
	}
	n := 1
	for _, k := range p.Kids {
		n += patternOpCount(k)
	}
	return n
}

func rtermOpCount(t *egraph.RTerm) int {
	if t == nil || t.VarName != "" || t.HasDirect || t.IsLeaf {
		return 0
	}
	n := 1
	for _, k := range t.Kids {
		n += rtermOpCount(k)
	}
	return n
}

// patternEqualsRTerm reports whether an RHS template rebuilds exactly
// the term shape the pattern matches — the self-loop test. Attribute
// variables in the pattern can never equal the template's concrete
// attribute expressions, so any AttrPat.Var makes the answer false.
func patternEqualsRTerm(p *egraph.Pattern, t *egraph.RTerm) bool {
	if p == nil || t == nil {
		return false
	}
	if p.Var != "" {
		return t.VarName == p.Var
	}
	if t.VarName != "" || t.HasDirect {
		return false
	}
	if p.LeafTID != nil {
		return t.IsLeaf && t.LeafTID == *p.LeafTID
	}
	if t.IsLeaf {
		return false
	}
	if p.Op != t.Op || p.Str != t.Str || p.VarKids != "" {
		return false
	}
	if len(p.Kids) != len(t.Kids) || len(p.Attrs) != len(t.Ints) {
		return false
	}
	for i, a := range p.Attrs {
		if a.Var != "" || !a.Lit.Equal(t.Ints[i]) {
			return false
		}
	}
	for i := range p.Kids {
		if !patternEqualsRTerm(p.Kids[i], t.Kids[i]) {
			return false
		}
	}
	return true
}
