package lint

import (
	"entangle/internal/egraph"
)

// Pattern subsumption: A subsumes B when every class B's pattern can
// match, A's pattern also matches. The binding records what B-shape
// each A-variable covers, so the caller can additionally check that
// the two rules' RHS templates coincide under it — the combination
// that makes the later rule fully redundant.

type binding struct {
	classes map[string]*egraph.Pattern // A class var → B subpattern
	attrs   map[string]egraph.AttrPat  // A attr var → B attr pattern
}

func newBinding() *binding {
	return &binding{classes: map[string]*egraph.Pattern{}, attrs: map[string]egraph.AttrPat{}}
}

// subsumes reports whether pattern a is at least as general as b,
// extending bind. Repeated variables in a must cover identical
// B-subpatterns (a non-linear pattern constrains its matches).
func subsumes(a, b *egraph.Pattern, bind *binding) bool {
	if a == nil || b == nil {
		return false
	}
	if a.Var != "" {
		if prev, ok := bind.classes[a.Var]; ok {
			return patternsIdentical(prev, b)
		}
		bind.classes[a.Var] = b
		return true
	}
	if b.Var != "" {
		// b matches any class; structured a does not.
		return false
	}
	if a.Op != b.Op {
		return false
	}
	if a.Str != "" && a.Str != b.Str {
		return false
	}
	if a.LeafTID != nil && (b.LeafTID == nil || *a.LeafTID != *b.LeafTID) {
		return false
	}
	if !attrsSubsume(a.Attrs, b.Attrs, bind) {
		return false
	}
	if a.VarKids != "" {
		// a accepts any child list; fixed kids of b (or b's own
		// variadic binding) are a strict subset of that.
		return true
	}
	if b.VarKids != "" || len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !subsumes(a.Kids[i], b.Kids[i], bind) {
			return false
		}
	}
	return true
}

// attrsSubsume checks attribute patterns: an empty attr list imposes
// no constraint (matchNode skips the length check when len == 0), a
// non-empty one pins the attribute count and each entry.
func attrsSubsume(a, b []egraph.AttrPat, bind *binding) bool {
	if len(a) == 0 {
		return true
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Var != "" {
			if prev, ok := bind.attrs[a[i].Var]; ok {
				if !attrPatsIdentical(prev, b[i]) {
					return false
				}
				continue
			}
			bind.attrs[a[i].Var] = b[i]
			continue
		}
		// Literal in a only covers the same literal in b; an attr
		// variable in b matches values a's literal rejects.
		if b[i].Var != "" || !a[i].Lit.Equal(b[i].Lit) {
			return false
		}
	}
	return true
}

func attrPatsIdentical(a, b egraph.AttrPat) bool {
	if a.Var != "" || b.Var != "" {
		return a.Var == b.Var
	}
	return a.Lit.Equal(b.Lit)
}

// patternsIdentical is structural equality of two patterns from the
// same (B) rule — used to check non-linear variable reuse.
func patternsIdentical(a, b *egraph.Pattern) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Var != "" || b.Var != "" {
		return a.Var == b.Var
	}
	if a.Op != b.Op || a.Str != b.Str || a.VarKids != b.VarKids {
		return false
	}
	if (a.LeafTID == nil) != (b.LeafTID == nil) {
		return false
	}
	if a.LeafTID != nil && *a.LeafTID != *b.LeafTID {
		return false
	}
	if len(a.Kids) != len(b.Kids) || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if !attrPatsIdentical(a.Attrs[i], b.Attrs[i]) {
			return false
		}
	}
	for i := range a.Kids {
		if !patternsIdentical(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}

// rhsCoincides reports whether the general rule's RHS template a,
// instantiated through the subsumption binding, builds the same term
// as the specific rule's RHS template b. When it does, the specific
// rule is fully redundant: same matches, same unions.
func rhsCoincides(a, b *egraph.RTerm, bind *binding) bool {
	if a == nil || b == nil {
		return false
	}
	if a.VarName != "" {
		p, ok := bind.classes[a.VarName]
		if !ok {
			return false
		}
		// a copies whatever class its var matched — the B-subpattern p.
		// b coincides iff it rebuilds exactly that shape.
		return patternEqualsRTerm(p, b)
	}
	if b.VarName != "" || a.HasDirect != b.HasDirect || a.IsLeaf != b.IsLeaf {
		return false
	}
	if a.HasDirect {
		return a.Direct == b.Direct
	}
	if a.IsLeaf {
		return a.LeafTID == b.LeafTID
	}
	if a.Op != b.Op || a.Str != b.Str || len(a.Kids) != len(b.Kids) || len(a.Ints) != len(b.Ints) {
		return false
	}
	for i := range a.Ints {
		if !a.Ints[i].Equal(b.Ints[i]) {
			return false
		}
	}
	for i := range a.Kids {
		if !rhsCoincides(a.Kids[i], b.Kids[i], bind) {
			return false
		}
	}
	return true
}
