package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// Determinism check: the checker promises byte-identical reports
// across runs, and the model checker promises bit-identical traces —
// promises that a single wall-clock read or random draw on a hot path
// silently breaks. This check flags time.Now/Since/Until and any
// rand.* call inside the packages that carry the determinism contract.
// Legitimate uses (duration metadata on reports, seeded test harness
// helpers) are annotated in place:
//
//	//lint:ignore determinism <why this read cannot affect results>
//
// on the line directly above the call.
const CheckDeterminism = "determinism"

// determinismDirs are the hot-path packages under the determinism
// contract, matched by path suffix so relative and absolute dir
// arguments both land.
var determinismDirs = []string{
	"internal/cluster",
	"internal/cluster/sim",
	"internal/core",
	"internal/egraph",
	"internal/fingerprint",
	"internal/fuzz",
	"internal/mc",
	"internal/mc/models",
}

func determinismScoped(dir string) bool {
	d := filepath.ToSlash(filepath.Clean(dir))
	for _, suffix := range determinismDirs {
		if d == suffix || strings.HasSuffix(d, "/"+suffix) {
			return true
		}
	}
	return false
}

// clockFuncs are the time-package functions that read the wall clock.
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// lintDeterminism flags nondeterminism sources in one file. Purely
// syntactic, like the rest of the source lint: a selector call on an
// identifier named time or rand is what this codebase's hazards look
// like (a local shadowing those names would be its own problem).
func lintDeterminism(fset *token.FileSet, f *ast.File, ignores map[string]map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, decl := range f.Decls {
		subject := "package-level"
		var body ast.Node = decl
		if fd, ok := decl.(*ast.FuncDecl); ok {
			if fd.Body == nil {
				continue
			}
			subject = funcSubject(fd)
			body = fd.Body
		}
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			var what string
			switch {
			case pkg.Name == "time" && clockFuncs[sel.Sel.Name]:
				what = "reads the wall clock"
			case pkg.Name == "rand":
				what = "draws unseeded-by-contract randomness"
			default:
				return true
			}
			pos := fset.Position(call.Pos())
			if ignores[fmt.Sprintf("%s %d", pos.Filename, pos.Line)][CheckDeterminism] {
				return true
			}
			out = append(out, Diagnostic{
				Check: CheckDeterminism, Severity: SevError,
				Subject: subject,
				Pos:     fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column),
				Message: fmt.Sprintf("%s.%s %s inside a package under the determinism contract (byte-identical output across runs); derive the value from inputs or annotate the line above with //lint:ignore %s <reason>", pkg.Name, sel.Sel.Name, what, CheckDeterminism),
			})
			return true
		})
	}
	return out
}

func funcSubject(fd *ast.FuncDecl) string {
	subject := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if t := receiverTypeName(fd.Recv.List[0].Type); t != "" {
			subject = t + "." + subject
		}
	}
	return subject
}
