package lint

import (
	"os"
	"testing"

	"entangle/internal/graph"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

func loadTestGraph(t *testing.T, path string) *graph.Graph {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.Read(f)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return g
}

// TestGraphBadCorpus pins the report for the seeded bad graph: a
// duplicate label, an unused collective output, a dead node, and an
// unread input.
func TestGraphBadCorpus(t *testing.T) {
	g := loadTestGraph(t, "testdata/bad-graph.json")
	ds := Graph(g)
	findDiag(t, ds, CheckGraphDuplicateLabel, `node "blk" (mul)`)
	findDiag(t, ds, CheckGraphUnusedTensor, "f")
	findDiag(t, ds, CheckGraphDeadNode, `node "dead" (add)`)
	findDiag(t, ds, CheckGraphUnusedInput, "unused_in")
	// The dead node's own unused output is implied by the dead-node
	// finding, not reported separately.
	noDiag(t, ds, CheckGraphUnusedTensor, "g")
	checkGolden(t, "bad-graph-golden.txt", ds)
}

// TestGraphShapeMismatch corrupts a declared shape after building (the
// codecs always infer shapes, so the corruption a capture bug would
// introduce has to be simulated in memory).
func TestGraphShapeMismatch(t *testing.T) {
	g, sum := smallGraph(t)
	g.Tensors[sum].Shape = shape.Shape{sym.Const(3)}
	ds := Graph(g)
	d := findDiag(t, ds, CheckGraphShapeMismatch, "sum_out")
	if d.Severity != SevError {
		t.Errorf("shape mismatch must be error severity, got %s", d.Severity)
	}
}

func TestGraphClean(t *testing.T) {
	g, _ := smallGraph(t)
	if ds := Graph(g); len(ds) != 0 {
		t.Fatalf("clean graph produced findings: %v", ds)
	}
}

// smallGraph builds a minimal valid graph (one add over two 4×4
// inputs) and returns it with the sum tensor's ID.
func smallGraph(t *testing.T) (*graph.Graph, graph.TensorID) {
	t.Helper()
	b := graph.NewBuilder("small", sym.NewContext())
	sh := shape.Shape{sym.Const(4), sym.Const(4)}
	a := b.Input("a", sh)
	c := b.Input("b", sh)
	sum := b.Op("add", "sum", "sum_out", "", nil, a, c)
	b.Output(sum)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, sum
}
