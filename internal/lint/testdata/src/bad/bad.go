// Package bad is the deliberately hazardous corpus for the Layer-3
// source analyzer: each function demonstrates one finding (or one
// non-finding) the tests assert on. It lives under testdata so the go
// tool never builds it.
package bad

import "sort"

type classID int

type egraphStub struct {
	classes map[classID][]classID
}

func (g *egraphStub) Union(a, b classID) bool { return a != b }

// unionInMapOrder mutates the e-graph in map iteration order — the
// hazard the analyzer exists to catch.
func (g *egraphStub) unionInMapOrder() {
	for id := range g.classes {
		g.Union(id, id+1)
	}
}

// collectUnsorted leaks map order through the returned slice.
func (g *egraphStub) collectUnsorted() []classID {
	var out []classID
	for id := range g.classes {
		out = append(out, id)
	}
	return out
}

// collectSorted is the fixed idiom: collect, then sort. No finding.
func (g *egraphStub) collectSorted() []classID {
	var out []classID
	for id := range g.classes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// suppressed documents a deliberately order-insensitive union.
func (g *egraphStub) suppressed() {
	//lint:ignore source-map-range-mutation all pairs land in one class regardless of order
	for id := range g.classes {
		g.Union(id, 0)
	}
}

// overSlice ranges a slice: never a finding.
func (g *egraphStub) overSlice(ids []classID) {
	for _, id := range ids {
		g.Union(id, 0)
	}
}
