// Package det is the corpus for the determinism check: its directory
// suffix (internal/core) puts it under the determinism contract, and
// each function demonstrates one finding or one deliberate
// non-finding. It lives under testdata so the go tool never builds it.
package det

import (
	"math/rand"
	"time"
)

// wallClock reads the wall clock on a hot path — the basic finding.
func wallClock() time.Time {
	return time.Now()
}

// elapsed reaches the clock through Since, which is Now in disguise.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// draw pulls package-level randomness into checker state.
func draw(n int) int {
	return rand.Intn(n)
}

// annotated carries the suppression pragma with its justification, so
// it must NOT fire.
func annotated() time.Duration {
	//lint:ignore determinism duration is reporting metadata, not checker input
	start := time.Now()
	return time.Duration(int64(start.Nanosecond()))
}

// wrongPragma suppresses a different check on the same line, which
// must not silence the determinism finding.
func wrongPragma() time.Time {
	//lint:ignore source-map-range-mutation not even the right check
	return time.Now()
}

// formatted only touches deterministic time API: no wall-clock read,
// no finding.
func formatted(t time.Time) string {
	return t.Format(time.RFC3339)
}
