// Package lint is ENTANGLE's static-analysis layer: correctness
// tooling for the verifier itself. The paper spends a large share of
// its lemma budget on validation (§5); this package is the static
// counterpart to the runtime soundness fuzzing in
// internal/lemmas/soundness_test.go. It has three layers:
//
//   - Lemmas: lint the rewrite-rule library — unbound RHS template
//     variables, self-looping rules, duplicate names, rules shadowed
//     by an earlier more-general rule, and lemma metadata drift.
//   - Graph: lint a computation graph beyond Graph.Validate — dead
//     nodes, unused tensors, duplicate labels, shape inconsistencies.
//   - Source: a go/ast analysis over the engine's own source that
//     flags nondeterminism hazards (ranging over a map on the way to
//     e-graph mutation without an intervening sort — the bug class a
//     previous change fixed by hand).
//
// Every check has a stable kebab-case ID so findings can be gated in
// CI and suppressed individually in source (//lint:ignore <check>).
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Severity ranks a finding. Error-severity findings fail the verify
// gate; warnings are advisory.
type Severity int

const (
	// SevInfo findings are informational only.
	SevInfo Severity = iota
	// SevWarning findings deserve attention but do not gate.
	SevWarning
	// SevError findings fail `make lint` and scripts/verify.sh.
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its name, the stable form
// consumed by CI tooling.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// Diagnostic is one lint finding.
type Diagnostic struct {
	// Check is the stable check ID, e.g. "rule-unbound-rhs-var".
	Check string `json:"check"`
	// Severity gates: SevError findings fail the verify gate.
	Severity Severity `json:"severity"`
	// Subject names what the finding is about: a rule or lemma name,
	// a graph node label or tensor name.
	Subject string `json:"subject,omitempty"`
	// Pos is a file:line:col position for source-layer findings.
	Pos string `json:"pos,omitempty"`
	// Message explains the finding.
	Message string `json:"message"`
}

// String renders the finding in the single-line compiler-style form:
//
//	error: internal/egraph/x.go:12:2 [source-map-range-mutation] ...
//	warning: my-lemma [lemma-complexity-drift] ...
func (d Diagnostic) String() string {
	head := d.Subject
	if d.Pos != "" {
		head = d.Pos
		if d.Subject != "" {
			head += " (" + d.Subject + ")"
		}
	}
	return fmt.Sprintf("%s: %s [%s] %s", d.Severity, head, d.Check, d.Message)
}

// Report collects findings across lint layers.
type Report struct {
	Diags []Diagnostic `json:"diagnostics"`
}

// Add appends findings.
func (r *Report) Add(ds ...Diagnostic) { r.Diags = append(r.Diags, ds...) }

// Sort orders findings deterministically: position (numerically by
// line and column), then subject, then check ID, then message.
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Pos != b.Pos {
			return posLess(a.Pos, b.Pos)
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Count returns the number of findings at severity s or above.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity >= s {
			n++
		}
	}
	return n
}

// Errors returns the number of error-severity findings — the quantity
// the verify gate checks against zero.
func (r *Report) Errors() int { return r.Count(SevError) }

// WriteText renders one finding per line plus a summary tail.
func (r *Report) WriteText(w io.Writer) error {
	for _, d := range r.Diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d findings (%d errors, %d warnings)\n",
		len(r.Diags), r.Errors(), r.Count(SevWarning)-r.Errors())
	return err
}

// WriteJSON renders the report as a single JSON object (the -json
// flag of cmd/entangle-lint).
func (r *Report) WriteJSON(w io.Writer) error {
	if r.Diags == nil {
		r.Diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
