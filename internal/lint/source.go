package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Layer 3: engine-source lint. Go randomizes map iteration order, so
// any `range` over a map that feeds e-graph mutation — unions, node
// insertion, match collection — makes checker output depend on the
// run. The engine promises byte-identical reports across runs and
// worker counts; this analyzer flags the code shapes that break that
// promise. It is a purely syntactic stdlib go/ast pass with
// package-local type heuristics (no go/types, no module resolution):
// it knows an expression is a map when the package's own declarations
// say so, which covers every hazard this codebase can express.
const (
	// CheckSourceMapRangeMutation fires when the body of a range over
	// a map reaches an e-graph mutator (Union, AddNode, AddTerm,
	// Instantiate, Saturate, or the lemma helpers addAll/mapKids):
	// iteration order then decides union order and freshly minted
	// class IDs.
	CheckSourceMapRangeMutation = "source-map-range-mutation"
	// CheckSourceMapRangeAppend fires when a range over a map appends
	// to a slice declared outside the loop and the function never
	// sorts that slice afterwards: the collection leaks map order to
	// its consumers.
	CheckSourceMapRangeAppend = "source-map-range-append"
)

// sinkMethods are the mutators whose call order is observable in
// e-graph state.
var sinkMethods = map[string]bool{
	"Union":       true,
	"AddNode":     true,
	"AddTerm":     true,
	"Instantiate": true,
	"Saturate":    true,
}

// sinkFuncs are package-local helpers that wrap the mutators.
var sinkFuncs = map[string]bool{
	"addAll":  true,
	"mapKids": true,
}

// ignoreDirective is the comment prefix that suppresses a finding on
// the next line: //lint:ignore <check-id> <reason>.
const ignoreDirective = "lint:ignore "

// Source lints the Go source files directly inside each directory
// (non-recursive, skipping _test.go files). Directories are analyzed
// independently, one package index each.
func Source(dirs ...string) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, dir := range dirs {
		ds, err := sourceDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	return out, nil
}

func sourceDir(dir string) ([]Diagnostic, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	idx := indexPackage(files)
	deterministic := determinismScoped(dir)
	var out []Diagnostic
	for _, f := range files {
		ignores := collectIgnores(fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, lintFunc(fset, idx, fd, ignores)...)
		}
		if deterministic {
			out = append(out, lintDeterminism(fset, f, ignores)...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return posLess(out[i].Pos, out[j].Pos) })
	return out, nil
}

// pkgIndex is the package-local type knowledge the heuristics use.
type pkgIndex struct {
	mapNamedTypes map[string]bool // type X map[...]Y
	mapFields     map[string]bool // struct fields with map type (by field name)
	mapFuncs      map[string]bool // funcs/methods whose single result is a map
	mapGlobals    map[string]bool // package-level vars with map type
}

func indexPackage(files []*ast.File) *pkgIndex {
	idx := &pkgIndex{
		mapNamedTypes: map[string]bool{},
		mapFields:     map[string]bool{},
		mapFuncs:      map[string]bool{},
		mapGlobals:    map[string]bool{},
	}
	// Named map types first, so field/var/result checks can see them.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if ts, ok := n.(*ast.TypeSpec); ok {
				if _, isMap := ts.Type.(*ast.MapType); isMap {
					idx.mapNamedTypes[ts.Name.Name] = true
				}
			}
			return true
		})
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.StructType:
				for _, field := range d.Fields.List {
					if !idx.isMapTypeExpr(field.Type) {
						continue
					}
					for _, name := range field.Names {
						idx.mapFields[name.Name] = true
					}
				}
			case *ast.FuncDecl:
				if d.Type.Results != nil && len(d.Type.Results.List) == 1 &&
					len(d.Type.Results.List[0].Names) <= 1 &&
					idx.isMapTypeExpr(d.Type.Results.List[0].Type) {
					idx.mapFuncs[d.Name.Name] = true
				}
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					return true
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					isMap := vs.Type != nil && idx.isMapTypeExpr(vs.Type)
					for i, name := range vs.Names {
						if isMap || (i < len(vs.Values) && idx.exprYieldsMap(vs.Values[i], nil)) {
							idx.mapGlobals[name.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	return idx
}

func (idx *pkgIndex) isMapTypeExpr(t ast.Expr) bool {
	switch tt := t.(type) {
	case *ast.MapType:
		return true
	case *ast.Ident:
		return idx.mapNamedTypes[tt.Name]
	}
	return false
}

// exprYieldsMap reports whether an expression's value is (heuristically)
// a map: a map literal, make(map...), a call to a map-returning
// function of this package, or a name already known to hold a map.
func (idx *pkgIndex) exprYieldsMap(e ast.Expr, locals map[string]bool) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return idx.isMapTypeExpr(v.Type)
	case *ast.CallExpr:
		switch fn := v.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "make" && len(v.Args) > 0 {
				return idx.isMapTypeExpr(v.Args[0])
			}
			return idx.mapFuncs[fn.Name]
		case *ast.SelectorExpr:
			return idx.mapFuncs[fn.Sel.Name]
		}
	case *ast.Ident:
		return locals[v.Name] || idx.mapGlobals[v.Name]
	case *ast.SelectorExpr:
		return idx.mapFields[v.Sel.Name]
	}
	return false
}

// collectIgnores maps "file line" keys to the set of check IDs a
// //lint:ignore directive suppresses on that line.
func collectIgnores(fset *token.FileSet, f *ast.File) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignoreDirective) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
			if len(fields) == 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			key := fmt.Sprintf("%s %d", pos.Filename, pos.Line+1)
			if out[key] == nil {
				out[key] = map[string]bool{}
			}
			out[key][fields[0]] = true
		}
	}
	return out
}

func lintFunc(fset *token.FileSet, idx *pkgIndex, fd *ast.FuncDecl, ignores map[string]map[string]bool) []Diagnostic {
	locals := localMapNames(idx, fd)
	var out []Diagnostic
	subject := funcSubject(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !idx.exprYieldsMap(rng.X, locals) {
			return true
		}
		pos := fset.Position(rng.Pos())
		suppressed := ignores[fmt.Sprintf("%s %d", pos.Filename, pos.Line)]
		posStr := fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)

		if sink := firstSinkCall(rng.Body); sink != "" && !suppressed[CheckSourceMapRangeMutation] {
			out = append(out, Diagnostic{
				Check: CheckSourceMapRangeMutation, Severity: SevError,
				Subject: subject, Pos: posStr,
				Message: fmt.Sprintf("range over a map reaches %s: map iteration order decides union order and minted class IDs, so checker output varies across runs; iterate sorted keys instead", sink),
			})
		}
		if suppressed[CheckSourceMapRangeAppend] {
			return true
		}
		for _, target := range unsortedAppendTargets(fd.Body, rng) {
			out = append(out, Diagnostic{
				Check: CheckSourceMapRangeAppend, Severity: SevWarning,
				Subject: subject, Pos: posStr,
				Message: fmt.Sprintf("range over a map appends to %q, which is never sorted afterwards: the slice leaks map iteration order to its consumers", target),
			})
		}
		return true
	})
	return out
}

func receiverTypeName(t ast.Expr) string {
	switch tt := t.(type) {
	case *ast.StarExpr:
		return receiverTypeName(tt.X)
	case *ast.Ident:
		return tt.Name
	}
	return ""
}

// localMapNames gathers identifiers with map type within a function:
// parameters, named results, receivers, var declarations, and
// assignments from map-yielding expressions. A single in-order pass
// matches how shadowing reads in practice for this codebase.
func localMapNames(idx *pkgIndex, fd *ast.FuncDecl) map[string]bool {
	locals := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if !idx.isMapTypeExpr(field.Type) {
				continue
			}
			for _, name := range field.Names {
				locals[name.Name] = true
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i := range s.Lhs {
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if idx.exprYieldsMap(s.Rhs[i], locals) {
					locals[id.Name] = true
				}
			}
		case *ast.GenDecl:
			if s.Tok != token.VAR {
				return true
			}
			for _, spec := range s.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				isMap := vs.Type != nil && idx.isMapTypeExpr(vs.Type)
				for i, name := range vs.Names {
					if isMap || (i < len(vs.Values) && idx.exprYieldsMap(vs.Values[i], locals)) {
						locals[name.Name] = true
					}
				}
			}
		}
		return true
	})
	return locals
}

// firstSinkCall returns the rendered name of the first e-graph
// mutator called (syntactically) inside a statement tree, or "".
func firstSinkCall(body ast.Node) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			if sinkMethods[fn.Sel.Name] {
				found = fn.Sel.Name
			}
		case *ast.Ident:
			if sinkFuncs[fn.Name] {
				found = fn.Name
			}
		}
		return true
	})
	return found
}

// unsortedAppendTargets returns names of slices that the range body
// appends to, that were declared outside the body, and that the
// enclosing function never sorts after the range statement. Sorting
// is recognized as any call after the range whose callee mentions
// sorting (the sort package, or a helper named sort*/;*Sort*) with
// the slice among its arguments.
func unsortedAppendTargets(funcBody *ast.BlockStmt, rng *ast.RangeStmt) []string {
	declaredInBody := map[string]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for _, l := range s.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						declaredInBody[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				declaredInBody[name.Name] = true
			}
		}
		return true
	})

	var targets []string
	seen := map[string]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Rhs {
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || declaredInBody[id.Name] || seen[id.Name] {
				continue
			}
			seen[id.Name] = true
			if !sortedAfter(funcBody, rng, id.Name) {
				targets = append(targets, id.Name)
			}
		}
		return true
	})
	sort.Strings(targets)
	return targets
}

// sortedAfter reports whether, after the range statement, the
// function calls something sort-like with name among the arguments.
func sortedAfter(funcBody *ast.BlockStmt, rng *ast.RangeStmt, name string) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := ""
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			if x, ok := fn.X.(*ast.Ident); ok && x.Name == "sort" {
				callee = "sort"
			} else {
				callee = fn.Sel.Name
			}
		case *ast.Ident:
			callee = fn.Name
		}
		if callee != "sort" && !strings.Contains(strings.ToLower(callee), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && id.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// posLess orders "file:line:col" strings numerically.
func posLess(a, b string) bool {
	af, al, ac := splitPos(a)
	bf, bl, bc := splitPos(b)
	if af != bf {
		return af < bf
	}
	if al != bl {
		return al < bl
	}
	return ac < bc
}

func splitPos(p string) (file string, line, col int) {
	parts := strings.Split(p, ":")
	if len(parts) < 3 {
		return p, 0, 0
	}
	file = strings.Join(parts[:len(parts)-2], ":")
	fmt.Sscanf(parts[len(parts)-2], "%d", &line)
	fmt.Sscanf(parts[len(parts)-1], "%d", &col)
	return file, line, col
}
