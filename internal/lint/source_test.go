package lint

import (
	"testing"
)

// TestSourceBadCorpus runs the Layer-3 analyzer over the hazardous
// corpus in testdata/src/bad and pins the exact findings. The corpus
// also contains the three shapes that must NOT fire: a sorted
// collect, a //lint:ignore'd range, and a range over a slice.
func TestSourceBadCorpus(t *testing.T) {
	ds, err := Source("testdata/src/bad")
	if err != nil {
		t.Fatal(err)
	}
	findDiag(t, ds, CheckSourceMapRangeMutation, "egraphStub.unionInMapOrder")
	findDiag(t, ds, CheckSourceMapRangeAppend, "egraphStub.collectUnsorted")
	for _, d := range ds {
		switch d.Subject {
		case "egraphStub.collectSorted", "egraphStub.suppressed", "egraphStub.overSlice":
			t.Errorf("false positive on %s: %s", d.Subject, d)
		}
	}
	checkGolden(t, "bad-source-golden.txt", ds)
}

func TestSourceMissingDir(t *testing.T) {
	if _, err := Source("testdata/no-such-dir"); err == nil {
		t.Fatal("Source on a missing directory must return an error")
	}
}
