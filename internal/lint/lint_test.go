package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden renders the diagnostics as a text report and compares
// against testdata/<name>; -update rewrites the golden.
func checkGolden(t *testing.T, name string, diags []Diagnostic) {
	t.Helper()
	var buf bytes.Buffer
	r := Report{Diags: diags}
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// findDiag returns the first finding with the given check ID and
// subject, failing the test when absent.
func findDiag(t *testing.T, ds []Diagnostic, check, subject string) Diagnostic {
	t.Helper()
	for _, d := range ds {
		if d.Check == check && d.Subject == subject {
			return d
		}
	}
	t.Fatalf("no %s finding for %q in %v", check, subject, ds)
	return Diagnostic{}
}

// noDiag fails the test when any finding carries the given check ID
// and subject.
func noDiag(t *testing.T, ds []Diagnostic, check, subject string) {
	t.Helper()
	for _, d := range ds {
		if d.Check == check && d.Subject == subject {
			t.Fatalf("unexpected %s finding for %q: %s", check, subject, d)
		}
	}
}

func TestSeverityString(t *testing.T) {
	cases := map[Severity]string{SevInfo: "info", SevWarning: "warning", SevError: "error", Severity(9): "severity(9)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Severity(%d).String() = %q, want %q", int(s), got, want)
		}
	}
	data, err := json.Marshal(SevError)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"error"` {
		t.Errorf("SevError marshals to %s, want \"error\"", data)
	}
}

func TestReportSortNumericPositions(t *testing.T) {
	r := Report{Diags: []Diagnostic{
		{Pos: "f.go:10:2", Check: "b"},
		{Pos: "f.go:9:11", Check: "a"},
		{Pos: "f.go:9:2", Check: "c"},
	}}
	r.Sort()
	got := []string{r.Diags[0].Check, r.Diags[1].Check, r.Diags[2].Check}
	want := []string{"c", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted order %v, want %v (line 9 must sort before line 10)", got, want)
		}
	}
}

func TestReportCountsAndJSON(t *testing.T) {
	r := Report{Diags: []Diagnostic{
		{Check: "x", Severity: SevError, Subject: "s", Message: "m"},
		{Check: "y", Severity: SevWarning, Subject: "s", Message: "m"},
	}}
	if r.Errors() != 1 || r.Count(SevWarning) != 2 {
		t.Fatalf("Errors()=%d Count(warning)=%d, want 1 and 2", r.Errors(), r.Count(SevWarning))
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Diagnostics []struct {
			Check    string `json:"check"`
			Severity string `json:"severity"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output does not decode: %v", err)
	}
	if len(decoded.Diagnostics) != 2 || decoded.Diagnostics[0].Severity != "error" {
		t.Fatalf("unexpected JSON decode: %+v", decoded)
	}

	var empty Report
	buf.Reset()
	if err := empty.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Fatalf("empty report must encode an empty array, got %s", buf.String())
	}
}
