package lint

import (
	"fmt"

	"entangle/internal/graph"
	"entangle/internal/shape"
)

// Layer 2: graph IR lint. Graph.Validate enforces the invariants a
// graph must satisfy to be checked at all (ID consistency, producer
// links, acyclicity, inferable shapes) and stops at the first
// violation. These checks go further — they collect every finding in
// one pass and add the "legal but suspicious" class a captured graph
// often exhibits: computation that cannot reach any output, tensors
// nobody reads, and duplicate bug-localization labels.
const (
	// CheckGraphShapeMismatch fires when a node's declared output
	// shapes disagree with shape inference over its input shapes (or
	// inference rejects the node outright).
	CheckGraphShapeMismatch = "graph-shape-mismatch"
	// CheckGraphDeadNode fires when no path leads from a node to any
	// graph output: the node's computation is unobservable and the
	// checker will still pay to map it.
	CheckGraphDeadNode = "graph-dead-node"
	// CheckGraphUnusedTensor fires when a live node produces an output
	// tensor that no node consumes and that is not a graph output.
	CheckGraphUnusedTensor = "graph-unused-tensor"
	// CheckGraphUnusedInput fires when a graph input is never read.
	CheckGraphUnusedInput = "graph-unused-input"
	// CheckGraphDuplicateLabel fires when two nodes carry the same
	// non-empty label, making RefinementError localization ambiguous.
	CheckGraphDuplicateLabel = "graph-duplicate-label"
)

// Graph lints one computation graph. The graph must be structurally
// sound enough to index (tensor/node IDs in range); graphs from the
// JSON or HLO codecs always are.
func Graph(g *graph.Graph) []Diagnostic {
	var out []Diagnostic

	// Consumer counts in one pass (Consumers() per tensor is O(V·E)).
	consumed := make([]int, len(g.Tensors))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if int(in) >= 0 && int(in) < len(consumed) {
				consumed[in]++
			}
		}
	}
	isOutput := map[graph.TensorID]bool{}
	for _, o := range g.Outputs {
		isOutput[o] = true
	}

	// Backward reachability from the outputs marks live nodes.
	live := make([]bool, len(g.Nodes))
	stack := append([]graph.TensorID(nil), g.Outputs...)
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if int(t) < 0 || int(t) >= len(g.Tensors) {
			continue
		}
		prod := g.Tensors[t].Producer
		if prod == graph.NoProducer || live[prod] {
			continue
		}
		live[prod] = true
		stack = append(stack, g.Nodes[prod].Inputs...)
	}

	labels := map[string]string{} // label → first node's description
	for _, n := range g.Nodes {
		out = append(out, checkNodeShapes(g, n)...)
		if !live[n.ID] {
			out = append(out, Diagnostic{
				Check: CheckGraphDeadNode, Severity: SevWarning, Subject: nodeSubject(n),
				Message: "no path from this node to any graph output; its computation is dead weight for the checker",
			})
		}
		if n.Label != "" {
			if first, dup := labels[n.Label]; dup {
				out = append(out, Diagnostic{
					Check: CheckGraphDuplicateLabel, Severity: SevWarning, Subject: nodeSubject(n),
					Message: fmt.Sprintf("label also used by %s; bug localization cannot tell the two apart", first),
				})
			} else {
				labels[n.Label] = nodeSubject(n)
			}
		}
		if !live[n.ID] {
			continue // dead node: its unused outputs are implied
		}
		for _, o := range n.Outputs {
			if int(o) < 0 || int(o) >= len(consumed) {
				continue
			}
			if consumed[o] == 0 && !isOutput[o] {
				out = append(out, Diagnostic{
					Check: CheckGraphUnusedTensor, Severity: SevWarning, Subject: g.Tensors[o].Name,
					Message: fmt.Sprintf("produced by %s but never consumed and not a graph output", nodeSubject(n)),
				})
			}
		}
	}
	for _, in := range g.Inputs {
		if int(in) < 0 || int(in) >= len(consumed) {
			continue
		}
		if consumed[in] == 0 && !isOutput[in] {
			out = append(out, Diagnostic{
				Check: CheckGraphUnusedInput, Severity: SevWarning, Subject: g.Tensors[in].Name,
				Message: "graph input is never read by any node",
			})
		}
	}
	return out
}

func checkNodeShapes(g *graph.Graph, n *graph.Node) []Diagnostic {
	inShapes := make([]shape.Shape, len(n.Inputs))
	for i, in := range n.Inputs {
		if int(in) < 0 || int(in) >= len(g.Tensors) {
			return []Diagnostic{{
				Check: CheckGraphShapeMismatch, Severity: SevError, Subject: nodeSubject(n),
				Message: fmt.Sprintf("input %d references missing tensor %d", i, in),
			}}
		}
		inShapes[i] = g.Tensors[in].Shape
	}
	outs, err := shape.Infer(n.Op, n.Str, n.Ints, inShapes, g.Ctx)
	if err != nil {
		return []Diagnostic{{
			Check: CheckGraphShapeMismatch, Severity: SevError, Subject: nodeSubject(n),
			Message: fmt.Sprintf("shape inference rejects the node: %v", err),
		}}
	}
	if len(outs) != len(n.Outputs) {
		return []Diagnostic{{
			Check: CheckGraphShapeMismatch, Severity: SevError, Subject: nodeSubject(n),
			Message: fmt.Sprintf("%d outputs inferred, %d declared", len(outs), len(n.Outputs)),
		}}
	}
	var out []Diagnostic
	for i, o := range n.Outputs {
		if int(o) < 0 || int(o) >= len(g.Tensors) {
			out = append(out, Diagnostic{
				Check: CheckGraphShapeMismatch, Severity: SevError, Subject: nodeSubject(n),
				Message: fmt.Sprintf("output %d references missing tensor %d", i, o),
			})
			continue
		}
		if !g.Tensors[o].Shape.Equal(outs[i], g.Ctx) {
			out = append(out, Diagnostic{
				Check: CheckGraphShapeMismatch, Severity: SevError, Subject: g.Tensors[o].Name,
				Message: fmt.Sprintf("declared shape %s, inferred %s from %s", g.Tensors[o].Shape, outs[i], nodeSubject(n)),
			})
		}
	}
	return out
}

func nodeSubject(n *graph.Node) string {
	if n.Label != "" {
		return fmt.Sprintf("node %q (%s)", n.Label, n.Op)
	}
	return fmt.Sprintf("node #%d (%s)", n.ID, n.Op)
}
