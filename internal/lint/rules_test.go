package lint

import (
	"testing"

	"entangle/internal/egraph"
	"entangle/internal/expr"
	"entangle/internal/lemmas"
)

// The Layer-1 corpus is constructed in code (lemmas are Go values, not
// data files): one deliberately broken lemma collection per check,
// each proving a true positive, plus negatives guarding against the
// false-positive modes the shadow and self-loop checks are designed
// around.

func one(name string, complexity int, rules ...*egraph.Rule) *lemmas.Lemma {
	return &lemmas.Lemma{Name: name, Complexity: complexity, Rules: rules}
}

// idElim is identity(?x) → ?x with a caller-chosen rule name.
func idElim(name string) *egraph.Rule {
	return egraph.Simple(name,
		egraph.POp(expr.OpIdentity, nil, egraph.PVar("x")),
		egraph.RVar("x"))
}

func TestLemmaDuplicateName(t *testing.T) {
	ds := Lemmas([]*lemmas.Lemma{
		one("bad/dup-lemma", 1, idElim("bad/r1")),
		one("bad/dup-lemma", 1, idElim("bad/r2")),
	})
	findDiag(t, ds, CheckLemmaDuplicateName, "bad/dup-lemma")
}

func TestRuleDuplicateName(t *testing.T) {
	ds := Lemmas([]*lemmas.Lemma{
		one("bad/l1", 1, idElim("bad/dup-rule")),
		one("bad/l2", 1, idElim("bad/dup-rule")),
	})
	findDiag(t, ds, CheckRuleDuplicateName, "bad/dup-rule")
	noDiag(t, ds, CheckLemmaDuplicateName, "bad/l1")
}

func TestRuleUnboundRHSVar(t *testing.T) {
	unbound := egraph.Simple("bad/unbound",
		egraph.POp(expr.OpIdentity, nil, egraph.PVar("x")),
		egraph.ROp(expr.OpAdd, nil, "", egraph.RVar("x"), egraph.RVar("y")))
	ds := Lemmas([]*lemmas.Lemma{one("bad/unbound-lemma", 2, unbound)})
	d := findDiag(t, ds, CheckRuleUnboundRHSVar, "bad/unbound")
	if d.Severity != SevError {
		t.Errorf("unbound RHS var must be error severity, got %s", d.Severity)
	}
}

func TestRuleSelfLoop(t *testing.T) {
	loop := egraph.Simple("bad/self-loop",
		egraph.POp(expr.OpIdentity, nil, egraph.PVar("x")),
		egraph.ROp(expr.OpIdentity, nil, "", egraph.RVar("x")))
	ds := Lemmas([]*lemmas.Lemma{one("bad/self-loop-lemma", 1, loop)})
	findDiag(t, ds, CheckRuleSelfLoop, "bad/self-loop")

	// identity(?x) → ?x is a collapse, not a self-loop.
	ds = Lemmas([]*lemmas.Lemma{one("ok/collapse", 1, idElim("ok/collapse"))})
	noDiag(t, ds, CheckRuleSelfLoop, "ok/collapse")
}

func TestRuleShadowed(t *testing.T) {
	// identity(?x) → ?x already performs every union the narrower
	// identity(identity(?y)) → identity(?y) could add.
	general := idElim("ok/general")
	specific := egraph.Simple("bad/shadowed",
		egraph.POp(expr.OpIdentity, nil,
			egraph.POp(expr.OpIdentity, nil, egraph.PVar("y"))),
		egraph.ROp(expr.OpIdentity, nil, "", egraph.RVar("y")))
	ds := Lemmas([]*lemmas.Lemma{one("bad/shadow-lemma", 1, general, specific)})
	findDiag(t, ds, CheckRuleShadowed, "bad/shadowed")

	// Same LHS subsumption but a different RHS: the narrower rule
	// unions with a different class, so it is NOT shadowed.
	different := egraph.Simple("ok/not-shadowed",
		egraph.POp(expr.OpIdentity, nil,
			egraph.POp(expr.OpIdentity, nil, egraph.PVar("y"))),
		egraph.RVar("y"))
	ds = Lemmas([]*lemmas.Lemma{one("ok/shadow-lemma", 1, general, different)})
	noDiag(t, ds, CheckRuleShadowed, "ok/not-shadowed")
}

func TestLemmaComplexityDrift(t *testing.T) {
	ds := Lemmas([]*lemmas.Lemma{one("bad/drift", 5, idElim("bad/drift-rule"))})
	findDiag(t, ds, CheckLemmaComplexityDrift, "bad/drift")

	// Correct metadata: identity-elim has exactly one operator.
	ds = Lemmas([]*lemmas.Lemma{one("ok/exact", 1, idElim("ok/exact-rule"))})
	noDiag(t, ds, CheckLemmaComplexityDrift, "ok/exact")

	// A dynamic rule (nil RHS) hides the operator count; the check
	// must stay silent rather than guess.
	dynamic := &egraph.Rule{
		Name: "ok/dynamic",
		LHS:  egraph.POp(expr.OpIdentity, nil, egraph.PVar("x")),
		Apply: func(g *egraph.EGraph, m egraph.Match) []egraph.UnionPair {
			return nil
		},
	}
	ds = Lemmas([]*lemmas.Lemma{one("ok/dynamic-lemma", 99, dynamic)})
	noDiag(t, ds, CheckLemmaComplexityDrift, "ok/dynamic-lemma")
}

// TestLemmasGolden pins the full report for a collection exhibiting
// every Layer-1 finding at once, in the order Lemmas emits them.
func TestLemmasGolden(t *testing.T) {
	bad := []*lemmas.Lemma{
		one("bad/dup", 1, idElim("ok/general")),
		one("bad/dup", 2,
			egraph.Simple("bad/unbound",
				egraph.POp(expr.OpIdentity, nil, egraph.PVar("x")),
				egraph.ROp(expr.OpAdd, nil, "", egraph.RVar("x"), egraph.RVar("y"))),
			egraph.Simple("bad/self-loop",
				egraph.POp(expr.OpIdentity, nil, egraph.PVar("x")),
				egraph.ROp(expr.OpIdentity, nil, "", egraph.RVar("x")))),
		one("bad/drift", 5,
			egraph.Simple("bad/shadowed",
				egraph.POp(expr.OpIdentity, nil,
					egraph.POp(expr.OpIdentity, nil, egraph.PVar("y"))),
				egraph.ROp(expr.OpIdentity, nil, "", egraph.RVar("y")))),
	}
	checkGolden(t, "rules_golden.txt", Lemmas(bad))
}

// TestDefaultRegistryClean is the acceptance gate: the shipped lemma
// library must produce zero findings of any severity.
func TestDefaultRegistryClean(t *testing.T) {
	ds := Lemmas(lemmas.Default().All())
	for _, d := range ds {
		t.Errorf("default registry finding: %s", d)
	}
}
