package mc

import (
	"fmt"
	"strings"
	"testing"
)

// --- toy models -----------------------------------------------------------

// counterModel is the classic lost-update race: two processes each do
// a non-atomic read-then-increment-then-write of one shared cell. The
// invariant "both done => mem == 2" is violated, and the shortest
// counterexample interleaves the two reads before either write.
type counterState struct {
	mem int
	pc  [2]int // 0 = to-read, 1 = to-write, 2 = done
	reg [2]int
}

func (s counterState) Key() string {
	return fmt.Sprintf("%d|%d,%d|%d,%d", s.mem, s.pc[0], s.pc[1], s.reg[0], s.reg[1])
}
func (s counterState) String() string { return "mem=" + s.Key() }

type counterModel struct{}

func (counterModel) Name() string  { return "counter" }
func (counterModel) Init() []State { return []State{counterState{}} }
func (counterModel) Actions(st State) []Action {
	s := st.(counterState)
	var acts []Action
	for i := 0; i < 2; i++ {
		i := i
		switch s.pc[i] {
		case 0:
			acts = append(acts, Action{Name: fmt.Sprintf("p%d/read", i), Next: func() State {
				n := s
				n.reg[i] = n.mem
				n.pc[i] = 1
				return n
			}})
		case 1:
			acts = append(acts, Action{Name: fmt.Sprintf("p%d/write", i), Next: func() State {
				n := s
				n.mem = n.reg[i] + 1
				n.pc[i] = 2
				return n
			}})
		}
	}
	return acts
}
func (counterModel) Invariants() []Invariant {
	return []Invariant{{Name: "no-lost-update", Check: func(st State) error {
		s := st.(counterState)
		if s.pc[0] == 2 && s.pc[1] == 2 && s.mem != 2 {
			return fmt.Errorf("both increments done but mem = %d", s.mem)
		}
		return nil
	}}}
}
func (counterModel) Terminal(st State) bool {
	s := st.(counterState)
	return s.pc[0] == 2 && s.pc[1] == 2
}

// lockModel is the textbook lock-order deadlock: p0 takes A then B,
// p1 takes B then A. The shortest deadlock is two steps deep.
type lockState struct {
	pc    [2]int // 0 = none, 1 = holds first lock, 2 = done
	owner [2]int // lock A, B: -1 free, else holder
}

func (s lockState) Key() string {
	return fmt.Sprintf("%d,%d|%d,%d", s.pc[0], s.pc[1], s.owner[0], s.owner[1])
}
func (s lockState) String() string { return "locks=" + s.Key() }

type lockModel struct{}

func (lockModel) Name() string { return "locks" }
func (lockModel) Init() []State {
	return []State{lockState{owner: [2]int{-1, -1}}}
}
func (lockModel) Actions(st State) []Action {
	s := st.(lockState)
	var acts []Action
	// Process i's lock order: p0 wants A(0) then B(1); p1 wants B(1)
	// then A(0). Finishing releases both.
	order := [2][2]int{{0, 1}, {1, 0}}
	for i := 0; i < 2; i++ {
		i := i
		if s.pc[i] < 2 {
			want := order[i][s.pc[i]]
			if s.owner[want] == -1 {
				acts = append(acts, Action{Name: fmt.Sprintf("p%d/lock%d", i, want), Next: func() State {
					n := s
					n.owner[want] = i
					if n.pc[i]++; n.pc[i] == 2 {
						n.owner[0], n.owner[1] = -1, -1
					}
					return n
				}})
			}
		}
	}
	return acts
}
func (lockModel) Invariants() []Invariant { return nil }
func (lockModel) Terminal(st State) bool {
	s := st.(lockState)
	return s.pc[0] == 2 && s.pc[1] == 2
}

// --- explorer tests -------------------------------------------------------

func TestExploreFindsShortestLostUpdate(t *testing.T) {
	res, err := Explore(counterModel{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("lost-update race not found")
	}
	if res.Violation.Invariant != "no-lost-update" {
		t.Fatalf("wrong invariant: %q", res.Violation.Invariant)
	}
	// Shortest counterexample: read, read, write, write = 4 actions,
	// 5 trace entries including the initial state.
	if got := len(res.Violation.Trace); got != 5 {
		t.Fatalf("counterexample not minimal: %d trace steps\n%s", got, res.Violation.Trace.Render())
	}
	// The trace must replay: both reads precede both writes.
	script := res.Violation.Trace.Render()
	if strings.Index(script, "write") < strings.Index(script, "read") {
		t.Fatalf("trace out of order:\n%s", script)
	}
}

func TestExploreFindsShortestDeadlock(t *testing.T) {
	res, err := Explore(lockModel{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("lock-order deadlock not found")
	}
	if res.Violation.Invariant != DeadlockInvariant {
		t.Fatalf("wrong invariant: %q", res.Violation.Invariant)
	}
	if got := len(res.Violation.Trace); got != 3 {
		t.Fatalf("deadlock trace not minimal: %d steps\n%s", got, res.Violation.Trace.Render())
	}
}

func TestExploreDeterministic(t *testing.T) {
	a, err := Explore(counterModel{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(counterModel{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.States != b.States || a.Transitions != b.Transitions || a.Depth != b.Depth {
		t.Fatalf("exploration not deterministic: %+v vs %+v", a, b)
	}
	if a.Violation.Trace.Render() != b.Violation.Trace.Render() {
		t.Fatal("counterexample traces differ across runs")
	}
}

// fixedModel wraps counterModel with the racy write removed so the
// state space is violation-free: increments are atomic.
type atomicCounterState struct{ mem, done int }

func (s atomicCounterState) Key() string    { return fmt.Sprintf("%d/%d", s.mem, s.done) }
func (s atomicCounterState) String() string { return s.Key() }

type atomicCounterModel struct{ n int }

func (atomicCounterModel) Name() string  { return "atomic-counter" }
func (atomicCounterModel) Init() []State { return []State{atomicCounterState{}} }
func (m atomicCounterModel) Actions(st State) []Action {
	s := st.(atomicCounterState)
	if s.done == m.n {
		return nil
	}
	return []Action{{Name: "inc", Next: func() State {
		return atomicCounterState{mem: s.mem + 1, done: s.done + 1}
	}}}
}
func (m atomicCounterModel) Invariants() []Invariant {
	return []Invariant{{Name: "exact-count", Check: func(st State) error {
		s := st.(atomicCounterState)
		if s.mem != s.done {
			return fmt.Errorf("mem %d != increments %d", s.mem, s.done)
		}
		return nil
	}}}
}
func (m atomicCounterModel) Terminal(st State) bool { return st.(atomicCounterState).done == m.n }

func TestExploreCleanModelCountsStates(t *testing.T) {
	res, err := Explore(atomicCounterModel{n: 10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation:\n%s", res.Violation)
	}
	if res.States != 11 || res.Depth != 10 || res.Truncated {
		t.Fatalf("wrong exploration summary: %+v", res)
	}
}

func TestExploreTruncation(t *testing.T) {
	res, err := Explore(atomicCounterModel{n: 1000}, Options{MaxStates: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("MaxStates did not mark the result truncated")
	}
	if res.States > 10 {
		t.Fatalf("MaxStates exceeded: %d", res.States)
	}
	res, err = Explore(atomicCounterModel{n: 1000}, Options{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Depth > 5 {
		t.Fatalf("MaxDepth not honoured: %+v", res)
	}
}

// dupModel emits two actions with the same name, which the explorer
// must reject: action names are how traces replay.
type dupModel struct{ atomicCounterModel }

func (d dupModel) Actions(st State) []Action {
	a := Action{Name: "same", Next: func() State { return atomicCounterState{mem: 1, done: 1} }}
	return []Action{a, a}
}

func TestExploreRejectsDuplicateActionNames(t *testing.T) {
	if _, err := Explore(dupModel{atomicCounterModel{n: 3}}, Options{}); err == nil {
		t.Fatal("duplicate action names must be a model error")
	}
}

// --- simulation tests -----------------------------------------------------

func TestSimulateFindsRaceAndIsSeedDeterministic(t *testing.T) {
	opts := SimOptions{Seed: 7, Walks: 500, MaxDepth: 50}
	a, err := Simulate(counterModel{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violation == nil {
		t.Fatal("simulation never sampled the lost-update interleaving in 500 walks")
	}
	b, err := Simulate(counterModel{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Walks != b.Walks || a.Distinct != b.Distinct ||
		a.Violation.Trace.Render() != b.Violation.Trace.Render() {
		t.Fatal("same seed produced different simulations")
	}
}

func TestSimulateCleanModel(t *testing.T) {
	res, err := Simulate(atomicCounterModel{n: 50}, SimOptions{Seed: 1, Walks: 20, MaxDepth: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation:\n%s", res.Violation)
	}
	if res.Walks != 20 || res.Distinct != 51 {
		t.Fatalf("wrong simulation summary: %+v", res)
	}
}

func TestTraceRender(t *testing.T) {
	tr := Trace{{Action: "", State: "s0"}, {Action: "go", State: "s1"}}
	got := tr.Render()
	want := "  0. ·   s0\n  1. go  s1\n"
	if got != want {
		t.Fatalf("trace rendering drifted:\n%q\nwant\n%q", got, want)
	}
}
