package models

import (
	"fmt"
	"strings"

	"entangle/internal/core"
	"entangle/internal/exprparse"
	"entangle/internal/graph"
	"entangle/internal/mc"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// PlannerConfig bounds one diff-planner model: a preset DAG realized
// as a real G_s, and a budget of single-operator edits.
type PlannerConfig struct {
	Name string
	DAG  DAG
	// MaxEdits bounds how many operators may be edited in one state,
	// which bounds the explored edit space to sum_{k<=MaxEdits} C(n,k)
	// subsets.
	MaxEdits int
}

// Planner is the model of the diff planner. Unlike the wavefront and
// daemon models it has no concurrency: its state space is the set of
// possible edits to a graph, and every state's invariant check runs
// the SHIPPED core.DiffPlan on real built graphs — proving, at
// bounded scope, the two safety properties the incremental re-check
// rests on:
//
//   - replay-never-stale: an operator the plan marks SkipUnchanged has
//     no edited operator anywhere in its upstream cone, so replaying
//     its cached verdict can never serve a stale result;
//   - changed-cone-rechecked: every operator whose upstream cone
//     contains an edit is re-checked, as Check where the edit is the
//     operator itself and TaintedUpstream where a producer changed.
//
// The "upstream cone" on the model side is computed directly from the
// preset DAG's parent lists — independently of the cone fingerprints
// DiffPlan actually compares — so agreement is meaningful.
type Planner struct {
	cfg   PlannerConfig
	gd    *graph.Graph
	oldGs *graph.Graph
	oldRi *relation.Relation
}

// NewPlanner builds the model plus the shared fixed artifacts: the
// trivial G_d and the unedited base graph. Presets are compiled in, so
// any build failure is a programming error and panics.
func NewPlanner(cfg PlannerConfig) *Planner {
	for i, ps := range cfg.DAG.Parents {
		for _, p := range ps {
			if p < 0 || p >= i {
				panic(fmt.Sprintf("models: DAG %s is not topologically indexed: op %d has parent %d", cfg.DAG.Name, i, p))
			}
		}
	}
	if cfg.MaxEdits <= 0 {
		panic("models: planner needs an edit budget")
	}
	gdb := graph.NewBuilder("Gd", nil)
	X0 := gdb.Input("X0", shape.Of(2, 3))
	gdb.Output(gdb.Identity("out", X0))
	m := &Planner{cfg: cfg, gd: gdb.MustBuild()}
	m.oldGs, m.oldRi = m.realize(nil)
	return m
}

// realize turns the preset DAG into a real G_s with the given edit
// set (nil = unedited). Every operator gets a unique unary function
// string, so distinct operators always have distinct cone
// fingerprints and every edit is fingerprint-visible: a single-parent
// operator is edited by priming its function, a join by permuting its
// operand order (both are hashed; labels are not).
func (m *Planner) realize(edited []bool) (*graph.Graph, *relation.Relation) {
	isEdited := func(i int) bool { return edited != nil && edited[i] }
	bd := graph.NewBuilder("Gs", nil)
	X := bd.Input("X", shape.Of(2, 3))
	n := len(m.cfg.DAG.Parents)
	outs := make([]graph.TensorID, n)
	isParent := make([]bool, n)
	for i, ps := range m.cfg.DAG.Parents {
		label := fmt.Sprintf("op%d", i)
		fn := fmt.Sprintf("f%d", i)
		if isEdited(i) {
			fn += "'"
		}
		switch len(ps) {
		case 0:
			outs[i] = bd.Unary(label, fn, X)
		case 1:
			outs[i] = bd.Unary(label, fn, outs[ps[0]])
			isParent[ps[0]] = true
		default:
			args := make([]graph.TensorID, len(ps))
			for j, p := range ps {
				args[j] = outs[p]
				isParent[p] = true
			}
			if isEdited(i) {
				for a, b := 0, len(args)-1; a < b; a, b = a+1, b-1 {
					args[a], args[b] = args[b], args[a]
				}
			}
			outs[i] = bd.Concat(label, sym.Const(0), args...)
		}
	}
	for i := range outs {
		if !isParent[i] {
			bd.Output(outs[i])
		}
	}
	g := bd.MustBuild()
	ri, err := exprparse.ParseRelation(map[string][]string{"X": {"X0"}}, g, m.gd)
	if err != nil {
		panic(fmt.Sprintf("models: planner relation: %v", err))
	}
	return g, ri
}

// plannerState is one point of the edit space.
type plannerState struct {
	m      *Planner
	edited []bool
	nEdits int
}

func (s *plannerState) clone() *plannerState {
	return &plannerState{m: s.m, edited: append([]bool(nil), s.edited...), nEdits: s.nEdits}
}

func (s *plannerState) Key() string {
	b := make([]byte, len(s.edited))
	for i, e := range s.edited {
		b[i] = '0'
		if e {
			b[i] = '1'
		}
	}
	return string(b)
}

func (s *plannerState) String() string {
	var ops []string
	for i, e := range s.edited {
		if e {
			ops = append(ops, fmt.Sprintf("op%d", i))
		}
	}
	if len(ops) == 0 {
		return "edits={}"
	}
	return "edits={" + strings.Join(ops, ",") + "}"
}

func (m *Planner) Name() string { return m.cfg.Name }

func (m *Planner) Init() []mc.State {
	return []mc.State{&plannerState{m: m, edited: make([]bool, len(m.cfg.DAG.Parents))}}
}

// Actions: edit any not-yet-edited operator while budget remains.
// Order is irrelevant (states are edit SETS), but each subset is still
// reached and checked exactly once thanks to the seen-set.
func (m *Planner) Actions(st mc.State) []mc.Action {
	s := st.(*plannerState)
	if s.nEdits >= m.cfg.MaxEdits {
		return nil
	}
	var acts []mc.Action
	for i := range s.edited {
		if s.edited[i] {
			continue
		}
		i := i
		acts = append(acts, mc.Action{Name: fmt.Sprintf("edit-op%d", i), Next: func() mc.State {
			n := s.clone()
			n.edited[i] = true
			n.nEdits++
			return n
		}})
	}
	return acts
}

// Terminal: every edit set is a legitimate stopping point.
func (m *Planner) Terminal(mc.State) bool { return true }

// editedCone marks each operator whose upstream cone (itself
// included) contains an edit — one forward pass over the
// topologically indexed DAG, fully independent of fingerprints.
func (m *Planner) editedCone(edited []bool) []bool {
	cone := make([]bool, len(edited))
	for i, ps := range m.cfg.DAG.Parents {
		cone[i] = edited[i]
		for _, p := range ps {
			if cone[p] {
				cone[i] = true
				break
			}
		}
	}
	return cone
}

func (m *Planner) Invariants() []mc.Invariant {
	// Both invariants share one DiffPlan run per state; the plan is
	// deterministic, so recomputing it in each closure is merely slow,
	// and at model scopes these graphs are a handful of operators.
	planFor := func(s *plannerState) (map[string]core.Disposition, error) {
		newGs, newRi := m.realize(s.edited)
		plan, err := core.DiffPlan(m.oldGs, m.oldRi, newGs, newRi, m.gd)
		if err != nil {
			return nil, err
		}
		byLabel := make(map[string]core.Disposition, len(plan.Ops))
		for _, op := range plan.Ops {
			byLabel[op.Label] = op.Disposition
		}
		return byLabel, nil
	}
	return []mc.Invariant{
		{Name: "replay-never-stale", Check: func(st mc.State) error {
			s := st.(*plannerState)
			disp, err := planFor(s)
			if err != nil {
				return err
			}
			cone := m.editedCone(s.edited)
			for i := range cone {
				if cone[i] && disp[fmt.Sprintf("op%d", i)] == core.DispSkipUnchanged {
					return fmt.Errorf("op%d has an edit in its cone but the plan replays it", i)
				}
			}
			return nil
		}},
		{Name: "changed-cone-rechecked", Check: func(st mc.State) error {
			s := st.(*plannerState)
			disp, err := planFor(s)
			if err != nil {
				return err
			}
			cone := m.editedCone(s.edited)
			for i, ps := range m.cfg.DAG.Parents {
				upstream := false
				for _, p := range ps {
					if cone[p] {
						upstream = true
						break
					}
				}
				want := core.DispSkipUnchanged
				switch {
				case cone[i] && upstream:
					want = core.DispTaintedUpstream
				case cone[i]:
					want = core.DispCheck
				}
				if got := disp[fmt.Sprintf("op%d", i)]; got != want {
					return fmt.Errorf("op%d planned %s, want %s (edited cone %v, dirty producer %v)",
						i, got, want, cone[i], upstream)
				}
			}
			return nil
		}},
	}
}
