package models

import (
	"fmt"
	"strconv"
	"strings"

	"entangle/internal/mc"
	"entangle/internal/server"
)

// DaemonConfig bounds one daemon admission/drain model.
type DaemonConfig struct {
	Name string
	// Cap is the gate's concurrent-admission bound (keep it below
	// Clients so queueing actually happens).
	Cap int
	// Clients is the number of check requests in flight against the
	// daemon's lifetime.
	Clients int
	// AllowAbandon lets a queued client give up (its request context
	// expires) while the gate is at capacity.
	AllowAbandon bool
}

// Daemon models the entangled daemon's admission gate and SIGTERM
// drain: N clients race to be admitted through a capacity-Cap gate
// while a drain can begin at any moment. Every transition drives a
// copy of server.GateCore — the decision logic Gate runs under its
// mutex in production — so the exhaustively checked property ("a drain
// admits no new work and completes all admitted work") is checked
// against the shipped code. Gate's blocking/wakeup mechanics collapse
// into the model's interleaving choices; what remains is exactly the
// state logic that can be wrong.
type Daemon struct {
	cfg DaemonConfig
}

func NewDaemon(cfg DaemonConfig) *Daemon { return &Daemon{cfg: cfg} }

// Client program counters.
const (
	clWaiting  int8 = iota // arrived, not yet admitted
	clAdmitted             // holding a gate slot, check running
	clDone                 // check finished, slot released
	clBounced              // rejected by the drain, or gave up queued
)

// dmState is one daemon state: the gate core by value, each client's
// program counter, and two audit bits that turn illegal GateCore
// answers into invariant violations instead of silent misbehaviour.
type dmState struct {
	m       *Daemon
	gate    server.GateCore
	clients []int8
	// admitDuringDrain records that CanAdmit returned true while the
	// drain latch was already set; admitRefused that Admit() returned
	// false right after CanAdmit returned true.
	admitDuringDrain bool
	admitRefused     bool
}

func (s *dmState) clone() *dmState {
	n := *s
	n.clients = append([]int8(nil), s.clients...)
	return &n
}

func (s *dmState) Key() string {
	b := make([]byte, 0, 24)
	b = strconv.AppendInt(b, int64(s.gate.InFlight), 10)
	if s.gate.Draining {
		b = append(b, 'D')
	}
	if s.gate.Drained {
		b = append(b, 'd')
	}
	if s.admitDuringDrain {
		b = append(b, '!')
	}
	if s.admitRefused {
		b = append(b, '?')
	}
	b = append(b, '|')
	for _, pc := range s.clients {
		b = append(b, '0'+byte(pc))
	}
	return string(b)
}

func (s *dmState) String() string {
	var b strings.Builder
	b.WriteString("clients=")
	for _, pc := range s.clients {
		b.WriteByte([]byte{'w', 'A', '.', 'x'}[pc])
	}
	fmt.Fprintf(&b, " inflight=%d/%d", s.gate.InFlight, s.gate.Cap)
	if s.gate.Draining {
		b.WriteString(" draining")
	}
	if s.gate.Drained {
		b.WriteString(" drained")
	}
	return b.String()
}

func (m *Daemon) Name() string { return m.cfg.Name }

func (m *Daemon) Init() []mc.State {
	return []mc.State{&dmState{
		m:       m,
		gate:    server.GateCore{Cap: m.cfg.Cap},
		clients: make([]int8, m.cfg.Clients),
	}}
}

func (m *Daemon) Actions(st mc.State) []mc.Action {
	s := st.(*dmState)
	var acts []mc.Action
	if !s.gate.Draining {
		acts = append(acts, mc.Action{Name: "drain", Next: func() mc.State {
			n := s.clone()
			n.gate.StartDrain()
			return n
		}})
	}
	for i, pc := range s.clients {
		i := i
		switch pc {
		case clWaiting:
			// Admission is gated by CanAdmit alone — deliberately not
			// re-checking Draining here — so the model verifies that the
			// shipped predicate refuses drained admissions by itself.
			if s.gate.CanAdmit() {
				acts = append(acts, mc.Action{Name: fmt.Sprintf("c%d/admit", i), Next: func() mc.State {
					n := s.clone()
					n.admitDuringDrain = n.admitDuringDrain || n.gate.Draining
					n.admitRefused = n.admitRefused || !n.gate.Admit()
					n.clients[i] = clAdmitted
					return n
				}})
			}
			if s.gate.Draining {
				// Gate.Acquire fails fast with ErrDraining, including for
				// requests already queued when the drain began.
				acts = append(acts, mc.Action{Name: fmt.Sprintf("c%d/bounce", i), Next: func() mc.State {
					n := s.clone()
					n.clients[i] = clBounced
					return n
				}})
			} else if m.cfg.AllowAbandon && !s.gate.CanAdmit() {
				// Queued at capacity and the request context expires.
				acts = append(acts, mc.Action{Name: fmt.Sprintf("c%d/abandon", i), Next: func() mc.State {
					n := s.clone()
					n.clients[i] = clBounced
					return n
				}})
			}
		case clAdmitted:
			acts = append(acts, mc.Action{Name: fmt.Sprintf("c%d/done", i), Next: func() mc.State {
				n := s.clone()
				n.gate.Complete()
				n.clients[i] = clDone
				return n
			}})
		}
	}
	return acts
}

// Terminal: every client resolved and, if a drain began, it completed.
// A no-action state failing this is a stuck drain or a stuck client —
// reported as a deadlock.
func (m *Daemon) Terminal(st mc.State) bool {
	s := st.(*dmState)
	for _, pc := range s.clients {
		if pc == clWaiting || pc == clAdmitted {
			return false
		}
	}
	return !s.gate.Draining || s.gate.Drained
}

func (m *Daemon) Invariants() []mc.Invariant {
	return []mc.Invariant{
		{Name: "admission-within-capacity", Check: func(st mc.State) error {
			s := st.(*dmState)
			admitted := 0
			for _, pc := range s.clients {
				if pc == clAdmitted {
					admitted++
				}
			}
			if s.gate.InFlight != admitted {
				return fmt.Errorf("gate counts %d in flight, %d clients admitted", s.gate.InFlight, admitted)
			}
			if s.gate.InFlight < 0 || s.gate.InFlight > s.gate.Cap {
				return fmt.Errorf("in-flight %d outside [0, %d]", s.gate.InFlight, s.gate.Cap)
			}
			if s.admitRefused {
				return fmt.Errorf("Admit refused after CanAdmit said yes")
			}
			return nil
		}},
		{Name: "drain-admits-no-new-work", Check: func(st mc.State) error {
			if st.(*dmState).admitDuringDrain {
				return fmt.Errorf("CanAdmit returned true while draining")
			}
			return nil
		}},
		{Name: "drained-means-empty", Check: func(st mc.State) error {
			s := st.(*dmState)
			if s.gate.Drained && (!s.gate.Draining || s.gate.InFlight != 0) {
				return fmt.Errorf("drained latch set with draining=%v in-flight=%d", s.gate.Draining, s.gate.InFlight)
			}
			return nil
		}},
	}
}
