package models

import (
	"testing"

	"entangle/internal/mc"
	"entangle/internal/vcache"
)

// TestAllModelsCleanAtCIScope is the gate make verify and CI run: an
// exhaustive exploration of every healthy model at the ci scope must
// visit its entire bounded state space and report zero violations.
func TestAllModelsCleanAtCIScope(t *testing.T) {
	ms, err := ForScope("ci")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 7 {
		t.Fatalf("ci scope has %d models, want 7", len(ms))
	}
	for _, m := range ms {
		res, err := mc.Explore(m, mc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Errorf("%s:\n%s", m.Name(), res.Violation)
		}
		if res.Truncated {
			t.Errorf("%s: ci scope must be exhaustible, got truncated at %d states", m.Name(), res.States)
		}
		if res.States < 20 {
			t.Errorf("%s: only %d states — the model degenerated", m.Name(), res.States)
		}
		t.Logf("%s: %d states, %d transitions, depth %d in %v",
			m.Name(), res.States, res.Transitions, res.Depth, res.Duration)
	}
}

// TestSmallScopeClean keeps the quick-iteration scope honest too.
func TestSmallScopeClean(t *testing.T) {
	ms, err := ForScope("small")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		res, err := mc.Explore(m, mc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Errorf("%s:\n%s", m.Name(), res.Violation)
		}
	}
}

// TestLargeScopeClean explores the widest preset (~170k states total);
// skipped under -short.
func TestLargeScopeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("large scope takes a few seconds")
	}
	ms, err := ForScope("large")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		res, err := mc.Explore(m, mc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Errorf("%s:\n%s", m.Name(), res.Violation)
		}
		if res.Truncated {
			t.Errorf("%s: truncated at %d states", m.Name(), res.States)
		}
		t.Logf("%s: %d states, %d transitions, depth %d in %v",
			m.Name(), res.States, res.Transitions, res.Depth, res.Duration)
	}
}

// TestKnownBugModelFindsMinimalDeadlock is the proof that the checker
// finds real violations: the pre-fix panic-accounting bug must
// deterministically reproduce as a deadlock with this exact minimal
// trace — one worker panics away on op 1 while the other drains the
// independent chain, and the pool hangs with op 3 forever pending.
func TestKnownBugModelFindsMinimalDeadlock(t *testing.T) {
	const golden = `  0. ·            ops=---- run=[] idle=2 failures=0
  1. pick         ops=---- run=[0] idle=1 failures=0
  2. pick         ops=---- run=[0 1] idle=0 failures=0
  3. op0/refined  ops=+--- run=[1] idle=1 failures=0
  4. pick         ops=+--- run=[1 2] idle=0 failures=0
  5. op1/panic    ops=+--- run=[2] idle=0 failures=1 wedged=[1]
  6. op2/refined  ops=+-+- run=[] idle=1 failures=1 wedged=[1]
`
	res, err := mc.Explore(KnownBug(), mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("the known-bug model found no violation: the checker is broken")
	}
	if res.Violation.Invariant != mc.DeadlockInvariant {
		t.Fatalf("wrong violation kind %q:\n%s", res.Violation.Invariant, res.Violation)
	}
	if got := len(res.Violation.Trace); got != 7 {
		t.Fatalf("counterexample not minimal: %d trace entries\n%s", got, res.Violation.Trace.Render())
	}
	if got := res.Violation.Trace.Render(); got != golden {
		t.Fatalf("minimal counterexample drifted:\n%s\nwant:\n%s", got, golden)
	}
}

// TestFixedWavefrontHasNoDeadlock is the other half of the regression:
// the same DAG, workers, and failure budget with the shipped (fixed)
// accounting — Buggy off, so a panic resolves the op as failed — must
// be violation-free.
func TestFixedWavefrontHasNoDeadlock(t *testing.T) {
	cfg := WavefrontConfig{
		Name:        "known-bug-fixed",
		DAG:         TwoChainsDAG(),
		Workers:     2,
		MaxFailures: 1,
		KeepGoing:   true,
	}
	res, err := mc.Explore(NewWavefront(cfg), mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("fixed accounting still deadlocks:\n%s", res.Violation)
	}
}

// TestWavefrontCatchesBrokenTaint plants a protocol bug unrelated to
// the known-bug model — an undersized failure cone — and checks the
// taint-exact invariant catches it, so the invariants are known to
// have teeth beyond deadlock detection.
func TestWavefrontCatchesBrokenTaint(t *testing.T) {
	m := NewWavefront(WavefrontConfig{
		Name: "broken-taint", DAG: DiamondDAG(), Workers: 2, MaxFailures: 1, KeepGoing: true,
	})
	res, err := mc.Explore(brokenTaint{m}, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Invariant != "taint-exact-cone" {
		t.Fatalf("undersized cone not caught: %+v", res.Violation)
	}
}

// brokenTaint mislabels a skipped op as OK in the invariant's view by
// lying about the DAG: it reports diamond op 3 as parentless, so the
// independently computed cone misses it.
type brokenTaint struct{ *Wavefront }

func (b brokenTaint) Invariants() []mc.Invariant {
	lie := NewWavefront(WavefrontConfig{
		Name: "lie", DAG: DAG{Name: "lie", Parents: [][]int{nil, {0}, {0}, nil}},
		Workers: 2, MaxFailures: 1, KeepGoing: true,
	})
	return lie.Invariants()
}

// TestVCacheModelUsesRealCodec pins the model to the production byte
// format: the model's precomputed clean bytes must decode through the
// real reader, and every damaged variant must be rejected by it.
func TestVCacheModelUsesRealCodec(t *testing.T) {
	m, err := NewVCache(VCacheConfig{Name: "codec", Keys: 2, Writers: 4, MaxCorruptions: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := range m.clean {
		for v := range m.clean[k] {
			e, err := vcache.DecodeEntry(m.keys[k], m.clean[k][v])
			if err != nil {
				t.Fatalf("clean bytes k=%d v=%d do not decode: %v", k, v, err)
			}
			if e.Verdict != m.entries[k][v].Verdict {
				t.Fatalf("k=%d v=%d verdict drifted: %s", k, v, e.Verdict)
			}
			for mi, mode := range m.modes {
				if _, err := vcache.DecodeEntry(m.keys[k], m.damaged[k][v][mi]); err == nil {
					t.Fatalf("damage mode %s not rejected for k=%d v=%d", mode, k, v)
				}
			}
		}
	}
}

// TestSimulateCIScope runs the seeded random-walk mode over every ci
// model: deep sampled executions must stay violation-free too.
func TestSimulateCIScope(t *testing.T) {
	ms, err := ForScope("ci")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		res, err := mc.Simulate(m, mc.SimOptions{Seed: 42, Walks: 200, MaxDepth: 200})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Errorf("%s (seed 42):\n%s", m.Name(), res.Violation)
		}
	}
	res, err := mc.Simulate(KnownBug(), mc.SimOptions{Seed: 42, Walks: 500, MaxDepth: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Error("simulation never stumbled into the known bug in 500 walks")
	}
}

// TestByName covers the registry's lookup surface.
func TestByName(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name, "ci")
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("ByName(%q) returned %q", name, m.Name())
		}
	}
	if _, err := ByName("nope", "ci"); err == nil {
		t.Fatal("unknown model name must error")
	}
	if _, err := ForScope("nope"); err == nil {
		t.Fatal("unknown scope must error")
	}
	if _, err := ByName("wavefront", "nope"); err == nil {
		t.Fatal("unknown scope must error through ByName")
	}
}
