package models

import (
	"strings"
	"testing"

	"entangle/internal/cluster"
	"entangle/internal/mc"
	"entangle/internal/vcache"
)

// TestKnownBugClusterFindsSplitBrain is the regression gate for the
// shard-ownership invariants: ownership computed over node-local
// liveness views must violate one-owner in the minimal two-step trace
// (crash the owner, let exactly one peer notice).
func TestKnownBugClusterFindsSplitBrain(t *testing.T) {
	m, err := KnownBugCluster()
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.Explore(m, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("the buggy ownership model found no violation: the invariants have no teeth")
	}
	if res.Violation.Invariant != "every-fingerprint-has-exactly-one-owner" {
		t.Fatalf("wrong invariant %q:\n%s", res.Violation.Invariant, res.Violation)
	}
	// BFS guarantees minimality: initial state + crash + one observe.
	if got := len(res.Violation.Trace); got != 3 {
		t.Fatalf("counterexample not minimal: %d trace entries\n%s", got, res.Violation.Trace.Render())
	}
	script := res.Violation.Trace.Render()
	if !strings.Contains(script, "crash/") || !strings.Contains(script, "/observe/") {
		t.Fatalf("trace is not the crash+observe split-brain:\n%s", script)
	}
}

// TestClusterModelUsesRealCodec pins the model's wire bytes to the
// production codec: clean bytes decode, every damage mode is rejected —
// the same property the never-stale invariant relies on at every state.
func TestClusterModelUsesRealCodec(t *testing.T) {
	m, err := NewCluster(ClusterConfig{Name: "codec", Nodes: 3, Keys: 2, MaxCrashes: 1, MaxDamage: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := range m.clean {
		e, err := vcache.DecodeEntry(m.keys[k], m.clean[k])
		if err != nil {
			t.Fatalf("key %d clean bytes do not decode: %v", k, err)
		}
		if e.Verdict != vcache.VerdictRefined {
			t.Fatalf("key %d verdict drifted: %s", k, e.Verdict)
		}
		for mi, mode := range m.modes {
			if _, err := vcache.DecodeEntry(m.keys[k], m.damaged[k][mi]); err == nil {
				t.Fatalf("damage mode %s not rejected for key %d", mode, k)
			}
		}
	}
}

// TestClusterModelCastIsCoherent checks each key's cast assignment: the
// producer and reader are distinct non-owners, and the static owner
// matches the shipped rendezvous function.
func TestClusterModelCastIsCoherent(t *testing.T) {
	m, err := NewCluster(ClusterConfig{Name: "cast", Nodes: 4, Keys: 3, MaxCrashes: 1, MaxDamage: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := range m.keys {
		owner := m.staticOwner[k]
		if got := m.indexOf(cluster.Owner(m.members, m.keys[k])); got != owner {
			t.Fatalf("key %d: staticOwner %d but cluster.Owner says %d", k, owner, got)
		}
		if m.producer[k] == owner || m.reader[k] == owner || m.producer[k] == m.reader[k] {
			t.Fatalf("key %d: degenerate cast owner=%d producer=%d reader=%d",
				k, owner, m.producer[k], m.reader[k])
		}
	}
}
