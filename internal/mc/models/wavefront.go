package models

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"entangle/internal/core"
	"entangle/internal/mc"
)

// DAG is a small operator dependency graph, given as per-op parent
// lists. Ops are topologically indexed: every parent index is smaller
// than its child's (NewWavefront rejects anything else).
type DAG struct {
	Name    string
	Parents [][]int
}

// The preset DAGs cover the shapes the scheduler actually sees: pure
// chains, fan-out/fan-in diamonds, independent islands, and the
// attention/MoE-style mixtures of all three.

// ChainDAG is n ops in a straight line.
func ChainDAG(n int) DAG {
	parents := make([][]int, n)
	for i := 1; i < n; i++ {
		parents[i] = []int{i - 1}
	}
	return DAG{Name: fmt.Sprintf("chain%d", n), Parents: parents}
}

// DiamondDAG is the minimal fan-out/fan-in: 0 → {1,2} → 3.
func DiamondDAG() DAG {
	return DAG{Name: "diamond", Parents: [][]int{nil, {0}, {0}, {1, 2}}}
}

// TwoChainsDAG is two independent 2-op chains (0→2 and 1→3): the
// smallest DAG where one island can fail while the other completes.
func TwoChainsDAG() DAG {
	return DAG{Name: "twochains", Parents: [][]int{nil, nil, {0}, {1}}}
}

// AttentionDAG mimics an attention block: input 0 fans out to q/k/v
// projections 1,2,3, which join at 4, followed by the output
// projection 5.
func AttentionDAG() DAG {
	return DAG{Name: "attn", Parents: [][]int{nil, {0}, {0}, {0}, {1, 2, 3}, {4}}}
}

// MoEDAG mimes a mixture-of-experts block: router 0 fans out to four
// experts 1..4, which join at combine 5, then head 6 and loss 7.
func MoEDAG() DAG {
	return DAG{Name: "moe", Parents: [][]int{nil, {0}, {0}, {0}, {0}, {1, 2, 3, 4}, {5}, {6}}}
}

// TowersDAG is two independent attention towers (ops 0-5 and 6-11)
// joined by a final op 12: islands, fan-out, fan-in, and a cross-tower
// join all in one 13-op graph — the widest preset.
func TowersDAG() DAG {
	return DAG{Name: "towers", Parents: [][]int{
		nil, {0}, {0}, {0}, {1, 2, 3}, {4},
		nil, {6}, {6}, {6}, {7, 8, 9}, {10},
		{5, 11},
	}}
}

// WavefrontConfig bounds one wavefront-scheduler model.
type WavefrontConfig struct {
	Name string
	DAG  DAG
	// Workers is the pool size; workers are symmetric (they carry no
	// state beyond which op they run), so the model tracks the multiset
	// of running ops, not worker identities.
	Workers int
	// MaxFailures bounds how many ops may fail (or panic) in one
	// execution; it is what makes the state space finite-interesting
	// rather than dominated by all-failing runs.
	MaxFailures int
	// KeepGoing selects the scheduling mode, exactly as in core.Check.
	KeepGoing bool
	// Buggy reintroduces the pre-fix panic accounting bug: a panicking
	// lemma's deferred bookkeeping never ran, so its op was never
	// resolved and its worker never returned to the pool. The fixed
	// code recovers the panic and resolves the op as failed, which the
	// model expresses by NOT offering the wedge transition.
	Buggy bool
}

// Wavefront is the model of the wavefront scheduler protocol. Every
// transition drives a Clone of core.SchedCore — the exact state
// machine the production worker pool drives under its mutex — so the
// checked protocol is the shipped scheduling logic.
type Wavefront struct {
	cfg      WavefrontConfig
	deps     []int
	children [][]int
}

// NewWavefront builds the model, deriving dependency counts and
// consumer lists from the DAG. It panics on a non-topological DAG:
// presets are compiled in, so that is a programming error.
func NewWavefront(cfg WavefrontConfig) *Wavefront {
	n := len(cfg.DAG.Parents)
	deps := make([]int, n)
	children := make([][]int, n)
	for i, ps := range cfg.DAG.Parents {
		for _, p := range ps {
			if p < 0 || p >= i {
				panic(fmt.Sprintf("models: DAG %s is not topologically indexed: op %d has parent %d", cfg.DAG.Name, i, p))
			}
			deps[i]++
			children[p] = append(children[p], i)
		}
	}
	if cfg.Workers <= 0 {
		panic("models: wavefront needs at least one worker")
	}
	return &Wavefront{cfg: cfg, deps: deps, children: children}
}

// wfState is one scheduler state: the SchedCore plus the pool's
// worker-side view. Workers are symmetric, so only the sorted multiset
// of running ops, the sorted list of wedged ops (Buggy mode), and the
// failure budget spent so far are tracked — a sound symmetry reduction
// that matches the production pool of identical goroutines.
type wfState struct {
	m        *Wavefront
	core     *core.SchedCore
	running  []int // ops popped and being checked, sorted
	wedged   []int // ops whose worker panicked away (Buggy), sorted
	failures int
}

func (s *wfState) idle() int {
	return s.m.cfg.Workers - len(s.running) - len(s.wedged)
}

func (s *wfState) clone() *wfState {
	return &wfState{
		m:        s.m,
		core:     s.core.Clone(),
		running:  append([]int(nil), s.running...),
		wedged:   append([]int(nil), s.wedged...),
		failures: s.failures,
	}
}

// Key is canonical: the core's outcome/errAt encoding (deps, ready,
// and taint are functions of it) plus the running and wedged op sets,
// which are NOT derivable from outcomes — a popped-but-unresolved op
// and a ready op both read as pending.
func (s *wfState) Key() string {
	b := s.core.AppendKey(make([]byte, 0, 64))
	b = appendOps(b, s.running)
	b = appendOps(b, s.wedged)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(s.failures), 10)
	return string(b)
}

func appendOps(b []byte, ops []int) []byte {
	b = append(b, '|')
	for _, op := range ops {
		b = strconv.AppendInt(b, int64(op), 10)
		b = append(b, ',')
	}
	return b
}

func (s *wfState) String() string {
	var b strings.Builder
	b.WriteString("ops=")
	for i := 0; i < s.core.Len(); i++ {
		b.WriteByte("-+!~"[s.core.Outcome(i)])
	}
	fmt.Fprintf(&b, " run=%v idle=%d failures=%d", s.running, s.idle(), s.failures)
	if len(s.wedged) > 0 {
		fmt.Fprintf(&b, " wedged=%v", s.wedged)
	}
	if errAt := s.core.ErrAt(); errAt < s.core.Len() {
		fmt.Fprintf(&b, " err@%d", errAt)
	}
	return b.String()
}

func (m *Wavefront) Name() string { return m.cfg.Name }

func (m *Wavefront) Init() []mc.State {
	return []mc.State{&wfState{
		m:    m,
		core: core.NewSchedCore(m.deps, m.children, m.cfg.KeepGoing),
	}}
}

// Actions mirrors the worker loop: an idle worker picks the earliest
// runnable op (Pop is deterministic, so one pick action covers all
// idle workers — symmetry again), and each running op can complete
// refined, complete failed (covering disproved, inconclusive, engine
// fault, and — in the fixed code — a recovered panic), or, in Buggy
// mode, panic its worker away without ever resolving.
func (m *Wavefront) Actions(st mc.State) []mc.Action {
	s := st.(*wfState)
	var acts []mc.Action
	if s.idle() > 0 && s.core.Runnable() {
		acts = append(acts, mc.Action{Name: "pick", Next: func() mc.State {
			n := s.clone()
			n.running = insertOp(n.running, n.core.Pop())
			return n
		}})
	}
	for _, op := range s.running {
		op := op
		acts = append(acts, mc.Action{Name: fmt.Sprintf("op%d/refined", op), Next: func() mc.State {
			n := s.clone()
			n.core.Resolve(op, true)
			n.running = removeOp(n.running, op)
			return n
		}})
		if s.failures < m.cfg.MaxFailures {
			acts = append(acts, mc.Action{Name: fmt.Sprintf("op%d/fail", op), Next: func() mc.State {
				n := s.clone()
				n.core.Resolve(op, false)
				n.running = removeOp(n.running, op)
				n.failures++
				return n
			}})
			if m.cfg.Buggy {
				acts = append(acts, mc.Action{Name: fmt.Sprintf("op%d/panic", op), Next: func() mc.State {
					// The op is never resolved and the worker never
					// comes back: the pre-fix accounting bug.
					n := s.clone()
					n.running = removeOp(n.running, op)
					n.wedged = insertOp(n.wedged, op)
					n.failures++
					return n
				}})
			}
		}
	}
	return acts
}

// Terminal: with no wedged workers, a state with no enabled actions is
// legitimate quiescence (in default mode possibly a cancelled suffix).
// Any no-action state with a wedged worker is the bug's deadlock.
func (m *Wavefront) Terminal(st mc.State) bool {
	return len(st.(*wfState).wedged) == 0
}

// quiesced mirrors SchedCore.Quiesced with the model's worker view.
func (s *wfState) quiesced() bool {
	return len(s.running) == 0 && len(s.wedged) == 0 && !s.core.Runnable()
}

func (m *Wavefront) Invariants() []mc.Invariant {
	invs := []mc.Invariant{
		{Name: "scheduled-once", Check: func(st mc.State) error {
			s := st.(*wfState)
			if busy := len(s.running) + len(s.wedged); busy > m.cfg.Workers {
				return fmt.Errorf("%d ops in flight with %d workers", busy, m.cfg.Workers)
			}
			for _, ops := range [][]int{s.running, s.wedged} {
				for i, op := range ops {
					if s.core.Outcome(op) != core.SchedPending {
						return fmt.Errorf("op %d is being run but already has outcome %s", op, s.core.Outcome(op))
					}
					if i > 0 && ops[i-1] >= op {
						return fmt.Errorf("op %d scheduled twice", op)
					}
				}
			}
			return nil
		}},
		{Name: "one-verdict-per-op", Check: func(st mc.State) error {
			s := st.(*wfState)
			if !s.quiesced() {
				return nil
			}
			n := s.core.Len()
			errAt := s.core.ErrAt()
			for i := 0; i < n; i++ {
				o := s.core.Outcome(i)
				switch {
				case m.cfg.KeepGoing && o == core.SchedPending:
					return fmt.Errorf("quiesced in keep-going mode with op %d unresolved", i)
				case !m.cfg.KeepGoing && i < errAt && o != core.SchedOK:
					return fmt.Errorf("quiesced with op %d %s before the earliest failure at %d", i, o, errAt)
				case !m.cfg.KeepGoing && errAt == n && o != core.SchedOK:
					return fmt.Errorf("quiesced failure-free with op %d %s", i, o)
				}
			}
			return nil
		}},
	}
	if m.cfg.KeepGoing {
		invs = append(invs, mc.Invariant{Name: "taint-exact-cone", Check: func(st mc.State) error {
			s := st.(*wfState)
			if !s.quiesced() {
				return nil
			}
			cone := m.failureCone(s)
			for i := 0; i < s.core.Len(); i++ {
				skipped := s.core.Outcome(i) == core.SchedSkipped
				if skipped != cone[i] {
					return fmt.Errorf("op %d: outcome %s but downstream-of-failure = %v", i, s.core.Outcome(i), cone[i])
				}
			}
			return nil
		}})
	}
	return invs
}

// failureCone computes, independently of the scheduler's own taint
// propagation, which ops are downstream of a failed op. The DAG is
// topologically indexed, so one forward pass suffices.
func (m *Wavefront) failureCone(s *wfState) []bool {
	cone := make([]bool, s.core.Len())
	for i, ps := range m.cfg.DAG.Parents {
		for _, p := range ps {
			if cone[p] || s.core.Outcome(p) == core.SchedFailed {
				cone[i] = true
				break
			}
		}
	}
	return cone
}

func insertOp(ops []int, op int) []int {
	i := sort.SearchInts(ops, op)
	ops = append(ops, 0)
	copy(ops[i+1:], ops[i:])
	ops[i] = op
	return ops
}

func removeOp(ops []int, op int) []int {
	i := sort.SearchInts(ops, op)
	return append(ops[:i:i], ops[i+1:]...)
}
