// Package models holds the protocol models checked by entangle-mc:
// bounded, deterministic specifications of the repo's three concurrent
// protocols — the wavefront scheduler, the verdict cache's on-disk
// discipline, and the daemon's admission/drain gate — plus the
// (sequential) diff planner, each driving the corresponding SHIPPED
// state machine or function (core.SchedCore, vcache.EncodeEntry/
// DecodeEntry, server.GateCore, core.DiffPlan) rather than a
// re-derivation that could drift from it.
//
// Models come in named scopes so CI can check a space it can exhaust
// in seconds while developers can crank the same models much wider:
//
//	ci     the gate run on every make verify / CI build (< 60s total)
//	small  the minimal interesting instances, for quick iteration
//	large  wider DAGs, more workers/writers/clients, more failures
//
// KnownBug returns a model of the pre-fix wavefront panic-accounting
// bug (a panicking lemma wedged its worker forever); it exists to
// prove, on every CI run, that the checker actually finds real
// violations and reports a minimal trace — a regression test for the
// regression-test machinery itself.
package models

import (
	"fmt"
	"sort"

	"entangle/internal/mc"
)

// Scopes lists the valid scope names.
func Scopes() []string { return []string{"ci", "small", "large"} }

// ForScope builds every healthy model at the named scope. Exploring
// all of them exhaustively must report zero violations; any violation
// is a protocol bug (or a model bug — either way, look).
func ForScope(scope string) ([]mc.Model, error) {
	cfgs, err := scopeConfigs(scope)
	if err != nil {
		return nil, err
	}
	var ms []mc.Model
	for _, c := range cfgs.wavefronts {
		ms = append(ms, NewWavefront(c))
	}
	vc, err := NewVCache(cfgs.vcache)
	if err != nil {
		return nil, err
	}
	ms = append(ms, vc, NewDaemon(cfgs.daemon))
	for _, c := range cfgs.planners {
		ms = append(ms, NewPlanner(c))
	}
	cl, err := NewCluster(cfgs.cluster)
	if err != nil {
		return nil, err
	}
	return append(ms, cl), nil
}

// KnownBug returns the buggy wavefront model: two independent op
// chains, two workers, Buggy accounting. The shortest counterexample
// has one worker panic away on the first chain's root while the other
// worker drains the second chain — and then the pool hangs with op 2
// forever pending, exactly the deadlock PR 3 fixed.
func KnownBug() mc.Model {
	return NewWavefront(WavefrontConfig{
		Name:        "known-bug",
		DAG:         TwoChainsDAG(),
		Workers:     2,
		MaxFailures: 1,
		KeepGoing:   true,
		Buggy:       true,
	})
}

// KnownBugCluster returns the buggy shard-ownership model: ownership
// computed over each node's local liveness view instead of the static
// member list. The shortest counterexample is two steps — crash the
// owner of some key, let ONE other node's failure detector notice —
// after which two live nodes disagree about who owns that key, the
// split-brain race the one-owner invariant exists to exclude.
func KnownBugCluster() (mc.Model, error) {
	return NewCluster(ClusterConfig{
		Name:       "known-bug-cluster",
		Nodes:      3,
		Keys:       2,
		MaxCrashes: 1,
		Buggy:      true,
	})
}

// ByName returns one model by name at the given scope. "known-bug" and
// "known-bug-cluster" are scope-independent: their golden minimal
// traces must never drift.
func ByName(name, scope string) (mc.Model, error) {
	if name == "known-bug" {
		return KnownBug(), nil
	}
	if name == "known-bug-cluster" {
		return KnownBugCluster()
	}
	all, err := ForScope(scope)
	if err != nil {
		return nil, err
	}
	for _, m := range all {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
}

// Names lists every model name, sorted, known-bug variants last.
func Names() []string {
	ms, _ := ForScope("ci")
	var names []string
	for _, m := range ms {
		names = append(names, m.Name())
	}
	sort.Strings(names)
	return append(names, "known-bug", "known-bug-cluster")
}

type scopeSet struct {
	wavefronts []WavefrontConfig
	vcache     VCacheConfig
	daemon     DaemonConfig
	planners   []PlannerConfig
	cluster    ClusterConfig
}

func scopeConfigs(scope string) (*scopeSet, error) {
	switch scope {
	case "ci":
		return &scopeSet{
			wavefronts: []WavefrontConfig{
				{Name: "wavefront", DAG: AttentionDAG(), Workers: 2, MaxFailures: 2, KeepGoing: true},
				{Name: "wavefront-firsterror", DAG: AttentionDAG(), Workers: 2, MaxFailures: 2},
			},
			vcache: VCacheConfig{Name: "vcache", Keys: 2, Writers: 3, MaxCorruptions: 1},
			daemon: DaemonConfig{Name: "daemon", Cap: 2, Clients: 4, AllowAbandon: true},
			planners: []PlannerConfig{
				{Name: "planner", DAG: MoEDAG(), MaxEdits: 2},
				{Name: "planner-attn", DAG: AttentionDAG(), MaxEdits: 2},
			},
			cluster: ClusterConfig{Name: "cluster", Nodes: 3, Keys: 2, MaxCrashes: 1, MaxDamage: 1},
		}, nil
	case "small":
		return &scopeSet{
			wavefronts: []WavefrontConfig{
				{Name: "wavefront", DAG: DiamondDAG(), Workers: 2, MaxFailures: 1, KeepGoing: true},
				{Name: "wavefront-firsterror", DAG: DiamondDAG(), Workers: 2, MaxFailures: 1},
			},
			vcache:   VCacheConfig{Name: "vcache", Keys: 1, Writers: 1, MaxCorruptions: 1},
			daemon:   DaemonConfig{Name: "daemon", Cap: 1, Clients: 2},
			planners: []PlannerConfig{{Name: "planner", DAG: ChainDAG(3), MaxEdits: 1}},
			cluster:  ClusterConfig{Name: "cluster", Nodes: 3, Keys: 1, MaxCrashes: 1, MaxDamage: 1},
		}, nil
	case "large":
		return &scopeSet{
			wavefronts: []WavefrontConfig{
				{Name: "wavefront", DAG: TowersDAG(), Workers: 4, MaxFailures: 4, KeepGoing: true},
				{Name: "wavefront-firsterror", DAG: TowersDAG(), Workers: 4, MaxFailures: 4},
			},
			vcache:   VCacheConfig{Name: "vcache", Keys: 2, Writers: 6, MaxCorruptions: 2},
			daemon:   DaemonConfig{Name: "daemon", Cap: 3, Clients: 6, AllowAbandon: true},
			planners: []PlannerConfig{{Name: "planner", DAG: TowersDAG(), MaxEdits: 3}},
			cluster:  ClusterConfig{Name: "cluster", Nodes: 4, Keys: 2, MaxCrashes: 2, MaxDamage: 2},
		}, nil
	}
	return nil, fmt.Errorf("models: unknown scope %q (have %v)", scope, Scopes())
}
