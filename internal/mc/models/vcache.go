package models

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"

	"entangle/internal/faultinject"
	"entangle/internal/fingerprint"
	"entangle/internal/mc"
	"entangle/internal/vcache"
)

// VCacheConfig bounds one verdict-cache model.
type VCacheConfig struct {
	Name string
	// Keys is the number of distinct cache keys (content addresses).
	Keys int
	// Writers is the number of concurrent Put writers. Writer w targets
	// key w % Keys with entry version w / Keys, so writers on the same
	// key race distinct contents — the interesting case.
	Writers int
	// MaxCorruptions bounds how many damage events the disk adversary
	// may inject; each picks any faultinject.CacheFault mode.
	MaxCorruptions int
}

// VCache models the verdict cache's on-disk protocol: concurrent
// writers doing the temp-file + atomic-rename dance, crashes in the
// window between the two, and an adversary damaging committed files in
// every faultinject mode. The twist that makes it more than a toy: the
// model materializes REAL bytes. Every committed file is produced by
// vcache.EncodeEntry, every damaged variant by faultinject.Damage, and
// the reader invariant runs vcache.DecodeEntry — the production read
// path — over those bytes at every reachable state. "A decode error is
// always a miss, never a wrong verdict" is checked against the shipped
// codec, not a model of it.
//
// Readers need no actions: renames are atomic and a read is a
// snapshot, so a reader in any reachable state sees exactly that
// state's disk. Checking the invariant at every state IS the
// exhaustive reader.
type VCache struct {
	cfg   VCacheConfig
	keys  []fingerprint.Hash
	modes []faultinject.CacheFault
	// entries[k][v] is version v of key k's entry; clean[k][v] its
	// exact on-disk bytes; damaged[k][v][m] those bytes under mode m.
	entries [][]*vcache.Entry
	clean   [][][]byte
	damaged [][][][]byte
	// writerKey/writerVer assign each writer its (key, version).
	writerKey []int
	writerVer []int
}

// NewVCache precomputes every byte string the model can place on disk.
func NewVCache(cfg VCacheConfig) (*VCache, error) {
	if cfg.Keys <= 0 || cfg.Writers <= 0 {
		return nil, fmt.Errorf("models: vcache needs at least one key and one writer")
	}
	m := &VCache{cfg: cfg, modes: faultinject.CacheFaults()}
	versions := (cfg.Writers + cfg.Keys - 1) / cfg.Keys
	for k := 0; k < cfg.Keys; k++ {
		key := fingerprint.Hash(sha256.Sum256([]byte(fmt.Sprintf("mc-vcache-key-%d", k))))
		m.keys = append(m.keys, key)
		var entries []*vcache.Entry
		var clean [][]byte
		var damaged [][][]byte
		for v := 0; v < versions; v++ {
			e := entryVersion(k, v)
			data, err := vcache.EncodeEntry(key, e)
			if err != nil {
				return nil, err
			}
			var dam [][]byte
			for _, mode := range m.modes {
				dam = append(dam, faultinject.Damage(data, mode))
			}
			entries = append(entries, e)
			clean = append(clean, data)
			damaged = append(damaged, dam)
		}
		m.entries = append(m.entries, entries)
		m.clean = append(m.clean, clean)
		m.damaged = append(m.damaged, damaged)
	}
	for w := 0; w < cfg.Writers; w++ {
		m.writerKey = append(m.writerKey, w%cfg.Keys)
		m.writerVer = append(m.writerVer, w/cfg.Keys)
	}
	return m, nil
}

// entryVersion fabricates distinct cacheable entries: even versions
// refined with an output mapping, odd versions disproved.
func entryVersion(k, v int) *vcache.Entry {
	if v%2 == 1 {
		return &vcache.Entry{Verdict: vcache.VerdictDisproved, Escalations: v, FailOutput: k}
	}
	return &vcache.Entry{
		Verdict:     vcache.VerdictRefined,
		Escalations: v,
		Outputs:     []vcache.Mapping{{Main: []string{fmt.Sprintf("t%d_%d", k, v)}}},
	}
}

// Writer program counters.
const (
	wrStart int8 = iota // entry encoded, temp file not yet written
	wrTemp              // temp file written, rename pending (crash window)
	wrDone              // renamed or crashed
)

// vcState is one disk + writers state. Temp files are deliberately NOT
// part of the state: they live under dot-prefixed names the reader
// never opens, so until the rename they are unobservable — modelling
// them would square the state space for no observable difference.
type vcState struct {
	m *VCache
	// disk[k]: version on disk (-1 absent) and damage mode (-1 clean).
	diskVer     []int8
	diskDamage  []int8
	writers     []int8
	renamed     []bool
	corruptions int8
}

func (s *vcState) clone() *vcState {
	return &vcState{
		m:           s.m,
		diskVer:     append([]int8(nil), s.diskVer...),
		diskDamage:  append([]int8(nil), s.diskDamage...),
		writers:     append([]int8(nil), s.writers...),
		renamed:     append([]bool(nil), s.renamed...),
		corruptions: s.corruptions,
	}
}

func (s *vcState) Key() string {
	b := make([]byte, 0, 32)
	for k := range s.diskVer {
		b = strconv.AppendInt(b, int64(s.diskVer[k]), 10)
		b = append(b, '/')
		b = strconv.AppendInt(b, int64(s.diskDamage[k]), 10)
		b = append(b, ',')
	}
	b = append(b, '|')
	for w := range s.writers {
		b = strconv.AppendInt(b, int64(s.writers[w]), 10)
		if s.renamed[w] {
			b = append(b, '!')
		}
	}
	b = append(b, '|')
	return string(strconv.AppendInt(b, int64(s.corruptions), 10))
}

func (s *vcState) String() string {
	var b strings.Builder
	b.WriteString("disk=[")
	for k := range s.diskVer {
		if k > 0 {
			b.WriteByte(' ')
		}
		if s.diskVer[k] < 0 {
			b.WriteString("·")
			continue
		}
		fmt.Fprintf(&b, "v%d", s.diskVer[k])
		if d := s.diskDamage[k]; d >= 0 {
			fmt.Fprintf(&b, "(%s)", s.m.modes[d])
		}
	}
	b.WriteString("] writers=[")
	for w, pc := range s.writers {
		if w > 0 {
			b.WriteByte(' ')
		}
		switch pc {
		case wrStart:
			b.WriteString("start")
		case wrTemp:
			b.WriteString("temp")
		case wrDone:
			if s.renamed[w] {
				b.WriteString("renamed")
			} else {
				b.WriteString("crashed")
			}
		}
	}
	fmt.Fprintf(&b, "] corruptions=%d", s.corruptions)
	return b.String()
}

func (m *VCache) Name() string { return m.cfg.Name }

func (m *VCache) Init() []mc.State {
	s := &vcState{
		m:          m,
		diskVer:    make([]int8, m.cfg.Keys),
		diskDamage: make([]int8, m.cfg.Keys),
		writers:    make([]int8, m.cfg.Writers),
		renamed:    make([]bool, m.cfg.Writers),
	}
	for k := range s.diskVer {
		s.diskVer[k], s.diskDamage[k] = -1, -1
	}
	return []mc.State{s}
}

func (m *VCache) Actions(st mc.State) []mc.Action {
	s := st.(*vcState)
	var acts []mc.Action
	for w := range s.writers {
		w := w
		switch s.writers[w] {
		case wrStart:
			acts = append(acts, mc.Action{Name: fmt.Sprintf("w%d/write-temp", w), Next: func() mc.State {
				n := s.clone()
				n.writers[w] = wrTemp
				return n
			}})
		case wrTemp:
			acts = append(acts, mc.Action{Name: fmt.Sprintf("w%d/rename", w), Next: func() mc.State {
				// The atomic commit: whatever was under the final name —
				// nothing, an older version, or a damaged file — is
				// replaced wholesale by this writer's clean bytes.
				n := s.clone()
				k := m.writerKey[w]
				n.diskVer[k] = int8(m.writerVer[w])
				n.diskDamage[k] = -1
				n.writers[w] = wrDone
				n.renamed[w] = true
				return n
			}})
			acts = append(acts, mc.Action{Name: fmt.Sprintf("w%d/crash", w), Next: func() mc.State {
				// Crash in the window between temp write and rename: the
				// temp file is litter the reader never opens; the
				// committed file, if any, is untouched.
				n := s.clone()
				n.writers[w] = wrDone
				return n
			}})
		}
	}
	if int(s.corruptions) < m.cfg.MaxCorruptions {
		for k := range s.diskVer {
			k := k
			if s.diskVer[k] < 0 || s.diskDamage[k] >= 0 {
				continue
			}
			for mi, mode := range m.modes {
				mi := mi
				acts = append(acts, mc.Action{Name: fmt.Sprintf("corrupt/k%d/%s", k, mode), Next: func() mc.State {
					n := s.clone()
					n.diskDamage[k] = int8(mi)
					n.corruptions++
					return n
				}})
			}
		}
	}
	return acts
}

// Terminal: all writers finished. (Corruption actions may still be
// enabled in such states; Terminal is only consulted when nothing is.)
func (m *VCache) Terminal(st mc.State) bool {
	for _, pc := range st.(*vcState).writers {
		if pc != wrDone {
			return false
		}
	}
	return true
}

func (m *VCache) Invariants() []mc.Invariant {
	return []mc.Invariant{
		// The central property, checked with the production decoder at
		// every reachable disk state: an undamaged committed file decodes
		// to exactly the entry that was Put (byte-identical re-encoding),
		// and EVERY damage mode is detected as an error — a miss, never a
		// wrong verdict.
		{Name: "decode-error-is-a-miss-never-a-wrong-verdict", Check: func(st mc.State) error {
			s := st.(*vcState)
			for k := range s.diskVer {
				v := s.diskVer[k]
				if v < 0 {
					continue
				}
				data := m.clean[k][v]
				if d := s.diskDamage[k]; d >= 0 {
					data = m.damaged[k][v][d]
					if _, err := vcache.DecodeEntry(m.keys[k], data); err == nil {
						return fmt.Errorf("key %d damaged with %s but DecodeEntry succeeded", k, m.modes[d])
					}
					continue
				}
				e, err := vcache.DecodeEntry(m.keys[k], data)
				if err != nil {
					return fmt.Errorf("key %d committed clean but DecodeEntry failed: %v", k, err)
				}
				re, err := vcache.EncodeEntry(m.keys[k], e)
				if err != nil {
					return fmt.Errorf("key %d round-trip re-encode failed: %v", k, err)
				}
				if !bytes.Equal(re, data) {
					return fmt.Errorf("key %d decoded to a different entry than was committed", k)
				}
			}
			return nil
		}},
		// Once any writer's rename returned, its key always holds SOME
		// committed version: atomic replacement can never leave the slot
		// empty, so no committed verdict is ever lost to a crash or a
		// racing writer.
		{Name: "no-committed-verdict-lost", Check: func(st mc.State) error {
			s := st.(*vcState)
			for w, ren := range s.renamed {
				if ren && s.diskVer[m.writerKey[w]] < 0 {
					return fmt.Errorf("writer %d committed but key %d is absent", w, m.writerKey[w])
				}
			}
			return nil
		}},
	}
}
