package models

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"

	"entangle/internal/cluster"
	"entangle/internal/faultinject"
	"entangle/internal/fingerprint"
	"entangle/internal/mc"
	"entangle/internal/vcache"
)

// ClusterConfig bounds one shard-ownership model.
type ClusterConfig struct {
	Name string
	// Nodes is the fleet size (at least 3: each key gets a distinct
	// producer and reader besides its owner).
	Nodes int
	// Keys is the number of distinct fingerprints in play.
	Keys int
	// MaxCrashes bounds how many crash events the adversary may inject
	// (restarts are free — they are only enabled after a crash).
	MaxCrashes int
	// MaxDamage bounds how many in-flight messages the adversary may
	// damage; each pick any faultinject.CacheFault mode.
	MaxDamage int
	// Buggy computes shard ownership from each node's LOCAL view of
	// which peers are alive instead of the static member list — the
	// split-brain ownership race the rendezvous design exists to
	// exclude. The one-owner invariant must catch it.
	Buggy bool
}

// ClusterM models the fleet's shard-ownership and verdict-forwarding
// protocol: for each key, a producer node commits the verdict to its
// own shard and forwards it to the key's owner, a reader node later
// fetches it from the owner, and an adversary crashes/restarts nodes
// and damages messages in flight. Three design decisions make it more
// than a toy:
//
//   - Ownership decisions run the SHIPPED cluster.Owner over the static
//     member list (or, in the Buggy variant, over each node's local
//     liveness view — which the one-owner invariant then catches).
//   - Messages carry REAL bytes: vcache.EncodeEntry output, damaged by
//     faultinject.Damage, gated on delivery by vcache.DecodeEntry —
//     the same codec path the production transport uses, so "a
//     forwarded verdict is never stale" is checked against shipped
//     code.
//   - Crash preserves the disk and discards everything else, the
//     durability contract of a real SIGKILL, so "no committed verdict
//     lost across crash/restart" is checked at every reachable state.
type ClusterM struct {
	cfg     ClusterConfig
	members []cluster.Member
	keys    []fingerprint.Hash
	modes   []faultinject.CacheFault
	// clean[k] is key k's canonical entry bytes; damaged[k][m] those
	// bytes under damage mode m.
	clean   [][]byte
	damaged [][][]byte
	// producer/reader/staticOwner assign each key its cast: producer
	// computes and forwards the verdict, reader fetches it later,
	// staticOwner is cluster.Owner over the full member list.
	producer    []int
	reader      []int
	staticOwner []int
}

// NewCluster precomputes members, keys, canonical bytes, and each key's
// cast.
func NewCluster(cfg ClusterConfig) (*ClusterM, error) {
	if cfg.Nodes < 3 {
		return nil, fmt.Errorf("models: cluster needs at least 3 nodes (owner, producer, reader)")
	}
	if cfg.Keys <= 0 {
		return nil, fmt.Errorf("models: cluster needs at least one key")
	}
	m := &ClusterM{cfg: cfg, modes: faultinject.CacheFaults()}
	for i := 0; i < cfg.Nodes; i++ {
		m.members = append(m.members, cluster.Member{
			ID:  "n" + strconv.Itoa(i),
			URL: "mc://n" + strconv.Itoa(i),
		})
	}
	for k := 0; k < cfg.Keys; k++ {
		key := fingerprint.Hash(sha256.Sum256([]byte(fmt.Sprintf("mc-cluster-key-%d", k))))
		m.keys = append(m.keys, key)
		e := &vcache.Entry{
			Verdict:     vcache.VerdictRefined,
			Escalations: k,
			Outputs:     []vcache.Mapping{{Main: []string{fmt.Sprintf("c%d", k)}}},
		}
		data, err := vcache.EncodeEntry(key, e)
		if err != nil {
			return nil, err
		}
		var dam [][]byte
		for _, mode := range m.modes {
			dam = append(dam, faultinject.Damage(data, mode))
		}
		m.clean = append(m.clean, data)
		m.damaged = append(m.damaged, dam)

		owner := m.indexOf(cluster.Owner(m.members, key))
		producer, reader := -1, -1
		for i := range m.members {
			if i == owner {
				continue
			}
			if producer < 0 {
				producer = i
			} else if reader < 0 {
				reader = i
			}
		}
		m.staticOwner = append(m.staticOwner, owner)
		m.producer = append(m.producer, producer)
		m.reader = append(m.reader, reader)
	}
	return m, nil
}

func (m *ClusterM) indexOf(member cluster.Member) int {
	for i, mm := range m.members {
		if mm.ID == member.ID {
			return i
		}
	}
	panic("models: owner not in member list")
}

// Message phases. A message is one key's offer (producer → owner) or
// one key's fetch reply (owner → reader).
const (
	msgIdle    int8 = iota // not sent yet
	msgClean               // in flight, intact
	msgDamaged             // in flight, damaged (mode in the mode slot)
	msgDone                // delivered, rejected, or lost
)

// clusterState is one fleet state.
type clusterState struct {
	m  *ClusterM
	up []bool
	// disk[n*Keys+k]: node n's shard durably holds key k's verdict.
	disk []bool
	// produced[k]: key k's producer computed and locally committed.
	produced []bool
	// Offer and fetch message state, per key.
	offerPhase, offerMode []int8
	offerDst              []int8 // owner the producer addressed
	offerLanded           []bool // delivery committed on the dst
	fetchPhase, fetchMode []int8
	fetchSrc              []int8 // owner the reader asked
	fetchLanded           []bool
	crashes, damages      int8
	// views[n*Nodes+p] (Buggy only): node n believes peer p is up.
	views []bool
}

func (s *clusterState) clone() *clusterState {
	n := *s
	n.up = append([]bool(nil), s.up...)
	n.disk = append([]bool(nil), s.disk...)
	n.produced = append([]bool(nil), s.produced...)
	n.offerPhase = append([]int8(nil), s.offerPhase...)
	n.offerMode = append([]int8(nil), s.offerMode...)
	n.offerDst = append([]int8(nil), s.offerDst...)
	n.offerLanded = append([]bool(nil), s.offerLanded...)
	n.fetchPhase = append([]int8(nil), s.fetchPhase...)
	n.fetchMode = append([]int8(nil), s.fetchMode...)
	n.fetchSrc = append([]int8(nil), s.fetchSrc...)
	n.fetchLanded = append([]bool(nil), s.fetchLanded...)
	n.views = append([]bool(nil), s.views...)
	return &n
}

// ownerOf is the ownership decision node n makes for key k: the shipped
// rendezvous function over the static member list — or, in the Buggy
// variant, over the members node n currently believes are alive.
func (s *clusterState) ownerOf(n, k int) int {
	if !s.m.cfg.Buggy {
		return s.m.staticOwner[k]
	}
	var live []cluster.Member
	for p, mm := range s.m.members {
		if s.views[n*s.m.cfg.Nodes+p] {
			live = append(live, mm)
		}
	}
	return s.m.indexOf(cluster.Owner(live, s.m.keys[k]))
}

func appendBits(b []byte, bits []bool) []byte {
	for _, v := range bits {
		if v {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	}
	return b
}

func (s *clusterState) Key() string {
	b := make([]byte, 0, 64)
	b = appendBits(b, s.up)
	b = append(b, '|')
	b = appendBits(b, s.disk)
	b = append(b, '|')
	b = appendBits(b, s.produced)
	for k := range s.offerPhase {
		b = append(b, '|', byte('0'+s.offerPhase[k]), byte('0'+s.offerMode[k]),
			byte('0'+s.offerDst[k]), byte('0'+s.fetchPhase[k]), byte('0'+s.fetchMode[k]),
			byte('0'+s.fetchSrc[k]))
	}
	b = append(b, '|')
	b = appendBits(b, s.offerLanded)
	b = appendBits(b, s.fetchLanded)
	b = append(b, byte('0'+s.crashes), byte('0'+s.damages), '|')
	return string(appendBits(b, s.views))
}

func (s *clusterState) String() string {
	var b strings.Builder
	b.WriteString("up=[")
	for n, u := range s.up {
		if n > 0 {
			b.WriteByte(' ')
		}
		if u {
			fmt.Fprintf(&b, "n%d", n)
		} else {
			fmt.Fprintf(&b, "·%d", n)
		}
	}
	b.WriteString("] disk={")
	first := true
	for n := 0; n < s.m.cfg.Nodes; n++ {
		for k := 0; k < s.m.cfg.Keys; k++ {
			if s.disk[n*s.m.cfg.Keys+k] {
				if !first {
					b.WriteByte(' ')
				}
				first = false
				fmt.Fprintf(&b, "n%d:k%d", n, k)
			}
		}
	}
	b.WriteString("} msgs=[")
	phase := func(p, mode int8) string {
		switch p {
		case msgIdle:
			return "·"
		case msgClean:
			return "clean"
		case msgDamaged:
			return s.m.modes[mode].String()
		}
		return "done"
	}
	for k := range s.offerPhase {
		if k > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "k%d:offer=%s,fetch=%s", k,
			phase(s.offerPhase[k], s.offerMode[k]), phase(s.fetchPhase[k], s.fetchMode[k]))
	}
	fmt.Fprintf(&b, "] crashes=%d damages=%d", s.crashes, s.damages)
	if s.m.cfg.Buggy {
		b.WriteString(" views=")
		for n := 0; n < s.m.cfg.Nodes; n++ {
			if n > 0 {
				b.WriteByte(',')
			}
			for p := 0; p < s.m.cfg.Nodes; p++ {
				if s.views[n*s.m.cfg.Nodes+p] {
					b.WriteByte('1')
				} else {
					b.WriteByte('0')
				}
			}
		}
	}
	return b.String()
}

func (m *ClusterM) Name() string { return m.cfg.Name }

func (m *ClusterM) Init() []mc.State {
	s := &clusterState{
		m:           m,
		up:          make([]bool, m.cfg.Nodes),
		disk:        make([]bool, m.cfg.Nodes*m.cfg.Keys),
		produced:    make([]bool, m.cfg.Keys),
		offerPhase:  make([]int8, m.cfg.Keys),
		offerMode:   make([]int8, m.cfg.Keys),
		offerDst:    make([]int8, m.cfg.Keys),
		offerLanded: make([]bool, m.cfg.Keys),
		fetchPhase:  make([]int8, m.cfg.Keys),
		fetchMode:   make([]int8, m.cfg.Keys),
		fetchSrc:    make([]int8, m.cfg.Keys),
		fetchLanded: make([]bool, m.cfg.Keys),
	}
	for n := range s.up {
		s.up[n] = true
	}
	if m.cfg.Buggy {
		s.views = make([]bool, m.cfg.Nodes*m.cfg.Nodes)
		for i := range s.views {
			s.views[i] = true
		}
	}
	return []mc.State{s}
}

func (m *ClusterM) Actions(st mc.State) []mc.Action {
	s := st.(*clusterState)
	var acts []mc.Action

	for k := 0; k < m.cfg.Keys; k++ {
		k := k
		// Produce: the producer computes the verdict, commits it to its
		// own shard (write-through, before anything is acknowledged),
		// and addresses the forward to whoever IT thinks owns the key.
		if !s.produced[k] && s.up[m.producer[k]] {
			acts = append(acts, mc.Action{Name: fmt.Sprintf("k%d/produce", k), Next: func() mc.State {
				n := s.clone()
				n.produced[k] = true
				n.disk[m.producer[k]*m.cfg.Keys+k] = true
				dst := s.ownerOf(m.producer[k], k)
				if dst == m.producer[k] {
					n.offerPhase[k] = msgDone // self-owned: nothing to forward
				} else {
					n.offerPhase[k], n.offerDst[k] = msgClean, int8(dst)
				}
				return n
			}})
		}
		// The channel adversary damages an in-flight offer.
		if s.offerPhase[k] == msgClean && int(s.damages) < m.cfg.MaxDamage {
			for mi, mode := range m.modes {
				mi := mi
				acts = append(acts, mc.Action{Name: fmt.Sprintf("k%d/offer-damage/%s", k, mode), Next: func() mc.State {
					n := s.clone()
					n.offerPhase[k], n.offerMode[k] = msgDamaged, int8(mi)
					n.damages++
					return n
				}})
			}
		}
		// Deliver the offer: a down destination loses it (the sender
		// degrades — its local copy is the floor); an up destination
		// runs the production decode gate and commits only clean bytes.
		if s.offerPhase[k] == msgClean || s.offerPhase[k] == msgDamaged {
			acts = append(acts, mc.Action{Name: fmt.Sprintf("k%d/offer-deliver", k), Next: func() mc.State {
				n := s.clone()
				n.offerPhase[k] = msgDone
				dst := int(s.offerDst[k])
				if !s.up[dst] {
					return n
				}
				data := m.clean[k]
				if s.offerPhase[k] == msgDamaged {
					data = m.damaged[k][s.offerMode[k]]
				}
				if _, err := vcache.DecodeEntry(m.keys[k], data); err != nil {
					return n // rejected at the gate, never stored
				}
				n.disk[dst*m.cfg.Keys+k] = true
				n.offerLanded[k] = true
				return n
			}})
		}
		// Fetch: the reader asks whoever IT thinks owns the key. A down
		// or missing owner is an authoritative degrade (the reader cold
		// checks); a hit puts the reply bytes in flight.
		if s.produced[k] && s.fetchPhase[k] == msgIdle && s.up[m.reader[k]] {
			acts = append(acts, mc.Action{Name: fmt.Sprintf("k%d/fetch", k), Next: func() mc.State {
				n := s.clone()
				src := s.ownerOf(m.reader[k], k)
				if src == m.reader[k] || !s.up[src] || !s.disk[src*m.cfg.Keys+k] {
					n.fetchPhase[k] = msgDone
					return n
				}
				n.fetchPhase[k], n.fetchSrc[k] = msgClean, int8(src)
				return n
			}})
		}
		if s.fetchPhase[k] == msgClean && int(s.damages) < m.cfg.MaxDamage {
			for mi, mode := range m.modes {
				mi := mi
				acts = append(acts, mc.Action{Name: fmt.Sprintf("k%d/fetch-damage/%s", k, mode), Next: func() mc.State {
					n := s.clone()
					n.fetchPhase[k], n.fetchMode[k] = msgDamaged, int8(mi)
					n.damages++
					return n
				}})
			}
		}
		if s.fetchPhase[k] == msgClean || s.fetchPhase[k] == msgDamaged {
			acts = append(acts, mc.Action{Name: fmt.Sprintf("k%d/fetch-deliver", k), Next: func() mc.State {
				n := s.clone()
				n.fetchPhase[k] = msgDone
				rd := m.reader[k]
				if !s.up[rd] {
					return n
				}
				data := m.clean[k]
				if s.fetchPhase[k] == msgDamaged {
					data = m.damaged[k][s.fetchMode[k]]
				}
				if _, err := vcache.DecodeEntry(m.keys[k], data); err != nil {
					return n // corrupt reply is a miss: the reader degrades
				}
				n.disk[rd*m.cfg.Keys+k] = true
				n.fetchLanded[k] = true
				return n
			}})
		}
	}

	// Crash (bounded) and restart (free while down). Crash keeps the
	// disk slice untouched — that IS the durability contract.
	for nd := 0; nd < m.cfg.Nodes; nd++ {
		nd := nd
		if s.up[nd] && int(s.crashes) < m.cfg.MaxCrashes {
			acts = append(acts, mc.Action{Name: fmt.Sprintf("crash/n%d", nd), Next: func() mc.State {
				n := s.clone()
				n.up[nd] = false
				n.crashes++
				return n
			}})
		}
		if !s.up[nd] {
			acts = append(acts, mc.Action{Name: fmt.Sprintf("restart/n%d", nd), Next: func() mc.State {
				n := s.clone()
				n.up[nd] = true
				return n
			}})
		}
	}

	// Buggy only: a node's failure detector observes a peer's actual
	// state. Observations are per-node and unsynchronized — that lag is
	// exactly what lets two live nodes compute different owners.
	if m.cfg.Buggy {
		for nd := 0; nd < m.cfg.Nodes; nd++ {
			for p := 0; p < m.cfg.Nodes; p++ {
				nd, p := nd, p
				if nd == p || !s.up[nd] || s.views[nd*m.cfg.Nodes+p] == s.up[p] {
					continue
				}
				acts = append(acts, mc.Action{Name: fmt.Sprintf("n%d/observe/n%d", nd, p), Next: func() mc.State {
					n := s.clone()
					n.views[nd*m.cfg.Nodes+p] = s.up[p]
					return n
				}})
			}
		}
	}
	return acts
}

// Terminal: every key produced and every message resolved. (A state
// with unproduced keys always has produce, crash-budget, or restart
// actions enabled, so an actionless state satisfies this.)
func (m *ClusterM) Terminal(st mc.State) bool {
	s := st.(*clusterState)
	for k := 0; k < m.cfg.Keys; k++ {
		if !s.produced[k] || s.offerPhase[k] != msgDone || s.fetchPhase[k] != msgDone {
			return false
		}
	}
	return true
}

func (m *ClusterM) Invariants() []mc.Invariant {
	return []mc.Invariant{
		// The tentpole property: at every reachable state, every live
		// node computes the SAME owner for every fingerprint — ownership
		// is a pure function of (static member list, key), so there is
		// exactly one owner, fleet-wide, always. The Buggy variant
		// (ownership over node-local liveness views) violates this two
		// steps after a crash.
		{Name: "every-fingerprint-has-exactly-one-owner", Check: func(st mc.State) error {
			s := st.(*clusterState)
			for k := 0; k < m.cfg.Keys; k++ {
				owner := -1
				for n := 0; n < m.cfg.Nodes; n++ {
					if !s.up[n] {
						continue
					}
					got := s.ownerOf(n, k)
					if owner < 0 {
						owner = got
						continue
					}
					if got != owner {
						return fmt.Errorf("key %d: n%d says owner n%d but another live node says n%d",
							k, n, got, owner)
					}
				}
			}
			return nil
		}},
		// Content addressing makes staleness impossible *provided* the
		// decode gate holds: every shard copy decodes (with the shipped
		// codec) back to byte-identical canonical content, and every
		// damaged in-flight message MUST fail DecodeEntry — if any
		// damage mode slipped through, a corrupt forward could commit.
		{Name: "forwarded-verdict-never-stale", Check: func(st mc.State) error {
			s := st.(*clusterState)
			for k := 0; k < m.cfg.Keys; k++ {
				for n := 0; n < m.cfg.Nodes; n++ {
					if !s.disk[n*m.cfg.Keys+k] {
						continue
					}
					e, err := vcache.DecodeEntry(m.keys[k], m.clean[k])
					if err != nil {
						return fmt.Errorf("n%d key %d: committed copy fails decode: %v", n, k, err)
					}
					re, err := vcache.EncodeEntry(m.keys[k], e)
					if err != nil || !bytes.Equal(re, m.clean[k]) {
						return fmt.Errorf("n%d key %d: committed copy is not the canonical verdict", n, k)
					}
				}
				for _, msg := range []struct {
					phase, mode int8
					what        string
				}{
					{s.offerPhase[k], s.offerMode[k], "offer"},
					{s.fetchPhase[k], s.fetchMode[k], "fetch"},
				} {
					if msg.phase != msgDamaged {
						continue
					}
					if _, err := vcache.DecodeEntry(m.keys[k], m.damaged[k][msg.mode]); err == nil {
						return fmt.Errorf("key %d: %s damaged with %s would pass the decode gate and commit",
							k, msg.what, m.modes[msg.mode])
					}
				}
			}
			return nil
		}},
		// Durability: a verdict that was committed anywhere — by the
		// producer's write-through Put, a delivered forward, or a
		// warming fetch — is still on that node's disk at every later
		// state, crashes and restarts included.
		{Name: "no-committed-verdict-lost", Check: func(st mc.State) error {
			s := st.(*clusterState)
			for k := 0; k < m.cfg.Keys; k++ {
				if s.produced[k] && !s.disk[m.producer[k]*m.cfg.Keys+k] {
					return fmt.Errorf("key %d: producer n%d acked but its shard is empty", k, m.producer[k])
				}
				if s.offerLanded[k] && !s.disk[int(s.offerDst[k])*m.cfg.Keys+k] {
					return fmt.Errorf("key %d: delivered forward vanished from n%d", k, s.offerDst[k])
				}
				if s.fetchLanded[k] && !s.disk[m.reader[k]*m.cfg.Keys+k] {
					return fmt.Errorf("key %d: warmed copy vanished from reader n%d", k, m.reader[k])
				}
			}
			return nil
		}},
	}
}
