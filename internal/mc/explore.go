package mc

import (
	"fmt"
	"time"
)

// Options bound an exhaustive exploration.
type Options struct {
	// MaxStates caps distinct states (0 = DefaultMaxStates). Hitting
	// the cap stops exploration with Result.Truncated set — a truncated
	// "no violation" is NOT a proof at the configured scope.
	MaxStates int
	// MaxDepth caps the BFS depth (0 = unbounded). States at MaxDepth
	// are checked but not expanded; clipping sets Result.Truncated.
	MaxDepth int
	// NoDeadlock disables the implicit deadlock-freedom check.
	NoDeadlock bool
}

// DefaultMaxStates bounds explorations that did not choose a cap.
const DefaultMaxStates = 4_000_000

// Result summarizes one exploration.
type Result struct {
	// Model is the model's name.
	Model string
	// States counts distinct reachable states visited.
	States int
	// Transitions counts explored edges (including ones into already-
	// seen states).
	Transitions int
	// Depth is the largest BFS depth reached.
	Depth int
	// Truncated reports that MaxStates or MaxDepth clipped the search:
	// absence of a violation then says nothing about the full scope.
	Truncated bool
	// Duration is the exploration wall time.
	Duration time.Duration
	// Violation is the first (therefore shallowest) property failure,
	// or nil when every explored state satisfies every invariant.
	Violation *Violation
}

// bfsNode is the per-state bookkeeping the seen set retains: enough to
// reconstruct a shortest trace without retaining states themselves.
type bfsNode struct {
	parent fingerprint
	action string
	depth  int32
	init   bool
}

// Explore runs an exhaustive breadth-first search over m's reachable
// states, checking every invariant (and deadlock-freedom) at every
// state. BFS order guarantees the returned counterexample, if any, is
// a shortest one; within a depth, ties break by the deterministic
// enumeration order of Init and Actions, so the trace is replayable
// bit for bit. Memory holds the 32-byte fingerprint seen-set plus the
// current frontier's states.
func Explore(m Model, opts Options) (*Result, error) {
	if opts.MaxStates <= 0 {
		opts.MaxStates = DefaultMaxStates
	}
	// Wall-clock exploration time is reporting metadata only; it never
	// influences the search or its verdict.
	//lint:ignore determinism duration is reporting metadata, not search input
	start := time.Now()
	res := &Result{Model: m.Name()}

	type frontierEntry struct {
		s  State
		fp fingerprint
	}
	seen := make(map[fingerprint]bfsNode)
	inits := make(map[fingerprint]State)
	var frontier []frontierEntry

	finish := func() *Result {
		//lint:ignore determinism duration is reporting metadata, not search input
		res.Duration = time.Since(start)
		return res
	}

	for _, s := range m.Init() {
		fp := fingerprintOf(s.Key())
		if _, ok := seen[fp]; ok {
			continue
		}
		seen[fp] = bfsNode{depth: 0, init: true}
		inits[fp] = s
		frontier = append(frontier, frontierEntry{s, fp})
		res.States++
	}
	if len(frontier) == 0 {
		return nil, fmt.Errorf("mc: model %s has no initial states", m.Name())
	}

	invs := m.Invariants()
	depth := 0
	for len(frontier) > 0 {
		res.Depth = depth
		var next []frontierEntry
		for _, fe := range frontier {
			// Check every invariant at the state.
			for _, inv := range invs {
				if err := inv.Check(fe.s); err != nil {
					trace, terr := buildTrace(m, seen, inits, fe.fp)
					if terr != nil {
						return nil, terr
					}
					res.Violation = &Violation{Invariant: inv.Name, Detail: err.Error(), Trace: trace}
					return finish(), nil
				}
			}

			acts := m.Actions(fe.s)
			if len(acts) == 0 {
				if !opts.NoDeadlock && !m.Terminal(fe.s) {
					trace, terr := buildTrace(m, seen, inits, fe.fp)
					if terr != nil {
						return nil, terr
					}
					res.Violation = &Violation{
						Invariant: DeadlockInvariant,
						Detail:    "no action is enabled and the state is not a legitimate terminal state",
						Trace:     trace,
					}
					return finish(), nil
				}
				continue
			}
			if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
				res.Truncated = true
				continue
			}

			names := make(map[string]bool, len(acts))
			for _, a := range acts {
				if names[a.Name] {
					return nil, fmt.Errorf("mc: model %s: duplicate action name %q in state %s",
						m.Name(), a.Name, fe.s.Key())
				}
				names[a.Name] = true
				ns := a.Next()
				res.Transitions++
				nfp := fingerprintOf(ns.Key())
				if _, ok := seen[nfp]; ok {
					continue
				}
				if res.States >= opts.MaxStates {
					res.Truncated = true
					continue
				}
				seen[nfp] = bfsNode{parent: fe.fp, action: a.Name, depth: int32(depth + 1)}
				next = append(next, frontierEntry{ns, nfp})
				res.States++
			}
		}
		frontier = next
		depth++
	}
	return finish(), nil
}

// buildTrace reconstructs the unique seen-set path from an initial
// state to target, then replays it action by action to recover the
// intermediate state renderings (the seen set keeps only fingerprints,
// so states are re-derived through the model's own transitions).
func buildTrace(m Model, seen map[fingerprint]bfsNode, inits map[fingerprint]State, target fingerprint) (Trace, error) {
	// Walk parents back to an initial state.
	var actions []string
	fp := target
	for {
		node := seen[fp]
		if node.init {
			break
		}
		actions = append(actions, node.action)
		fp = node.parent
	}
	// Reverse into execution order.
	for i, j := 0, len(actions)-1; i < j; i, j = i+1, j-1 {
		actions[i], actions[j] = actions[j], actions[i]
	}

	s, ok := inits[fp]
	if !ok {
		return nil, fmt.Errorf("mc: trace reconstruction lost the initial state")
	}
	trace := Trace{{Action: "", State: s.String()}}
	for _, name := range actions {
		var nextState State
		for _, a := range m.Actions(s) {
			if a.Name == name {
				nextState = a.Next()
				break
			}
		}
		if nextState == nil {
			return nil, fmt.Errorf("mc: trace replay: action %q not enabled (model transitions are not deterministic?)", name)
		}
		s = nextState
		trace = append(trace, Step{Action: name, State: s.String()})
	}
	return trace, nil
}
