// Package mc is ENTANGLE's explicit-state model checker: a small,
// deterministic TLC-style engine in pure Go that exhaustively explores
// every reachable state of a bounded protocol model, checking safety
// invariants and deadlock-freedom at each one, and reporting the
// SHORTEST counterexample as a readable action script when a property
// fails. For depths beyond exhaustive reach, a seeded random-walk
// simulation mode samples long executions with the same invariants.
//
// The repo's concurrent protocols — the wavefront scheduler's
// dependency/taint bookkeeping, the verdict cache's atomic
// temp+rename disk discipline, and the daemon's admission/drain gate —
// rest on hand-written tests and the race detector, which only sample
// interleavings. Verified-systems repos close that gap with TLA+/TLC
// exhaustive checking plus long randomized simulation; this package is
// that layer, with one twist that TLA+ cannot offer: the models in
// internal/mc/models drive the *shipped Go transition code* (SchedCore,
// vcache.EncodeEntry/DecodeEntry, server.GateCore) rather than a
// parallel specification that could drift from it.
//
// Discipline for models:
//
//   - States are immutable values: an Action's Next must build a new
//     State and never mutate the one it was enabled in.
//   - Key() is a canonical encoding — equal protocol states must
//     produce equal keys however they were reached (same discipline as
//     internal/fingerprint: structure in, display metadata out). The
//     explorer fingerprints keys with SHA-256 and stores only the
//     32-byte digests, so state count, not state size, bounds memory.
//   - Action names must be unique within a state and deterministic:
//     they are how counterexample traces are replayed. The explorer
//     verifies uniqueness as it goes.
//   - Everything must be a pure function of the state: no wall clock,
//     no map-iteration dependence, no randomness (the determinism lint
//     check in internal/lint enforces the obvious offenders). This is
//     what makes every trace and every report replayable bit for bit.
package mc

import (
	"crypto/sha256"
	"fmt"
	"strings"
)

// State is one immutable protocol state.
type State interface {
	// Key returns the canonical encoding of the state. Two states are
	// the same state iff their keys are equal.
	Key() string
	// String renders the state for humans; it appears in traces.
	String() string
}

// Action is one enabled transition out of a state. Next is pure: it
// returns the successor without mutating the source state.
type Action struct {
	// Name identifies the action; unique within its state's enabled
	// set, stable across runs (traces replay by name).
	Name string
	// Next builds the successor state.
	Next func() State
}

// Invariant is a safety property checked at every explored state. A
// nil error means the property holds; a non-nil error describes the
// violation (it becomes the counterexample's detail line).
type Invariant struct {
	Name  string
	Check func(State) error
}

// Model is a bounded protocol specification.
type Model interface {
	// Name identifies the model in reports and the CLI.
	Name() string
	// Init returns the initial states (at least one).
	Init() []State
	// Actions returns the transitions enabled in s, in deterministic
	// order. An empty result makes s either terminal or a deadlock.
	Actions(s State) []Action
	// Invariants returns the safety properties, checked at every
	// state.
	Invariants() []Invariant
	// Terminal reports whether a state with no enabled actions is a
	// legitimate end state. A non-terminal state with no actions is a
	// deadlock, reported as a violation of "deadlock-free".
	Terminal(s State) bool
}

// DeadlockInvariant is the pseudo-invariant name under which deadlocks
// are reported.
const DeadlockInvariant = "deadlock-free"

// fingerprint is the 32-byte content address of a state key —
// internal/fingerprint's discipline applied to protocol states.
type fingerprint [sha256.Size]byte

func fingerprintOf(key string) fingerprint {
	return sha256.Sum256([]byte(key))
}

// Step is one entry of a counterexample trace: the action taken (empty
// for the initial state) and the rendering of the state it led to.
type Step struct {
	Action string
	State  string
}

// Trace is a counterexample execution, initial state first.
type Trace []Step

// Render formats the trace as a numbered action script:
//
//  0. ·                    <initial state>
//  1. w0/pick              <state>
//  2. w0/op0/panic         <state>
func (t Trace) Render() string {
	width := 1
	for _, s := range t {
		if len(s.Action) > width {
			width = len(s.Action)
		}
	}
	var b strings.Builder
	for i, s := range t {
		act := s.Action
		if act == "" {
			act = "·"
		}
		fmt.Fprintf(&b, "%3d. %-*s  %s\n", i, width, act, s.State)
	}
	return b.String()
}

// Violation reports one failed property with its witnessing execution.
type Violation struct {
	// Invariant is the failed property's name (DeadlockInvariant for a
	// deadlock).
	Invariant string
	// Detail is the invariant's error text.
	Detail string
	// Trace is the witnessing execution. From Explore it is a SHORTEST
	// such execution (BFS explores in depth order); from Simulate it is
	// the random walk's prefix, with no minimality guarantee.
	Trace Trace
}

func (v *Violation) String() string {
	return fmt.Sprintf("invariant %q violated: %s\n%s", v.Invariant, v.Detail, v.Trace.Render())
}
