package mc

import (
	"fmt"
	"time"
)

// SimOptions parameterize a random-walk simulation.
type SimOptions struct {
	// Seed drives every random choice. Two runs with the same seed,
	// model, and options visit identical executions.
	Seed uint64
	// Walks is how many independent walks to run (0 = 100).
	Walks int
	// MaxDepth bounds each walk's length (0 = 1000).
	MaxDepth int
	// TraceLimit caps how many trailing steps of a violating walk are
	// kept in the reported trace (0 = 200). Random-walk counterexamples
	// are not minimal; the tail is what matters.
	TraceLimit int
}

// SimResult summarizes one simulation.
type SimResult struct {
	Model string
	// Walks actually completed (a violation stops the run early).
	Walks int
	// Steps is the total number of transitions taken.
	Steps int
	// Distinct is the number of distinct states visited across walks.
	Distinct int
	// Deepest is the longest walk prefix reached.
	Deepest int
	// Duration is the total wall time; StatesPerSec = Steps/Duration.
	Duration     time.Duration
	StatesPerSec float64
	// Violation is the first property failure, with the violating
	// walk's trailing steps as its (non-minimal) trace.
	Violation *Violation
}

// prng is a splitmix64 generator. The model checker carries its own
// tiny PRNG instead of math/rand so the determinism contract is
// self-contained and the lint determinism check stays silent on this
// package's hot paths.
type prng struct{ s uint64 }

func (r *prng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform-ish value in [0, n). The modulo bias is
// irrelevant at simulation scales and keeps the generator branch-free.
func (r *prng) intn(n int) int { return int(r.next() % uint64(n)) }

// Simulate runs seeded random walks over m, checking every invariant
// (and deadlock-freedom) at every visited state. It samples depths far
// beyond exhaustive reach; it proves nothing, but a violation it finds
// is real, replayable from the same seed, and reported with the walk's
// trailing steps.
func Simulate(m Model, opts SimOptions) (*SimResult, error) {
	if opts.Walks <= 0 {
		opts.Walks = 100
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 1000
	}
	if opts.TraceLimit <= 0 {
		opts.TraceLimit = 200
	}
	// Wall-clock time is reporting metadata (states/sec) only; the
	// walks themselves are seed-deterministic.
	//lint:ignore determinism duration is reporting metadata, not walk input
	start := time.Now()
	res := &SimResult{Model: m.Name()}
	rng := &prng{s: opts.Seed}
	seen := make(map[fingerprint]struct{})
	invs := m.Invariants()

	inits := m.Init()
	if len(inits) == 0 {
		return nil, fmt.Errorf("mc: model %s has no initial states", m.Name())
	}

	finish := func() *SimResult {
		//lint:ignore determinism duration is reporting metadata, not walk input
		res.Duration = time.Since(start)
		if secs := res.Duration.Seconds(); secs > 0 {
			res.StatesPerSec = float64(res.Steps) / secs
		}
		return res
	}

	for walk := 0; walk < opts.Walks; walk++ {
		s := inits[rng.intn(len(inits))]
		trace := Trace{{Action: "", State: s.String()}}
		for step := 0; ; step++ {
			if step > res.Deepest {
				res.Deepest = step
			}
			fp := fingerprintOf(s.Key())
			if _, ok := seen[fp]; !ok {
				seen[fp] = struct{}{}
				res.Distinct = len(seen)
			}
			for _, inv := range invs {
				if err := inv.Check(s); err != nil {
					res.Violation = &Violation{Invariant: inv.Name, Detail: err.Error(), Trace: clip(trace, opts.TraceLimit)}
					return finish(), nil
				}
			}
			acts := m.Actions(s)
			if len(acts) == 0 {
				if !m.Terminal(s) {
					res.Violation = &Violation{
						Invariant: DeadlockInvariant,
						Detail:    "no action is enabled and the state is not a legitimate terminal state",
						Trace:     clip(trace, opts.TraceLimit),
					}
					return finish(), nil
				}
				break
			}
			if step >= opts.MaxDepth {
				break
			}
			a := acts[rng.intn(len(acts))]
			s = a.Next()
			res.Steps++
			trace = append(trace, Step{Action: a.Name, State: s.String()})
		}
		res.Walks++
	}
	return finish(), nil
}

// clip keeps the trailing limit steps of a trace, marking the cut.
func clip(t Trace, limit int) Trace {
	if len(t) <= limit {
		return t
	}
	out := Trace{{Action: "", State: fmt.Sprintf("… %d earlier steps elided …", len(t)-limit)}}
	return append(out, t[len(t)-limit:]...)
}
