package core

import (
	"errors"
	"strings"
	"testing"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// figure1 builds the paper's running example (Figures 1 and 2):
//
//	G_s: C = matmul(A, B); F = matsub(C, E)
//	G_d: per rank r∈{0,1}: C_r = matmul(A_r, B_r);
//	     D_0, D_1 = reduce-scatter(C_0, C_1) on dim 0;
//	     F_r = matsub(D_r, E_r)
//	R_i: A = concat(A1, A2, dim=1), B = concat(B1, B2, dim=0),
//	     E = concat(E0, E1, dim=0)
func figure1(t *testing.T) (*graph.Graph, *graph.Graph, *relation.Relation) {
	t.Helper()
	bs := graph.NewBuilder("Gs", nil)
	A := bs.Input("A", shape.Of(4, 8))
	B := bs.Input("B", shape.Of(8, 6))
	E := bs.Input("E", shape.Of(4, 6))
	C := bs.MatMul("matmul", A, B)
	F := bs.Sub("matsub", C, E)
	bs.Output(F)
	gs, err := bs.Build()
	if err != nil {
		t.Fatal(err)
	}

	bd := graph.NewBuilder("Gd", nil)
	A1 := bd.Input("A1", shape.Of(4, 4))
	A2 := bd.Input("A2", shape.Of(4, 4))
	B1 := bd.Input("B1", shape.Of(4, 6))
	B2 := bd.Input("B2", shape.Of(4, 6))
	E0 := bd.Input("E0", shape.Of(2, 6))
	E1 := bd.Input("E1", shape.Of(2, 6))
	C1 := bd.MatMul("r0/matmul", A1, B1)
	C2 := bd.MatMul("r1/matmul", A2, B2)
	D := bd.ReduceScatter("rs", 0, C1, C2)
	F1 := bd.Sub("r0/matsub", D[0], E0)
	F2 := bd.Sub("r1/matsub", D[1], E1)
	bd.Output(F1, F2)
	gd, err := bd.Build()
	if err != nil {
		t.Fatal(err)
	}

	ri := relation.New()
	gdT := func(name string) *expr.Term {
		tt, ok := gd.TensorByName(name)
		if !ok {
			t.Fatalf("missing gd tensor %q", name)
		}
		return relation.GdLeaf(tt)
	}
	gsID := func(name string) graph.TensorID {
		tt, ok := gs.TensorByName(name)
		if !ok {
			t.Fatalf("missing gs tensor %q", name)
		}
		return tt.ID
	}
	ri.Add(gsID("A"), expr.ConcatI(1, gdT("A1"), gdT("A2")))
	ri.Add(gsID("B"), expr.ConcatI(0, gdT("B1"), gdT("B2")))
	ri.Add(gsID("E"), expr.ConcatI(0, gdT("E0"), gdT("E1")))
	return gs, gd, ri
}

func TestFigure1Refines(t *testing.T) {
	gs, gd, ri := figure1(t)
	report, err := NewChecker(Options{}).Check(gs, gd, ri)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	f, _ := gs.TensorByName("matsub.out")
	maps := report.OutputRelation.Get(f.ID)
	if len(maps) == 0 {
		t.Fatal("no output mapping for F")
	}
	want := "concat(rs.out0, rs.out1"
	found := false
	for _, m := range maps {
		if strings.Contains(m.String(), "r0/matsub.out") || strings.Contains(m.String(), "concat") {
			found = true
		}
		t.Logf("F = %s", m)
	}
	if !found {
		t.Fatalf("expected a concat mapping, got %v (hint %s)", maps, want)
	}
	// The paper's R_F: F = concat(F1, F2, dim=0).
	wantTerm := "concat(r0/matsub.out, r1/matsub.out, dim=0)"
	ok := false
	for _, m := range maps {
		if m.String() == wantTerm {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("expected %q among mappings %v", wantTerm, maps)
	}
	if !report.OutputRelation.Complete(gs.Outputs) {
		t.Fatal("output relation must be complete")
	}
	if report.OpsProcessed != 2 {
		t.Fatalf("ops processed %d", report.OpsProcessed)
	}
}

func TestFigure1IntermediateMappings(t *testing.T) {
	// §4.1: R_C should contain both sum(C1, C2) and concat(D1, D2).
	gs, gd, ri := figure1(t)
	report, err := NewChecker(Options{}).Check(gs, gd, ri)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := gs.TensorByName("matmul.out")
	var strs []string
	for _, m := range report.FullRelation.Get(c.ID) {
		strs = append(strs, m.String())
	}
	joined := strings.Join(strs, " | ")
	if !strings.Contains(joined, "sum(r0/matmul.out, r1/matmul.out)") {
		t.Fatalf("R_C missing sum(C1, C2): %s", joined)
	}
	if !strings.Contains(joined, "concat(rs.out0, rs.out1, dim=0)") {
		t.Fatalf("R_C missing concat(D1, D2): %s", joined)
	}
}

func TestFigure1FrontierExcludesUnrelated(t *testing.T) {
	// With the frontier enabled, results must match the unoptimized
	// checker (the paper argues the optimization only prunes work).
	gs, gd, ri := figure1(t)
	r1, err := NewChecker(Options{}).Check(gs, gd, ri)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewChecker(Options{DisableFrontier: true}).Check(gs, gd, ri)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := gs.TensorByName("matsub.out")
	if len(r1.OutputRelation.Get(f.ID)) == 0 || len(r2.OutputRelation.Get(f.ID)) == 0 {
		t.Fatal("both variants must find mappings")
	}
}

func TestBuggedFigure1Fails(t *testing.T) {
	// Break the distributed implementation: rank 1 subtracts E0
	// instead of E1 (an offset bug). Refinement must fail AND localize
	// to the matsub operator.
	bs := graph.NewBuilder("Gs", nil)
	A := bs.Input("A", shape.Of(4, 8))
	B := bs.Input("B", shape.Of(8, 6))
	E := bs.Input("E", shape.Of(4, 6))
	C := bs.MatMul("matmul", A, B)
	F := bs.Sub("matsub", C, E)
	bs.Output(F)
	gs := bs.MustBuild()

	bd := graph.NewBuilder("Gd", nil)
	A1 := bd.Input("A1", shape.Of(4, 4))
	A2 := bd.Input("A2", shape.Of(4, 4))
	B1 := bd.Input("B1", shape.Of(4, 6))
	B2 := bd.Input("B2", shape.Of(4, 6))
	E0 := bd.Input("E0", shape.Of(2, 6))
	E1 := bd.Input("E1", shape.Of(2, 6))
	_ = E1
	C1 := bd.MatMul("r0/matmul", A1, B1)
	C2 := bd.MatMul("r1/matmul", A2, B2)
	D := bd.ReduceScatter("rs", 0, C1, C2)
	F1 := bd.Sub("r0/matsub", D[0], E0)
	F2 := bd.Sub("r1/matsub", D[1], E0) // BUG: should be E1
	bd.Output(F1, F2)
	gd := bd.MustBuild()

	ri := relation.New()
	gdT := func(name string) *expr.Term {
		tt, _ := gd.TensorByName(name)
		return relation.GdLeaf(tt)
	}
	aT, _ := gs.TensorByName("A")
	bT, _ := gs.TensorByName("B")
	eT, _ := gs.TensorByName("E")
	ri.Add(aT.ID, expr.ConcatI(1, gdT("A1"), gdT("A2")))
	ri.Add(bT.ID, expr.ConcatI(0, gdT("B1"), gdT("B2")))
	ri.Add(eT.ID, expr.ConcatI(0, gdT("E0"), gdT("E1")))

	_, err := NewChecker(Options{}).Check(gs, gd, ri)
	if err == nil {
		t.Fatal("bugged implementation must fail refinement")
	}
	var re *RefinementError
	if !errors.As(err, &re) {
		t.Fatalf("want RefinementError, got %T: %v", err, err)
	}
	if re.Op.Label != "matsub" {
		t.Fatalf("bug localized to %q, want matsub", re.Op.Label)
	}
	if !strings.Contains(re.Error(), "input relations") {
		t.Fatal("error should render input relations for debugging")
	}
}

func TestReplicatedInputs(t *testing.T) {
	// Column-parallel linear: X replicated on both ranks, W split by
	// columns; G_d outputs the two column shards.
	bs := graph.NewBuilder("Gs", nil)
	X := bs.Input("X", shape.Of(4, 8))
	W := bs.Input("W", shape.Of(8, 6))
	Y := bs.MatMul("linear", X, W)
	bs.Output(Y)
	gs := bs.MustBuild()

	bd := graph.NewBuilder("Gd", nil)
	X0 := bd.Input("r0/X", shape.Of(4, 8))
	X1 := bd.Input("r1/X", shape.Of(4, 8))
	W0 := bd.Input("r0/W", shape.Of(8, 3))
	W1 := bd.Input("r1/W", shape.Of(8, 3))
	Y0 := bd.MatMul("r0/linear", X0, W0)
	Y1 := bd.MatMul("r1/linear", X1, W1)
	bd.Output(Y0, Y1)
	gd := bd.MustBuild()

	ri := relation.New()
	gdT := func(name string) *expr.Term {
		tt, _ := gd.TensorByName(name)
		return relation.GdLeaf(tt)
	}
	xT, _ := gs.TensorByName("X")
	wT, _ := gs.TensorByName("W")
	// X is replicated: two mappings (the paper: "a relation might
	// provide several mappings for the same tensor").
	ri.Add(xT.ID, gdT("r0/X"))
	ri.Add(xT.ID, gdT("r1/X"))
	ri.Add(wT.ID, expr.ConcatI(1, gdT("r0/W"), gdT("r1/W")))

	report, err := NewChecker(Options{}).Check(gs, gd, ri)
	if err != nil {
		t.Fatal(err)
	}
	yT, _ := gs.TensorByName("linear.out")
	maps := report.OutputRelation.Get(yT.ID)
	want := "concat(r0/linear.out, r1/linear.out, dim=1)"
	found := false
	for _, m := range maps {
		if m.String() == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("want %q among %v", want, maps)
	}
}

func TestAllReduceRowParallel(t *testing.T) {
	// Row-parallel linear with all-reduce: X split on cols, W split on
	// rows; all-reduce combines partials; both rank outputs replicate Y.
	bs := graph.NewBuilder("Gs", nil)
	X := bs.Input("X", shape.Of(4, 8))
	W := bs.Input("W", shape.Of(8, 6))
	Y := bs.MatMul("linear", X, W)
	bs.Output(Y)
	gs := bs.MustBuild()

	bd := graph.NewBuilder("Gd", nil)
	X0 := bd.Input("r0/X", shape.Of(4, 4))
	X1 := bd.Input("r1/X", shape.Of(4, 4))
	W0 := bd.Input("r0/W", shape.Of(4, 6))
	W1 := bd.Input("r1/W", shape.Of(4, 6))
	P0 := bd.MatMul("r0/partial", X0, W0)
	P1 := bd.MatMul("r1/partial", X1, W1)
	Y01 := bd.AllReduce("ar", P0, P1)
	bd.Output(Y01...)
	gd := bd.MustBuild()

	ri := relation.New()
	gdT := func(name string) *expr.Term {
		tt, _ := gd.TensorByName(name)
		return relation.GdLeaf(tt)
	}
	xT, _ := gs.TensorByName("X")
	wT, _ := gs.TensorByName("W")
	ri.Add(xT.ID, expr.ConcatI(1, gdT("r0/X"), gdT("r1/X")))
	ri.Add(wT.ID, expr.ConcatI(0, gdT("r0/W"), gdT("r1/W")))

	report, err := NewChecker(Options{}).Check(gs, gd, ri)
	if err != nil {
		t.Fatal(err)
	}
	yT, _ := gs.TensorByName("linear.out")
	maps := report.OutputRelation.Get(yT.ID)
	if len(maps) == 0 {
		t.Fatal("no mapping for Y")
	}
	// The simplest mapping should be a bare all-reduce output.
	if got := maps[0].String(); got != "ar.out0" && got != "ar.out1" {
		t.Fatalf("simplest mapping %q, want a bare ar output", got)
	}
}

func TestMissingAllReduceOutputStillClean(t *testing.T) {
	// Omitting the all-reduce at the *graph output* is still a clean
	// refinement per §3.2 — reductions are allowed in clean
	// expressions, so Y = sum(P0, P1) is a valid mapping. The paper's
	// bug 7 only manifests when a later operator consumes the
	// unsummed partials (TestMissingAllReduceDownstreamFails).
	bs := graph.NewBuilder("Gs", nil)
	X := bs.Input("X", shape.Of(4, 8))
	W := bs.Input("W", shape.Of(8, 6))
	Y := bs.MatMul("linear", X, W)
	bs.Output(Y)
	gs := bs.MustBuild()

	bd := graph.NewBuilder("Gd", nil)
	X0 := bd.Input("r0/X", shape.Of(4, 4))
	X1 := bd.Input("r1/X", shape.Of(4, 4))
	W0 := bd.Input("r0/W", shape.Of(4, 6))
	W1 := bd.Input("r1/W", shape.Of(4, 6))
	P0 := bd.MatMul("r0/partial", X0, W0)
	P1 := bd.MatMul("r1/partial", X1, W1)
	bd.Output(P0, P1)
	gd := bd.MustBuild()

	ri := relation.New()
	gdT := func(name string) *expr.Term {
		tt, _ := gd.TensorByName(name)
		return relation.GdLeaf(tt)
	}
	xT, _ := gs.TensorByName("X")
	wT, _ := gs.TensorByName("W")
	ri.Add(xT.ID, expr.ConcatI(1, gdT("r0/X"), gdT("r1/X")))
	ri.Add(wT.ID, expr.ConcatI(0, gdT("r0/W"), gdT("r1/W")))

	report, err := NewChecker(Options{}).Check(gs, gd, ri)
	if err != nil {
		t.Fatalf("sum of partials is clean, must refine: %v", err)
	}
	yT, _ := gs.TensorByName("linear.out")
	got := report.OutputRelation.Get(yT.ID)
	if len(got) == 0 || got[0].String() != "sum(r0/partial.out, r1/partial.out)" {
		t.Fatalf("want sum mapping, got %v", got)
	}
}

func TestMissingAllReduceDownstreamFails(t *testing.T) {
	// §6.2 bug 7: the missing all-reduce is consumed by a subsequent
	// parallel matmul; Z = (X·W)·B cannot be reconstructed because
	// cross terms like X0·W0·B1 were never computed.
	bs := graph.NewBuilder("Gs", nil)
	X := bs.Input("X", shape.Of(4, 8))
	W := bs.Input("W", shape.Of(8, 6))
	B := bs.Input("B", shape.Of(6, 2))
	Y := bs.MatMul("linear", X, W)
	Z := bs.MatMul("proj", Y, B)
	bs.Output(Z)
	gs := bs.MustBuild()

	bd := graph.NewBuilder("Gd", nil)
	X0 := bd.Input("r0/X", shape.Of(4, 4))
	X1 := bd.Input("r1/X", shape.Of(4, 4))
	W0 := bd.Input("r0/W", shape.Of(4, 6))
	W1 := bd.Input("r1/W", shape.Of(4, 6))
	// B is column-partitioned across ranks (as in the Megatron issue).
	B0 := bd.Input("r0/B", shape.Of(6, 1))
	B1 := bd.Input("r1/B", shape.Of(6, 1))
	P0 := bd.MatMul("r0/partial", X0, W0)
	P1 := bd.MatMul("r1/partial", X1, W1)
	// BUG: no all-reduce before the projection, so each rank projects
	// its raw partial; the cross terms P1·B0 and P0·B1 never exist.
	Z0 := bd.MatMul("r0/proj", P0, B0)
	Z1 := bd.MatMul("r1/proj", P1, B1)
	Zg := bd.AllGather("ag", 1, Z0, Z1)
	bd.Output(Zg...)
	gd := bd.MustBuild()

	ri := relation.New()
	gdT := func(name string) *expr.Term {
		tt, _ := gd.TensorByName(name)
		return relation.GdLeaf(tt)
	}
	xT, _ := gs.TensorByName("X")
	wT, _ := gs.TensorByName("W")
	bT, _ := gs.TensorByName("B")
	ri.Add(xT.ID, expr.ConcatI(1, gdT("r0/X"), gdT("r1/X")))
	ri.Add(wT.ID, expr.ConcatI(0, gdT("r0/W"), gdT("r1/W")))
	ri.Add(bT.ID, expr.ConcatI(1, gdT("r0/B"), gdT("r1/B")))

	_, err := NewChecker(Options{}).Check(gs, gd, ri)
	var re *RefinementError
	if !errors.As(err, &re) {
		t.Fatalf("want RefinementError, got %v", err)
	}
	if re.Op.Label != "proj" {
		t.Fatalf("bug localized to %q, want proj (the consuming matmul, as in the paper)", re.Op.Label)
	}
}

func TestMissingInputMapping(t *testing.T) {
	gs, gd, _ := figure1(t)
	_, err := NewChecker(Options{}).Check(gs, gd, relation.New())
	if err == nil || !strings.Contains(err.Error(), "no mapping") {
		t.Fatalf("want missing-input error, got %v", err)
	}
}

func TestExpectationHolds(t *testing.T) {
	gs, gd, ri := figure1(t)
	fT, _ := gs.TensorByName("matsub.out")
	f1, _ := gd.TensorByName("r0/matsub.out")
	f2, _ := gd.TensorByName("r1/matsub.out")
	e := Expectation{
		Fs: relation.GsLeaf(fT),
		Fd: expr.ConcatI(0, relation.GdLeaf(f1), relation.GdLeaf(f2)),
	}
	if err := NewChecker(Options{}).CheckExpectation(gs, gd, ri, e); err != nil {
		t.Fatalf("expectation should hold: %v", err)
	}
}

func TestExpectationViolated(t *testing.T) {
	gs, gd, ri := figure1(t)
	fT, _ := gs.TensorByName("matsub.out")
	f1, _ := gd.TensorByName("r0/matsub.out")
	f2, _ := gd.TensorByName("r1/matsub.out")
	// Wrong expectation: concat on dim 1 instead of 0.
	e := Expectation{
		Fs: relation.GsLeaf(fT),
		Fd: expr.ConcatI(1, relation.GdLeaf(f1), relation.GdLeaf(f2)),
	}
	err := NewChecker(Options{}).CheckExpectation(gs, gd, ri, e)
	if err == nil {
		t.Fatal("wrong expectation must be rejected")
	}
}

func TestSymbolicShapesRefine(t *testing.T) {
	// Sequence length S is symbolic with S = 2·Sh; the checker must
	// still prove refinement of a seq-split elementwise op.
	ctx := sym.NewContext()
	S, Sh := sym.Var("S"), sym.Var("Sh")
	ctx.AssumePositive("Sh")
	ctx.AssumeEQ(S, Sh.MulConst(2))

	bs := graph.NewBuilder("Gs", ctx.Clone())
	X := bs.Input("X", shape.Shape{S, sym.Const(8)})
	Y := bs.Unary("act", "gelu", X)
	bs.Output(Y)
	gs := bs.MustBuild()

	bd := graph.NewBuilder("Gd", ctx.Clone())
	X0 := bd.Input("r0/X", shape.Shape{Sh, sym.Const(8)})
	X1 := bd.Input("r1/X", shape.Shape{Sh, sym.Const(8)})
	Y0 := bd.Unary("r0/act", "gelu", X0)
	Y1 := bd.Unary("r1/act", "gelu", X1)
	bd.Output(Y0, Y1)
	gd := bd.MustBuild()

	ri := relation.New()
	gdT := func(name string) *expr.Term {
		tt, _ := gd.TensorByName(name)
		return relation.GdLeaf(tt)
	}
	xT, _ := gs.TensorByName("X")
	ri.Add(xT.ID, expr.ConcatI(0, gdT("r0/X"), gdT("r1/X")))

	report, err := NewChecker(Options{}).Check(gs, gd, ri)
	if err != nil {
		t.Fatal(err)
	}
	yT, _ := gs.TensorByName("act.out")
	if len(report.OutputRelation.Get(yT.ID)) == 0 {
		t.Fatal("symbolic refinement failed")
	}
}
