package core

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"entangle/internal/egraph"
	"entangle/internal/graph"
	"entangle/internal/lemmas"
	"entangle/internal/models"
	"entangle/internal/vcache"
)

func openCache(t *testing.T) *vcache.Cache {
	t.Helper()
	c, err := vcache.Open(vcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheWarmRunIdentical is the cache's core contract: a warm run
// replays every verdict without saturating anything, and the resulting
// report is byte-identical to the cold run — same relations, same
// aggregate stats, same verdicts.
func TestCacheWarmRunIdentical(t *testing.T) {
	b, err := models.GPT(models.Options{TP: 2, SP: true})
	if err != nil {
		t.Fatal(err)
	}
	cache := openCache(t)
	reg := lemmas.Default()
	checker := NewChecker(Options{Registry: reg, Cache: cache})

	cold, err := checker.Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if cold.Cache.Hits != 0 {
		t.Fatalf("cold run hit the cache: %+v", cold.Cache)
	}
	if cold.Cache.Stores == 0 {
		t.Fatalf("cold run stored nothing: %+v", cold.Cache)
	}
	if cold.LiveStats.Iterations == 0 {
		t.Fatal("cold run recorded no live saturation work")
	}

	warm, err := checker.Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.Cache.Misses != 0 || warm.Cache.ReplayRejects != 0 {
		t.Fatalf("warm run missed: %+v", warm.Cache)
	}
	if int(warm.Cache.Hits) != warm.OpsProcessed {
		t.Fatalf("warm hits %d, want one per operator (%d)", warm.Cache.Hits, warm.OpsProcessed)
	}
	// The acceptance signal: no operator was re-saturated.
	if warm.LiveStats.Iterations != 0 {
		t.Fatalf("warm run re-saturated: LiveStats %+v", warm.LiveStats)
	}
	assertReportsMatch(t, b, cold, warm)

	// The stored stats replay into the aggregate, so Stats matches a
	// cache-disabled run too.
	plain, err := NewChecker(Options{Registry: reg}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatalf("cache-disabled: %v", err)
	}
	assertReportsMatch(t, b, plain, warm)
}

// TestCacheWarmAcrossWorkers replays a warm cache at several worker
// counts: the report must stay byte-identical — replay preserves the
// relation's insertion order, and stats merge in topo order.
func TestCacheWarmAcrossWorkers(t *testing.T) {
	b, err := models.SeedMoE(models.Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	cache := openCache(t)
	reg := lemmas.Default()
	cold, err := NewChecker(Options{Registry: reg, Cache: cache, Workers: 1}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	for _, workers := range []int{1, 4, 8} {
		warm, err := NewChecker(Options{Registry: reg, Cache: cache, Workers: workers}).Check(b.Gs, b.Gd, b.Ri)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if warm.LiveStats.Iterations != 0 {
			t.Fatalf("workers=%d re-saturated: %+v", workers, warm.LiveStats)
		}
		assertReportsMatch(t, b, cold, warm)
	}
}

// TestCacheDiskPersistence reopens the cache directory with a fresh
// Cache (cold memory): the warm run must be served from disk.
func TestCacheDiskPersistence(t *testing.T) {
	b, err := models.Llama(models.Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c1, err := vcache.Open(vcache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	reg := lemmas.Default()
	cold, err := NewChecker(Options{Registry: reg, Cache: c1}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	c2, err := vcache.Open(vcache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewChecker(Options{Registry: reg, Cache: c2}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.LiveStats.Iterations != 0 || warm.Cache.Misses != 0 {
		t.Fatalf("disk reopen not warm: live %+v cache %+v", warm.LiveStats, warm.Cache)
	}
	if c2.Stats().Snapshot().DiskHits == 0 {
		t.Fatal("expected disk hits on a fresh in-memory cache")
	}
	assertReportsMatch(t, b, cold, warm)
}

// TestCacheDisprovedReplay caches a Disproved verdict: a warm run on a
// buggy model must report the exact same failure without saturating.
func TestCacheDisprovedReplay(t *testing.T) {
	b, err := models.GPT(models.Options{TP: 2, Bug: models.Bug7MissingAllReduce})
	if err != nil {
		t.Fatal(err)
	}
	cache := openCache(t)
	reg := lemmas.Default()
	checker := NewChecker(Options{Registry: reg, Cache: cache, KeepGoing: true})

	coldRep, coldErr := checker.Check(b.Gs, b.Gd, b.Ri)
	if coldErr == nil {
		t.Fatal("buggy model verified")
	}
	warmRep, warmErr := checker.Check(b.Gs, b.Gd, b.Ri)
	if warmErr == nil {
		t.Fatal("buggy model verified on warm cache")
	}
	if warmErr.Error() != coldErr.Error() {
		t.Fatalf("warm error differs:\n--- cold ---\n%s\n--- warm ---\n%s", coldErr, warmErr)
	}
	var re *RefinementError
	if !errors.As(warmErr, &re) {
		t.Fatalf("warm error is not a RefinementError: %v", warmErr)
	}
	if got, want := warmRep.RenderFailures(), coldRep.RenderFailures(); got != want {
		t.Fatalf("failure renderings differ:\n--- cold ---\n%s\n--- warm ---\n%s", want, got)
	}
	if warmRep.Cache.Hits == 0 {
		t.Fatalf("warm buggy run never hit: %+v", warmRep.Cache)
	}
	if warmRep.LiveStats.Iterations != 0 {
		t.Fatalf("warm buggy run re-saturated: %+v", warmRep.LiveStats)
	}
}

// TestCacheAmbientInvalidation changes a budget-relevant option: the
// ambient digest must change, so nothing from the first run is reused.
func TestCacheAmbientInvalidation(t *testing.T) {
	b, err := models.Regression(models.Options{GradAccum: 2})
	if err != nil {
		t.Fatal(err)
	}
	cache := openCache(t)
	reg := lemmas.Default()
	if _, err := NewChecker(Options{Registry: reg, Cache: cache}).Check(b.Gs, b.Gd, b.Ri); err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(Options{Registry: reg, Cache: cache, MaxMappings: 17}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache.Hits != 0 {
		t.Fatalf("changed options must not reuse verdicts: %+v", rep.Cache)
	}
}

// TestCachePreOpOverrideBypasses ensures a PreOp budget override skips
// the cache in both directions: the overridden run neither poisons the
// store with small-budget verdicts nor consumes entries keyed by the
// base budget.
func TestCachePreOpOverrideBypasses(t *testing.T) {
	b, err := models.Regression(models.Options{GradAccum: 2})
	if err != nil {
		t.Fatal(err)
	}
	cache := openCache(t)
	reg := lemmas.Default()
	override := egraph.SaturateOpts{MaxIters: 24, MaxNodes: 60_000}
	checker := NewChecker(Options{Registry: reg, Cache: cache,
		PreOp: func(v *graph.Node) *egraph.SaturateOpts { return &override }})
	rep, err := checker.Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache.Hits != 0 || rep.Cache.Misses != 0 || rep.Cache.Stores != 0 {
		t.Fatalf("overridden operators touched the cache: %+v", rep.Cache)
	}
}

// TestCacheCorruptStoreIsSafe damages every on-disk entry: the next run
// must classify them all as misses and still produce a report identical
// to a cache-disabled run.
func TestCacheCorruptStoreIsSafe(t *testing.T) {
	b, err := models.GPT(models.Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c1, err := vcache.Open(vcache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	reg := lemmas.Default()
	if _, err := NewChecker(Options{Registry: reg, Cache: c1}).Check(b.Gs, b.Gd, b.Ri); err != nil {
		t.Fatal(err)
	}
	damaged := 0
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if len(data) > 0 {
			data[len(data)/2] ^= 0x20
		}
		damaged++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil || damaged == 0 {
		t.Fatalf("damaging store: %v (%d files)", err, damaged)
	}
	// Fresh cache over the damaged directory: cold memory forces every
	// lookup through the corrupt files.
	c2, err := vcache.Open(vcache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(Options{Registry: reg, Cache: c2}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatalf("check over corrupt store: %v", err)
	}
	if rep.Cache.Hits != 0 {
		t.Fatalf("corrupt entries served: %+v", rep.Cache)
	}
	if rep.Cache.Corrupt == 0 {
		t.Fatalf("corruption not counted: %+v", rep.Cache)
	}
	plain, err := NewChecker(Options{Registry: reg}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatal(err)
	}
	assertReportsMatch(t, b, plain, rep)
}

// assertReportsMatch compares the schedule- and cache-invariant parts
// of two successful reports byte for byte.
func assertReportsMatch(t *testing.T, b *models.Built, want, got *Report) {
	t.Helper()
	if gw, ww := got.OutputRelation.Render(b.Gs), want.OutputRelation.Render(b.Gs); gw != ww {
		t.Errorf("output relations differ:\n--- want ---\n%s\n--- got ---\n%s", ww, gw)
	}
	if gw, ww := got.FullRelation.Render(b.Gs), want.FullRelation.Render(b.Gs); gw != ww {
		t.Errorf("full relations differ:\n--- want ---\n%s\n--- got ---\n%s", ww, gw)
	}
	if got.OpsProcessed != want.OpsProcessed {
		t.Errorf("OpsProcessed %d want %d", got.OpsProcessed, want.OpsProcessed)
	}
	if got.Stats.Iterations != want.Stats.Iterations ||
		got.Stats.Runs != want.Stats.Runs ||
		got.Stats.Saturated != want.Stats.Saturated {
		t.Errorf("aggregate stats differ: want %+v got %+v", want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(got.Stats.Applications, want.Stats.Applications) {
		t.Errorf("lemma application counts differ:\n  want: %v\n  got:  %v",
			statLines(want.Stats.Applications), statLines(got.Stats.Applications))
	}
	if len(got.Verdicts) != len(want.Verdicts) {
		t.Fatalf("verdict counts differ: want %d got %d", len(want.Verdicts), len(got.Verdicts))
	}
	for i := range want.Verdicts {
		if got.Verdicts[i].Kind != want.Verdicts[i].Kind ||
			got.Verdicts[i].Escalations != want.Verdicts[i].Escalations {
			t.Errorf("verdict %d differs: want %+v got %+v", i, want.Verdicts[i], got.Verdicts[i])
		}
	}
}
