package core

import (
	"fmt"
	"time"

	"entangle/internal/graph"
)

// VerdictKind classifies the outcome of one operator's check. The
// paper's checker has a single failure mode — the first RefinementError
// aborts the walk — which conflates "refinement disproved" with
// "search budget exhausted, result unknown". The verdict lattice keeps
// those apart (GraphGuard-style graceful degradation: report partial
// results instead of aborting; the ecta line of work treats budget
// exhaustion in entangled search spaces as a first-class outcome).
type VerdictKind int

const (
	// VerdictRefined: a complete clean mapping of the operator's
	// outputs was found; refinement holds locally.
	VerdictRefined VerdictKind = iota
	// VerdictDisproved: saturation reached fixpoint and no clean
	// mapping exists — the e-graph enumerated every derivable
	// equivalence, so more budget cannot change the answer. This is
	// the paper's genuine bug-localization outcome.
	VerdictDisproved
	// VerdictInconclusive: the search stopped on a budget or deadline
	// before reaching fixpoint; a mapping may exist beyond the limit.
	// OpVerdict.Reason says which limit bit.
	VerdictInconclusive
	// VerdictEngineFault: the operator's check panicked (a buggy
	// lemma, observer, or injected fault); the panic was recovered on
	// the worker and converted into this structured failure.
	VerdictEngineFault
	// VerdictSkipped: the operator sits in the downstream cone of a
	// failed operator and was not checked (KeepGoing mode only — its
	// input mappings are incomplete, so any verdict would be noise).
	VerdictSkipped
)

func (k VerdictKind) String() string {
	switch k {
	case VerdictRefined:
		return "refined"
	case VerdictDisproved:
		return "disproved"
	case VerdictInconclusive:
		return "inconclusive"
	case VerdictEngineFault:
		return "engine-fault"
	case VerdictSkipped:
		return "skipped"
	}
	return fmt.Sprintf("VerdictKind(%d)", int(k))
}

// InconclusiveReason says which limit stopped an inconclusive check.
type InconclusiveReason int

const (
	// ReasonNone: the verdict is not inconclusive.
	ReasonNone InconclusiveReason = iota
	// ReasonBudgetExhausted: MaxNodes/MaxIters hit (after every
	// configured budget escalation).
	ReasonBudgetExhausted
	// ReasonTimeout: the per-operator deadline (Options.OpTimeout)
	// expired mid-search.
	ReasonTimeout
)

func (r InconclusiveReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonBudgetExhausted:
		return "budget-exhausted"
	case ReasonTimeout:
		return "timeout"
	}
	return fmt.Sprintf("InconclusiveReason(%d)", int(r))
}

// OpVerdict is one operator's classified outcome.
type OpVerdict struct {
	// Op is the G_s operator checked (or skipped).
	Op *graph.Node
	// Kind classifies the outcome.
	Kind VerdictKind
	// Reason qualifies VerdictInconclusive.
	Reason InconclusiveReason
	// Err carries the failure detail: *RefinementError for disproved
	// and budget-inconclusive operators, *EngineFaultError for
	// recovered panics, nil for refined and skipped operators.
	Err error
	// Escalations counts the budget-escalation retries this operator
	// consumed before the verdict was reached.
	Escalations int
	// Replayed marks a verdict reconstructed from the verdict cache
	// rather than computed by a live saturation. Like Duration it is
	// excluded from Describe — a warm report renders byte-identically
	// to the cold one — but DeltaReport reads it to count how much of a
	// diff run was replayed.
	Replayed bool
	// Duration is the operator's total check wall clock across all
	// attempts. Zero for skipped operators. Excluded from Describe so
	// rendered reports stay byte-identical across runs.
	Duration time.Duration
}

// Failed reports whether the verdict is a failure that KeepGoing mode
// records and propagates (everything except refined; skipped counts —
// its cone root already failed, and listing the cone keeps reports
// self-explanatory).
func (v OpVerdict) Failed() bool { return v.Kind != VerdictRefined }

// Describe renders the verdict as one deterministic line (no
// durations, no pointers): the chaos harness compares these across
// worker counts byte-for-byte.
func (v OpVerdict) Describe() string {
	switch v.Kind {
	case VerdictInconclusive:
		return fmt.Sprintf("%s: inconclusive (%s, %d escalations)", v.Op.Label, v.Reason, v.Escalations)
	case VerdictEngineFault:
		if ef, ok := v.Err.(*EngineFaultError); ok {
			return fmt.Sprintf("%s: engine-fault (%v)", v.Op.Label, ef.Recovered)
		}
		return fmt.Sprintf("%s: engine-fault", v.Op.Label)
	default:
		return fmt.Sprintf("%s: %s", v.Op.Label, v.Kind)
	}
}

// EngineFaultError reports a panic recovered during one operator's
// check: the operator identity plus the recovered value and stack. It
// marks a fault in the checking engine (or an injected one), never a
// statement about the model being checked.
type EngineFaultError struct {
	// Op is the G_s operator whose check panicked.
	Op *graph.Node
	// Recovered is the value passed to panic.
	Recovered any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *EngineFaultError) Error() string {
	return fmt.Sprintf("engine fault while checking operator %q (op %s): panic: %v\n%s",
		e.Op.Label, e.Op.Op, e.Recovered, e.Stack)
}

// InconclusiveError reports that an operator's check ran out of budget
// or time before refinement could be proved or disproved. It wraps the
// final attempt's *RefinementError (when the search ended with
// unmappable outputs rather than a deadline), so existing errors.As
// call sites that localize the failing operator keep working.
type InconclusiveError struct {
	// Op is the operator whose check was inconclusive.
	Op *graph.Node
	// Reason says which limit stopped the search.
	Reason InconclusiveReason
	// Escalations counts the budget-escalation retries consumed.
	Escalations int
	// Cause is the final attempt's RefinementError, when one exists.
	Cause *RefinementError
}

func (e *InconclusiveError) Error() string {
	msg := fmt.Sprintf("refinement inconclusive for operator %q (op %s): %s after %d budget escalation(s)",
		e.Op.Label, e.Op.Op, e.Reason, e.Escalations)
	if e.Cause != nil {
		msg += "\n" + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the underlying RefinementError to errors.As/Is.
func (e *InconclusiveError) Unwrap() error {
	if e.Cause == nil {
		return nil
	}
	return e.Cause
}
