package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"entangle/internal/egraph"
	"entangle/internal/faultinject"
	"entangle/internal/graph"
	"entangle/internal/lemmas"
	"entangle/internal/models"
	"entangle/internal/vcache"
)

// checkWithDeadline runs Check on a watchdog: if the checker deadlocks
// (the historical failure mode for a panicking lemma on a pool
// goroutine), the test fails fast instead of hanging the suite.
func checkWithDeadline(t *testing.T, c *Checker, b *models.Built, limit time.Duration) (*Report, error) {
	t.Helper()
	type result struct {
		rep *Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := c.Check(b.Gs, b.Gd, b.Ri)
		done <- result{rep, err}
	}()
	select {
	case r := <-done:
		return r.rep, r.err
	case <-time.After(limit):
		t.Fatalf("Check did not return within %v (pool deadlock?)", limit)
		return nil, nil
	}
}

// TestPanicObserverNoDeadlock is the regression test for the latent
// wavefront-pool deadlock: a panic thrown from inside an operator's
// check (here via OpObserver, the paper-era hook) used to leave
// wavefrontState.active incremented forever, so runnable() stayed
// false, stopped() never turned true, and every worker slept on the
// condition variable. The fix decrements via defer and converts the
// panic into a structured EngineFault naming the operator.
func TestPanicObserverNoDeadlock(t *testing.T) {
	for _, workers := range []int{1, 4} {
		b, err := models.GPT(models.Options{TP: 2})
		if err != nil {
			t.Fatal(err)
		}
		checker := NewChecker(Options{
			Workers: workers,
			OpObserver: func(v *graph.Node, d time.Duration) {
				if strings.Contains(v.Label, "attn") {
					panic("observer bomb: " + v.Label)
				}
			},
		})
		_, err = checkWithDeadline(t, checker, b, 60*time.Second)
		if err == nil {
			t.Fatalf("workers=%d: expected an engine fault", workers)
		}
		var ef *EngineFaultError
		if !errors.As(err, &ef) {
			t.Fatalf("workers=%d: error is %T, want *EngineFaultError: %v", workers, err, err)
		}
		if !strings.Contains(ef.Op.Label, "attn") {
			t.Fatalf("workers=%d: fault localized to %q, want an attn op", workers, ef.Op.Label)
		}
		if len(ef.Stack) == 0 || !strings.Contains(err.Error(), "observer bomb") {
			t.Fatalf("workers=%d: fault must carry the panic value and stack:\n%v", workers, err)
		}
	}
}

// TestPanickingLemmaKeepGoing: with KeepGoing, a panicking check is an
// EngineFault verdict for that operator, its downstream cone is
// skipped, and every independent tower still gets checked.
func TestPanickingLemmaKeepGoing(t *testing.T) {
	b, err := models.MultiTower(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	checker := NewChecker(Options{
		Workers:   4,
		KeepGoing: true,
		PreOp: func(v *graph.Node) *egraph.SaturateOpts {
			if v.Label == "T1/fc1" || v.Label == "T4/gelu" {
				panic("injected: " + v.Label)
			}
			return nil
		},
	})
	rep, err := checkWithDeadline(t, checker, b, 60*time.Second)
	if err == nil {
		t.Fatal("expected failures")
	}
	if rep == nil {
		t.Fatal("KeepGoing must return the partial report alongside the error")
	}
	if rep.OutputRelation != nil {
		t.Fatal("failed KeepGoing run must not claim a complete output relation")
	}

	kinds := map[string]VerdictKind{}
	for _, v := range rep.Failures {
		kinds[v.Op.Label] = v.Kind
	}
	if kinds["T1/fc1"] != VerdictEngineFault || kinds["T4/gelu"] != VerdictEngineFault {
		t.Fatalf("faulted ops misclassified: %v", kinds)
	}
	// Downstream cones: T1/gelu and T1/fc2 consume T1/fc1; T4/fc2
	// consumes T4/gelu; combine consumes every tower.
	for _, label := range []string{"T1/gelu", "T1/fc2", "T4/fc2", "combine"} {
		if kinds[label] != VerdictSkipped {
			t.Fatalf("%s: verdict %v, want skipped (failures: %s)", label, kinds[label], rep.RenderFailures())
		}
	}
	// The first failure in topo order is the returned error.
	if !errors.Is(err, rep.Failures[0].Err) {
		t.Fatalf("returned error %v is not the earliest failure %v", err, rep.Failures[0].Err)
	}
	// Independent towers were still checked: every op outside the two
	// cones is refined.
	refined := 0
	for _, v := range rep.Verdicts {
		if v.Kind == VerdictRefined {
			refined++
		}
	}
	// 8 towers × 4 ops + combine = 33 ops; 2 faulted + 4 skipped = 27 refined.
	if refined != 27 {
		t.Fatalf("refined %d ops, want 27:\n%s", refined, rep.RenderFailures())
	}
	if rep.OpsProcessed != 29 { // 33 − 4 skipped
		t.Fatalf("OpsProcessed %d, want 29", rep.OpsProcessed)
	}
}

// TestCancellationMidSaturation: a context cancelled while a large
// check is in flight aborts promptly (bounded by one saturation
// iteration per in-flight operator), returns an error wrapping
// context.Canceled, and — at Workers=8 — leaks no goroutines.
func TestCancellationMidSaturation(t *testing.T) {
	b, err := models.GPT(models.Options{TP: 2, SP: true})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	checker := NewChecker(Options{
		Workers: 8,
		OpObserver: func(v *graph.Node, d time.Duration) {
			cancel() // cancel as soon as the first operator completes
		},
	})
	start := time.Now()
	rep, err := checker.CheckContext(ctx, b.Gs, b.Gd, b.Ri)
	elapsed := time.Since(start)
	cancel()
	if err == nil {
		t.Fatalf("cancelled check succeeded in %v", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error must wrap context.Canceled, got: %v", err)
	}
	if rep != nil {
		t.Fatal("cancelled check must not return a report")
	}
	// Generous bound: a full GPT check takes seconds; post-cancel work
	// is at most one saturation iteration per in-flight operator.
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled check took %v", elapsed)
	}

	// Hand-rolled goleak: every pool goroutine must have exited.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPreCancelledContext: an already-expired context returns before
// any operator is checked.
func TestPreCancelledContext(t *testing.T) {
	b, err := models.Regression(models.Options{GradAccum: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ops := 0
	checker := NewChecker(Options{OpObserver: func(v *graph.Node, d time.Duration) { ops++ }, Workers: 1})
	if _, err := checker.CheckContext(ctx, b.Gs, b.Gd, b.Ri); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The first scheduled operator observes the dead context and aborts
	// fatally; nothing beyond it may run.
	if ops > 1 {
		t.Fatalf("%d operators ran under a pre-cancelled context", ops)
	}
}

// TestOpTimeoutInconclusive: an operator stalled past OpTimeout is
// classified Inconclusive(Timeout); with KeepGoing the rest of the
// model still checks.
func TestOpTimeoutInconclusive(t *testing.T) {
	b, err := models.MultiTower(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	checker := NewChecker(Options{
		Workers:   2,
		KeepGoing: true,
		OpTimeout: 30 * time.Millisecond,
		PreOp: func(v *graph.Node) *egraph.SaturateOpts {
			if v.Label == "T2/fc1" {
				time.Sleep(300 * time.Millisecond) // 10× the deadline
			}
			return nil
		},
	})
	rep, err := checkWithDeadline(t, checker, b, 60*time.Second)
	if err == nil {
		t.Fatal("expected a timeout failure")
	}
	var ie *InconclusiveError
	if !errors.As(err, &ie) || ie.Reason != ReasonTimeout || ie.Op.Label != "T2/fc1" {
		t.Fatalf("want Inconclusive(timeout) at T2/fc1, got %v", err)
	}
	kinds := map[string]VerdictKind{}
	for _, v := range rep.Verdicts {
		kinds[v.Op.Label] = v.Kind
	}
	if kinds["T2/fc1"] != VerdictInconclusive || kinds["T2/gelu"] != VerdictSkipped {
		t.Fatalf("timeout cone wrong:\n%s", rep.RenderFailures())
	}
	if kinds["T0/fc2"] != VerdictRefined || kinds["T3/fc2"] != VerdictRefined {
		t.Fatalf("independent towers must still refine:\n%s", rep.RenderFailures())
	}
}

// TestBudgetEscalation: a budget-starved operator either recovers via
// geometric escalation or is declared Inconclusive(BudgetExhausted) —
// never misreported as disproved. The starved budget is chosen so the
// first attempt cannot finish but 4×–16× can.
func TestBudgetEscalation(t *testing.T) {
	b, err := models.Regression(models.Options{GradAccum: 2})
	if err != nil {
		t.Fatal(err)
	}
	starved := egraph.SaturateOpts{MaxIters: 1, MaxNodes: 20}

	// Escalation disabled: the starved run must be inconclusive, with
	// the budget-exhaustion reason, not a disproof.
	noEsc := NewChecker(Options{Saturate: starved, BudgetEscalations: -1, Workers: 1})
	_, err = noEsc.Check(b.Gs, b.Gd, b.Ri)
	if err == nil {
		t.Fatal("starved check without escalation must fail")
	}
	var ie *InconclusiveError
	if !errors.As(err, &ie) || ie.Reason != ReasonBudgetExhausted {
		t.Fatalf("want Inconclusive(budget-exhausted), got %v", err)
	}
	if ie.Escalations != 0 {
		t.Fatalf("escalations %d, want 0", ie.Escalations)
	}
	// The wrapped cause still localizes the operator for errors.As
	// call sites expecting the paper's RefinementError.
	var re *RefinementError
	if !errors.As(err, &re) {
		t.Fatalf("InconclusiveError must unwrap to RefinementError: %v", err)
	}

	// With escalation: 1 iter/20 nodes → ×4 → ×16 reaches the default
	// ballpark and the model verifies.
	esc := NewChecker(Options{Saturate: starved, BudgetEscalations: 3, Workers: 1})
	rep, err := esc.Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatalf("escalated check must recover: %v", err)
	}
	escalated := 0
	for _, v := range rep.Verdicts {
		if v.Escalations > 0 {
			escalated++
		}
	}
	if escalated == 0 {
		t.Fatal("no operator recorded a budget escalation")
	}
	if rep.Stats.BudgetHit == 0 {
		t.Fatal("stats must count the budget hits that triggered escalation")
	}
}

// TestChaosDeterminism is the acceptance criterion: under a fixed
// faultinject seed, Workers=1 and Workers=8 KeepGoing runs produce
// byte-identical multi-failure reports — same verdicts, same topo
// order — and no injected panic crashes the process or hangs the pool.
func TestChaosDeterminism(t *testing.T) {
	reg := lemmas.Default()
	cfgs := []faultinject.Config{
		{Seed: 1, PanicRate: 0.15},
		{Seed: 2, StarveRate: 0.3},
		{Seed: 3, PanicRate: 0.1, StarveRate: 0.2},
		{Seed: 99, PanicRate: 0.5},
	}
	builds := map[string]func() (*models.Built, error){
		"multitower": func() (*models.Built, error) { return models.MultiTower(8, 2) },
		"gpt":        func() (*models.Built, error) { return models.GPT(models.Options{TP: 2}) },
		"seedmoe":    func() (*models.Built, error) { return models.SeedMoE(models.Options{TP: 2}) },
	}
	for name, build := range builds {
		for _, cfg := range cfgs {
			b, err := build()
			if err != nil {
				t.Fatal(err)
			}
			var renders []string
			var errTexts []string
			for _, workers := range []int{1, 8} {
				inj := faultinject.New(cfg)
				checker := NewChecker(Options{
					Registry:  reg,
					Workers:   workers,
					KeepGoing: true,
					PreOp:     inj.PreOp,
				})
				rep, err := checkWithDeadline(t, checker, b, 120*time.Second)
				if rep == nil {
					t.Fatalf("%s seed %d workers %d: no report (err %v)", name, cfg.Seed, workers, err)
				}
				if (err != nil) != (len(rep.Failures) > 0) {
					t.Fatalf("%s seed %d workers %d: err %v vs %d failures", name, cfg.Seed, workers, err, len(rep.Failures))
				}
				renders = append(renders, rep.RenderFailures())
				if err != nil {
					errTexts = append(errTexts, firstLine(err.Error()))
				}
			}
			if renders[0] != renders[1] {
				t.Fatalf("%s seed %d: reports differ\n--- workers=1 ---\n%s--- workers=8 ---\n%s",
					name, cfg.Seed, renders[0], renders[1])
			}
			if len(errTexts) == 2 && errTexts[0] != errTexts[1] {
				t.Fatalf("%s seed %d: first-failure errors differ:\n%s\n%s", name, cfg.Seed, errTexts[0], errTexts[1])
			}
		}
	}
}

// TestChaosCacheCorruption is the verdict cache's chaos criterion: a
// deterministically vandalized on-disk store (every entry damaged —
// torn, bit-flipped, re-tagged, or emptied) must degrade to a total
// miss, never to a wrong or different verdict. Runs at Workers 1 and 8
// on both a refining and a disproved model; reports must match a
// cache-disabled run byte for byte.
func TestChaosCacheCorruption(t *testing.T) {
	reg := lemmas.Default()
	builds := map[string]func() (*models.Built, error){
		"gpt": func() (*models.Built, error) { return models.GPT(models.Options{TP: 2}) },
		"seedmoe-bug": func() (*models.Built, error) {
			return models.SeedMoE(models.Options{TP: 2, Bug: models.Bug1RoPEOffset})
		},
	}
	for name, build := range builds {
		for _, seed := range []uint64{1, 42} {
			b, err := build()
			if err != nil {
				t.Fatal(err)
			}
			baseline, baseErr := NewChecker(Options{Registry: reg, KeepGoing: true}).Check(b.Gs, b.Gd, b.Ri)

			dir := t.TempDir()
			warmup, err := vcache.Open(vcache.Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := NewChecker(Options{Registry: reg, KeepGoing: true, Cache: warmup}).Check(b.Gs, b.Gd, b.Ri); (err != nil) != (baseErr != nil) {
				t.Fatalf("%s: warmup disagrees with baseline: %v vs %v", name, err, baseErr)
			}
			for _, workers := range []int{1, 8} {
				// Re-vandalize before every run: a prior miss-run
				// legitimately re-stores good entries.
				damaged, err := faultinject.CorruptCache(dir, seed)
				if err != nil || damaged == 0 {
					t.Fatalf("%s seed %d: corrupting cache: %v (%d files)", name, seed, err, damaged)
				}
				// A fresh cache over the vandalized directory: cold
				// memory forces every lookup through a damaged file.
				vandalized, err := vcache.Open(vcache.Config{Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				rep, repErr := NewChecker(Options{Registry: reg, KeepGoing: true, Workers: workers,
					Cache: vandalized}).Check(b.Gs, b.Gd, b.Ri)
				if (repErr != nil) != (baseErr != nil) {
					t.Fatalf("%s seed %d workers %d: verdict flipped: %v vs baseline %v",
						name, seed, workers, repErr, baseErr)
				}
				if rep.Cache.Hits != 0 {
					t.Fatalf("%s seed %d workers %d: corrupt entries served: %+v", name, seed, workers, rep.Cache)
				}
				if rep.Cache.Corrupt == 0 {
					t.Fatalf("%s seed %d workers %d: corruption not counted: %+v", name, seed, workers, rep.Cache)
				}
				if got, want := rep.RenderFailures(), baseline.RenderFailures(); got != want {
					t.Fatalf("%s seed %d workers %d: failures differ from cache-disabled run:\n--- want ---\n%s--- got ---\n%s",
						name, seed, workers, want, got)
				}
				if baseErr == nil {
					if got, want := rep.OutputRelation.Render(b.Gs), baseline.OutputRelation.Render(b.Gs); got != want {
						t.Fatalf("%s seed %d workers %d: relations differ:\n--- want ---\n%s--- got ---\n%s",
							name, seed, workers, want, got)
					}
				}
			}
		}
	}
}

// firstLine strips stack traces (which legitimately differ between
// goroutines) off error text before comparison.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestVerdictsOnSuccess: a clean run classifies every operator
// Refined, in topo order, with no failures.
func TestVerdictsOnSuccess(t *testing.T) {
	b, err := models.Regression(models.Options{GradAccum: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(Options{Workers: 4}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Verdicts) != b.Gs.OperatorCount() || len(rep.Failures) != 0 {
		t.Fatalf("verdicts %d (want %d), failures %d", len(rep.Verdicts), b.Gs.OperatorCount(), len(rep.Failures))
	}
	order, _ := b.Gs.TopoSort()
	for i, v := range rep.Verdicts {
		if v.Kind != VerdictRefined || v.Op.ID != order[i].ID {
			t.Fatalf("verdict %d: %v for %q, want refined for %q", i, v.Kind, v.Op.Label, order[i].Label)
		}
	}
	if rep.Stats.StopReason == egraph.StopNone {
		t.Fatal("merged stats must carry a stop reason")
	}
}
