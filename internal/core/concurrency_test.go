package core

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"entangle/internal/lemmas"
	"entangle/internal/models"
)

// TestConcurrentChecks verifies that independent Check calls can share
// one Checker and one lemma registry across goroutines (the bench
// harness and CI pipelines verify many models at once). Run with
// -race to catch sharing violations: per-operator e-graphs are
// per-call, rules are stateless closures, and the registry is
// read-only after construction.
func TestConcurrentChecks(t *testing.T) {
	reg := lemmas.Default()
	checker := NewChecker(Options{Registry: reg})
	builds := []func() (*models.Built, error){
		func() (*models.Built, error) { return models.GPT(models.Options{TP: 2, SP: true}) },
		func() (*models.Built, error) { return models.Llama(models.Options{TP: 2}) },
		func() (*models.Built, error) { return models.Qwen2(models.Options{TP: 2}) },
		func() (*models.Built, error) { return models.SeedMoE(models.Options{TP: 2}) },
		func() (*models.Built, error) { return models.Regression(models.Options{GradAccum: 2}) },
		func() (*models.Built, error) { return models.ContextParallel(2) },
	}
	var wg sync.WaitGroup
	errs := make([]error, len(builds)*2)
	for round := 0; round < 2; round++ {
		for i, build := range builds {
			wg.Add(1)
			go func(slot int, build func() (*models.Built, error)) {
				defer wg.Done()
				b, err := build()
				if err != nil {
					errs[slot] = err
					return
				}
				if _, err := checker.Check(b.Gs, b.Gd, b.Ri); err != nil {
					errs[slot] = err
				}
			}(round*len(builds)+i, build)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

// wavefrontSuite is the full example-model suite the wavefront
// scheduler must reproduce byte-for-byte. It spans every structural
// shape the scheduler sees: wide per-layer fan-out (GPT q/k/v heads),
// MoE expert fan-out, backward graphs, data/pipeline/context
// parallelism, and a near-linear chain (Regression) where the
// wavefront degenerates to almost-sequential.
func wavefrontSuite() map[string]func() (*models.Built, error) {
	return map[string]func() (*models.Built, error){
		"gpt":        func() (*models.Built, error) { return models.GPT(models.Options{TP: 2}) },
		"gpt-sp":     func() (*models.Built, error) { return models.GPT(models.Options{TP: 2, SP: true}) },
		"llama":      func() (*models.Built, error) { return models.Llama(models.Options{TP: 2}) },
		"qwen2":      func() (*models.Built, error) { return models.Qwen2(models.Options{TP: 2}) },
		"seedmoe":    func() (*models.Built, error) { return models.SeedMoE(models.Options{TP: 2}) },
		"seedmoebwd": func() (*models.Built, error) { return models.SeedMoEBwd(models.Options{TP: 2}) },
		"regression": func() (*models.Built, error) { return models.Regression(models.Options{GradAccum: 2}) },
		"dp":         func() (*models.Built, error) { return models.DataParallel(2, true) },
		"multitower": func() (*models.Built, error) { return models.MultiTower(8, 2) },
		"pipeline":   func() (*models.Built, error) { return models.Pipeline(2, false) },
		"cp":         func() (*models.Built, error) { return models.ContextParallel(2) },
	}
}

// TestWavefrontMatchesSequential is the scheduler's determinism
// contract: for every example model, a Workers: 4 check must produce a
// report byte-identical to Workers: 1 — same relation renderings, same
// operator count, same per-rule application counts. Run with -race.
func TestWavefrontMatchesSequential(t *testing.T) {
	reg := lemmas.Default()
	seqChecker := NewChecker(Options{Registry: reg, Workers: 1})
	parChecker := NewChecker(Options{Registry: reg, Workers: 4})
	for name, build := range wavefrontSuite() {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := build()
			if err != nil {
				t.Fatal(err)
			}
			seq, err := seqChecker.Check(b.Gs, b.Gd, b.Ri)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := parChecker.Check(b.Gs, b.Gd, b.Ri)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if got, want := par.OutputRelation.Render(b.Gs), seq.OutputRelation.Render(b.Gs); got != want {
				t.Errorf("output relations differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", want, got)
			}
			if got, want := par.FullRelation.Render(b.Gs), seq.FullRelation.Render(b.Gs); got != want {
				t.Errorf("full relations differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", want, got)
			}
			if par.OpsProcessed != seq.OpsProcessed {
				t.Errorf("OpsProcessed %d want %d", par.OpsProcessed, seq.OpsProcessed)
			}
			if !reflect.DeepEqual(par.Stats.Applications, seq.Stats.Applications) {
				t.Errorf("per-rule application counts differ:\n  workers=1: %v\n  workers=4: %v",
					statLines(seq.Stats.Applications), statLines(par.Stats.Applications))
			}
			if par.Stats.Iterations != seq.Stats.Iterations ||
				par.Stats.Runs != seq.Stats.Runs ||
				par.Stats.Saturated != seq.Stats.Saturated {
				t.Errorf("stats differ: workers=1 %+v, workers=4 %+v", seq.Stats, par.Stats)
			}
		})
	}
}

func statLines(apps map[string]int) []string {
	out := make([]string, 0, len(apps))
	for name, n := range apps {
		out = append(out, fmt.Sprintf("%s=%d", name, n))
	}
	sort.Strings(out)
	return out
}

// TestWavefrontErrorDeterminism checks first-error-wins: on buggy
// models the parallel checker must repeatedly report the *same*
// RefinementError the sequential walk finds — the earliest failing
// operator in topological order — no matter which workers finish
// first.
func TestWavefrontErrorDeterminism(t *testing.T) {
	reg := lemmas.Default()
	buggy := map[string]func() (*models.Built, error){
		"seedmoe-bug1": func() (*models.Built, error) {
			return models.SeedMoE(models.Options{TP: 2, Bug: models.Bug1RoPEOffset})
		},
		"gpt-bug7": func() (*models.Built, error) {
			return models.GPT(models.Options{TP: 2, Bug: models.Bug7MissingAllReduce})
		},
		"pipeline-scaling": func() (*models.Built, error) { return models.Pipeline(2, true) },
	}
	seqChecker := NewChecker(Options{Registry: reg, Workers: 1})
	parChecker := NewChecker(Options{Registry: reg, Workers: 8})
	for name, build := range buggy {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := build()
			if err != nil {
				t.Fatal(err)
			}
			_, seqErr := seqChecker.Check(b.Gs, b.Gd, b.Ri)
			if seqErr == nil {
				t.Fatal("expected the buggy model to fail refinement")
			}
			var seqRe *RefinementError
			if !errors.As(seqErr, &seqRe) {
				t.Fatalf("sequential error is not a RefinementError: %v", seqErr)
			}
			// Several rounds so scheduling jitter gets a chance to
			// reorder completions.
			for round := 0; round < 4; round++ {
				_, parErr := parChecker.Check(b.Gs, b.Gd, b.Ri)
				if parErr == nil {
					t.Fatalf("round %d: parallel check passed a buggy model", round)
				}
				var parRe *RefinementError
				if !errors.As(parErr, &parRe) {
					t.Fatalf("round %d: parallel error is not a RefinementError: %v", round, parErr)
				}
				if parRe.Op.Label != seqRe.Op.Label {
					t.Fatalf("round %d: parallel failed at %q, sequential at %q",
						round, parRe.Op.Label, seqRe.Op.Label)
				}
				if parErr.Error() != seqErr.Error() {
					t.Fatalf("round %d: error text differs:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
						round, seqErr, parErr)
				}
			}
		})
	}
}
