package core

import (
	"sync"
	"testing"

	"entangle/internal/lemmas"
	"entangle/internal/models"
)

// TestConcurrentChecks verifies that independent Check calls can share
// one Checker and one lemma registry across goroutines (the bench
// harness and CI pipelines verify many models at once). Run with
// -race to catch sharing violations: per-operator e-graphs are
// per-call, rules are stateless closures, and the registry is
// read-only after construction.
func TestConcurrentChecks(t *testing.T) {
	reg := lemmas.Default()
	checker := NewChecker(Options{Registry: reg})
	builds := []func() (*models.Built, error){
		func() (*models.Built, error) { return models.GPT(models.Options{TP: 2, SP: true}) },
		func() (*models.Built, error) { return models.Llama(models.Options{TP: 2}) },
		func() (*models.Built, error) { return models.Qwen2(models.Options{TP: 2}) },
		func() (*models.Built, error) { return models.SeedMoE(models.Options{TP: 2}) },
		func() (*models.Built, error) { return models.Regression(models.Options{GradAccum: 2}) },
		func() (*models.Built, error) { return models.ContextParallel(2) },
	}
	var wg sync.WaitGroup
	errs := make([]error, len(builds)*2)
	for round := 0; round < 2; round++ {
		for i, build := range builds {
			wg.Add(1)
			go func(slot int, build func() (*models.Built, error)) {
				defer wg.Done()
				b, err := build()
				if err != nil {
					errs[slot] = err
					return
				}
				if _, err := checker.Check(b.Gs, b.Gd, b.Ri); err != nil {
					errs[slot] = err
				}
			}(round*len(builds)+i, build)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}
