package core

// Verdict-cache integration: before an operator is saturated, checkOp
// consults Options.Cache under a content-addressed key — the
// operator's upstream-cone fingerprint combined with the run's ambient
// digest (lemma registry, budget options, G_d, checker version). On a
// hit the stored verdict is REPLAYED, not merely returned: a Refined
// entry re-adds the exact extracted mappings (in stored order, so the
// relation's insertion-order tie-breaking matches a live run) and a
// Disproved entry reconstructs the same RefinementError against the
// current graphs. Replay therefore leaves the run in a state
// byte-identical to a cold run, while Report.LiveStats records that no
// saturation actually happened.
//
// Reuse safety rests on two facts. First, an operator's verdict is a
// pure function of exactly what the key hashes: its cone (ops, shapes,
// attributes, wiring), the input-relation entries its cone consumes,
// G_d, the lemma library, the saturation budget, and the checker
// version — nothing schedule- or wall-clock-dependent. Second, only
// the schedule-independent points of the verdict lattice are cached:
// Refined and Disproved are facts about the graphs; Inconclusive
// depends on budgets and clocks (and escalation makes it retryable),
// EngineFault on transient runtime state, Skipped on sibling failures.
// Those are never stored — vcache itself also rejects them.
//
// Two bypasses keep the key honest: a PreOp budget override
// (fault-injection harnesses) changes the effective budget without
// changing the key, so overridden operators skip the cache entirely;
// and a Disproved failure on a tensor that is not one of the
// operator's outputs (a missing *input* mapping) reflects upstream
// state, so it is not stored either.

import (
	"fmt"
	"sync/atomic"

	"entangle/internal/egraph"
	"entangle/internal/expr"
	"entangle/internal/fingerprint"
	"entangle/internal/graph"
	"entangle/internal/vcache"
)

// CheckerVersion tags every cache key with the checker's semantic
// version. Bump it whenever checking semantics change in a way the
// other key components cannot see (extraction order, frontier policy,
// verdict classification), so stale verdicts invalidate wholesale.
const CheckerVersion = "entangle-core/2"

// VerdictStore is the verdict-cache surface the checker consults: a
// content-addressed Get/Put plus the monotone counters the Report's
// cache section is derived from. *vcache.Cache is the single-node
// implementation; internal/cluster's Cache implements the same
// interface over a sharded fleet (local shard + peer fetch/forward
// with graceful degradation), so everything above this seam — the
// planner's prefetch, replay, storeVerdict, the daemon — is
// fleet-agnostic. Implementations must be safe for concurrent use and
// must uphold vcache's contract: Get never returns a wrong or stale
// entry (any doubt is a miss), Put rejects non-cacheable verdicts.
type VerdictStore interface {
	Get(key fingerprint.Hash) *vcache.Entry
	Put(key fingerprint.Hash, e *vcache.Entry) error
	Stats() *vcache.Stats
}

// CacheStats summarizes one run's verdict-cache traffic in the Report.
type CacheStats struct {
	// Hits/Misses/Stores/ReplayRejects count this run's own lookups
	// and stores.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Stores int64 `json:"stores"`
	// ReplayRejects counts hits whose payload failed to replay against
	// the current graphs (counted in Misses too); nonzero values
	// indicate a fingerprint scheme bug and are worth alerting on.
	ReplayRejects int64 `json:"replay_rejects,omitempty"`
	// Corrupt and Evictions are deltas of the shared cache's global
	// counters across this run; concurrent runs on one cache may
	// attribute each other's events.
	Corrupt   int64 `json:"corrupt"`
	Evictions int64 `json:"evictions"`
}

// cacheState is the per-run cache context hanging off runState.
type cacheState struct {
	cache VerdictStore
	gdix  *fingerprint.GdIndex
	// keys holds every operator's precomputed cache key. Filling the
	// map before the scheduler starts keeps the cone hasher's memo
	// single-threaded; afterwards workers only read.
	keys map[graph.NodeID]fingerprint.Hash

	hits, misses, stores, replayRejects atomic.Int64
	baseCorrupt, baseEvictions          int64
}

// cacheOptionsString is the canonical encoding of the verdict-relevant
// options, hashed into the ambient digest. Workers, OpTimeout,
// KeepGoing, and observers are deliberately absent: they steer
// scheduling and wall clocks, never a cacheable verdict.
func (o Options) cacheOptionsString() string {
	return fmt.Sprintf("mm=%d|mfi=%d|df=%t|si=%d|sn=%d|be=%d",
		o.MaxMappings, o.MaxFrontierIters, o.DisableFrontier,
		o.Saturate.MaxIters, o.Saturate.MaxNodes, o.BudgetEscalations)
}

// initCache precomputes the ambient digest and every operator's key.
// Called after runState construction, before any operator runs.
func (r *runState) initCache(order []*graph.Node) error {
	if r.opts.Cache == nil {
		return nil
	}
	gdix, err := fingerprint.NewGdIndex(r.gd)
	if err != nil {
		return fmt.Errorf("core: cache: %v", err)
	}
	ambient := fingerprint.Ambient(CheckerVersion, r.opts.Registry.Fingerprint(),
		[]byte(r.opts.cacheOptionsString()), fingerprint.GraphDigest(r.gd), r.gs.Ctx)
	cones := fingerprint.NewConeHasher(r.gs, r.rel, gdix)
	keys := make(map[graph.NodeID]fingerprint.Hash, len(order))
	for _, v := range order {
		keys[v.ID] = fingerprint.Key(ambient, cones.Node(v.ID))
	}
	snap := r.opts.Cache.Stats().Snapshot()
	r.cache = &cacheState{
		cache:         r.opts.Cache,
		gdix:          gdix,
		keys:          keys,
		baseCorrupt:   snap.Corrupt,
		baseEvictions: snap.Evictions,
	}
	return nil
}

// reportCache fills the Report's cache section.
func (r *runState) reportCache(report *Report) {
	if r.cache == nil {
		return
	}
	snap := r.cache.cache.Stats().Snapshot()
	report.Cache = CacheStats{
		Hits:          r.cache.hits.Load(),
		Misses:        r.cache.misses.Load(),
		Stores:        r.cache.stores.Load(),
		ReplayRejects: r.cache.replayRejects.Load(),
		Corrupt:       snap.Corrupt - r.cache.baseCorrupt,
		Evictions:     snap.Evictions - r.cache.baseEvictions,
	}
}

// replayCached looks up and replays a cached verdict for v. ok=false
// means the caller must run the operator live (miss, replay defect, or
// cache disabled for this op).
func (r *runState) replayCached(v *graph.Node) (stats egraph.Stats, verdict OpVerdict, ok bool) {
	e := r.cache.cache.Get(r.cache.keys[v.ID])
	if e == nil {
		r.cache.misses.Add(1)
		return stats, verdict, false
	}
	stats, verdict, ok = r.replayEntry(v, e)
	if !ok {
		// A validated entry that does not fit the current graphs:
		// count it distinctly — this should never happen if the
		// fingerprint covers everything it must.
		r.cache.misses.Add(1)
		r.cache.replayRejects.Add(1)
		return egraph.Stats{}, OpVerdict{}, false
	}
	r.cache.hits.Add(1)
	return stats, verdict, true
}

// replayEntry reconstructs the run-state effects of a cached verdict.
func (r *runState) replayEntry(v *graph.Node, e *vcache.Entry) (egraph.Stats, OpVerdict, bool) {
	switch e.Verdict {
	case vcache.VerdictRefined:
		if len(e.Outputs) != len(v.Outputs) {
			return egraph.Stats{}, OpVerdict{}, false
		}
		// Decode everything before mutating the relation, so a defect
		// half-way cannot leave partial replay state behind.
		type decoded struct{ main, restricted []*expr.Term }
		all := make([]decoded, len(e.Outputs))
		for i, m := range e.Outputs {
			var d decoded
			for _, src := range m.Main {
				t, err := fingerprint.DecodeTerm(src, r.cache.gdix, nil)
				if err != nil {
					return egraph.Stats{}, OpVerdict{}, false
				}
				d.main = append(d.main, t)
			}
			for _, src := range m.Restricted {
				t, err := fingerprint.DecodeTerm(src, r.cache.gdix, nil)
				if err != nil {
					return egraph.Stats{}, OpVerdict{}, false
				}
				d.restricted = append(d.restricted, t)
			}
			if len(d.main) == 0 {
				return egraph.Stats{}, OpVerdict{}, false
			}
			all[i] = d
		}
		for i, out := range v.Outputs {
			r.rel.AddAll(out, all[i].main)
			r.rel.AddAll(out, all[i].restricted)
		}
		return e.Stats, OpVerdict{Op: v, Kind: VerdictRefined, Escalations: e.Escalations, Replayed: true}, true

	case vcache.VerdictDisproved:
		if e.FailOutput < 0 || e.FailOutput >= len(v.Outputs) {
			return egraph.Stats{}, OpVerdict{}, false
		}
		re := &RefinementError{Op: v, Tensor: r.gs.Tensor(v.Outputs[e.FailOutput]),
			InputMappings: r.renderInputMappings(v)}
		return e.Stats, OpVerdict{Op: v, Kind: VerdictDisproved, Err: re, Escalations: e.Escalations, Replayed: true}, true
	}
	return egraph.Stats{}, OpVerdict{}, false
}

// storeVerdict persists a just-computed live verdict when it is
// cacheable. outs carries the per-output extracted mappings of a
// Refined run (nil otherwise).
func (r *runState) storeVerdict(v *graph.Node, acc egraph.Stats, verdict OpVerdict, outs []outputMapping) {
	entry := &vcache.Entry{Escalations: verdict.Escalations, Stats: acc}
	switch verdict.Kind {
	case VerdictRefined:
		if len(outs) != len(v.Outputs) {
			return
		}
		entry.Verdict = vcache.VerdictRefined
		for _, om := range outs {
			m := vcache.Mapping{}
			for _, t := range om.main {
				m.Main = append(m.Main, fingerprint.CanonicalTerm(t, r.cache.gdix))
			}
			for _, t := range om.restricted {
				m.Restricted = append(m.Restricted, fingerprint.CanonicalTerm(t, r.cache.gdix))
			}
			entry.Outputs = append(entry.Outputs, m)
		}
	case VerdictDisproved:
		re, isRefinement := verdict.Err.(*RefinementError)
		if !isRefinement || re.Tensor == nil {
			return
		}
		fail := -1
		for i, out := range v.Outputs {
			if out == re.Tensor.ID {
				fail = i
				break
			}
		}
		if fail < 0 {
			// The failure names an *input* tensor (missing upstream
			// mapping): that is a fact about run state, not about this
			// operator's cone — not cacheable.
			return
		}
		entry.Verdict = vcache.VerdictDisproved
		entry.FailOutput = fail
	default:
		return
	}
	// Store errors are counted by the cache itself (StoreErrors) and
	// never affect the verdict; the entry stays usable in memory.
	if err := r.cache.cache.Put(r.cache.keys[v.ID], entry); err == nil {
		r.cache.stores.Add(1)
	}
}

// outputMapping carries one output's extracted clean expressions out
// of processOp, in extraction order, for cache storage.
type outputMapping struct {
	main       []*expr.Term
	restricted []*expr.Term
}
