package core

import (
	"strings"
	"testing"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/lemmas"
	"entangle/internal/relation"
	"entangle/internal/shape"
)

// The diff fixture: an add feeding an activation, plus an independent
// activation branch. Two-rank split on dim 0 throughout.
//
//	G_s: S = add(X, Y); Z = act(S); U = gelu(V)
//	G_d: per rank r: S_r = add(X_r, Y_r); Z_r = act(S_r); U_r = gelu(V_r)
//
// The canonical refinement-preserving edit swaps the add's operands:
// add(Y, X) still refines (add-is-sum + sum-commutative), but the cone
// fingerprint hashes input ORDER, so the adder's cone — and its
// consumers' — change.
func diffGd(t *testing.T) *graph.Graph {
	t.Helper()
	bd := graph.NewBuilder("Gd", nil)
	half := shape.Of(2, 6)
	X0, X1 := bd.Input("X0", half), bd.Input("X1", half)
	Y0, Y1 := bd.Input("Y0", half), bd.Input("Y1", half)
	V0, V1 := bd.Input("V0", half), bd.Input("V1", half)
	S0 := bd.Add("r0/adder", X0, Y0)
	S1 := bd.Add("r1/adder", X1, Y1)
	Z0 := bd.Unary("r0/act", "gelu", S0)
	Z1 := bd.Unary("r1/act", "gelu", S1)
	U0 := bd.Unary("r0/side", "gelu", V0)
	U1 := bd.Unary("r1/side", "gelu", V1)
	bd.Output(Z0, Z1, U0, U1)
	return bd.MustBuild()
}

// diffGs builds one G_s variant with its own input relation against
// gd. swap reverses the add's operands; fn is the activation ("gelu"
// matches gd, anything else is a semantic break).
func diffGs(t *testing.T, gd *graph.Graph, swap bool, fn string) (*graph.Graph, *relation.Relation) {
	t.Helper()
	bs := graph.NewBuilder("Gs", nil)
	X := bs.Input("X", shape.Of(4, 6))
	Y := bs.Input("Y", shape.Of(4, 6))
	V := bs.Input("V", shape.Of(4, 6))
	a, b := X, Y
	if swap {
		a, b = Y, X
	}
	S := bs.Add("adder", a, b)
	Z := bs.Unary("act", fn, S)
	U := bs.Unary("side", "gelu", V)
	bs.Output(Z, U)
	gs := bs.MustBuild()

	ri := relation.New()
	gdT := func(name string) *expr.Term {
		tt, ok := gd.TensorByName(name)
		if !ok {
			t.Fatalf("missing gd tensor %q", name)
		}
		return relation.GdLeaf(tt)
	}
	gsID := func(name string) graph.TensorID {
		tt, ok := gs.TensorByName(name)
		if !ok {
			t.Fatalf("missing gs tensor %q", name)
		}
		return tt.ID
	}
	ri.Add(gsID("X"), expr.ConcatI(0, gdT("X0"), gdT("X1")))
	ri.Add(gsID("Y"), expr.ConcatI(0, gdT("Y0"), gdT("Y1")))
	ri.Add(gsID("V"), expr.ConcatI(0, gdT("V0"), gdT("V1")))
	return gs, ri
}

// TestDiffPlanDirtySet checks DiffPlan's disposition logic in
// isolation (no cache, no execution): the edited operator is Check,
// its consumers TaintedUpstream, the independent branch SkipUnchanged
// — and an identical graph is all-skip.
func TestDiffPlanDirtySet(t *testing.T) {
	gd := diffGd(t)
	oldGs, oldRi := diffGs(t, gd, false, "gelu")
	newGs, newRi := diffGs(t, gd, true, "gelu")

	plan, err := DiffPlan(oldGs, oldRi, newGs, newRi, gd)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != PlanModeDiff {
		t.Fatalf("mode %q", plan.Mode)
	}
	want := map[string]Disposition{
		"adder": DispCheck,
		"act":   DispTaintedUpstream,
		"side":  DispSkipUnchanged,
	}
	for label, disp := range want {
		if op := planOpByLabel(t, plan, label); op.Disposition != disp {
			t.Errorf("%s planned %s (%s), want %s", label, op.Disposition, op.Reason, disp)
		}
	}
	if plan.Checks != 1 || plan.Tainted != 1 || plan.Skips != 1 || plan.Replays != 0 {
		t.Fatalf("totals %+v", plan)
	}

	// Same graph twice (built independently, so node IDs need not
	// match): every cone is unchanged.
	sameGs, sameRi := diffGs(t, gd, false, "gelu")
	same, err := DiffPlan(oldGs, oldRi, sameGs, sameRi, gd)
	if err != nil {
		t.Fatal(err)
	}
	if same.Skips != len(same.Ops) {
		t.Fatalf("identical graph not all-skip: %+v", same)
	}
}

// TestDiffCheckReplaysUnchanged is the tentpole's end-to-end contract:
// after a warm full check of the old graph, re-verifying the swapped
// edit saturates only the edit's downstream cone (adder, act) and
// replays the untouched branch (side) from the cache.
func TestDiffCheckReplaysUnchanged(t *testing.T) {
	gd := diffGd(t)
	oldGs, oldRi := diffGs(t, gd, false, "gelu")
	newGs, newRi := diffGs(t, gd, true, "gelu")
	reg := lemmas.Default()
	checker := NewChecker(Options{Registry: reg, Cache: openCache(t)})

	if _, err := checker.Check(oldGs, gd, oldRi); err != nil {
		t.Fatalf("old graph: %v", err)
	}
	delta, err := checker.DiffCheck(oldGs, newGs, gd, oldRi, newRi)
	if err != nil {
		t.Fatalf("diff check: %v", err)
	}
	if delta.UnchangedOps != 1 || delta.ReplayedOps != 1 || delta.RecheckedOps != 2 {
		t.Fatalf("delta counts %d unchanged / %d replayed / %d rechecked, want 1/1/2",
			delta.UnchangedOps, delta.ReplayedOps, delta.RecheckedOps)
	}
	if len(delta.Changed) != 2 || len(delta.NewlyFailing) != 0 {
		t.Fatalf("changed %v newly failing %v", delta.Changed, delta.NewlyFailing)
	}
	for _, op := range delta.Changed {
		if op.Verdict != "refined" {
			t.Errorf("%s re-checked to %q, want refined (%s)", op.Label, op.Verdict, op.Cause)
		}
	}
	if delta.Report.Cache.Hits != 1 {
		t.Errorf("cache hits %d, want 1 (the replayed side branch): %+v",
			delta.Report.Cache.Hits, delta.Report.Cache)
	}
	if delta.Report.LiveStats.Iterations == 0 {
		t.Error("re-checked cone performed no live saturation")
	}
	rendered := delta.Render()
	if !strings.Contains(rendered, "3 ops — 1 unchanged (1 replayed), 2 re-checked") {
		t.Errorf("render header: %q", rendered)
	}
	if !strings.Contains(rendered, "adder: check (cone changed) -> refined") ||
		!strings.Contains(rendered, "act: tainted-upstream (upstream cone changed) -> refined") {
		t.Errorf("render body: %q", rendered)
	}

	// The incremental run's relation must match a from-scratch check of
	// the edited graph — replay never changes results, only work.
	full, err := NewChecker(Options{Registry: reg}).Check(newGs, gd, newRi)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := delta.Report.OutputRelation.Render(newGs), full.OutputRelation.Render(newGs); got != want {
		t.Errorf("diff relation differs from full check:\n--- full ---\n%s\n--- diff ---\n%s", want, got)
	}
}

// TestDiffCheckNewlyFailing breaks the activation in the edited graph:
// the diff must localize the failure to the edited operator and
// classify it newly-failing ("refined before the edit"), while the
// untouched branch still replays.
func TestDiffCheckNewlyFailing(t *testing.T) {
	gd := diffGd(t)
	oldGs, oldRi := diffGs(t, gd, false, "gelu")
	newGs, newRi := diffGs(t, gd, false, "relu") // G_d still computes gelu
	checker := NewChecker(Options{Registry: lemmas.Default(), Cache: openCache(t)})

	if _, err := checker.Check(oldGs, gd, oldRi); err != nil {
		t.Fatalf("old graph: %v", err)
	}
	delta, err := checker.DiffCheck(oldGs, newGs, gd, oldRi, newRi)
	if err == nil {
		t.Fatal("broken edit verified")
	}
	if delta == nil {
		t.Fatal("per-operator failure must still produce a delta report")
	}
	// Only act's own attribute changed: adder and side are unchanged
	// and replay; act is the lone re-check.
	if delta.UnchangedOps != 2 || delta.ReplayedOps != 2 || delta.RecheckedOps != 1 {
		t.Fatalf("delta counts %d unchanged / %d replayed / %d rechecked, want 2/2/1",
			delta.UnchangedOps, delta.ReplayedOps, delta.RecheckedOps)
	}
	if len(delta.NewlyFailing) != 1 {
		t.Fatalf("newly failing %v", delta.NewlyFailing)
	}
	nf := delta.NewlyFailing[0]
	if nf.Label != "act" || !strings.Contains(nf.Cause, "refined before the edit") {
		t.Fatalf("newly failing entry %+v", nf)
	}
	if nf.Verdict != "disproved" {
		t.Fatalf("verdict %q, want disproved", nf.Verdict)
	}
	if !strings.Contains(delta.Render(), "newly failing:") {
		t.Errorf("render misses the newly-failing section: %q", delta.Render())
	}
}

// TestDiffCheckNoCache: without a cache the plan still proves which
// cones are unchanged, but every "replay" honestly falls back to a
// live check — slower, never stale, and the verdicts still match.
func TestDiffCheckNoCache(t *testing.T) {
	gd := diffGd(t)
	oldGs, oldRi := diffGs(t, gd, false, "gelu")
	newGs, newRi := diffGs(t, gd, true, "gelu")
	checker := NewChecker(Options{Registry: lemmas.Default()})

	delta, err := checker.DiffCheck(oldGs, newGs, gd, oldRi, newRi)
	if err != nil {
		t.Fatal(err)
	}
	if delta.UnchangedOps != 1 || delta.ReplayedOps != 0 || delta.RecheckedOps != 3 {
		t.Fatalf("delta counts %d unchanged / %d replayed / %d rechecked, want 1/0/3",
			delta.UnchangedOps, delta.ReplayedOps, delta.RecheckedOps)
	}
	for _, op := range delta.Plan.Ops {
		if op.Key != "" {
			t.Fatalf("cacheless diff plan op carries a key: %+v", op)
		}
	}
}
