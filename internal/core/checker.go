// Package core implements ENTANGLE's contribution: the iterative
// model-refinement checker of §4. It walks the sequential model G_s in
// topological order and, for each operator v, computes a clean output
// relation R_v mapping v's outputs to tensors of the distributed
// implementation G_d (Listing 1/2), using equality saturation over a
// per-operator e-graph and the frontier-restricted exploration of G_d
// from Listing 3. A missing R_v is reported as a RefinementError
// naming v — the paper's bug-localization output.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"entangle/internal/egraph"
	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/lemmas"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// Options tune the checker. The zero value selects the defaults used
// throughout the evaluation.
type Options struct {
	// Saturate bounds each per-operator equality-saturation run.
	Saturate egraph.SaturateOpts
	// MaxMappings caps how many clean mappings are kept per tensor
	// (the paper keeps "the simplest version of each set", §4.3.2; we
	// keep the MaxMappings simplest distinct ones). It must exceed the
	// parallelism degree — replicated tensors carry one bare-leaf
	// mapping per rank, and dropping any starves the T_rel frontier.
	// Default 16.
	MaxMappings int
	// MaxFrontierIters bounds the Listing-3 exploration loop.
	// Default: |G_d| + 1.
	MaxFrontierIters int
	// DisableFrontier folds every G_d node into every per-operator
	// e-graph, disabling the §4.3.1 optimization. Used by the ablation
	// benchmarks.
	DisableFrontier bool
	// Registry supplies the lemma library; nil selects lemmas.Default().
	Registry *lemmas.Registry
	// Workers bounds the wavefront scheduler's pool: independent G_s
	// operators (every input's producer already checked) run their
	// per-operator e-graph saturations concurrently. 0 selects
	// runtime.GOMAXPROCS(0); 1 preserves the strictly sequential
	// topo-order walk. Any value produces byte-identical reports —
	// stats merge in topo order and a RefinementError always names
	// the earliest failing operator — so this is purely a wall-clock
	// knob.
	Workers int
	// OpObserver, when non-nil, is called after each operator's check
	// completes, with its wall-clock duration. It is invoked from pool
	// goroutines (the scheduler runs even Workers == 1 on a pool of
	// one) and must be safe for concurrent use when Workers > 1. The
	// bench harness uses it for the wavefront speedup study. A panic
	// in the observer is recovered into an EngineFault verdict for the
	// observed operator.
	OpObserver func(v *graph.Node, d time.Duration)
	// OpTimeout bounds each operator's wall-clock check time. An
	// operator that exceeds it is classified Inconclusive(Timeout)
	// instead of hanging or aborting the run. 0 disables the
	// per-operator deadline. (The whole-run deadline is the context
	// given to CheckContext.)
	OpTimeout time.Duration
	// KeepGoing selects graceful degradation: a failing operator's
	// downstream cone is skipped, independent subgraphs keep checking,
	// and Check returns a Report whose Failures field lists every
	// failing operator in topological order (strictly better bug
	// localization than the paper's single-error output). The returned
	// error is the earliest failure, as in the default mode. False
	// preserves the paper's first-error-only behaviour.
	KeepGoing bool
	// BudgetEscalations is how many times an operator whose saturation
	// hit MaxNodes/MaxIters without disproving refinement is retried
	// with a geometrically larger budget (×4 per escalation) before
	// being declared inconclusive. 0 selects the default of 1
	// escalation; negative disables escalation entirely.
	BudgetEscalations int
	// PreOp, when non-nil, runs before each operator's check on the
	// worker goroutine that will check it; returning a non-nil
	// SaturateOpts replaces that operator's base saturation budget
	// (escalation still multiplies it). Fault-injection harnesses
	// (internal/faultinject) use this hook to panic, stall, or starve
	// specific operators; a panic in PreOp is recovered into an
	// EngineFault verdict exactly like a panicking lemma.
	PreOp func(v *graph.Node) *egraph.SaturateOpts
	// Cache, when non-nil, is the content-addressed verdict cache
	// consulted before each operator's saturation (see cache.go for
	// the key construction and reuse-safety argument). One cache may
	// be shared across checkers and concurrent Check calls. Operators
	// whose budget a PreOp override replaced bypass the cache: the
	// override changes the effective budget without changing the key.
	// *vcache.Cache is the single-node store; a cluster.Cache routes
	// the same Get/Put through shard owners across a fleet.
	Cache VerdictStore
	// Unplanned bypasses the planning layer (planner.go): dispositions
	// are decided inline at check time, the pre-plan code path. Both
	// paths produce byte-identical reports — the differential suite
	// asserts exactly that — so this exists for those tests and for
	// bisecting planner regressions, not for production use.
	Unplanned bool
}

// escalationFactor is the geometric budget growth per escalation.
const escalationFactor = 4

func (o Options) withDefaults() Options {
	if o.MaxMappings == 0 {
		o.MaxMappings = 16
	}
	if o.Registry == nil {
		o.Registry = lemmas.Default()
	}
	if o.Saturate.MaxIters == 0 {
		o.Saturate.MaxIters = 24
	}
	if o.Saturate.MaxNodes == 0 {
		o.Saturate.MaxNodes = 60_000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	switch {
	case o.BudgetEscalations == 0:
		o.BudgetEscalations = 1
	case o.BudgetEscalations < 0:
		o.BudgetEscalations = 0
	}
	return o
}

// RefinementError reports that G_d could not be shown to refine G_s,
// identifying the sequential operator whose outputs have no clean
// mapping — the actionable output of §6.2.
type RefinementError struct {
	Op     *graph.Node   // operator v ∈ G_s where the search terminated
	Tensor *graph.Tensor // the unmappable output tensor
	// InputMappings renders the relations of v's inputs, which the
	// paper's users inspect to localize the root cause.
	InputMappings string
}

func (e *RefinementError) Error() string {
	msg := fmt.Sprintf("refinement failed: could not map outputs for operator %q (op %s, output %q)",
		e.Op.Label, e.Op.Op, e.Tensor.Name)
	if e.InputMappings != "" {
		msg += "\ninput relations at the failing operator:\n" + e.InputMappings
	}
	return msg
}

// outputResolveError classifies a failed dedicated output-resolution
// pass (resolveOutput): the verdict names the producing operator and
// records whether the resolve saturation reached fixpoint (disproved)
// or stopped on a budget (inconclusive). It unwraps to the underlying
// *RefinementError, and CheckContext strips the wrapper before
// returning, so callers only ever see the refinement error; the
// wrapper exists so KeepGoing mode can record the verdict and hand
// back the partial report instead of dropping it.
type outputResolveError struct{ verdict OpVerdict }

func (e *outputResolveError) Error() string { return e.verdict.Err.Error() }
func (e *outputResolveError) Unwrap() error { return e.verdict.Err }

// Report is the result of a refinement check. On success every field
// is populated; in KeepGoing mode a failing check still returns the
// Report (alongside the earliest failure as the error) with Failures
// carrying the full multi-failure picture and OutputRelation nil.
type Report struct {
	// OutputRelation is the complete clean relation R_o mapping every
	// G_s output to expressions over G_d outputs. Nil when Failures is
	// non-empty: an incomplete walk cannot complete R_o.
	OutputRelation *relation.Relation
	// FullRelation additionally contains mappings of intermediate
	// tensors accumulated during the walk (useful for inspection).
	FullRelation *relation.Relation
	// Stats aggregates saturation statistics; Stats.Applications feeds
	// the Figure 6 lemma heatmap. Cache hits contribute their STORED
	// stats here, so the aggregate matches a cache-disabled run.
	Stats egraph.Stats
	// LiveStats aggregates only the saturation work actually performed
	// this run: cache hits contribute nothing. On a fully warm cache
	// LiveStats.Iterations is zero — the acceptance signal that no
	// operator was re-saturated.
	LiveStats egraph.Stats
	// Cache summarizes this run's verdict-cache traffic; zero when
	// Options.Cache is nil.
	Cache CacheStats
	// Plan is the decision layer's output this run executed: one
	// disposition per operator in topo order (planner.go). Nil on the
	// Options.Unplanned path.
	Plan *Plan
	// OpsProcessed counts the G_s operators actually checked (skipped
	// cone members in KeepGoing mode are excluded).
	OpsProcessed int
	// Duration is wall-clock verification time (Figure 3/4).
	Duration time.Duration
	// Verdicts classifies every operator in topological order.
	Verdicts []OpVerdict
	// Failures lists the non-refined verdicts in topological order —
	// the multi-failure bug-localization output of KeepGoing mode. In
	// the default first-error mode it is always empty (the first
	// failure is returned as the error instead).
	Failures []OpVerdict
}

// RenderFailures renders the multi-failure report one verdict per
// line, in topological order. The rendering is deterministic (no
// durations, stacks, or addresses): for a fixed model, fault seed, and
// options, any Workers value produces byte-identical output — the
// chaos harness asserts exactly that.
func (r *Report) RenderFailures() string {
	var b strings.Builder
	for _, v := range r.Failures {
		b.WriteString(v.Describe())
		b.WriteByte('\n')
	}
	return b.String()
}

// Checker verifies model refinement between a sequential model and a
// distributed implementation.
type Checker struct {
	opts Options
}

// NewChecker returns a checker with the given options.
func NewChecker(opts Options) *Checker {
	return &Checker{opts: opts.withDefaults()}
}

// Check solves the model refinement problem (§3.2): given G_s, G_d and
// a clean input relation R_i, it either returns a complete clean
// output relation R_o or a *RefinementError localizing the bug. It is
// CheckContext with a background context (no deadline, no
// cancellation).
func (c *Checker) Check(gs, gd *graph.Graph, ri *relation.Relation) (*Report, error) {
	return c.CheckContext(context.Background(), gs, gd, ri)
}

// CheckContext is Check under a context: cancelling ctx (deadline,
// Ctrl-C) aborts the run promptly — cancellation is observed between
// saturation iterations and between frontier folds, so the latency is
// bounded by one iteration — and returns an error wrapping ctx.Err().
// Every worker goroutine has exited by the time CheckContext returns.
//
// In KeepGoing mode a failed check returns a non-nil *Report (with
// Failures populated in topo order) alongside the earliest failure as
// the error; in the default mode a failed check returns a nil Report,
// as before.
func (c *Checker) CheckContext(ctx context.Context, gs, gd *graph.Graph, ri *relation.Relation) (*Report, error) {
	return c.checkContext(ctx, gs, gd, ri, nil)
}

// planFn builds the Plan for one run after the cache keys are
// precomputed; DiffCheckContext injects the diff planner through it.
// nil selects the full-check planner (or, with Options.Unplanned, no
// plan at all).
type planFn func(r *runState, order []*graph.Node) (*Plan, error)

func (c *Checker) checkContext(ctx context.Context, gs, gd *graph.Graph, ri *relation.Relation, planner planFn) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	//lint:ignore determinism Report.Duration is timing metadata, not checker input
	start := time.Now()
	order, err := gs.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("core: G_s: %v", err)
	}
	gdOrder, err := gd.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("core: G_d: %v", err)
	}
	run := &runState{
		opts:    c.opts,
		gs:      gs,
		gd:      gd,
		rel:     ri.Clone(),
		ctx:     mergedContext(gs, gd),
		rules:   c.opts.Registry.Rules(), // materialized once per Check
		gdOrder: gdOrder,
	}
	run.compiled = egraph.CompileRules(run.rules)
	for _, in := range gs.Inputs {
		if !run.rel.Has(in) {
			return nil, fmt.Errorf("core: input relation has no mapping for G_s input %q", gs.Tensor(in).Name)
		}
	}
	if err := run.initCache(order); err != nil {
		return nil, err
	}
	switch {
	case planner != nil:
		plan, err := planner(run, order)
		if err != nil {
			return nil, err
		}
		if len(plan.Ops) != len(order) {
			return nil, fmt.Errorf("core: plan covers %d operators, graph has %d", len(plan.Ops), len(order))
		}
		run.plan = plan
	case !c.opts.Unplanned:
		run.plan = run.buildPlan(order)
	}

	report := &Report{FullRelation: run.rel, Stats: egraph.Stats{Applications: map[string]int{}}, Plan: run.plan}
	workers := c.opts.Workers
	if workers > len(order) {
		workers = len(order)
	}
	if err := run.runSchedule(ctx, order, workers, report); err != nil {
		return nil, err
	}
	if len(report.Failures) > 0 {
		// KeepGoing degraded result: the walk is incomplete, so R_o
		// cannot be resolved; hand back the partial report with the
		// earliest failure as the error (the same operator the default
		// mode would have reported).
		run.reportCache(report)
		//lint:ignore determinism Report.Duration is timing metadata, not checker input
		report.Duration = time.Since(start)
		return report, report.Failures[0].Err
	}

	// Listing 1 line 9: filter to the output relation over O(G_d).
	ro, err := run.resolveOutputs(ctx, report)
	if err != nil {
		var oe *outputResolveError
		if !errors.As(err, &oe) {
			return nil, err // context cancellation or an engine error
		}
		if !c.opts.KeepGoing {
			return nil, oe.verdict.Err
		}
		// An unmappable output discovered after a clean walk is a
		// failure like any other: record the verdict so KeepGoing mode
		// hands back the partial report instead of dropping it. (The
		// walk's per-operator budgets can trim mappings that a later
		// dedicated resolution pass then misses.)
		report.Verdicts = append(report.Verdicts, oe.verdict)
		report.Failures = append(report.Failures, oe.verdict)
		run.reportCache(report)
		//lint:ignore determinism Report.Duration is timing metadata, not checker input
		report.Duration = time.Since(start)
		return report, oe.verdict.Err
	}
	report.OutputRelation = ro
	run.reportCache(report)
	//lint:ignore determinism Report.Duration is timing metadata, not checker input
	report.Duration = time.Since(start)
	return report, nil
}

// runState carries one Check invocation's working data. During a
// wavefront run it is shared across workers: gs, gd, ctx, rules and
// gdOrder are read-only after construction, and rel is internally
// synchronized (copy-on-read Get).
type runState struct {
	opts  Options
	gs    *graph.Graph
	gd    *graph.Graph
	rel   *relation.Relation
	ctx   *sym.Context
	rules []*egraph.Rule
	// compiled is the matcher's one-time analysis of rules, shared by
	// every saturation this run performs (it is read-only and safe
	// across workers).
	compiled *egraph.CompiledRules
	gdOrder  []*graph.Node
	// cache is the per-run verdict-cache context (cache.go); nil when
	// Options.Cache is nil. Its key map is filled before the scheduler
	// starts and read-only afterwards.
	cache *cacheState
	// plan is the decision layer's output (planner.go), built before
	// the scheduler starts and read-only afterwards; nil on the
	// Options.Unplanned path.
	plan *Plan
}

func mergedContext(gs, gd *graph.Graph) *sym.Context {
	ctx := sym.NewContext()
	for _, a := range gs.Ctx.Assumptions() {
		ctx.AssumeGE(a, sym.Const(0))
	}
	for _, a := range gd.Ctx.Assumptions() {
		ctx.AssumeGE(a, sym.Const(0))
	}
	return ctx
}

// newEGraph builds a per-operator e-graph wired to both graphs' tensor
// shapes.
func (r *runState) newEGraph() *egraph.EGraph {
	eg := egraph.New(r.ctx)
	eg.SetLeafShapeFn(func(tid int) (shape.Shape, bool) {
		if relation.IsGd(tid) {
			id := relation.GdTensorID(tid)
			if int(id) < len(r.gd.Tensors) {
				return r.gd.Tensor(id).Shape, true
			}
			return nil, false
		}
		if tid >= 0 && tid < len(r.gs.Tensors) {
			return r.gs.Tensor(graph.TensorID(tid)).Shape, true
		}
		return nil, false
	})
	return eg
}

func allowGdLeaf(tid int) bool { return relation.IsGd(tid) }

// observedProcessOp wraps processOp with the OpObserver timing hook.
func (r *runState) observedProcessOp(ctx context.Context, v *graph.Node, budget egraph.SaturateOpts) (egraph.Stats, []outputMapping, error) {
	if r.opts.OpObserver == nil {
		return r.processOp(ctx, v, budget)
	}
	//lint:ignore determinism observer latency is telemetry, not checker input
	start := time.Now()
	stats, outs, err := r.processOp(ctx, v, budget)
	//lint:ignore determinism observer latency is telemetry, not checker input
	r.opts.OpObserver(v, time.Since(start))
	return stats, outs, err
}

// recoveredProcessOp runs one check attempt under panic recovery: a
// panicking lemma, shape rule, or observer is converted into a
// structured *EngineFaultError naming the operator, with the stack,
// instead of unwinding through the worker pool (where, before this
// layer, it deadlocked the scheduler by leaking an active slot).
func (r *runState) recoveredProcessOp(ctx context.Context, v *graph.Node, budget egraph.SaturateOpts) (stats egraph.Stats, outs []outputMapping, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			outs = nil
			err = &EngineFaultError{Op: v, Recovered: rec, Stack: debug.Stack()}
		}
	}()
	return r.observedProcessOp(ctx, v, budget)
}

// safePreOp invokes the PreOp hook under the same panic recovery.
func (r *runState) safePreOp(v *graph.Node) (override *egraph.SaturateOpts, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			override = nil
			err = &EngineFaultError{Op: v, Recovered: rec, Stack: debug.Stack()}
		}
	}()
	return r.opts.PreOp(v), nil
}

// checkOp is the resilient per-operator harness: it runs processOp
// under panic recovery and a per-operator deadline, escalates the
// saturation budget when the search stops on a limit without reaching
// fixpoint, and classifies the outcome into an OpVerdict.
//
// The returned fatal error, when non-nil, aborts the whole check even
// in KeepGoing mode: it reports conditions that are not per-operator
// analysis outcomes — the run context was cancelled, or the input
// graphs are malformed.
//
// Determinism: for a fixed graph, options, and (injected) faults, the
// verdict depends only on the operator — attempts run the saturation
// from a fresh e-graph with deterministic budgets — so any Workers
// value yields the same verdict for every operator. Timeout verdicts
// (OpTimeout) are the one wall-clock-dependent exception.
//
// acc carries the operator's total saturation statistics — replayed
// from the cache on a hit — while live carries only work performed
// this run (zero on a hit); the scheduler merges them into
// Report.Stats and Report.LiveStats respectively.
//
// pop is the operator's plan entry (nil on the unplanned path). The
// planned and unplanned paths differ only in *when* the cache was
// probed — plan time versus check time; entries are immutable, so the
// replayed bytes are the same — and hit/miss accounting happens here
// in both, keeping reports byte-identical between them.
func (r *runState) checkOp(ctx context.Context, pop *PlanOp, v *graph.Node) (acc, live egraph.Stats, verdict OpVerdict, fatal error) {
	verdict = OpVerdict{Op: v, Kind: VerdictRefined}
	//lint:ignore determinism OpVerdict.Duration is timing metadata, not checker input
	start := time.Now()
	//lint:ignore determinism OpVerdict.Duration is timing metadata, not checker input
	defer func() { verdict.Duration = time.Since(start) }()

	opCtx := ctx
	if r.opts.OpTimeout > 0 {
		var cancel context.CancelFunc
		opCtx, cancel = context.WithTimeout(ctx, r.opts.OpTimeout)
		defer cancel()
	}

	budget := r.opts.Saturate
	overridden := false
	if r.opts.PreOp != nil {
		override, err := r.safePreOp(v)
		if err != nil {
			verdict.Kind = VerdictEngineFault
			verdict.Err = err
			return
		}
		if override != nil {
			budget = *override
			overridden = true
		}
	}

	// A PreOp override changes the effective budget without changing
	// the cache key, so overridden operators bypass the cache in both
	// directions (no lookup, no store) — the plan's disposition is
	// advisory for overridden operators.
	useCache := r.cache != nil && !overridden
	switch {
	case useCache && pop != nil:
		// Planned path: consume the plan-time probe. A prefetched entry
		// replays exactly as a check-time hit would; a failed replay or
		// an absent entry falls through to the live check below.
		if pop.entry != nil {
			if stats, cached, ok := r.replayEntry(v, pop.entry); ok {
				r.cache.hits.Add(1)
				acc = stats
				cached.Duration = verdict.Duration
				verdict = cached
				return
			}
			r.cache.replayRejects.Add(1)
		}
		r.cache.misses.Add(1)
	case useCache:
		// Unplanned path: probe and replay at check time.
		if stats, cached, ok := r.replayCached(v); ok {
			acc = stats
			cached.Duration = verdict.Duration
			verdict = cached
			return
		}
	}

	for attempt := 0; ; attempt++ {
		stats, outs, err := r.recoveredProcessOp(opCtx, v, budget)
		acc.Merge(stats)
		live.Merge(stats)
		if err == nil {
			if useCache {
				r.storeVerdict(v, acc, verdict, outs)
			}
			return
		}
		var ef *EngineFaultError
		if errors.As(err, &ef) {
			verdict.Kind = VerdictEngineFault
			verdict.Err = ef
			return
		}
		if ctx.Err() != nil {
			// The whole-run context (global -timeout, Ctrl-C) expired:
			// abort everything.
			fatal = fmt.Errorf("core: check cancelled at operator %q: %w", v.Label, ctx.Err())
			return
		}
		var re *RefinementError
		isRefinement := errors.As(err, &re)
		if opCtx.Err() != nil {
			// Only the per-operator deadline expired: this operator is
			// inconclusive, the rest of the run continues.
			verdict.Kind = VerdictInconclusive
			verdict.Reason = ReasonTimeout
			verdict.Err = &InconclusiveError{Op: v, Reason: ReasonTimeout, Escalations: verdict.Escalations, Cause: re}
			return
		}
		if !isRefinement {
			// Malformed input (a collective in G_s, an inexpressible
			// operator definition): not an analysis outcome.
			fatal = err
			return
		}
		if stats.Saturated || stats.Runs == 0 {
			// Fixpoint reached (or the failure precedes any search):
			// the e-graph holds every derivable equivalence and no
			// clean mapping exists — refinement is genuinely disproved
			// and more budget cannot change the answer.
			verdict.Kind = VerdictDisproved
			verdict.Err = re
			if useCache {
				r.storeVerdict(v, acc, verdict, nil)
			}
			return
		}
		if attempt < r.opts.BudgetEscalations {
			// The search stopped on a budget, so the missing mapping
			// may lie just beyond it: retry with a geometrically
			// larger budget before declaring the operator inconclusive.
			budget.MaxIters *= escalationFactor
			budget.MaxNodes *= escalationFactor
			verdict.Escalations = attempt + 1
			continue
		}
		verdict.Kind = VerdictInconclusive
		verdict.Reason = ReasonBudgetExhausted
		verdict.Err = &InconclusiveError{Op: v, Reason: ReasonBudgetExhausted, Escalations: verdict.Escalations, Cause: re}
		return
	}
}

// processOp is compute_node_out_rel (Listing 2) with the Listing-3
// frontier optimization: seed the e-graph with v's output expression
// and its input mappings, fold in G_d operator definitions restricted
// to the related-tensor frontier, saturate with the lemma library, and
// extract the clean mappings of v's outputs. It returns the operator's
// saturation statistics; the caller merges them in topo order so the
// aggregate is identical however ops were scheduled. processOp only
// reads mappings of v's inputs (complete once their producers are
// done) and only writes mappings of v's outputs, which is what makes
// the wavefront schedule race-free and deterministic.
//
// ctx bounds the search: it is threaded into every Saturate call and
// checked between frontier iterations, so cancellation surfaces within
// one iteration as a context error (never disguised as a refinement
// failure). budget bounds each saturation run; checkOp escalates it
// across attempts.
func (r *runState) processOp(ctx context.Context, v *graph.Node, budget egraph.SaturateOpts) (egraph.Stats, []outputMapping, error) {
	var acc egraph.Stats
	if expr.Collective(v.Op) {
		return acc, nil, fmt.Errorf("core: sequential model %s contains collective %q", r.gs.Name, v.Label)
	}
	satOpts := budget
	satOpts.Ctx = ctx
	satOpts.Compiled = r.compiled
	eg := r.newEGraph()

	// Step 1 (rewrite_t_to_expr): leaves for v's inputs, unioned with
	// every known mapping. In e-graph form, substitution is union.
	for _, in := range v.Inputs {
		t := r.gs.Tensor(in)
		cls := eg.AddTerm(relation.GsLeaf(t))
		maps := r.rel.Get(in)
		if len(maps) == 0 {
			return acc, nil, &RefinementError{Op: v, Tensor: t,
				InputMappings: fmt.Sprintf("  (no mapping recorded for input %q)", t.Name)}
		}
		for _, m := range maps {
			eg.Union(cls, eg.AddTerm(m))
		}
	}
	eg.Rebuild()

	outClasses := make([]egraph.ClassID, len(v.Outputs))
	for i := range v.Outputs {
		base, err := r.gs.OutputExpr(v, i)
		if err != nil {
			return acc, nil, err
		}
		outClasses[i] = eg.AddTerm(base)
	}

	// Listing 3: the related-tensor frontier T_rel starts from the G_d
	// tensors reachable through the mappings of v's inputs.
	tRel := map[graph.TensorID]bool{}
	for _, gdID := range r.rel.GdLeaves(v.Inputs) {
		tRel[gdID] = true
	}
	if r.opts.DisableFrontier {
		for _, t := range r.gd.Tensors {
			tRel[t.ID] = true
		}
	}

	folded := make(map[graph.NodeID]bool, len(r.gd.Nodes))
	maxIters := r.opts.MaxFrontierIters
	if maxIters == 0 {
		maxIters = len(r.gd.Nodes) + 1
	}

	for iter := 0; iter < maxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return acc, nil, fmt.Errorf("core: checking %q: %w", v.Label, err)
		}
		progress := false
		for _, n := range r.gdOrder {
			if folded[n.ID] {
				continue
			}
			ready := true
			for _, in := range n.Inputs {
				if !tRel[in] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if err := r.foldGdNode(eg, n); err != nil {
				return acc, nil, err
			}
			folded[n.ID] = true
			progress = true
		}
		if !progress && iter > 0 {
			break
		}

		acc.Merge(eg.Saturate(r.rules, satOpts))

		// Grow T_rel with tensors appearing in newly derived clean
		// expressions of v's outputs ("related to v's outputs").
		grew := false
		for _, oc := range outClasses {
			for _, t := range eg.ExtractAllClean(oc, allowGdLeaf, r.opts.MaxMappings) {
				for _, leaf := range t.Leaves() {
					if relation.IsGd(leaf) {
						id := relation.GdTensorID(leaf)
						if !tRel[id] {
							tRel[id] = true
							grew = true
						}
					}
				}
			}
		}
		// Outputs of folded nodes whose class gained a clean
		// representation are also related.
		for id := range folded {
			for _, out := range r.gd.Node(id).Outputs {
				if tRel[out] {
					continue
				}
				t := r.gd.Tensor(out)
				if cls, ok := eg.LookupTerm(relation.GdLeaf(t)); ok {
					if eg.HasCleanRepresentation(cls, allowGdLeaf) {
						tRel[out] = true
						grew = true
					}
				}
			}
		}
		if !progress && !grew {
			break
		}
	}

	// A run cancelled mid-saturation must report the cancellation, not
	// a refinement failure extracted from a truncated e-graph.
	if err := ctx.Err(); err != nil {
		return acc, nil, fmt.Errorf("core: checking %q: %w", v.Label, err)
	}

	// Step 4: extract and record the clean output relation R_v. The
	// exact slices added to the relation are also returned, in order,
	// so checkOp can cache them for replay.
	outs := make([]outputMapping, 0, len(v.Outputs))
	for i, out := range v.Outputs {
		mappings := eg.ExtractAllClean(outClasses[i], allowGdLeaf, r.opts.MaxMappings)
		if len(mappings) == 0 {
			return acc, nil, &RefinementError{Op: v, Tensor: r.gs.Tensor(out),
				InputMappings: r.renderInputMappings(v)}
		}
		r.rel.AddAll(out, mappings)
		om := outputMapping{main: mappings}
		// Opportunistically record output-restricted mappings too.
		if r.gs.IsOutput(out) {
			restricted := eg.ExtractAllClean(outClasses[i], r.allowGdOutput, r.opts.MaxMappings)
			r.rel.AddAll(out, restricted)
			om.restricted = restricted
		}
		outs = append(outs, om)
	}
	return acc, outs, nil
}

// foldGdNode registers a G_d node's defining equations: for each
// output tensor, the leaf is unioned with the operator's expression
// over its input leaves (collectives expand to clean operators).
func (r *runState) foldGdNode(eg *egraph.EGraph, n *graph.Node) error {
	for i, out := range n.Outputs {
		def, err := r.gd.OutputExpr(n, i)
		if err != nil {
			return err
		}
		// Rebase leaves into the G_d ID space.
		def = def.Map(func(t *expr.Term) *expr.Term {
			if t.IsLeaf() && !relation.IsGd(t.TID) {
				return relation.GdLeaf(r.gd.Tensor(graph.TensorID(t.TID)))
			}
			return t
		})
		leafCls := eg.AddTerm(relation.GdLeaf(r.gd.Tensor(out)))
		eg.Union(leafCls, eg.AddTerm(def))
	}
	eg.Rebuild()
	return nil
}

func (r *runState) allowGdOutput(tid int) bool {
	if !relation.IsGd(tid) {
		return false
	}
	return r.gd.IsOutput(relation.GdTensorID(tid))
}

func (r *runState) renderInputMappings(v *graph.Node) string {
	var b strings.Builder
	for _, in := range v.Inputs {
		t := r.gs.Tensor(in)
		maps := r.rel.Get(in)
		if len(maps) == 0 {
			fmt.Fprintf(&b, "  %s: (unmapped)\n", t.Name)
			continue
		}
		for _, m := range maps {
			fmt.Fprintf(&b, "  %s = %s\n", t.Name, m)
		}
	}
	return b.String()
}

// resolveOutputs builds R_o: mappings of every G_s output restricted
// to expressions over O(G_d) (Listing 1 line 9). Outputs that did not
// resolve during their producing operator's pass get one dedicated
// resolution pass that folds G_d forward from their known mappings.
func (r *runState) resolveOutputs(ctx context.Context, report *Report) (*relation.Relation, error) {
	ro := relation.New()
	for _, o := range r.gs.Outputs {
		for _, m := range r.rel.Get(o) {
			if r.leavesAreGdOutputs(m) {
				ro.Add(o, m)
			}
		}
		if ro.Has(o) {
			continue
		}
		m, err := r.resolveOutput(ctx, o, report)
		if err != nil {
			return nil, err
		}
		ro.AddAll(o, m)
	}
	return ro, nil
}

func (r *runState) leavesAreGdOutputs(t *expr.Term) bool {
	for _, leaf := range t.Leaves() {
		if !relation.IsGd(leaf) || !r.gd.IsOutput(relation.GdTensorID(leaf)) {
			return false
		}
	}
	return true
}

func (r *runState) resolveOutput(ctx context.Context, o graph.TensorID, report *Report) ([]*expr.Term, error) {
	producer := r.gs.Tensor(o).Producer
	fail := func(kind VerdictKind, reason InconclusiveReason) error {
		var v *graph.Node
		if producer != graph.NoProducer {
			v = r.gs.Node(producer)
		} else {
			v = &graph.Node{Label: "(graph input)", Op: expr.OpIdentity}
		}
		re := &RefinementError{Op: v, Tensor: r.gs.Tensor(o),
			InputMappings: r.renderInputMappings(v)}
		return &outputResolveError{verdict: OpVerdict{Op: v, Kind: kind, Reason: reason, Err: re}}
	}

	maps := r.rel.Get(o)
	if len(maps) == 0 {
		// No mapping at all for the output: no search ran, nothing to
		// escalate — the same classification checkOp gives Runs == 0.
		return nil, fail(VerdictDisproved, ReasonNone)
	}
	eg := r.newEGraph()
	cls := eg.AddTerm(relation.GsLeaf(r.gs.Tensor(o)))
	tRel := map[graph.TensorID]bool{}
	for _, m := range maps {
		eg.Union(cls, eg.AddTerm(m))
		for _, leaf := range m.Leaves() {
			if relation.IsGd(leaf) {
				tRel[relation.GdTensorID(leaf)] = true
			}
		}
	}
	eg.Rebuild()

	folded := map[graph.NodeID]bool{}
	for iter := 0; iter <= len(r.gd.Nodes); iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: resolving output %q: %w", r.gs.Tensor(o).Name, err)
		}
		progress := false
		for _, n := range r.gdOrder {
			if folded[n.ID] {
				continue
			}
			ready := true
			for _, in := range n.Inputs {
				if !tRel[in] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if err := r.foldGdNode(eg, n); err != nil {
				return nil, err
			}
			for _, out := range n.Outputs {
				tRel[out] = true
			}
			folded[n.ID] = true
			progress = true
		}
		if !progress {
			break
		}
	}
	satOpts := r.opts.Saturate
	satOpts.Ctx = ctx
	satOpts.Compiled = r.compiled
	resolveStats := eg.Saturate(r.rules, satOpts)
	report.Stats.Merge(resolveStats)
	report.LiveStats.Merge(resolveStats)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: resolving output %q: %w", r.gs.Tensor(o).Name, err)
	}

	out := eg.ExtractAllClean(eg.Find(cls), r.allowGdOutput, r.opts.MaxMappings)
	if len(out) == 0 {
		if resolveStats.Saturated {
			return nil, fail(VerdictDisproved, ReasonNone)
		}
		// The resolve search stopped on a budget before fixpoint; a
		// mapping may exist beyond the limit, so don't call it a bug.
		return nil, fail(VerdictInconclusive, ReasonBudgetExhausted)
	}
	return out, nil
}
