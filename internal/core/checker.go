// Package core implements ENTANGLE's contribution: the iterative
// model-refinement checker of §4. It walks the sequential model G_s in
// topological order and, for each operator v, computes a clean output
// relation R_v mapping v's outputs to tensors of the distributed
// implementation G_d (Listing 1/2), using equality saturation over a
// per-operator e-graph and the frontier-restricted exploration of G_d
// from Listing 3. A missing R_v is reported as a RefinementError
// naming v — the paper's bug-localization output.
package core

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"entangle/internal/egraph"
	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/lemmas"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// Options tune the checker. The zero value selects the defaults used
// throughout the evaluation.
type Options struct {
	// Saturate bounds each per-operator equality-saturation run.
	Saturate egraph.SaturateOpts
	// MaxMappings caps how many clean mappings are kept per tensor
	// (the paper keeps "the simplest version of each set", §4.3.2; we
	// keep the MaxMappings simplest distinct ones). It must exceed the
	// parallelism degree — replicated tensors carry one bare-leaf
	// mapping per rank, and dropping any starves the T_rel frontier.
	// Default 16.
	MaxMappings int
	// MaxFrontierIters bounds the Listing-3 exploration loop.
	// Default: |G_d| + 1.
	MaxFrontierIters int
	// DisableFrontier folds every G_d node into every per-operator
	// e-graph, disabling the §4.3.1 optimization. Used by the ablation
	// benchmarks.
	DisableFrontier bool
	// Registry supplies the lemma library; nil selects lemmas.Default().
	Registry *lemmas.Registry
	// Workers bounds the wavefront scheduler's pool: independent G_s
	// operators (every input's producer already checked) run their
	// per-operator e-graph saturations concurrently. 0 selects
	// runtime.GOMAXPROCS(0); 1 preserves the strictly sequential
	// topo-order walk. Any value produces byte-identical reports —
	// stats merge in topo order and a RefinementError always names
	// the earliest failing operator — so this is purely a wall-clock
	// knob.
	Workers int
	// OpObserver, when non-nil, is called after each operator's check
	// completes, with its wall-clock duration. With Workers > 1 it is
	// invoked from pool goroutines and must be safe for concurrent
	// use. The bench harness uses it for the wavefront speedup study.
	OpObserver func(v *graph.Node, d time.Duration)
}

func (o Options) withDefaults() Options {
	if o.MaxMappings == 0 {
		o.MaxMappings = 16
	}
	if o.Registry == nil {
		o.Registry = lemmas.Default()
	}
	if o.Saturate.MaxIters == 0 {
		o.Saturate.MaxIters = 24
	}
	if o.Saturate.MaxNodes == 0 {
		o.Saturate.MaxNodes = 60_000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// RefinementError reports that G_d could not be shown to refine G_s,
// identifying the sequential operator whose outputs have no clean
// mapping — the actionable output of §6.2.
type RefinementError struct {
	Op     *graph.Node   // operator v ∈ G_s where the search terminated
	Tensor *graph.Tensor // the unmappable output tensor
	// InputMappings renders the relations of v's inputs, which the
	// paper's users inspect to localize the root cause.
	InputMappings string
}

func (e *RefinementError) Error() string {
	msg := fmt.Sprintf("refinement failed: could not map outputs for operator %q (op %s, output %q)",
		e.Op.Label, e.Op.Op, e.Tensor.Name)
	if e.InputMappings != "" {
		msg += "\ninput relations at the failing operator:\n" + e.InputMappings
	}
	return msg
}

// Report is the result of a successful refinement check.
type Report struct {
	// OutputRelation is the complete clean relation R_o mapping every
	// G_s output to expressions over G_d outputs.
	OutputRelation *relation.Relation
	// FullRelation additionally contains mappings of intermediate
	// tensors accumulated during the walk (useful for inspection).
	FullRelation *relation.Relation
	// Stats aggregates saturation statistics; Stats.Applications feeds
	// the Figure 6 lemma heatmap.
	Stats egraph.Stats
	// OpsProcessed counts the G_s operators checked.
	OpsProcessed int
	// Duration is wall-clock verification time (Figure 3/4).
	Duration time.Duration
}

// Checker verifies model refinement between a sequential model and a
// distributed implementation.
type Checker struct {
	opts Options
}

// NewChecker returns a checker with the given options.
func NewChecker(opts Options) *Checker {
	return &Checker{opts: opts.withDefaults()}
}

// Check solves the model refinement problem (§3.2): given G_s, G_d and
// a clean input relation R_i, it either returns a complete clean
// output relation R_o or a *RefinementError localizing the bug.
func (c *Checker) Check(gs, gd *graph.Graph, ri *relation.Relation) (*Report, error) {
	start := time.Now()
	order, err := gs.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("core: G_s: %v", err)
	}
	gdOrder, err := gd.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("core: G_d: %v", err)
	}
	run := &runState{
		opts:    c.opts,
		gs:      gs,
		gd:      gd,
		rel:     ri.Clone(),
		ctx:     mergedContext(gs, gd),
		rules:   c.opts.Registry.Rules(), // materialized once per Check
		gdOrder: gdOrder,
	}
	for _, in := range gs.Inputs {
		if !run.rel.Has(in) {
			return nil, fmt.Errorf("core: input relation has no mapping for G_s input %q", gs.Tensor(in).Name)
		}
	}

	report := &Report{FullRelation: run.rel, Stats: egraph.Stats{Applications: map[string]int{}}}
	workers := c.opts.Workers
	if workers > len(order) {
		workers = len(order)
	}
	if workers <= 1 {
		// Sequential walk: the reference behaviour.
		for _, v := range order {
			stats, err := run.observedProcessOp(v)
			if err != nil {
				return nil, err
			}
			report.Stats.Merge(stats)
			report.OpsProcessed++
		}
	} else if err := run.runWavefront(order, workers, report); err != nil {
		return nil, err
	}

	// Listing 1 line 9: filter to the output relation over O(G_d).
	ro, err := run.resolveOutputs(report)
	if err != nil {
		return nil, err
	}
	report.OutputRelation = ro
	report.Duration = time.Since(start)
	return report, nil
}

// runState carries one Check invocation's working data. During a
// wavefront run it is shared across workers: gs, gd, ctx, rules and
// gdOrder are read-only after construction, and rel is internally
// synchronized (copy-on-read Get).
type runState struct {
	opts    Options
	gs      *graph.Graph
	gd      *graph.Graph
	rel     *relation.Relation
	ctx     *sym.Context
	rules   []*egraph.Rule
	gdOrder []*graph.Node
}

func mergedContext(gs, gd *graph.Graph) *sym.Context {
	ctx := sym.NewContext()
	for _, a := range gs.Ctx.Assumptions() {
		ctx.AssumeGE(a, sym.Const(0))
	}
	for _, a := range gd.Ctx.Assumptions() {
		ctx.AssumeGE(a, sym.Const(0))
	}
	return ctx
}

// newEGraph builds a per-operator e-graph wired to both graphs' tensor
// shapes.
func (r *runState) newEGraph() *egraph.EGraph {
	eg := egraph.New(r.ctx)
	eg.SetLeafShapeFn(func(tid int) (shape.Shape, bool) {
		if relation.IsGd(tid) {
			id := relation.GdTensorID(tid)
			if int(id) < len(r.gd.Tensors) {
				return r.gd.Tensor(id).Shape, true
			}
			return nil, false
		}
		if tid >= 0 && tid < len(r.gs.Tensors) {
			return r.gs.Tensor(graph.TensorID(tid)).Shape, true
		}
		return nil, false
	})
	return eg
}

func allowGdLeaf(tid int) bool { return relation.IsGd(tid) }

// observedProcessOp wraps processOp with the OpObserver timing hook.
func (r *runState) observedProcessOp(v *graph.Node) (egraph.Stats, error) {
	if r.opts.OpObserver == nil {
		return r.processOp(v)
	}
	start := time.Now()
	stats, err := r.processOp(v)
	r.opts.OpObserver(v, time.Since(start))
	return stats, err
}

// processOp is compute_node_out_rel (Listing 2) with the Listing-3
// frontier optimization: seed the e-graph with v's output expression
// and its input mappings, fold in G_d operator definitions restricted
// to the related-tensor frontier, saturate with the lemma library, and
// extract the clean mappings of v's outputs. It returns the operator's
// saturation statistics; the caller merges them in topo order so the
// aggregate is identical however ops were scheduled. processOp only
// reads mappings of v's inputs (complete once their producers are
// done) and only writes mappings of v's outputs, which is what makes
// the wavefront schedule race-free and deterministic.
func (r *runState) processOp(v *graph.Node) (egraph.Stats, error) {
	var acc egraph.Stats
	if expr.Collective(v.Op) {
		return acc, fmt.Errorf("core: sequential model %s contains collective %q", r.gs.Name, v.Label)
	}
	eg := r.newEGraph()

	// Step 1 (rewrite_t_to_expr): leaves for v's inputs, unioned with
	// every known mapping. In e-graph form, substitution is union.
	for _, in := range v.Inputs {
		t := r.gs.Tensor(in)
		cls := eg.AddTerm(relation.GsLeaf(t))
		maps := r.rel.Get(in)
		if len(maps) == 0 {
			return acc, &RefinementError{Op: v, Tensor: t,
				InputMappings: fmt.Sprintf("  (no mapping recorded for input %q)", t.Name)}
		}
		for _, m := range maps {
			eg.Union(cls, eg.AddTerm(m))
		}
	}
	eg.Rebuild()

	outClasses := make([]egraph.ClassID, len(v.Outputs))
	for i := range v.Outputs {
		base, err := r.gs.OutputExpr(v, i)
		if err != nil {
			return acc, err
		}
		outClasses[i] = eg.AddTerm(base)
	}

	// Listing 3: the related-tensor frontier T_rel starts from the G_d
	// tensors reachable through the mappings of v's inputs.
	tRel := map[graph.TensorID]bool{}
	for _, gdID := range r.rel.GdLeaves(v.Inputs) {
		tRel[gdID] = true
	}
	if r.opts.DisableFrontier {
		for _, t := range r.gd.Tensors {
			tRel[t.ID] = true
		}
	}

	folded := make(map[graph.NodeID]bool, len(r.gd.Nodes))
	maxIters := r.opts.MaxFrontierIters
	if maxIters == 0 {
		maxIters = len(r.gd.Nodes) + 1
	}

	for iter := 0; iter < maxIters; iter++ {
		progress := false
		for _, n := range r.gdOrder {
			if folded[n.ID] {
				continue
			}
			ready := true
			for _, in := range n.Inputs {
				if !tRel[in] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if err := r.foldGdNode(eg, n); err != nil {
				return acc, err
			}
			folded[n.ID] = true
			progress = true
		}
		if !progress && iter > 0 {
			break
		}

		acc.Merge(eg.Saturate(r.rules, r.opts.Saturate))

		// Grow T_rel with tensors appearing in newly derived clean
		// expressions of v's outputs ("related to v's outputs").
		grew := false
		for _, oc := range outClasses {
			for _, t := range eg.ExtractAllClean(oc, allowGdLeaf, r.opts.MaxMappings) {
				for _, leaf := range t.Leaves() {
					if relation.IsGd(leaf) {
						id := relation.GdTensorID(leaf)
						if !tRel[id] {
							tRel[id] = true
							grew = true
						}
					}
				}
			}
		}
		// Outputs of folded nodes whose class gained a clean
		// representation are also related.
		for id := range folded {
			for _, out := range r.gd.Node(id).Outputs {
				if tRel[out] {
					continue
				}
				t := r.gd.Tensor(out)
				if cls, ok := eg.LookupTerm(relation.GdLeaf(t)); ok {
					if eg.HasCleanRepresentation(cls, allowGdLeaf) {
						tRel[out] = true
						grew = true
					}
				}
			}
		}
		if !progress && !grew {
			break
		}
	}

	// Step 4: extract and record the clean output relation R_v.
	for i, out := range v.Outputs {
		mappings := eg.ExtractAllClean(outClasses[i], allowGdLeaf, r.opts.MaxMappings)
		if len(mappings) == 0 {
			return acc, &RefinementError{Op: v, Tensor: r.gs.Tensor(out),
				InputMappings: r.renderInputMappings(v)}
		}
		r.rel.AddAll(out, mappings)
		// Opportunistically record output-restricted mappings too.
		if r.gs.IsOutput(out) {
			restricted := eg.ExtractAllClean(outClasses[i], r.allowGdOutput, r.opts.MaxMappings)
			r.rel.AddAll(out, restricted)
		}
	}
	return acc, nil
}

// foldGdNode registers a G_d node's defining equations: for each
// output tensor, the leaf is unioned with the operator's expression
// over its input leaves (collectives expand to clean operators).
func (r *runState) foldGdNode(eg *egraph.EGraph, n *graph.Node) error {
	for i, out := range n.Outputs {
		def, err := r.gd.OutputExpr(n, i)
		if err != nil {
			return err
		}
		// Rebase leaves into the G_d ID space.
		def = def.Map(func(t *expr.Term) *expr.Term {
			if t.IsLeaf() && !relation.IsGd(t.TID) {
				return relation.GdLeaf(r.gd.Tensor(graph.TensorID(t.TID)))
			}
			return t
		})
		leafCls := eg.AddTerm(relation.GdLeaf(r.gd.Tensor(out)))
		eg.Union(leafCls, eg.AddTerm(def))
	}
	eg.Rebuild()
	return nil
}

func (r *runState) allowGdOutput(tid int) bool {
	if !relation.IsGd(tid) {
		return false
	}
	return r.gd.IsOutput(relation.GdTensorID(tid))
}

func (r *runState) renderInputMappings(v *graph.Node) string {
	var b strings.Builder
	for _, in := range v.Inputs {
		t := r.gs.Tensor(in)
		maps := r.rel.Get(in)
		if len(maps) == 0 {
			fmt.Fprintf(&b, "  %s: (unmapped)\n", t.Name)
			continue
		}
		for _, m := range maps {
			fmt.Fprintf(&b, "  %s = %s\n", t.Name, m)
		}
	}
	return b.String()
}

// resolveOutputs builds R_o: mappings of every G_s output restricted
// to expressions over O(G_d) (Listing 1 line 9). Outputs that did not
// resolve during their producing operator's pass get one dedicated
// resolution pass that folds G_d forward from their known mappings.
func (r *runState) resolveOutputs(report *Report) (*relation.Relation, error) {
	ro := relation.New()
	for _, o := range r.gs.Outputs {
		for _, m := range r.rel.Get(o) {
			if r.leavesAreGdOutputs(m) {
				ro.Add(o, m)
			}
		}
		if ro.Has(o) {
			continue
		}
		m, err := r.resolveOutput(o, report)
		if err != nil {
			return nil, err
		}
		ro.AddAll(o, m)
	}
	return ro, nil
}

func (r *runState) leavesAreGdOutputs(t *expr.Term) bool {
	for _, leaf := range t.Leaves() {
		if !relation.IsGd(leaf) || !r.gd.IsOutput(relation.GdTensorID(leaf)) {
			return false
		}
	}
	return true
}

func (r *runState) resolveOutput(o graph.TensorID, report *Report) ([]*expr.Term, error) {
	producer := r.gs.Tensor(o).Producer
	fail := func() error {
		var v *graph.Node
		if producer != graph.NoProducer {
			v = r.gs.Node(producer)
		} else {
			v = &graph.Node{Label: "(graph input)", Op: expr.OpIdentity}
		}
		return &RefinementError{Op: v, Tensor: r.gs.Tensor(o),
			InputMappings: r.renderInputMappings(v)}
	}

	maps := r.rel.Get(o)
	if len(maps) == 0 {
		return nil, fail()
	}
	eg := r.newEGraph()
	cls := eg.AddTerm(relation.GsLeaf(r.gs.Tensor(o)))
	tRel := map[graph.TensorID]bool{}
	for _, m := range maps {
		eg.Union(cls, eg.AddTerm(m))
		for _, leaf := range m.Leaves() {
			if relation.IsGd(leaf) {
				tRel[relation.GdTensorID(leaf)] = true
			}
		}
	}
	eg.Rebuild()

	folded := map[graph.NodeID]bool{}
	for iter := 0; iter <= len(r.gd.Nodes); iter++ {
		progress := false
		for _, n := range r.gdOrder {
			if folded[n.ID] {
				continue
			}
			ready := true
			for _, in := range n.Inputs {
				if !tRel[in] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if err := r.foldGdNode(eg, n); err != nil {
				return nil, err
			}
			for _, out := range n.Outputs {
				tRel[out] = true
			}
			folded[n.ID] = true
			progress = true
		}
		if !progress {
			break
		}
	}
	report.Stats.Merge(eg.Saturate(r.rules, r.opts.Saturate))

	out := eg.ExtractAllClean(eg.Find(cls), r.allowGdOutput, r.opts.MaxMappings)
	if len(out) == 0 {
		return nil, fail()
	}
	return out, nil
}
