package core

import (
	"container/heap"
	"sync"

	"entangle/internal/egraph"
	"entangle/internal/graph"
)

// The wavefront scheduler exploits the independence already present in
// the refinement algorithm: processOp(v) reads only the relation
// entries of v's inputs and writes only those of v's outputs, so its
// dependency structure is exactly the G_s DAG. Operators whose
// producers have all been checked — a "wavefront" of the DAG, e.g.
// the q/k/v projections of one attention block, per-layer heads, or
// the experts of an MoE layer — saturate their per-operator e-graphs
// concurrently on a bounded worker pool.
//
// Determinism guarantees, so Workers is purely a wall-clock knob:
//
//   - Relation contents: mappings of a tensor are produced solely by
//     its producer's processOp (itself deterministic), so the store's
//     final contents do not depend on completion order.
//   - Stats: per-operator egraph.Stats are buffered by topo index and
//     merged in topo order after the pool drains, never in completion
//     order, keeping Figure-6 heatmap counts reproducible.
//   - Errors: first-error-wins by *topo order*, not wall-clock order.
//     After an error at topo index e, the scheduler keeps running
//     operators with smaller indices (their producers all precede
//     them, hence also < e) and only stops handing out work at or
//     beyond the earliest error. When the pool drains, every operator
//     before the earliest error has succeeded — so the reported
//     RefinementError names exactly the operator the sequential walk
//     would have failed on.

// runWavefront checks the operators of order on a pool of workers and
// fills report (stats + OpsProcessed) exactly as the sequential walk
// would. order must be a topological order of r.gs.
func (r *runState) runWavefront(order []*graph.Node, workers int, report *Report) error {
	n := len(order)
	pos := make(map[graph.NodeID]int, n)
	for i, v := range order {
		pos[v.ID] = i
	}

	// Dependency edges between operators: v waits on the distinct
	// producers of its input tensors; graph inputs are free.
	deps := make([]int, n)
	children := make([][]int, n)
	for i, v := range order {
		seen := map[int]bool{}
		for _, in := range v.Inputs {
			p := r.gs.Tensor(in).Producer
			if p == graph.NoProducer {
				continue
			}
			j := pos[p]
			if !seen[j] {
				seen[j] = true
				deps[i]++
				children[j] = append(children[j], i)
			}
		}
	}

	s := &wavefrontState{
		stats: make([]egraph.Stats, n),
		errs:  make(map[int]error),
		errAt: n,
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < n; i++ {
		if deps[i] == 0 {
			heap.Push(&s.ready, i)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s.mu.Lock()
				for !s.stopped() && !s.runnable() {
					s.cond.Wait()
				}
				if !s.runnable() { // stopped: no work at/below errAt left
					s.mu.Unlock()
					return
				}
				i := heap.Pop(&s.ready).(int)
				s.active++
				s.mu.Unlock()

				stats, err := r.observedProcessOp(order[i])

				s.mu.Lock()
				s.active--
				if err != nil {
					s.errs[i] = err
					if i < s.errAt {
						// First error in topo order wins; ready work at
						// or beyond the earliest error is cancelled
						// (runnable filters it out).
						s.errAt = i
					}
				} else {
					s.stats[i] = stats
					for _, c := range children[i] {
						deps[c]--
						if deps[c] == 0 {
							heap.Push(&s.ready, c)
						}
					}
				}
				s.cond.Broadcast()
				s.mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if s.errAt < n {
		return s.errs[s.errAt]
	}
	// Deterministic aggregation: merge per-operator stats in topo
	// order, exactly as the sequential loop would have.
	for i := 0; i < n; i++ {
		report.Stats.Merge(s.stats[i])
		report.OpsProcessed++
	}
	return nil
}

// wavefrontState is the mutex-guarded shared state of one wavefront
// run.
type wavefrontState struct {
	mu   sync.Mutex
	cond *sync.Cond

	ready  minHeap // topo indices whose producers are all done
	active int     // operators currently being processed
	stats  []egraph.Stats

	errs  map[int]error
	errAt int // min topo index with an error; len(order) = none
}

// runnable reports whether a worker should pick up work: the earliest
// ready operator must precede the earliest error (operators beyond it
// are cancelled — their results could not change the outcome).
func (s *wavefrontState) runnable() bool {
	return len(s.ready) > 0 && s.ready[0] < s.errAt
}

// stopped reports whether the run has quiesced: nothing runnable and
// nothing active that could still unlock work. Workers then exit.
func (s *wavefrontState) stopped() bool {
	return s.active == 0 && !s.runnable()
}

// minHeap is a min-heap of topo indices: workers always pick the
// earliest ready operator, which bounds how much speculative work runs
// beyond a failure and keeps cancellation convergence fast.
type minHeap []int

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
