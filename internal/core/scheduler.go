package core

import (
	"container/heap"
	"context"
	"runtime/debug"
	"sync"

	"entangle/internal/egraph"
	"entangle/internal/graph"
)

// The wavefront scheduler exploits the independence already present in
// the refinement algorithm: processOp(v) reads only the relation
// entries of v's inputs and writes only those of v's outputs, so its
// dependency structure is exactly the G_s DAG. Operators whose
// producers have all been checked — a "wavefront" of the DAG, e.g.
// the q/k/v projections of one attention block, per-layer heads, or
// the experts of an MoE layer — saturate their per-operator e-graphs
// concurrently on a bounded worker pool. Every run, including
// Workers == 1, goes through this scheduler: one code path means the
// determinism argument below holds by construction instead of by
// keeping two walks in sync.
//
// Determinism guarantees, so Workers is purely a wall-clock knob:
//
//   - Relation contents: mappings of a tensor are produced solely by
//     its producer's processOp (itself deterministic), so the store's
//     final contents do not depend on completion order.
//   - Stats: per-operator egraph.Stats are buffered by topo index and
//     merged in topo order after the pool drains, never in completion
//     order, keeping Figure-6 heatmap counts reproducible.
//   - Errors (default mode): first-error-wins by *topo order*, not
//     wall-clock order. After a failure at topo index e, the scheduler
//     keeps running operators with smaller indices (their producers
//     all precede them, hence also < e) and only stops handing out
//     work at or beyond the earliest failure. When the pool drains,
//     every operator before the earliest failure has succeeded — so
//     the reported error names exactly the operator the sequential
//     walk would have failed on.
//   - Verdicts (KeepGoing mode): a failing operator taints its
//     downstream cone — every op transitively consuming one of its
//     outputs is marked Skipped without running — while independent
//     subgraphs keep checking. Taint propagation is a pure function of
//     the DAG and the per-operator verdicts (both
//     schedule-independent), so the final verdict vector, read out in
//     topo order, is identical for any worker count.
//   - Faults: checkOp converts panics into EngineFault verdicts, and
//     the worker's accounting (the active-slot decrement and pool
//     wake-up) runs in a defer, so even a panic that slips past the
//     recovery layer drains the pool instead of deadlocking it.

// runSchedule checks the operators of order on a pool of workers and
// fills report (stats, verdicts, OpsProcessed) exactly as a sequential
// topo-order walk would. order must be a topological order of r.gs. A
// non-nil return is fatal: a cancelled context, a malformed graph, or
// (default mode) the earliest per-operator failure. KeepGoing-mode
// per-operator failures are reported through report.Failures instead.
func (r *runState) runSchedule(ctx context.Context, order []*graph.Node, workers int, report *Report) error {
	n := len(order)
	pos := make(map[graph.NodeID]int, n)
	for i, v := range order {
		pos[v.ID] = i
	}

	// Dependency edges between operators: v waits on the distinct
	// producers of its input tensors; graph inputs are free.
	deps := make([]int, n)
	children := make([][]int, n)
	for i, v := range order {
		seen := map[int]bool{}
		for _, in := range v.Inputs {
			p := r.gs.Tensor(in).Producer
			if p == graph.NoProducer {
				continue
			}
			j := pos[p]
			if !seen[j] {
				seen[j] = true
				deps[i]++
				children[j] = append(children[j], i)
			}
		}
	}

	s := &wavefrontState{
		order:     order,
		deps:      deps,
		children:  children,
		tainted:   make([]bool, n),
		stats:     make([]egraph.Stats, n),
		live:      make([]egraph.Stats, n),
		verdicts:  make([]OpVerdict, n),
		errAt:     n,
		fatalAt:   n,
		keepGoing: r.opts.KeepGoing,
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < n; i++ {
		if deps[i] == 0 {
			heap.Push(&s.ready, i)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s.mu.Lock()
				for !s.stopped() && !s.runnable() {
					s.cond.Wait()
				}
				if !s.runnable() { // stopped: no schedulable work left
					s.mu.Unlock()
					return
				}
				i := heap.Pop(&s.ready).(int)
				s.active++
				s.mu.Unlock()

				r.runOne(ctx, s, i)
			}
		}()
	}
	wg.Wait()

	if s.fatal != nil {
		return s.fatal
	}
	if !s.keepGoing && s.errAt < n {
		return s.verdicts[s.errAt].Err
	}
	// Deterministic aggregation: merge per-operator stats and read out
	// verdicts in topo order, never in completion order.
	for i := 0; i < n; i++ {
		report.Stats.Merge(s.stats[i])
		report.LiveStats.Merge(s.live[i])
		if s.verdicts[i].Kind != VerdictSkipped {
			report.OpsProcessed++
		}
		report.Verdicts = append(report.Verdicts, s.verdicts[i])
		if s.verdicts[i].Failed() {
			report.Failures = append(report.Failures, s.verdicts[i])
		}
	}
	return nil
}

// runOne checks order[i] and records the outcome. All accounting — the
// active-slot decrement, verdict recording, dependency propagation,
// and pool wake-up — happens in the deferred closure, so it runs even
// if the check panics past checkOp's own recovery. Before this defer a
// panicking lemma left s.active incremented forever: runnable() stayed
// false, stopped() never turned true, and every worker slept on the
// condition variable — the latent pool deadlock this layer fixes.
func (r *runState) runOne(ctx context.Context, s *wavefrontState, i int) {
	var stats, live egraph.Stats
	var verdict OpVerdict
	var fatal error
	completed := false
	defer func() {
		if !completed {
			// checkOp recovers panics itself; reaching here means the
			// scheduler-side bookkeeping around it panicked. Convert
			// to a structured fault rather than crash or deadlock.
			verdict = OpVerdict{Op: s.order[i], Kind: VerdictEngineFault,
				Err: &EngineFaultError{Op: s.order[i], Recovered: recover(), Stack: debug.Stack()}}
		}
		s.mu.Lock()
		s.active--
		s.record(i, stats, live, verdict, fatal)
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	stats, live, verdict, fatal = r.checkOp(ctx, s.order[i])
	completed = true
}

// wavefrontState is the mutex-guarded shared state of one scheduled
// run.
type wavefrontState struct {
	mu   sync.Mutex
	cond *sync.Cond

	order    []*graph.Node
	deps     []int   // outstanding producer count per topo index
	children [][]int // consumer topo indices per topo index
	tainted  []bool  // in the downstream cone of a failure (KeepGoing)

	ready    minHeap // topo indices whose producers are all done
	active   int     // operators currently being processed
	stats    []egraph.Stats
	live     []egraph.Stats // work actually performed (cache hits excluded)
	verdicts []OpVerdict

	keepGoing bool
	errAt     int // default mode: min topo index with a failure; n = none
	fatal     error
	fatalAt   int // min topo index with a fatal error; n = none
}

// record stores operator i's outcome and propagates scheduling
// consequences. Caller holds s.mu.
func (s *wavefrontState) record(i int, stats, live egraph.Stats, v OpVerdict, fatal error) {
	s.stats[i] = stats
	s.live[i] = live
	s.verdicts[i] = v
	if fatal != nil {
		// Earliest-in-topo-order fatal wins, for the same determinism
		// reason as errAt; no children are released — the pool drains.
		if i < s.fatalAt {
			s.fatalAt = i
			s.fatal = fatal
		}
		return
	}
	if v.Kind == VerdictRefined {
		for _, c := range s.children[i] {
			s.deps[c]--
			if s.deps[c] == 0 {
				if s.tainted[c] {
					// Last producer resolved, but an earlier one
					// failed: the cone member is skipped, never run.
					s.verdicts[c] = OpVerdict{Op: s.order[c], Kind: VerdictSkipped}
					s.propagateTaint(c)
				} else {
					heap.Push(&s.ready, c)
				}
			}
		}
		return
	}
	// Operator i failed (disproved / inconclusive / engine fault).
	if !s.keepGoing {
		if i < s.errAt {
			// First failure in topo order wins; ready work at or
			// beyond the earliest failure is cancelled (runnable
			// filters it out).
			s.errAt = i
		}
		return
	}
	s.propagateTaint(i)
}

// propagateTaint marks the downstream cone of a failed or skipped
// operator: every child loses a producer and is tainted; children
// whose producers have all resolved are marked Skipped and propagate
// further. The result depends only on the DAG and which operators
// failed, never on scheduling order. Caller holds s.mu.
func (s *wavefrontState) propagateTaint(i int) {
	stack := []int{i}
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range s.children[j] {
			s.tainted[c] = true
			s.deps[c]--
			if s.deps[c] == 0 {
				s.verdicts[c] = OpVerdict{Op: s.order[c], Kind: VerdictSkipped}
				stack = append(stack, c)
			}
		}
	}
}

// runnable reports whether a worker should pick up work. A fatal error
// stops all scheduling; the default mode additionally requires the
// earliest ready operator to precede the earliest failure (operators
// beyond it are cancelled — their results could not change the
// outcome), while KeepGoing schedules everything that is not skipped.
func (s *wavefrontState) runnable() bool {
	if s.fatal != nil || len(s.ready) == 0 {
		return false
	}
	return s.keepGoing || s.ready[0] < s.errAt
}

// stopped reports whether the run has quiesced: nothing runnable and
// nothing active that could still unlock work. Workers then exit.
func (s *wavefrontState) stopped() bool {
	return s.active == 0 && !s.runnable()
}

// minHeap is a min-heap of topo indices: workers always pick the
// earliest ready operator, which bounds how much speculative work runs
// beyond a failure and keeps cancellation convergence fast. With one
// worker it reproduces the exact sequential topo-order walk.
type minHeap []int

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
