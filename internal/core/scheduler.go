package core

import (
	"context"
	"runtime/debug"
	"sync"

	"entangle/internal/egraph"
	"entangle/internal/graph"
)

// The wavefront scheduler exploits the independence already present in
// the refinement algorithm: processOp(v) reads only the relation
// entries of v's inputs and writes only those of v's outputs, so its
// dependency structure is exactly the G_s DAG. Operators whose
// producers have all been checked — a "wavefront" of the DAG, e.g.
// the q/k/v projections of one attention block, per-layer heads, or
// the experts of an MoE layer — saturate their per-operator e-graphs
// concurrently on a bounded worker pool. Every run, including
// Workers == 1, goes through this scheduler: one code path means the
// determinism argument below holds by construction instead of by
// keeping two walks in sync.
//
// The scheduling decisions themselves — who is ready, what a failure
// cancels, how far taint reaches — live in SchedCore (schedcore.go), a
// pure state machine with no locks or goroutines. This file only adds
// the concurrency shell: a mutex + condition variable around the core,
// per-operator result buffers, and panic-proof worker accounting. The
// split is what lets internal/mc model-check the exact shipped
// scheduling logic exhaustively (see internal/mc/models).
//
// Determinism guarantees, so Workers is purely a wall-clock knob:
//
//   - Relation contents: mappings of a tensor are produced solely by
//     its producer's processOp (itself deterministic), so the store's
//     final contents do not depend on completion order.
//   - Stats: per-operator egraph.Stats are buffered by topo index and
//     merged in topo order after the pool drains, never in completion
//     order, keeping Figure-6 heatmap counts reproducible.
//   - Errors (default mode): first-error-wins by *topo order*, not
//     wall-clock order. After a failure at topo index e, the scheduler
//     keeps running operators with smaller indices (their producers
//     all precede them, hence also < e) and only stops handing out
//     work at or beyond the earliest failure. When the pool drains,
//     every operator before the earliest failure has succeeded — so
//     the reported error names exactly the operator the sequential
//     walk would have failed on.
//   - Verdicts (KeepGoing mode): a failing operator taints its
//     downstream cone — every op transitively consuming one of its
//     outputs is marked Skipped without running — while independent
//     subgraphs keep checking. Taint propagation is a pure function of
//     the DAG and the per-operator verdicts (both
//     schedule-independent), so the final verdict vector, read out in
//     topo order, is identical for any worker count.
//   - Faults: checkOp converts panics into EngineFault verdicts, and
//     the worker's accounting (the active-slot decrement and pool
//     wake-up) runs in a defer, so even a panic that slips past the
//     recovery layer drains the pool instead of deadlocking it.

// buildSchedCore derives the dependency structure of order (which must
// be a topological order of g): per-index outstanding-producer counts
// and consumer lists. v waits on the distinct producers of its input
// tensors; graph inputs are free.
func buildSchedCore(g *graph.Graph, order []*graph.Node, keepGoing bool) *SchedCore {
	n := len(order)
	pos := make(map[graph.NodeID]int, n)
	for i, v := range order {
		pos[v.ID] = i
	}
	deps := make([]int, n)
	children := make([][]int, n)
	for i, v := range order {
		seen := map[int]bool{}
		for _, in := range v.Inputs {
			p := g.Tensor(in).Producer
			if p == graph.NoProducer {
				continue
			}
			j := pos[p]
			if !seen[j] {
				seen[j] = true
				deps[i]++
				children[j] = append(children[j], i)
			}
		}
	}
	return NewSchedCore(deps, children, keepGoing)
}

// runSchedule checks the operators of order on a pool of workers and
// fills report (stats, verdicts, OpsProcessed) exactly as a sequential
// topo-order walk would. order must be a topological order of r.gs. A
// non-nil return is fatal: a cancelled context, a malformed graph, or
// (default mode) the earliest per-operator failure. KeepGoing-mode
// per-operator failures are reported through report.Failures instead.
func (r *runState) runSchedule(ctx context.Context, order []*graph.Node, workers int, report *Report) error {
	n := len(order)
	s := &wavefrontState{
		core:     buildSchedCore(r.gs, order, r.opts.KeepGoing),
		order:    order,
		stats:    make([]egraph.Stats, n),
		live:     make([]egraph.Stats, n),
		verdicts: make([]OpVerdict, n),
		fatalAt:  n,
	}
	s.cond = sync.NewCond(&s.mu)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s.mu.Lock()
				for !s.stopped() && !s.runnable() {
					s.cond.Wait()
				}
				if !s.runnable() { // stopped: no schedulable work left
					s.mu.Unlock()
					return
				}
				i := s.core.Pop()
				s.active++
				s.mu.Unlock()

				r.runOne(ctx, s, i)
			}
		}()
	}
	wg.Wait()

	if s.fatal != nil {
		return s.fatal
	}
	if errAt := s.core.ErrAt(); !s.core.KeepGoing() && errAt < n {
		return s.verdicts[errAt].Err
	}
	// Deterministic aggregation: merge per-operator stats and read out
	// verdicts in topo order, never in completion order.
	for i := 0; i < n; i++ {
		report.Stats.Merge(s.stats[i])
		report.LiveStats.Merge(s.live[i])
		if s.verdicts[i].Kind != VerdictSkipped {
			report.OpsProcessed++
		}
		report.Verdicts = append(report.Verdicts, s.verdicts[i])
		if s.verdicts[i].Failed() {
			report.Failures = append(report.Failures, s.verdicts[i])
		}
	}
	return nil
}

// runOne checks order[i] and records the outcome. All accounting — the
// active-slot decrement, verdict recording, dependency propagation,
// and pool wake-up — happens in the deferred closure, so it runs even
// if the check panics past checkOp's own recovery. Before this defer a
// panicking lemma left s.active incremented forever: runnable() stayed
// false, stopped() never turned true, and every worker slept on the
// condition variable — the latent pool deadlock this layer fixes (and
// that the internal/mc known-bug model reproduces as a minimal trace).
func (r *runState) runOne(ctx context.Context, s *wavefrontState, i int) {
	var stats, live egraph.Stats
	var verdict OpVerdict
	var fatal error
	completed := false
	defer func() {
		if !completed {
			// checkOp recovers panics itself; reaching here means the
			// scheduler-side bookkeeping around it panicked. Convert
			// to a structured fault rather than crash or deadlock.
			verdict = OpVerdict{Op: s.order[i], Kind: VerdictEngineFault,
				Err: &EngineFaultError{Op: s.order[i], Recovered: recover(), Stack: debug.Stack()}}
		}
		s.mu.Lock()
		s.active--
		s.record(i, stats, live, verdict, fatal)
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	stats, live, verdict, fatal = r.checkOp(ctx, r.planOp(i), s.order[i])
	completed = true
}

// wavefrontState is the mutex-guarded concurrency shell around
// SchedCore for one scheduled run: the core makes every scheduling
// decision, this struct buffers the per-operator results and keeps the
// pool's sleep/wake protocol honest.
type wavefrontState struct {
	mu   sync.Mutex
	cond *sync.Cond

	core  *SchedCore
	order []*graph.Node

	active   int // operators currently being processed
	stats    []egraph.Stats
	live     []egraph.Stats // work actually performed (cache hits excluded)
	verdicts []OpVerdict

	fatal   error
	fatalAt int // min topo index with a fatal error; n = none
}

// record stores operator i's outcome and propagates scheduling
// consequences through the core. Caller holds s.mu.
func (s *wavefrontState) record(i int, stats, live egraph.Stats, v OpVerdict, fatal error) {
	s.stats[i] = stats
	s.live[i] = live
	s.verdicts[i] = v
	if fatal != nil {
		// Earliest-in-topo-order fatal wins, for the same determinism
		// reason as SchedCore.errAt; no children are released — the
		// pool drains.
		if i < s.fatalAt {
			s.fatalAt = i
			s.fatal = fatal
		}
		return
	}
	for _, c := range s.core.Resolve(i, v.Kind == VerdictRefined) {
		s.verdicts[c] = OpVerdict{Op: s.order[c], Kind: VerdictSkipped}
	}
}

// runnable reports whether a worker should pick up work. A fatal error
// stops all scheduling; otherwise the core decides.
func (s *wavefrontState) runnable() bool {
	return s.fatal == nil && s.core.Runnable()
}

// stopped reports whether the run has quiesced: nothing runnable and
// nothing active that could still unlock work. Workers then exit.
func (s *wavefrontState) stopped() bool {
	return s.active == 0 && !s.runnable()
}

// minHeap is a min-heap of topo indices: workers always pick the
// earliest ready operator, which bounds how much speculative work runs
// beyond a failure and keeps cancellation convergence fast. With one
// worker it reproduces the exact sequential topo-order walk.
type minHeap []int

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
