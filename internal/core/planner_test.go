package core

import (
	"encoding/json"
	"testing"

	"entangle/internal/lemmas"
	"entangle/internal/models"
)

// planOpByLabel finds one operator's plan entry; topo order is
// deterministic but tests should not depend on positions.
func planOpByLabel(t *testing.T, p *Plan, label string) PlanOp {
	t.Helper()
	for _, op := range p.Ops {
		if op.Label == label {
			return op
		}
	}
	t.Fatalf("plan has no operator %q", label)
	return PlanOp{}
}

// TestPlanFullDispositions checks the full-mode planner's decisions on
// the three configurations that exist: no cache (everything checked,
// keyless), cold cache (everything checked, keyed misses), warm cache
// (everything replayed).
func TestPlanFullDispositions(t *testing.T) {
	gs, gd, ri := figure1(t)
	reg := lemmas.Default()

	plain, err := NewChecker(Options{Registry: reg}).Check(gs, gd, ri)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Plan == nil || plain.Plan.Mode != PlanModeFull {
		t.Fatalf("missing full plan: %+v", plain.Plan)
	}
	if len(plain.Plan.Ops) != plain.OpsProcessed {
		t.Fatalf("plan covers %d ops, report processed %d", len(plain.Plan.Ops), plain.OpsProcessed)
	}
	for _, op := range plain.Plan.Ops {
		if op.Disposition != DispCheck || op.Reason != "no cache configured" || op.Key != "" {
			t.Fatalf("cacheless plan op %+v", op)
		}
	}

	cache := openCache(t)
	checker := NewChecker(Options{Registry: reg, Cache: cache})
	cold, err := checker.Check(gs, gd, ri)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range cold.Plan.Ops {
		if op.Disposition != DispCheck || op.Reason != "cache miss" || op.Key == "" {
			t.Fatalf("cold plan op %+v", op)
		}
	}
	if cold.Plan.Checks != len(cold.Plan.Ops) || cold.Plan.Replays != 0 {
		t.Fatalf("cold plan totals %+v", cold.Plan)
	}

	warm, err := checker.Check(gs, gd, ri)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range warm.Plan.Ops {
		if op.Disposition != DispReplayCache || op.Reason != "verdict cached" {
			t.Fatalf("warm plan op %+v", op)
		}
	}
	if warm.Plan.Replays != len(warm.Plan.Ops) || warm.Plan.Checks != 0 {
		t.Fatalf("warm plan totals %+v", warm.Plan)
	}
	if warm.LiveStats.Iterations != 0 {
		t.Fatalf("warm planned run re-saturated: %+v", warm.LiveStats)
	}
}

// TestPlanJSONRoundTrip: a Plan is plain data (ROADMAP item 1's
// sharded fleet routes them between nodes). Serialize, decode,
// re-serialize: byte-identical, with dispositions spelled as their
// canonical names.
func TestPlanJSONRoundTrip(t *testing.T) {
	gs, gd, ri := figure1(t)
	cache := openCache(t)
	checker := NewChecker(Options{Registry: lemmas.Default(), Cache: cache})
	if _, err := checker.Check(gs, gd, ri); err != nil {
		t.Fatal(err)
	}
	warm, err := checker.Check(gs, gd, ri)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(warm.Plan)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Plan
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(again) {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", blob, again)
	}
	var loose map[string]any
	if err := json.Unmarshal(blob, &loose); err != nil {
		t.Fatal(err)
	}
	op := loose["ops"].([]any)[0].(map[string]any)
	if op["disposition"] != "replay-cache" {
		t.Fatalf("disposition serialized as %v, want the canonical name", op["disposition"])
	}
}

// TestDispositionJSONUnknown rejects names outside the enum instead of
// silently zeroing them.
func TestDispositionJSONUnknown(t *testing.T) {
	var d Disposition
	if err := d.UnmarshalJSON([]byte(`"warp-speed"`)); err == nil {
		t.Fatal("unknown disposition decoded")
	}
}

// TestPlanUnplannedByteIdentical is the refactor's acceptance gate:
// the planned executor and the pre-plan inline path (Options.Unplanned)
// produce byte-identical reports — relations, stats, verdicts, and
// cache counters — cold and warm, at 1 and 4 workers.
func TestPlanUnplannedByteIdentical(t *testing.T) {
	b, err := models.GPT(models.Options{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := lemmas.Default()
	for _, workers := range []int{1, 4} {
		planned := NewChecker(Options{Registry: reg, Cache: openCache(t), Workers: workers})
		unplanned := NewChecker(Options{Registry: reg, Cache: openCache(t), Workers: workers, Unplanned: true})
		for _, phase := range []string{"cold", "warm"} {
			rp, err := planned.Check(b.Gs, b.Gd, b.Ri)
			if err != nil {
				t.Fatalf("workers=%d %s planned: %v", workers, phase, err)
			}
			ru, err := unplanned.Check(b.Gs, b.Gd, b.Ri)
			if err != nil {
				t.Fatalf("workers=%d %s unplanned: %v", workers, phase, err)
			}
			assertReportsMatch(t, b, ru, rp)
			if rp.Cache != ru.Cache {
				t.Errorf("workers=%d %s cache stats diverge: planned %+v unplanned %+v",
					workers, phase, rp.Cache, ru.Cache)
			}
			if rp.Plan == nil {
				t.Errorf("workers=%d %s: planned run carries no plan", workers, phase)
			}
			if ru.Plan != nil {
				t.Errorf("workers=%d %s: unplanned run carries a plan", workers, phase)
			}
		}
	}
}
