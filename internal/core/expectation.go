package core

import (
	"errors"
	"fmt"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/relation"
)

// Expectation expresses a user's expected refinement (§4.4): Fs is an
// expression over G_s output tensors (G_s-space leaves) and Fd an
// expression over G_d output tensors (G_d-space leaves, see
// relation.GdLeaf). ENTANGLE checks Fs(O(G_s)) = Fd(O(G_d)).
type Expectation struct {
	Fs *expr.Term
	Fd *expr.Term
}

// ExpectationError reports a violated user expectation.
type ExpectationError struct {
	Expect Expectation
	// Mappings renders what ENTANGLE could map f_s to, for debugging.
	Mappings string
}

func (e *ExpectationError) Error() string {
	msg := fmt.Sprintf("user expectation violated: %s is not equal to %s", e.Expect.Fs, e.Expect.Fd)
	if e.Mappings != "" {
		msg += "\nfound mappings:\n" + e.Mappings
	}
	return msg
}

// CheckExpectation implements §4.4: it splices f_s into a clone of G_s
// and f_d into a clone of G_d as their sole outputs, re-runs the
// refinement check, and demands that the resulting output relation
// contain the identity mapping f_s = f_d.
func (c *Checker) CheckExpectation(gs, gd *graph.Graph, ri *relation.Relation, e Expectation) error {
	gs2 := gs.Clone()
	fsOut, err := appendTerm(gs2, e.Fs, "expectation/fs", func(tid int) (graph.TensorID, error) {
		if relation.IsGd(tid) {
			return 0, fmt.Errorf("core: expectation f_s references a G_d tensor")
		}
		return graph.TensorID(tid), nil
	})
	if err != nil {
		return err
	}
	gs2.Outputs = []graph.TensorID{fsOut}

	gd2 := gd.Clone()
	fdOut, err := appendTerm(gd2, e.Fd, "expectation/fd", func(tid int) (graph.TensorID, error) {
		if !relation.IsGd(tid) {
			return 0, fmt.Errorf("core: expectation f_d references a G_s tensor")
		}
		return relation.GdTensorID(tid), nil
	})
	if err != nil {
		return err
	}
	gd2.Outputs = []graph.TensorID{fdOut}

	report, err := c.Check(gs2, gd2, ri)
	if err != nil {
		var re *RefinementError
		if errors.As(err, &re) {
			// No relation between f_s and f_d exists at all — a
			// fortiori the identity the user expects does not hold.
			return &ExpectationError{Expect: e, Mappings: "  (no clean relation: " + re.Error() + ")"}
		}
		return err
	}
	fdLeaf := relation.GdLeaf(gd2.Tensor(fdOut))
	for _, m := range report.OutputRelation.Get(fsOut) {
		if m.Equal(fdLeaf) {
			return nil // identity mapping found: expectation holds
		}
	}
	return &ExpectationError{Expect: e, Mappings: report.OutputRelation.Render(gs2)}
}

// appendTerm splices an expression tree into g as graph nodes,
// resolving leaves through mapLeaf, and returns the root tensor.
func appendTerm(g *graph.Graph, t *expr.Term, label string, mapLeaf func(int) (graph.TensorID, error)) (graph.TensorID, error) {
	var n int
	var build func(t *expr.Term) (graph.TensorID, error)
	build = func(t *expr.Term) (graph.TensorID, error) {
		if t.IsLeaf() {
			id, err := mapLeaf(t.TID)
			if err != nil {
				return 0, err
			}
			if int(id) < 0 || int(id) >= len(g.Tensors) {
				return 0, fmt.Errorf("core: expectation references missing tensor %d", t.TID)
			}
			return id, nil
		}
		inputs := make([]graph.TensorID, len(t.Args))
		for i, a := range t.Args {
			id, err := build(a)
			if err != nil {
				return 0, err
			}
			inputs[i] = id
		}
		n++
		return g.Append(t.Op, fmt.Sprintf("%s/%d", label, n),
			fmt.Sprintf("%s.out%d", label, n), t.Str, t.Ints, inputs...)
	}
	return build(t)
}
