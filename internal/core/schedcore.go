package core

import (
	"container/heap"
	"strconv"
)

// SchedCore is the pure state machine at the heart of the wavefront
// scheduler: dependency counts, the ready min-heap, failure
// bookkeeping, and downstream-cone taint. It contains no locks, no
// goroutines, and no I/O — every transition is a plain method call —
// which is what lets two very different drivers share it verbatim:
//
//   - wavefrontState (scheduler.go) wraps it in a mutex + condition
//     variable and drives it from the production worker pool;
//   - the internal/mc wavefront model drives a Clone per explored
//     transition, so the exhaustively checked protocol is the shipped
//     scheduling logic, not a hand-written re-derivation of it.
//
// Keeping the two in lockstep is the point: a future change to
// scheduling semantics lands here, and the model checker re-verifies
// it for free.
type SchedCore struct {
	deps      []int   // outstanding producer count per topo index
	children  [][]int // consumer topo indices per topo index (shared, never mutated)
	tainted   []bool  // in the downstream cone of a failure (KeepGoing)
	outcomes  []SchedOutcome
	ready     minHeap // topo indices whose producers are all done
	keepGoing bool
	errAt     int // default mode: min topo index with a failure; n = none
}

// SchedOutcome is the scheduling-relevant résumé of one operator: the
// full OpVerdict (or egraph stats) never influences which operator
// runs next, only this four-point classification does.
type SchedOutcome int8

const (
	// SchedPending: not yet resolved (waiting, ready, or running).
	SchedPending SchedOutcome = iota
	// SchedOK: checked and refined; releases the operator's consumers.
	SchedOK
	// SchedFailed: checked and failed (disproved, inconclusive, or an
	// engine fault — the scheduler treats them identically).
	SchedFailed
	// SchedSkipped: in the downstream cone of a failure; never run
	// (KeepGoing mode only).
	SchedSkipped
)

func (o SchedOutcome) String() string {
	switch o {
	case SchedPending:
		return "pending"
	case SchedOK:
		return "ok"
	case SchedFailed:
		return "failed"
	case SchedSkipped:
		return "skipped"
	}
	return "?"
}

// NewSchedCore builds the scheduling core for a DAG given per-index
// outstanding-producer counts and consumer lists. children is retained
// (and never mutated), deps is copied. Indices with no outstanding
// producers start ready.
func NewSchedCore(deps []int, children [][]int, keepGoing bool) *SchedCore {
	n := len(deps)
	c := &SchedCore{
		deps:      append([]int(nil), deps...),
		children:  children,
		tainted:   make([]bool, n),
		outcomes:  make([]SchedOutcome, n),
		keepGoing: keepGoing,
		errAt:     n,
	}
	for i := 0; i < n; i++ {
		if c.deps[i] == 0 {
			heap.Push(&c.ready, i)
		}
	}
	return c
}

// Len returns the number of scheduled operators.
func (c *SchedCore) Len() int { return len(c.deps) }

// KeepGoing reports the failure-handling mode.
func (c *SchedCore) KeepGoing() bool { return c.keepGoing }

// Outcome returns operator i's scheduling outcome.
func (c *SchedCore) Outcome(i int) SchedOutcome { return c.outcomes[i] }

// ErrAt returns the earliest failing topo index (default mode), or
// Len() when no operator has failed.
func (c *SchedCore) ErrAt() int { return c.errAt }

// Runnable reports whether a worker should pick up work: something is
// ready, and (default mode) the earliest ready operator precedes the
// earliest failure — operators beyond it are cancelled, their results
// could not change the outcome. KeepGoing schedules everything that is
// not skipped.
func (c *SchedCore) Runnable() bool {
	if len(c.ready) == 0 {
		return false
	}
	return c.keepGoing || c.ready[0] < c.errAt
}

// Pop hands out the earliest ready operator. Callers must check
// Runnable first; always popping the minimum bounds speculative work
// beyond a failure and, with one worker, reproduces the exact
// sequential topo-order walk.
func (c *SchedCore) Pop() int {
	return heap.Pop(&c.ready).(int)
}

// Resolve records operator i's outcome and propagates the scheduling
// consequences: a success releases consumers (skipping tainted ones),
// a failure either cancels everything at or beyond it (default mode)
// or taints its downstream cone (KeepGoing). It returns the operators
// newly marked SchedSkipped, in the deterministic propagation order,
// so the caller can assign their verdicts. The result depends only on
// the DAG and which operators failed, never on scheduling order.
func (c *SchedCore) Resolve(i int, ok bool) (skipped []int) {
	if !ok {
		c.outcomes[i] = SchedFailed
		if !c.keepGoing {
			if i < c.errAt {
				c.errAt = i
			}
			return nil
		}
		return c.propagateTaint(i)
	}
	c.outcomes[i] = SchedOK
	for _, ch := range c.children[i] {
		c.deps[ch]--
		if c.deps[ch] == 0 {
			if c.tainted[ch] {
				// Last producer resolved, but an earlier one failed:
				// the cone member is skipped, never run.
				c.outcomes[ch] = SchedSkipped
				skipped = append(skipped, ch)
				skipped = append(skipped, c.propagateTaint(ch)...)
			} else {
				heap.Push(&c.ready, ch)
			}
		}
	}
	return skipped
}

// propagateTaint marks the downstream cone of a failed or skipped
// operator: every child loses a producer and is tainted; children
// whose producers have all resolved are marked SchedSkipped and
// propagate further.
func (c *SchedCore) propagateTaint(i int) (skipped []int) {
	stack := []int{i}
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ch := range c.children[j] {
			c.tainted[ch] = true
			c.deps[ch]--
			if c.deps[ch] == 0 {
				c.outcomes[ch] = SchedSkipped
				skipped = append(skipped, ch)
				stack = append(stack, ch)
			}
		}
	}
	return skipped
}

// Quiesced reports whether the run has drained given the number of
// operators currently being processed: nothing runnable and nothing
// active that could still unlock work.
func (c *SchedCore) Quiesced(active int) bool {
	return active == 0 && !c.Runnable()
}

// Clone deep-copies the mutable scheduling state (children is shared —
// it is immutable after construction). The model checker clones once
// per explored transition.
func (c *SchedCore) Clone() *SchedCore {
	return &SchedCore{
		deps:      append([]int(nil), c.deps...),
		children:  c.children,
		tainted:   append([]bool(nil), c.tainted...),
		outcomes:  append([]SchedOutcome(nil), c.outcomes...),
		ready:     append(minHeap(nil), c.ready...),
		keepGoing: c.keepGoing,
		errAt:     c.errAt,
	}
}

// AppendKey appends a canonical encoding of the scheduling state —
// outcome vector plus the earliest-failure mark. Everything else
// (deps, ready, taint) is a pure function of the outcome vector and
// the DAG, so this short key fingerprints the full core state.
func (c *SchedCore) AppendKey(dst []byte) []byte {
	for _, o := range c.outcomes {
		dst = append(dst, "pofs"[o])
	}
	dst = append(dst, '#')
	return strconv.AppendInt(dst, int64(c.errAt), 10)
}
