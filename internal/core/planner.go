package core

// The planning layer separates *deciding what to check* from
// *executing checks*. A Plan assigns every G_s operator (in topo
// order) a Disposition — run it live, replay its cached verdict, or,
// in diff mode, skip it as provably unchanged — plus the reason for
// the decision and the operator's cache key. The wavefront executor
// (scheduler.go → checkOp) consumes the Plan instead of re-deriving
// dispositions inline, which is what makes incremental re-verification
// (diff.go) a planner variant rather than a second checker, and what
// lets a future sharded fleet route serialized Plans between nodes:
// the Plan is plain data (JSON-tagged, no graph pointers).
//
// Planning is best-effort, execution is honest: a prefetched cache
// entry that fails to replay falls back to a live check, and a
// SkipUnchanged operator with no cached verdict is checked live — the
// Plan can cost wall-clock time when it is stale, never correctness.
// Counter discipline matches the unplanned path exactly: hits, misses,
// and replay rejects are counted when an operator *executes*, so
// operators the scheduler never runs (beyond the earliest failure, or
// in a skipped taint cone) contribute nothing, planned or not.

import (
	"encoding/json"
	"fmt"

	"entangle/internal/graph"
	"entangle/internal/vcache"
)

// Disposition is the planner's per-operator decision.
type Disposition int

const (
	// DispCheck: run the operator's saturation live (no cached verdict,
	// or its cone changed in a diff).
	DispCheck Disposition = iota
	// DispReplayCache: a verdict for the operator's exact cone and
	// ambient configuration is cached; replay it instead of saturating.
	DispReplayCache
	// DispSkipUnchanged: diff mode — the operator's upstream-cone
	// fingerprint is identical in the old and new graphs, so its old
	// verdict still holds; replay from the cache (or check live on a
	// cache miss, which is a performance loss, never a stale verdict).
	DispSkipUnchanged
	// DispTaintedUpstream: diff mode — the operator's own cone changed
	// because an upstream operator's cone changed; it must be re-checked
	// along with the edit that tainted it.
	DispTaintedUpstream
)

var dispositionNames = map[Disposition]string{
	DispCheck:           "check",
	DispReplayCache:     "replay-cache",
	DispSkipUnchanged:   "skip-unchanged",
	DispTaintedUpstream: "tainted-upstream",
}

func (d Disposition) String() string {
	if s, ok := dispositionNames[d]; ok {
		return s
	}
	return fmt.Sprintf("Disposition(%d)", int(d))
}

// MarshalJSON encodes the disposition as its canonical name, keeping
// serialized Plans readable and stable across reorderings of the enum.
func (d Disposition) MarshalJSON() ([]byte, error) {
	s, ok := dispositionNames[d]
	if !ok {
		return nil, fmt.Errorf("core: unknown disposition %d", int(d))
	}
	return json.Marshal(s)
}

// UnmarshalJSON inverts MarshalJSON.
func (d *Disposition) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for k, v := range dispositionNames {
		if v == s {
			*d = k
			return nil
		}
	}
	return fmt.Errorf("core: unknown disposition %q", s)
}

// Plan modes.
const (
	// PlanModeFull plans a from-scratch check: every operator is
	// checked or replayed, none skipped.
	PlanModeFull = "full"
	// PlanModeDiff plans an incremental re-check of an edited graph
	// against the verdicts of its predecessor.
	PlanModeDiff = "diff"
)

// PlanOp is one operator's planned treatment. Index is the operator's
// position in the G_s topological order — the same index the wavefront
// scheduler uses — so a Plan aligns with a check of the same graph
// positionally, without graph pointers.
type PlanOp struct {
	Index       int         `json:"index"`
	Label       string      `json:"label"`
	Op          string      `json:"op"`
	Disposition Disposition `json:"disposition"`
	// Reason says why the disposition was chosen ("cache miss",
	// "cone unchanged", "upstream cone changed", …).
	Reason string `json:"reason"`
	// Key is the operator's verdict-cache key (hex), empty when the run
	// has no cache.
	Key string `json:"key,omitempty"`

	// entry is the cache entry prefetched at plan time, consumed by
	// checkOp on this operator's worker. Entries are immutable once
	// stored, so holding the pointer across the plan/execute boundary
	// is safe under concurrent cache traffic. Runtime-only: it does not
	// survive serialization, and a deserialized Plan simply re-probes
	// (a Plan can cost time when stale, never correctness).
	entry *vcache.Entry
}

// Plan is the checker's decision layer output: one PlanOp per G_s
// operator in topological order, plus disposition totals.
type Plan struct {
	Mode string   `json:"mode"`
	Ops  []PlanOp `json:"ops"`
	// Disposition totals, for report surfaces and quick triage.
	Checks  int `json:"checks"`
	Replays int `json:"replays"`
	Skips   int `json:"skips"`
	Tainted int `json:"tainted"`
}

// recount refreshes the disposition totals from Ops.
func (p *Plan) recount() {
	p.Checks, p.Replays, p.Skips, p.Tainted = 0, 0, 0, 0
	for i := range p.Ops {
		switch p.Ops[i].Disposition {
		case DispReplayCache:
			p.Replays++
		case DispSkipUnchanged:
			p.Skips++
		case DispTaintedUpstream:
			p.Tainted++
		default:
			p.Checks++
		}
	}
}

// prefetch fills every PlanOp's cache key and probes the cache once
// per operator, attaching the entries the executor will replay. Probes
// happen single-threaded at plan time (the cone hasher's memo and the
// key map are already built); they touch no run counters — hits and
// misses are accounted when operators execute, keeping counter totals
// identical to the unplanned path.
func (r *runState) prefetch(p *Plan, order []*graph.Node) {
	if r.cache == nil {
		return
	}
	for i := range p.Ops {
		key := r.cache.keys[order[i].ID]
		p.Ops[i].Key = key.Hex()
		p.Ops[i].entry = r.cache.cache.Get(key)
	}
}

// buildPlan produces the full-check plan: replay every operator whose
// verdict is already cached, check the rest.
func (r *runState) buildPlan(order []*graph.Node) *Plan {
	p := &Plan{Mode: PlanModeFull, Ops: make([]PlanOp, len(order))}
	for i, v := range order {
		p.Ops[i] = PlanOp{Index: i, Label: v.Label, Op: string(v.Op),
			Disposition: DispCheck, Reason: "no cache configured"}
	}
	r.prefetch(p, order)
	if r.cache != nil {
		for i := range p.Ops {
			if p.Ops[i].entry != nil {
				p.Ops[i].Disposition = DispReplayCache
				p.Ops[i].Reason = "verdict cached"
			} else {
				p.Ops[i].Reason = "cache miss"
			}
		}
	}
	p.recount()
	return p
}

// planOp returns operator i's plan entry, or nil on the unplanned
// path.
func (r *runState) planOp(i int) *PlanOp {
	if r.plan == nil {
		return nil
	}
	return &r.plan.Ops[i]
}
