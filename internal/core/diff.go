package core

// Diff-aware incremental re-verification (ROADMAP item 4): production
// users edit one operator of an already-verified model and resubmit.
// The cone fingerprints of internal/fingerprint chain every operator's
// hash through its producers, so comparing the old and new graphs'
// cone-fingerprint sets computes the minimal dirty set exactly: an
// operator whose upstream cone (structure, shapes, attributes, and the
// input-relation entries it consumes) is unchanged keeps its hash, and
// its cached verdict — keyed on that hash — still holds. DiffPlan
// turns that comparison into a Plan; DiffCheckContext executes it,
// replaying unchanged operators from the verdict cache and saturating
// only the edit's downstream cone, then classifies the outcome into a
// DeltaReport.
//
// Scope: the diff is G_s-sided with G_d and the options fixed. Editing
// G_d (or the lemma registry, budgets, …) changes the ambient digest,
// so every key misses and the "diff" degrades to an honestly-counted
// full re-check — slower, never stale.

import (
	"context"
	"fmt"
	"strings"

	"entangle/internal/fingerprint"
	"entangle/internal/graph"
	"entangle/internal/relation"
	"entangle/internal/vcache"
)

// DiffPlan compares an edited graph against its predecessor and plans
// the minimal re-check: operators whose cone fingerprint also occurs
// in the old graph are SkipUnchanged (their verdict is replayable);
// operators with a changed cone are Check when the change originates
// at them and TaintedUpstream when a producer's cone changed. Each
// relation is parsed against its own graph, so old and new carry their
// own input relations; gd anchors the G_d-leaf encoding shared by
// both.
//
// DiffPlan is a pure function of the graphs and relations — no cache
// probes, no clocks — which is what lets the internal/mc planner model
// check its two safety properties ("a replayed verdict is never
// stale", "every changed-cone operator is re-checked") exhaustively at
// bounded scopes against this exact code.
func DiffPlan(oldGs *graph.Graph, oldRi *relation.Relation, newGs *graph.Graph, newRi *relation.Relation, gd *graph.Graph) (*Plan, error) {
	gdix, err := fingerprint.NewGdIndex(gd)
	if err != nil {
		return nil, fmt.Errorf("core: diff: G_d: %v", err)
	}
	oldOrder, err := oldGs.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("core: diff: old G_s: %v", err)
	}
	newOrder, err := newGs.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("core: diff: new G_s: %v", err)
	}
	oldCones := fingerprint.NewConeHasher(oldGs, oldRi, gdix)
	oldSet := make(map[fingerprint.Hash]bool, len(oldOrder))
	for _, v := range oldOrder {
		oldSet[oldCones.Node(v.ID)] = true
	}
	newCones := fingerprint.NewConeHasher(newGs, newRi, gdix)

	plan := &Plan{Mode: PlanModeDiff, Ops: make([]PlanOp, len(newOrder))}
	pos := make(map[graph.NodeID]int, len(newOrder))
	dirty := make([]bool, len(newOrder))
	for i, v := range newOrder {
		pos[v.ID] = i
		dirty[i] = !oldSet[newCones.Node(v.ID)]
		// A producer's changed cone is part of this operator's cone, so
		// upstreamDirty implies dirty — the cases below are exhaustive.
		upstreamDirty := false
		for _, in := range v.Inputs {
			if p := newGs.Tensor(in).Producer; p != graph.NoProducer && dirty[pos[p]] {
				upstreamDirty = true
				break
			}
		}
		op := PlanOp{Index: i, Label: v.Label, Op: string(v.Op)}
		switch {
		case !dirty[i]:
			op.Disposition = DispSkipUnchanged
			op.Reason = "cone unchanged"
		case upstreamDirty:
			op.Disposition = DispTaintedUpstream
			op.Reason = "upstream cone changed"
		default:
			op.Disposition = DispCheck
			op.Reason = "cone changed"
		}
		plan.Ops[i] = op
	}
	plan.recount()
	return plan, nil
}

// DeltaOp is one re-checked operator's entry in the delta report.
type DeltaOp struct {
	Label       string      `json:"label"`
	Disposition Disposition `json:"disposition"`
	// Cause says why the operator was re-checked and, for a failing
	// one, what its old verdict was.
	Cause string `json:"cause"`
	// Verdict is the new check's outcome for the operator.
	Verdict string `json:"verdict"`
	// NewlyFailing marks an operator that fails now but was not known
	// to fail before the edit: its old cone had a cached Refined
	// verdict, or no cached verdict at all (conservatively included,
	// with Cause saying so).
	NewlyFailing bool `json:"newly_failing,omitempty"`
}

// DeltaReport is the outcome of an incremental re-verification: the
// full execution report of the new graph plus the delta
// classification — what changed, what was replayed, and which failures
// are new.
type DeltaReport struct {
	// Report is the new graph's complete check report (KeepGoing mode,
	// so Failures carries every failing operator).
	Report *Report `json:"-"`
	// Plan is the executed diff plan (identical to Report.Plan).
	Plan *Plan `json:"plan"`
	// Changed lists the re-checked operators (dispositions Check and
	// TaintedUpstream) in topological order.
	Changed []DeltaOp `json:"changed"`
	// NewlyFailing is the subset of Changed with NewlyFailing set.
	NewlyFailing []DeltaOp `json:"newly_failing,omitempty"`
	// UnchangedOps counts operators the plan proved unchanged;
	// ReplayedOps counts verdicts actually reconstructed from the
	// cache; RecheckedOps counts live saturations this run performed.
	// ReplayedOps < UnchangedOps means some unchanged operators missed
	// the cache and were checked live — a performance loss, never a
	// stale verdict.
	UnchangedOps int `json:"unchanged_ops"`
	ReplayedOps  int `json:"replayed_ops"`
	RecheckedOps int `json:"rechecked_ops"`
}

// Render formats the delta one line per re-checked operator, in
// topological order. Deterministic: no durations, no pointers — the
// CLI prints it and tests compare it byte for byte.
func (d *DeltaReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diff: %d ops — %d unchanged (%d replayed), %d re-checked\n",
		len(d.Plan.Ops), d.UnchangedOps, d.ReplayedOps, d.RecheckedOps)
	for _, op := range d.Changed {
		fmt.Fprintf(&b, "  %s: %s (%s) -> %s\n", op.Label, op.Disposition, op.Cause, op.Verdict)
	}
	if len(d.NewlyFailing) > 0 {
		b.WriteString("newly failing:\n")
		for _, op := range d.NewlyFailing {
			fmt.Fprintf(&b, "  %s: %s\n", op.Label, op.Cause)
		}
	}
	return b.String()
}

// DiffCheck is DiffCheckContext with a background context.
func (c *Checker) DiffCheck(oldGs, newGs, gd *graph.Graph, oldRi, newRi *relation.Relation) (*DeltaReport, error) {
	return c.DiffCheckContext(context.Background(), oldGs, newGs, gd, oldRi, newRi)
}

// DiffCheckContext incrementally re-verifies an edited graph: it plans
// with DiffPlan, executes the plan against newGs (replaying unchanged
// operators from Options.Cache and saturating the rest), and
// classifies the outcome. The returned error follows CheckContext's
// KeepGoing convention: the earliest failing operator's error, nil
// when the new graph is fully refined, and a nil DeltaReport only on a
// fatal condition (cancellation, malformed input).
//
// KeepGoing is forced on: a diff's purpose is the complete delta
// picture, and first-error mode would hide every failure past the
// earliest one. Without a cache the plan still computes the dirty set,
// but every "replay" falls back to a live check.
func (c *Checker) DiffCheckContext(ctx context.Context, oldGs, newGs, gd *graph.Graph, oldRi, newRi *relation.Relation) (*DeltaReport, error) {
	opts := c.opts
	opts.KeepGoing = true
	opts.Unplanned = false
	cc := &Checker{opts: opts}
	report, err := cc.checkContext(ctx, newGs, gd, newRi, func(run *runState, order []*graph.Node) (*Plan, error) {
		p, perr := DiffPlan(oldGs, oldRi, newGs, newRi, gd)
		if perr != nil {
			return nil, perr
		}
		run.prefetch(p, order)
		return p, nil
	})
	if report == nil {
		return nil, err
	}
	old, oerr := oldCachedVerdicts(opts, oldGs, gd, oldRi)
	if oerr != nil {
		return nil, oerr
	}
	return buildDelta(report, old), err
}

// oldCachedVerdicts probes the cache for the old graph's verdicts —
// under the old graph's own ambient and cone keys — so newly-failing
// classification can compare against what was known before the edit.
// Returns nil (classify conservatively) when there is no cache.
func oldCachedVerdicts(opts Options, oldGs, gd *graph.Graph, oldRi *relation.Relation) (map[string]vcache.Verdict, error) {
	if opts.Cache == nil {
		return nil, nil
	}
	gdix, err := fingerprint.NewGdIndex(gd)
	if err != nil {
		return nil, fmt.Errorf("core: diff: G_d: %v", err)
	}
	order, err := oldGs.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("core: diff: old G_s: %v", err)
	}
	ambient := fingerprint.Ambient(CheckerVersion, opts.Registry.Fingerprint(),
		[]byte(opts.cacheOptionsString()), fingerprint.GraphDigest(gd), oldGs.Ctx)
	cones := fingerprint.NewConeHasher(oldGs, oldRi, gdix)
	out := make(map[string]vcache.Verdict, len(order))
	for _, v := range order {
		if e := opts.Cache.Get(fingerprint.Key(ambient, cones.Node(v.ID))); e != nil {
			out[v.Label] = e.Verdict
		}
	}
	return out, nil
}

// buildDelta classifies an executed diff run. Plan ops align with
// Verdicts positionally (both are in topo order); a KeepGoing run may
// append one extra output-resolution verdict past the plan, which is
// execution detail, not delta.
func buildDelta(report *Report, old map[string]vcache.Verdict) *DeltaReport {
	d := &DeltaReport{Report: report, Plan: report.Plan}
	for i := range report.Plan.Ops {
		po := &report.Plan.Ops[i]
		var verdict OpVerdict
		if i < len(report.Verdicts) {
			verdict = report.Verdicts[i]
		}
		if po.Disposition == DispSkipUnchanged {
			d.UnchangedOps++
		}
		switch {
		case verdict.Replayed:
			d.ReplayedOps++
		case verdict.Op != nil && verdict.Kind != VerdictSkipped:
			d.RecheckedOps++
		}
		if po.Disposition != DispCheck && po.Disposition != DispTaintedUpstream {
			continue
		}
		do := DeltaOp{Label: po.Label, Disposition: po.Disposition,
			Cause: po.Reason, Verdict: verdict.Kind.String()}
		if verdict.Failed() && verdict.Kind != VerdictSkipped {
			ov, known := old[po.Label]
			switch {
			case !known:
				do.NewlyFailing = true
				do.Cause += "; no cached verdict before the edit"
			case ov == vcache.VerdictRefined:
				do.NewlyFailing = true
				do.Cause += "; refined before the edit"
			default:
				do.Cause += "; already failing before the edit"
			}
		}
		d.Changed = append(d.Changed, do)
		if do.NewlyFailing {
			d.NewlyFailing = append(d.NewlyFailing, do)
		}
	}
	return d
}
