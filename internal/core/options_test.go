package core

import (
	"errors"
	"runtime"
	"testing"

	"entangle/internal/models"
)

// TestFrontierMatchesWholeGraphOnAllModels checks the paper's claim
// that the §4.3.1 optimization affects performance only: every
// evaluation model must verify identically with and without it, and
// the output relations must contain the same simplest mappings.
func TestFrontierMatchesWholeGraphOnAllModels(t *testing.T) {
	builds := map[string]func() (*models.Built, error){
		"gpt":        func() (*models.Built, error) { return models.GPT(models.Options{TP: 2, SP: true}) },
		"llama":      func() (*models.Built, error) { return models.Llama(models.Options{TP: 2}) },
		"qwen2":      func() (*models.Built, error) { return models.Qwen2(models.Options{TP: 2}) },
		"seedmoe":    func() (*models.Built, error) { return models.SeedMoE(models.Options{TP: 2}) },
		"regression": func() (*models.Built, error) { return models.Regression(models.Options{GradAccum: 2}) },
	}
	for name, build := range builds {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			b, err := build()
			if err != nil {
				t.Fatal(err)
			}
			fast, err := NewChecker(Options{}).Check(b.Gs, b.Gd, b.Ri)
			if err != nil {
				t.Fatalf("frontier: %v", err)
			}
			slow, err := NewChecker(Options{DisableFrontier: true}).Check(b.Gs, b.Gd, b.Ri)
			if err != nil {
				t.Fatalf("whole-graph: %v", err)
			}
			for _, o := range b.Gs.Outputs {
				fm := fast.OutputRelation.Get(o)
				sm := slow.OutputRelation.Get(o)
				if len(fm) == 0 || len(sm) == 0 {
					t.Fatalf("output %d unmapped (%d vs %d)", o, len(fm), len(sm))
				}
				if fm[0].Key() != sm[0].Key() {
					t.Fatalf("simplest mappings differ:\n  frontier: %s\n  whole:    %s", fm[0], sm[0])
				}
			}
		})
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxMappings != 16 || o.Registry == nil || o.Saturate.MaxIters != 24 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers default %d, want GOMAXPROCS %d", o.Workers, runtime.GOMAXPROCS(0))
	}
	// Explicit values survive.
	o2 := Options{MaxMappings: 3, Workers: 1}.withDefaults()
	if o2.MaxMappings != 3 {
		t.Fatal("explicit MaxMappings overridden")
	}
	if o2.Workers != 1 {
		t.Fatal("explicit Workers overridden")
	}
	// Negative worker counts clamp to sequential.
	if o3 := (Options{Workers: -4}).withDefaults(); o3.Workers != 1 {
		t.Fatalf("negative Workers must clamp to 1, got %d", o3.Workers)
	}
}

func TestMaxFrontierItersBounds(t *testing.T) {
	// A pathologically small frontier budget loses completeness the
	// sound way: a RefinementError (false alarm), never a wrong
	// verification or a crash. A generous budget verifies.
	b, err := models.Regression(models.Options{GradAccum: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewChecker(Options{MaxFrontierIters: 2}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		// The truncated search may surface as a plain disproof or as an
		// InconclusiveError wrapping one; either way errors.As must
		// still localize the RefinementError.
		var re *RefinementError
		if !errors.As(err, &re) {
			t.Fatalf("tiny budget must degrade to RefinementError, got %v", err)
		}
	}
	if _, err := NewChecker(Options{MaxFrontierIters: 64}).Check(b.Gs, b.Gd, b.Ri); err != nil {
		t.Fatalf("generous budget must verify: %v", err)
	}
}

func TestReportFields(t *testing.T) {
	b, err := models.Regression(models.Options{GradAccum: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(Options{}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpsProcessed != b.Gs.OperatorCount() {
		t.Fatalf("ops processed %d want %d", rep.OpsProcessed, b.Gs.OperatorCount())
	}
	if rep.Duration <= 0 {
		t.Fatal("duration not recorded")
	}
	if len(rep.Stats.Applications) == 0 {
		t.Fatal("no lemma applications recorded")
	}
	if rep.FullRelation.Len() < rep.OutputRelation.Len() {
		t.Fatal("full relation smaller than output relation")
	}
}
