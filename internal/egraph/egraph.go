// Package egraph implements the equality-saturation engine ENTANGLE
// uses for expression rewriting (§4.2.2). It is a from-scratch Go
// implementation of the e-graph data structure popularized by the egg
// library (Willsey et al., POPL'21): hash-consed ENodes grouped into
// equivalence classes by a union-find, congruence closure maintained by
// worklist rebuilding, rewrite rules applied by e-matching, and
// cost-based extraction of representative expressions.
package egraph

import (
	"fmt"
	"sort"
	"strings"

	"entangle/internal/expr"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// ClassID identifies an equivalence class of expressions.
type ClassID int

// ENode is one operator application whose children are equivalence
// classes rather than concrete subterms.
type ENode struct {
	Op   expr.Op
	Str  string
	Ints []sym.Expr
	Kids []ClassID

	// Leaf identity (Op == expr.OpTensor).
	TID  int
	Name string
}

// Leaf builds a tensor-leaf ENode.
func Leaf(tid int, name string) ENode {
	return ENode{Op: expr.OpTensor, TID: tid, Name: name}
}

func (n ENode) isLeaf() bool { return n.Op == expr.OpTensor }

func (n ENode) key() string {
	var b strings.Builder
	if n.isLeaf() {
		fmt.Fprintf(&b, "t%d", n.TID)
		return b.String()
	}
	b.WriteString(string(n.Op))
	if n.Str != "" {
		b.WriteByte('.')
		b.WriteString(n.Str)
	}
	b.WriteByte('[')
	for i, e := range n.Ints {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.Key())
	}
	b.WriteString("](")
	for i, k := range n.Kids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", k)
	}
	b.WriteByte(')')
	return b.String()
}

type parentEntry struct {
	node  ENode
	class ClassID
}

// Class is an equivalence class: the set of ENodes known equal.
type Class struct {
	id      ClassID
	nodes   []ENode
	parents []parentEntry
}

// Nodes returns the ENodes currently in the class.
func (c *Class) Nodes() []ENode { return c.nodes }

// EGraph is the equality-saturation engine.
type EGraph struct {
	parent  []ClassID
	rank    []int
	classes map[ClassID]*Class
	memo    map[string]ClassID
	work    []ClassID

	// Ctx resolves symbolic-scalar comparisons in rule conditions.
	Ctx *sym.Context

	nodeCount int

	// shape analysis (analysis.go)
	leafShape     func(tid int) (shape.Shape, bool)
	shapeMemo     map[ClassID]shape.Shape
	shapeVisiting map[ClassID]bool
}

// New returns an empty e-graph using ctx for symbolic reasoning (nil
// means an empty context).
func New(ctx *sym.Context) *EGraph {
	if ctx == nil {
		ctx = sym.NewContext()
	}
	return &EGraph{classes: map[ClassID]*Class{}, memo: map[string]ClassID{}, Ctx: ctx}
}

// NodeCount returns the number of live ENodes: distinct nodes
// currently stored across all classes, after rebuild dedup. This is
// the count SaturateOpts.MaxNodes budgets against. It is maintained
// incrementally (AddNode increments, repair decrements per deduped
// node) so it is O(1); nodeTotal is the O(classes) cross-check used
// by tests.
func (g *EGraph) NodeCount() int { return g.nodeCount }

func nodeTotal(g *EGraph) int {
	n := 0
	for _, c := range g.classes {
		n += len(c.nodes)
	}
	return n
}

// ClassCount returns the number of live equivalence classes.
func (g *EGraph) ClassCount() int { return len(g.classes) }

// Find returns the canonical representative of a class.
func (g *EGraph) Find(c ClassID) ClassID {
	for g.parent[c] != c {
		g.parent[c] = g.parent[g.parent[c]] // path halving
		c = g.parent[c]
	}
	return c
}

func (g *EGraph) newClass() ClassID {
	id := ClassID(len(g.parent))
	g.parent = append(g.parent, id)
	g.rank = append(g.rank, 0)
	g.classes[id] = &Class{id: id}
	return id
}

func (g *EGraph) canonNode(n ENode) ENode {
	if len(n.Kids) == 0 {
		return n
	}
	kids := make([]ClassID, len(n.Kids))
	changed := false
	for i, k := range n.Kids {
		kids[i] = g.Find(k)
		if kids[i] != n.Kids[i] {
			changed = true
		}
	}
	if !changed {
		return n
	}
	n.Kids = kids
	return n
}

// Lookup reports whether an ENode already exists, without inserting.
// Used by constrained lemmas (§4.3.2) that may only target existing
// ENodes.
func (g *EGraph) Lookup(n ENode) (ClassID, bool) {
	n = g.canonNode(n)
	id, ok := g.memo[n.key()]
	if !ok {
		return 0, false
	}
	return g.Find(id), true
}

// AddNode inserts an ENode (hash-consed) and returns its class.
func (g *EGraph) AddNode(n ENode) ClassID {
	n = g.canonNode(n)
	k := n.key()
	if id, ok := g.memo[k]; ok {
		return g.Find(id)
	}
	id := g.newClass()
	g.classes[id].nodes = append(g.classes[id].nodes, n)
	g.memo[k] = id
	g.nodeCount++
	for _, kid := range n.Kids {
		kc := g.classes[g.Find(kid)]
		kc.parents = append(kc.parents, parentEntry{node: n, class: id})
	}
	return id
}

// AddTerm inserts a whole expression tree, returning its class.
func (g *EGraph) AddTerm(t *expr.Term) ClassID {
	if t.IsLeaf() {
		return g.AddNode(Leaf(t.TID, t.Name))
	}
	kids := make([]ClassID, len(t.Args))
	for i, a := range t.Args {
		kids[i] = g.AddTerm(a)
	}
	return g.AddNode(ENode{Op: t.Op, Str: t.Str, Ints: t.Ints, Kids: kids})
}

// LookupTerm reports the class of an expression tree if every node of
// it already exists; it never inserts.
func (g *EGraph) LookupTerm(t *expr.Term) (ClassID, bool) {
	if t.IsLeaf() {
		return g.Lookup(Leaf(t.TID, t.Name))
	}
	kids := make([]ClassID, len(t.Args))
	for i, a := range t.Args {
		k, ok := g.LookupTerm(a)
		if !ok {
			return 0, false
		}
		kids[i] = k
	}
	return g.Lookup(ENode{Op: t.Op, Str: t.Str, Ints: t.Ints, Kids: kids})
}

// Union merges two classes; it returns true when they were distinct.
func (g *EGraph) Union(a, b ClassID) bool {
	a, b = g.Find(a), g.Find(b)
	if a == b {
		return false
	}
	if g.rank[a] < g.rank[b] {
		a, b = b, a
	}
	if g.rank[a] == g.rank[b] {
		g.rank[a]++
	}
	// b is absorbed into a.
	g.parent[b] = a
	ca, cb := g.classes[a], g.classes[b]
	ca.nodes = append(ca.nodes, cb.nodes...)
	ca.parents = append(ca.parents, cb.parents...)
	delete(g.classes, b)
	g.work = append(g.work, a)
	return true
}

// Rebuild restores the congruence invariant after unions: parents of
// merged classes are re-canonicalized and congruent nodes unioned.
func (g *EGraph) Rebuild() {
	for len(g.work) > 0 {
		todo := g.work
		g.work = nil
		seen := map[ClassID]bool{}
		for _, c := range todo {
			c = g.Find(c)
			if seen[c] {
				continue
			}
			seen[c] = true
			g.repair(c)
		}
	}
}

func (g *EGraph) repair(c ClassID) {
	cl := g.classes[c]
	if cl == nil {
		return
	}
	// Re-canonicalize and dedupe this class's own nodes. Dropped
	// duplicates shrink the live node count NodeCount reports.
	dedup := map[string]bool{}
	var nodes []ENode
	for _, n := range cl.nodes {
		cn := g.canonNode(n)
		k := cn.key()
		if dedup[k] {
			g.nodeCount--
			continue
		}
		dedup[k] = true
		nodes = append(nodes, cn)
	}
	cl.nodes = nodes

	// Re-canonicalize parents; detect newly congruent parents.
	type slot struct {
		class ClassID
	}
	fresh := map[string]slot{}
	var parents []parentEntry
	for _, p := range cl.parents {
		cn := g.canonNode(p.node)
		oldKey := p.node.key()
		newKey := cn.key()
		if oldKey != newKey {
			delete(g.memo, oldKey)
		}
		pc := g.Find(p.class)
		if prev, ok := fresh[newKey]; ok {
			if prev.class != pc {
				g.Union(prev.class, pc)
				pc = g.Find(pc)
				fresh[newKey] = slot{class: pc}
			}
		} else {
			fresh[newKey] = slot{class: pc}
			parents = append(parents, parentEntry{node: cn, class: pc})
		}
		if memoC, ok := g.memo[newKey]; ok {
			if g.Find(memoC) != pc {
				g.Union(memoC, pc)
			}
		}
		g.memo[newKey] = g.Find(pc)
	}
	cl.parents = parents
}

// Classes returns the live canonical class IDs in ascending order.
// Class IDs are assigned deterministically by insertion, so iterating
// in this order (instead of Go's randomized map order) makes
// e-matching — and therefore union order, extraction tie-breaking, and
// per-rule application counts — reproducible across runs. The
// wavefront scheduler relies on this to keep parallel and sequential
// reports byte-identical.
func (g *EGraph) Classes() []ClassID {
	out := make([]ClassID, 0, len(g.classes))
	for id := range g.classes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (g *EGraph) sortedClassIDs() []ClassID { return g.Classes() }

// Class returns the class record for a (possibly stale) ID.
func (g *EGraph) Class(id ClassID) *Class { return g.classes[g.Find(id)] }
