// Package egraph implements the equality-saturation engine ENTANGLE
// uses for expression rewriting (§4.2.2). It is a from-scratch Go
// implementation of the e-graph data structure popularized by the egg
// library (Willsey et al., POPL'21): hash-consed ENodes grouped into
// equivalence classes by a union-find, congruence closure maintained by
// worklist rebuilding, rewrite rules applied by e-matching, and
// cost-based extraction of representative expressions.
package egraph

import (
	"fmt"
	"sort"
	"strings"

	"entangle/internal/expr"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// ClassID identifies an equivalence class of expressions.
type ClassID int

// ENode is one operator application whose children are equivalence
// classes rather than concrete subterms.
type ENode struct {
	Op   expr.Op
	Str  string
	Ints []sym.Expr
	Kids []ClassID

	// Leaf identity (Op == expr.OpTensor).
	TID  int
	Name string

	// head caches the e-graph-local interned ID of this node's
	// kid-independent identity (see intern.go). Zero means not yet
	// interned; the owning e-graph fills it on first insert/lookup.
	// Struct copies carry it along, which is safe because heads are
	// immutable and IDs are only ever read by the graph that set them.
	head headID
}

// Leaf builds a tensor-leaf ENode.
func Leaf(tid int, name string) ENode {
	return ENode{Op: expr.OpTensor, TID: tid, Name: name}
}

func (n ENode) isLeaf() bool { return n.Op == expr.OpTensor }

// key renders a node's full structural identity as a string, for
// diagnostics and invariant messages. The hot path never calls it:
// hash-consing keys on the interned (head, kids) pair instead.
func (n ENode) key() string {
	var b strings.Builder
	b.Write(appendHeadKey(nil, &n))
	b.WriteByte('(')
	for i, k := range n.Kids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", k)
	}
	b.WriteByte(')')
	return b.String()
}

type parentEntry struct {
	node  ENode
	class ClassID
}

// opCount tracks how many nodes with one operator a class holds. The
// per-class list is short (classes mix few distinct operators), so
// linear scans beat a map.
type opCount struct {
	op opID
	n  int32
}

// Class is an equivalence class: the set of ENodes known equal.
type Class struct {
	id      ClassID
	nodes   []ENode
	parents []parentEntry

	// ops counts this class's nodes per operator — the first-symbol
	// index rule matching consults: a pattern whose first child must be
	// rooted at op X cannot match a node whose child-0 class holds no
	// X node, so the matcher skips it without descending.
	ops []opCount
}

// Nodes returns the ENodes currently in the class.
func (c *Class) Nodes() []ENode { return c.nodes }

// hasOp reports whether the class currently holds a node with op.
func (c *Class) hasOp(op opID) bool {
	for i := range c.ops {
		if c.ops[i].op == op {
			return c.ops[i].n > 0
		}
	}
	return false
}

func (c *Class) opsAdd(op opID, delta int32) {
	for i := range c.ops {
		if c.ops[i].op == op {
			c.ops[i].n += delta
			return
		}
	}
	c.ops = append(c.ops, opCount{op: op, n: delta})
}

// EGraph is the equality-saturation engine.
type EGraph struct {
	parent  []ClassID
	rank    []int
	classes map[ClassID]*Class
	memo    *memoTable
	intern  *interner
	work    []ClassID

	// Ctx resolves symbolic-scalar comparisons in rule conditions.
	Ctx *sym.Context

	nodeCount int

	// dirty accumulates classes whose node sets grew (fresh classes and
	// union survivors) since the saturation loop last drained it; only
	// these classes — plus ancestors within pattern-depth reach — can
	// root an e-match that was not already produced.
	dirty []ClassID

	// Saturation node budget (rewrite.go). nodeLimit is non-zero only
	// while Saturate runs; Instantiate then declines rule applications
	// that would push the live node count past it, setting budgetDenied
	// so Saturate reports the node-limit stop.
	nodeLimit    int
	budgetDenied bool

	// Cross-call saturation state (rewrite.go). appliedFP records the
	// fingerprint of every pure-rule application actually executed on
	// this graph, across Saturate calls; satFixpoint remembers that the
	// previous call reached fixpoint under satRules, which lets the
	// next same-rules call skip the full first-iteration scan and
	// e-match only classes dirtied since — the frontier-fold hot path.
	appliedFP   map[string]bool
	satRules    []*Rule
	satFixpoint bool

	// Reusable scratch, so the rebuild/match loops allocate nothing
	// steady-state.
	scratchSeen  map[uint64]int32 // repair dedup: node hash → first index
	mark         []int32          // per class slot, stamped with markEpoch
	markEpoch    int32
	dirtyFront   []ClassID
	dirtyNext    []ClassID
	dirtyAll     []ClassID
	classScratch []ClassID
	child0ID     []opID     // per-rule child-0 op filter, resolved per iteration
	fpBuf        []byte     // fingerprint scratch (appendFingerprint)
	substStack   []*Subst   // e-matching result stack (matchClassOnStack)
	headBuf      []byte     // head-key scratch (headOf)
	substArena   substArena // per-match-phase Subst recycling (newSubst)
	arenaOn      bool       // arena active: only during saturation matching
	cleanCostBuf []int      // extraction cost table (cleanCosts), indexed by ClassID

	// shape analysis (analysis.go)
	leafShape     func(tid int) (shape.Shape, bool)
	shapeMemo     map[ClassID]shape.Shape
	shapeVisiting map[ClassID]bool
}

// New returns an empty e-graph using ctx for symbolic reasoning (nil
// means an empty context).
func New(ctx *sym.Context) *EGraph {
	if ctx == nil {
		ctx = sym.NewContext()
	}
	return &EGraph{
		classes:     map[ClassID]*Class{},
		memo:        newMemoTable(),
		intern:      newInterner(),
		scratchSeen: map[uint64]int32{},
		Ctx:         ctx,
	}
}

// NodeCount returns the number of live ENodes: distinct nodes
// currently stored across all classes, after rebuild dedup. This is
// the count SaturateOpts.MaxNodes budgets against. It is maintained
// incrementally (AddNode increments, repair decrements per deduped
// node) so it is O(1); nodeTotal is the O(classes) cross-check used
// by tests.
func (g *EGraph) NodeCount() int { return g.nodeCount }

func nodeTotal(g *EGraph) int {
	n := 0
	for _, c := range g.classes {
		n += len(c.nodes)
	}
	return n
}

// ClassCount returns the number of live equivalence classes.
func (g *EGraph) ClassCount() int { return len(g.classes) }

// Find returns the canonical representative of a class.
func (g *EGraph) Find(c ClassID) ClassID {
	for g.parent[c] != c {
		g.parent[c] = g.parent[g.parent[c]] // path halving
		c = g.parent[c]
	}
	return c
}

func (g *EGraph) newClass() ClassID {
	id := ClassID(len(g.parent))
	g.parent = append(g.parent, id)
	g.rank = append(g.rank, 0)
	g.classes[id] = &Class{id: id}
	g.dirty = append(g.dirty, id)
	return id
}

func (g *EGraph) canonNode(n ENode) ENode {
	if len(n.Kids) == 0 {
		return n
	}
	changed := false
	for _, k := range n.Kids {
		if g.Find(k) != k {
			changed = true
			break
		}
	}
	if !changed {
		return n // already canonical: the common post-rebuild case, no copy
	}
	kids := make([]ClassID, len(n.Kids))
	for i, k := range n.Kids {
		kids[i] = g.Find(k)
	}
	n.Kids = kids
	return n
}

// Lookup reports whether an ENode already exists, without inserting.
// Used by constrained lemmas (§4.3.2) that may only target existing
// ENodes.
func (g *EGraph) Lookup(n ENode) (ClassID, bool) {
	n = g.canonNode(n)
	id, ok := g.memoLookup(&n)
	if !ok {
		return 0, false
	}
	return g.Find(id), true
}

// AddNode inserts an ENode (hash-consed) and returns its class. It is
// never budget-limited: saturation's MaxNodes cap applies to rule
// instantiation (addNode with budget), not to direct graph building.
func (g *EGraph) AddNode(n ENode) ClassID {
	id, _ := g.addNode(n, false)
	return id
}

// addNode is the hash-consing insert. With budget set (rule
// instantiation during saturation) it declines — returns ok == false —
// instead of creating a node beyond the live-node limit, recording the
// denial so Saturate reports a node-limit stop.
func (g *EGraph) addNode(n ENode, budget bool) (ClassID, bool) {
	n = g.canonNode(n)
	h := g.headOf(&n)
	hash := memoHash(h, n.Kids)
	if id, ok := g.memo.get(hash, h, n.Kids); ok {
		return g.Find(id), true
	}
	if budget && g.nodeLimit > 0 && g.nodeCount >= g.nodeLimit {
		g.budgetDenied = true
		return 0, false
	}
	id := g.newClass()
	cl := g.classes[id]
	cl.nodes = append(cl.nodes, n)
	cl.opsAdd(g.opOfHead(h), 1)
	g.memo.put(hash, h, n.Kids, id)
	g.nodeCount++
	for _, kid := range n.Kids {
		kc := g.classes[g.Find(kid)]
		kc.parents = append(kc.parents, parentEntry{node: n, class: id})
	}
	return id, true
}

// AddTerm inserts a whole expression tree, returning its class.
func (g *EGraph) AddTerm(t *expr.Term) ClassID {
	if t.IsLeaf() {
		return g.AddNode(Leaf(t.TID, t.Name))
	}
	kids := make([]ClassID, len(t.Args))
	for i, a := range t.Args {
		kids[i] = g.AddTerm(a)
	}
	return g.AddNode(ENode{Op: t.Op, Str: t.Str, Ints: t.Ints, Kids: kids})
}

// LookupTerm reports the class of an expression tree if every node of
// it already exists; it never inserts.
func (g *EGraph) LookupTerm(t *expr.Term) (ClassID, bool) {
	if t.IsLeaf() {
		return g.Lookup(Leaf(t.TID, t.Name))
	}
	kids := make([]ClassID, len(t.Args))
	for i, a := range t.Args {
		k, ok := g.LookupTerm(a)
		if !ok {
			return 0, false
		}
		kids[i] = k
	}
	return g.Lookup(ENode{Op: t.Op, Str: t.Str, Ints: t.Ints, Kids: kids})
}

// Union merges two classes; it returns true when they were distinct.
func (g *EGraph) Union(a, b ClassID) bool {
	a, b = g.Find(a), g.Find(b)
	if a == b {
		return false
	}
	if g.rank[a] < g.rank[b] {
		a, b = b, a
	}
	if g.rank[a] == g.rank[b] {
		g.rank[a]++
	}
	// b is absorbed into a.
	g.parent[b] = a
	ca, cb := g.classes[a], g.classes[b]
	ca.nodes = append(ca.nodes, cb.nodes...)
	ca.parents = append(ca.parents, cb.parents...)
	for _, oc := range cb.ops {
		ca.opsAdd(oc.op, oc.n)
	}
	delete(g.classes, b)
	g.work = append(g.work, a)
	g.dirty = append(g.dirty, a)
	return true
}

// Rebuild restores the congruence invariant after unions: parents of
// merged classes are re-canonicalized and congruent nodes unioned.
// With InvariantChecks enabled (ENTANGLE_CHECK_INVARIANTS=1) every
// rebuild is followed by a full structural audit that panics on drift.
func (g *EGraph) Rebuild() {
	for len(g.work) > 0 {
		todo := g.work
		g.work = nil
		epoch := g.nextEpoch()
		for _, c := range todo {
			c = g.Find(c)
			if g.mark[c] == epoch {
				continue
			}
			g.mark[c] = epoch
			g.repair(c)
		}
	}
	if InvariantChecks {
		if err := g.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("egraph: invariant violated after Rebuild: %v", err))
		}
	}
}

// nextEpoch advances the scratch-mark epoch, growing the mark slice to
// cover every allocated class slot. A slot is "in the current set" iff
// mark[slot] == epoch, so set resets are O(1).
func (g *EGraph) nextEpoch() int32 {
	if len(g.mark) < len(g.parent) {
		g.mark = append(g.mark, make([]int32, len(g.parent)-len(g.mark))...)
	}
	g.markEpoch++
	if g.markEpoch <= 0 { // epoch wrapped: stale marks could alias, wipe them
		for i := range g.mark {
			g.mark[i] = 0
		}
		g.markEpoch = 1
	}
	return g.markEpoch
}

// dirtyTake drains the dirty-class accumulator into a canonical,
// deduplicated candidate set, then expands it by `hops` parent steps:
// a pattern of depth d rooted at class R can only see a node gained by
// class D if R is within d-1 parent hops of D. Membership is recorded
// in the epoch marks (mark[c] == markEpoch after the call); the
// returned slice is scratch, valid until the next call.
func (g *EGraph) dirtyTake(hops int) []ClassID {
	epoch := g.nextEpoch()
	all := g.dirtyAll[:0]
	front := g.dirtyFront[:0]
	next := g.dirtyNext[:0]
	for _, d := range g.dirty {
		c := g.Find(d)
		if g.mark[c] == epoch || g.classes[c] == nil {
			continue
		}
		g.mark[c] = epoch
		front = append(front, c)
	}
	g.dirty = g.dirty[:0]
	all = append(all, front...)
	for hop := 0; hop < hops && len(front) > 0; hop++ {
		next = next[:0]
		for _, c := range front {
			cl := g.classes[c]
			if cl == nil {
				continue
			}
			for i := range cl.parents {
				pc := g.Find(cl.parents[i].class)
				if g.mark[pc] == epoch || g.classes[pc] == nil {
					continue
				}
				g.mark[pc] = epoch
				next = append(next, pc)
			}
		}
		all = append(all, next...)
		front, next = next, front
	}
	g.dirtyFront, g.dirtyNext, g.dirtyAll = front, next, all
	return all
}

func (g *EGraph) repair(c ClassID) {
	cl := g.classes[c]
	if cl == nil {
		return
	}
	// Re-canonicalize and dedupe this class's own nodes. Dropped
	// duplicates shrink the live node count NodeCount reports. Dedup is
	// by 64-bit node hash with a structural-equality verify; a genuine
	// hash collision falls back to a linear scan, so correctness never
	// depends on hashes being unique.
	seen := g.scratchSeen
	clear(seen)
	nodes := cl.nodes[:0]
	for _, n := range cl.nodes {
		cn := g.canonNode(n)
		h := g.headOf(&cn)
		hash := memoHash(h, cn.Kids)
		dup := false
		if j, ok := seen[hash]; ok {
			if nodesEquiv(&nodes[j], &cn) {
				dup = true
			} else {
				for k := range nodes {
					if nodesEquiv(&nodes[k], &cn) {
						dup = true
						break
					}
				}
			}
		} else {
			seen[hash] = int32(len(nodes))
		}
		if dup {
			g.nodeCount--
			cl.opsAdd(g.opOfHead(h), -1)
			continue
		}
		nodes = append(nodes, cn)
	}
	cl.nodes = nodes

	// Re-canonicalize parents; detect newly congruent parents. Same
	// hash-plus-verify dedup, indexing the rebuilt parents slice.
	seenP := g.scratchSeen
	clear(seenP)
	parents := cl.parents[:0]
	findEquiv := func(cn *ENode, hash uint64) int {
		if j, ok := seenP[hash]; ok {
			if nodesEquiv(&parents[j].node, cn) {
				return int(j)
			}
			for k := range parents {
				if nodesEquiv(&parents[k].node, cn) {
					return k
				}
			}
		}
		return -1
	}
	for _, p := range cl.parents {
		cn := g.canonNode(p.node)
		h := g.headOf(&cn)
		hash := memoHash(h, cn.Kids)
		if !kidsEqual(p.node.Kids, cn.Kids) {
			g.memo.del(memoHash(h, p.node.Kids), h, p.node.Kids)
		}
		pc := g.Find(p.class)
		if j := findEquiv(&cn, hash); j >= 0 {
			prev := g.Find(parents[j].class)
			if prev != pc {
				g.Union(prev, pc)
				pc = g.Find(pc)
				parents[j].class = pc
			} else {
				// Two congruent parent copies live in the same class:
				// that class now holds duplicate nodes, so queue it for
				// its own repair — dropping the entry here without doing
				// so would leave the duplicates (and the node count)
				// drifting forever.
				g.work = append(g.work, pc)
			}
		} else {
			if _, ok := seenP[hash]; !ok {
				seenP[hash] = int32(len(parents))
			}
			parents = append(parents, parentEntry{node: cn, class: pc})
		}
		if memoC, ok := g.memo.get(hash, h, cn.Kids); ok {
			if g.Find(memoC) != pc {
				g.Union(memoC, pc)
			}
		}
		g.memo.put(hash, h, cn.Kids, g.Find(pc))
	}
	cl.parents = parents
}

// Classes returns the live canonical class IDs in ascending order.
// Class IDs are assigned deterministically by insertion, so iterating
// in this order (instead of Go's randomized map order) makes
// e-matching — and therefore union order, extraction tie-breaking, and
// per-rule application counts — reproducible across runs. The
// wavefront scheduler relies on this to keep parallel and sequential
// reports byte-identical.
func (g *EGraph) Classes() []ClassID {
	out := make([]ClassID, 0, len(g.classes))
	for id := range g.classes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (g *EGraph) sortedClassIDs() []ClassID { return g.Classes() }

// sortedClassIDsScratch is Classes() into a reusable buffer — the
// saturation loop calls it once per iteration, so the ID slice would
// otherwise be a steady allocation. Valid until the next call.
func (g *EGraph) sortedClassIDsScratch() []ClassID {
	out := g.classScratch[:0]
	for id := range g.classes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	g.classScratch = out
	return out
}

// Class returns the class record for a (possibly stale) ID.
func (g *EGraph) Class(id ClassID) *Class { return g.classes[g.Find(id)] }
