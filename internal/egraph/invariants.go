package egraph

import (
	"fmt"
	"os"
)

// InvariantChecks, when true, makes every Rebuild finish with a full
// CheckInvariants audit and panic on drift. It defaults on when the
// ENTANGLE_CHECK_INVARIANTS environment variable is non-empty — the
// race-gated test runs set it (scripts/verify.sh) so congruence drift
// surfaces at the rebuild that caused it, not as a mysterious wrong
// extraction later. The audits are O(graph) per rebuild; never enable
// in production.
var InvariantChecks = os.Getenv("ENTANGLE_CHECK_INVARIANTS") != ""

// CheckInvariants audits the e-graph's structural invariants and
// returns the first violation found, or nil. The invariants, which
// Rebuild is supposed to (re)establish:
//
//  1. Class records are canonical: every classes-map key is its own
//     union-find representative and matches the record's id.
//  2. NodeCount bookkeeping: the incrementally maintained live-node
//     count equals the stored-node total, and per-class operator
//     counts (the first-symbol index) match a recount.
//  3. No intra-class duplicates: no two nodes of one class
//     canonicalize to the same identity.
//  4. Memo ↔ class agreement, both directions: every live memo entry
//     resolves to a class that actually holds the node, and every
//     stored node's canonical form is in the memo pointing back at
//     its class. (Congruence: two classes holding the same canonical
//     node would collide on the memo entry and fail this.)
//  5. Parent registration: every non-leaf node is recorded in each of
//     its kids' parent lists with the owning class.
func (g *EGraph) CheckInvariants() error {
	// 1. Canonical class records.
	for id, cl := range g.classes {
		if g.Find(id) != id {
			return fmt.Errorf("class %d is in the class map but not canonical (Find = %d)", id, g.Find(id))
		}
		if cl.id != id {
			return fmt.Errorf("class %d record carries id %d", id, cl.id)
		}
	}

	total := 0
	for id, cl := range g.classes {
		total += len(cl.nodes)

		// 2b + 3. Operator counts and intra-class dedup.
		recount := map[opID]int32{}
		seen := map[string]bool{}
		for i := range cl.nodes {
			cn := g.canonNode(cl.nodes[i])
			h := g.headOf(&cn)
			recount[g.opOfHead(h)]++
			k := cn.key()
			if seen[k] {
				return fmt.Errorf("class %d holds duplicate node %s", id, k)
			}
			seen[k] = true

			// 4 (node → memo direction).
			mc, ok := g.memo.get(memoHash(h, cn.Kids), h, cn.Kids)
			if !ok {
				return fmt.Errorf("class %d node %s missing from memo", id, k)
			}
			if g.Find(mc) != id {
				return fmt.Errorf("class %d node %s maps to class %d in memo", id, k, g.Find(mc))
			}

			// 5. Parent registration.
			for _, kid := range cn.Kids {
				kc := g.classes[g.Find(kid)]
				if kc == nil {
					return fmt.Errorf("class %d node %s has kid %d with no class record", id, k, kid)
				}
				found := false
				for j := range kc.parents {
					pn := g.canonNode(kc.parents[j].node)
					if g.Find(kc.parents[j].class) == id && nodesEquiv(&pn, &cn) {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("class %d node %s not registered in parents of kid class %d", id, k, g.Find(kid))
				}
			}
		}
		for _, oc := range cl.ops {
			if oc.n != recount[oc.op] {
				return fmt.Errorf("class %d op-count drift: op %d counted %d, recounted %d", id, oc.op, oc.n, recount[oc.op])
			}
			delete(recount, oc.op)
		}
		for op, n := range recount {
			return fmt.Errorf("class %d op-count drift: op %d has %d nodes but no index entry", id, op, n)
		}
	}

	// 2a. Live-node bookkeeping.
	if g.nodeCount != total {
		return fmt.Errorf("nodeCount %d != stored-node total %d", g.nodeCount, total)
	}

	// 4 (memo → class direction).
	var memoErr error
	g.memo.each(func(h headID, kids []ClassID, class ClassID) bool {
		cl := g.classes[g.Find(class)]
		if cl == nil {
			memoErr = fmt.Errorf("memo entry (head %d) points at dead class %d", h, class)
			return false
		}
		probe := ENode{head: h, Kids: kids}
		for i := range cl.nodes {
			cn := g.canonNode(cl.nodes[i])
			g.headOf(&cn)
			if nodesEquiv(&cn, &probe) {
				return true
			}
		}
		// Stale memo entries whose kids are no longer canonical are
		// tolerated as long as the canonical form also resolves (the
		// node→memo direction above checked it); a fully canonical
		// entry must be present in its class.
		for _, k := range kids {
			if g.Find(k) != k {
				return true
			}
		}
		memoErr = fmt.Errorf("memo entry (head %d, kids %v) not present in class %d", h, kids, g.Find(class))
		return false
	})
	return memoErr
}
