package egraph

import (
	"testing"

	"entangle/internal/expr"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

func shapedGraph(shapes map[int]shape.Shape) *EGraph {
	g := New(nil)
	g.SetLeafShapeFn(func(tid int) (shape.Shape, bool) {
		s, ok := shapes[tid]
		return s, ok
	})
	return g
}

func TestShapeOfLeafAndDerived(t *testing.T) {
	g := shapedGraph(map[int]shape.Shape{1: shape.Of(4, 8), 2: shape.Of(8, 3)})
	mm := g.AddTerm(expr.MatMul(leafT(1, "A"), leafT(2, "B")))
	s, ok := g.ShapeOf(mm)
	if !ok || !s.Equal(shape.Of(4, 3), sym.NewContext()) {
		t.Fatalf("matmul shape %v ok=%v", s, ok)
	}
	cc := g.AddTerm(expr.ConcatI(0, leafT(1, "A"), leafT(1, "A")))
	s, ok = g.ShapeOf(cc)
	if !ok || !s.Equal(shape.Of(8, 8), sym.NewContext()) {
		t.Fatalf("concat shape %v ok=%v", s, ok)
	}
}

func TestShapeOfUnknownLeaf(t *testing.T) {
	g := shapedGraph(map[int]shape.Shape{})
	c := g.AddTerm(expr.Unary("f", leafT(9, "X")))
	if _, ok := g.ShapeOf(c); ok {
		t.Fatal("unknown leaf must yield unknown shape")
	}
}

func TestShapeOfThroughUnionAndCycle(t *testing.T) {
	// After union(x, identity(x)) the class contains a self-loop; the
	// analysis must still derive the shape from the leaf member.
	g := shapedGraph(map[int]shape.Shape{1: shape.Of(5)})
	x := g.AddTerm(leafT(1, "X"))
	idx := g.AddTerm(expr.New(expr.OpIdentity, nil, "", leafT(1, "X")))
	g.Union(x, idx)
	g.Rebuild()
	s, ok := g.ShapeOf(x)
	if !ok || !s.Equal(shape.Of(5), sym.NewContext()) {
		t.Fatalf("shape via self-loop %v ok=%v", s, ok)
	}
}

func TestShapeMemoSurvivesUnions(t *testing.T) {
	g := shapedGraph(map[int]shape.Shape{1: shape.Of(4), 2: shape.Of(4)})
	a := g.AddTerm(leafT(1, "A"))
	if _, ok := g.ShapeOf(a); !ok {
		t.Fatal("shape of A")
	}
	b := g.AddTerm(leafT(2, "B"))
	g.Union(a, b)
	g.Rebuild()
	s, ok := g.ShapeOf(b)
	if !ok || !s.Equal(shape.Of(4), sym.NewContext()) {
		t.Fatalf("post-union shape %v ok=%v", s, ok)
	}
}

func TestRankOf(t *testing.T) {
	g := shapedGraph(map[int]shape.Shape{1: shape.Of(2, 3, 4)})
	c := g.AddTerm(leafT(1, "X"))
	if r, ok := g.RankOf(c); !ok || r != 3 {
		t.Fatalf("rank %d ok=%v", r, ok)
	}
}

func TestParentsOf(t *testing.T) {
	g := New(nil)
	x := g.AddTerm(leafT(1, "X"))
	s1 := g.AddTerm(expr.SliceI(leafT(1, "X"), 0, 0, 2))
	s2 := g.AddTerm(expr.SliceI(leafT(1, "X"), 0, 2, 4))
	parents := g.ParentsOf(x)
	if len(parents) != 2 {
		t.Fatalf("want 2 parents, got %d", len(parents))
	}
	seen := map[ClassID]bool{}
	for _, p := range parents {
		if p.Node.Op != expr.OpSlice {
			t.Fatalf("parent op %s", p.Node.Op)
		}
		seen[g.Find(p.Class)] = true
	}
	if !seen[g.Find(s1)] || !seen[g.Find(s2)] {
		t.Fatal("parent classes wrong")
	}
}

func TestExtractAllCleanLimit(t *testing.T) {
	g := New(nil)
	c := g.AddTerm(leafT(100, "A"))
	for i := 101; i < 110; i++ {
		g.Union(c, g.AddTerm(leafT(i, "")))
	}
	g.Rebuild()
	all := g.ExtractAllClean(c, func(int) bool { return true }, 3)
	if len(all) != 3 {
		t.Fatalf("limit not honored: %d", len(all))
	}
}

func TestExtractCleanRejectsForbiddenLeaf(t *testing.T) {
	g := New(nil)
	c := g.AddTerm(expr.Sum(leafT(1, "A"), leafT(2, "B")))
	got, ok := g.ExtractClean(c, func(tid int) bool { return tid == 1 })
	if ok {
		t.Fatalf("sum needs both leaves; got %v", got)
	}
}

func TestExtractCleanThroughNestedStructure(t *testing.T) {
	g := New(nil)
	// class = concat(slice(A), sum(B, C)) — all clean.
	term := expr.ConcatI(0,
		expr.SliceI(leafT(1, "A"), 0, 0, 2),
		expr.Sum(leafT(2, "B"), leafT(3, "C")))
	c := g.AddTerm(term)
	got, ok := g.ExtractClean(c, func(int) bool { return true })
	if !ok || !got.Equal(term) {
		t.Fatalf("extract %v ok=%v", got, ok)
	}
	if got.Size() != 3 {
		t.Fatalf("size %d", got.Size())
	}
}

func TestLookupAfterUnions(t *testing.T) {
	g := New(nil)
	a := g.AddTerm(leafT(1, "A"))
	b := g.AddTerm(leafT(2, "B"))
	fa := g.AddTerm(expr.Unary("f", leafT(1, "A")))
	g.Union(a, b)
	g.Rebuild()
	// f(B) should now be found via congruence with f(A).
	cls, ok := g.LookupTerm(expr.Unary("f", leafT(2, "B")))
	if !ok || g.Find(cls) != g.Find(fa) {
		t.Fatal("lookup through union failed")
	}
}

func TestStatsRuleNamesSorted(t *testing.T) {
	s := Stats{Applications: map[string]int{"z": 1, "a": 2, "m": 0}}
	names := s.RuleNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("names %v", names)
	}
}
