package egraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"entangle/internal/expr"
	"entangle/internal/sym"
)

func leafT(id int, name string) *expr.Term { return expr.Tensor(id, name) }

func TestHashConsing(t *testing.T) {
	g := New(nil)
	a1 := g.AddTerm(leafT(1, "A"))
	a2 := g.AddTerm(leafT(1, "A"))
	if a1 != a2 {
		t.Fatal("identical leaves must share a class")
	}
	m1 := g.AddTerm(expr.MatMul(leafT(1, "A"), leafT(2, "B")))
	m2 := g.AddTerm(expr.MatMul(leafT(1, "A"), leafT(2, "B")))
	if m1 != m2 {
		t.Fatal("identical terms must share a class")
	}
	m3 := g.AddTerm(expr.MatMul(leafT(2, "B"), leafT(1, "A")))
	if g.Find(m1) == g.Find(m3) {
		t.Fatal("matmul(A,B) and matmul(B,A) must differ")
	}
}

func TestUnionFind(t *testing.T) {
	g := New(nil)
	a := g.AddTerm(leafT(1, "A"))
	b := g.AddTerm(leafT(2, "B"))
	c := g.AddTerm(leafT(3, "C"))
	if !g.Union(a, b) {
		t.Fatal("first union should change")
	}
	if g.Union(a, b) {
		t.Fatal("repeated union should be a no-op")
	}
	g.Union(b, c)
	g.Rebuild()
	if g.Find(a) != g.Find(c) {
		t.Fatal("transitivity broken")
	}
}

func TestCongruenceClosure(t *testing.T) {
	g := New(nil)
	a := g.AddTerm(leafT(1, "A"))
	b := g.AddTerm(leafT(2, "B"))
	fa := g.AddTerm(expr.Unary("gelu", leafT(1, "A")))
	fb := g.AddTerm(expr.Unary("gelu", leafT(2, "B")))
	if g.Find(fa) == g.Find(fb) {
		t.Fatal("f(A) and f(B) must start distinct")
	}
	g.Union(a, b)
	g.Rebuild()
	if g.Find(fa) != g.Find(fb) {
		t.Fatal("congruence: A=B must imply f(A)=f(B)")
	}
}

func TestCongruenceClosureDeep(t *testing.T) {
	g := New(nil)
	a := g.AddTerm(leafT(1, "A"))
	b := g.AddTerm(leafT(2, "B"))
	ffa := g.AddTerm(expr.Unary("g", expr.Unary("f", leafT(1, "A"))))
	ffb := g.AddTerm(expr.Unary("g", expr.Unary("f", leafT(2, "B"))))
	g.Union(a, b)
	g.Rebuild()
	if g.Find(ffa) != g.Find(ffb) {
		t.Fatal("congruence must propagate through nesting")
	}
}

func TestLookupDoesNotInsert(t *testing.T) {
	g := New(nil)
	g.AddTerm(leafT(1, "A"))
	before := g.NodeCount()
	if _, ok := g.LookupTerm(expr.Unary("f", leafT(1, "A"))); ok {
		t.Fatal("lookup of absent term must fail")
	}
	if g.NodeCount() != before {
		t.Fatal("lookup must not insert")
	}
	g.AddTerm(expr.Unary("f", leafT(1, "A")))
	if _, ok := g.LookupTerm(expr.Unary("f", leafT(1, "A"))); !ok {
		t.Fatal("lookup of present term must succeed")
	}
}

func TestMatchSimple(t *testing.T) {
	g := New(nil)
	g.AddTerm(expr.MatMul(expr.ConcatI(1, leafT(1, "A1"), leafT(2, "A2")), leafT(3, "B")))
	p := POp(expr.OpMatMul, nil,
		POp(expr.OpConcat, []AttrPat{AVar("d")}, PVar("x"), PVar("y")),
		PVar("b"))
	ms := g.MatchAll(p)
	if len(ms) != 1 {
		t.Fatalf("want 1 match, got %d", len(ms))
	}
	s := ms[0].Subst
	if d := s.AttrOf("d"); !d.Equal(sym.Const(1)) {
		t.Fatalf("attr d = %s", d)
	}
	if s.ClassOf("x") == s.ClassOf("y") {
		t.Fatal("x and y should bind different classes")
	}
}

func TestMatchAttrLiteral(t *testing.T) {
	g := New(nil)
	g.AddTerm(expr.ConcatI(0, leafT(1, "A"), leafT(2, "B")))
	g.AddTerm(expr.ConcatI(1, leafT(1, "A"), leafT(2, "B")))
	p0 := POp(expr.OpConcat, []AttrPat{AInt(0)}, PVar("x"), PVar("y"))
	if n := len(g.MatchAll(p0)); n != 1 {
		t.Fatalf("dim=0 literal should match once, got %d", n)
	}
}

func TestMatchNonlinearVar(t *testing.T) {
	g := New(nil)
	g.AddTerm(expr.Add(leafT(1, "A"), leafT(1, "A")))
	g.AddTerm(expr.Add(leafT(1, "A"), leafT(2, "B")))
	p := POp(expr.OpAdd, nil, PVar("x"), PVar("x")) // same var twice
	ms := g.MatchAll(p)
	if len(ms) != 1 {
		t.Fatalf("nonlinear pattern should match only add(A,A): %d", len(ms))
	}
}

func TestMatchAcrossUnions(t *testing.T) {
	g := New(nil)
	// After union(A, concat(A1,A2)), a pattern for matmul(concat ...)
	// must match matmul(A, B).
	mm := g.AddTerm(expr.MatMul(leafT(1, "A"), leafT(3, "B")))
	a := g.AddTerm(leafT(1, "A"))
	cc := g.AddTerm(expr.ConcatI(1, leafT(11, "A1"), leafT(12, "A2")))
	g.Union(a, cc)
	g.Rebuild()
	p := POp(expr.OpMatMul, nil,
		POp(expr.OpConcat, []AttrPat{AVar("d")}, PVar("x"), PVar("y")),
		PVar("b"))
	ms := g.MatchAll(p)
	if len(ms) != 1 {
		t.Fatalf("match through union failed: %d", len(ms))
	}
	if g.Find(ms[0].Class) != g.Find(mm) {
		t.Fatal("match must be rooted at the matmul class")
	}
}

func TestSimpleRuleSaturation(t *testing.T) {
	g := New(nil)
	root := g.AddTerm(expr.MatMul(
		expr.ConcatI(1, leafT(11, "A1"), leafT(12, "A2")),
		expr.ConcatI(0, leafT(21, "B1"), leafT(22, "B2"))))
	// Block-matmul lemma: matmul(concat(a0,a1,1), concat(b0,b1,0)) = add(matmul(a0,b0), matmul(a1,b1))
	rule := Simple("mm-block",
		POp(expr.OpMatMul, nil,
			POp(expr.OpConcat, []AttrPat{AInt(1)}, PVar("a0"), PVar("a1")),
			POp(expr.OpConcat, []AttrPat{AInt(0)}, PVar("b0"), PVar("b1"))),
		ROp(expr.OpAdd, nil, "",
			ROp(expr.OpMatMul, nil, "", RVar("a0"), RVar("b0")),
			ROp(expr.OpMatMul, nil, "", RVar("a1"), RVar("b1"))))
	stats := g.Saturate([]*Rule{rule}, SaturateOpts{})
	if !stats.Saturated {
		t.Fatal("tiny system must saturate")
	}
	if stats.Applications["mm-block"] != 1 {
		t.Fatalf("application count %v", stats.Applications)
	}
	want := g.AddTerm(expr.Add(
		expr.MatMul(leafT(11, "A1"), leafT(21, "B1")),
		expr.MatMul(leafT(12, "A2"), leafT(22, "B2"))))
	if g.Find(root) != g.Find(want) {
		t.Fatal("rule did not union LHS with RHS")
	}
}

func TestConstrainedRuleOnlyTargetsExisting(t *testing.T) {
	// x → identity(x) unconstrained would always fire; constrained it
	// must fire only when identity(x) already exists.
	g := New(nil)
	a := g.AddTerm(leafT(1, "A"))
	b := g.AddTerm(leafT(2, "B"))
	idb := g.AddTerm(expr.New(expr.OpIdentity, nil, "", leafT(2, "B")))
	rule := Constrained("id-intro",
		PVar("x"),
		ROp(expr.OpIdentity, nil, "", RVar("x")))
	g.Saturate([]*Rule{rule}, SaturateOpts{MaxIters: 2})
	if g.Find(b) != g.Find(idb) {
		t.Fatal("constrained rule should fire where target exists")
	}
	// No identity(A) node must have been created.
	if _, ok := g.LookupTerm(expr.New(expr.OpIdentity, nil, "", leafT(1, "A"))); ok {
		t.Fatal("constrained rule must not create identity(A)")
	}
	_ = a
}

func TestConditionedRule(t *testing.T) {
	// slice(concat(x,y,d1), d2, …) commutes only when d1 ≠ d2.
	ctx := sym.NewContext()
	g := New(ctx)
	good := g.AddTerm(expr.Slice(expr.ConcatI(0, leafT(1, "X"), leafT(2, "Y")), sym.Const(1), sym.Const(0), sym.Const(4)))
	bad := g.AddTerm(expr.Slice(expr.ConcatI(1, leafT(1, "X"), leafT(2, "Y")), sym.Const(1), sym.Const(0), sym.Const(4)))
	rule := &Rule{
		Name: "slice-concat-commute",
		LHS: POp(expr.OpSlice, []AttrPat{AVar("d2"), AVar("b"), AVar("e")},
			POp(expr.OpConcat, []AttrPat{AVar("d1")}, PVar("x"), PVar("y"))),
		Apply: func(g *EGraph, m Match) []UnionPair {
			d1, d2 := m.Subst.AttrOf("d1"), m.Subst.AttrOf("d2")
			if !g.Ctx.ProveNE(d1, d2) {
				return nil
			}
			b, e := m.Subst.AttrOf("b"), m.Subst.AttrOf("e")
			c, _ := g.Instantiate(ROp(expr.OpConcat, []sym.Expr{d1}, "",
				ROp(expr.OpSlice, []sym.Expr{d2, b, e}, "", RVar("x")),
				ROp(expr.OpSlice, []sym.Expr{d2, b, e}, "", RVar("y"))), m.Subst, false)
			return m.With(c)
		},
	}
	g.Saturate([]*Rule{rule}, SaturateOpts{})
	wantGood := g.AddTerm(expr.ConcatI(0,
		expr.Slice(leafT(1, "X"), sym.Const(1), sym.Const(0), sym.Const(4)),
		expr.Slice(leafT(2, "Y"), sym.Const(1), sym.Const(0), sym.Const(4))))
	if g.Find(good) != g.Find(wantGood) {
		t.Fatal("conditioned rule should fire when d1≠d2")
	}
	cls := g.Class(bad)
	if len(cls.nodes) != 1 {
		t.Fatal("conditioned rule must not fire when d1=d2 branch missing")
	}
}

func TestExtractClean(t *testing.T) {
	g := New(nil)
	// C is equal to both matmul(A,B) (unclean) and sum(C1,C2) (clean
	// over G_d leaves 101, 102).
	c := g.AddTerm(expr.MatMul(leafT(1, "A"), leafT(2, "B")))
	sumT := g.AddTerm(expr.Sum(leafT(101, "C1"), leafT(102, "C2")))
	g.Union(c, sumT)
	g.Rebuild()
	allowed := func(tid int) bool { return tid >= 100 }
	got, ok := g.ExtractClean(c, allowed)
	if !ok {
		t.Fatal("clean representative must be found")
	}
	if got.String() != "sum(C1, C2)" {
		t.Fatalf("extracted %q", got)
	}
	// With G_d leaves disallowed, there is no clean representative.
	if _, ok := g.ExtractClean(c, func(int) bool { return false }); ok {
		t.Fatal("no leaves allowed → no clean expr")
	}
}

func TestExtractPrefersSimplest(t *testing.T) {
	g := New(nil)
	base := g.AddTerm(leafT(100, "D"))
	split := g.AddTerm(expr.ConcatI(0,
		expr.SliceI(leafT(100, "D"), 0, 0, 2),
		expr.SliceI(leafT(100, "D"), 0, 2, 4)))
	g.Union(base, split)
	g.Rebuild()
	got, ok := g.ExtractClean(base, func(tid int) bool { return tid >= 100 })
	if !ok || got.Size() != 0 {
		t.Fatalf("should extract the bare leaf, got %v", got)
	}
}

func TestExtractAllClean(t *testing.T) {
	g := New(nil)
	// Paper running example: C = sum(C1,C2) = concat(D1,D2).
	c := g.AddTerm(expr.MatMul(leafT(1, "A"), leafT(2, "B")))
	s := g.AddTerm(expr.Sum(leafT(101, "C1"), leafT(102, "C2")))
	cc := g.AddTerm(expr.ConcatI(0, leafT(103, "D1"), leafT(104, "D2")))
	g.Union(c, s)
	g.Union(c, cc)
	g.Rebuild()
	all := g.ExtractAllClean(c, func(tid int) bool { return tid >= 100 }, 0)
	if len(all) != 2 {
		t.Fatalf("want 2 clean mappings, got %d: %v", len(all), all)
	}
	keys := map[string]bool{}
	for _, e := range all {
		keys[e.String()] = true
	}
	if !keys["sum(C1, C2)"] || !keys["concat(D1, D2, dim=0)"] {
		t.Fatalf("mappings %v", keys)
	}
}

func TestSelfLoopSaturates(t *testing.T) {
	// x → identity(x) collapses into a self-loop in an e-graph and
	// genuinely saturates — the compact representation the paper
	// relies on when lemmas like reshape∘reshape fire everywhere.
	g := New(nil)
	g.AddTerm(leafT(1, "A"))
	rule := Simple("id-wrap", PVar("x"), ROp(expr.OpIdentity, nil, "", RVar("x")))
	stats := g.Saturate([]*Rule{rule}, SaturateOpts{MaxIters: 8})
	if !stats.Saturated {
		t.Fatal("identity-wrapping must saturate via self-loop")
	}
	if stats.Iterations > 3 {
		t.Fatalf("took %d iterations", stats.Iterations)
	}
}

func TestSaturationLimits(t *testing.T) {
	// A genuinely divergent rule: pad(x,d,0,k) → pad(x,d,0,k+1)
	// mints a fresh attribute every firing. Limits must stop it.
	g := New(nil)
	g.AddTerm(expr.Pad(leafT(1, "A"), sym.Const(0), sym.Const(0), sym.Const(1)))
	rule := &Rule{
		Name: "pad-grow",
		LHS:  POp(expr.OpPad, []AttrPat{AVar("d"), AVar("b"), AVar("k")}, PVar("x")),
		Apply: func(g *EGraph, m Match) []UnionPair {
			d, b, k := m.Subst.AttrOf("d"), m.Subst.AttrOf("b"), m.Subst.AttrOf("k")
			c, _ := g.Instantiate(ROp(expr.OpPad, []sym.Expr{d, b, k.AddConst(1)}, "", RVar("x")), m.Subst, false)
			return m.With(c)
		},
	}
	stats := g.Saturate([]*Rule{rule}, SaturateOpts{MaxIters: 3})
	if stats.Saturated {
		t.Fatal("divergent system must not saturate in 3 iters")
	}
	if stats.Iterations != 3 {
		t.Fatalf("iterations %d", stats.Iterations)
	}
	// And the node cap must halt it even with generous iterations.
	g2 := New(nil)
	g2.AddTerm(expr.Pad(leafT(1, "A"), sym.Const(0), sym.Const(0), sym.Const(1)))
	stats2 := g2.Saturate([]*Rule{rule}, SaturateOpts{MaxIters: 1000, MaxNodes: 50})
	if stats2.Saturated {
		t.Fatal("node cap must stop divergence")
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Iterations: 2, Applications: map[string]int{"r": 1}, Saturated: true, Nodes: 5}
	b := Stats{Iterations: 3, Applications: map[string]int{"r": 2, "s": 1}, Saturated: true, Nodes: 9}
	a.Merge(b)
	if a.Iterations != 5 || a.Applications["r"] != 3 || a.Applications["s"] != 1 || a.Nodes != 9 || !a.Saturated {
		t.Fatalf("merge wrong: %+v", a)
	}
	if names := a.RuleNames(); len(names) != 2 || names[0] != "r" {
		t.Fatalf("rule names %v", names)
	}
}

// Property: after arbitrary unions and a rebuild, (1) find is
// idempotent, (2) equal terms added twice land in the same class,
// (3) congruence holds for unary wrappers of unioned leaves.
func TestQuickUnionInvariants(t *testing.T) {
	f := func(pairs []uint8) bool {
		g := New(nil)
		const n = 8
		leaves := make([]ClassID, n)
		wrapped := make([]ClassID, n)
		for i := 0; i < n; i++ {
			leaves[i] = g.AddTerm(leafT(i, ""))
			wrapped[i] = g.AddTerm(expr.Unary("f", leafT(i, "")))
		}
		for _, p := range pairs {
			a := int(p) % n
			b := int(p>>4) % n
			g.Union(leaves[a], leaves[b])
		}
		g.Rebuild()
		for i := 0; i < n; i++ {
			if g.Find(leaves[i]) != g.Find(g.Find(leaves[i])) {
				return false
			}
			for j := 0; j < n; j++ {
				if g.Find(leaves[i]) == g.Find(leaves[j]) &&
					g.Find(wrapped[i]) != g.Find(wrapped[j]) {
					return false // congruence violated
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hashcons canonicality — adding any term twice (possibly
// after random unions) yields the same class.
func TestQuickHashconsCanonical(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	randTerm := func(depth int) *expr.Term {
		var gen func(d int) *expr.Term
		gen = func(d int) *expr.Term {
			if d == 0 || rnd.Intn(3) == 0 {
				return leafT(rnd.Intn(5), "")
			}
			switch rnd.Intn(3) {
			case 0:
				return expr.Add(gen(d-1), gen(d-1))
			case 1:
				return expr.ConcatI(int64(rnd.Intn(2)), gen(d-1), gen(d-1))
			default:
				return expr.Unary("f", gen(d-1))
			}
		}
		return gen(depth)
	}
	for trial := 0; trial < 100; trial++ {
		g := New(nil)
		terms := make([]*expr.Term, 6)
		ids := make([]ClassID, 6)
		for i := range terms {
			terms[i] = randTerm(3)
			ids[i] = g.AddTerm(terms[i])
		}
		g.Union(ids[0], ids[1])
		g.Union(ids[2], ids[3])
		g.Rebuild()
		for i, tm := range terms {
			if g.Find(g.AddTerm(tm)) != g.Find(ids[i]) {
				t.Fatalf("trial %d: re-adding term %d changed class", trial, i)
			}
		}
	}
}
