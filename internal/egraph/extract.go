package egraph

import (
	"sort"

	"entangle/internal/expr"
)

// Extraction answers the checker's central question (§4.1 step iv):
// does an equivalence class contain a *clean* expression — built only
// from clean operators over an allowed set of leaf tensors — and if
// so, what is the simplest one (the paper prunes to "the expression
// with the smallest number of nested expressions", §4.3.2)?

const inf = int(^uint(0) >> 2)

// cleanCosts computes, for every class, the minimal size of a clean
// expression over allowed leaves representing it (inf when none
// exists). Fixpoint iteration handles cycles introduced by unions; the
// fixpoint is order-independent, so costs can live in a dense slice
// indexed by canonical ClassID. The slice is the e-graph's reusable
// scratch — the checker runs an extraction per G_s output plus a
// HasCleanRepresentation per operator output, and a per-call map was
// the lemma path's largest steady-state allocation. The returned slice
// aliases that scratch: it is valid until the next cleanCosts call.
func (g *EGraph) cleanCosts(allowed func(tid int) bool) []int {
	n := len(g.parent)
	if cap(g.cleanCostBuf) < n {
		g.cleanCostBuf = make([]int, n)
	}
	cost := g.cleanCostBuf[:n]
	for i := range cost {
		cost[i] = inf
	}
	for {
		changed := false
		for id, cl := range g.classes {
			best := cost[id]
			for _, n := range cl.nodes {
				c := g.nodeCleanCost(n, cost, allowed)
				if c < best {
					best = c
					changed = true
				}
			}
			cost[id] = best
		}
		if !changed {
			return cost
		}
	}
}

func (g *EGraph) nodeCleanCost(n ENode, cost []int, allowed func(tid int) bool) int {
	if n.isLeaf() {
		if allowed(n.TID) {
			return 0
		}
		return inf
	}
	if !expr.CleanOp(n.Op) {
		return inf
	}
	total := 1
	for _, k := range n.Kids {
		kc := cost[g.Find(k)]
		if kc >= inf {
			return inf
		}
		total += kc
		if total >= inf {
			return inf
		}
	}
	return total
}

// ExtractClean returns the minimal clean expression for class c over
// the allowed leaves, or ok=false when the class has none.
func (g *EGraph) ExtractClean(c ClassID, allowed func(tid int) bool) (*expr.Term, bool) {
	cost := g.cleanCosts(allowed)
	c = g.Find(c)
	if cost[c] >= inf {
		return nil, false
	}
	return g.buildMin(c, cost, allowed), true
}

func (g *EGraph) buildMin(c ClassID, cost []int, allowed func(tid int) bool) *expr.Term {
	cl := g.classes[g.Find(c)]
	var best *ENode
	bestCost := inf
	for i := range cl.nodes {
		n := &cl.nodes[i]
		nc := g.nodeCleanCost(*n, cost, allowed)
		if nc < bestCost {
			bestCost = nc
			best = n
		}
	}
	if best == nil {
		return nil
	}
	if best.isLeaf() {
		return expr.Tensor(best.TID, best.Name)
	}
	args := make([]*expr.Term, len(best.Kids))
	for i, k := range best.Kids {
		args[i] = g.buildMin(k, cost, allowed)
	}
	return &expr.Term{Op: best.Op, Str: best.Str, Ints: best.Ints, Args: args}
}

// ExtractAllClean enumerates distinct clean expressions for class c:
// one per clean top-level ENode, each completed with minimal clean
// subterms (so the count stays bounded by the class width). The paper
// collects *all* clean mappings for a tensor — e.g. both
// sum(C1, C2) and concat(D1, D2) in the running example — because a
// later operator may need any of them. Results are sorted smallest
// first, capped at limit (0 = no cap).
func (g *EGraph) ExtractAllClean(c ClassID, allowed func(tid int) bool, limit int) []*expr.Term {
	cost := g.cleanCosts(allowed)
	c = g.Find(c)
	if cost[c] >= inf {
		return nil
	}
	cl := g.classes[c]
	seen := map[string]bool{}
	var out []*expr.Term
	for i := range cl.nodes {
		n := &cl.nodes[i]
		if g.nodeCleanCost(*n, cost, allowed) >= inf {
			continue
		}
		var t *expr.Term
		if n.isLeaf() {
			t = expr.Tensor(n.TID, n.Name)
		} else {
			args := make([]*expr.Term, len(n.Kids))
			ok := true
			for j, k := range n.Kids {
				args[j] = g.buildMin(k, cost, allowed)
				if args[j] == nil {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			t = &expr.Term{Op: n.Op, Str: n.Str, Ints: n.Ints, Args: args}
		}
		k := t.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Size() < out[j].Size() })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// HasCleanRepresentation reports whether class c contains any clean
// expression over the allowed leaves. It only consults the cost table
// — no term is materialized.
func (g *EGraph) HasCleanRepresentation(c ClassID, allowed func(tid int) bool) bool {
	return g.cleanCosts(allowed)[g.Find(c)] < inf
}
