package egraph

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"testing"

	"entangle/internal/expr"
)

// opF/opG/opH are private test operators; CleanOp treats unknown ops
// as unclean, which is irrelevant to the congruence assertions here.
const (
	opF = expr.Op("test_f")
	opG = expr.Op("test_g")
)

// unionRule unions the classes of the leaves with the given TIDs on
// any match of leaf `trigger`.
func unionRule(name string, trigger, a, b int) *Rule {
	return &Rule{
		Name: name,
		LHS:  &Pattern{Op: expr.OpTensor, LeafTID: &trigger},
		Apply: func(g *EGraph, m Match) []UnionPair {
			ca, ok := g.Lookup(Leaf(a, "a"))
			if !ok {
				return nil
			}
			cb, ok := g.Lookup(Leaf(b, "b"))
			if !ok {
				return nil
			}
			return []UnionPair{{ca, cb}}
		},
	}
}

// growRule adds a fresh chain node over the matched class every
// iteration, inflating the node count past any small budget.
func growRule(name string, trigger int) *Rule {
	n := 0
	return &Rule{
		Name:     name,
		Stateful: true,
		LHS:      &Pattern{Op: expr.OpTensor, LeafTID: &trigger},
		Apply: func(g *EGraph, m Match) []UnionPair {
			n++
			fresh := g.AddNode(ENode{Op: opG, Str: string(rune('A' + n)), Kids: []ClassID{m.Class}})
			return m.With(fresh)
		},
	}
}

// TestSaturateMaxNodesRebuilds is the regression test for the
// saturation-budget congruence bug: when the MaxNodes budget is blown
// mid-iteration, Saturate used to return without calling Rebuild, so
// unions applied earlier in that same iteration left congruent nodes
// (f(a) and f(b) after union(a, b)) in distinct classes and the memo
// keyed by stale child classes. The fix breaks out of both loops and
// always rebuilds before returning.
func TestSaturateMaxNodesRebuilds(t *testing.T) {
	g := New(nil)
	ca := g.AddTerm(leafT(1, "a"))
	cb := g.AddTerm(leafT(2, "b"))
	g.AddTerm(leafT(3, "t"))
	fa := g.AddNode(ENode{Op: opF, Kids: []ClassID{ca}})
	fb := g.AddNode(ENode{Op: opF, Kids: []ClassID{cb}})
	if g.Find(fa) == g.Find(fb) {
		t.Fatal("f(a) and f(b) must start distinct")
	}

	// Rule order = match application order: first union a with b,
	// then grow past the budget so a later pending match trips the
	// MaxNodes early exit inside the same iteration, with the a=b
	// union still un-rebuilt.
	rules := []*Rule{
		unionRule("union-ab", 3, 1, 2),
		growRule("grow", 3),
		unionRule("late", 3, 1, 2), // pending match that hits the budget check
	}
	stats := g.Saturate(rules, SaturateOpts{MaxIters: 8, MaxNodes: g.NodeCount()})
	if stats.Saturated {
		t.Fatalf("budget run must not report saturation: %+v", stats)
	}

	// Congruence: union(a, b) was applied before the budget hit, so
	// f(a) and f(b) must have been merged by the final Rebuild.
	if g.Find(ca) != g.Find(cb) {
		t.Fatal("a and b were not unioned before the budget hit")
	}
	if g.Find(fa) != g.Find(fb) {
		t.Fatal("congruence broken: f(a) and f(b) in distinct classes after Saturate hit MaxNodes")
	}

	assertCongruent(t, g)
}

// assertCongruent checks the rebuild invariants via the full
// structural audit: memo ↔ class agreement, no duplicate nodes, parent
// registration, and count bookkeeping (see CheckInvariants).
func assertCongruent(t *testing.T, g *EGraph) {
	t.Helper()
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("e-graph invariants violated: %v", err)
	}
}

// TestSaturateBudgetExtractionSeesUnions drives the same scenario
// through extraction. The equivalence flows through congruence: the
// pre-budget union makes a = b, which must merge f(a) with f(b) — and
// f(b) is known equal to the clean leaf c. Without the final Rebuild,
// f(a)'s class never learns about c and extraction comes back empty.
func TestSaturateBudgetExtractionSeesUnions(t *testing.T) {
	g := New(nil)
	ca := g.AddTerm(leafT(1, "a"))
	cb := g.AddTerm(leafT(2, "b"))
	g.AddTerm(leafT(3, "t"))
	ccl := g.AddTerm(leafT(4, "c"))
	cfa := g.AddNode(ENode{Op: opF, Kids: []ClassID{ca}})
	cfb := g.AddNode(ENode{Op: opF, Kids: []ClassID{cb}})
	g.Union(cfb, ccl)
	g.Rebuild()

	onlyC := func(tid int) bool { return tid == 4 }
	if got := g.ExtractAllClean(cfa, onlyC, 0); len(got) != 0 {
		t.Fatalf("setup broken: f(a) must have no clean form yet, got %v", got)
	}

	rules := []*Rule{
		unionRule("union-ab", 3, 1, 2),
		growRule("grow", 3),
		unionRule("late", 3, 1, 2),
	}
	g.Saturate(rules, SaturateOpts{MaxIters: 8, MaxNodes: g.NodeCount()})

	terms := g.ExtractAllClean(cfa, onlyC, 0)
	if len(terms) == 0 {
		t.Fatal("extraction does not see the congruence implied by the pre-budget union")
	}
	want := leafT(4, "c")
	if terms[0].Key() != want.Key() {
		t.Fatalf("extracted %s, want %s", terms[0], want)
	}
}

// TestNodeCountMatchesLiveNodes covers the NodeCount/budget
// unification: dedup during rebuild must shrink the reported count to
// the live total instead of double-counting merged nodes forever.
func TestNodeCountMatchesLiveNodes(t *testing.T) {
	g := New(nil)
	ca := g.AddTerm(leafT(1, "a"))
	cb := g.AddTerm(leafT(2, "b"))
	g.AddNode(ENode{Op: opF, Kids: []ClassID{ca}})
	g.AddNode(ENode{Op: opF, Kids: []ClassID{cb}})
	if got := g.NodeCount(); got != 4 || got != nodeTotal(g) {
		t.Fatalf("before union: NodeCount %d, live %d, want 4", got, nodeTotal(g))
	}
	g.Union(ca, cb)
	g.Rebuild()
	// a and b merged; f(a) and f(b) became congruent and deduped. The
	// budget counter g.nodeCount (what Saturate checks MaxNodes
	// against) must shrink with the dedup instead of double-counting
	// the merged node forever.
	if g.nodeCount != nodeTotal(g) {
		t.Fatalf("after rebuild: budget counter %d but live total %d", g.nodeCount, nodeTotal(g))
	}
	if got := g.NodeCount(); got != 3 {
		t.Fatalf("after rebuild: NodeCount %d, want 3 (a, b, f)", got)
	}
}

// TestStatsMergeZeroValueIdentity covers the Stats.Merge tri-state:
// the zero value must be a merge identity rather than forcing
// Saturated to false forever.
func TestStatsMergeZeroValueIdentity(t *testing.T) {
	var acc Stats
	acc.Merge(Stats{Saturated: true, Runs: 1, Iterations: 2})
	if !acc.Saturated || acc.Runs != 1 {
		t.Fatalf("zero value must adopt first run's Saturated: %+v", acc)
	}
	acc.Merge(Stats{Saturated: true, Runs: 1})
	if !acc.Saturated || acc.Runs != 2 {
		t.Fatalf("two saturated runs must stay saturated: %+v", acc)
	}
	acc.Merge(Stats{Saturated: false, Runs: 1})
	if acc.Saturated {
		t.Fatal("an unsaturated run must clear Saturated")
	}
	acc.Merge(Stats{Saturated: true, Runs: 1})
	if acc.Saturated {
		t.Fatal("Saturated must never recover once cleared")
	}

	// Merging an empty accumulator is a no-op on Saturated.
	sat := Stats{Saturated: true, Runs: 1}
	sat.Merge(Stats{})
	if !sat.Saturated || sat.Runs != 1 {
		t.Fatalf("merging the zero value must not clear Saturated: %+v", sat)
	}

	// Applications still accumulate through the identity.
	var a2 Stats
	a2.Merge(Stats{Applications: map[string]int{"r": 2}, Runs: 1, Saturated: true})
	a2.Merge(Stats{Applications: map[string]int{"r": 3}, Runs: 1, Saturated: true})
	if !reflect.DeepEqual(a2.Applications, map[string]int{"r": 5}) {
		t.Fatalf("applications not accumulated: %+v", a2.Applications)
	}

	// The new counters keep the zero-value-is-identity invariant:
	// merging the zero value changes nothing, and counters sum while
	// StopReason keeps the most severe cause.
	acc2 := Stats{Runs: 1, Saturated: true, StopReason: StopSaturated}
	acc2.Merge(Stats{})
	if acc2.StopReason != StopSaturated || acc2.Cancelled != 0 || acc2.BudgetHit != 0 {
		t.Fatalf("zero merge disturbed counters: %+v", acc2)
	}
	acc2.Merge(Stats{Runs: 1, StopReason: StopIterLimit, BudgetHit: 1})
	acc2.Merge(Stats{Runs: 1, StopReason: StopNodeLimit, BudgetHit: 1})
	acc2.Merge(Stats{Runs: 1, StopReason: StopCancelled, Cancelled: 1})
	acc2.Merge(Stats{Runs: 1, StopReason: StopSaturated, Saturated: true})
	if acc2.BudgetHit != 2 || acc2.Cancelled != 1 {
		t.Fatalf("counters did not sum: %+v", acc2)
	}
	if acc2.StopReason != StopCancelled {
		t.Fatalf("StopReason must keep the most severe cause, got %v", acc2.StopReason)
	}
}

// TestSaturateStopReasons pins the reason classification for each way
// a run can stop: fixpoint, node budget, iteration budget, and
// pre-cancelled context.
func TestSaturateStopReasons(t *testing.T) {
	// Fixpoint: no rules fire at all.
	g := New(nil)
	g.AddTerm(leafT(1, "a"))
	stats := g.Saturate(nil, SaturateOpts{MaxIters: 4, MaxNodes: 100})
	if !stats.Saturated || stats.StopReason != StopSaturated || stats.BudgetHit != 0 || stats.Cancelled != 0 {
		t.Fatalf("fixpoint run misclassified: %+v", stats)
	}

	// Node budget: the grow rule inflates past MaxNodes.
	g = New(nil)
	g.AddTerm(leafT(3, "t"))
	stats = g.Saturate([]*Rule{growRule("grow", 3)}, SaturateOpts{MaxIters: 32, MaxNodes: g.NodeCount() + 2})
	if stats.Saturated || stats.StopReason != StopNodeLimit || stats.BudgetHit != 1 {
		t.Fatalf("node-budget run misclassified: %+v", stats)
	}

	// Iteration budget: the grow rule still firing when MaxIters ends.
	g = New(nil)
	g.AddTerm(leafT(3, "t"))
	stats = g.Saturate([]*Rule{growRule("grow", 3)}, SaturateOpts{MaxIters: 2, MaxNodes: 1 << 20})
	if stats.Saturated || stats.StopReason != StopIterLimit || stats.BudgetHit != 1 || stats.Iterations != 2 {
		t.Fatalf("iter-budget run misclassified: %+v", stats)
	}

	// Pre-cancelled context: zero iterations run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g = New(nil)
	g.AddTerm(leafT(3, "t"))
	stats = g.Saturate([]*Rule{growRule("grow", 3)}, SaturateOpts{MaxIters: 8, MaxNodes: 100, Ctx: ctx})
	if stats.StopReason != StopCancelled || stats.Cancelled != 1 || stats.Iterations != 0 || stats.Saturated {
		t.Fatalf("cancelled run misclassified: %+v", stats)
	}
}

// TestSaturateCancelMidRunLeavesCongruent cancels the context from
// inside a rule application, so the *next* iteration boundary stops the
// run. The e-graph must be left rebuilt and congruent, exactly as on a
// budget stop, and the stats must say the run was cancelled within one
// iteration of the cancel.
func TestSaturateCancelMidRunLeavesCongruent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(nil)
	ca := g.AddTerm(leafT(1, "a"))
	cb := g.AddTerm(leafT(2, "b"))
	g.AddTerm(leafT(3, "t"))
	fa := g.AddNode(ENode{Op: opF, Kids: []ClassID{ca}})
	fb := g.AddNode(ENode{Op: opF, Kids: []ClassID{cb}})

	// Iteration 1: union a=b, grow, and cancel. Iteration 2 must never
	// start, but the a=b union must still be congruence-closed.
	cancelRule := &Rule{
		Name:     "cancel",
		Stateful: true,
		LHS:      &Pattern{Op: expr.OpTensor, LeafTID: intPtr(3)},
		Apply: func(g *EGraph, m Match) []UnionPair {
			cancel()
			return nil
		},
	}
	rules := []*Rule{unionRule("union-ab", 3, 1, 2), growRule("grow", 3), cancelRule}
	stats := g.Saturate(rules, SaturateOpts{MaxIters: 64, MaxNodes: 1 << 20, Ctx: ctx})
	if stats.StopReason != StopCancelled || stats.Cancelled != 1 {
		t.Fatalf("mid-run cancel misclassified: %+v", stats)
	}
	if stats.Iterations != 1 {
		t.Fatalf("cancel must bite at the next iteration boundary, ran %d iterations", stats.Iterations)
	}
	if g.Find(fa) != g.Find(fb) {
		t.Fatal("congruence broken after cancelled run: f(a) != f(b) despite a = b")
	}
	assertCongruent(t, g)
}

func intPtr(v int) *int { return &v }

// TestMain runs the whole package with the Rebuild invariant audit on,
// so every test's rebuilds are structurally verified, not just the
// tests that call CheckInvariants explicitly. The package variable is
// set directly: the environment gate is evaluated at init, before
// TestMain runs.
func TestMain(m *testing.M) {
	InvariantChecks = true
	os.Exit(m.Run())
}

// TestSaturateInstantiateBudgetBounded is the regression test for the
// MaxNodes overshoot bug: an explosive rule whose every application
// instantiates a chain of fresh nodes used to blow far past the budget
// before the between-applications check noticed, because Instantiate
// itself never consulted the limit. With the in-Instantiate budget, a
// declined insertion fails the application and the live node count
// never exceeds MaxNodes at all.
func TestSaturateInstantiateBudgetBounded(t *testing.T) {
	g := New(nil)
	g.AddTerm(leafT(3, "t"))
	const width = 8
	n := 0
	explode := &Rule{
		Name:     "explode",
		Stateful: true,
		LHS:      &Pattern{Op: expr.OpTensor, LeafTID: intPtr(3)},
		Apply: func(g *EGraph, m Match) []UnionPair {
			n++
			tm := RClass(m.Class)
			for i := 0; i < width; i++ {
				tm = ROp(opG, nil, fmt.Sprintf("x%d-%d", n, i), tm)
			}
			c, ok := g.Instantiate(tm, emptySubst, false)
			if !ok {
				return nil
			}
			return m.With(c)
		},
	}
	maxNodes := g.NodeCount() + 2*width + 3
	stats := g.Saturate([]*Rule{explode}, SaturateOpts{MaxIters: 64, MaxNodes: maxNodes})
	if stats.StopReason != StopNodeLimit || stats.BudgetHit != 1 {
		t.Fatalf("explosive run misclassified: %+v", stats)
	}
	if got := g.NodeCount(); got > maxNodes {
		t.Fatalf("budget overshoot: %d live nodes, MaxNodes %d", got, maxNodes)
	}
	if nodeTotal(g) != g.NodeCount() {
		t.Fatalf("count bookkeeping: NodeCount %d, live total %d", g.NodeCount(), nodeTotal(g))
	}
	assertCongruent(t, g)
}

// TestSaturateCancelPollBoundsLatency covers the intra-iteration
// cancellation poll: with far more pending matches than the poll
// period, a context cancelled by the first application must stop the
// run within one poll window instead of draining the whole match list
// (the old behavior — cancellation was only observed at iteration
// boundaries, so one bloated iteration could run for seconds after
// Ctrl-C). The graph must still come out rebuilt and congruent.
func TestSaturateCancelPollBoundsLatency(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(nil)
	const classes = 8 * cancelPollEvery
	for i := 1; i <= classes; i++ {
		g.AddTerm(leafT(i, fmt.Sprintf("t%d", i)))
	}
	apps := 0
	countAndCancel := &Rule{
		Name:     "count-and-cancel",
		Stateful: true,
		LHS:      PVar("x"),
		Apply: func(g *EGraph, m Match) []UnionPair {
			apps++
			cancel()
			return nil
		},
	}
	stats := g.Saturate([]*Rule{countAndCancel}, SaturateOpts{MaxIters: 8, MaxNodes: 1 << 20, Ctx: ctx})
	if stats.StopReason != StopCancelled || stats.Cancelled != 1 {
		t.Fatalf("cancelled run misclassified: %+v", stats)
	}
	if stats.Iterations != 1 {
		t.Fatalf("cancel must end the run in its first iteration, ran %d", stats.Iterations)
	}
	if apps > cancelPollEvery {
		t.Fatalf("cancellation latency: %d applications ran after cancel, poll period is %d", apps, cancelPollEvery)
	}
	assertCongruent(t, g)
}
