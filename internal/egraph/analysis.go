package egraph

import (
	"entangle/internal/expr"
	"entangle/internal/shape"
)

// Shape analysis: every equivalence class denotes one tensor value, so
// all its members share a shape. Lemma side conditions (e.g. "the
// concatenated chunks tile the sliced range exactly") consult it via
// ShapeOf. Leaf shapes come from the LeafShape callback, which the
// refinement checker wires to the graphs' tensor tables; interior
// shapes are inferred with shape.Infer.

// SetLeafShapeFn installs the tensor-leaf shape oracle.
func (g *EGraph) SetLeafShapeFn(fn func(tid int) (shape.Shape, bool)) {
	g.leafShape = fn
	g.shapeMemo = map[ClassID]shape.Shape{}
}

// ShapeOf returns the shape of the tensor denoted by class c, if
// derivable from leaf shapes. Results are memoized per canonical
// class; memo entries stay valid across unions because members of a
// class always denote the same tensor value.
func (g *EGraph) ShapeOf(c ClassID) (shape.Shape, bool) {
	if g.leafShape == nil {
		return nil, false
	}
	if g.shapeVisiting == nil {
		g.shapeVisiting = map[ClassID]bool{}
	}
	return g.shapeOf(c)
}

func (g *EGraph) shapeOf(c ClassID) (shape.Shape, bool) {
	c = g.Find(c)
	if s, ok := g.shapeMemo[c]; ok {
		return s, true
	}
	if g.shapeVisiting[c] {
		return nil, false // cycle: try other derivations
	}
	g.shapeVisiting[c] = true
	defer delete(g.shapeVisiting, c)
	cl := g.classes[c]
	if cl == nil {
		return nil, false
	}
	for _, n := range cl.nodes {
		if n.isLeaf() {
			if s, ok := g.leafShape(n.TID); ok {
				g.shapeMemo[c] = s
				return s, true
			}
			continue
		}
		kidShapes := make([]shape.Shape, len(n.Kids))
		ok := true
		for i, k := range n.Kids {
			s, got := g.shapeOf(k)
			if !got {
				ok = false
				break
			}
			kidShapes[i] = s
		}
		if !ok {
			continue
		}
		outs, err := shape.Infer(n.Op, n.Str, n.Ints, kidShapes, g.Ctx)
		if err != nil || len(outs) != 1 {
			continue
		}
		g.shapeMemo[c] = outs[0]
		return outs[0], true
	}
	return nil, false
}

// ParentRef is one consumer of a class: the consuming ENode and the
// class that node belongs to.
type ParentRef struct {
	Node  ENode
	Class ClassID
}

// ParentsOf returns the nodes that consume class c as a child, with
// their owning classes; generative lemmas (slice tiling) enumerate
// these to find existing sibling ENodes.
func (g *EGraph) ParentsOf(c ClassID) []ParentRef {
	cl := g.classes[g.Find(c)]
	if cl == nil {
		return nil
	}
	out := make([]ParentRef, 0, len(cl.parents))
	for _, p := range cl.parents {
		out = append(out, ParentRef{Node: g.canonNode(p.node), Class: g.Find(p.class)})
	}
	return out
}

// EachParent visits the consumers of class c without materializing a
// slice — the allocation-free form of ParentsOf for lemmas that run
// every iteration. The node pointer aliases the e-graph's own storage
// and is valid only for the duration of the call; its Kids are not
// canonicalized (pass them through Find before comparing).
func (g *EGraph) EachParent(c ClassID, fn func(n *ENode, owner ClassID) bool) {
	cl := g.classes[g.Find(c)]
	if cl == nil {
		return
	}
	for i := range cl.parents {
		p := &cl.parents[i]
		if !fn(&p.node, g.Find(p.class)) {
			return
		}
	}
}

// RankOf returns the rank of the tensor denoted by class c, if shape
// analysis can derive it.
func (g *EGraph) RankOf(c ClassID) (int, bool) {
	s, ok := g.ShapeOf(c)
	if !ok {
		return 0, false
	}
	return len(s), true
}

var _ = expr.OpTensor // keep expr import for doc references
