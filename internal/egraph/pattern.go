package egraph

import (
	"fmt"
	"strings"

	"entangle/internal/expr"
	"entangle/internal/sym"
)

// Pattern is an expression pattern for e-matching. A Pattern either
// binds a whole class to a variable (Var != "") or matches an operator
// application whose attributes may be literals or attribute variables.
type Pattern struct {
	Var string // non-empty: match any class, bind it

	Op   expr.Op
	Str  string // literal Str to require (when StrVar == "")
	Kids []*Pattern

	// VarKids, when non-empty, binds the node's entire child-class
	// list (of any length) instead of matching Kids one by one. Used
	// by n-ary lemmas over concat and sum, whose width equals the
	// parallelism degree.
	VarKids string

	// Attrs match the ENode's Ints: each is either a literal
	// expression (Lit) or a variable binding (Var).
	Attrs []AttrPat

	// LeafTID, when non-nil, requires a tensor leaf with this ID.
	LeafTID *int
}

// AttrPat matches one symbolic attribute.
type AttrPat struct {
	Var string   // non-empty: bind the attribute
	Lit sym.Expr // used when Var == ""
}

// AVar binds an attribute variable.
func AVar(name string) AttrPat { return AttrPat{Var: name} }

// ALit matches a literal attribute value.
func ALit(e sym.Expr) AttrPat { return AttrPat{Lit: e} }

// AInt matches a constant integer attribute.
func AInt(v int64) AttrPat { return AttrPat{Lit: sym.Const(v)} }

// PVar matches any class and binds it.
func PVar(name string) *Pattern { return &Pattern{Var: name} }

// POp matches an operator application.
func POp(op expr.Op, attrs []AttrPat, kids ...*Pattern) *Pattern {
	return &Pattern{Op: op, Attrs: attrs, Kids: kids}
}

// POpN matches an operator application of any arity, binding the whole
// child list to kidsVar.
func POpN(op expr.Op, attrs []AttrPat, kidsVar string) *Pattern {
	return &Pattern{Op: op, Attrs: attrs, VarKids: kidsVar}
}

// Subst is a substitution produced by e-matching. Bindings are stored
// in small slices (matches bind at most a handful of variables);
// extension is copy-on-write so substitutions can be shared across
// backtracking branches. The common binding counts live in inline
// buffers so extending costs one allocation (the Subst itself), not
// two; the slices are capacity-capped at their length, so an append
// can never reach into a shared buffer.
type Subst struct {
	classes []classBinding
	attrs   []attrBinding
	kids    []kidsBinding

	cbuf [4]classBinding
	abuf [2]attrBinding
	kbuf [1]kidsBinding
}

type classBinding struct {
	name string
	c    ClassID
}

type attrBinding struct {
	name string
	e    sym.Expr
}

type kidsBinding struct {
	name string
	ks   []ClassID
}

// emptySubst is the shared starting substitution (read-only).
var emptySubst = &Subst{}

// substArena bump-allocates Substs for the saturation matchers. A match
// phase's substitutions are all dead once the apply loop that consumes
// them finishes, so each phase recycles the previous phase's slots
// instead of paying malloc + GC per binding — extension was the single
// largest allocator on the cold-check path. Chunks are fixed-size and
// never reallocated, so handed-out pointers stay stable as the arena
// grows.
type substArena struct {
	chunks [][]Subst
	ci, ni int
}

func (a *substArena) reset() { a.ci, a.ni = 0, 0 }

// newSubst allocates a Subst: from the arena while a saturation match
// phase is active, from the heap otherwise (MatchAll results escape to
// callers with arbitrary lifetimes). Arena slots are reused without
// zeroing — every caller overwrites all three binding slices, and the
// inline buffers are only read up to those lengths. Chunks start small
// and double (the checker builds one e-graph per operator, most of
// them tiny) up to a cap that keeps big matches from over-reserving.
func (g *EGraph) newSubst() *Subst {
	if !g.arenaOn {
		return &Subst{}
	}
	a := &g.substArena
	if a.ci == len(a.chunks) {
		size := 64 << uint(len(a.chunks))
		if size > 1024 {
			size = 1024
		}
		a.chunks = append(a.chunks, make([]Subst, size))
	}
	ch := a.chunks[a.ci]
	s := &ch[a.ni]
	if a.ni++; a.ni == len(ch) {
		a.ci++
		a.ni = 0
	}
	return s
}

func (s *Subst) lookupClass(name string) (ClassID, bool) {
	for i := range s.classes {
		if s.classes[i].name == name {
			return s.classes[i].c, true
		}
	}
	return 0, false
}

func (s *Subst) lookupAttr(name string) (sym.Expr, bool) {
	for i := range s.attrs {
		if s.attrs[i].name == name {
			return s.attrs[i].e, true
		}
	}
	return sym.Expr{}, false
}

func (s *Subst) lookupKids(name string) ([]ClassID, bool) {
	for i := range s.kids {
		if s.kids[i].name == name {
			return s.kids[i].ks, true
		}
	}
	return nil, false
}

// withClass returns a new substitution extended by one class binding;
// the receiver is unchanged (backing arrays are never appended in
// place: capacities equal lengths by construction).
func (s *Subst) withClass(g *EGraph, name string, c ClassID) *Subst {
	n := g.newSubst()
	n.attrs = s.attrs
	n.kids = s.kids
	l := len(s.classes)
	if l < len(n.cbuf) {
		copy(n.cbuf[:], s.classes)
		n.cbuf[l] = classBinding{name: name, c: c}
		n.classes = n.cbuf[: l+1 : l+1]
		return n
	}
	n.classes = make([]classBinding, l+1)
	copy(n.classes, s.classes)
	n.classes[l] = classBinding{name: name, c: c}
	return n
}

func (s *Subst) withAttr(g *EGraph, name string, e sym.Expr) *Subst {
	n := g.newSubst()
	n.classes = s.classes
	n.kids = s.kids
	l := len(s.attrs)
	if l < len(n.abuf) {
		copy(n.abuf[:], s.attrs)
		n.abuf[l] = attrBinding{name: name, e: e}
		n.attrs = n.abuf[: l+1 : l+1]
		return n
	}
	n.attrs = make([]attrBinding, l+1)
	copy(n.attrs, s.attrs)
	n.attrs[l] = attrBinding{name: name, e: e}
	return n
}

func (s *Subst) withKids(g *EGraph, name string, ks []ClassID) *Subst {
	n := g.newSubst()
	n.classes = s.classes
	n.attrs = s.attrs
	l := len(s.kids)
	if l < len(n.kbuf) {
		copy(n.kbuf[:], s.kids)
		n.kbuf[l] = kidsBinding{name: name, ks: ks}
		n.kids = n.kbuf[: l+1 : l+1]
		return n
	}
	n.kids = make([]kidsBinding, l+1)
	copy(n.kids, s.kids)
	n.kids[l] = kidsBinding{name: name, ks: ks}
	return n
}

// KidsOf returns the child list bound to a variadic variable.
func (s *Subst) KidsOf(name string) []ClassID {
	k, ok := s.lookupKids(name)
	if !ok {
		panic(fmt.Sprintf("egraph: unbound kids variable ?%s", name))
	}
	return k
}

// ClassOf returns the class bound to var name, panicking on a missing
// binding (a rule-programming error).
func (s *Subst) ClassOf(name string) ClassID {
	c, ok := s.lookupClass(name)
	if !ok {
		panic(fmt.Sprintf("egraph: unbound pattern variable ?%s", name))
	}
	return c
}

// AttrOf returns the attribute bound to name.
func (s *Subst) AttrOf(name string) sym.Expr {
	a, ok := s.lookupAttr(name)
	if !ok {
		panic(fmt.Sprintf("egraph: unbound attribute variable ?%s", name))
	}
	return a
}

// Match pairs a matched class with one substitution. Node is the ENode
// that rooted the match (zero-valued for bare-variable patterns);
// dynamic lemmas read attributes and children from it.
type Match struct {
	Class ClassID
	Node  ENode
	Subst *Subst
}

// MatchAll returns every match of p across all classes.
func (g *EGraph) MatchAll(p *Pattern) []Match {
	var out []Match
	for _, id := range g.sortedClassIDs() {
		cl := g.classes[id]
		if p.Var != "" {
			for _, s := range g.matchClass(p, id, emptySubst) {
				out = append(out, Match{Class: id, Subst: s})
			}
			continue
		}
		for ni := range cl.nodes {
			n := &cl.nodes[ni]
			if n.Op != p.Op {
				continue
			}
			mark := len(g.substStack)
			g.matchNodeOnStack(p, n, emptySubst)
			if len(g.substStack) > mark {
				canon := g.canonNode(*n)
				for _, s := range g.substStack[mark:] {
					out = append(out, Match{Class: id, Node: canon, Subst: s})
				}
			}
			g.substStack = g.substStack[:mark]
		}
	}
	return out
}

// matchRules matches a rule set in one pass over the e-graph, grouping
// nodes by operator so each rule only visits candidate roots. It is
// the saturation loop's batched form of MatchAll.
func (g *EGraph) matchRules(rules []*Rule) []ruleMatch {
	byOp := map[expr.Op][]*Rule{}
	var varRules []*Rule
	for _, r := range rules {
		if r.LHS.Var != "" {
			varRules = append(varRules, r)
			continue
		}
		byOp[r.LHS.Op] = append(byOp[r.LHS.Op], r)
	}
	var out []ruleMatch
	for _, id := range g.sortedClassIDs() {
		cl := g.classes[id]
		for _, r := range varRules {
			for _, s := range g.matchClass(r.LHS, id, emptySubst) {
				out = append(out, ruleMatch{rule: r, m: Match{Class: id, Subst: s}})
			}
		}
		for ni := range cl.nodes {
			n := &cl.nodes[ni]
			cands := byOp[n.Op]
			if len(cands) == 0 {
				continue
			}
			var canon ENode
			canonDone := false
			for _, r := range cands {
				mark := len(g.substStack)
				g.matchNodeOnStack(r.LHS, n, emptySubst)
				if len(g.substStack) > mark && !canonDone {
					canon = g.canonNode(*n)
					canonDone = true
				}
				for _, s := range g.substStack[mark:] {
					out = append(out, ruleMatch{rule: r, m: Match{Class: id, Node: canon, Subst: s}})
				}
				g.substStack = g.substStack[:mark]
			}
		}
	}
	return out
}

// ruleMatch pairs a rule with one of its matches.
type ruleMatch struct {
	rule *Rule
	m    Match
}

// matchClass matches pattern p against class c, extending base; it
// returns all consistent substitutions as a fresh slice. The
// saturation matchers use matchClassOnStack directly to avoid the
// materialization.
func (g *EGraph) matchClass(p *Pattern, c ClassID, base *Subst) []*Subst {
	mark := len(g.substStack)
	g.matchClassOnStack(p, c, base)
	if len(g.substStack) == mark {
		return nil
	}
	out := make([]*Subst, len(g.substStack)-mark)
	copy(out, g.substStack[mark:])
	g.substStack = g.substStack[:mark]
	return out
}

// matchClassOnStack matches pattern p against class c, extending base,
// and pushes every consistent substitution onto g.substStack. The
// stack discipline — callers record len(g.substStack), consume the
// entries above it, and truncate back — is what lets the matchers run
// allocation-free: only the substitutions themselves live on the heap,
// never the intermediate result lists.
func (g *EGraph) matchClassOnStack(p *Pattern, c ClassID, base *Subst) {
	c = g.Find(c)
	if p.Var != "" {
		if bound, ok := base.lookupClass(p.Var); ok {
			if g.Find(bound) == c {
				g.substStack = append(g.substStack, base)
			}
			return
		}
		g.substStack = append(g.substStack, base.withClass(g, p.Var, c))
		return
	}
	cl := g.classes[c]
	if cl == nil {
		return
	}
	for ni := range cl.nodes {
		g.matchNodeOnStack(p, &cl.nodes[ni], base)
	}
}

func (g *EGraph) matchNodeOnStack(p *Pattern, n *ENode, base *Subst) {
	if n.Op != p.Op {
		return
	}
	if p.LeafTID != nil {
		if n.TID != *p.LeafTID {
			return
		}
	}
	if p.Str != "" && n.Str != p.Str {
		return
	}
	if len(p.Attrs) > 0 && len(p.Attrs) != len(n.Ints) {
		return
	}
	if p.VarKids == "" && len(p.Kids) != len(n.Kids) {
		return
	}
	s := base
	// Attributes first (cheap).
	for i, ap := range p.Attrs {
		got := n.Ints[i]
		if ap.Var == "" {
			if !got.Equal(ap.Lit) {
				return
			}
			continue
		}
		if bound, ok := s.lookupAttr(ap.Var); ok {
			if !bound.Equal(got) {
				return
			}
			continue
		}
		s = s.withAttr(g, ap.Var, got)
	}
	if p.VarKids != "" {
		if bound, ok := s.lookupKids(p.VarKids); ok {
			if len(bound) != len(n.Kids) {
				return
			}
			for i := range n.Kids {
				if g.Find(bound[i]) != g.Find(n.Kids[i]) {
					return
				}
			}
			g.substStack = append(g.substStack, s)
			return
		}
		kids := make([]ClassID, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = g.Find(k)
		}
		g.substStack = append(g.substStack, s.withKids(g, p.VarKids, kids))
		return
	}
	if len(p.Kids) == 0 {
		g.substStack = append(g.substStack, s)
		return
	}
	// Children: cartesian backtracking, level by level on the stack.
	// Frame [lo, hi) holds the substitutions consistent through child
	// i-1; matching child i extends each onto the stack top. Indexing
	// (not pointers) keeps the loop safe across stack reallocation.
	mark := len(g.substStack)
	g.matchClassOnStack(p.Kids[0], n.Kids[0], s)
	lo, hi := mark, len(g.substStack)
	for i := 1; i < len(p.Kids) && lo < hi; i++ {
		for j := lo; j < hi; j++ {
			g.matchClassOnStack(p.Kids[i], n.Kids[i], g.substStack[j])
		}
		lo, hi = hi, len(g.substStack)
	}
	// Slide the final frame down over the intermediate levels.
	kept := copy(g.substStack[mark:], g.substStack[lo:hi])
	g.substStack = g.substStack[:mark+kept]
}

// RTerm is a term template used to build rewrite right-hand sides.
// Exactly one of VarName (copy a bound class), Direct (use a concrete
// class), or Op (build an ENode over Kids) is used.
type RTerm struct {
	VarName   string
	Direct    ClassID
	HasDirect bool

	Op   expr.Op
	Str  string
	Ints []sym.Expr
	Kids []*RTerm

	LeafTID  int
	LeafName string
	IsLeaf   bool
}

// RVar references a class bound by the LHS.
func RVar(name string) *RTerm { return &RTerm{VarName: name} }

// RClass references a concrete class directly.
func RClass(c ClassID) *RTerm { return &RTerm{Direct: c, HasDirect: true} }

// ROp builds an operator application template.
func ROp(op expr.Op, ints []sym.Expr, str string, kids ...*RTerm) *RTerm {
	return &RTerm{Op: op, Str: str, Ints: ints, Kids: kids}
}

// RLeaf builds a tensor-leaf template.
func RLeaf(tid int, name string) *RTerm { return &RTerm{IsLeaf: true, LeafTID: tid, LeafName: name} }

// Instantiate adds the template to the e-graph under subst and returns
// its class. When lookupOnly is set it never inserts: it fails (ok =
// false) unless every node already exists — this implements the
// paper's constrained lemmas (§4.3.2).
//
// During saturation, inserts are budgeted: a node that would push the
// live count past SaturateOpts.MaxNodes is declined and Instantiate
// fails, leaving the graph congruent (nodes built for earlier template
// positions stay — they are valid, just unused). Saturate observes the
// denial and stops with a node-limit verdict.
func (g *EGraph) Instantiate(t *RTerm, s *Subst, lookupOnly bool) (ClassID, bool) {
	switch {
	case t.VarName != "":
		c, ok := s.lookupClass(t.VarName)
		if !ok {
			panic(fmt.Sprintf("egraph: RHS references unbound ?%s", t.VarName))
		}
		return g.Find(c), true
	case t.HasDirect:
		return g.Find(t.Direct), true
	case t.IsLeaf:
		n := Leaf(t.LeafTID, t.LeafName)
		if lookupOnly {
			return g.Lookup(n)
		}
		return g.addNode(n, true)
	}
	kids := make([]ClassID, len(t.Kids))
	for i, k := range t.Kids {
		c, ok := g.Instantiate(k, s, lookupOnly)
		if !ok {
			return 0, false
		}
		kids[i] = c
	}
	n := ENode{Op: t.Op, Str: t.Str, Ints: t.Ints, Kids: kids}
	if lookupOnly {
		return g.Lookup(n)
	}
	return g.addNode(n, true)
}

// InstantiateOp inserts a single n-ary node over existing kid classes
// and returns its class — the one-level special case of Instantiate
// that dynamic lemmas hit on every application, stripped of the RTerm
// template tree. It is budgeted exactly like rule instantiation: a
// node that would push the live count past SaturateOpts.MaxNodes is
// declined (ok == false). The common case — the node already exists —
// allocates nothing; only a genuine insert copies kids (addNode
// retains its kid slice in the memo table and parent lists, and
// callers routinely reuse theirs).
func (g *EGraph) InstantiateOp(op expr.Op, ints []sym.Expr, str string, kids []ClassID) (ClassID, bool) {
	n := ENode{Op: op, Str: str, Ints: ints, Kids: kids}
	if id, ok := g.Lookup(n); ok {
		return id, true
	}
	ck := make([]ClassID, len(kids))
	copy(ck, kids)
	n.Kids = ck
	return g.addNode(n, true)
}

// String renders a pattern for diagnostics, in the paper's notation:
// "(matmul (concat ?A0 ?A1 0) ?B)".
func (p *Pattern) String() string {
	if p.Var != "" {
		return "?" + p.Var
	}
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(string(p.Op))
	if p.Str != "" {
		b.WriteByte(':')
		b.WriteString(p.Str)
	}
	for _, k := range p.Kids {
		b.WriteByte(' ')
		b.WriteString(k.String())
	}
	for _, a := range p.Attrs {
		b.WriteByte(' ')
		if a.Var != "" {
			b.WriteString("?" + a.Var)
		} else {
			b.WriteString(a.Lit.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}
