package egraph

import (
	"fmt"
	"strings"

	"entangle/internal/expr"
	"entangle/internal/sym"
)

// Pattern is an expression pattern for e-matching. A Pattern either
// binds a whole class to a variable (Var != "") or matches an operator
// application whose attributes may be literals or attribute variables.
type Pattern struct {
	Var string // non-empty: match any class, bind it

	Op   expr.Op
	Str  string // literal Str to require (when StrVar == "")
	Kids []*Pattern

	// VarKids, when non-empty, binds the node's entire child-class
	// list (of any length) instead of matching Kids one by one. Used
	// by n-ary lemmas over concat and sum, whose width equals the
	// parallelism degree.
	VarKids string

	// Attrs match the ENode's Ints: each is either a literal
	// expression (Lit) or a variable binding (Var).
	Attrs []AttrPat

	// LeafTID, when non-nil, requires a tensor leaf with this ID.
	LeafTID *int
}

// AttrPat matches one symbolic attribute.
type AttrPat struct {
	Var string   // non-empty: bind the attribute
	Lit sym.Expr // used when Var == ""
}

// AVar binds an attribute variable.
func AVar(name string) AttrPat { return AttrPat{Var: name} }

// ALit matches a literal attribute value.
func ALit(e sym.Expr) AttrPat { return AttrPat{Lit: e} }

// AInt matches a constant integer attribute.
func AInt(v int64) AttrPat { return AttrPat{Lit: sym.Const(v)} }

// PVar matches any class and binds it.
func PVar(name string) *Pattern { return &Pattern{Var: name} }

// POp matches an operator application.
func POp(op expr.Op, attrs []AttrPat, kids ...*Pattern) *Pattern {
	return &Pattern{Op: op, Attrs: attrs, Kids: kids}
}

// POpN matches an operator application of any arity, binding the whole
// child list to kidsVar.
func POpN(op expr.Op, attrs []AttrPat, kidsVar string) *Pattern {
	return &Pattern{Op: op, Attrs: attrs, VarKids: kidsVar}
}

// Subst is a substitution produced by e-matching. Bindings are stored
// in small slices (matches bind at most a handful of variables);
// extension is copy-on-write so substitutions can be shared across
// backtracking branches.
type Subst struct {
	classes []classBinding
	attrs   []attrBinding
	kids    []kidsBinding
}

type classBinding struct {
	name string
	c    ClassID
}

type attrBinding struct {
	name string
	e    sym.Expr
}

type kidsBinding struct {
	name string
	ks   []ClassID
}

// emptySubst is the shared starting substitution (read-only).
var emptySubst = &Subst{}

func (s *Subst) lookupClass(name string) (ClassID, bool) {
	for i := range s.classes {
		if s.classes[i].name == name {
			return s.classes[i].c, true
		}
	}
	return 0, false
}

func (s *Subst) lookupAttr(name string) (sym.Expr, bool) {
	for i := range s.attrs {
		if s.attrs[i].name == name {
			return s.attrs[i].e, true
		}
	}
	return sym.Expr{}, false
}

func (s *Subst) lookupKids(name string) ([]ClassID, bool) {
	for i := range s.kids {
		if s.kids[i].name == name {
			return s.kids[i].ks, true
		}
	}
	return nil, false
}

// withClass returns a new substitution extended by one class binding;
// the receiver is unchanged (backing arrays are never appended in
// place: capacities equal lengths by construction).
func (s *Subst) withClass(name string, c ClassID) *Subst {
	n := &Subst{attrs: s.attrs, kids: s.kids}
	n.classes = make([]classBinding, len(s.classes)+1)
	copy(n.classes, s.classes)
	n.classes[len(s.classes)] = classBinding{name: name, c: c}
	return n
}

func (s *Subst) withAttr(name string, e sym.Expr) *Subst {
	n := &Subst{classes: s.classes, kids: s.kids}
	n.attrs = make([]attrBinding, len(s.attrs)+1)
	copy(n.attrs, s.attrs)
	n.attrs[len(s.attrs)] = attrBinding{name: name, e: e}
	return n
}

func (s *Subst) withKids(name string, ks []ClassID) *Subst {
	n := &Subst{classes: s.classes, attrs: s.attrs}
	n.kids = make([]kidsBinding, len(s.kids)+1)
	copy(n.kids, s.kids)
	n.kids[len(s.kids)] = kidsBinding{name: name, ks: ks}
	return n
}

// KidsOf returns the child list bound to a variadic variable.
func (s *Subst) KidsOf(name string) []ClassID {
	k, ok := s.lookupKids(name)
	if !ok {
		panic(fmt.Sprintf("egraph: unbound kids variable ?%s", name))
	}
	return k
}

// ClassOf returns the class bound to var name, panicking on a missing
// binding (a rule-programming error).
func (s *Subst) ClassOf(name string) ClassID {
	c, ok := s.lookupClass(name)
	if !ok {
		panic(fmt.Sprintf("egraph: unbound pattern variable ?%s", name))
	}
	return c
}

// AttrOf returns the attribute bound to name.
func (s *Subst) AttrOf(name string) sym.Expr {
	a, ok := s.lookupAttr(name)
	if !ok {
		panic(fmt.Sprintf("egraph: unbound attribute variable ?%s", name))
	}
	return a
}

// Match pairs a matched class with one substitution. Node is the ENode
// that rooted the match (zero-valued for bare-variable patterns);
// dynamic lemmas read attributes and children from it.
type Match struct {
	Class ClassID
	Node  ENode
	Subst *Subst
}

// MatchAll returns every match of p across all classes.
func (g *EGraph) MatchAll(p *Pattern) []Match {
	var out []Match
	for _, id := range g.sortedClassIDs() {
		cl := g.classes[id]
		if p.Var != "" {
			for _, s := range g.matchClass(p, id, emptySubst) {
				out = append(out, Match{Class: id, Subst: s})
			}
			continue
		}
		for _, n := range cl.nodes {
			if n.Op != p.Op {
				continue
			}
			for _, s := range g.matchNode(p, n, emptySubst) {
				out = append(out, Match{Class: id, Node: g.canonNode(n), Subst: s})
			}
		}
	}
	return out
}

// matchRules matches a rule set in one pass over the e-graph, grouping
// nodes by operator so each rule only visits candidate roots. It is
// the saturation loop's batched form of MatchAll.
func (g *EGraph) matchRules(rules []*Rule) []ruleMatch {
	byOp := map[expr.Op][]*Rule{}
	var varRules []*Rule
	for _, r := range rules {
		if r.LHS.Var != "" {
			varRules = append(varRules, r)
			continue
		}
		byOp[r.LHS.Op] = append(byOp[r.LHS.Op], r)
	}
	var out []ruleMatch
	for _, id := range g.sortedClassIDs() {
		cl := g.classes[id]
		for _, r := range varRules {
			for _, s := range g.matchClass(r.LHS, id, emptySubst) {
				out = append(out, ruleMatch{rule: r, m: Match{Class: id, Subst: s}})
			}
		}
		for _, n := range cl.nodes {
			cands := byOp[n.Op]
			if len(cands) == 0 {
				continue
			}
			var canon ENode
			canonDone := false
			for _, r := range cands {
				for _, s := range g.matchNode(r.LHS, n, emptySubst) {
					if !canonDone {
						canon = g.canonNode(n)
						canonDone = true
					}
					out = append(out, ruleMatch{rule: r, m: Match{Class: id, Node: canon, Subst: s}})
				}
			}
		}
	}
	return out
}

// ruleMatch pairs a rule with one of its matches.
type ruleMatch struct {
	rule *Rule
	m    Match
}

// matchClass matches pattern p against class c, extending base; it
// returns all consistent substitutions.
func (g *EGraph) matchClass(p *Pattern, c ClassID, base *Subst) []*Subst {
	c = g.Find(c)
	if p.Var != "" {
		if bound, ok := base.lookupClass(p.Var); ok {
			if g.Find(bound) != c {
				return nil
			}
			return []*Subst{base}
		}
		return []*Subst{base.withClass(p.Var, c)}
	}
	cl := g.classes[c]
	if cl == nil {
		return nil
	}
	var out []*Subst
	for _, n := range cl.nodes {
		out = append(out, g.matchNode(p, n, base)...)
	}
	return out
}

func (g *EGraph) matchNode(p *Pattern, n ENode, base *Subst) []*Subst {
	if n.Op != p.Op {
		return nil
	}
	if p.LeafTID != nil {
		if n.TID != *p.LeafTID {
			return nil
		}
	}
	if p.Str != "" && n.Str != p.Str {
		return nil
	}
	if len(p.Attrs) > 0 && len(p.Attrs) != len(n.Ints) {
		return nil
	}
	if p.VarKids == "" && len(p.Kids) != len(n.Kids) {
		return nil
	}
	s := base
	// Attributes first (cheap).
	for i, ap := range p.Attrs {
		got := n.Ints[i]
		if ap.Var == "" {
			if !got.Equal(ap.Lit) {
				return nil
			}
			continue
		}
		if bound, ok := s.lookupAttr(ap.Var); ok {
			if !bound.Equal(got) {
				return nil
			}
			continue
		}
		s = s.withAttr(ap.Var, got)
	}
	if p.VarKids != "" {
		kids := make([]ClassID, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = g.Find(k)
		}
		if bound, ok := s.lookupKids(p.VarKids); ok {
			if len(bound) != len(kids) {
				return nil
			}
			for i := range kids {
				if g.Find(bound[i]) != kids[i] {
					return nil
				}
			}
			return []*Subst{s}
		}
		return []*Subst{s.withKids(p.VarKids, kids)}
	}
	// Children: cartesian backtracking.
	subs := []*Subst{s}
	for i, kp := range p.Kids {
		var next []*Subst
		for _, cur := range subs {
			next = append(next, g.matchClass(kp, n.Kids[i], cur)...)
		}
		if len(next) == 0 {
			return nil
		}
		subs = next
	}
	return subs
}

// RTerm is a term template used to build rewrite right-hand sides.
// Exactly one of VarName (copy a bound class), Direct (use a concrete
// class), or Op (build an ENode over Kids) is used.
type RTerm struct {
	VarName   string
	Direct    ClassID
	HasDirect bool

	Op   expr.Op
	Str  string
	Ints []sym.Expr
	Kids []*RTerm

	LeafTID  int
	LeafName string
	IsLeaf   bool
}

// RVar references a class bound by the LHS.
func RVar(name string) *RTerm { return &RTerm{VarName: name} }

// RClass references a concrete class directly.
func RClass(c ClassID) *RTerm { return &RTerm{Direct: c, HasDirect: true} }

// ROp builds an operator application template.
func ROp(op expr.Op, ints []sym.Expr, str string, kids ...*RTerm) *RTerm {
	return &RTerm{Op: op, Str: str, Ints: ints, Kids: kids}
}

// RLeaf builds a tensor-leaf template.
func RLeaf(tid int, name string) *RTerm { return &RTerm{IsLeaf: true, LeafTID: tid, LeafName: name} }

// Instantiate adds the template to the e-graph under subst and returns
// its class. When lookupOnly is set it never inserts: it fails (ok =
// false) unless every node already exists — this implements the
// paper's constrained lemmas (§4.3.2).
func (g *EGraph) Instantiate(t *RTerm, s *Subst, lookupOnly bool) (ClassID, bool) {
	switch {
	case t.VarName != "":
		c, ok := s.lookupClass(t.VarName)
		if !ok {
			panic(fmt.Sprintf("egraph: RHS references unbound ?%s", t.VarName))
		}
		return g.Find(c), true
	case t.HasDirect:
		return g.Find(t.Direct), true
	case t.IsLeaf:
		n := Leaf(t.LeafTID, t.LeafName)
		if lookupOnly {
			return g.Lookup(n)
		}
		return g.AddNode(n), true
	}
	kids := make([]ClassID, len(t.Kids))
	for i, k := range t.Kids {
		c, ok := g.Instantiate(k, s, lookupOnly)
		if !ok {
			return 0, false
		}
		kids[i] = c
	}
	n := ENode{Op: t.Op, Str: t.Str, Ints: t.Ints, Kids: kids}
	if lookupOnly {
		return g.Lookup(n)
	}
	return g.AddNode(n), true
}

// String renders a pattern for diagnostics, in the paper's notation:
// "(matmul (concat ?A0 ?A1 0) ?B)".
func (p *Pattern) String() string {
	if p.Var != "" {
		return "?" + p.Var
	}
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(string(p.Op))
	if p.Str != "" {
		b.WriteByte(':')
		b.WriteString(p.Str)
	}
	for _, k := range p.Kids {
		b.WriteByte(' ')
		b.WriteString(k.String())
	}
	for _, a := range p.Attrs {
		b.WriteByte(' ')
		if a.Var != "" {
			b.WriteString("?" + a.Var)
		} else {
			b.WriteString(a.Lit.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}
