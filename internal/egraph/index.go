package egraph

import "entangle/internal/expr"

// Rule-indexed, dirty-tracked e-matching — the saturation hot path.
//
// The naive matcher (matchRules, pattern.go) visits every class × rule
// pair each iteration; on real models most of that work re-derives
// matches already produced, whose applications the fingerprint filter
// then discards. The indexed matcher cuts the re-derivation two ways:
//
//   - Dirty-class tracking: pure rules only visit classes that gained
//     nodes since the previous iteration, plus ancestors within
//     pattern-depth reach (dirtyTake). Every match the naive matcher
//     would produce outside that set is a repeat of one produced — and
//     fingerprinted — earlier, so dropping it changes no application.
//     The full scan runs only when there is no earlier coverage to
//     lean on: the first iteration of a Saturate call whose graph is
//     not carrying a fixpoint from the previous same-rules call
//     (rewrite.go). Stateful rules are exempt: their contract is to
//     re-run every iteration because their Apply scans graph state
//     beyond the match.
//
//   - First-symbol discrimination: a pattern whose first child is an
//     operator application can only match a node whose child-0 class
//     holds a node with that operator; the per-class op counts
//     (Class.ops) answer that without descending into matchNode.
//
// Both filters are exact, and candidate classes are visited in the
// same ascending order with the same per-class rule order as the naive
// matcher, so the produced match list is an order-preserving subset of
// the naive list whose omissions all carry already-applied
// fingerprints. That is what keeps Stats.Applications, extraction, and
// report bytes identical between the two paths (the differential tests
// pin this).

// CompiledRules is the matcher's analysis of a rule set: rules
// bucketed by root operator, the per-rule child-0 filter, and the
// dirty-closure depth. It is independent of any e-graph and read-only
// during matching, so one value may be compiled once (CompileRules)
// and shared across goroutines via SaturateOpts.Compiled.
type CompiledRules struct {
	rules    []*Rule
	varRules []int             // indexes of bare-variable-LHS rules, in order
	byOp     map[expr.Op][]int // op-rooted rules bucketed by root op, in order
	child0   []expr.Op         // per rule: required op of child 0 ("" = no filter)
	// maxPureDepth is the deepest pure-rule LHS; dirty candidates are
	// expanded by maxPureDepth-1 parent hops.
	maxPureDepth int
}

// CompileRules analyzes a rule set for the indexed matcher. The result
// must be passed (via SaturateOpts.Compiled) only alongside exactly
// the same rules slice.
func CompileRules(rules []*Rule) *CompiledRules {
	cr := &CompiledRules{
		rules:  rules,
		byOp:   map[expr.Op][]int{},
		child0: make([]expr.Op, len(rules)),
	}
	for i, r := range rules {
		if r.LHS.Var != "" {
			cr.varRules = append(cr.varRules, i)
		} else {
			cr.byOp[r.LHS.Op] = append(cr.byOp[r.LHS.Op], i)
			if len(r.LHS.Kids) > 0 && r.LHS.Kids[0].Var == "" {
				cr.child0[i] = r.LHS.Kids[0].Op
			}
		}
		if !r.Stateful {
			if d := patternDepth(r.LHS); d > cr.maxPureDepth {
				cr.maxPureDepth = d
			}
		}
	}
	return cr
}

// resolveChild0 refreshes the interned child-0 filter ops against g's
// interner, into the per-graph scratch g.child0ID (CompiledRules is
// shared and stays read-only). An op can first appear mid-saturation,
// so this runs once per iteration; an unresolved op (ID 0) means no
// node in the graph has it, which makes the filter reject — exactly
// what matching would conclude.
func (g *EGraph) resolveChild0(cr *CompiledRules) {
	if cap(g.child0ID) < len(cr.child0) {
		g.child0ID = make([]opID, len(cr.child0))
	}
	g.child0ID = g.child0ID[:len(cr.child0)]
	for i, op := range cr.child0 {
		if op != "" {
			g.child0ID[i] = g.intern.lookupOp(string(op))
		}
	}
}

// patternDepth is the match depth of a pattern: how many class levels
// e-matching inspects. A bare variable binds the root class (depth 1);
// VarKids binds the child-class list (depth 2); operator patterns add
// one level over their deepest child.
func patternDepth(p *Pattern) int {
	if p.Var != "" {
		return 1
	}
	if p.VarKids != "" {
		return 2
	}
	d := 1
	for _, k := range p.Kids {
		if kd := 1 + patternDepth(k); kd > d {
			d = kd
		}
	}
	return d
}

// matchRulesIndexed is the indexed counterpart of matchRules. With
// full set, every class is a pure-rule candidate; otherwise pure rules
// only visit the dirty closure. Matches append to out (a reused
// scratch slice).
func (g *EGraph) matchRulesIndexed(cr *CompiledRules, full bool, out []ruleMatch) []ruleMatch {
	g.resolveChild0(cr)
	candEpoch := int32(0)
	if full {
		g.dirty = g.dirty[:0] // the full scan covers everything accumulated
	} else {
		hops := cr.maxPureDepth - 1
		if hops < 0 {
			hops = 0
		}
		g.dirtyTake(hops)
		candEpoch = g.markEpoch // dirtyTake marked the closure with this epoch
	}
	for _, id := range g.sortedClassIDsScratch() {
		cl := g.classes[id]
		pureCand := full || g.mark[id] == candEpoch
		for _, ri := range cr.varRules {
			r := cr.rules[ri]
			if !pureCand && !r.Stateful {
				continue
			}
			mark := len(g.substStack)
			g.matchClassOnStack(r.LHS, id, emptySubst)
			for _, s := range g.substStack[mark:] {
				out = append(out, ruleMatch{rule: r, m: Match{Class: id, Subst: s}})
			}
			g.substStack = g.substStack[:mark]
		}
		for ni := range cl.nodes {
			n := &cl.nodes[ni]
			cands := cr.byOp[n.Op]
			if len(cands) == 0 {
				continue
			}
			var canon ENode
			canonDone := false
			for _, ri := range cands {
				r := cr.rules[ri]
				if !pureCand && !r.Stateful {
					continue
				}
				if cr.child0[ri] != "" && len(n.Kids) > 0 {
					filter := g.child0ID[ri]
					if filter == 0 {
						continue
					}
					if kc := g.classes[g.Find(n.Kids[0])]; kc == nil || !kc.hasOp(filter) {
						continue
					}
				}
				mark := len(g.substStack)
				g.matchNodeOnStack(r.LHS, n, emptySubst)
				if len(g.substStack) > mark && !canonDone {
					canon = g.canonNode(*n)
					canonDone = true
				}
				for _, s := range g.substStack[mark:] {
					out = append(out, ruleMatch{rule: r, m: Match{Class: id, Node: canon, Subst: s}})
				}
				g.substStack = g.substStack[:mark]
			}
		}
	}
	return out
}
