package egraph

import "strconv"

// Interned node identity. An ENode's structural identity splits into a
// "head" — operator, Str attribute, symbolic Ints, and leaf TID,
// everything except the child classes — and its canonical child-class
// list. Heads are interned to small integer IDs once per e-graph, so
// the hash-cons memo keys on (headID, kids) and never builds a string
// on the hot path: the old ENode.key() + map[string]ClassID pair cost
// one fmt-heavy string construction per canonicalization and was,
// with its allocations, ~25% of cold-check CPU.
//
// Head IDs are e-graph-local. Nodes read back from one graph (via
// Class.Nodes or ParentsOf) carry that graph's head ID in an
// unexported field; inserting such a copy into a *different* graph is
// not supported (fresh ENode literals, which every rule builds, are
// always safe — their zero head is interned on first insert).

// headID identifies an interned node head. 0 means "not yet interned";
// valid IDs start at 1 and index headOps at id-1.
type headID int32

// opID identifies an interned operator symbol, used by the per-class
// operator counts that drive rule indexing. 0 is unused; valid IDs
// start at 1.
type opID int32

type interner struct {
	heads map[string]headID
	// headOps maps headID-1 to the interned operator of that head.
	headOps []opID
	ops     map[string]opID
}

func newInterner() *interner {
	return &interner{heads: map[string]headID{}, ops: map[string]opID{}}
}

func (in *interner) opOf(op string) opID {
	if id, ok := in.ops[op]; ok {
		return id
	}
	id := opID(len(in.ops) + 1)
	in.ops[op] = id
	return id
}

// lookupOp returns the interned ID for op without creating one; 0
// means no node with this operator was ever interned here.
func (in *interner) lookupOp(op string) opID {
	return in.ops[op]
}

// appendHeadKey renders the kid-independent part of a node's identity
// into buf. Keys are only built for nodes whose cached head ID is
// unset; known heads resolve without allocating — the lookup probes
// the intern map with the byte buffer directly, so only the first
// sighting of a head pays for a string.
func appendHeadKey(buf []byte, n *ENode) []byte {
	if n.isLeaf() {
		buf = append(buf, 't')
		return strconv.AppendInt(buf, int64(n.TID), 10)
	}
	buf = append(buf, n.Op...)
	if n.Str != "" {
		buf = append(buf, '.')
		buf = append(buf, n.Str...)
	}
	buf = append(buf, '[')
	for i, e := range n.Ints {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = e.AppendKey(buf)
	}
	return append(buf, ']')
}

// headOf interns n's head, caching the ID in the node.
func (g *EGraph) headOf(n *ENode) headID {
	if n.head != 0 {
		return n.head
	}
	g.headBuf = appendHeadKey(g.headBuf[:0], n)
	if id, ok := g.intern.heads[string(g.headBuf)]; ok {
		n.head = id
		return id
	}
	id := headID(len(g.intern.headOps) + 1)
	g.intern.heads[string(g.headBuf)] = id
	g.intern.headOps = append(g.intern.headOps, g.intern.opOf(string(n.Op)))
	n.head = id
	return id
}

// opOfHead returns the interned operator of a head.
func (g *EGraph) opOfHead(h headID) opID { return g.intern.headOps[h-1] }

// nodesEquiv reports structural equality of two canonical, interned
// nodes.
func nodesEquiv(a, b *ENode) bool {
	if a.head != b.head || len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if a.Kids[i] != b.Kids[i] {
			return false
		}
	}
	return true
}

// memoHash mixes a node identity FNV-1a style.
func memoHash(h headID, kids []ClassID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	x := uint64(offset64)
	x ^= uint64(uint32(h))
	x *= prime64
	for _, k := range kids {
		x ^= uint64(uint32(k))
		x *= prime64
	}
	return x
}

// memoTable is the hash-cons memo: an open-addressing table from
// (headID, canonical kids) to the class storing that node. Entries
// share the node's canonical Kids slice — canonNode copies on change,
// so stored slices never mutate. Deletion (repair dropping a stale
// key) leaves a tombstone, cleared on the next growth rehash.
type memoTable struct {
	entries []memoEntry
	live    int // occupied entries
	used    int // occupied + tombstones, drives growth
}

type memoEntry struct {
	hash  uint64
	head  headID // 0 = empty, -1 = tombstone
	class ClassID
	kids  []ClassID
}

const memoTombstone headID = -1

func newMemoTable() *memoTable {
	return &memoTable{entries: make([]memoEntry, 64)}
}

func (m *memoTable) mask() uint64 { return uint64(len(m.entries) - 1) }

// get returns the class recorded for (h, kids).
func (m *memoTable) get(hash uint64, h headID, kids []ClassID) (ClassID, bool) {
	mask := m.mask()
	for i := hash & mask; ; i = (i + 1) & mask {
		e := &m.entries[i]
		if e.head == 0 {
			return 0, false
		}
		if e.head == h && e.hash == hash && kidsEqual(e.kids, kids) {
			return e.class, true
		}
	}
}

// put inserts or updates the class for (h, kids).
func (m *memoTable) put(hash uint64, h headID, kids []ClassID, class ClassID) {
	if (m.used+1)*4 >= len(m.entries)*3 {
		m.grow()
	}
	mask := m.mask()
	firstFree := -1
	for i := hash & mask; ; i = (i + 1) & mask {
		e := &m.entries[i]
		switch {
		case e.head == 0:
			if firstFree >= 0 {
				e = &m.entries[firstFree]
			} else {
				m.used++
			}
			*e = memoEntry{hash: hash, head: h, class: class, kids: kids}
			m.live++
			return
		case e.head == memoTombstone:
			if firstFree < 0 {
				firstFree = int(i)
			}
		case e.head == h && e.hash == hash && kidsEqual(e.kids, kids):
			e.class = class
			return
		}
	}
}

// del removes the entry for (h, kids), if present.
func (m *memoTable) del(hash uint64, h headID, kids []ClassID) {
	mask := m.mask()
	for i := hash & mask; ; i = (i + 1) & mask {
		e := &m.entries[i]
		if e.head == 0 {
			return
		}
		if e.head == h && e.hash == hash && kidsEqual(e.kids, kids) {
			*e = memoEntry{head: memoTombstone}
			m.live--
			return
		}
	}
}

func (m *memoTable) grow() {
	old := m.entries
	size := len(old) * 2
	// Growth driven by tombstones alone rehashes in place instead.
	if m.live*4 < len(old) {
		size = len(old)
	}
	m.entries = make([]memoEntry, size)
	m.used = m.live
	mask := m.mask()
	for i := range old {
		e := &old[i]
		if e.head <= 0 {
			continue
		}
		for j := e.hash & mask; ; j = (j + 1) & mask {
			if m.entries[j].head == 0 {
				m.entries[j] = *e
				break
			}
		}
	}
}

// each calls fn for every live entry (diagnostics and invariants).
func (m *memoTable) each(fn func(h headID, kids []ClassID, class ClassID) bool) {
	for i := range m.entries {
		e := &m.entries[i]
		if e.head <= 0 {
			continue
		}
		if !fn(e.head, e.kids, e.class) {
			return
		}
	}
}

func kidsEqual(a, b []ClassID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// memoLookup probes the memo for a canonical node, interning its head.
func (g *EGraph) memoLookup(n *ENode) (ClassID, bool) {
	h := g.headOf(n)
	return g.memo.get(memoHash(h, n.Kids), h, n.Kids)
}
