package egraph

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Rule is a rewrite rule (a "lemma" in the paper's terms, §4.2.1).
// LHS matches produce substitutions; Apply returns the classes that
// should be unioned with the matched class. A nil result (or empty
// slice) means the rule's condition did not hold for this match.
type Rule struct {
	Name string

	LHS *Pattern

	// RHS is the declarative right-hand-side template, when the rule
	// has one (rules built with Simple and Constrained always do).
	// Apply remains the executable form; RHS exists so static tooling
	// (internal/lint) can reason about what the rule builds — unbound
	// template variables, trivial self-loops, redundant specializations
	// — without running it. Rules whose right-hand side is computed
	// from e-graph state leave RHS nil.
	RHS *RTerm

	// Stateful marks rules whose Apply inspects e-graph state beyond
	// the match bindings (scanning class members or parents). Pure
	// rules are applied at most once per distinct match fingerprint;
	// stateful rules re-run every iteration because the graph may have
	// grown what they scan.
	Stateful bool

	// Apply builds the right-hand side(s) and returns the class pairs
	// to union. Most rules union the matched class with one RHS class
	// (use m.With); generative lemmas may union other pairs.
	// Conditioned rules inspect g.Ctx and the substitution and decline
	// by returning nil.
	Apply func(g *EGraph, m Match) []UnionPair
}

// UnionPair is one equivalence a rule asserts.
type UnionPair struct{ A, B ClassID }

// With pairs the matched class with c — the common rule result.
func (m Match) With(c ClassID) []UnionPair {
	return []UnionPair{{m.Class, c}}
}

// Simple builds the common universal-lemma shape: LHS pattern →
// RHS template, unconditionally. The template is kept on Rule.RHS as
// declarative metadata alongside the Apply closure that executes it.
func Simple(name string, lhs *Pattern, rhs *RTerm) *Rule {
	return templated(name, lhs, rhs, false)
}

// Constrained builds a rule whose RHS is only added when its nodes
// already exist in the e-graph (the paper's constrained lemmas,
// §4.3.2, used for generative rules like slice splitting).
func Constrained(name string, lhs *Pattern, rhs *RTerm) *Rule {
	return templated(name, lhs, rhs, true)
}

func templated(name string, lhs *Pattern, rhs *RTerm, lookupOnly bool) *Rule {
	return &Rule{
		Name: name,
		LHS:  lhs,
		RHS:  rhs,
		Apply: func(g *EGraph, m Match) []UnionPair {
			c, ok := g.Instantiate(rhs, m.Subst, lookupOnly)
			if !ok {
				return nil
			}
			return m.With(c)
		},
	}
}

// SaturateOpts bound a saturation run. Zero values select defaults.
type SaturateOpts struct {
	MaxIters int // default 16
	// MaxNodes caps the number of *live* ENodes — the value reported
	// by EGraph.NodeCount(), i.e. distinct nodes currently stored
	// across all classes, after dedup. When an application pushes the
	// live count past the cap, Saturate stops applying matches,
	// rebuilds (so the e-graph is left congruent), and returns with
	// Saturated == false. Default 40_000.
	MaxNodes int
	// Ctx, when non-nil, cancels the run: it is checked between
	// iterations, so a cancelled Saturate returns within one iteration,
	// always after Rebuild — the e-graph is left congruent exactly as
	// on a budget stop. A nil Ctx never cancels.
	Ctx context.Context
}

func (o SaturateOpts) withDefaults() SaturateOpts {
	if o.MaxIters == 0 {
		o.MaxIters = 16
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 40_000
	}
	return o
}

// StopReason records why a saturation run stopped. Values are ordered
// by severity so Merge can keep the most severe reason seen across
// runs; the zero value (StopNone, "no run yet") is the Merge identity.
type StopReason int

const (
	// StopNone is the zero value: no saturation run recorded.
	StopNone StopReason = iota
	// StopSaturated: the run reached fixpoint.
	StopSaturated
	// StopIterLimit: MaxIters elapsed before fixpoint.
	StopIterLimit
	// StopNodeLimit: an application pushed the live node count past
	// MaxNodes.
	StopNodeLimit
	// StopCancelled: SaturateOpts.Ctx was cancelled between iterations.
	StopCancelled
)

func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopSaturated:
		return "saturated"
	case StopIterLimit:
		return "iter-limit"
	case StopNodeLimit:
		return "node-limit"
	case StopCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// Stats reports what a saturation run did. Applications counts, per
// rule name, the number of matches whose union changed the e-graph —
// the quantity plotted in the paper's Figure 6 heatmap.
type Stats struct {
	Iterations   int
	Applications map[string]int
	Saturated    bool // every merged run reached fixpoint (vs. limit hit)
	Nodes        int
	// Runs counts the saturation runs accumulated into this value.
	// The zero value (Runs == 0) is the identity of Merge: merging a
	// run into it adopts that run's Saturated flag instead of AND-ing
	// with the zero value's false.
	Runs int
	// Cancelled counts merged runs stopped by context cancellation.
	Cancelled int
	// BudgetHit counts merged runs stopped by MaxIters or MaxNodes —
	// the "inconclusive, not disproved" signal the checker's verdict
	// layer and budget escalation key off.
	BudgetHit int
	// StopReason is the most severe stop cause across merged runs
	// (cancelled > node-limit > iter-limit > saturated). The zero
	// value StopNone is the Merge identity.
	StopReason StopReason
}

// RuleNames lists rules with non-zero applications, sorted.
func (s Stats) RuleNames() []string {
	var names []string
	for n, c := range s.Applications {
		if c > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Merge accumulates another run's stats into s. The zero Stats value
// is an identity: Saturated is adopted from the first real run merged
// in and AND-ed thereafter, so accumulators need no pre-seeding.
func (s *Stats) Merge(o Stats) {
	s.Iterations += o.Iterations
	if s.Applications == nil {
		s.Applications = map[string]int{}
	}
	for k, v := range o.Applications {
		s.Applications[k] += v
	}
	switch {
	case o.Runs == 0:
		// Merging an empty accumulator: nothing ran, keep s.Saturated.
	case s.Runs == 0:
		s.Saturated = o.Saturated
	default:
		s.Saturated = s.Saturated && o.Saturated
	}
	s.Runs += o.Runs
	if o.Nodes > s.Nodes {
		s.Nodes = o.Nodes
	}
	s.Cancelled += o.Cancelled
	s.BudgetHit += o.BudgetHit
	if o.StopReason > s.StopReason {
		s.StopReason = o.StopReason
	}
}

// Saturate runs the rules to fixpoint or until limits are hit. Matches
// are collected on a frozen view each iteration, then applied — the
// standard egg iteration structure.
func (g *EGraph) Saturate(rules []*Rule, opts SaturateOpts) Stats {
	opts = opts.withDefaults()
	stats := Stats{Applications: map[string]int{}, Runs: 1}
	applied := map[string]bool{}
	var fp strings.Builder
	limitHit := false
	cancelled := false
	for iter := 0; iter < opts.MaxIters && !limitHit; iter++ {
		// Cancellation is checked between iterations only: the e-graph
		// was rebuilt at the end of the previous iteration, so stopping
		// here always leaves it congruent.
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			cancelled = true
			break
		}
		stats.Iterations = iter + 1
		todo := g.matchRules(rules)
		changed := false
		for _, p := range todo {
			if g.nodeCount > opts.MaxNodes {
				// Budget blown mid-iteration: stop applying matches,
				// but fall through to Rebuild below so unions already
				// applied this iteration are canonicalized — returning
				// here would leave the memo and parent lists stale and
				// later extractions non-congruent.
				limitHit = true
				break
			}
			if !p.rule.Stateful {
				// Pure rules: one application per canonical match.
				fp.Reset()
				fp.WriteString(p.rule.Name)
				fmt.Fprintf(&fp, "|%d", g.Find(p.m.Class))
				for i := range p.m.Subst.classes {
					fmt.Fprintf(&fp, "|c%d", g.Find(p.m.Subst.classes[i].c))
				}
				for i := range p.m.Subst.attrs {
					fp.WriteString("|a")
					fp.WriteString(p.m.Subst.attrs[i].e.Key())
				}
				for i := range p.m.Subst.kids {
					fp.WriteString("|k")
					for _, k := range p.m.Subst.kids[i].ks {
						fmt.Fprintf(&fp, ",%d", g.Find(k))
					}
				}
				key := fp.String()
				if applied[key] {
					continue
				}
				applied[key] = true
			}
			pairs := p.rule.Apply(g, p.m)
			for _, up := range pairs {
				if g.Union(up.A, up.B) {
					changed = true
					stats.Applications[p.rule.Name]++
				}
			}
		}
		g.Rebuild()
		if !changed && !limitHit {
			stats.Saturated = true
			break
		}
	}
	switch {
	case cancelled:
		stats.StopReason = StopCancelled
		stats.Cancelled = 1
	case limitHit:
		stats.StopReason = StopNodeLimit
		stats.BudgetHit = 1
	case stats.Saturated:
		stats.StopReason = StopSaturated
	default:
		// The iteration budget elapsed while rules were still firing.
		stats.StopReason = StopIterLimit
		stats.BudgetHit = 1
	}
	stats.Nodes = g.nodeCount
	return stats
}
